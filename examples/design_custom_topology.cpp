// Routing design beyond the torus: the paper's LP formulations apply to any
// directed graph (§2-§4). This example designs capacity- and worst-case-
// optimal oblivious routing for a small custom topology (a 3x3 mesh and a
// bidirectional ring) using the general (unreduced) MCF LPs, then designs a
// worst-case-optimal routing on a torus and prints its path distribution for
// one pair.
//
//   ./example_design_custom_topology [--k 4]
#include <iostream>

#include "tcr/core/design.hpp"
#include "tcr/metrics/worst_case.hpp"
#include "tcr/util/cli.hpp"
#include "tcr/util/table.hpp"

int main(int argc, char** argv) {
  using namespace tcr;
  const Cli cli(argc, argv);

  std::cout << "=== general digraphs ===\n";
  {
    const Digraph ring = make_bidirectional_ring(6);
    const auto cap = general_capacity_design(ring);
    std::cout << "bidirectional ring (n=6): optimal uniform max load = " << cap.objective
              << " -> capacity " << 1.0 / cap.objective << "\n";
    const auto wc = general_worst_case_design(ring);
    std::cout << "  optimal worst-case load = " << wc.objective << " -> guaranteed throughput "
              << 1.0 / wc.objective << " per node under ANY admissible traffic\n";
  }
  {
    const Digraph mesh = make_mesh(3, 3);
    const auto cap = general_capacity_design(mesh);
    std::cout << "3x3 mesh: optimal uniform max load = " << cap.objective << " -> capacity "
              << 1.0 / cap.objective << "\n";
  }

  std::cout << "\n=== torus, symmetric formulation ===\n";
  const Torus torus(cli.get_int("k", 4));
  const auto opt = design_worst_case_optimal(torus);
  if (opt.status != lp::Status::Optimal) {
    std::cout << "design failed: " << lp::to_string(opt.status) << "\n";
    return 1;
  }
  std::cout << torus.k() << "-ary 2-cube worst-case-optimal design:\n"
            << "  gamma_wc = " << opt.objective << " (cap/2 bound: "
            << 2.0 * torus.ideal_uniform_load() << ")\n"
            << "  normalized locality = " << opt.locality_norm << "\n"
            << "  exact Hungarian check: " << worst_case(opt.routing).gamma << "\n\n";

  const int e = torus.node(1, 1);
  std::cout << "designed path distribution for offset (1,1):\n";
  for (const auto& wp : opt.routing.paths(e)) {
    std::cout << "  p=" << TextTable::num(wp.weight, 4) << " hops=" << wp.path.length() << " :";
    for (int c : wp.path.channels) {
      static const char* names[] = {"+X", "-X", "+Y", "-Y"};
      std::cout << " " << names[static_cast<int>(torus.channel_dir(c))];
    }
    std::cout << "\n";
  }
  return 0;
}
