// Adversarial traffic analysis: for each algorithm, find the exact
// worst-case permutation (Hungarian matching per channel, paper ref. [11])
// and compare it with the named adversaries from the literature.
//
//   ./example_adversarial_traffic [--k 8]
#include <iostream>

#include "tcr/metrics/loads.hpp"
#include "tcr/metrics/worst_case.hpp"
#include "tcr/routing/dor.hpp"
#include "tcr/routing/rlb.hpp"
#include "tcr/routing/romm.hpp"
#include "tcr/routing/valiant.hpp"
#include "tcr/traffic/patterns.hpp"
#include "tcr/util/cli.hpp"
#include "tcr/util/table.hpp"

int main(int argc, char** argv) {
  using namespace tcr;
  const Cli cli(argc, argv);
  const Torus torus(cli.get_int("k", 8));
  const double ideal = torus.ideal_uniform_load();

  TextTable table({"algorithm", "uniform", "transpose", "tornado", "complement",
                   "exact worst case"});
  std::vector<TorusRouting> algos;
  algos.push_back(make_dor(torus));
  algos.push_back(make_romm(torus));
  algos.push_back(make_rlb(torus));
  algos.push_back(make_valiant(torus));
  algos.push_back(make_ival(torus));

  for (const auto& r : algos) {
    std::vector<double> cells;
    cells.push_back(ideal / uniform_max_load(r));
    for (const char* name : {"transpose", "tornado", "complement"}) {
      cells.push_back(ideal / max_channel_load(r, named_permutation(torus, name)));
    }
    cells.push_back(worst_case_capacity_fraction(r));
    table.add_row_mixed({r.name()}, cells);
  }
  std::cout << "throughput as a fraction of capacity under each traffic pattern\n"
            << "(higher is better; 'exact worst case' minimizes over ALL permutations):\n\n";
  table.print(std::cout);

  // Show what the adversary actually looks like for DOR.
  const TorusRouting dor = make_dor(torus);
  const auto wc = worst_case(dor);
  std::cout << "\nDOR adversarial permutation (first 8 assignments):\n";
  for (int s = 0; s < std::min(8, torus.num_nodes()); ++s) {
    std::cout << "  (" << torus.x_of(s) << "," << torus.y_of(s) << ") -> ("
              << torus.x_of(wc.permutation[s]) << "," << torus.y_of(wc.permutation[s]) << ")\n";
  }
  std::cout << "note how named patterns are close to — but not exactly — the optimum\n"
               "adversary the matching finds.\n";
  return 0;
}
