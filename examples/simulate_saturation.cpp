// Drive the flit-level simulator: sweep the offered load for DOR and IVAL
// under uniform traffic and print offered vs accepted throughput and average
// latency — the classic load-latency curve, with the analytic saturation
// bound marked.
//
//   ./example_simulate_saturation [--k 4] [--points 8] [--cycles 3000]
#include <iostream>

#include "tcr/metrics/loads.hpp"
#include "tcr/routing/dor.hpp"
#include "tcr/routing/valiant.hpp"
#include "tcr/sim/simulator.hpp"
#include "tcr/util/cli.hpp"
#include "tcr/util/table.hpp"

int main(int argc, char** argv) {
  using namespace tcr;
  const Cli cli(argc, argv);
  const Torus torus(cli.get_int("k", 4));
  const int points = cli.get_int("points", 8);

  SimConfig cfg;
  cfg.warmup_cycles = cli.get_int("cycles", 3000) / 3;
  cfg.measure_cycles = cli.get_int("cycles", 3000);
  cfg.drain_cycles = 0;

  for (auto make : {make_dor, make_ival}) {
    const TorusRouting r = make(torus);
    const double bound = std::min(1.0, 1.0 / uniform_max_load(r));
    std::cout << "\n" << r.name() << " under uniform traffic (analytic saturation at "
              << TextTable::num(bound, 3) << " packets/node/cycle):\n";
    TextTable table({"offered", "accepted", "avg latency", "deadlock"});
    for (int i = 1; i <= points; ++i) {
      const double rate = bound * 1.2 * i / points;
      const auto stats = simulate(r, std::min(rate, 1.0), {}, cfg);
      table.add_row({TextTable::num(std::min(rate, 1.0), 3),
                     TextTable::num(stats.accepted_rate, 3),
                     TextTable::num(stats.avg_latency, 1), stats.deadlocked ? "YES" : "no"});
    }
    table.print(std::cout);
  }
  std::cout << "\naccepted throughput tracks offered load below saturation, then flattens\n"
               "near the analytic bound; latency blows up at the knee. No deadlocks —\n"
               "the VC assignment implements the paper's dateline + turn discipline.\n";
  return 0;
}
