// Quickstart: build a torus, construct routing algorithms, and evaluate the
// paper's three headline metrics — locality, worst-case throughput and
// average-case throughput.
//
//   ./example_quickstart [--k 8]
#include <iostream>

#include "tcr/metrics/average_case.hpp"
#include "tcr/metrics/loads.hpp"
#include "tcr/metrics/worst_case.hpp"
#include "tcr/routing/dor.hpp"
#include "tcr/routing/valiant.hpp"
#include "tcr/traffic/patterns.hpp"
#include "tcr/traffic/sampler.hpp"
#include "tcr/util/cli.hpp"
#include "tcr/util/table.hpp"

int main(int argc, char** argv) {
  using namespace tcr;
  const Cli cli(argc, argv);
  const int k = cli.get_int("k", 8);

  // 1. The topology: a k-ary 2-cube with N = k^2 nodes and 4N channels.
  const Torus torus(k);
  std::cout << "topology: " << k << "-ary 2-cube, N = " << torus.num_nodes()
            << ", C = " << torus.num_channels()
            << ", capacity load = " << torus.ideal_uniform_load() << "\n\n";

  // 2. Routing algorithms are probability distributions over paths,
  //    represented canonically (source node 0, every destination offset).
  const TorusRouting dor = make_dor(torus);
  const TorusRouting val = make_valiant(torus);
  const TorusRouting ival = make_ival(torus);

  // 3. Metrics. Worst-case throughput is exact (max-weight matching over
  //    permutation traffic); average-case uses sampled doubly-stochastic
  //    traffic (eq. 9 of the paper).
  Rng rng(1);
  const auto samples = sample_traffic_set(rng, torus.num_nodes(), 50, "sinkhorn");
  const double ideal = torus.ideal_uniform_load();

  TextTable table({"algorithm", "H_avg/minimal", "Theta_wc/cap", "Theta_avg/cap"});
  for (const TorusRouting* r : {&dor, &val, &ival}) {
    table.add_row_mixed({r->name()},
                        {r->normalized_locality(), worst_case_capacity_fraction(*r),
                         ideal * average_case(*r, samples).approx_throughput});
  }
  table.print(std::cout);

  // 4. Adversarial analysis: which permutation hurts DOR the most?
  const auto wc = worst_case(dor);
  std::cout << "\nDOR's adversarial permutation loads channel " << wc.channel << " with "
            << wc.gamma << " flows (throughput " << 1.0 / wc.gamma << " per node)\n";
  std::cout << "tornado traffic loads DOR at "
            << max_channel_load(dor, tornado_permutation(torus)) << "\n";
  return 0;
}
