// Figure 3 walkthrough: two-phase (Valiant) routes can loop; removing the
// loop shortens the path without increasing any channel load. This is the
// observation IVAL is built on (§5.2).
//
//   ./example_loop_removal [--k 8]
#include <iostream>

#include "tcr/routing/dor.hpp"
#include "tcr/routing/valiant.hpp"
#include "tcr/util/cli.hpp"

namespace {

std::string fmt_node(const tcr::Torus& t, int n) {
  return "(" + std::to_string(t.x_of(n)) + "," + std::to_string(t.y_of(n)) + ")";
}

void print_walk(const tcr::Torus& t, const std::vector<int>& walk) {
  for (std::size_t i = 0; i < walk.size(); ++i) {
    if (i) std::cout << " -> ";
    std::cout << fmt_node(t, walk[i]);
  }
  std::cout << "   [" << walk.size() - 1 << " hops]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcr;
  const Cli cli(argc, argv);
  const Torus t(cli.get_int("k", 8));

  // The paper's Figure 3 scenario: the intermediate i lies "past" the
  // destination in X, so phase 2 (also XY order) backtracks over phase 1's
  // row and the concatenated walk loops.
  const int s = t.node(0, 0);
  const int i = t.node(3, 0);
  const int d = t.node(1, 1);

  std::cout << "s = " << fmt_node(t, s) << ", intermediate i = " << fmt_node(t, i)
            << ", d = " << fmt_node(t, d) << "\n\n";

  const auto phase1 = detail::dor_walks(t, s, i, /*x_first=*/true);
  const auto phase2 = detail::dor_walks(t, i, d, /*x_first=*/true);
  std::vector<int> walk = phase1.front().walk;
  walk.insert(walk.end(), phase2.front().walk.begin() + 1, phase2.front().walk.end());

  std::cout << "VAL walk (keeps the loop):\n  ";
  print_walk(t, walk);

  const auto cleaned = remove_loops(walk);
  std::cout << "after loop removal (IVAL):\n  ";
  print_walk(t, cleaned);

  std::cout << "\nloop removal only deletes channel traversals, so every channel load\n"
               "can only decrease: worst-case throughput is preserved while the path\n"
               "shortens. Aggregated over all intermediates this is why IVAL's average\n"
               "path length drops from 2.0x to ~1.61x minimal (k = 8) at the same\n"
               "worst-case throughput.\n\n";

  const TorusRouting val = make_valiant(t);
  const TorusRouting ival = make_ival(t);
  std::cout << "VAL  normalized locality: " << val.normalized_locality() << "\n";
  std::cout << "IVAL normalized locality: " << ival.normalized_locality() << "\n";
  return 0;
}
