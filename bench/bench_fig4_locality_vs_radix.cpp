// Figure 4: average path length (normalized to minimal) of worst-case
// optimal algorithms versus radix k — IVAL (closed form), 2TURN (path LP)
// and the unrestricted optimum (arc LP, lexicographic). The paper highlights
// the odd/even oscillation and that 2TURN == optimal at k = 4 and 6.
//
// Flags: --kmin (default 3), --kmax (default 8; the LPs grow as O(N^2) rows,
// raise at your own pace), --skip-optimal, --skip-2turn, --json <path>
// (one JSON record per radix with the obs snapshot of that radix's solves),
// --perf (hardware-counter/rusage perf block per record; see
// bench::JsonOutput).
#include "bench_common.hpp"

#include "tcr/core/design.hpp"
#include "tcr/core/path_design.hpp"
#include "tcr/metrics/worst_case.hpp"
#include "tcr/util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace tcr;
  const Cli cli(argc, argv);
  const int kmin = cli.get_int("kmin", 3);
  const int kmax = cli.get_int("kmax", 8);
  bench::JsonOutput jout(cli, "fig4_locality_vs_radix",
                         obs::Json::object()
                             .set("kmin", kmin)
                             .set("kmax", kmax)
                             .set("skip_2turn", cli.has("skip-2turn"))
                             .set("skip_optimal", cli.has("skip-optimal")));
  bench::TraceOutput trace(cli);
  bench::HeartbeatOutput heartbeat(cli, "fig4_locality_vs_radix", nullptr);

  bench::banner("Figure 4: locality of worst-case-optimal algorithms vs radix",
                "IVAL closed form; 2TURN path LP; optimal arc LP");

  TextTable table({"k", "IVAL", "2TURN", "optimal", "2TURN wc/cap", "time(s)"});
  for (int k = kmin; k <= kmax; ++k) {
    const Torus torus(k);
    Stopwatch sw;
    const double ival = make_ival(torus).normalized_locality();

    double two_turn = -1.0, two_turn_wc = -1.0;
    lp::Certificate two_turn_cert, optimal_cert;
    if (!cli.has("skip-2turn")) {
      const auto res = design_two_turn(torus);
      two_turn_cert = res.certificate;
      if (res.status == lp::Status::Optimal) {
        two_turn = res.routing.normalized_locality();
        two_turn_wc = worst_case_capacity_fraction(res.routing);
      } else {
        std::cout << "k=" << k
                  << " 2TURN: " << bench::status_line(res.status, res.note) << "\n";
      }
    }
    double optimal = -1.0;
    if (!cli.has("skip-optimal")) {
      const auto res = design_worst_case_optimal(torus);
      optimal_cert = res.certificate;
      if (res.status == lp::Status::Optimal) {
        optimal = res.locality_norm;
      } else {
        std::cout << "k=" << k
                  << " optimal: " << bench::status_line(res.status, res.note) << "\n";
      }
    }
    table.add_row_mixed({std::to_string(k)}, {ival, two_turn, optimal, two_turn_wc,
                                              sw.seconds()});
    auto fields = obs::Json::object();
    fields.set("k", k)
        .set("ival_locality", ival)
        .set("two_turn_locality", two_turn)
        .set("optimal_locality", optimal)
        .set("two_turn_wc_capacity_fraction", two_turn_wc)
        .set("wall_s", sw.seconds())
        .set("two_turn_certificate", bench::certificate_json(two_turn_cert))
        .set("optimal_certificate", bench::certificate_json(optimal_cert));
    jout.point(std::move(fields));
    std::cout << "k=" << k << " done\n";
  }
  table.print(std::cout);
  std::cout << "\npaper shape: IVAL settles near 1.64, optimal oscillates around ~1.52\n"
               "with even radices showing the larger IVAL-vs-optimal gap; 2TURN matches\n"
               "the optimal exactly at k = 4 and k = 6 and stays within ~0.4% at k = 8.\n";
  return 0;
}
