// §3.3 approximation-quality claim: the linear average-case cost (reciprocal
// of the arithmetic-mean max channel load) tracks the true sampled mean
// throughput within ~5% at |X| = 100, N = 64, for the paper's algorithms.
//
// Flags: --k (default 8), --samples (default 100), --kind (sinkhorn |
// birkhoff4 | perm), --json <path> (one JSON record per algorithm), --perf
// (hardware-counter/rusage perf block per record; see bench::JsonOutput).
#include "bench_common.hpp"

#include <cmath>

#include "tcr/metrics/average_case.hpp"
#include "tcr/trace/tracer.hpp"
#include "tcr/traffic/sampler.hpp"

int main(int argc, char** argv) {
  using namespace tcr;
  const Cli cli(argc, argv);
  const int k = cli.get_int("k", 8);
  const int count = cli.get_int("samples", 100);
  const std::string kind = cli.get_string("kind", "sinkhorn");
  bench::JsonOutput jout(cli, "avgcase_approx",
                         obs::Json::object().set("k", k).set("samples", count).set("kind", kind));
  bench::TraceOutput trace(cli);
  bench::HeartbeatOutput heartbeat(cli, "avgcase_approx", nullptr);

  bench::banner("Section 3.3: quality of the linear average-case approximation",
                "|X| = " + std::to_string(count) + ", sampler = " + kind);
  const Torus torus(k);
  Rng rng(333);
  trace::Span bench_span("avgcase");
  bench_span.attr("k", static_cast<std::int64_t>(k));
  bench_span.attr("samples", static_cast<std::int64_t>(count));
  const auto samples = [&] {
    trace::Span s("avgcase.sample_traffic");
    s.attr("kind", kind);
    return sample_traffic_set(rng, torus.num_nodes(), count, kind);
  }();

  TextTable table({"algorithm", "1/mean-load (approx)", "mean 1/load (true)", "error %"});
  double worst = 0.0;
  for (const auto& r : bench::table1_algorithms(torus)) {
    trace::Span eval_span("avgcase.eval");
    eval_span.attr("algorithm", r.name());
    const auto res = average_case(r, samples);
    const double err = 100.0 * std::abs(res.approx_throughput / res.true_throughput - 1.0);
    eval_span.attr("error_pct", err);
    worst = std::max(worst, err);
    table.add_row_mixed({r.name()}, {res.approx_throughput, res.true_throughput, err});
    auto fields = obs::Json::object();
    fields.set("k", k)
        .set("algorithm", r.name())
        .set("samples", count)
        .set("kind", kind)
        .set("approx_throughput", res.approx_throughput)
        .set("true_throughput", res.true_throughput)
        .set("error_pct", err);
    jout.point(std::move(fields));
  }
  table.print(std::cout);
  std::cout << "\nworst-case approximation error: " << TextTable::num(worst, 2)
            << "%  (paper claim: ~5% at |X|=100, N=64)\n";
  return 0;
}
