// Microbenchmarks (google-benchmark) of the library's computational
// kernels: Hungarian matching, channel-load evaluation, sparse LU
// factorization, the revised simplex on a capacity LP, the flit simulator
// cycle loop, and the tcr::obs / tcr::trace instrumentation primitives (the
// LP kernels double as the overhead check: BM_CapacityLP runs with
// fine-grained timing off, BM_CapacityLPTimed with it on, and
// BM_CapacityLPTraced with the span tracer collecting).
//
// This binary measures wall-clock, not paper quantities, so it is the one
// bench outside the tcr-repro presets and the report::kSchemaVersion record
// schema — google-benchmark owns its output (--benchmark_format=json).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "tcr/core/arc_flow.hpp"
#include "tcr/lin/sparse_lu.hpp"
#include "tcr/lp/maxflow.hpp"
#include "tcr/matching/hungarian.hpp"
#include "tcr/metrics/loads.hpp"
#include "tcr/metrics/worst_case.hpp"
#include "tcr/obs/registry.hpp"
#include "tcr/perf/perf.hpp"
#include "tcr/routing/dor.hpp"
#include "tcr/routing/valiant.hpp"
#include "tcr/sim/sharding.hpp"
#include "tcr/telemetry/telemetry.hpp"
#include "tcr/sim/simulator.hpp"
#include "tcr/trace/tracer.hpp"
#include "tcr/traffic/sampler.hpp"
#include "tcr/util/rng.hpp"

namespace {

using namespace tcr;

void BM_Hungarian(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  DenseMatrix w(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) w(i, j) = rng.uniform(0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_assignment_max(w).value);
  }
}
BENCHMARK(BM_Hungarian)->Arg(16)->Arg(64)->Arg(144);

void BM_WorstCaseExact(benchmark::State& state) {
  const Torus t(static_cast<int>(state.range(0)));
  const TorusRouting dor = make_dor(t);
  dor.load_table();
  for (auto _ : state) {
    benchmark::DoNotOptimize(worst_case(dor).gamma);
  }
}
BENCHMARK(BM_WorstCaseExact)->Arg(4)->Arg(8);

void BM_ChannelLoadsDense(benchmark::State& state) {
  const Torus t(static_cast<int>(state.range(0)));
  const TorusRouting val = make_valiant(t);
  val.load_table();
  Rng rng(2);
  const auto lambda = sinkhorn_sample(rng, t.num_nodes());
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_channel_load(val, lambda));
  }
}
BENCHMARK(BM_ChannelLoadsDense)->Arg(4)->Arg(8);

void BM_SparseLuFactor(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Rng rng(3);
  std::vector<Triplet> trips;
  for (int j = 0; j < m; ++j) {
    trips.push_back({j, j, 4.0});
    for (int r = 0; r < 4; ++r)
      trips.push_back({static_cast<int>(rng.below(m)), j, rng.uniform(-1, 1)});
  }
  SparseMatrix a(m, m, trips);
  std::vector<int> basis(m);
  for (int j = 0; j < m; ++j) basis[j] = j;
  for (auto _ : state) {
    SparseLU lu;
    benchmark::DoNotOptimize(lu.factor(a, basis));
  }
}
BENCHMARK(BM_SparseLuFactor)->Arg(256)->Arg(1024)->Arg(4096);

void BM_CapacityLP(benchmark::State& state) {
  const Torus t(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SymmetricDesignConfig cfg;
    cfg.objective = DesignObjective::Uniform;
    SymmetricArcDesign design(t, cfg);
    benchmark::DoNotOptimize(design.solve().objective);
  }
}
BENCHMARK(BM_CapacityLP)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

// Same solve as BM_CapacityLP but with the registry's fine-grained timing
// enabled (what a --json sink turns on). Comparing the two quantifies the
// cost of the per-iteration ScopedTimer spans; BM_CapacityLP vs a build
// without tcr::obs quantifies the always-on counters, which are plain
// relaxed atomic adds.
void BM_CapacityLPTimed(benchmark::State& state) {
  const Torus t(static_cast<int>(state.range(0)));
  obs::Registry::instance().set_timing_enabled(true);
  for (auto _ : state) {
    SymmetricDesignConfig cfg;
    cfg.objective = DesignObjective::Uniform;
    SymmetricArcDesign design(t, cfg);
    benchmark::DoNotOptimize(design.solve().objective);
  }
  obs::Registry::instance().set_timing_enabled(false);
}
BENCHMARK(BM_CapacityLPTimed)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ObsCounterAdd(benchmark::State& state) {
  auto& c = obs::Registry::instance().counter("bench.obs.counter");
  for (auto _ : state) c.add(1);
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsHistogramRecord(benchmark::State& state) {
  auto& h = obs::Registry::instance().histogram("bench.obs.hist", 1e-9, 2.0);
  double v = 1e-6;
  for (auto _ : state) {
    h.record(v);
    v = v < 1e3 ? v * 1.0001 : 1e-6;
  }
}
BENCHMARK(BM_ObsHistogramRecord);

// The simulator-ejection histogram cost: record() with the packet-latency
// geometry (least 1.0, growth 1.2 — 95 narrow buckets, so the old
// per-record std::log was the dominant term). The walk covers the whole
// bucket range to defeat branch-predictor lock-in on one boundary. The
// boundary-table record() should beat the historical log-based one; the
// pr10 BENCH_history entry pins the level.
void BM_HistogramRecord(benchmark::State& state) {
  auto& h = obs::Registry::instance().histogram("bench.obs.latency_hist", 1.0, 1.2);
  double v = 1.0;
  for (auto _ : state) {
    h.record(v);
    v = v < 3e7 ? v * 1.37 : 1.0;  // ~every bucket of the 1.2-growth range
  }
}
BENCHMARK(BM_HistogramRecord);

// Disabled-heartbeat cost: what every telemetry sampling site (the simplex
// safepoint, sweep point boundaries, the sim cancel cadence) pays when no
// --heartbeat flag is given — one relaxed atomic load and a
// predicted-not-taken branch, same budget as BM_TraceSpanDisabled. CI's
// overhead guard pins the ratio to BM_ObsScopedTimerDisabled.
void BM_TelemetryPollDisabled(benchmark::State& state) {
  telemetry::stop();
  for (auto _ : state) {
    telemetry::poll();
    benchmark::DoNotOptimize(&state);
  }
}
BENCHMARK(BM_TelemetryPollDisabled);

void BM_ObsScopedTimerDisabled(benchmark::State& state) {
  auto& tm = obs::Registry::instance().timer("bench.obs.timer");
  obs::Registry::instance().set_timing_enabled(false);
  for (auto _ : state) {
    obs::ScopedTimer span(tm);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsScopedTimerDisabled);

void BM_ObsScopedTimerEnabled(benchmark::State& state) {
  auto& tm = obs::Registry::instance().timer("bench.obs.timer");
  for (auto _ : state) {
    obs::ScopedTimer span(tm, /*enabled=*/true);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_ObsScopedTimerEnabled);

// Disabled-tracing span cost: what every instrumented call site pays when
// no --trace flag is given. Should stay within noise of
// BM_ObsScopedTimerDisabled — both are a relaxed atomic load and a
// predicted-not-taken branch; CI's overhead guard asserts the ratio.
void BM_TraceSpanDisabled(benchmark::State& state) {
  trace::Tracer::instance().stop();
  for (auto _ : state) {
    trace::Span span("bench.trace.span");
    span.attr("i", 1);
    span.attr("x", 0.5);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_TraceSpanDisabled);

// Enabled-tracing span cost: two clock reads, attr copies, and one
// mutex-protected ring-buffer push per span.
void BM_TraceSpanEnabled(benchmark::State& state) {
  trace::TracerConfig cfg;
  cfg.capacity = 1 << 16;
  trace::Tracer::instance().start(cfg);
  for (auto _ : state) {
    trace::Span span("bench.trace.span");
    span.attr("i", 1);
    span.attr("x", 0.5);
    benchmark::DoNotOptimize(&span);
  }
  trace::Tracer::instance().stop();
  trace::Tracer::instance().clear();
}
BENCHMARK(BM_TraceSpanEnabled);

// Disabled-perf SpanSample cost: what the sweep.point call site pays when no
// --perf flag is given — one relaxed load and a predicted-not-taken branch,
// same budget as BM_TraceSpanDisabled. CI's overhead guard pins the ratio to
// BM_ObsScopedTimerDisabled.
void BM_PerfSpanSampleDisabled(benchmark::State& state) {
  perf::stop();
  for (auto _ : state) {
    trace::Span span("bench.perf.span");
    perf::SpanSample ps(span);
    benchmark::DoNotOptimize(&ps);
  }
}
BENCHMARK(BM_PerfSpanSampleDisabled);

// Enabled sampler read cost: one getrusage + /proc read per sample() —
// bench-phase granularity, deliberately not cheap enough for hot loops.
void BM_PerfPhaseSamplerEnabled(benchmark::State& state) {
  perf::PerfConfig cfg;
  perf::start(cfg);
  perf::PhaseSampler sampler;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample().cpu_ns);
  }
  perf::stop();
}
BENCHMARK(BM_PerfPhaseSamplerEnabled);

// End-to-end solver cost with tracing collecting (spans + sampled
// convergence counters). Compare against BM_CapacityLP (tracing off) and
// BM_CapacityLPTimed (obs timing on) for the full overhead picture.
void BM_CapacityLPTraced(benchmark::State& state) {
  const Torus t(static_cast<int>(state.range(0)));
  trace::TracerConfig cfg;
  cfg.capacity = 1 << 16;
  trace::Tracer::instance().start(cfg);
  for (auto _ : state) {
    SymmetricDesignConfig dcfg;
    dcfg.objective = DesignObjective::Uniform;
    SymmetricArcDesign design(t, dcfg);
    benchmark::DoNotOptimize(design.solve().objective);
  }
  trace::Tracer::instance().stop();
  trace::Tracer::instance().clear();
}
BENCHMARK(BM_CapacityLPTraced)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

// Dual-simplex rhs-edit restart: one warm sweep step — move the locality
// bound, re-solve from the previous optimal basis. The warm basis stays
// dual-feasible across a pure rhs edit, so the solve runs the lp.dual
// reoptimization (a handful of pivots) instead of a cold phase-1/phase-2
// pass; compare against BM_CapacityLP for the cold-solve cost.
void BM_DualRestart(benchmark::State& state) {
  const Torus t(static_cast<int>(state.range(0)));
  const double hmin = t.mean_min_distance();
  SymmetricDesignConfig cfg;
  cfg.objective = DesignObjective::WorstCase;
  cfg.locality_equals = 1.3 * hmin;
  cfg.locality_le = true;
  SymmetricArcDesign design(t, cfg);
  DesignResult res = design.solve();
  double next = 1.5;
  for (auto _ : state) {
    design.set_locality_bound(next * hmin);
    res = design.solve({}, &res.basis);
    next = next == 1.5 ? 1.3 : 1.5;  // every solve sees a real rhs change
    benchmark::DoNotOptimize(res.objective);
  }
}
BENCHMARK(BM_DualRestart)->Arg(4)->Unit(benchmark::kMillisecond);

// Flow-crash path routing: the Dinic pass flow_crash_hints() runs per
// representative commodity — route one unit 0 -> e over the torus channel
// graph and peel the path. Pure combinatorial kernel, no LP.
void BM_DinicCrashPath(benchmark::State& state) {
  const Torus t(static_cast<int>(state.range(0)));
  const int n = t.num_nodes(), nc = t.num_channels();
  for (auto _ : state) {
    std::size_t total_arcs = 0;
    for (int e = 1; e < n; ++e) {
      lp::MaxFlow mf(n);
      for (int c = 0; c < nc; ++c) mf.add_arc(t.channel_src(c), t.channel_dst(c), 1.0);
      mf.solve(0, e, 1.0);
      total_arcs += mf.decompose_paths(0, e).front().size();
    }
    benchmark::DoNotOptimize(total_arcs);
  }
}
BENCHMARK(BM_DinicCrashPath)->Arg(4)->Arg(8);

void BM_SimulatorCycles(benchmark::State& state) {
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  SimConfig cfg;
  cfg.vcs = 2;
  cfg.warmup_cycles = 0;
  cfg.measure_cycles = static_cast<int>(state.range(0));
  cfg.drain_cycles = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(dor, 0.3, {}, cfg).accepted_rate);
  }
}
BENCHMARK(BM_SimulatorCycles)->Arg(1000)->Unit(benchmark::kMillisecond);

// Raw struct-of-arrays cycle kernel: phase 1 + phase 2 on a single shard
// with no coordinator bookkeeping — the inner loop the saturation bench
// spends its wall-clock in. k=8 DOR uniform at 0.40 flits/node/cycle keeps
// the network loaded but unsaturated, so per-iteration work is steady.
void BM_SimCycleSoA(benchmark::State& state) {
  const Torus t(8);
  const TorusRouting dor = make_dor(t);
  TrafficGen gen(dor, 0.40, 42);
  gen.prepare();
  sim_detail::Engine eng;
  eng.init(t, gen, nullptr, 4, 4, 1, 42, std::max(1, gen.max_path_len()));
  obs::Histogram hist(1.0, 1.2);
  eng.run_latency = &hist;
  eng.global_latency = &hist;
  eng.injecting = true;
  for (auto _ : state) {
    eng.phase1(0);
    eng.phase2(0);
    ++eng.cycle;
  }
  benchmark::DoNotOptimize(eng.live_flits());
}
BENCHMARK(BM_SimCycleSoA);

// One sharded epoch step: phase 1 over every shard, then phase 2 over every
// shard, in shard order — exactly the work between two barrier releases of
// the parallel loop, minus the barriers themselves. Against BM_SimCycleSoA
// this isolates the sharding overhead (mailbox copies on cross-shard hops,
// per-shard loop bookkeeping) from thread-synchronization cost.
void BM_SimShardedEpoch(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const Torus t(8);
  const TorusRouting dor = make_dor(t);
  TrafficGen gen(dor, 0.40, 42);
  gen.prepare();
  sim_detail::Engine eng;
  eng.init(t, gen, nullptr, 4, 4, shards, 42, std::max(1, gen.max_path_len()));
  obs::Histogram hist(1.0, 1.2);
  eng.run_latency = &hist;
  eng.global_latency = &hist;
  eng.injecting = true;
  for (auto _ : state) {
    for (int s = 0; s < shards; ++s) eng.phase1(s);
    for (int s = 0; s < shards; ++s) eng.phase2(s);
    ++eng.cycle;
  }
  benchmark::DoNotOptimize(eng.live_flits());
}
BENCHMARK(BM_SimShardedEpoch)->Arg(4);

}  // namespace
