// Figure 6: average-case throughput (fraction of capacity) vs normalized
// locality on the k-ary 2-cube. The optimal curve solves LP (15) on
// permutation design samples; the algorithm points (DOR/ROMM/RLB/RLBth/VAL/
// IVAL plus designed 2TURN / 2TURNA / AVG-OPT) are evaluated on dense
// doubly-stochastic samples, eq. (9) with |X| = --samples (default 100).
//
// Flags: --k (default 8), --points (default 9), --samples (default 100),
// --design-samples (default 24), --skip-curve, --skip-design, --warm/--cold/
// --chains (warm-start chaining, see bench::sweep_config), --threads N
// (solve the sweep's chains on a pool), --json <path>
// (one JSON record per curve point / designed routing / algorithm point;
// the curve's obs snapshot arrives in a trailing sweep_summary record),
// --trace <path> (Perfetto span trace; see bench::TraceOutput), --perf
// (hardware-counter/rusage perf block per record; see bench::JsonOutput),
// plus the run-control flags --deadline/--budget/--rss-limit-mb/
// --checkpoint/--resume (see bench::RunControl).
#include "bench_common.hpp"

#include "tcr/core/design.hpp"
#include "tcr/core/path_design.hpp"
#include "tcr/core/tradeoff.hpp"
#include "tcr/metrics/average_case.hpp"
#include "tcr/metrics/worst_case.hpp"
#include "tcr/traffic/sampler.hpp"
#include "tcr/util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace tcr;
  const Cli cli(argc, argv);
  const int k = cli.get_int("k", 8);
  const int points = cli.get_int("points", 5);
  const int eval_count = cli.get_int("samples", 100);
  const int design_count = cli.get_int("design-samples", 12);
  SweepConfig sweep = bench::sweep_config(cli);
  bench::RunControl rc(cli);
  lp::SimplexOptions opts = bench::solver_options(cli);
  rc.apply(sweep, opts);
  bench::JsonOutput jout(cli, "fig6_avg_tradeoff",
                         obs::Json::object()
                             .set("k", k)
                             .set("points", points)
                             .set("samples", eval_count)
                             .set("design_samples", design_count)
                             .set("warm_start", sweep.warm_start)
                             .set("chains", sweep.chains)
                             .set("dual", opts.dual)
                             .set("flow_crash", opts.flow_crash)
                             .set("skip_curve", cli.has("skip-curve"))
                             .set("skip_design", cli.has("skip-design")));
  bench::TraceOutput trace(cli);
  bench::HeartbeatOutput heartbeat(cli, "fig6_avg_tradeoff", &rc.token());

  bench::banner("Figure 6: average-case throughput vs locality, " + std::to_string(k) +
                    "-ary 2-cube",
                "curve = LP (15) on permutation samples; points = eq. (9)");
  const Torus torus(k);
  Rng rng(606);
  std::vector<std::vector<int>> design_samples;
  for (int i = 0; i < design_count; ++i) design_samples.push_back(rng.permutation(torus.num_nodes()));
  const auto eval_samples = sample_traffic_set(rng, torus.num_nodes(), eval_count, "sinkhorn");
  const double ideal = torus.ideal_uniform_load();

  if (!cli.has("skip-curve")) {
    Stopwatch sw;
    const auto pool = bench::sweep_pool(cli);
    const std::vector<TradeoffPoint> curve = average_case_tradeoff(
        torus, design_samples, locality_grid(1.0, 2.0, points), opts, pool.get(), sweep);
    std::cout << "curve solved in " << sw.seconds() << " s ("
              << (sweep.warm_start ? "warm" : "cold") << " starts)\n\n";
    rc.write_sweep_report("fig6_avg_tradeoff", curve);
    for (const TradeoffPoint& pt : curve) {
      auto fields = obs::Json::object();
      fields.set("series", "optimal_curve")
          .set("k", k)
          .set("locality", pt.locality)
          .set("capacity_fraction", pt.capacity_fraction)  // NaN -> null when unsolved
          .set("status", lp::to_string(pt.status))
          .set("warm_start", pt.warm_start)
          .set("certificate", bench::certificate_json(pt.certificate));
      if (pt.provenance != "measured") {
        fields.set("provenance", pt.provenance).set("note", pt.note);
      }
      jout.record(std::move(fields));
    }
    auto summary = obs::Json::object();
    summary.set("series", "sweep_summary")
        .set("k", k)
        .set("points", points)
        .set("warm_start", sweep.warm_start)
        .set("chains", sweep.chains);
    jout.point(std::move(summary));
    TextTable curve_table({"H_avg/minimal (L)", "optimal Theta_avg/cap", "status"});
    for (const auto& pt : curve) {
      curve_table.add_row({TextTable::num(pt.locality, 3),
                           pt.solved() ? TextTable::num(pt.capacity_fraction, 4) : "unsolved",
                           bench::status_line(pt.status, pt.note)});
    }
    curve_table.print(std::cout);
  }

  auto algorithms = bench::table1_algorithms(torus);
  if (!cli.has("skip-design")) {
    auto design_point = [&](const std::string& name, lp::Status status,
                            const std::string& note, const lp::Certificate& cert) {
      if (status != lp::Status::Optimal) {
        std::cout << name << " design: " << bench::status_line(status, note) << "\n";
      }
      auto fields = obs::Json::object();
      fields.set("series", "design_solve")
          .set("k", k)
          .set("algorithm", name)
          .set("status", lp::to_string(status))
          .set("certificate", bench::certificate_json(cert));
      jout.point(std::move(fields));
    };
    auto two_turn = design_two_turn(torus);
    design_point("2TURN", two_turn.status, two_turn.note, two_turn.certificate);
    if (two_turn.status == lp::Status::Optimal) algorithms.push_back(two_turn.routing);
    auto two_turn_a = design_two_turn_avg(torus, design_samples);
    design_point("2TURNA", two_turn_a.status, two_turn_a.note, two_turn_a.certificate);
    if (two_turn_a.status == lp::Status::Optimal) algorithms.push_back(two_turn_a.routing);
    auto avg_opt = design_average_case_optimal(torus, design_samples);
    design_point("AVG-OPT", avg_opt.status, avg_opt.note, avg_opt.certificate);
    if (avg_opt.status == lp::Status::Optimal) algorithms.push_back(avg_opt.routing);
    auto min_avg = design_minimal_avg(torus, design_samples);
    design_point("MIN-A", min_avg.status, min_avg.note, min_avg.certificate);
    if (min_avg.status == lp::Status::Optimal) algorithms.push_back(min_avg.routing);
  }

  std::cout << "\nalgorithm points (dense doubly-stochastic evaluation, |X|=" << eval_count
            << "):\n";
  TextTable pts({"algorithm", "H_avg/minimal", "Theta_avg/cap"});
  for (const auto& r : algorithms) {
    const double loc = r.normalized_locality();
    const double avg = ideal * average_case(r, eval_samples).approx_throughput;
    pts.add_row_mixed({r.name()}, {loc, avg});
    auto fields = obs::Json::object();
    fields.set("series", "algorithm")
        .set("k", k)
        .set("algorithm", r.name())
        .set("locality", loc)
        .set("avg_capacity_fraction", avg);
    jout.point(std::move(fields));
  }
  pts.print(std::cout);
  std::cout << "\npaper shape (k=8): max average-case ~0.628 of capacity; VAL at 0.50;\n"
               "IVAL within ~8.4% and 2TURN within ~6.4% of the maximum; 2TURNA within\n"
               "~4.6%; the minimal-path average-optimal matches ROMM (§5.4).\n";
  return rc.finish();
}
