// Table 1 + the numeric points plotted in Figures 1 and 6: for every
// algorithm the paper discusses (DOR, ROMM, RLB, RLBth, VAL, IVAL, plus the
// LP-designed 2TURN / 2TURNA), print normalized average path length,
// worst-case throughput and average-case throughput as fractions of
// capacity.
//
// Flags: --k <radix> (default 8), --samples <n> eval traffic samples
// (default 100), --design-samples <n> permutations inside the 2TURNA LP
// (default 32), --skip-design (skip the LP-designed algorithms),
// --json <path> (one JSON-lines record per design solve and per algorithm
// row, each carrying the obs snapshot of the work it covers), --perf
// (hardware-counter/rusage perf block per record; see bench::JsonOutput).
#include "bench_common.hpp"

#include "tcr/core/path_design.hpp"
#include "tcr/metrics/average_case.hpp"
#include "tcr/metrics/worst_case.hpp"
#include "tcr/traffic/sampler.hpp"
#include "tcr/util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace tcr;
  const Cli cli(argc, argv);
  const int k = cli.get_int("k", 8);
  const int eval_samples = cli.get_int("samples", 100);
  const int design_samples = cli.get_int("design-samples", 16);
  bench::JsonOutput jout(cli, "table1_algorithms",
                         obs::Json::object()
                             .set("k", k)
                             .set("samples", eval_samples)
                             .set("design_samples", design_samples)
                             .set("skip_design", cli.has("skip-design")));
  bench::TraceOutput trace(cli);
  bench::HeartbeatOutput heartbeat(cli, "table1_algorithms", nullptr);

  bench::banner("Table 1 / Figure 1 & 6 algorithm points — " + std::to_string(k) +
                    "-ary 2-cube",
                "Towles, Dally & Boyd, SPAA'03");

  const Torus torus(k);
  Rng rng(20030607);
  const auto eval_set = sample_traffic_set(rng, torus.num_nodes(), eval_samples, "sinkhorn");

  auto algorithms = bench::table1_algorithms(torus);
  if (!cli.has("skip-design")) {
    Stopwatch sw;
    std::cout << "solving 2TURN design LP (worst-case, lexicographic)...\n";
    auto two_turn = design_two_turn(torus);
    std::cout << "  " << bench::status_line(two_turn.status, two_turn.note) << " in "
              << sw.seconds() << " s\n";
    {
      auto fields = obs::Json::object();
      fields.set("series", "design_solve")
          .set("k", k)
          .set("algorithm", "2TURN")
          .set("status", lp::to_string(two_turn.status))
          .set("wall_s", sw.seconds())
          .set("certificate", bench::certificate_json(two_turn.certificate));
      jout.point(std::move(fields));
    }
    if (two_turn.status == lp::Status::Optimal) algorithms.push_back(two_turn.routing);

    std::vector<std::vector<int>> perms;
    for (int i = 0; i < design_samples; ++i) perms.push_back(rng.permutation(torus.num_nodes()));
    sw.reset();
    std::cout << "solving 2TURNA design LP (average-case, |X|=" << design_samples << ")...\n";
    auto two_turn_a = design_two_turn_avg(torus, perms);
    std::cout << "  " << bench::status_line(two_turn_a.status, two_turn_a.note) << " in "
              << sw.seconds() << " s\n";
    {
      auto fields = obs::Json::object();
      fields.set("series", "design_solve")
          .set("k", k)
          .set("algorithm", "2TURNA")
          .set("status", lp::to_string(two_turn_a.status))
          .set("wall_s", sw.seconds())
          .set("certificate", bench::certificate_json(two_turn_a.certificate));
      jout.point(std::move(fields));
    }
    if (two_turn_a.status == lp::Status::Optimal) algorithms.push_back(two_turn_a.routing);
  }

  TextTable table({"algorithm", "H_avg/minimal", "Theta_wc/cap", "Theta_avg/cap (approx)",
                   "Theta_avg/cap (true mean)"});
  for (const auto& r : algorithms) {
    r.validate();
    const auto avg = average_case(r, eval_set);
    const double ideal = torus.ideal_uniform_load();
    const double loc = r.normalized_locality();
    const double wc = worst_case_capacity_fraction(r);
    table.add_row_mixed({r.name()},
                        {loc, wc, ideal * avg.approx_throughput, ideal * avg.true_throughput});
    auto fields = obs::Json::object();
    fields.set("series", "algorithm")
        .set("k", k)
        .set("algorithm", r.name())
        .set("locality", loc)
        .set("wc_capacity_fraction", wc)
        .set("avg_capacity_fraction_approx", ideal * avg.approx_throughput)
        .set("avg_capacity_fraction_true", ideal * avg.true_throughput);
    jout.point(std::move(fields));
  }
  table.print(std::cout);
  std::cout << "\npaper reference points (8-ary 2-cube): VAL locality 2.0 & wc 0.50;"
               "\nIVAL locality ~1.61 & wc 0.50; 2TURN locality ~1.48 & wc 0.50;"
               "\nmax average-case throughput ~0.628 of capacity (Fig. 6).\n";
  return 0;
}
