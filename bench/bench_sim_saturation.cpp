// Extension/validation experiment (not a paper figure): the flit-level
// simulator's measured saturation throughput versus the analytic bound
// 1/gamma_max for each algorithm and traffic pattern. The paper's §2.1
// idealization says practical routers reach a good fraction of the bound;
// this bench quantifies it for our router model and demonstrates the
// deadlock-free VC assignments of §5.2 under load.
//
// Flags: --k (default 4), --cycles (default 3000), --threads N (simulator
// worker threads; clamped to the host's core count since results are
// bitwise thread-invariant — the flag only trades wall-clock), --algo A /
// --pattern P (case-insensitive filters restricting the sweep to one
// algorithm and/or pattern — how CI runs a single k=8 curve), --json <path>
// (one JSON record per algorithm x pattern, with the sim obs snapshot),
// --trace <path> (Perfetto span trace; sim.epoch spans every
// --trace-cycles cycles, default 500; see bench::TraceOutput), --perf
// (hardware-counter/rusage perf block per record, plus the derived
// perf.sim_wall_ns_per_flit_cycle quantity — wall time of the high-load
// probe divided by its flit-cycles, the simulator's inverse throughput that
// the tcr-perf gate watches; see bench::JsonOutput), --deadlock-threshold N
// (cycles without progress before the watchdog fires on the high-load
// probe, default 1000; see SimConfig::deadlock_threshold), plus the
// run-control flags --deadline/--budget/--rss-limit-mb (the sim polls its
// token every 256 cycles; a cut run reports partial rows and exits with
// bench::kExitPartial).
#include "bench_common.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <thread>

#include "tcr/metrics/loads.hpp"
#include "tcr/metrics/worst_case.hpp"
#include "tcr/sim/simulator.hpp"
#include "tcr/traffic/patterns.hpp"

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcr;
  const Cli cli(argc, argv);
  const int k = cli.get_int("k", 4);
  const int cycles = cli.get_int("cycles", 3000);
  const long deadlock_threshold = cli.get_int("deadlock-threshold", 1000);
  const int threads_requested = cli.get_int("threads", 1);
  // Results are bitwise-identical for any thread count (see
  // docs/simulator.md), so oversubscribing a small host would only slow the
  // run down; clamp to the cores actually available.
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  const int threads = std::max(1, std::min(threads_requested, hw));
  const std::string algo_filter = lower(cli.get_string("algo", ""));
  const std::string pattern_filter = lower(cli.get_string("pattern", ""));
  bench::RunControl rc(cli);
  // The filters join the meta params so a filtered run (CI's one-curve
  // smoke) lands under its own perf config, not the full sweep's.
  auto meta = obs::Json::object()
                  .set("k", k)
                  .set("cycles", cycles)
                  .set("deadlock_threshold", deadlock_threshold)
                  .set("threads", threads_requested);
  if (!algo_filter.empty()) meta.set("algo", algo_filter);
  if (!pattern_filter.empty()) meta.set("pattern", pattern_filter);
  // Heartbeat-instrumented runs land under their own perf config so the
  // tcr-perf gate compares the heartbeat-on smoke against its own history,
  // not the uninstrumented run's.
  if (cli.has("heartbeat")) meta.set("heartbeat", true);
  bench::JsonOutput jout(cli, "sim_saturation", std::move(meta));
  bench::TraceOutput trace(cli);
  bench::HeartbeatOutput heartbeat(cli, "sim_saturation", &rc.token());

  bench::banner("Flit-level simulator: measured vs analytic saturation throughput",
                "extension experiment; k = " + std::to_string(k) + ", threads = " +
                    std::to_string(threads) +
                    (threads == threads_requested
                         ? ""
                         : " (requested " + std::to_string(threads_requested) + ")"));
  const Torus torus(k);
  SimConfig cfg;
  cfg.warmup_cycles = cycles / 3;
  cfg.measure_cycles = cycles;
  cfg.drain_cycles = 0;
  cfg.threads = threads;
  rc.apply(cfg);
  if (trace.enabled()) cfg.trace_every_k_cycles = cli.get_int("trace-cycles", 500);

  TextTable table({"algorithm", "pattern", "analytic Theta", "sim saturation", "fraction",
                   "deadlock", "lat p50", "lat p95", "lat p99", "Mflit-cyc/s"});
  const std::vector<std::string> patterns = {"uniform", "complement", "tornado"};
  for (auto make : {make_dor, make_ival, make_valiant}) {
    if (rc.cancelled()) break;
    const TorusRouting r = make(torus);
    if (!algo_filter.empty() && lower(r.name()) != algo_filter) continue;
    for (const auto& name : patterns) {
      if (!pattern_filter.empty() && name != pattern_filter) continue;
      std::vector<int> perm;
      double analytic;
      if (name == "uniform") {
        analytic = std::min(1.0, 1.0 / uniform_max_load(r));
      } else {
        perm = named_permutation(torus, name);
        analytic = std::min(1.0, 1.0 / max_channel_load(r, perm));
      }
      if (rc.cancelled()) break;
      const double sat = saturation_throughput(r, perm, cfg, 0.06);
      // A high-load probe for the deadlock and latency-distribution columns,
      // timed to give the flit-cycles/sec throughput of the simulator itself.
      SimConfig probe = cfg;
      probe.deadlock_threshold = deadlock_threshold;
      const auto probe_start = std::chrono::steady_clock::now();
      const auto high = simulate(r, 0.95, perm, probe);
      const double probe_wall_ns = std::chrono::duration<double, std::nano>(
                                       std::chrono::steady_clock::now() - probe_start)
                                       .count();
      if (high.cancelled || rc.cancelled()) {
        // A budget cut mid-probe leaves partial stats; drop the row rather
        // than report a half-measured latency distribution.
        break;
      }
      const double flit_cycles_per_sec =
          high.flit_cycles > 0 ? high.flit_cycles / (probe_wall_ns * 1e-9) : 0.0;
      const double wall_ns_per_flit_cycle =
          high.flit_cycles > 0 ? probe_wall_ns / static_cast<double>(high.flit_cycles) : 0.0;
      table.add_row({r.name(), name, TextTable::num(analytic, 3), TextTable::num(sat, 3),
                     TextTable::num(sat / analytic, 2), high.deadlocked ? "YES" : "no",
                     TextTable::num(high.p50_latency, 1), TextTable::num(high.p95_latency, 1),
                     TextTable::num(high.p99_latency, 1),
                     TextTable::num(flit_cycles_per_sec * 1e-6, 2)});
      auto fields = obs::Json::object();
      fields.set("k", k)
          .set("algorithm", r.name())
          .set("pattern", name)
          .set("threads", threads)
          .set("analytic_throughput", analytic)
          .set("sim_saturation", sat)
          .set("fraction_of_bound", sat / analytic)
          .set("deadlocked", high.deadlocked)
          .set("avg_latency", high.avg_latency)
          .set("p50_latency", high.p50_latency)
          .set("p95_latency", high.p95_latency)
          .set("p99_latency", high.p99_latency)
          .set("max_latency", high.max_latency)
          .set("flit_cycles", static_cast<std::int64_t>(high.flit_cycles))
          .set("flit_cycles_per_sec", flit_cycles_per_sec);
      // The derived quantity rides in the perf block (under --perf) so the
      // tcr-perf gate tracks the simulator's inverse throughput — lower is
      // better, matching the gate's regression direction.
      jout.point(std::move(fields), {{"sim_wall_ns_per_flit_cycle", wall_ns_per_flit_cycle}});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpectation: fractions well below saturation track 1.0x of the bound at\n"
               "low rates; at saturation an input-queued single-flit router typically\n"
               "reaches 60-100% of the ideal output-queued bound (§2.1).\n";
  return rc.finish();
}
