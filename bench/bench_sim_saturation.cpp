// Extension/validation experiment (not a paper figure): the flit-level
// simulator's measured saturation throughput versus the analytic bound
// 1/gamma_max for each algorithm and traffic pattern. The paper's §2.1
// idealization says practical routers reach a good fraction of the bound;
// this bench quantifies it for our router model and demonstrates the
// deadlock-free VC assignments of §5.2 under load.
//
// Flags: --k (default 4), --cycles (default 3000), --patterns
// (comma-free: runs uniform + complement + tornado), --json <path>
// (one JSON record per algorithm x pattern, with the sim obs snapshot),
// --trace <path> (Perfetto span trace; sim.epoch spans every
// --trace-cycles cycles, default 500; see bench::TraceOutput), --perf
// (hardware-counter/rusage perf block per record; see bench::JsonOutput),
// --deadlock-threshold N (cycles without progress before the watchdog fires
// on the high-load probe, default 1000; see SimConfig::deadlock_threshold),
// plus the run-control flags --deadline/--budget/--rss-limit-mb (the sim
// polls its token every 256 cycles; a cut run reports partial rows and
// exits with bench::kExitPartial).
#include "bench_common.hpp"

#include "tcr/metrics/loads.hpp"
#include "tcr/metrics/worst_case.hpp"
#include "tcr/sim/simulator.hpp"
#include "tcr/traffic/patterns.hpp"

int main(int argc, char** argv) {
  using namespace tcr;
  const Cli cli(argc, argv);
  const int k = cli.get_int("k", 4);
  const int cycles = cli.get_int("cycles", 3000);
  const long deadlock_threshold = cli.get_int("deadlock-threshold", 1000);
  bench::RunControl rc(cli);
  bench::JsonOutput jout(cli, "sim_saturation",
                         obs::Json::object().set("k", k).set("cycles", cycles).set(
                             "deadlock_threshold", deadlock_threshold));
  bench::TraceOutput trace(cli);

  bench::banner("Flit-level simulator: measured vs analytic saturation throughput",
                "extension experiment; k = " + std::to_string(k));
  const Torus torus(k);
  SimConfig cfg;
  cfg.warmup_cycles = cycles / 3;
  cfg.measure_cycles = cycles;
  cfg.drain_cycles = 0;
  rc.apply(cfg);
  if (trace.enabled()) cfg.trace_every_k_cycles = cli.get_int("trace-cycles", 500);

  TextTable table({"algorithm", "pattern", "analytic Theta", "sim saturation", "fraction",
                   "deadlock", "lat p50", "lat p95", "lat p99", "lat max"});
  const std::vector<std::string> patterns = {"uniform", "complement", "tornado"};
  for (auto make : {make_dor, make_ival, make_valiant}) {
    if (rc.cancelled()) break;
    const TorusRouting r = make(torus);
    for (const auto& name : patterns) {
      std::vector<int> perm;
      double analytic;
      if (name == "uniform") {
        analytic = std::min(1.0, 1.0 / uniform_max_load(r));
      } else {
        perm = named_permutation(torus, name);
        analytic = std::min(1.0, 1.0 / max_channel_load(r, perm));
      }
      if (rc.cancelled()) break;
      const double sat = saturation_throughput(r, perm, cfg, 0.06);
      // A high-load probe for the deadlock and latency-distribution columns.
      SimConfig probe = cfg;
      probe.deadlock_threshold = deadlock_threshold;
      const auto high = simulate(r, 0.95, perm, probe);
      if (high.cancelled || rc.cancelled()) {
        // A budget cut mid-probe leaves partial stats; drop the row rather
        // than report a half-measured latency distribution.
        break;
      }
      table.add_row({r.name(), name, TextTable::num(analytic, 3), TextTable::num(sat, 3),
                     TextTable::num(sat / analytic, 2), high.deadlocked ? "YES" : "no",
                     TextTable::num(high.p50_latency, 1), TextTable::num(high.p95_latency, 1),
                     TextTable::num(high.p99_latency, 1), TextTable::num(high.max_latency, 0)});
      auto fields = obs::Json::object();
      fields.set("k", k)
          .set("algorithm", r.name())
          .set("pattern", name)
          .set("analytic_throughput", analytic)
          .set("sim_saturation", sat)
          .set("fraction_of_bound", sat / analytic)
          .set("deadlocked", high.deadlocked)
          .set("avg_latency", high.avg_latency)
          .set("p50_latency", high.p50_latency)
          .set("p95_latency", high.p95_latency)
          .set("p99_latency", high.p99_latency)
          .set("max_latency", high.max_latency);
      jout.point(std::move(fields));
    }
  }
  table.print(std::cout);
  std::cout << "\nexpectation: fractions well below saturation track 1.0x of the bound at\n"
               "low rates; at saturation an input-queued single-flit router typically\n"
               "reaches 60-100% of the ideal output-queued bound (§2.1).\n";
  return rc.finish();
}
