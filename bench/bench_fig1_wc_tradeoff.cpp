// Figure 1: the optimal tradeoff between worst-case throughput (x-axis,
// fraction of capacity) and normalized average path length (y-axis) on the
// k-ary 2-cube, with the existing algorithms placed in the same space.
//
// Each curve point solves LP (10): minimize gamma_wc subject to H_avg = L.
//
// Flags: --k (default 8), --points (default 11), --warm/--cold/--chains
// (warm-start chaining, see bench::sweep_config), --threads N (solve the
// sweep's chains on a pool; results are identical to serial), --json <path>
// (one JSON record per curve point / algorithm; the curve's obs snapshot —
// including the lp.warmstart.* counters — arrives in a trailing
// sweep_summary record), --trace <path> (Perfetto span trace of the whole
// run: per-point sweep spans with warm-start adoption attributes plus the
// sampled simplex convergence telemetry; see bench::TraceOutput), --perf
// (hardware-counter/rusage perf block per record, counter attrs on the
// sweep.point spans; see bench::JsonOutput and tcr::perf), plus the
// run-control flags --deadline/--budget/--rss-limit-mb/--checkpoint/--resume
// (see bench::RunControl: budget-degraded points are interpolated per §5.3
// and flagged, a SIGTERM mid-sweep leaves a resumable journal, and --resume
// reproduces the uninterrupted run bitwise in <journal>.report.json).
#include "bench_common.hpp"

#include "tcr/core/tradeoff.hpp"
#include "tcr/metrics/worst_case.hpp"
#include "tcr/util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace tcr;
  const Cli cli(argc, argv);
  const int k = cli.get_int("k", 8);
  const int points = cli.get_int("points", 9);
  SweepConfig sweep = bench::sweep_config(cli);
  const int threads = cli.get_int("threads", 1);
  bench::RunControl rc(cli);
  lp::SimplexOptions opts = bench::solver_options(cli);
  rc.apply(sweep, opts);
  bench::JsonOutput jout(cli, "fig1_wc_tradeoff",
                         obs::Json::object()
                             .set("k", k)
                             .set("points", points)
                             .set("warm_start", sweep.warm_start)
                             .set("chains", sweep.chains)
                             .set("dual", opts.dual)
                             .set("flow_crash", opts.flow_crash)
                             .set("threads", threads));
  bench::TraceOutput trace(cli);
  bench::HeartbeatOutput heartbeat(cli, "fig1_wc_tradeoff", &rc.token());

  bench::banner("Figure 1: worst-case throughput vs locality, " + std::to_string(k) +
                    "-ary 2-cube",
                "optimal curve = LP (10); points = Hungarian-exact worst case");
  const Torus torus(k);

  // One sweep call: the constraint matrix is built once per chain and each
  // point warm-starts from the previous basis (unless --cold).
  Stopwatch sw;
  const auto pool = bench::sweep_pool(cli);
  const std::vector<TradeoffPoint> curve = worst_case_tradeoff(
      torus, locality_grid(1.0, 2.0, points), opts, pool.get(), sweep);
  std::cout << "curve solved in " << sw.seconds() << " s (" << points
            << " locality-constrained LPs, " << (sweep.warm_start ? "warm" : "cold")
            << " starts)\n\n";
  rc.write_sweep_report("fig1_wc_tradeoff", curve);

  for (const TradeoffPoint& pt : curve) {
    auto fields = obs::Json::object();
    fields.set("series", "optimal_curve")
        .set("k", k)
        .set("locality", pt.locality)
        .set("capacity_fraction", pt.capacity_fraction)  // NaN -> null when unsolved
        .set("status", lp::to_string(pt.status))
        .set("warm_start", pt.warm_start)
        .set("certificate", bench::certificate_json(pt.certificate));
    // Flag anything that is not a plain measurement (degraded values are
    // §5.3 interpolations, not solves — gates must see the difference).
    if (pt.provenance != "measured") {
      fields.set("provenance", pt.provenance).set("note", pt.note);
    }
    jout.record(std::move(fields));
  }
  {
    auto fields = obs::Json::object();
    fields.set("series", "sweep_summary")
        .set("k", k)
        .set("points", points)
        .set("warm_start", sweep.warm_start)
        .set("chains", sweep.chains);
    jout.point(std::move(fields));
  }

  TextTable curve_table({"H_avg/minimal (L)", "optimal Theta_wc/cap", "status"});
  for (const auto& pt : curve) {
    std::string value = pt.solved() ? TextTable::num(pt.capacity_fraction, 4) : "unsolved";
    if (pt.degraded()) {
      value = std::isfinite(pt.capacity_fraction)
                  ? TextTable::num(pt.capacity_fraction, 4) + " (interp)"
                  : "degraded";
    }
    curve_table.add_row({TextTable::num(pt.locality, 3), value,
                         bench::status_line(pt.status, pt.note)});
  }
  curve_table.print(std::cout);

  std::cout << "\nexisting algorithms in the same space:\n";
  TextTable pts({"algorithm", "H_avg/minimal", "Theta_wc/cap"});
  for (const auto& r : bench::table1_algorithms(torus)) {
    const double loc = r.normalized_locality();
    const double wc = worst_case_capacity_fraction(r);
    pts.add_row_mixed({r.name()}, {loc, wc});
    auto fields = obs::Json::object();
    fields.set("series", "algorithm")
        .set("k", k)
        .set("algorithm", r.name())
        .set("locality", loc)
        .set("capacity_fraction", wc);
    jout.point(std::move(fields));
  }
  pts.print(std::cout);
  std::cout << "\npaper shape: DOR pins the minimal end of the Pareto curve; VAL reaches\n"
               "the 0.5 worst-case optimum at locality 2; VAL/RLB/RLBth sit well above\n"
               "the optimal curve.\n";
  return rc.finish();
}
