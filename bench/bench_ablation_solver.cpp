// Ablation of the design-LP machinery (DESIGN.md's "validity of the
// symmetry reductions" and solver choices): for the worst-case design
// problem at several radices, compare
//   * dihedral variable folding ON vs OFF,
//   * phase-2 cost perturbation ON vs OFF,
// reporting rows/cols, simplex iterations, wall time — and, crucially, that
// every configuration reaches the same optimal objective.
//
// Flags: --kmin (default 3), --kmax (default 5; unfolded LPs grow fast),
// --json <path> (one JSON record per configuration with the solver's
// per-solve obs snapshot — iterations, refactorizations, phase timings),
// --perf (attach a hardware-counter/rusage perf block to every record; see
// bench::JsonOutput).
#include "bench_common.hpp"

#include "tcr/core/arc_flow.hpp"
#include "tcr/util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace tcr;
  const Cli cli(argc, argv);
  const int kmin = cli.get_int("kmin", 3);
  const int kmax = cli.get_int("kmax", 5);
  bench::JsonOutput jout(cli, "ablation_solver",
                         obs::Json::object().set("kmin", kmin).set("kmax", kmax));
  bench::TraceOutput trace(cli);
  bench::HeartbeatOutput heartbeat(cli, "ablation_solver", nullptr);

  bench::banner("Ablation: symmetry folding and anti-degeneracy perturbation",
                "worst-case design LP (8); all configs must agree on the optimum");

  TextTable table({"k", "fold", "perturb", "rows", "cols", "iters", "time(s)", "objective"});
  for (int k = kmin; k <= kmax; ++k) {
    const Torus torus(k);
    for (bool fold : {true, false}) {
      for (bool perturb : {true, false}) {
        SymmetricDesignConfig cfg;
        cfg.objective = DesignObjective::WorstCase;
        cfg.fold_dihedral = fold;
        SymmetricArcDesign design(torus, cfg);
        lp::SimplexOptions opts = bench::solver_options(cli);
        opts.perturb = perturb;
        Stopwatch sw;
        const auto res = design.solve(opts);
        table.add_row({std::to_string(k), fold ? "yes" : "no", perturb ? "yes" : "no",
                       std::to_string(design.model().num_rows()),
                       std::to_string(design.model().num_cols()),
                       std::to_string(res.iterations), TextTable::num(sw.seconds(), 2),
                       res.status == lp::Status::Optimal
                           ? TextTable::num(res.objective, 6)
                           : bench::status_line(res.status, res.note)});
        auto fields = obs::Json::object();
        fields.set("k", k)
            .set("fold_dihedral", fold)
            .set("perturb", perturb)
            .set("rows", design.model().num_rows())
            .set("cols", design.model().num_cols())
            .set("iterations", res.iterations)
            .set("wall_s", sw.seconds())
            .set("status", lp::to_string(res.status))
            .set("objective", res.objective)
            .set("certificate", bench::certificate_json(res.certificate));
        jout.point(std::move(fields));
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected: identical objectives down each k block; folding cuts rows/cols\n"
               "~4-8x and time by an order of magnitude — the practical enabler for the\n"
               "k = 8 figures on this machine (paper used CPLEX on the unfolded O(CN)\n"
               "translation-reduced form).\n";
  return 0;
}
