// Figure 5: interpolated routing algorithms (§5.3) between DOR and IVAL
// (dashed curve) and between DOR and 2TURN (dotted curve) in the Figure-1
// tradeoff space. For every alpha the worst case is computed *exactly* via
// Hungarian matching and compared with the harmonic-mean bound (eq. 14),
// which is tight when the endpoints share a worst-case permutation
// (footnote 5). Also reports the distance to the optimal tradeoff curve.
//
// Flags: --k (default 8), --alphas (default 9), --curve-points (default 11),
// --skip-curve (skip the optimal-curve LPs used for the gap column),
// --warm/--cold/--chains (warm-start chaining for the curve sweep),
// --threads N (solve the curve's chains on a pool), --json <path> (one JSON
// record per interpolation point), --perf (hardware-counter/rusage perf
// block per record; see bench::JsonOutput).
#include "bench_common.hpp"

#include <cmath>

#include "tcr/core/path_design.hpp"
#include "tcr/core/tradeoff.hpp"
#include "tcr/metrics/worst_case.hpp"
#include "tcr/routing/interpolate.hpp"

namespace {

// Locality of the optimal curve at a given worst-case fraction (inverse
// interpolation of the Figure-1 Pareto curve).
double optimal_locality_at(const std::vector<tcr::TradeoffPoint>& curve, double frac) {
  // Points are ordered by locality with non-decreasing throughput; take the
  // FIRST point reaching `frac` so the plateau at the worst-case optimum
  // maps to its leftmost (smallest-locality) attainment.
  using tcr::TradeoffPoint;
  const TradeoffPoint* lo = nullptr;
  const TradeoffPoint* last = nullptr;
  for (const auto& pt : curve) {
    if (!pt.solved()) continue;  // unsolved points carry NaN, never interpolate
    last = &pt;
    if (pt.capacity_fraction >= frac - 1e-12) {
      if (lo == nullptr || lo->capacity_fraction >= frac - 1e-12) return pt.locality;
      const double t =
          (frac - lo->capacity_fraction) / (pt.capacity_fraction - lo->capacity_fraction);
      return lo->locality + t * (pt.locality - lo->locality);
    }
    lo = &pt;
  }
  return last != nullptr ? last->locality : 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcr;
  const Cli cli(argc, argv);
  const int k = cli.get_int("k", 8);
  const int alphas = cli.get_int("alphas", 7);
  bench::JsonOutput jout(cli, "fig5_interpolation",
                         obs::Json::object()
                             .set("k", k)
                             .set("alphas", alphas)
                             .set("curve_points", cli.get_int("curve-points", 9))
                             .set("skip_curve", cli.has("skip-curve")));
  bench::TraceOutput trace(cli);
  bench::HeartbeatOutput heartbeat(cli, "fig5_interpolation", nullptr);

  bench::banner("Figure 5: interpolated routing algorithms, " + std::to_string(k) +
                    "-ary 2-cube",
                "DOR<->IVAL and DOR<->2TURN; bound (14) vs exact worst case");
  const Torus torus(k);
  const TorusRouting dor = make_dor(torus);
  const TorusRouting ival = make_ival(torus);

  std::vector<TradeoffPoint> curve;
  if (!cli.has("skip-curve")) {
    const auto pool = bench::sweep_pool(cli);
    curve = worst_case_tradeoff(torus, locality_grid(1.0, 2.0, cli.get_int("curve-points", 9)),
                                bench::solver_options(cli), pool.get(),
                                bench::sweep_config(cli));
  }

  const auto two_turn = design_two_turn(torus);
  if (two_turn.status != lp::Status::Optimal) {
    std::cout << "2TURN design: " << bench::status_line(two_turn.status, two_turn.note) << "\n";
  }
  {
    auto fields = obs::Json::object();
    fields.set("series", "design_solve")
        .set("k", k)
        .set("algorithm", "2TURN")
        .set("status", lp::to_string(two_turn.status))
        .set("certificate", bench::certificate_json(two_turn.certificate));
    jout.point(std::move(fields));
  }
  std::vector<std::pair<std::string, const TorusRouting*>> families = {{"DOR<->IVAL", &ival}};
  if (two_turn.status == lp::Status::Optimal) families.push_back({"DOR<->2TURN", &two_turn.routing});

  for (const auto& [label, other] : families) {
    std::cout << "\n" << label << ":\n";
    TextTable table({"alpha(DOR)", "H_avg/min", "Theta_wc/cap exact", "bound (14)",
                     "% above optimal locality"});
    const double th_dor = worst_case_capacity_fraction(dor);
    const double th_other = worst_case_capacity_fraction(*other);
    double max_gap = 0.0;
    for (int i = 0; i < alphas; ++i) {
      const double alpha = static_cast<double>(i) / (alphas - 1);
      const TorusRouting mix = interpolate(dor, *other, alpha);
      const double frac = worst_case_capacity_fraction(mix);
      const double bound = interpolation_throughput_bound(th_dor, th_other, alpha);
      double gap = -1.0;
      if (!curve.empty()) {
        const double opt_loc = optimal_locality_at(curve, frac);
        gap = 100.0 * (mix.normalized_locality() - opt_loc) / opt_loc;
        max_gap = std::max(max_gap, gap);
      }
      table.add_row_mixed({TextTable::num(alpha, 2)},
                          {mix.normalized_locality(), frac, bound, gap});
      auto fields = obs::Json::object();
      fields.set("family", label)
          .set("k", k)
          .set("alpha", alpha)
          .set("locality", mix.normalized_locality())
          .set("wc_capacity_fraction", frac)
          .set("bound_eq14", bound)
          .set("pct_above_optimal_locality", gap);
      jout.point(std::move(fields));
    }
    table.print(std::cout);
    if (!curve.empty()) {
      std::cout << "max distance above optimal locality: " << TextTable::num(max_gap, 1)
                << "% (paper: <=17% for DOR<->IVAL, <=10% for DOR<->2TURN)\n";
    }
  }
  return 0;
}
