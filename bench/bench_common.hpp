// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tcr/core/tradeoff.hpp"
#include "tcr/lp/model.hpp"
#include "tcr/obs/json.hpp"
#include "tcr/obs/registry.hpp"
#include "tcr/perf/perf.hpp"
#include "tcr/perf/provenance.hpp"
#include "tcr/report/schema.hpp"
#include "tcr/trace/export.hpp"
#include "tcr/trace/tracer.hpp"
#include "tcr/routing/dor.hpp"
#include "tcr/routing/rlb.hpp"
#include "tcr/routing/romm.hpp"
#include "tcr/routing/valiant.hpp"
#include "tcr/util/cli.hpp"
#include "tcr/util/table.hpp"
#include "tcr/util/thread_pool.hpp"

namespace tcr::bench {

/// The six Table-1 algorithms, constructed for a given torus.
inline std::vector<TorusRouting> table1_algorithms(const Torus& t) {
  std::vector<TorusRouting> algos;
  algos.push_back(make_dor(t));
  algos.push_back(make_romm(t));
  algos.push_back(make_rlb(t));
  algos.push_back(make_rlbth(t));
  algos.push_back(make_valiant(t));
  algos.push_back(make_ival(t));
  return algos;
}

/// Sweep-execution flags shared by the tradeoff benches: `--cold` disables
/// warm-start basis chaining (`--warm`, the default, re-enables it so runs
/// can be compared flag-for-flag), and `--chains N` overrides how many
/// contiguous warm-start chains the sweep is partitioned into.
inline SweepConfig sweep_config(const Cli& cli) {
  SweepConfig cfg;
  if (cli.has("cold")) cfg.warm_start = false;
  if (cli.has("warm")) cfg.warm_start = true;
  cfg.chains = cli.get_int("chains", 0);
  return cfg;
}

/// `--threads N` pool for the tradeoff sweeps: N > 1 returns a pool of that
/// size, otherwise nullptr (serial). The point series is identical either
/// way — the chain partition depends only on (points, chains) — so the flag
/// trades wall-clock, never results.
inline std::unique_ptr<ThreadPool> sweep_pool(const Cli& cli) {
  const int threads = cli.get_int("threads", 1);
  return threads > 1 ? std::make_unique<ThreadPool>(static_cast<std::size_t>(threads)) : nullptr;
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "==========================================================\n"
            << title << "\n(" << paper_ref << ")\n"
            << "==========================================================\n";
}

/// Machine-readable output behind every bench's `--json <path>` flag,
/// emitting the uniform record schema consumed by `tcr::report` / tcr-repro
/// (report::kSchemaVersion).
///
/// When the flag is present the helper opens a JSON-lines sink, writes the
/// run header
///   {"schema_version": V, "kind": "meta", "bench": <id>, "params": {...},
///    "provenance": {git_sha, compiler, build_type, cxx_flags, cpu}}
/// (where `params` are the run's resolved CLI parameters), enables the obs
/// registry's fine-grained timing, and zeroes all metrics. Each point() call
/// then appends one record
///   {"kind": "point", "bench": <id>, "point": <series values>,
///    "obs": <registry snapshot>}
/// and resets the registry again, so every snapshot covers exactly the work
/// done since the previous record. Without the flag, every call is a no-op
/// and timing stays off.
///
/// `--perf` additionally starts the perf::PhaseSampler machinery (hardware
/// counters when perf_event_open works, rusage otherwise) and attaches a
/// "perf" block to every point() record covering the same work window as its
/// obs snapshot; tcr-perf ingests those blocks into BENCH_history.json.
class JsonOutput {
 public:
  JsonOutput(const Cli& cli, std::string bench_name, obs::Json params)
      : bench_(std::move(bench_name)) {
    const std::string path = cli.get_string("json", "");
    if (path.empty()) return;
    sink_ = std::make_unique<obs::EventSink>(path);
    if (!sink_->ok()) {
      std::cerr << "error: cannot open --json output file '" << path << "'\n";
      std::exit(1);
    }
    auto meta = obs::Json::object();
    meta.set("schema_version", report::kSchemaVersion)
        .set("kind", "meta")
        .set("bench", bench_)
        .set("params", std::move(params))
        .set("provenance", perf::provenance_json());
    sink_->write(meta);
    obs::Registry::instance().set_timing_enabled(true);
    obs::Registry::instance().reset();
    if (cli.has("perf")) {
      perf::start();
      sampler_ = std::make_unique<perf::PhaseSampler>();
    }
  }

  ~JsonOutput() {
    if (sink_ && !sink_->ok()) {
      std::cerr << "error: --json output stream failed; records were lost\n";
      std::exit(1);
    }
  }

  bool enabled() const { return sink_ != nullptr; }

  /// Emit one record for a series point. `fields` should be a Json object
  /// holding the point's paper-series values.
  void point(obs::Json fields) {
    if (!sink_) return;
    auto rec = obs::Json::object();
    rec.set("kind", "point")
        .set("bench", bench_)
        .set("point", std::move(fields))
        .set("obs", obs::snapshot_json());
    if (sampler_) {
      // Same work window as the obs snapshot: sample the deltas since the
      // previous point() and re-baseline.
      rec.set("perf", sampler_->sample().to_json());
      sampler_->reset();
    }
    sink_->write(rec);
    obs::Registry::instance().reset();
  }

  /// Emit one record *without* an obs snapshot and without resetting the
  /// registry. Sweeps that chain warm starts across points use this for the
  /// per-point rows and report the accumulated instrumentation (including
  /// the lp.warmstart.* counters) in one trailing summary point().
  void record(obs::Json fields) {
    if (!sink_) return;
    auto rec = obs::Json::object();
    rec.set("kind", "point").set("bench", bench_).set("point", std::move(fields));
    sink_->write(rec);
  }

 private:
  std::string bench_;
  std::unique_ptr<obs::EventSink> sink_;
  std::unique_ptr<perf::PhaseSampler> sampler_;
};

/// Span tracing behind every bench's `--trace <path>` flag.
///
/// When the flag is present the helper starts the process-wide
/// trace::Tracer (so Span/counter call sites throughout the library begin
/// collecting) and, on destruction at the end of the run, exports the
/// buffer as Chrome trace-event JSON to the given path — loadable in
/// Perfetto / chrome://tracing and analyzable with the tcr-trace tool.
/// `--trace-sample N` overrides the simplex convergence-telemetry cadence
/// (default: every 32 iterations); `--trace-capacity N` the ring-buffer
/// event capacity. Without `--trace`, tracing stays off and every
/// instrumented site costs one predicted branch.
class TraceOutput {
 public:
  explicit TraceOutput(const Cli& cli) : path_(cli.get_string("trace", "")) {
    if (path_.empty()) return;
    trace::TracerConfig cfg;
    cfg.capacity = static_cast<std::size_t>(
        cli.get_int("trace-capacity", static_cast<int>(cfg.capacity)));
    cfg.simplex_sample_every = cli.get_int("trace-sample", cfg.simplex_sample_every);
    trace::Tracer::instance().start(cfg);
  }

  TraceOutput(const TraceOutput&) = delete;
  TraceOutput& operator=(const TraceOutput&) = delete;

  ~TraceOutput() {
    if (path_.empty()) return;
    trace::Tracer::instance().stop();
    std::string error;
    if (!trace::export_chrome_trace(path_, &error)) {
      std::cerr << "error: --trace export failed: " << error << "\n";
      std::exit(1);
    }
    std::cout << "trace written to " << path_ << "\n";
  }

  bool enabled() const { return !path_.empty(); }

 private:
  std::string path_;
};

/// One-line solver status for the text output: the status name plus the
/// solver's stop diagnosis when the solve did not reach optimality.
inline std::string status_line(lp::Status status, const std::string& note) {
  std::string s = lp::to_string(status);
  if (status != lp::Status::Optimal && !note.empty()) s += " (" + note + ")";
  return s;
}

/// JSON view of an lp::Certificate for a point record; every LP-backed bench
/// attaches this so downstream tooling can assert that the published numbers
/// came from independently certified solves.
inline obs::Json certificate_json(const lp::Certificate& cert) {
  auto j = obs::Json::object();
  j.set("checked", cert.checked).set("pass", cert.pass);
  if (cert.checked) {
    j.set("primal_residual", cert.primal_residual)
        .set("bound_violation", cert.bound_violation)
        .set("dual_violation", cert.dual_violation)
        .set("complementarity", cert.complementarity)
        .set("duality_gap", cert.duality_gap)
        .set("worst", cert.worst());
    if (!cert.pass) j.set("reason", cert.reason);
  }
  return j;
}

}  // namespace tcr::bench
