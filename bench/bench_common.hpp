// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tcr/core/tradeoff.hpp"
#include "tcr/fault/fault.hpp"
#include "tcr/guard/guard.hpp"
#include "tcr/guard/journal.hpp"
#include "tcr/lp/model.hpp"
#include "tcr/lp/simplex.hpp"
#include "tcr/sim/simulator.hpp"
#include "tcr/telemetry/telemetry.hpp"
#include "tcr/obs/json.hpp"
#include "tcr/obs/registry.hpp"
#include "tcr/perf/perf.hpp"
#include "tcr/perf/provenance.hpp"
#include "tcr/report/schema.hpp"
#include "tcr/trace/export.hpp"
#include "tcr/trace/tracer.hpp"
#include "tcr/routing/dor.hpp"
#include "tcr/routing/rlb.hpp"
#include "tcr/routing/romm.hpp"
#include "tcr/routing/valiant.hpp"
#include "tcr/util/cli.hpp"
#include "tcr/util/table.hpp"
#include "tcr/util/thread_pool.hpp"

namespace tcr::bench {

/// The six Table-1 algorithms, constructed for a given torus.
inline std::vector<TorusRouting> table1_algorithms(const Torus& t) {
  std::vector<TorusRouting> algos;
  algos.push_back(make_dor(t));
  algos.push_back(make_romm(t));
  algos.push_back(make_rlb(t));
  algos.push_back(make_rlbth(t));
  algos.push_back(make_valiant(t));
  algos.push_back(make_ival(t));
  return algos;
}

/// Sweep-execution flags shared by the tradeoff benches: `--cold` disables
/// warm-start basis chaining (`--warm`, the default, re-enables it so runs
/// can be compared flag-for-flag), and `--chains N` overrides how many
/// contiguous warm-start chains the sweep is partitioned into.
inline SweepConfig sweep_config(const Cli& cli) {
  SweepConfig cfg;
  if (cli.has("cold")) cfg.warm_start = false;
  if (cli.has("warm")) cfg.warm_start = true;
  cfg.chains = cli.get_int("chains", 0);
  return cfg;
}

/// Solver flags shared by the LP-backed benches: `--no-dual` disables the
/// dual-simplex reoptimization of rhs-edited warm restarts (`--dual`, the
/// default, re-enables it) and `--no-flow-crash` disables the Dinic
/// flow-crash basis for cold solves (`--flow-crash` re-enables it), so runs
/// can be compared flag-for-flag. Results are identical either way — the
/// flags trade simplex iterations, never optima (the golden gate runs both).
inline lp::SimplexOptions solver_options(const Cli& cli) {
  lp::SimplexOptions opts;
  if (cli.has("no-dual")) opts.dual = false;
  if (cli.has("dual")) opts.dual = true;
  if (cli.has("no-flow-crash")) opts.flow_crash = false;
  if (cli.has("flow-crash")) opts.flow_crash = true;
  return opts;
}

/// `--threads N` pool for the tradeoff sweeps: N > 1 returns a pool of that
/// size, otherwise nullptr (serial). The point series is identical either
/// way — the chain partition depends only on (points, chains) — so the flag
/// trades wall-clock, never results.
inline std::unique_ptr<ThreadPool> sweep_pool(const Cli& cli) {
  const int threads = cli.get_int("threads", 1);
  return threads > 1 ? std::make_unique<ThreadPool>(static_cast<std::size_t>(threads)) : nullptr;
}

/// JSON view of an lp::Certificate for a point record; every LP-backed bench
/// attaches this so downstream tooling can assert that the published numbers
/// came from independently certified solves.
inline obs::Json certificate_json(const lp::Certificate& cert) {
  auto j = obs::Json::object();
  j.set("checked", cert.checked).set("pass", cert.pass);
  if (cert.checked) {
    j.set("primal_residual", cert.primal_residual)
        .set("bound_violation", cert.bound_violation)
        .set("dual_violation", cert.dual_violation)
        .set("complementarity", cert.complementarity)
        .set("duality_gap", cert.duality_gap)
        .set("worst", cert.worst());
    if (!cert.pass) j.set("reason", cert.reason);
  }
  return j;
}

/// Exit status a bench returns when run control cut the run short: every
/// emitted record is valid but the run is partial — tcr-repro reports it as
/// "partial (run control)" and skips golden gating instead of failing the
/// schema.
inline constexpr int kExitPartial = 7;

/// Run-control flags shared by every bench (tcr::guard):
///
///   --deadline S        wall-clock deadline in seconds
///   --budget N          cumulative simplex-iteration budget
///   --rss-limit-mb M    peak-RSS cap
///   --checkpoint PATH   journal every completed sweep point to PATH
///   --resume PATH       replay completed points from PATH, journal new ones
///                       to it, and re-chain warm starts
///
/// The constructor arms one CancelToken with the budget, points SIGINT/
/// SIGTERM at it (so kills unwind cooperatively: the journal stays valid
/// and the --json report is flushed complete-but-partial), opens/validates
/// the checkpoint journal, and honors the TCR_FAULT_STALL_* injection env
/// (fault::install_env_simplex_faults) so e2e tests can slow solves down
/// from outside. apply() threads the token into sweeps, solver options and
/// simulator configs; exit_code() turns a fired token into kExitPartial.
class RunControl {
 public:
  explicit RunControl(const Cli& cli) {
    fault::install_env_simplex_faults();
    guard::RunBudget budget;
    budget.deadline_seconds = cli.get_double("deadline", 0.0);
    budget.max_iterations = cli.get_int("budget", 0);
    budget.max_rss_kb = static_cast<std::int64_t>(cli.get_int("rss-limit-mb", 0)) * 1024;
    token_.arm(budget);
    signals_ = std::make_unique<guard::SignalGuard>(token_);

    const std::string resume_path = cli.get_string("resume", "");
    journal_path_ = resume_path.empty() ? cli.get_string("checkpoint", "") : resume_path;
    if (!resume_path.empty()) {
      resume_ = std::make_unique<SweepResume>();
      bool torn = false;
      std::string error;
      if (!load_sweep_resume(resume_path, resume_.get(), &torn, &error)) {
        std::cerr << "error: --resume: " << error << "\n";
        std::exit(1);
      }
      std::cout << "resume: " << resume_->points.size() << " completed point(s) from "
                << resume_path << (torn ? " (dropped a torn final record)" : "") << "\n";
    }
    if (!journal_path_.empty()) {
      std::string error;
      if (!journal_.open(journal_path_, &error)) {
        std::cerr << "error: --checkpoint/--resume: " << error << "\n";
        std::exit(1);
      }
    }
  }

  guard::CancelToken& token() { return token_; }
  bool cancelled() const { return token_.cancelled(); }

  /// Wire the token (and any journal/resume state) into a tradeoff sweep
  /// and the solver options it will use.
  void apply(SweepConfig& sweep, lp::SimplexOptions& opts) {
    sweep.cancel = &token_;
    opts.cancel = &token_;
    if (journal_.is_open()) sweep.journal = &journal_;
    if (resume_ != nullptr) sweep.resume = resume_.get();
  }

  /// Wire the token into a simulator run.
  void apply(SimConfig& sim) { sim.cancel = &token_; }

  /// 0 for a complete run, kExitPartial when the token fired.
  int exit_code() const { return cancelled() ? kExitPartial : 0; }

  /// Print the stop diagnosis (if any) and return exit_code().
  int finish() const {
    if (cancelled()) {
      std::cout << "run control: stopped early — " << token_.note() << "\n";
    }
    return exit_code();
  }

  /// Canonical sweep result file `<journal>.report.json`: a pure function
  /// of the point series — no obs counters, no provenance stamps, no
  /// timing — so a killed-then-resumed sweep must match an uninterrupted
  /// one *bitwise* (the resume e2e gate compares with cmp). Written only
  /// when the journal is in use and every point reached a terminal result
  /// (a cancelled run has nothing canonical to claim). "resumed" points
  /// are recorded as "measured": replaying a journal is not a result
  /// change.
  void write_sweep_report(const std::string& bench,
                          const std::vector<TradeoffPoint>& points) const {
    if (journal_path_.empty() || cancelled()) return;
    auto doc = obs::Json::object();
    doc.set("kind", "sweep_report").set("bench", bench);
    auto arr = obs::Json::array();
    for (std::size_t i = 0; i < points.size(); ++i) {
      const TradeoffPoint& pt = points[i];
      auto p = obs::Json::object();
      p.set("index", static_cast<std::int64_t>(i))
          .set("locality", pt.locality)
          .set("capacity_fraction", pt.capacity_fraction)
          .set("status", lp::to_string(pt.status))
          .set("note", pt.note)
          .set("warm_start", pt.warm_start)
          .set("iterations", static_cast<std::int64_t>(pt.iterations))
          .set("provenance",
               pt.provenance == "resumed" ? std::string("measured") : pt.provenance)
          .set("certificate", certificate_json(pt.certificate));
      arr.push_back(std::move(p));
    }
    doc.set("points", std::move(arr));
    const std::string path = journal_path_ + ".report.json";
    std::ofstream out(path, std::ios::trunc);
    doc.dump(out);
    out << "\n";
    if (!out) {
      std::cerr << "error: cannot write sweep report '" << path << "'\n";
      std::exit(1);
    }
    std::cout << "sweep report written to " << path << "\n";
  }

 private:
  guard::CancelToken token_;
  std::unique_ptr<guard::SignalGuard> signals_;
  std::unique_ptr<SweepResume> resume_;
  guard::JournalWriter journal_;
  std::string journal_path_;
};

/// Live telemetry behind every bench's `--heartbeat[=path]` flag
/// (tcr::telemetry): while the run is in flight, heartbeat records — phase,
/// sweep/sim progress, guard budget state, obs counter deltas — are
/// appended to a crash-safe stream that `tcr-top --follow` renders live.
///
///   --heartbeat [PATH]        enable; PATH defaults to <bench>.hb
///   --heartbeat-interval S    seconds between heartbeats (default 0.5)
///
/// Construct after RunControl and pass its token so heartbeats carry
/// deadline/iteration/RSS budget state and the stop reason. Destruction
/// emits a final heartbeat and closes the stream; a killed run instead
/// leaves at most one torn record, which readers report as truncation.
/// Sampling is cooperative at deterministic sites, so the flag never
/// changes results — only wall-clock (see src/tcr/telemetry/telemetry.hpp).
class HeartbeatOutput {
 public:
  HeartbeatOutput(const Cli& cli, const std::string& bench_name,
                  const guard::CancelToken* token = nullptr) {
    if (!cli.has("heartbeat")) return;
    std::string path = cli.get_string("heartbeat", "");
    if (path.empty()) path = bench_name + ".hb";
    telemetry::HeartbeatConfig cfg;
    cfg.path = path;
    cfg.interval_seconds = cli.get_double("heartbeat-interval", 0.5);
    cfg.bench = bench_name;
    cfg.token = token;
    std::string error;
    if (!telemetry::start(cfg, &error)) {
      std::cerr << "error: --heartbeat: " << error << "\n";
      std::exit(1);
    }
    active_ = true;
    std::cout << "heartbeat stream: " << path << " (interval "
              << cfg.interval_seconds << " s)\n";
  }

  HeartbeatOutput(const HeartbeatOutput&) = delete;
  HeartbeatOutput& operator=(const HeartbeatOutput&) = delete;

  ~HeartbeatOutput() {
    if (active_) telemetry::stop();
  }

  bool enabled() const { return active_; }

 private:
  bool active_ = false;
};

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "==========================================================\n"
            << title << "\n(" << paper_ref << ")\n"
            << "==========================================================\n";
}

/// Machine-readable output behind every bench's `--json <path>` flag,
/// emitting the uniform record schema consumed by `tcr::report` / tcr-repro
/// (report::kSchemaVersion).
///
/// When the flag is present the helper opens a JSON-lines sink, writes the
/// run header
///   {"schema_version": V, "kind": "meta", "bench": <id>, "params": {...},
///    "provenance": {git_sha, compiler, build_type, cxx_flags, cpu}}
/// (where `params` are the run's resolved CLI parameters), enables the obs
/// registry's fine-grained timing, and zeroes all metrics. Each point() call
/// then appends one record
///   {"kind": "point", "bench": <id>, "point": <series values>,
///    "obs": <registry snapshot>}
/// and resets the registry again, so every snapshot covers exactly the work
/// done since the previous record. Without the flag, every call is a no-op
/// and timing stays off.
///
/// `--perf` additionally starts the perf::PhaseSampler machinery (hardware
/// counters when perf_event_open works, rusage otherwise) and attaches a
/// "perf" block to every point() record covering the same work window as its
/// obs snapshot; tcr-perf ingests those blocks into BENCH_history.json.
class JsonOutput {
 public:
  JsonOutput(const Cli& cli, std::string bench_name, obs::Json params)
      : bench_(std::move(bench_name)) {
    const std::string path = cli.get_string("json", "");
    if (path.empty()) return;
    sink_ = std::make_unique<obs::EventSink>(path);
    if (!sink_->ok()) {
      std::cerr << "error: cannot open --json output file '" << path << "'\n";
      std::exit(1);
    }
    auto meta = obs::Json::object();
    meta.set("schema_version", report::kSchemaVersion)
        .set("kind", "meta")
        .set("bench", bench_)
        .set("params", std::move(params))
        .set("provenance", perf::provenance_json());
    sink_->write(meta);
    obs::Registry::instance().set_timing_enabled(true);
    obs::Registry::instance().reset();
    if (cli.has("perf")) {
      perf::start();
      sampler_ = std::make_unique<perf::PhaseSampler>();
    }
  }

  ~JsonOutput() {
    if (sink_ && !sink_->ok()) {
      std::cerr << "error: --json output stream failed; records were lost\n";
      std::exit(1);
    }
  }

  bool enabled() const { return sink_ != nullptr; }

  /// Emit one record for a series point. `fields` should be a Json object
  /// holding the point's paper-series values.
  void point(obs::Json fields) { point(std::move(fields), {}); }

  /// point() with bench-computed additions to the record's perf block
  /// (attached only under --perf, like the sampled counters): each
  /// (name, value) pair becomes a "perf" field, so tcr-perf ingests it as
  /// quantity `perf.<name>` alongside wall_ns/cpu_ns/alloc_bytes. Benches
  /// use this for derived rates a hardware counter cannot express (e.g. the
  /// simulator's wall-ns per flit-cycle).
  void point(obs::Json fields, const std::vector<std::pair<std::string, double>>& extra_perf) {
    if (!sink_) return;
    auto rec = obs::Json::object();
    rec.set("kind", "point")
        .set("bench", bench_)
        .set("point", std::move(fields))
        .set("obs", obs::snapshot_json());
    if (sampler_) {
      // Same work window as the obs snapshot: sample the deltas since the
      // previous point() and re-baseline.
      auto perf_block = sampler_->sample().to_json();
      for (const auto& [name, value] : extra_perf) perf_block.set(name, value);
      rec.set("perf", std::move(perf_block));
      sampler_->reset();
    }
    sink_->write(rec);
    obs::Registry::instance().reset();
  }

  /// Emit one record *without* an obs snapshot and without resetting the
  /// registry. Sweeps that chain warm starts across points use this for the
  /// per-point rows and report the accumulated instrumentation (including
  /// the lp.warmstart.* counters) in one trailing summary point().
  void record(obs::Json fields) {
    if (!sink_) return;
    auto rec = obs::Json::object();
    rec.set("kind", "point").set("bench", bench_).set("point", std::move(fields));
    sink_->write(rec);
  }

 private:
  std::string bench_;
  std::unique_ptr<obs::EventSink> sink_;
  std::unique_ptr<perf::PhaseSampler> sampler_;
};

/// Span tracing behind every bench's `--trace <path>` flag.
///
/// When the flag is present the helper starts the process-wide
/// trace::Tracer (so Span/counter call sites throughout the library begin
/// collecting) and, on destruction at the end of the run, exports the
/// buffer as Chrome trace-event JSON to the given path — loadable in
/// Perfetto / chrome://tracing and analyzable with the tcr-trace tool.
/// `--trace-sample N` overrides the simplex convergence-telemetry cadence
/// (default: every 32 iterations); `--trace-capacity N` the ring-buffer
/// event capacity. Without `--trace`, tracing stays off and every
/// instrumented site costs one predicted branch.
class TraceOutput {
 public:
  explicit TraceOutput(const Cli& cli) : path_(cli.get_string("trace", "")) {
    if (path_.empty()) return;
    trace::TracerConfig cfg;
    cfg.capacity = static_cast<std::size_t>(
        cli.get_int("trace-capacity", static_cast<int>(cfg.capacity)));
    cfg.simplex_sample_every = cli.get_int("trace-sample", cfg.simplex_sample_every);
    trace::Tracer::instance().start(cfg);
  }

  TraceOutput(const TraceOutput&) = delete;
  TraceOutput& operator=(const TraceOutput&) = delete;

  ~TraceOutput() {
    if (path_.empty()) return;
    trace::Tracer::instance().stop();
    std::string error;
    if (!trace::export_chrome_trace(path_, &error)) {
      std::cerr << "error: --trace export failed: " << error << "\n";
      std::exit(1);
    }
    std::cout << "trace written to " << path_ << "\n";
  }

  bool enabled() const { return !path_.empty(); }

 private:
  std::string path_;
};

/// One-line solver status for the text output: the status name plus the
/// solver's stop diagnosis when the solve did not reach optimality.
inline std::string status_line(lp::Status status, const std::string& note) {
  std::string s = lp::to_string(status);
  if (status != lp::Status::Optimal && !note.empty()) s += " (" + note + ")";
  return s;
}

}  // namespace tcr::bench
