// Shared helpers for the figure/table reproduction binaries.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "tcr/routing/dor.hpp"
#include "tcr/routing/rlb.hpp"
#include "tcr/routing/romm.hpp"
#include "tcr/routing/valiant.hpp"
#include "tcr/util/cli.hpp"
#include "tcr/util/table.hpp"

namespace tcr::bench {

/// The six Table-1 algorithms, constructed for a given torus.
inline std::vector<TorusRouting> table1_algorithms(const Torus& t) {
  std::vector<TorusRouting> algos;
  algos.push_back(make_dor(t));
  algos.push_back(make_romm(t));
  algos.push_back(make_rlb(t));
  algos.push_back(make_rlbth(t));
  algos.push_back(make_valiant(t));
  algos.push_back(make_ival(t));
  return algos;
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::cout << "==========================================================\n"
            << title << "\n(" << paper_ref << ")\n"
            << "==========================================================\n";
}

}  // namespace tcr::bench
