#include "tcr/obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "tcr/util/check.hpp"

namespace tcr::obs {

namespace {

void dump_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

void dump_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // strict JSON has no NaN/Inf
    return;
  }
  if (v == 0.0) {
    // "-0" would re-parse as the integer 0 and drop the sign; "-0.0" is
    // unambiguously a double and round-trips the sign bit.
    os << (std::signbit(v) ? "-0.0" : "0");
    return;
  }
  char buf[32];
  // max_digits10 (17) significant digits round-trip every double, including
  // denormals; prefer the shorter digits10 (15) rendering when it parses
  // back bit-exactly.
  std::snprintf(buf, sizeof(buf), "%.*g", std::numeric_limits<double>::digits10, v);
  if (std::strtod(buf, nullptr) != v)
    std::snprintf(buf, sizeof(buf), "%.*g", std::numeric_limits<double>::max_digits10, v);
  os << buf;
}

}  // namespace

double Json::as_number(double fallback) const {
  if (kind_ == Kind::Int) return static_cast<double>(int_);
  if (kind_ == Kind::Double) return double_;
  return fallback;
}

std::int64_t Json::as_int(std::int64_t fallback) const {
  if (kind_ == Kind::Int) return int_;
  if (kind_ == Kind::Double) return static_cast<std::int64_t>(double_);
  return fallback;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Json::size() const {
  if (kind_ == Kind::Array) return array_.size();
  if (kind_ == Kind::Object) return object_.size();
  return 0;
}

bool Json::equals(const Json& other) const {
  if (kind_ != other.kind_) {
    // Ints and doubles compare by value so parse(dump(x)) == x even when a
    // double happens to hold an integral value.
    if (is_number() && other.is_number()) return as_number() == other.as_number();
    return false;
  }
  switch (kind_) {
    case Kind::Null: return true;
    case Kind::Bool: return bool_ == other.bool_;
    case Kind::Int: return int_ == other.int_;
    case Kind::Double:
      return double_ == other.double_ || (std::isnan(double_) && std::isnan(other.double_));
    case Kind::String: return string_ == other.string_;
    case Kind::Array: {
      if (array_.size() != other.array_.size()) return false;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (!array_[i].equals(other.array_[i])) return false;
      }
      return true;
    }
    case Kind::Object: {
      if (object_.size() != other.object_.size()) return false;
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (object_[i].first != other.object_[i].first) return false;
        if (!object_[i].second.equals(other.object_[i].second)) return false;
      }
      return true;
    }
  }
  return false;
}

const std::string& Json::empty_string() {
  static const std::string kEmpty;
  return kEmpty;
}

Json& Json::set(std::string key, Json value) {
  TCR_REQUIRE(is_object(), "Json::set on a non-object");
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push_back(Json value) {
  TCR_REQUIRE(is_array(), "Json::push_back on a non-array");
  array_.push_back(std::move(value));
  return *this;
}

void Json::dump(std::ostream& os) const {
  switch (kind_) {
    case Kind::Null: os << "null"; break;
    case Kind::Bool: os << (bool_ ? "true" : "false"); break;
    case Kind::Int: os << int_; break;
    case Kind::Double: dump_double(os, double_); break;
    case Kind::String: dump_string(os, string_); break;
    case Kind::Array: {
      os << '[';
      bool first = true;
      for (const auto& v : array_) {
        if (!first) os << ',';
        first = false;
        v.dump(os);
      }
      os << ']';
      break;
    }
    case Kind::Object: {
      os << '{';
      bool first = true;
      for (const auto& [key, v] : object_) {
        if (!first) os << ',';
        first = false;
        dump_string(os, key);
        os << ':';
        v.dump(os);
      }
      os << '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::ostringstream os;
  dump(os);
  return os.str();
}

Json to_json(const Snapshot& snap) {
  Json counters = Json::object();
  for (const auto& [name, v] : snap.counters) counters.set(name, static_cast<long long>(v));
  Json gauges = Json::object();
  for (const auto& [name, v] : snap.gauges) gauges.set(name, v);
  Json timers = Json::object();
  for (const auto& [name, t] : snap.timers) {
    timers.set(name, Json::object()
                         .set("count", static_cast<long long>(t.count))
                         .set("wall_s", t.wall_seconds)
                         .set("cpu_s", t.cpu_seconds));
  }
  Json histograms = Json::object();
  for (const auto& [name, h] : snap.histograms) {
    histograms.set(name, Json::object()
                             .set("count", static_cast<long long>(h.count))
                             .set("sum", h.sum)
                             .set("min", h.min)
                             .set("max", h.max)
                             .set("p50", h.p50)
                             .set("p95", h.p95)
                             .set("p99", h.p99));
  }
  return Json::object()
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("timers", std::move(timers))
      .set("histograms", std::move(histograms));
}

Json snapshot_json() { return to_json(Registry::instance().snapshot()); }

EventSink::EventSink(std::ostream& os) : os_(&os) {}

EventSink::EventSink(const std::string& path)
    : file_(path, std::ios::out | std::ios::trunc), os_(&file_) {}

bool EventSink::ok() const {
  // The stream's state bits are mutated by write(); take the same mutex so a
  // health probe never races an in-flight record.
  std::lock_guard<std::mutex> lock(mu_);
  return os_ != nullptr && os_->good();
}

void EventSink::write(const Json& record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.dump(*os_);
  *os_ << '\n';
  os_->flush();
  records_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace tcr::obs
