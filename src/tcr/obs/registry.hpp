// tcr::obs — structured instrumentation for the LP solver, the design
// pipeline and the flit simulator.
//
// Design goals, in order:
//   * near-zero overhead when nobody is looking: metric updates are relaxed
//     atomic increments, and the expensive parts (clock reads in ScopedTimer
//     spans) are gated on Registry::timing_enabled();
//   * a single process-wide Registry so any layer can expose a metric
//     without plumbing objects through APIs; references handed out by the
//     registry stay valid for the life of the process (metrics are never
//     erased, reset() only zeroes values);
//   * machine-readable output: Snapshot is a stable-keyed value dump that
//     json.hpp serializes to JSON lines for the benches' --json flag.
//
// Metric types:
//   Counter   — monotonic int64 (simplex iterations, refactorizations, ...)
//   Gauge     — last-written double (LP rows/cols/nonzeros, objective, ...)
//   Timer     — accumulated wall + CPU nanoseconds with a span count; fed by
//               RAII ScopedTimer spans
//   Histogram — log-bucketed distribution with percentile queries (packet
//               latencies, eta-file lengths, LU fill-in, ...)
//
// All updates are thread-safe (the tradeoff sweeps solve LPs on a pool).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "tcr/util/stopwatch.hpp"

namespace tcr::obs {

class Counter {
 public:
  void add(std::int64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Accumulated wall/CPU time over a set of spans. Values in nanoseconds so
/// the hot-path update is an integer add.
class Timer {
 public:
  void add(std::int64_t wall_ns, std::int64_t cpu_ns) noexcept {
    wall_ns_.fetch_add(wall_ns, std::memory_order_relaxed);
    cpu_ns_.fetch_add(cpu_ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  std::int64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double wall_seconds() const noexcept {
    return 1e-9 * static_cast<double>(wall_ns_.load(std::memory_order_relaxed));
  }
  double cpu_seconds() const noexcept {
    return 1e-9 * static_cast<double>(cpu_ns_.load(std::memory_order_relaxed));
  }
  void reset() noexcept {
    wall_ns_.store(0, std::memory_order_relaxed);
    cpu_ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> wall_ns_{0};
  std::atomic<std::int64_t> cpu_ns_{0};
  std::atomic<std::int64_t> count_{0};
};

/// Log-bucketed histogram over non-negative values.
///
/// Bucket 0 holds values in [0, least); bucket i >= 1 holds
/// [least * growth^(i-1), least * growth^i). Percentiles interpolate
/// linearly inside the containing bucket and are clamped to the observed
/// [min, max].
///
/// Quantile bias bound: only the bucket of a sample is stored, so a
/// percentile query returns some point of the containing bucket [lo,
/// lo*growth). The true quantile v is also in that bucket, hence the
/// estimate e satisfies |e - v| <= (growth - 1) * lo <= (growth - 1) * v:
/// the relative error of any percentile is < growth - 1 (e.g. < 100% at the
/// default growth 2.0, < 20% at growth 1.2). Caveats: bucket 0 is linear,
/// so near-zero values carry absolute (not relative) error < least; values
/// beyond the last bucket boundary (least * growth^(kNumBuckets-1), ~8.6
/// for least 1e-3 at growth 1.1 but astronomically large at the default
/// growth 2.0) saturate into the top bucket, voiding the bound; and the
/// [min, max] clamp makes the p0/p100 endpoints exact. The bound is pinned
/// by Histogram.QuantileRelativeErrorBounded (tests/test_obs.cpp).
class Histogram {
 public:
  static constexpr int kNumBuckets = 96;
  /// Boundary table padded to a power of two so bucket_index can run a
  /// fixed-trip branchless binary search with no bounds checks.
  static constexpr int kPaddedBuckets = 128;

  explicit Histogram(double least = 1e-9, double growth = 2.0);

  void record(double v) noexcept;

  std::int64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept;
  double min() const noexcept;  // 0 when empty
  double max() const noexcept;  // 0 when empty

  /// p in [0, 1]; returns 0 when empty.
  double percentile(double p) const noexcept;

  void reset() noexcept;

  // Bucket geometry (exposed for tests).
  double least() const noexcept { return least_; }
  double growth() const noexcept { return growth_; }
  int bucket_index(double v) const noexcept;
  double bucket_lower(int i) const noexcept;
  double bucket_upper(int i) const noexcept;
  std::int64_t bucket_count(int i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  double least_;
  double growth_;
  double inv_log_growth_;
  /// bound_[k] is the smallest double that maps to bucket k+1 under the
  /// original `1 + floor(log(v/least) / log(growth))` formula (computed by
  /// flip-point bisection in the ctor, so the table lookup is bit-identical
  /// to the log — the simulator's golden latency percentiles depend on the
  /// exact mapping); entries past bucket 95 are +inf padding. record() then
  /// costs a branchless 7-step search instead of a std::log per sample —
  /// the simulator ejection path records into two histograms per flit
  /// (BM_HistogramRecord measures the win).
  double bound_[kPaddedBuckets];
  std::atomic<std::int64_t> buckets_[kNumBuckets];
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Plain-value dump of every registered metric, keyed by name in sorted
/// order (std::map) so serialized output is stable across runs.
struct Snapshot {
  struct TimerValue {
    std::int64_t count = 0;
    double wall_seconds = 0.0;
    double cpu_seconds = 0.0;
  };
  /// min/max/sum are exact; the percentiles inherit the log-bucket quantile
  /// bias documented on Histogram (relative error < growth - 1).
  struct HistogramValue {
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, TimerValue> timers;
  std::map<std::string, HistogramValue> histograms;
};

/// Process-wide metric registry. Lookups take a mutex — call sites cache the
/// returned references (valid forever) instead of resolving names in hot
/// loops.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Timer& timer(const std::string& name);
  /// The bucket geometry is fixed by whichever call registers `name` first.
  Histogram& histogram(const std::string& name, double least = 1e-9, double growth = 2.0);

  /// Zero every metric value. Registrations (and outstanding references)
  /// survive.
  void reset();

  /// Gates the clock reads of ScopedTimer spans. Off by default so
  /// fine-grained solver timing costs nothing unless a consumer (e.g. a
  /// bench's --json sink) turns it on.
  bool timing_enabled() const noexcept { return timing_.load(std::memory_order_relaxed); }
  void set_timing_enabled(bool on) noexcept { timing_.store(on, std::memory_order_relaxed); }

  Snapshot snapshot() const;

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::atomic<bool> timing_{false};
};

/// RAII span feeding a Timer. When disabled (the default unless
/// Registry::timing_enabled()), construction and destruction read no clocks.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer)
      : ScopedTimer(timer, Registry::instance().timing_enabled()) {}
  ScopedTimer(Timer& timer, bool enabled) : timer_(&timer), enabled_(enabled) {
    if (enabled_) {
      wall_start_ = std::chrono::steady_clock::now();
      cpu_start_ = Stopwatch::cpu_now();
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { stop(); }

  /// Record the span early (idempotent).
  void stop() noexcept {
    if (!enabled_) return;
    enabled_ = false;
    const auto wall = std::chrono::steady_clock::now() - wall_start_;
    const double cpu = Stopwatch::cpu_now() - cpu_start_;
    timer_->add(std::chrono::duration_cast<std::chrono::nanoseconds>(wall).count(),
                static_cast<std::int64_t>(cpu * 1e9));
  }

 private:
  Timer* timer_;
  bool enabled_;
  std::chrono::steady_clock::time_point wall_start_{};
  double cpu_start_ = 0.0;
};

}  // namespace tcr::obs
