// Minimal JSON value type and JSON-lines event sink for machine-readable
// telemetry (the benches' --json output, BENCH_*.json trajectories).
//
// Deliberately small: only what serialization needs. Object keys keep
// insertion order so records are stable and diffable; doubles render with
// round-trip precision; NaN/Inf render as null (strict JSON).
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "tcr/obs/registry.hpp"

namespace tcr::obs {

class Json {
 public:
  using Object = std::vector<std::pair<std::string, Json>>;
  using Array = std::vector<Json>;

  /// Value kind; doubles and ints are distinct so integer series values
  /// (radix k, sample counts) round-trip exactly through the report layer.
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Json() : kind_(Kind::Null) {}
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(int v) : kind_(Kind::Int), int_(v) {}
  Json(long v) : kind_(Kind::Int), int_(v) {}
  Json(long long v) : kind_(Kind::Int), int_(v) {}
  Json(double v) : kind_(Kind::Double), double_(v) {}
  Json(const char* s) : kind_(Kind::String), string_(s) {}
  Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  Json(Object o) : kind_(Kind::Object), object_(std::move(o)) {}
  Json(Array a) : kind_(Kind::Array), array_(std::move(a)) {}

  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_string() const { return kind_ == Kind::String; }
  /// True for Int and Double values.
  bool is_number() const { return kind_ == Kind::Int || kind_ == Kind::Double; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }

  /// Append a key (objects only). Returns *this for chaining.
  Json& set(std::string key, Json value);
  /// Append an element (arrays only).
  Json& push_back(Json value);

  // --- read accessors (used by tcr::report to consume bench records) ---

  /// Bool value, or `fallback` for any other kind.
  bool as_bool(bool fallback = false) const { return is_bool() ? bool_ : fallback; }
  /// Numeric value as double. Null and non-numbers yield `fallback`; the
  /// default NaN mirrors the writer, which renders NaN/Inf as JSON null.
  double as_number(double fallback = std::numeric_limits<double>::quiet_NaN()) const;
  /// Integer value (Double is truncated), or `fallback` for non-numbers.
  std::int64_t as_int(std::int64_t fallback = 0) const;
  /// String value, or `fallback` for any other kind.
  const std::string& as_string(const std::string& fallback = empty_string()) const {
    return is_string() ? string_ : fallback;
  }

  /// First value under `key` (objects only; nullptr when absent or when this
  /// is not an object). Lookup is linear — records are small by design.
  const Json* find(const std::string& key) const;
  /// Element count of an array/object; 0 for scalars.
  std::size_t size() const;
  /// Ordered key/value pairs (empty for non-objects).
  const Object& items() const { return object_; }
  /// Ordered elements (empty for non-arrays).
  const Array& elements() const { return array_; }

  /// Deep structural equality (key order matters — records are ordered).
  bool equals(const Json& other) const;

  void dump(std::ostream& os) const;
  std::string dump() const;

 private:
  static const std::string& empty_string();

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Serialize a registry snapshot with stable keys:
/// {"counters": {...}, "gauges": {...}, "timers": {name: {count, wall_s,
/// cpu_s}}, "histograms": {name: {count, sum, min, max, p50, p95, p99}}}.
Json to_json(const Snapshot& snap);

/// Snapshot of the process-wide registry, serialized.
Json snapshot_json();

/// JSON-lines sink: one record per line, flushed per write, safe to share
/// across threads. All members are thread-safe: write() serializes under a
/// mutex, ok() takes the same mutex (stream state bits are written by
/// write()), and records_written() is an atomic read — so a concurrent
/// reader never races a writer (tests/test_obs.cpp covers this under TSan).
class EventSink {
 public:
  /// Write to an externally-owned stream (not closed on destruction).
  explicit EventSink(std::ostream& os);
  /// Open (truncate) a file; check ok() before trusting writes.
  explicit EventSink(const std::string& path);

  bool ok() const;
  void write(const Json& record);
  std::int64_t records_written() const { return records_.load(std::memory_order_relaxed); }

 private:
  std::ofstream file_;
  std::ostream* os_;
  mutable std::mutex mu_;
  std::atomic<std::int64_t> records_{0};
};

}  // namespace tcr::obs
