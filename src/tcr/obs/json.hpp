// Minimal JSON value type and JSON-lines event sink for machine-readable
// telemetry (the benches' --json output, BENCH_*.json trajectories).
//
// Deliberately small: only what serialization needs. Object keys keep
// insertion order so records are stable and diffable; doubles render with
// round-trip precision; NaN/Inf render as null (strict JSON).
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "tcr/obs/registry.hpp"

namespace tcr::obs {

class Json {
 public:
  using Object = std::vector<std::pair<std::string, Json>>;
  using Array = std::vector<Json>;

  Json() : kind_(Kind::Null) {}
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(int v) : kind_(Kind::Int), int_(v) {}
  Json(long v) : kind_(Kind::Int), int_(v) {}
  Json(long long v) : kind_(Kind::Int), int_(v) {}
  Json(double v) : kind_(Kind::Double), double_(v) {}
  Json(const char* s) : kind_(Kind::String), string_(s) {}
  Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  Json(Object o) : kind_(Kind::Object), object_(std::move(o)) {}
  Json(Array a) : kind_(Kind::Array), array_(std::move(a)) {}

  static Json object() { return Json(Object{}); }
  static Json array() { return Json(Array{}); }

  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }

  /// Append a key (objects only). Returns *this for chaining.
  Json& set(std::string key, Json value);
  /// Append an element (arrays only).
  Json& push_back(Json value);

  void dump(std::ostream& os) const;
  std::string dump() const;

 private:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Serialize a registry snapshot with stable keys:
/// {"counters": {...}, "gauges": {...}, "timers": {name: {count, wall_s,
/// cpu_s}}, "histograms": {name: {count, sum, min, max, p50, p95, p99}}}.
Json to_json(const Snapshot& snap);

/// Snapshot of the process-wide registry, serialized.
Json snapshot_json();

/// JSON-lines sink: one record per line, flushed per write, safe to share
/// across threads.
class EventSink {
 public:
  /// Write to an externally-owned stream (not closed on destruction).
  explicit EventSink(std::ostream& os);
  /// Open (truncate) a file; check ok() before trusting writes.
  explicit EventSink(const std::string& path);

  bool ok() const;
  void write(const Json& record);
  std::int64_t records_written() const { return records_; }

 private:
  std::ofstream file_;
  std::ostream* os_;
  std::mutex mu_;
  std::int64_t records_ = 0;
};

}  // namespace tcr::obs
