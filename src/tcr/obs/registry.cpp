#include "tcr/obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tcr/util/check.hpp"

namespace tcr::obs {

namespace {

// Lock-free min/max over atomic<double> via CAS.
void atomic_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(double least, double growth)
    : least_(least), growth_(growth), inv_log_growth_(1.0 / std::log(growth)) {
  TCR_REQUIRE(least > 0.0 && growth > 1.0, "histogram needs least > 0 and growth > 1");
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);

  // Precompute the bucket boundaries of the reference mapping
  //   index(v) = clamp(1 + floor(log(v / least) / log(growth)), 1, 95)
  // as exact flip points: bound_[k] is the smallest double the reference
  // sends to bucket >= k+1. A closed-form `least * pow(growth, k)` can
  // disagree with the floor(log(...)) by one ulp at the boundary and shift
  // golden-gated percentiles, so each flip point is found by bisecting the
  // reference predicate itself (ctor-time only; ~60 log() calls per
  // boundary). Histogram.BucketIndexMatchesLogFormula pins the equality.
  const auto reference_at_least = [&](double v, int k) {
    // True iff the unclamped reference index of v (>= least) is >= k.
    return 1 + static_cast<int>(std::floor(std::log(v / least_) * inv_log_growth_)) >= k;
  };
  bound_[0] = least_;  // bucket 1 starts exactly at least (the v >= least test)
  for (int k = 1; k < kNumBuckets - 1; ++k) {
    const double est = least_ * std::pow(growth_, k);
    double lo = est, hi = est;
    while (reference_at_least(lo, k + 1)) lo *= 0.5;
    while (!reference_at_least(hi, k + 1)) hi *= 2.0;
    // Invariant: reference(lo) < k+1 <= reference(hi); shrink to adjacent
    // doubles and the flip point is hi.
    while (std::nextafter(lo, hi) < hi) {
      const double mid = lo + 0.5 * (hi - lo);
      if (reference_at_least(mid, k + 1)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    bound_[k] = hi;
  }
  for (int k = kNumBuckets - 1; k < kPaddedBuckets; ++k) {
    bound_[k] = std::numeric_limits<double>::infinity();
  }
}

int Histogram::bucket_index(double v) const noexcept {
  if (!(v >= least_)) return 0;  // also catches NaN and negatives
  // Branchless binary search: count the boundaries <= v. The +inf padding
  // makes every probe in-range, so the loop compiles to seven cmovs.
  int base = 0;
  for (int step = kPaddedBuckets / 2; step != 0; step >>= 1) {
    base += bound_[base + step - 1] <= v ? step : 0;
  }
  return base < kNumBuckets ? base : kNumBuckets - 1;
}

double Histogram::bucket_lower(int i) const noexcept {
  if (i <= 0) return 0.0;
  return least_ * std::pow(growth_, i - 1);
}

double Histogram::bucket_upper(int i) const noexcept {
  return least_ * std::pow(growth_, i);
}

void Histogram::record(double v) noexcept {
  if (std::isnan(v)) return;
  if (v < 0.0) v = 0.0;
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  const std::int64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  if (prev == 0) {
    // First sample initializes min/max; a racing second sample still
    // converges via the CAS loops below.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::mean() const noexcept {
  const std::int64_t c = count();
  return c > 0 ? sum() / static_cast<double>(c) : 0.0;
}

double Histogram::min() const noexcept {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const noexcept {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::percentile(double p) const noexcept {
  const std::int64_t total = count();
  if (total <= 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank in [1, total]; find the bucket containing it and interpolate.
  const double rank = p * static_cast<double>(total);
  std::int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::int64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      const double frac =
          std::clamp((rank - static_cast<double>(seen)) / static_cast<double>(in_bucket),
                     0.0, 1.0);
      const double lo = bucket_lower(i);
      const double hi = bucket_upper(i);
      const double v = lo + frac * (hi - lo);
      return std::clamp(v, min(), max());
    }
    seen += in_bucket;
  }
  return max();
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry reg;
  return reg;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Timer& Registry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, double least, double growth) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(least, growth);
  return *slot;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, t] : timers_) t->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, t] : timers_) {
    snap.timers[name] = {t->count(), t->wall_seconds(), t->cpu_seconds()};
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = {h->count(),          h->sum(),
                             h->min(),            h->max(),
                             h->percentile(0.50), h->percentile(0.95),
                             h->percentile(0.99)};
  }
  return snap;
}

}  // namespace tcr::obs
