// Crash-safe append-only record journal for checkpoint/resume.
//
// File format (all integers little-endian):
//
//   offset 0: 8-byte magic "TCRJNL01"
//   then, per record:  [u32 payload length][u32 CRC-32 of payload][payload]
//
// The writer appends one record per completed unit of work (a sweep point)
// and fsyncs after every append, so at any kill point the file is a valid
// prefix plus at most one torn record. The reader distinguishes the two
// failure classes a crash can leave from real corruption:
//
//   * a torn *final* record (short header, short payload, or a CRC mismatch
//     on the last record — the write raced the kill) is dropped and
//     reported via truncated_tail, not an error;
//   * a bad magic or a mid-file length/CRC violation is a hard,
//     position-bearing error — the file is not a journal, or lost bytes in
//     the middle, and resuming from it would silently skip work.
//
// Payloads are opaque bytes; the sweep layer defines its own point codec
// (core/tradeoff.hpp, SweepCheckpoint). Writer appends are thread-safe —
// parallel sweep chains share one journal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tcr::guard {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a byte range.
std::uint32_t crc32(const void* data, std::size_t size) noexcept;

// Framing constants, shared with incremental readers of the same format
// (telemetry/stream.hpp tails heartbeat streams written in journal frames).
inline constexpr char kJournalMagic[8] = {'T', 'C', 'R', 'J', 'N', 'L', '0', '1'};
inline constexpr std::size_t kJournalMagicSize = sizeof(kJournalMagic);
inline constexpr std::size_t kJournalHeaderSize = 8;  // u32 length + u32 crc
/// Records hold sweep points or heartbeat JSON (a few KB each); a length
/// beyond this is not a record, it is garbage read as a length.
inline constexpr std::uint32_t kJournalMaxRecordSize = 1u << 30;

/// Everything read back from a journal file.
struct JournalContents {
  bool ok = false;              ///< false => error is set, records unusable
  bool truncated_tail = false;  ///< a torn final record was dropped
  std::vector<std::string> records;  ///< payloads, in append order
  std::string error;  ///< hard failure with byte offset; empty when ok
};

/// Read and validate a journal. A missing file is a hard error (resuming
/// from nothing is a caller bug); an empty-but-valid journal returns ok
/// with no records.
JournalContents read_journal(const std::string& path);

/// Appender. open() creates the file (with magic) or validates an existing
/// one and truncates a torn tail so appends continue from the last good
/// record. Every append writes header + payload and fsyncs before
/// returning: once append() returns true the record survives any kill.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter() { close(); }
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Open for appending; returns false and fills *error on failure
  /// (including hard corruption of an existing file).
  bool open(const std::string& path, std::string* error);

  /// Durably append one record. Thread-safe. Returns false once the
  /// underlying file has failed; further appends are dropped.
  bool append(const std::string& payload);

  bool is_open() const { return fd_ >= 0; }
  bool ok() const { return is_open() && !failed_; }
  const std::string& path() const { return path_; }

  void close();

 private:
  std::mutex mu_;
  std::string path_;
  int fd_ = -1;
  bool failed_ = false;
};

}  // namespace tcr::guard
