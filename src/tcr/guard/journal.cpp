#include "tcr/guard/journal.hpp"

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace tcr::guard {

namespace {

// Framing constants live in the header (shared with telemetry's stream
// reader); keep the short local names the scan/write code reads naturally.
constexpr const char* kMagic = kJournalMagic;
constexpr std::size_t kMagicSize = kJournalMagicSize;
constexpr std::size_t kHeaderSize = kJournalHeaderSize;
constexpr std::uint32_t kMaxRecordSize = kJournalMaxRecordSize;

std::uint32_t load_u32le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void store_u32le(std::uint32_t v, unsigned char* p) {
  p[0] = static_cast<unsigned char>(v & 0xff);
  p[1] = static_cast<unsigned char>((v >> 8) & 0xff);
  p[2] = static_cast<unsigned char>((v >> 16) & 0xff);
  p[3] = static_cast<unsigned char>((v >> 24) & 0xff);
}

struct Scan {
  JournalContents contents;
  std::size_t valid_bytes = 0;  // length of the longest valid prefix
};

// Shared by the reader and the writer's open-time validation.
Scan scan_journal(const std::string& path) {
  Scan scan;
  JournalContents& out = scan.contents;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.error = "cannot open journal '" + path + "'";
    return scan;
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    out.error = "I/O error reading journal '" + path + "'";
    return scan;
  }
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  if (data.size() < kMagicSize || std::memcmp(data.data(), kMagic, kMagicSize) != 0) {
    out.error = "'" + path + "' is not a tcr journal (bad magic at offset 0)";
    return scan;
  }
  std::size_t pos = kMagicSize;
  while (pos < data.size()) {
    if (data.size() - pos < kHeaderSize) break;  // torn header => tail
    const std::uint32_t len = load_u32le(bytes + pos);
    const std::uint32_t crc = load_u32le(bytes + pos + 4);
    if (len > kMaxRecordSize) {
      out.error = "journal '" + path + "': implausible record length " +
                  std::to_string(len) + " at offset " + std::to_string(pos);
      return scan;
    }
    if (data.size() - pos - kHeaderSize < len) break;  // torn payload => tail
    const char* payload = data.data() + pos + kHeaderSize;
    if (crc32(payload, len) != crc) {
      // A CRC mismatch on the final record is a torn write (kill landed
      // mid-payload after the length happened to be fully written); anywhere
      // else it means the middle of the file changed under us.
      if (pos + kHeaderSize + len == data.size()) break;
      out.error = "journal '" + path + "': CRC mismatch at offset " +
                  std::to_string(pos) + " (record " +
                  std::to_string(out.records.size()) + ")";
      return scan;
    }
    out.records.emplace_back(payload, len);
    pos += kHeaderSize + len;
  }
  out.truncated_tail = pos < data.size();
  scan.valid_bytes = pos;
  out.ok = true;
  return scan;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) noexcept {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

JournalContents read_journal(const std::string& path) {
  return scan_journal(path).contents;
}

bool JournalWriter::open(const std::string& path, std::string* error) {
#if defined(__unix__) || defined(__APPLE__)
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) { ::close(fd_); fd_ = -1; }
  failed_ = false;
  path_ = path;

  // Does a journal already exist? Validate it and drop any torn tail so the
  // next append starts at the last durable record.
  bool fresh = false;
  std::size_t valid_bytes = 0;
  {
    std::ifstream probe(path, std::ios::binary);
    fresh = !probe.good() || probe.peek() == std::ifstream::traits_type::eof();
  }
  if (!fresh) {
    Scan scan = scan_journal(path);
    if (!scan.contents.ok) {
      if (error) *error = scan.contents.error;
      return false;
    }
    valid_bytes = scan.valid_bytes;
  }

  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    if (error) *error = "cannot open journal '" + path + "': " + std::strerror(errno);
    return false;
  }
  bool init_ok;
  std::string what;
  if (fresh) {
    init_ok = ::write(fd_, kMagic, kMagicSize) == static_cast<ssize_t>(kMagicSize) &&
              ::fsync(fd_) == 0;
    what = "initialize";
  } else {
    init_ok = ::ftruncate(fd_, static_cast<off_t>(valid_bytes)) == 0 &&
              ::lseek(fd_, 0, SEEK_END) >= 0;
    what = "trim";
  }
  if (!init_ok) {
    if (error)
      *error = "cannot " + what + " journal '" + path + "': " + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
#else
  (void)path;
  if (error) *error = "journals require a POSIX platform";
  return false;
#endif
}

bool JournalWriter::append(const std::string& payload) {
#if defined(__unix__) || defined(__APPLE__)
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0 || failed_) return false;
  unsigned char header[kHeaderSize];
  store_u32le(static_cast<std::uint32_t>(payload.size()), header);
  store_u32le(crc32(payload.data(), payload.size()), header + 4);
  // One buffer, one write(): keeps a record's header and payload in a
  // single syscall so a concurrent appender cannot interleave mid-record.
  std::string buf(reinterpret_cast<const char*>(header), kHeaderSize);
  buf += payload;
  const char* p = buf.data();
  std::size_t left = buf.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      failed_ = true;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    failed_ = true;
    return false;
  }
  return true;
#else
  (void)payload;
  return false;
#endif
}

void JournalWriter::close() {
#if defined(__unix__) || defined(__APPLE__)
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
#endif
}

}  // namespace tcr::guard
