// tcr::guard — run control: budgets, deadlines, and cooperative
// cancellation for long solves, sweeps and simulations.
//
// The model is cooperative and allocation-free on the hot path:
//
//   * a RunBudget names the limits (wall-clock deadline, cumulative simplex
//     iterations, peak RSS);
//   * a CancelToken carries them. Workers call check() at natural safepoints
//     (the simplex every few iterations, the simulator every few hundred
//     cycles, the sweep between points) — one relaxed atomic load when
//     nothing has fired, a clock compare when a deadline is armed, and a
//     /proc poll only every 64th check when an RSS cap is armed;
//   * exhaustion latches a StopReason; everything downstream unwinds by
//     returning partial results with a distinct status (lp::Status::
//     Cancelled, SimStats::cancelled) and a diagnosable note. Nothing
//     aborts, nothing throws.
//
// cancel() is async-signal-safe (plain atomic stores), so SignalGuard can
// point SIGINT/SIGTERM straight at a token: the handler latches the reason
// and the run unwinds cooperatively, flushing journals and emitting a valid
// partial report on the way out (see bench/bench_common.hpp RunControl).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace tcr::guard {

/// Why a run was stopped early. None means "still running".
enum class StopReason : int {
  None = 0,
  Deadline,    // wall-clock deadline passed
  Iterations,  // cumulative simplex-iteration budget exhausted
  Memory,      // peak RSS exceeded the cap
  Signal,      // external cancellation (SIGINT/SIGTERM or explicit cancel())
};

const char* to_string(StopReason r);

/// Resource limits for one run. Zero fields are unlimited; a
/// default-constructed budget imposes nothing.
struct RunBudget {
  double deadline_seconds = 0.0;  ///< wall-clock limit, measured from arm()
  long max_iterations = 0;        ///< cumulative simplex iterations, all solves
  std::int64_t max_rss_kb = 0;    ///< process peak-RSS cap (VmHWM)

  bool unlimited() const {
    return deadline_seconds <= 0.0 && max_iterations <= 0 && max_rss_kb <= 0;
  }
};

/// Shared cancellation point. One token typically guards one run (a sweep,
/// a bench, a service job) and is checked by every worker thread; all
/// methods are thread-safe and cancel() is additionally async-signal-safe.
/// Once cancelled, a token stays cancelled: the first latched reason wins.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(const RunBudget& budget) { arm(budget); }

  /// Install a budget; the deadline clock starts now. Not thread-safe
  /// against concurrent check() — arm before handing the token to workers.
  void arm(const RunBudget& budget);

  /// Latch cancellation. Safe from signal handlers and any thread; only the
  /// first reason is kept.
  void cancel(StopReason reason = StopReason::Signal) noexcept;

  /// Has the token fired? One relaxed load (no budget evaluation).
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  StopReason reason() const noexcept {
    return static_cast<StopReason>(reason_.load(std::memory_order_acquire));
  }

  /// Cooperative safepoint: returns true when the run should stop, latching
  /// the budget reason on first detection. Cheap enough for inner loops at
  /// a modest cadence (the simplex calls it every 16 iterations).
  bool check() noexcept;

  /// Add `n` simplex iterations to the cumulative tally; fires the token
  /// when an iteration budget is armed and exhausted.
  void charge_iterations(long n) noexcept;

  long iterations_used() const noexcept {
    return iterations_.load(std::memory_order_relaxed);
  }

  const RunBudget& budget() const noexcept { return budget_; }

  /// Seconds until the armed wall-clock deadline fires, measured from now
  /// (negative once past); NaN when no deadline is armed. For telemetry
  /// heartbeats — same arm-before-workers caveat as arm().
  double deadline_remaining_seconds() const noexcept;

  /// Human-readable stop diagnosis ("deadline of 2.5s exceeded", ...);
  /// empty while the token has not fired. Not async-signal-safe.
  std::string note() const;

 private:
  RunBudget budget_;
  std::int64_t deadline_ns_ = 0;  // steady-clock ns; 0 = no deadline armed
  std::atomic<bool> cancelled_{false};
  std::atomic<int> reason_{static_cast<int>(StopReason::None)};
  std::atomic<long> iterations_{0};
  std::atomic<std::uint64_t> checks_{0};  // paces the RSS poll
  std::atomic<std::int64_t> rss_seen_kb_{0};  // last polled peak RSS
};

/// RAII SIGINT/SIGTERM hook: while alive, either signal latches
/// StopReason::Signal on the given token (and is remembered), so a Ctrl-C
/// or a `kill -TERM` turns into a cooperative unwind instead of a corrupt
/// half-written journal. The previous handlers are restored on destruction.
/// At most one SignalGuard may be alive per process.
class SignalGuard {
 public:
  explicit SignalGuard(CancelToken& token);
  ~SignalGuard();
  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

  /// Did a guarded signal arrive (process-wide, latching)?
  static bool signalled() noexcept;
  /// The signal number that arrived, or 0.
  static int signal_number() noexcept;

 private:
  bool installed_ = false;
};

}  // namespace tcr::guard
