#include "tcr/guard/guard.hpp"

#include <chrono>
#include <limits>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#endif

#include "tcr/perf/perf.hpp"
#include "tcr/util/check.hpp"

namespace tcr::guard {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Poll /proc for the RSS cap only every this many check() calls: the read is
// a file open + parse, three orders of magnitude above the flag load.
constexpr std::uint64_t kRssPollEvery = 64;

}  // namespace

const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::None: return "none";
    case StopReason::Deadline: return "deadline";
    case StopReason::Iterations: return "iterations";
    case StopReason::Memory: return "memory";
    case StopReason::Signal: return "signal";
  }
  return "?";
}

void CancelToken::arm(const RunBudget& budget) {
  budget_ = budget;
  deadline_ns_ = budget.deadline_seconds > 0.0
                     ? steady_now_ns() +
                           static_cast<std::int64_t>(budget.deadline_seconds * 1e9)
                     : 0;
  iterations_.store(0, std::memory_order_relaxed);
  checks_.store(0, std::memory_order_relaxed);
}

void CancelToken::cancel(StopReason reason) noexcept {
  // First reason wins; the flag is released after it so a reader that sees
  // cancelled() also sees the reason.
  int expected = static_cast<int>(StopReason::None);
  reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                  std::memory_order_acq_rel);
  cancelled_.store(true, std::memory_order_release);
}

bool CancelToken::check() noexcept {
  if (cancelled_.load(std::memory_order_acquire)) return true;
  if (deadline_ns_ != 0 && steady_now_ns() >= deadline_ns_) {
    cancel(StopReason::Deadline);
    return true;
  }
  if (budget_.max_rss_kb > 0 &&
      checks_.fetch_add(1, std::memory_order_relaxed) % kRssPollEvery == 0) {
    const std::int64_t rss = perf::process_peak_rss_kb();
    rss_seen_kb_.store(rss, std::memory_order_relaxed);
    if (rss > budget_.max_rss_kb) {
      cancel(StopReason::Memory);
      return true;
    }
  }
  return false;
}

double CancelToken::deadline_remaining_seconds() const noexcept {
  if (deadline_ns_ == 0) return std::numeric_limits<double>::quiet_NaN();
  return 1e-9 * static_cast<double>(deadline_ns_ - steady_now_ns());
}

void CancelToken::charge_iterations(long n) noexcept {
  const long total = iterations_.fetch_add(n, std::memory_order_relaxed) + n;
  if (budget_.max_iterations > 0 && total >= budget_.max_iterations) {
    cancel(StopReason::Iterations);
  }
}

std::string CancelToken::note() const {
  switch (reason()) {
    case StopReason::None:
      return {};
    case StopReason::Deadline:
      return "deadline of " + std::to_string(budget_.deadline_seconds) +
             "s exceeded";
    case StopReason::Iterations:
      return "iteration budget of " + std::to_string(budget_.max_iterations) +
             " exhausted (charged " + std::to_string(iterations_used()) + ")";
    case StopReason::Memory:
      return "peak RSS " + std::to_string(rss_seen_kb_.load(std::memory_order_relaxed)) +
             " KB exceeded cap " + std::to_string(budget_.max_rss_kb) + " KB";
    case StopReason::Signal:
      return SignalGuard::signalled()
                 ? "cancelled by signal " + std::to_string(SignalGuard::signal_number())
                 : "cancelled";
  }
  return {};
}

// ---- SignalGuard --------------------------------------------------------

namespace {
// The handler may run on any thread at any instant, so everything it
// touches is a lock-free atomic.
std::atomic<CancelToken*> g_signal_token{nullptr};
std::atomic<int> g_signal_number{0};

#if defined(__unix__) || defined(__APPLE__)
struct sigaction g_prev_int;   // NOLINT: written only while a guard is alive
struct sigaction g_prev_term;  // NOLINT

void guard_signal_handler(int sig) {
  g_signal_number.store(sig, std::memory_order_relaxed);
  if (CancelToken* tok = g_signal_token.load(std::memory_order_acquire)) {
    tok->cancel(StopReason::Signal);
  }
}
#endif
}  // namespace

SignalGuard::SignalGuard(CancelToken& token) {
  CancelToken* expected = nullptr;
  TCR_REQUIRE(g_signal_token.compare_exchange_strong(expected, &token),
              "only one guard::SignalGuard may be alive per process");
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction sa {};
  sa.sa_handler = &guard_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking syscalls too
  sigaction(SIGINT, &sa, &g_prev_int);
  sigaction(SIGTERM, &sa, &g_prev_term);
  installed_ = true;
#endif
}

SignalGuard::~SignalGuard() {
#if defined(__unix__) || defined(__APPLE__)
  if (installed_) {
    sigaction(SIGINT, &g_prev_int, nullptr);
    sigaction(SIGTERM, &g_prev_term, nullptr);
  }
#endif
  g_signal_token.store(nullptr, std::memory_order_release);
}

bool SignalGuard::signalled() noexcept {
  return g_signal_number.load(std::memory_order_relaxed) != 0;
}

int SignalGuard::signal_number() noexcept {
  return g_signal_number.load(std::memory_order_relaxed);
}

}  // namespace tcr::guard
