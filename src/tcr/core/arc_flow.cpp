#include "tcr/core/arc_flow.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "tcr/graph/symmetry.hpp"
#include "tcr/lp/maxflow.hpp"
#include "tcr/obs/registry.hpp"
#include "tcr/trace/tracer.hpp"
#include "tcr/util/check.hpp"

namespace tcr {

using lp::Model;
using lp::RowType;

namespace {

// Design-pipeline metrics (resolved once; references are stable).
struct DesignMetrics {
  obs::Counter& solves = obs::Registry::instance().counter("core.design.solves");
  obs::Gauge& rows = obs::Registry::instance().gauge("core.design.rows");
  obs::Gauge& cols = obs::Registry::instance().gauge("core.design.cols");
  obs::Gauge& nnz = obs::Registry::instance().gauge("core.design.nnz");
  // Flow-variable count with and without the dihedral/translation folding —
  // the "size before/after symmetry reduction" of §4.
  obs::Gauge& flow_vars = obs::Registry::instance().gauge("core.design.flow_vars");
  obs::Gauge& flow_vars_unfolded =
      obs::Registry::instance().gauge("core.design.flow_vars_unfolded");
  obs::Gauge& last_objective = obs::Registry::instance().gauge("core.design.last_objective");
  // Rows covered by the flow crash basis (flow_crash_hints()): how much of
  // the model starts on combinatorial columns instead of slacks/artificials.
  obs::Gauge& crash_hints = obs::Registry::instance().gauge("core.design.crash_hints");
  // Objective trajectory across the solves of a pipeline stage (lexicographic
  // stages, cutting-plane rounds, tradeoff sweeps): the snapshot reports
  // count/min/max/percentiles of all objectives seen since the last reset.
  obs::Histogram& objectives =
      obs::Registry::instance().histogram("core.design.objective", 1e-3, 1.1);
  obs::Timer& t_build = obs::Registry::instance().timer("core.design.time.build");
  obs::Timer& t_solve = obs::Registry::instance().timer("core.design.time.solve");
  obs::Timer& t_decompose = obs::Registry::instance().timer("core.design.time.decompose");

  static DesignMetrics& get() {
    static DesignMetrics m;
    return m;
  }
};

}  // namespace

SymmetricArcDesign::SymmetricArcDesign(const Torus& torus, SymmetricDesignConfig config)
    : torus_(torus), config_(std::move(config)) {
  auto& met = DesignMetrics::get();
  {
    obs::ScopedTimer t(met.t_build);
    build();
  }
  met.rows.set(model_.num_rows());
  met.cols.set(model_.num_cols());
  met.nnz.set(static_cast<double>(model_.num_terms()));
  met.flow_vars.set(num_flow_vars_);
  met.flow_vars_unfolded.set(static_cast<double>(torus_.num_nodes() - 1) *
                             torus_.num_channels());
}

void SymmetricArcDesign::build() {
  const int n = torus_.num_nodes();
  const bool min_locality = config_.objective == DesignObjective::Locality;

  build_orbits();
  for (int v = 0; v < num_flow_vars_; ++v) {
    model_.add_col(0.0, lp::kInf, min_locality ? orbit_size_[v] / n : 0.0);
  }

  add_flow_conservation();

  const bool want_wc = config_.objective == DesignObjective::WorstCase ||
                       config_.worst_case_cap >= 0.0;
  const bool want_uni = config_.objective == DesignObjective::Uniform ||
                        config_.uniform_cap >= 0.0;
  const bool want_avg = config_.objective == DesignObjective::AverageCase ||
                        config_.average_cap >= 0.0;
  if (want_wc) add_worst_case_block();
  if (want_uni) add_uniform_block();
  if (want_avg) add_average_block();
  if (config_.locality_equals >= 0.0) add_locality_row();
}

void SymmetricArcDesign::build_orbits() {
  const int n = torus_.num_nodes(), nc = torus_.num_channels();
  var_of_.assign(static_cast<std::size_t>(n - 1) * nc, -1);
  orbit_size_.clear();
  dir_count_.clear();
  rep_commodities_.clear();
  num_flow_vars_ = 0;

  if (!config_.fold_dihedral) {
    for (int e = 1; e < n; ++e) {
      rep_commodities_.push_back(e);
      for (int c = 0; c < nc; ++c) {
        var_of_[(e - 1) * nc + c] = num_flow_vars_++;
        orbit_size_.push_back(1.0);
        std::array<double, 4> dc{0, 0, 0, 0};
        dc[c % kNumDirs] = 1.0;
        dir_count_.push_back(dc);
      }
    }
    return;
  }

  const TorusSymmetry sym(torus_);
  for (int e = 1; e < n; ++e) {
    if (sym.node_rep(e) == e) rep_commodities_.push_back(e);
  }
  for (int e = 1; e < n; ++e) {
    for (int c = 0; c < nc; ++c) {
      if (var_of_[(e - 1) * nc + c] >= 0) continue;
      const int v = num_flow_vars_++;
      orbit_size_.push_back(0.0);
      dir_count_.push_back({0, 0, 0, 0});
      // Walk the orbit, assigning every distinct member to this variable.
      for (int g = 0; g < TorusSymmetry::kOrder; ++g) {
        const int eg = sym.map_node(g, e);
        const int cg = sym.map_channel(g, c);
        auto& slot = var_of_[(eg - 1) * nc + cg];
        if (slot < 0) {
          slot = v;
          orbit_size_[v] += 1.0;
          dir_count_[v][cg % kNumDirs] += 1.0;
        }
      }
    }
  }
}

void SymmetricArcDesign::add_flow_conservation() {
  const int n = torus_.num_nodes();
  cons_row_base_ = model_.num_rows();
  for (int e : rep_commodities_) {
    for (int nd = 0; nd < n; ++nd) {
      const double rhs = (nd == e) ? 1.0 : (nd == 0 ? -1.0 : 0.0);
      const int row = model_.add_row(RowType::EQ, rhs);
      for (int dir = 0; dir < kNumDirs; ++dir) {
        const Dir d = static_cast<Dir>(dir);
        // Out-channel of nd in direction d.
        model_.add_term(row, flow_var(e, torus_.channel(nd, d)), -1.0);
        // In-channel: the same-direction channel of the opposite neighbor.
        const Dir opp = static_cast<Dir>(dir ^ 1);  // PX<->NX, PY<->NY
        model_.add_term(row, flow_var(e, torus_.channel(torus_.neighbor(nd, opp), d)), 1.0);
      }
    }
  }
}

void SymmetricArcDesign::add_worst_case_block() {
  const int n = torus_.num_nodes();
  const bool is_obj = config_.objective == DesignObjective::WorstCase;
  const double w_up = config_.worst_case_cap >= 0.0 ? config_.worst_case_cap : lp::kInf;
  wc_var_ = model_.add_col(0.0, w_up, is_obj ? 1.0 : 0.0);

  if (!config_.worst_case_exact_block) {
    // Cutting-plane relaxation: one row per known adversarial permutation,
    // gamma_{c0}(R, pi) <= w on the representative channel (+X at node 0;
    // folding makes the classes equivalent — require it).
    TCR_REQUIRE(config_.fold_dihedral,
                "cut-based worst case requires the dihedral fold (one rep channel)");
    TCR_REQUIRE(!config_.cut_permutations.empty(),
                "cut-based worst case needs at least one permutation");
    const int c0 = torus_.channel(0, Dir::PX);
    first_cut_row_ = model_.num_rows();
    for (const auto& perm : config_.cut_permutations) {
      const int row = model_.add_row(RowType::LE, 0.0);
      for (int s = 0; s < n; ++s) {
        const int e = torus_.offset(s, perm[s]);
        if (e == 0) continue;
        model_.add_term(row, flow_var(e, torus_.translate_channel(c0, torus_.negate_node(s))),
                        1.0);
      }
      model_.add_term(row, wc_var_, -1.0);
    }
    return;
  }

  // With the dihedral fold the four direction classes are equivalent, so a
  // single representative channel suffices; otherwise one per class.
  const int num_blocks = config_.fold_dihedral ? 1 : kNumDirs;
  for (int dir = 0; dir < num_blocks; ++dir) {
    const int c0 = torus_.channel(0, static_cast<Dir>(dir));
    std::vector<int> u(n), v(n);
    // Ground the potentials' constant-shift null direction: u[0] = 0.
    for (int s = 0; s < n; ++s)
      u[s] = (s == 0) ? model_.add_col(0.0, 0.0, 0.0) : model_.add_col(-lp::kInf, lp::kInf, 0.0);
    for (int d = 0; d < n; ++d) v[d] = model_.add_col(-lp::kInf, lp::kInf, 0.0);

    wc_block_row_base_.push_back(model_.num_rows());
    for (int s = 0; s < n; ++s) {
      // Channel whose canonical load equals the load of (s, *) on c0.
      const int ct = torus_.translate_channel(c0, torus_.negate_node(s));
      for (int d = 0; d < n; ++d) {
        const int row = model_.add_row(RowType::LE, 0.0);
        const int e = torus_.offset(s, d);
        if (e != 0) model_.add_term(row, flow_var(e, ct), 1.0);
        model_.add_term(row, v[d], -1.0);
        model_.add_term(row, u[s], 1.0);
      }
    }
    const int sum_row = model_.add_row(RowType::EQ, 0.0);
    for (int d = 0; d < n; ++d) model_.add_term(sum_row, v[d], 1.0);
    for (int s = 0; s < n; ++s) model_.add_term(sum_row, u[s], -1.0);
    model_.add_term(sum_row, wc_var_, -1.0);  // b_c = 1
    wc_sum_rows_.push_back(sum_row);
    wc_u_cols_.push_back(u);
    wc_v_cols_.push_back(v);
  }
}

void SymmetricArcDesign::add_uniform_block() {
  const int n = torus_.num_nodes(), nc = torus_.num_channels();
  const bool is_obj = config_.objective == DesignObjective::Uniform;
  const double up = config_.uniform_cap >= 0.0 ? config_.uniform_cap : lp::kInf;
  uni_var_ = model_.add_col(0.0, up, is_obj ? 1.0 : 0.0);

  const int num_blocks = config_.fold_dihedral ? 1 : kNumDirs;
  for (int dir = 0; dir < num_blocks; ++dir) {
    const int row = model_.add_row(RowType::LE, 0.0);
    uni_rows_.push_back(row);
    for (int v = 0; v < num_flow_vars_; ++v) {
      if (dir_count_[v][dir] != 0.0) model_.add_term(row, v, dir_count_[v][dir]);
    }
    model_.add_term(row, uni_var_, -static_cast<double>(n));
  }
  (void)nc;
}

void SymmetricArcDesign::add_average_block() {
  TCR_REQUIRE(!config_.samples.empty(),
              "average-case design needs permutation traffic samples");
  const int n = torus_.num_nodes(), nc = torus_.num_channels();
  const bool is_obj = config_.objective == DesignObjective::AverageCase;
  const double per = 1.0 / static_cast<double>(config_.samples.size());

  avg_vars_.clear();
  for (std::size_t i = 0; i < config_.samples.size(); ++i) {
    avg_vars_.push_back(model_.add_col(0.0, lp::kInf, is_obj ? per : 0.0));
  }
  for (std::size_t i = 0; i < config_.samples.size(); ++i) {
    const auto& perm = config_.samples[i];
    TCR_REQUIRE(static_cast<int>(perm.size()) == n, "sample permutation size mismatch");
    avg_row_base_.push_back(model_.num_rows());
    for (int c = 0; c < nc; ++c) {
      const int row = model_.add_row(RowType::LE, 0.0);
      for (int s = 0; s < n; ++s) {
        const int e = torus_.offset(s, perm[s]);
        if (e == 0) continue;
        model_.add_term(row, flow_var(e, torus_.translate_channel(c, torus_.negate_node(s))),
                        1.0);
      }
      model_.add_term(row, avg_vars_[i], -1.0);
    }
  }
  if (config_.average_cap >= 0.0) {
    const int row = model_.add_row(RowType::LE, config_.average_cap);
    for (int var : avg_vars_) model_.add_term(row, var, per);
  }
}

void SymmetricArcDesign::add_locality_row() {
  const int n = torus_.num_nodes(), nc = torus_.num_channels();
  const int row = model_.add_row(config_.locality_le ? RowType::LE : RowType::EQ,
                                 config_.locality_equals * n);
  for (int e = 1; e < n; ++e) {
    for (int c = 0; c < nc; ++c) model_.add_term(row, flow_var(e, c), 1.0);
  }
  locality_row_ = row;
}

void SymmetricArcDesign::set_locality_bound(double locality_equals) {
  TCR_REQUIRE(locality_row_ >= 0,
              "design has no locality row; construct with locality_equals >= 0");
  TCR_REQUIRE(locality_equals >= 0.0, "locality bound must be nonnegative");
  config_.locality_equals = locality_equals;
  model_.set_rhs(locality_row_, locality_equals * torus_.num_nodes());
}

const lp::CrashHints& SymmetricArcDesign::flow_crash_hints() {
  if (crash_hints_built_) return crash_hints_;
  crash_hints_built_ = true;
  auto& hints = crash_hints_.basic_of_row;
  hints.assign(static_cast<std::size_t>(model_.num_rows()), -1);
  std::vector<char> used(static_cast<std::size_t>(model_.num_cols()), 0);
  auto take = [&](int row, int col) {
    if (col < 0 || used[static_cast<std::size_t>(col)]) return;
    hints[static_cast<std::size_t>(row)] = col;
    used[static_cast<std::size_t>(col)] = 1;
  };

  // Conservation rows: route each representative commodity along one
  // shortest 0 -> e path (Dinic, unit flow limit) and nominate the path's
  // flow variables as basic in the rows of the nodes the arcs enter. The
  // dihedral fold can map two path arcs (of this or an earlier commodity)
  // to the same variable; `used` keeps the first nomination and leaves the
  // later row on its crash column.
  const int n = torus_.num_nodes(), nc = torus_.num_channels();
  for (std::size_t r = 0; r < rep_commodities_.size(); ++r) {
    const int e = rep_commodities_[r];
    lp::MaxFlow mf(n);
    for (int c = 0; c < nc; ++c) {
      mf.add_arc(torus_.channel_src(c), torus_.channel_dst(c), 1.0);
    }
    if (mf.solve(0, e, 1.0) <= 0.0) continue;
    const auto paths = mf.decompose_paths(0, e);
    if (paths.empty()) continue;
    for (const int arc : paths.front()) {
      const int c = arc / 2;  // arcs were added in channel order
      take(cons_row_base_ + static_cast<int>(r) * n + torus_.channel_dst(c), flow_var(e, c));
    }
  }

  // Worst-case exact blocks: the free dual potentials want to be basic —
  // v_d in its first row (s = 0), u_s in its first row (d = 0; u_0 is fixed
  // at zero and stays nonbasic) — and w replaces the sum row's artificial.
  for (std::size_t b = 0; b < wc_block_row_base_.size(); ++b) {
    const int base = wc_block_row_base_[b];
    for (int d = 0; d < n; ++d) take(base + d, wc_v_cols_[b][d]);
    for (int s = 1; s < n; ++s) take(base + s * n, wc_u_cols_[b][s]);
    take(wc_sum_rows_[b], wc_var_);
  }
  if (first_cut_row_ >= 0) take(first_cut_row_, wc_var_);
  for (const int row : uni_rows_) take(row, uni_var_);
  for (std::size_t i = 0; i < avg_row_base_.size(); ++i) take(avg_row_base_[i], avg_vars_[i]);

  int covered = 0;
  for (const int col : hints) covered += (col >= 0);
  DesignMetrics::get().crash_hints.set(covered);
  return crash_hints_;
}

DesignResult SymmetricArcDesign::solve(const lp::SimplexOptions& opts,
                                       const lp::Basis* warm) {
  auto& met = DesignMetrics::get();
  met.solves.add(1);
  lp::Solution sol;
  {
    trace::Span t("design.solve", met.t_solve);
    t.attr("rows", model_.num_rows());
    t.attr("cols", model_.num_cols());
    t.attr("nnz", static_cast<std::int64_t>(model_.num_terms()));
    const lp::CrashHints* crash = opts.flow_crash ? &flow_crash_hints() : nullptr;
    if (warm != nullptr && !warm->empty() && locality_row_ >= 0) {
      // The only row a sweep edits between solves is the locality bound;
      // annotating it lets the warm-start logic target that row: the dual
      // phase reprices it directly instead of rediscovering the moved
      // constraint via a cold repair.
      lp::Basis hinted = *warm;
      hinted.edited_rows.assign(1, locality_row_);
      sol = lp::solve(model_, opts, &hinted, crash);
    } else {
      sol = lp::solve(model_, opts, warm, crash);
    }
    t.attr("status", lp::to_string(sol.status));
    t.attr("warm_start", sol.warm_start);
    t.attr("dual_iterations", static_cast<std::int64_t>(sol.dual_iterations));
  }
  DesignResult res;
  res.status = sol.status;
  res.iterations = sol.iterations;
  res.dual_iterations = sol.dual_iterations;
  res.note = sol.note;
  res.certificate = sol.certificate;
  res.basis = std::move(sol.basis);
  res.warm_start = sol.warm_start;
  if (sol.status != lp::Status::Optimal) return res;
  res.objective = sol.objective;
  met.last_objective.set(sol.objective);
  met.objectives.record(sol.objective);
  const int n = torus_.num_nodes(), nc = torus_.num_channels();
  solution_flows_.resize(static_cast<std::size_t>(n - 1) * nc);
  double total = 0.0;
  for (int e = 1; e < n; ++e) {
    for (int c = 0; c < nc; ++c) {
      const double f = sol.x[flow_var(e, c)];
      solution_flows_[(e - 1) * nc + c] = f;
      total += f;
    }
  }
  res.avg_hops = total / n;
  return res;
}

TorusRouting SymmetricArcDesign::routing(const std::string& name) const {
  TCR_REQUIRE(!solution_flows_.empty(), "no stored solution; call solve() first");
  obs::ScopedTimer t(DesignMetrics::get().t_decompose);
  const int n = torus_.num_nodes(), nc = torus_.num_channels();
  TorusRouting r(torus_, name);
  for (int e = 1; e < n; ++e) {
    std::vector<double> flow(solution_flows_.begin() + (e - 1) * nc,
                             solution_flows_.begin() + e * nc);
    for (auto& wp : decompose_flow(torus_, e, std::move(flow))) {
      r.add_path(e, std::move(wp.path), wp.weight);
    }
  }
  r.normalize();
  return r;
}

std::vector<WeightedPath> decompose_flow(const Torus& torus, int e, std::vector<double> flow,
                                         double eps) {
  TCR_REQUIRE(e != 0, "offset must be nonzero");
  std::vector<WeightedPath> out;
  const int n = torus.num_nodes();
  std::vector<int> pred(static_cast<std::size_t>(n));

  for (;;) {
    // BFS from 0 to e along channels with remaining flow.
    std::fill(pred.begin(), pred.end(), -1);
    std::queue<int> q;
    q.push(0);
    pred[0] = -2;
    while (!q.empty() && pred[e] == -1) {
      const int nd = q.front();
      q.pop();
      for (int dir = 0; dir < kNumDirs; ++dir) {
        const int c = torus.channel(nd, static_cast<Dir>(dir));
        if (flow[c] <= eps) continue;
        const int to = torus.channel_dst(c);
        if (pred[to] == -1) {
          pred[to] = c;
          q.push(to);
        }
      }
    }
    if (pred[e] == -1) break;

    // Recover the path and the bottleneck flow.
    std::vector<int> channels;
    double delta = lp::kInf;
    for (int nd = e; nd != 0;) {
      const int c = pred[nd];
      channels.push_back(c);
      delta = std::min(delta, flow[c]);
      nd = torus.channel_src(c);
    }
    std::reverse(channels.begin(), channels.end());
    for (int c : channels) flow[c] -= delta;

    Path p;
    p.src = 0;
    p.dst = e;
    p.channels = std::move(channels);
    out.push_back({std::move(p), delta});
  }
  return out;
}

// ---------------------------------------------------------------------
// General (unreduced) formulations.

namespace {

struct GeneralVars {
  int n = 0, nc = 0;
  int pair_stride = 0;
  int flow_var(int s, int d, int c) const { return (s * n + d) * nc + c; }
};

void add_general_flows(const Digraph& g, Model& model, GeneralVars& vars) {
  vars.n = g.num_nodes();
  vars.nc = g.num_channels();
  for (int s = 0; s < vars.n; ++s) {
    for (int d = 0; d < vars.n; ++d) {
      for (int c = 0; c < vars.nc; ++c) {
        model.add_col(0.0, (s == d) ? 0.0 : lp::kInf, 0.0);
      }
    }
  }
  for (int s = 0; s < vars.n; ++s) {
    for (int d = 0; d < vars.n; ++d) {
      if (s == d) continue;
      for (int nd = 0; nd < vars.n; ++nd) {
        const double rhs = (nd == d) ? 1.0 : (nd == s ? -1.0 : 0.0);
        const int row = model.add_row(RowType::EQ, rhs);
        for (int c : g.in_channels(nd)) model.add_term(row, vars.flow_var(s, d, c), 1.0);
        for (int c : g.out_channels(nd)) model.add_term(row, vars.flow_var(s, d, c), -1.0);
      }
    }
  }
}

void extract_general(const GeneralVars& vars, const lp::Solution& sol,
                     GeneralDesignResult& res) {
  res.flows.assign(vars.n * vars.n, std::vector<double>(vars.nc, 0.0));
  for (int s = 0; s < vars.n; ++s)
    for (int d = 0; d < vars.n; ++d)
      for (int c = 0; c < vars.nc; ++c)
        res.flows[s * vars.n + d][c] = sol.x[vars.flow_var(s, d, c)];
}

}  // namespace

GeneralDesignResult general_capacity_design(const Digraph& g, const lp::SimplexOptions& opts) {
  Model model;
  GeneralVars vars;
  add_general_flows(g, model, vars);
  const int w = model.add_col(0.0, lp::kInf, 1.0);
  for (int c = 0; c < vars.nc; ++c) {
    const int row = model.add_row(RowType::LE, 0.0);
    for (int s = 0; s < vars.n; ++s) {
      for (int d = 0; d < vars.n; ++d) {
        if (s != d) model.add_term(row, vars.flow_var(s, d, c), 1.0 / vars.n);
      }
    }
    model.add_term(row, w, -g.channel(c).bandwidth);
  }
  const lp::Solution sol = lp::solve(model, opts);
  GeneralDesignResult res;
  res.status = sol.status;
  res.certificate = sol.certificate;
  if (sol.status != lp::Status::Optimal) return res;
  res.objective = sol.objective;
  extract_general(vars, sol, res);
  return res;
}

GeneralDesignResult general_worst_case_design(const Digraph& g, const lp::SimplexOptions& opts) {
  Model model;
  GeneralVars vars;
  add_general_flows(g, model, vars);
  const int w = model.add_col(0.0, lp::kInf, 1.0);
  for (int c = 0; c < vars.nc; ++c) {
    std::vector<int> u(vars.n), v(vars.n);
    for (int s = 0; s < vars.n; ++s)
      u[s] = (s == 0) ? model.add_col(0.0, 0.0, 0.0) : model.add_col(-lp::kInf, lp::kInf, 0.0);
    for (int d = 0; d < vars.n; ++d) v[d] = model.add_col(-lp::kInf, lp::kInf, 0.0);
    for (int s = 0; s < vars.n; ++s) {
      for (int d = 0; d < vars.n; ++d) {
        const int row = model.add_row(RowType::LE, 0.0);
        if (s != d) model.add_term(row, vars.flow_var(s, d, c), 1.0);
        model.add_term(row, v[d], -1.0);
        model.add_term(row, u[s], 1.0);
      }
    }
    const int sum_row = model.add_row(RowType::EQ, 0.0);
    for (int d = 0; d < vars.n; ++d) model.add_term(sum_row, v[d], 1.0);
    for (int s = 0; s < vars.n; ++s) model.add_term(sum_row, u[s], -1.0);
    model.add_term(sum_row, w, -g.channel(c).bandwidth);
  }
  const lp::Solution sol = lp::solve(model, opts);
  GeneralDesignResult res;
  res.status = sol.status;
  res.certificate = sol.certificate;
  if (sol.status != lp::Status::Optimal) return res;
  res.objective = sol.objective;
  extract_general(vars, sol, res);
  return res;
}

}  // namespace tcr
