// Locality-vs-throughput tradeoff sweeps (paper Figures 1 and 6): solve the
// locality-constrained design LP (10)/(15) over a grid of average path
// lengths and report the optimal throughput at each, normalized the way the
// paper plots it (throughput as a fraction of capacity, path length as a
// multiple of the minimal average).
#pragma once

#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "tcr/core/arc_flow.hpp"
#include "tcr/guard/guard.hpp"
#include "tcr/util/thread_pool.hpp"

namespace tcr::guard {
class JournalWriter;
}

namespace tcr {

/// One point of a Figure 1/6 tradeoff curve: the locality bound and the
/// best certified throughput the design LP achieved under it.
struct TradeoffPoint {
  /// Normalized H_avg (eq. 5 divided by the minimal average hop count;
  /// >= 1, where 1 = minimal routing) — the figures' y-axis.
  double locality = 0.0;
  /// Optimal Theta / capacity at that locality, in [0, 1] (LP (10)
  /// worst-case, LP (15) average-case) — the figures' x-axis. NaN when the
  /// point was not solved to a certified optimum — consumers must mark it
  /// unsolved, never plot it as zero throughput (obs::Json already renders
  /// NaN as null).
  double capacity_fraction = std::numeric_limits<double>::quiet_NaN();
  lp::Status status = lp::Status::Numerical;  ///< LP stop status of the point
  std::string note;                ///< solver stop diagnosis when not Optimal
  lp::Certificate certificate;     ///< independent KKT check of the point's LP
  /// Warm-start adoption outcome of the point's solve ("cold"/"accepted"/
  /// "repaired"/"rejected"; see lp::Solution::warm_start).
  std::string warm_start = "cold";
  /// Simplex iterations the point's solve used (budget diagnosis).
  long iterations = 0;
  /// Where the value came from:
  ///   "measured"  — solved in this run;
  ///   "resumed"   — replayed verbatim from a checkpoint journal;
  ///   "degraded"  — the solve blew its budget or exhausted the recovery
  ///                 ladder; capacity_fraction, when finite, is *interpolated*
  ///                 per §5.3 (eq. 14) from certified neighbors, not measured;
  ///   "skipped"   — abandoned on external cancellation (signal); a resumed
  ///                 run will compute it properly.
  /// Gates must never treat degraded/skipped points as measurements.
  std::string provenance = "measured";

  bool solved() const { return status == lp::Status::Optimal; }
  bool degraded() const { return provenance == "degraded"; }
};

/// How a sweep executes its points.
struct SweepConfig {
  /// Reuse each point's simplex basis to warm-start the next point of the
  /// same chain. Localities are solved in the order given; an ascending grid
  /// keeps the previous basis primal-feasible under the relaxed <= bound, so
  /// warm points skip phase 1 entirely (lp.warmstart.* counters tell).
  bool warm_start = true;
  /// Number of contiguous chunks the points are partitioned into; each chunk
  /// shares one incrementally-updated design model and one basis chain.
  /// 0 -> the pool size when sweeping on a pool, else 1. The partition — and
  /// therefore every solve's warm-start seed — depends only on
  /// (points, chains), so parallel and serial sweeps of the same
  /// configuration produce identical point series.
  int chains = 0;

  // ---- run control (all optional, none owned) ----
  /// Cooperative cancellation/budget token. Checked before every point and
  /// threaded into each solve via SimplexOptions::cancel by the caller;
  /// once it fires, in-flight points stop with lp::Status::Cancelled and
  /// remaining points are labeled without being attempted (the degradation
  /// post-pass assigns "degraded" or "skipped" by the stop reason).
  guard::CancelToken* cancel = nullptr;
  /// Checkpoint journal: every point that reaches a terminal (non-cancelled)
  /// status is appended as SweepCheckpoint::encode(index, point, basis),
  /// durably, the moment it completes. Shared by parallel chains.
  guard::JournalWriter* journal = nullptr;
  /// Previously completed points (loaded from a journal): replayed verbatim
  /// with provenance "resumed", and their journaled bases re-chain the warm
  /// starts, so a killed run resumed with the same grid/options reproduces
  /// the uninterrupted point series bitwise.
  const struct SweepResume* resume = nullptr;
};

/// Completed points of an earlier (killed) sweep, keyed by point index.
struct SweepResume {
  std::map<int, std::pair<TradeoffPoint, lp::Basis>> points;

  bool has(int index) const { return points.find(index) != points.end(); }
};

/// Codec for one journaled sweep point: the TradeoffPoint result plus the
/// exported simplex basis that warm-starts the next point. Binary and
/// machine-local (doubles are stored bit-exact — resume must reproduce the
/// uninterrupted run bitwise; journals are not an interchange format).
/// Basis::edited_rows is not stored: SymmetricArcDesign::solve re-annotates
/// the moved locality row on every warm solve.
struct SweepCheckpoint {
  static std::string encode(int index, const TradeoffPoint& pt, const lp::Basis& basis);
  /// Strict decode; false on any truncation, trailing bytes or version
  /// mismatch (the journal layer already CRC-checks payload integrity).
  static bool decode(const std::string& payload, int* index, TradeoffPoint* pt,
                     lp::Basis* basis);
};

/// Load a checkpoint journal written by SweepConfig::journal. Returns false
/// with a position-bearing *error on hard corruption; a torn final record
/// (killed mid-append) is dropped and reported via *truncated_tail.
bool load_sweep_resume(const std::string& path, SweepResume* out, bool* truncated_tail,
                       std::string* error);

/// Degradation post-pass (run by every sweep; exposed so tests can pin the
/// §5.3 arithmetic). Points stopped by a budget (`reason` Deadline/
/// Iterations/Memory) or whose recovery ladder exhausted (Status::Numerical)
/// become "degraded": when certified neighbors exist on both sides, the
/// capacity fraction is filled with the eq. 14 harmonic interpolation
///   theta(alpha) = 1 / (alpha/theta_j + (1-alpha)/theta_k),
///   alpha = (L_k - L_i) / (L_k - L_j)
/// and the note names the anchor points; one-sided points stay NaN but are
/// still flagged. Points cancelled by an external signal become "skipped".
void fill_degraded_points(std::vector<TradeoffPoint>& points, guard::StopReason reason);

/// Worst-case curve (Figure 1): for each normalized locality L, the best
/// achievable worst-case throughput as a capacity fraction (LP (10) with
/// H_avg <= L, symmetry-reduced per §4).
std::vector<TradeoffPoint> worst_case_tradeoff(const Torus& torus,
                                               const std::vector<double>& localities,
                                               const lp::SimplexOptions& opts = {},
                                               ThreadPool* pool = nullptr,
                                               const SweepConfig& sweep = {});

/// Average-case curve (Figure 6) using permutation traffic samples
/// (LP (15) with H_avg <= L); capacity fractions use the arithmetic-mean
/// approximation of eq. 9.
std::vector<TradeoffPoint> average_case_tradeoff(const Torus& torus,
                                                 const std::vector<std::vector<int>>& samples,
                                                 const std::vector<double>& localities,
                                                 const lp::SimplexOptions& opts = {},
                                                 ThreadPool* pool = nullptr,
                                                 const SweepConfig& sweep = {});

/// Evenly spaced grid of n normalized localities in [lo, hi] (lo = 1 is
/// minimal routing; Figure 1 sweeps [1, 2]).
std::vector<double> locality_grid(double lo, double hi, int n);

}  // namespace tcr
