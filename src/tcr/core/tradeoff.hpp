// Locality-vs-throughput tradeoff sweeps (paper Figures 1 and 6): solve the
// locality-constrained design LP (10)/(15) over a grid of average path
// lengths and report the optimal throughput at each, normalized the way the
// paper plots it (throughput as a fraction of capacity, path length as a
// multiple of the minimal average).
#pragma once

#include <string>
#include <vector>

#include "tcr/core/arc_flow.hpp"
#include "tcr/util/thread_pool.hpp"

namespace tcr {

struct TradeoffPoint {
  double locality = 0.0;           // normalized average path length (>= 1)
  double capacity_fraction = 0.0;  // optimal Theta / capacity at that locality
  lp::Status status = lp::Status::Numerical;
  std::string note;                // solver stop diagnosis when not Optimal
  lp::Certificate certificate;     // independent KKT check of the point's LP
};

/// Worst-case curve (Figure 1): for each normalized locality L, the best
/// achievable worst-case throughput.
std::vector<TradeoffPoint> worst_case_tradeoff(const Torus& torus,
                                               const std::vector<double>& localities,
                                               const lp::SimplexOptions& opts = {},
                                               ThreadPool* pool = nullptr);

/// Average-case curve (Figure 6) using permutation traffic samples.
std::vector<TradeoffPoint> average_case_tradeoff(const Torus& torus,
                                                 const std::vector<std::vector<int>>& samples,
                                                 const std::vector<double>& localities,
                                                 const lp::SimplexOptions& opts = {},
                                                 ThreadPool* pool = nullptr);

/// Evenly spaced grid of n normalized localities in [lo, hi].
std::vector<double> locality_grid(double lo, double hi, int n);

}  // namespace tcr
