// Locality-vs-throughput tradeoff sweeps (paper Figures 1 and 6): solve the
// locality-constrained design LP (10)/(15) over a grid of average path
// lengths and report the optimal throughput at each, normalized the way the
// paper plots it (throughput as a fraction of capacity, path length as a
// multiple of the minimal average).
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "tcr/core/arc_flow.hpp"
#include "tcr/util/thread_pool.hpp"

namespace tcr {

/// One point of a Figure 1/6 tradeoff curve: the locality bound and the
/// best certified throughput the design LP achieved under it.
struct TradeoffPoint {
  /// Normalized H_avg (eq. 5 divided by the minimal average hop count;
  /// >= 1, where 1 = minimal routing) — the figures' y-axis.
  double locality = 0.0;
  /// Optimal Theta / capacity at that locality, in [0, 1] (LP (10)
  /// worst-case, LP (15) average-case) — the figures' x-axis. NaN when the
  /// point was not solved to a certified optimum — consumers must mark it
  /// unsolved, never plot it as zero throughput (obs::Json already renders
  /// NaN as null).
  double capacity_fraction = std::numeric_limits<double>::quiet_NaN();
  lp::Status status = lp::Status::Numerical;  ///< LP stop status of the point
  std::string note;                ///< solver stop diagnosis when not Optimal
  lp::Certificate certificate;     ///< independent KKT check of the point's LP
  /// Warm-start adoption outcome of the point's solve ("cold"/"accepted"/
  /// "repaired"/"rejected"; see lp::Solution::warm_start).
  std::string warm_start = "cold";

  bool solved() const { return status == lp::Status::Optimal; }
};

/// How a sweep executes its points.
struct SweepConfig {
  /// Reuse each point's simplex basis to warm-start the next point of the
  /// same chain. Localities are solved in the order given; an ascending grid
  /// keeps the previous basis primal-feasible under the relaxed <= bound, so
  /// warm points skip phase 1 entirely (lp.warmstart.* counters tell).
  bool warm_start = true;
  /// Number of contiguous chunks the points are partitioned into; each chunk
  /// shares one incrementally-updated design model and one basis chain.
  /// 0 -> the pool size when sweeping on a pool, else 1. The partition — and
  /// therefore every solve's warm-start seed — depends only on
  /// (points, chains), so parallel and serial sweeps of the same
  /// configuration produce identical point series.
  int chains = 0;
};

/// Worst-case curve (Figure 1): for each normalized locality L, the best
/// achievable worst-case throughput as a capacity fraction (LP (10) with
/// H_avg <= L, symmetry-reduced per §4).
std::vector<TradeoffPoint> worst_case_tradeoff(const Torus& torus,
                                               const std::vector<double>& localities,
                                               const lp::SimplexOptions& opts = {},
                                               ThreadPool* pool = nullptr,
                                               const SweepConfig& sweep = {});

/// Average-case curve (Figure 6) using permutation traffic samples
/// (LP (15) with H_avg <= L); capacity fractions use the arithmetic-mean
/// approximation of eq. 9.
std::vector<TradeoffPoint> average_case_tradeoff(const Torus& torus,
                                                 const std::vector<std::vector<int>>& samples,
                                                 const std::vector<double>& localities,
                                                 const lp::SimplexOptions& opts = {},
                                                 ThreadPool* pool = nullptr,
                                                 const SweepConfig& sweep = {});

/// Evenly spaced grid of n normalized localities in [lo, hi] (lo = 1 is
/// minimal routing; Figure 1 sweeps [1, 2]).
std::vector<double> locality_grid(double lo, double hi, int n);

}  // namespace tcr
