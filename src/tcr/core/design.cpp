#include "tcr/core/design.hpp"

#include <set>

#include "tcr/graph/symmetry.hpp"
#include "tcr/lp/certify.hpp"
#include "tcr/matching/hungarian.hpp"
#include "tcr/trace/tracer.hpp"
#include "tcr/traffic/patterns.hpp"
#include "tcr/util/check.hpp"

namespace tcr {

double capacity_design_load(const Torus& torus, const lp::SimplexOptions& opts) {
  SymmetricDesignConfig cfg;
  cfg.objective = DesignObjective::Uniform;
  SymmetricArcDesign design(torus, cfg);
  const DesignResult res = design.solve(opts);
  TCR_REQUIRE(res.status == lp::Status::Optimal,
              std::string("capacity LP did not solve: ") + lp::to_string(res.status));
  return res.objective;
}

namespace {

OptimalDesign lexicographic(const Torus& torus, DesignObjective objective,
                            const std::vector<std::vector<int>>& samples,
                            const std::string& name, const lp::SimplexOptions& opts) {
  // Stage 1: optimize the throughput objective.
  SymmetricDesignConfig cfg;
  cfg.objective = objective;
  cfg.samples = samples;
  OptimalDesign out{.status = lp::Status::Numerical,
                    .objective = 0.0,
                    .avg_hops = 0.0,
                    .locality_norm = 0.0,
                    .note = {},
                    .certificate = {},
                    .routing = TorusRouting(torus, name)};
  lp::Basis stage1_basis;
  int stage1_rows = 0, stage1_cols = 0;
  {
    trace::Span span("design.lexicographic.stage1");
    SymmetricArcDesign stage1(torus, cfg);
    DesignResult r1 = stage1.solve(opts);
    span.attr("status", lp::to_string(r1.status));
    out.certificate = r1.certificate;
    if (r1.status != lp::Status::Optimal) {
      out.status = r1.status;
      out.note = "stage-1 (throughput) LP: " + r1.note;
      return out;
    }
    out.objective = r1.objective;
    stage1_basis = std::move(r1.basis);
    stage1_rows = stage1.model().num_rows();
    stage1_cols = stage1.model().num_cols();
  }

  // Stage 2: best locality subject to the stage-1 optimum.
  SymmetricDesignConfig cfg2;
  cfg2.objective = DesignObjective::Locality;
  cfg2.samples = samples;
  const double cap = out.objective * (1.0 + kLexicographicSlack);
  if (objective == DesignObjective::WorstCase) cfg2.worst_case_cap = cap;
  if (objective == DesignObjective::Uniform) cfg2.uniform_cap = cap;
  if (objective == DesignObjective::AverageCase) cfg2.average_cap = cap;
  trace::Span stage2_span("design.lexicographic.stage2");
  SymmetricArcDesign stage2(torus, cfg2);
  // The worst-case/uniform caps only tighten a variable bound, so the
  // stage-2 model keeps stage 1's shape and its optimal basis is a natural
  // warm start (the stage-1 optimum is primal-feasible for stage 2). The
  // average-case cap adds a row, which changes the standard form — skip.
  const bool same_shape = stage2.model().num_rows() == stage1_rows &&
                          stage2.model().num_cols() == stage1_cols;
  const DesignResult r2 = stage2.solve(opts, same_shape ? &stage1_basis : nullptr);
  stage2_span.attr("status", lp::to_string(r2.status));
  stage2_span.attr("warm_start", r2.warm_start);
  out.status = r2.status;
  out.certificate = lp::worse_certificate(out.certificate, r2.certificate);
  if (r2.status != lp::Status::Optimal) {
    out.note = "stage-2 (locality) LP: " + r2.note;
    return out;
  }
  out.avg_hops = r2.avg_hops;
  out.locality_norm = r2.avg_hops / torus.mean_min_distance();
  out.routing = stage2.routing(name);
  return out;
}

}  // namespace

CuttingPlaneResult design_worst_case_cutting_plane(const Torus& torus,
                                                   const lp::SimplexOptions& opts,
                                                   int max_rounds, double tol) {
  const int n = torus.num_nodes(), nc = torus.num_channels();
  const int c0 = torus.channel(0, Dir::PX);
  const TorusSymmetry sym(torus);
  CuttingPlaneResult out;
  std::set<std::vector<int>> seen;

  // A violated permutation pi stays a valid (and distinct) cut under
  // conjugation by every torus automorphism a: gamma_{c0}(R, a pi a^-1)
  // equals the load of pi on the channel a^-1(c0), which the relaxation
  // must also bound. Adding the whole orbit (up to 8N cuts) instead of one
  // cut per round is what makes the method converge in a few rounds.
  auto add_orbit = [&](const std::vector<int>& pi) {
    for (int g = 0; g < TorusSymmetry::kOrder; ++g) {
      for (int t = 0; t < n; ++t) {
        std::vector<int> img(n);
        for (int s = 0; s < n; ++s) {
          // a = translation-by-t after dihedral g; img = a . pi . a^-1.
          const int a_s = torus.translate_node(sym.map_node(g, s), t);
          const int a_pis = torus.translate_node(sym.map_node(g, pi[s]), t);
          img[a_s] = a_pis;
        }
        if (seen.insert(img).second) out.cuts.push_back(std::move(img));
      }
    }
  };
  add_orbit(tornado_permutation(torus));  // cheap warm start

  for (out.rounds = 1; out.rounds <= max_rounds; ++out.rounds) {
    trace::Span round_span("design.cutting_plane.round");
    round_span.attr("round", out.rounds);
    round_span.attr("cuts", static_cast<std::int64_t>(out.cuts.size()));
    SymmetricDesignConfig cfg;
    cfg.objective = DesignObjective::WorstCase;
    cfg.worst_case_exact_block = false;
    cfg.cut_permutations = out.cuts;
    SymmetricArcDesign design(torus, cfg);
    const DesignResult res = design.solve(opts);
    out.certificate = out.rounds == 1
                          ? res.certificate
                          : lp::worse_certificate(out.certificate, res.certificate);
    if (res.status != lp::Status::Optimal) {
      out.status = res.status;
      return out;
    }
    out.objective = res.objective;
    out.total_iterations += res.iterations;

    // Separation: exact worst permutation for the representative channel
    // via a max-weight matching on the current flows.
    const auto& flows = design.flows();
    DenseMatrix w(n, n);
    for (int s = 0; s < n; ++s) {
      const int ct = torus.translate_channel(c0, torus.negate_node(s));
      for (int d = 0; d < n; ++d) {
        const int e = torus.offset(s, d);
        w(s, d) = (e == 0) ? 0.0 : flows[(e - 1) * nc + ct];
      }
    }
    const AssignmentResult worst = solve_assignment_max(w);
    if (worst.value <= res.objective * (1.0 + tol) + tol) {
      out.status = lp::Status::Optimal;
      return out;  // no violated permutation: the relaxation is exact
    }
    add_orbit(worst.assignment);
  }
  out.status = lp::Status::IterationLimit;
  return out;
}

OptimalDesign design_worst_case_optimal(const Torus& torus, const lp::SimplexOptions& opts) {
  return lexicographic(torus, DesignObjective::WorstCase, {}, "WC-OPT", opts);
}

OptimalDesign design_average_case_optimal(const Torus& torus,
                                          const std::vector<std::vector<int>>& samples,
                                          const lp::SimplexOptions& opts) {
  return lexicographic(torus, DesignObjective::AverageCase, samples, "AVG-OPT", opts);
}

}  // namespace tcr
