// The paper's Appendix: the Lagrange dual (19) of the worst-case routing
// design problem. Instead of choosing path probabilities, the dual selects,
// for every channel c, a nonnegative matrix A^c with equal row and column
// sums phi_c — by Birkhoff's theorem a phi_c-weighted blend of permutation
// traffic patterns — with the total weight sum_c phi_c = 1:
//
//   maximize    -sum_{s,d} r_{s,d}
//   subject to  r_{s,d} + sum_{c in p} a^c_{s,d} / b_c >= 0   for all p in P_{s,d}
//               sum_s a^c_{s,d} = phi_c,  sum_d a^c_{s,d} = phi_c
//               sum_c phi_c = 1,          a >= 0.
//
// Strong duality makes its optimum equal gamma_wc of the primal design over
// the same path family; the A matrices are a *certificate*: the adversarial
// permutation blends that saturate the optimal routing. The constraint set
// has one row per candidate path, so this is practical exactly when the
// path family is explicit (2TURN / minimal families, small tori) — which is
// also how the paper frames its use (a source of approximation heuristics).
#pragma once

#include <vector>

#include "tcr/core/path_design.hpp"
#include "tcr/graph/torus.hpp"
#include "tcr/lp/simplex.hpp"

namespace tcr {

struct DualDesignResult {
  lp::Status status = lp::Status::Numerical;
  double objective = 0.0;          // equals gamma_wc of the primal design
  std::vector<double> phi;         // per-channel adversary weight phi_c
  std::vector<DenseMatrix> adversary;  // A^c (phi_c-scaled doubly stochastic)
};

/// Solve dual (19) over an explicit path family on the torus.
DualDesignResult dual_worst_case_design(const Torus& torus, const PathFamily& family,
                                        const lp::SimplexOptions& opts = {});

}  // namespace tcr
