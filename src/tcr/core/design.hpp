// High-level routing-design entry points (paper §5): lexicographic solves
// that first optimize a throughput objective and then recover the best
// locality at that optimum — the procedure behind the "optimal" curves and
// points of Figures 1, 4 and 6.
#pragma once

#include <string>
#include <vector>

#include "tcr/core/arc_flow.hpp"

namespace tcr {

struct OptimalDesign {
  lp::Status status = lp::Status::Numerical;
  double objective = 0.0;       // optimal gamma (worst-case / uniform / mean)
  double avg_hops = 0.0;        // best H_avg (hops) at that optimum
  double locality_norm = 0.0;   // avg_hops / mean minimal distance
  std::string note;             // solver stop diagnosis when not Optimal
  /// Worse of the two lexicographic stages' certificates (lp::certify).
  lp::Certificate certificate;
  TorusRouting routing;
};

/// Network capacity via LP (problem (6)): minimal uniform max channel load.
/// Must equal Torus::ideal_uniform_load().
double capacity_design_load(const Torus& torus, const lp::SimplexOptions& opts = {});

/// Worst-case-optimal routing with maximal locality (lexicographic: min
/// gamma_wc, then min H_avg subject to gamma_wc <= optimum). The "optimal"
/// series of Figure 4.
OptimalDesign design_worst_case_optimal(const Torus& torus, const lp::SimplexOptions& opts = {});

/// Average-case-optimal routing with maximal locality (Figure 6's maximum
/// average-case throughput point).
OptimalDesign design_average_case_optimal(const Torus& torus,
                                          const std::vector<std::vector<int>>& samples,
                                          const lp::SimplexOptions& opts = {});

/// Relative tolerance used when re-imposing a stage-one optimum as a cap in
/// the lexicographic second stage.
inline constexpr double kLexicographicSlack = 1e-6;

// ---- Cutting-plane worst-case design ----------------------------------
//
// The Appendix observes that selecting adversarial permutations gives
// approximations to the worst-case design problem. With an *exact*
// separation oracle — the Hungarian matching of [11] applied to the current
// flows — the idea becomes an exact method: solve min w subject to
// gamma(R, pi) <= w for a growing set of permutations, add the most-violated
// permutation each round, stop when the matching value meets w. Usually
// needs only tens of permutations instead of LP (8)'s N^2 dual rows.

struct CuttingPlaneResult {
  lp::Status status = lp::Status::Numerical;
  double objective = 0.0;  // gamma_wc at convergence
  int rounds = 0;
  long total_iterations = 0;
  std::vector<std::vector<int>> cuts;  // permutations generated
  /// Worst certificate across the rounds' master solves (lp::certify).
  lp::Certificate certificate;
};

CuttingPlaneResult design_worst_case_cutting_plane(const Torus& torus,
                                                   const lp::SimplexOptions& opts = {},
                                                   int max_rounds = 80, double tol = 1e-6);

}  // namespace tcr
