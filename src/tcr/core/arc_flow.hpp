// Arc-flow (edge-variable) formulations of the routing-design MCF problems.
//
// Paper §4: tracking per-path probabilities is exponential, but per-channel
// commodity flows are polynomial — CN^2 variables, N^3 flow-conservation
// constraints — and paths are recovered from the flows afterwards. On the
// vertex/edge-symmetric torus the search can be restricted to translation-
// invariant routing functions (convexity makes this lossless), shrinking the
// problem to one canonical source: CN flow variables and the worst-case
// matching-dual constraints of LP (8) for one representative channel per
// direction class.
//
// SymmetricArcDesign builds these torus LPs; the general_* functions build
// the unreduced formulations for arbitrary digraphs (exponentially more
// rows/cols, fine for small networks, and used in tests to validate that the
// symmetry reduction is exact).
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "tcr/graph/digraph.hpp"
#include "tcr/graph/torus.hpp"
#include "tcr/lp/model.hpp"
#include "tcr/lp/simplex.hpp"
#include "tcr/routing/routing.hpp"

namespace tcr {

/// What a design LP minimizes.
enum class DesignObjective {
  WorstCase,    // gamma_wc(R), LP (8)
  Uniform,      // gamma_max(R, U), problem (6) — network capacity
  AverageCase,  // mean gamma_max over samples, eq. (9)
  Locality,     // H_avg(R) — used for the lexicographic second pass
};

struct SymmetricDesignConfig {
  DesignObjective objective = DesignObjective::WorstCase;
  /// Additionally restrict to routings invariant under the dihedral point
  /// group D4 (tcr/graph/symmetry.hpp) by tying variables across orbits.
  /// Lossless for the worst-case / uniform / locality objectives (convexity
  /// + invariance); for the sampled average case it is equivalent to using
  /// the D4-closure of the sample set. Cuts variables ~8x and lets the
  /// worst-case block use a single representative channel.
  bool fold_dihedral = true;
  /// Locality side constraint: average hops per pair == this (paper (10)'s
  /// "H_avg(R) = L", in absolute hops). Negative = absent.
  double locality_equals = -1.0;
  /// Use H_avg <= L instead of equality. The tradeoff sweeps (Figures 1/6)
  /// use this: past the unconstrained optimum an equality constraint forces
  /// wastefully long paths and the curve would bend back.
  bool locality_le = false;
  /// Cap constraints (used for lexicographic solves). Negative = absent.
  double worst_case_cap = -1.0;
  double uniform_cap = -1.0;
  double average_cap = -1.0;
  /// Permutation traffic samples (perm[s] = d) for the average-case rows.
  std::vector<std::vector<int>> samples;
  /// Worst-case handling: with `true` the full matching-dual block of LP (8)
  /// is embedded (exact in one solve). With `false`, only explicit
  /// permutation rows from `cut_permutations` constrain the worst case —
  /// the relaxation used by the cutting-plane method (design.hpp), whose
  /// separation oracle (a Hungarian matching) supplies the permutations.
  bool worst_case_exact_block = true;
  std::vector<std::vector<int>> cut_permutations;
};

struct DesignResult {
  lp::Status status = lp::Status::Numerical;
  double objective = 0.0;   // optimal value of the configured objective
  double avg_hops = 0.0;    // H_avg of the designed routing, in hops
  long iterations = 0;
  long dual_iterations = 0;  // dual-phase share of `iterations` (rhs-edit restarts)
  std::string note;         // solver stop diagnosis when not Optimal
  lp::Certificate certificate;  // independent KKT check of the design LP
  /// Final simplex basis (exported on every outcome); feed it back into
  /// solve() of an incrementally-updated design to warm-start.
  lp::Basis basis;
  /// Warm-start adoption outcome of the underlying LP solve
  /// ("cold"/"accepted"/"repaired"/"rejected"; see lp::Solution::warm_start).
  std::string warm_start = "cold";
};

class SymmetricArcDesign {
 public:
  SymmetricArcDesign(const Torus& torus, SymmetricDesignConfig config);

  /// Solve the LP. The designed routing (path decomposition of the optimal
  /// flows) is available via routing() when status == Optimal. `warm`
  /// optionally seeds the simplex with a previous solve's basis (see
  /// lp::solve); it pays off when only the locality bound moved since.
  DesignResult solve(const lp::SimplexOptions& opts = {},
                     const lp::Basis* warm = nullptr);

  /// Move the locality bound without rebuilding the model: rewrites the
  /// locality row's right-hand side in place (the row's type and
  /// coefficients never change). Requires a locality row, i.e. the design
  /// was configured with locality_equals >= 0. Sweeps use this to step
  /// through localities against one constraint matrix, warm-starting each
  /// point from the previous basis.
  void set_locality_bound(double locality_equals);

  /// Combinatorial crash basis for cold solves: a Dinic max-flow pass
  /// (lp/maxflow.hpp) routes one shortest 0 -> e path per representative
  /// commodity and nominates the path's flow variables as initial basic
  /// columns for their conservation rows; the dual-potential and load-bound
  /// columns of the side blocks are nominated for one row each. The hints
  /// depend only on the constraint structure, never on right-hand sides, so
  /// they are computed once and cached. solve() passes them to lp::solve
  /// automatically when opts.flow_crash is set (the default).
  const lp::CrashHints& flow_crash_hints();

  /// Decomposed routing from the last successful solve.
  TorusRouting routing(const std::string& name) const;

  /// Raw per-(offset, channel) flows from the last successful solve,
  /// indexed (e - 1) * C + c. Used by the cutting-plane separation oracle.
  const std::vector<double>& flows() const { return solution_flows_; }

  const lp::Model& model() const { return model_; }

 private:
  int flow_var(int e, int c) const { return var_of_[(e - 1) * torus_.num_channels() + c]; }
  void build();
  void build_orbits();
  void add_flow_conservation();
  void add_worst_case_block();
  void add_uniform_block();
  void add_average_block();
  void add_locality_row();

  const Torus& torus_;
  SymmetricDesignConfig config_;
  lp::Model model_;
  int num_flow_vars_ = 0;
  std::vector<int> var_of_;          // (e-1)*C + c -> folded variable id
  std::vector<double> orbit_size_;   // per folded variable
  std::vector<std::array<double, 4>> dir_count_;  // orbit members per class
  std::vector<int> rep_commodities_;
  int wc_var_ = -1;      // w of LP (8)
  int uni_var_ = -1;     // uniform max-load variable
  int locality_row_ = -1;  // row index of the locality constraint, if any
  std::vector<int> avg_vars_;  // per-sample max-load variables
  std::vector<double> solution_flows_;  // (N-1) * C flow values after solve

  // Row/column bookkeeping for flow_crash_hints(). Conservation rows start
  // at cons_row_base_ and run commodity-major ((rep index) * N + node); the
  // worst-case exact blocks record their (s, d)-grid base row, sum row and
  // potential columns; uniform/average rows are recorded directly.
  int cons_row_base_ = 0;
  std::vector<int> wc_block_row_base_;
  std::vector<int> wc_sum_rows_;
  std::vector<std::vector<int>> wc_u_cols_, wc_v_cols_;
  int first_cut_row_ = -1;
  std::vector<int> uni_rows_;
  std::vector<int> avg_row_base_;  // first row of each sample's block
  lp::CrashHints crash_hints_;
  bool crash_hints_built_ = false;
};

/// Decompose one commodity's channel flows into weighted 0->e paths
/// (cycle flow, if any, is discarded; path weights sum to the injected
/// unit). `flow[c]` is destroyed in the process.
std::vector<WeightedPath> decompose_flow(const Torus& torus, int e, std::vector<double> flow,
                                         double eps = 1e-9);

// ---- General (unreduced) formulations for arbitrary digraphs ----------

struct GeneralDesignResult {
  lp::Status status = lp::Status::Numerical;
  double objective = 0.0;
  /// flows[pair(s,d)][c]; pair index = s * N + d.
  std::vector<std::vector<double>> flows;
  lp::Certificate certificate;  // independent KKT check of the design LP
};

/// Capacity problem (6) on an arbitrary digraph: minimize the maximum
/// bandwidth-normalized channel load under uniform traffic.
GeneralDesignResult general_capacity_design(const Digraph& g,
                                            const lp::SimplexOptions& opts = {});

/// Worst-case problem (8) on an arbitrary digraph: minimize gamma_wc over
/// all oblivious routing functions. O(C N^2) rows — small networks only.
GeneralDesignResult general_worst_case_design(const Digraph& g,
                                              const lp::SimplexOptions& opts = {});

}  // namespace tcr
