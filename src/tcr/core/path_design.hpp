// Path-restricted routing design (paper §5.2/§5.4): fix a closed-form family
// of candidate paths per pair and LP-optimize the probability weights —
// lexicographically, throughput first, locality second. Instantiations:
//   * 2TURN  — all <= 2-turn paths, worst-case objective;
//   * 2TURNA — all <= 2-turn paths, average-case objective;
//   * MIN-A  — minimal paths, average-case objective (matches ROMM, §5.4).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "tcr/core/arc_flow.hpp"
#include "tcr/routing/routing.hpp"

namespace tcr {

using PathFamily = std::function<std::vector<Path>(const Torus&, int e)>;

struct PathDesignConfig {
  DesignObjective objective = DesignObjective::WorstCase;  // WorstCase or AverageCase
  std::vector<std::vector<int>> samples;  // permutation samples (AverageCase)
  bool lexicographic_locality = true;     // second pass minimizing H_avg
};

struct PathDesignResult {
  lp::Status status = lp::Status::Numerical;
  double objective = 0.0;  // optimal gamma of the configured objective
  std::string note;        // solver stop diagnosis when not Optimal
  /// Worse of the two lexicographic stages' certificates (lp::certify).
  lp::Certificate certificate;
  TorusRouting routing;
};

PathDesignResult design_over_paths(const Torus& torus, const std::string& name,
                                   const PathFamily& family, const PathDesignConfig& config,
                                   const lp::SimplexOptions& opts = {});

/// The 2TURN algorithm (paper §5.2).
PathDesignResult design_two_turn(const Torus& torus, const lp::SimplexOptions& opts = {});

/// The 2TURNA algorithm (paper §5.4).
PathDesignResult design_two_turn_avg(const Torus& torus,
                                     const std::vector<std::vector<int>>& samples,
                                     const lp::SimplexOptions& opts = {});

/// Average-case-optimal *minimal* routing (paper §5.4, the ROMM comparison).
PathDesignResult design_minimal_avg(const Torus& torus,
                                    const std::vector<std::vector<int>>& samples,
                                    const lp::SimplexOptions& opts = {});

}  // namespace tcr
