#include "tcr/core/dual.hpp"

#include "tcr/util/check.hpp"

namespace tcr {

using lp::Model;
using lp::RowType;

DualDesignResult dual_worst_case_design(const Torus& torus, const PathFamily& family,
                                        const lp::SimplexOptions& opts) {
  const int n = torus.num_nodes(), nc = torus.num_channels();
  Model model;
  model.set_sense(lp::Sense::Maximize);

  // q_{s,d} (free): the per-pair value sum_{sd} q_{sd} = gamma_wc at the
  // optimum. The paper's r_{s,d} is -q_{s,d}.
  std::vector<int> q(n * n);
  for (int i = 0; i < n * n; ++i) q[i] = model.add_col(-lp::kInf, lp::kInf, 1.0);
  // a^c_{s,d} >= 0 and the per-channel weights phi_c >= 0.
  std::vector<int> a(static_cast<std::size_t>(nc) * n * n);
  for (auto& col : a) col = model.add_col(0.0, lp::kInf, 0.0);
  std::vector<int> phi(nc);
  for (auto& col : phi) col = model.add_col(0.0, lp::kInf, 0.0);
  auto a_var = [&](int c, int s, int d) { return a[(static_cast<std::size_t>(c) * n + s) * n + d]; };

  // One row per pair and candidate path: q_{sd} <= sum_{c in p} a^c_{sd}.
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      const int e = torus.offset(s, d);
      if (e == 0) {
        // Self pairs carry the empty path: q_{ss} <= 0.
        model.add_row(RowType::LE, 0.0, {{q[s * n + d], 1.0}});
        continue;
      }
      for (const Path& p : family(torus, e)) {
        const int row = model.add_row(RowType::LE, 0.0);
        model.add_term(row, q[s * n + d], 1.0);
        for (int c : p.channels) {
          model.add_term(row, a_var(torus.translate_channel(c, s), s, d), -1.0);
        }
      }
    }
  }

  // A^c has all row and column sums equal to phi_c (Birkhoff blend).
  for (int c = 0; c < nc; ++c) {
    for (int s = 0; s < n; ++s) {
      const int row = model.add_row(RowType::EQ, 0.0);
      for (int d = 0; d < n; ++d) model.add_term(row, a_var(c, s, d), 1.0);
      model.add_term(row, phi[c], -1.0);
    }
    for (int d = 0; d < n; ++d) {
      const int row = model.add_row(RowType::EQ, 0.0);
      for (int s = 0; s < n; ++s) model.add_term(row, a_var(c, s, d), 1.0);
      model.add_term(row, phi[c], -1.0);
    }
  }

  // Unit total adversary weight: sum_c b_c phi_c = 1 (torus: b_c = 1).
  {
    const int row = model.add_row(RowType::EQ, 1.0);
    for (int c = 0; c < nc; ++c) model.add_term(row, phi[c], 1.0);
  }

  const lp::Solution sol = lp::solve(model, opts);
  DualDesignResult res;
  res.status = sol.status;
  if (sol.status != lp::Status::Optimal) return res;
  res.objective = sol.objective;
  res.phi.resize(nc);
  for (int c = 0; c < nc; ++c) res.phi[c] = sol.x[phi[c]];
  res.adversary.reserve(nc);
  for (int c = 0; c < nc; ++c) {
    DenseMatrix m(n, n);
    for (int s = 0; s < n; ++s)
      for (int d = 0; d < n; ++d) m(s, d) = sol.x[a_var(c, s, d)];
    res.adversary.push_back(std::move(m));
  }
  return res;
}

}  // namespace tcr
