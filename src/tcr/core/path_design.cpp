#include "tcr/core/path_design.hpp"

#include <cmath>
#include <map>
#include <utility>

#include "tcr/graph/symmetry.hpp"
#include "tcr/lp/certify.hpp"
#include "tcr/routing/two_turn.hpp"
#include "tcr/util/check.hpp"

namespace tcr {

namespace {

using lp::Model;
using lp::RowType;

// Path-weight LP over a fixed family, with variables tied across orbits of
// the dihedral point group (valid for the same reasons as in arc_flow.cpp;
// the candidate families are closed under the group).
class PathLP {
 public:
  PathLP(const Torus& torus, const PathFamily& family, const PathDesignConfig& config,
         DesignObjective objective, double cap)
      : torus_(torus) {
    const int n = torus.num_nodes();
    const bool min_locality = objective == DesignObjective::Locality;
    const TorusSymmetry sym(torus);

    // Enumerate representative commodities' paths and tie orbits.
    by_commodity_.resize(n);
    std::map<std::pair<int, std::vector<int>>, int> var_of;
    int num_vars = 0;
    std::vector<double> orbit_len_sum;  // total hops across orbit members
    for (int e = 1; e < n; ++e) {
      if (sym.node_rep(e) != e) continue;
      for (const Path& p : family(torus, e)) {
        // Walk the orbit; create the variable on first contact.
        int v = -1;
        for (int g = 0; g < TorusSymmetry::kOrder; ++g) {
          const Path q = sym.map_path(g, p);
          auto [it, fresh] = var_of.try_emplace({q.dst, q.channels}, num_vars);
          if (fresh) {
            by_commodity_[q.dst].push_back({q, it->second});
            orbit_member_count_.resize(num_vars + 1, 0.0);
            orbit_len_sum.resize(num_vars + 1, 0.0);
            orbit_member_count_[it->second] += 1.0;
            orbit_len_sum[it->second] += q.length();
          }
          v = it->second;
        }
        if (v == num_vars) ++num_vars;
      }
    }
    for (int v = 0; v < num_vars; ++v) {
      model_.add_col(0.0, lp::kInf, min_locality ? orbit_len_sum[v] / n : 0.0);
    }

    // Unit probability mass per representative commodity (eq. 1); the other
    // commodities' constraints are the same rows under the symmetry.
    for (int e = 1; e < n; ++e) {
      if (sym.node_rep(e) != e || by_commodity_[e].empty()) continue;
      const int row = model_.add_row(RowType::EQ, 1.0);
      for (const auto& [p, v] : by_commodity_[e]) model_.add_term(row, v, 1.0);
    }
    for (int e = 1; e < n; ++e) {
      TCR_REQUIRE(!by_commodity_[e].empty(), "path family must cover every offset");
    }

    const bool want_wc = objective == DesignObjective::WorstCase ||
                         (cap >= 0.0 && config.objective == DesignObjective::WorstCase);
    const bool want_avg = objective == DesignObjective::AverageCase ||
                          (cap >= 0.0 && config.objective == DesignObjective::AverageCase);
    if (want_wc) add_worst_case(objective == DesignObjective::WorstCase, cap);
    if (want_avg) add_average(config.samples, objective == DesignObjective::AverageCase, cap);
  }

  lp::Solution solve(const lp::SimplexOptions& opts, const lp::Basis* warm = nullptr) {
    return lp::solve(model_, opts, warm);
  }

  const Model& model() const { return model_; }

  TorusRouting extract(const lp::Solution& sol, const std::string& name) const {
    TorusRouting r(torus_, name);
    for (int e = 1; e < torus_.num_nodes(); ++e) {
      for (const auto& [p, v] : by_commodity_[e]) {
        if (sol.x[v] > 1e-9) r.add_path(e, p, sol.x[v]);
      }
    }
    r.normalize();
    return r;
  }

 private:
  void add_worst_case(bool is_obj, double cap) {
    const int n = torus_.num_nodes();
    const double up = (!is_obj && cap >= 0.0) ? cap : lp::kInf;
    const int w = model_.add_col(0.0, up, is_obj ? 1.0 : 0.0);

    // One representative channel (+X at node 0); the fold makes the four
    // classes equivalent.
    std::vector<int> u(n), v(n);
    for (int s = 0; s < n; ++s)
      u[s] = (s == 0) ? model_.add_col(0.0, 0.0, 0.0)
                      : model_.add_col(-lp::kInf, lp::kInf, 0.0);
    for (int d = 0; d < n; ++d) v[d] = model_.add_col(-lp::kInf, lp::kInf, 0.0);

    std::vector<int> row(n * n);
    for (int s = 0; s < n; ++s) {
      for (int d = 0; d < n; ++d) {
        row[s * n + d] = model_.add_row(RowType::LE, 0.0);
        model_.add_term(row[s * n + d], v[d], -1.0);
        model_.add_term(row[s * n + d], u[s], 1.0);
      }
    }
    // A +X channel of a path at node m loads the representative channel for
    // the pair (s = -m, d = s + e).
    for (int e = 1; e < n; ++e) {
      for (const auto& [p, pv] : by_commodity_[e]) {
        for (int c : p.channels) {
          if (torus_.channel_dir(c) != Dir::PX) continue;
          const int s = torus_.negate_node(torus_.channel_src(c));
          const int d = torus_.translate_node(s, e);
          model_.add_term(row[s * n + d], pv, 1.0);
        }
      }
    }
    const int sum_row = model_.add_row(RowType::EQ, 0.0);
    for (int d = 0; d < n; ++d) model_.add_term(sum_row, v[d], 1.0);
    for (int s = 0; s < n; ++s) model_.add_term(sum_row, u[s], -1.0);
    model_.add_term(sum_row, w, -1.0);
  }

  void add_average(const std::vector<std::vector<int>>& samples, bool is_obj, double cap) {
    TCR_REQUIRE(!samples.empty(), "average-case path design needs samples");
    const int n = torus_.num_nodes(), nc = torus_.num_channels();
    const double per = 1.0 / static_cast<double>(samples.size());
    std::vector<int> mvars;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      mvars.push_back(model_.add_col(0.0, lp::kInf, is_obj ? per : 0.0));
    }
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const auto& perm = samples[i];
      std::vector<int> row(nc);
      for (int c = 0; c < nc; ++c) {
        row[c] = model_.add_row(RowType::LE, 0.0);
        model_.add_term(row[c], mvars[i], -1.0);
      }
      for (int s = 0; s < n; ++s) {
        const int e = torus_.offset(s, perm[s]);
        if (e == 0) continue;
        for (const auto& [p, pv] : by_commodity_[e]) {
          for (int c : p.channels) {
            model_.add_term(row[torus_.translate_channel(c, s)], pv, 1.0);
          }
        }
      }
    }
    if (!is_obj && cap >= 0.0) {
      const int row = model_.add_row(RowType::LE, cap);
      for (int m : mvars) model_.add_term(row, m, per);
    }
  }

  const Torus& torus_;
  Model model_;
  // Every family path for every commodity, with its (orbit-folded) variable.
  std::vector<std::vector<std::pair<Path, int>>> by_commodity_;
  std::vector<double> orbit_member_count_;
};

}  // namespace

PathDesignResult design_over_paths(const Torus& torus, const std::string& name,
                                   const PathFamily& family, const PathDesignConfig& config,
                                   const lp::SimplexOptions& opts) {
  TCR_REQUIRE(config.objective == DesignObjective::WorstCase ||
                  config.objective == DesignObjective::AverageCase,
              "path design optimizes worst-case or average-case throughput");

  PathDesignResult out{.status = lp::Status::Numerical,
                       .objective = 0.0,
                       .note = {},
                       .certificate = {},
                       .routing = TorusRouting(torus, name)};

  // Stage 1: optimal throughput over the family.
  PathLP stage1(torus, family, config, config.objective, -1.0);
  const lp::Solution s1 = stage1.solve(opts);
  out.certificate = s1.certificate;
  if (s1.status != lp::Status::Optimal) {
    out.status = s1.status;
    out.note = "stage-1 (throughput) path LP: " + s1.note;
    return out;
  }
  out.objective = s1.objective;
  if (!config.lexicographic_locality) {
    out.status = s1.status;
    out.routing = stage1.extract(s1, name);
    return out;
  }

  // Stage 2: shortest average path length at that throughput. For the
  // worst-case objective the cap only tightens w's upper bound, so stage 2
  // keeps stage 1's shape and warm-starts from its optimal basis; the
  // average-case cap adds a row (different standard form), so start cold.
  const double cap = s1.objective * (1.0 + 1e-6);
  PathLP stage2(torus, family, config, DesignObjective::Locality, cap);
  const bool same_shape = stage2.model().num_rows() == stage1.model().num_rows() &&
                          stage2.model().num_cols() == stage1.model().num_cols();
  const lp::Solution s2 = stage2.solve(opts, same_shape ? &s1.basis : nullptr);
  out.status = s2.status;
  out.certificate = lp::worse_certificate(out.certificate, s2.certificate);
  if (s2.status != lp::Status::Optimal) {
    out.note = "stage-2 (locality) path LP: " + s2.note;
    return out;
  }
  out.routing = stage2.extract(s2, name);
  return out;
}

PathDesignResult design_two_turn(const Torus& torus, const lp::SimplexOptions& opts) {
  PathDesignConfig cfg;
  cfg.objective = DesignObjective::WorstCase;
  return design_over_paths(
      torus, "2TURN", [](const Torus& t, int e) { return enumerate_two_turn_paths(t, e); },
      cfg, opts);
}

PathDesignResult design_two_turn_avg(const Torus& torus,
                                     const std::vector<std::vector<int>>& samples,
                                     const lp::SimplexOptions& opts) {
  PathDesignConfig cfg;
  cfg.objective = DesignObjective::AverageCase;
  cfg.samples = samples;
  return design_over_paths(
      torus, "2TURNA", [](const Torus& t, int e) { return enumerate_two_turn_paths(t, e); },
      cfg, opts);
}

PathDesignResult design_minimal_avg(const Torus& torus,
                                    const std::vector<std::vector<int>>& samples,
                                    const lp::SimplexOptions& opts) {
  PathDesignConfig cfg;
  cfg.objective = DesignObjective::AverageCase;
  cfg.samples = samples;
  return design_over_paths(
      torus, "MIN-A", [](const Torus& t, int e) { return enumerate_minimal_paths(t, e); },
      cfg, opts);
}

}  // namespace tcr
