#include "tcr/core/tradeoff.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tcr/guard/journal.hpp"
#include "tcr/perf/perf.hpp"
#include "tcr/routing/interpolate.hpp"
#include "tcr/telemetry/telemetry.hpp"
#include "tcr/trace/tracer.hpp"
#include "tcr/util/check.hpp"

namespace tcr {

namespace {

// ---- checkpoint codec helpers ------------------------------------------
// Fixed-width little-endian-as-memcpy encoding; journals are machine-local
// (see SweepCheckpoint docs), so native byte order is part of the format.

void put_u32(std::string& s, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  s.append(b, 4);
}

void put_i64(std::string& s, std::int64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  s.append(b, 8);
}

void put_double(std::string& s, double v) {
  char b[8];
  std::memcpy(b, &v, 8);
  s.append(b, 8);
}

void put_string(std::string& s, const std::string& v) {
  put_u32(s, static_cast<std::uint32_t>(v.size()));
  s += v;
}

// Cursor with bounds-checked reads; any overrun poisons the cursor.
struct Cursor {
  const char* p;
  std::size_t left;
  bool ok = true;

  bool take(void* out, std::size_t n) {
    if (!ok || left < n) {
      ok = false;
      return false;
    }
    std::memcpy(out, p, n);
    p += n;
    left -= n;
    return true;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    take(&v, 4);
    return v;
  }
  std::int64_t i64() {
    std::int64_t v = 0;
    take(&v, 8);
    return v;
  }
  double f64() {
    double v = 0;
    take(&v, 8);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok || left < n) {
      ok = false;
      return {};
    }
    std::string v(p, n);
    p += n;
    left -= n;
    return v;
  }
};

constexpr std::uint32_t kCheckpointVersion = 1;

std::vector<TradeoffPoint> sweep(const Torus& torus, DesignObjective objective,
                                 const std::vector<std::vector<int>>& samples,
                                 const std::vector<double>& localities,
                                 const lp::SimplexOptions& opts, ThreadPool* pool,
                                 const SweepConfig& sweep_cfg) {
  const double hmin = torus.mean_min_distance();
  const double ideal = torus.ideal_uniform_load();
  std::vector<TradeoffPoint> out(localities.size());
  const int n = static_cast<int>(localities.size());
  if (n == 0) return out;

  const bool on_pool = pool != nullptr && pool->size() > 1;
  int chains = sweep_cfg.chains;
  if (chains <= 0) chains = on_pool ? static_cast<int>(pool->size()) : 1;
  chains = std::min(chains, n);

  // The sweep span is created on the calling thread; chains run on pool
  // workers, so each chain span parents to it explicitly — the explicit link
  // covers the serial and pooled execution paths identically (ThreadPool::
  // submit also hands the ambient context over for everything else spawned
  // inside a chain).
  // Announce the sweep to any live heartbeat session. Telemetry calls only
  // read sweep state, so --heartbeat cannot change the point series.
  telemetry::set_phase("sweep");
  telemetry::sweep_begin(n);

  trace::Span sweep_span("sweep");
  sweep_span.attr("points", n);
  sweep_span.attr("chains", chains);
  sweep_span.attr("warm_start", sweep_cfg.warm_start);
  const trace::SpanContext sweep_ctx = sweep_span.context();

  // One chain = one contiguous block of points sharing a single design
  // model: the constraint matrix is built once, only the locality bound
  // moves between points, and each point's basis warm-starts the next.
  auto run_chain = [&](int begin, int end) {
    trace::Span chain_span("sweep.chain", sweep_ctx);
    chain_span.attr("begin", begin);
    chain_span.attr("end", end);
    SymmetricDesignConfig cfg;
    cfg.objective = objective;
    cfg.samples = samples;
    cfg.locality_equals = localities[begin] * hmin;
    cfg.locality_le = true;  // Pareto frontier: best throughput with at most L
    SymmetricArcDesign design(torus, cfg);
    lp::Basis warm;
    for (int i = begin; i < end; ++i) {
      out[i].locality = localities[i];

      // Replay a checkpointed point: the journaled result verbatim, the
      // journaled basis into the warm chain — the next solved point sees
      // exactly the basis it would have seen in the uninterrupted run.
      if (sweep_cfg.resume != nullptr) {
        auto it = sweep_cfg.resume->points.find(i);
        if (it != sweep_cfg.resume->points.end()) {
          out[i] = it->second.first;
          out[i].provenance = "resumed";
          if (sweep_cfg.warm_start) warm = it->second.second;
          telemetry::sweep_point_done(out[i].warm_start == "accepted" ||
                                      out[i].warm_start == "repaired");
          continue;
        }
      }

      // A fired token stops the chain, but every remaining point is still
      // visited and labeled so reports and journals stay complete.
      if (sweep_cfg.cancel != nullptr && sweep_cfg.cancel->check()) {
        out[i].status = lp::Status::Cancelled;
        out[i].note = "not attempted: " + sweep_cfg.cancel->note();
        continue;
      }

      trace::Span point_span("sweep.point");
      // Counter attrs (perf.cpu_ns, perf.cycles, ...) attach on scope exit;
      // inert — one relaxed load — unless perf::start() ran.
      perf::SpanSample point_perf(point_span);
      if (i > begin) design.set_locality_bound(localities[i] * hmin);
      DesignResult res = design.solve(
          opts, sweep_cfg.warm_start && !warm.empty() ? &warm : nullptr);
      out[i].status = res.status;
      out[i].note = res.note;
      out[i].certificate = res.certificate;
      out[i].warm_start = res.warm_start;
      out[i].iterations = res.iterations;
      if (res.status == lp::Status::Optimal && res.objective > 0.0) {
        out[i].capacity_fraction = ideal / res.objective;
      }
      // Journal terminal outcomes only: a cancelled solve is not a result —
      // the resumed run must recompute it from the same warm basis.
      if (sweep_cfg.journal != nullptr && res.status != lp::Status::Cancelled) {
        sweep_cfg.journal->append(SweepCheckpoint::encode(i, out[i], res.basis));
      }
      // Progress ticks mirror the journal condition exactly, so a heartbeat
      // reader can equate progress.done with the checkpoint record count.
      if (res.status != lp::Status::Cancelled) {
        telemetry::sweep_point_done(res.warm_start == "accepted" ||
                                    res.warm_start == "repaired");
      }
      point_span.attr("index", i);
      point_span.attr("locality", localities[i]);
      point_span.attr("status", lp::to_string(res.status));
      point_span.attr("warm_start", res.warm_start);
      point_span.attr("capacity_fraction", out[i].capacity_fraction);
      point_span.attr("iterations", static_cast<std::int64_t>(res.iterations));
      point_span.attr("dual_iterations", static_cast<std::int64_t>(res.dual_iterations));
      if (sweep_cfg.warm_start) warm = std::move(res.basis);
    }
  };

  // Parallel and serial execution walk the exact same (n, chains) partition,
  // so the resulting point series is identical either way.
  if (on_pool && chains > 1) {
    ThreadPool::parallel_for_blocks(*pool, n, chains, run_chain);
  } else {
    for (int b = 0; b < chains; ++b) {
      const auto [begin, end] = ThreadPool::block_range(n, chains, b);
      run_chain(begin, end);
    }
  }
  fill_degraded_points(out, sweep_cfg.cancel != nullptr ? sweep_cfg.cancel->reason()
                                                        : guard::StopReason::None);
  return out;
}

}  // namespace

// ---- checkpoint codec ---------------------------------------------------

std::string SweepCheckpoint::encode(int index, const TradeoffPoint& pt,
                                    const lp::Basis& basis) {
  std::string s;
  put_u32(s, kCheckpointVersion);
  put_u32(s, static_cast<std::uint32_t>(index));
  put_double(s, pt.locality);
  put_double(s, pt.capacity_fraction);
  put_u32(s, static_cast<std::uint32_t>(pt.status));
  put_string(s, pt.note);
  put_string(s, pt.warm_start);
  put_string(s, pt.provenance);
  put_i64(s, pt.iterations);
  const lp::Certificate& c = pt.certificate;
  s.push_back(c.checked ? 1 : 0);
  s.push_back(c.pass ? 1 : 0);
  put_double(s, c.primal_residual);
  put_double(s, c.bound_violation);
  put_double(s, c.objective_residual);
  put_double(s, c.dual_residual);
  put_double(s, c.dual_violation);
  put_double(s, c.row_dual_violation);
  put_double(s, c.complementarity);
  put_double(s, c.duality_gap);
  put_string(s, c.reason);
  put_u32(s, static_cast<std::uint32_t>(basis.stat.size()));
  s.append(reinterpret_cast<const char*>(basis.stat.data()), basis.stat.size());
  put_u32(s, static_cast<std::uint32_t>(basis.basic.size()));
  s.append(reinterpret_cast<const char*>(basis.basic.data()),
           basis.basic.size() * sizeof(int));
  return s;
}

bool SweepCheckpoint::decode(const std::string& payload, int* index, TradeoffPoint* pt,
                             lp::Basis* basis) {
  Cursor c{payload.data(), payload.size()};
  if (c.u32() != kCheckpointVersion) return false;
  *pt = TradeoffPoint{};
  *basis = lp::Basis{};
  *index = static_cast<int>(c.u32());
  pt->locality = c.f64();
  pt->capacity_fraction = c.f64();
  const std::uint32_t status = c.u32();
  if (!c.ok || status > static_cast<std::uint32_t>(lp::Status::Cancelled)) return false;
  pt->status = static_cast<lp::Status>(status);
  pt->note = c.str();
  pt->warm_start = c.str();
  pt->provenance = c.str();
  pt->iterations = static_cast<long>(c.i64());
  char flag = 0;
  c.take(&flag, 1);
  pt->certificate.checked = flag != 0;
  c.take(&flag, 1);
  pt->certificate.pass = flag != 0;
  pt->certificate.primal_residual = c.f64();
  pt->certificate.bound_violation = c.f64();
  pt->certificate.objective_residual = c.f64();
  pt->certificate.dual_residual = c.f64();
  pt->certificate.dual_violation = c.f64();
  pt->certificate.row_dual_violation = c.f64();
  pt->certificate.complementarity = c.f64();
  pt->certificate.duality_gap = c.f64();
  pt->certificate.reason = c.str();
  const std::uint32_t nstat = c.u32();
  if (!c.ok || c.left < nstat) return false;
  basis->stat.assign(reinterpret_cast<const std::uint8_t*>(c.p),
                     reinterpret_cast<const std::uint8_t*>(c.p) + nstat);
  c.p += nstat;
  c.left -= nstat;
  const std::uint32_t nbasic = c.u32();
  if (!c.ok || c.left != nbasic * sizeof(int)) return false;
  basis->basic.resize(nbasic);
  std::memcpy(basis->basic.data(), c.p, c.left);
  c.p += c.left;
  c.left = 0;
  return c.ok;
}

bool load_sweep_resume(const std::string& path, SweepResume* out, bool* truncated_tail,
                       std::string* error) {
  guard::JournalContents contents = guard::read_journal(path);
  if (truncated_tail != nullptr) *truncated_tail = contents.truncated_tail;
  if (!contents.ok) {
    if (error != nullptr) *error = contents.error;
    return false;
  }
  out->points.clear();
  for (std::size_t r = 0; r < contents.records.size(); ++r) {
    int index = -1;
    TradeoffPoint pt;
    lp::Basis basis;
    if (!SweepCheckpoint::decode(contents.records[r], &index, &pt, &basis) || index < 0) {
      if (error != nullptr) {
        *error = "journal '" + path + "': record " + std::to_string(r) +
                 " is not a sweep checkpoint";
      }
      return false;
    }
    // Later records win: a resumed-then-killed run may have re-journaled a
    // point; the freshest result is the one its successor chained from.
    out->points[index] = {std::move(pt), std::move(basis)};
  }
  return true;
}

// ---- degradation post-pass (§5.3) ---------------------------------------

void fill_degraded_points(std::vector<TradeoffPoint>& points, guard::StopReason reason) {
  const bool budget_stop = reason == guard::StopReason::Deadline ||
                           reason == guard::StopReason::Iterations ||
                           reason == guard::StopReason::Memory;
  // Anchor points the interpolation may lean on: certified optima (or plain
  // optima when the run did not certify).
  const auto certified = [](const TradeoffPoint& p) {
    return p.solved() && std::isfinite(p.capacity_fraction) &&
           (!p.certificate.checked || p.certificate.pass);
  };

  for (std::size_t i = 0; i < points.size(); ++i) {
    TradeoffPoint& p = points[i];
    if (p.status == lp::Status::Cancelled) {
      p.provenance = budget_stop ? "degraded" : "skipped";
    } else if (p.status == lp::Status::Numerical) {
      // Recovery ladder exhausted: no defensible measurement either.
      p.provenance = "degraded";
    }
    if (!p.degraded()) continue;

    // Nearest certified neighbors on each side of the locality grid.
    int lo = -1, hi = -1;
    for (int j = static_cast<int>(i) - 1; j >= 0; --j) {
      if (certified(points[static_cast<std::size_t>(j)])) { lo = j; break; }
    }
    for (int j = static_cast<int>(i) + 1; j < static_cast<int>(points.size()); ++j) {
      if (certified(points[static_cast<std::size_t>(j)])) { hi = j; break; }
    }
    if (lo < 0 || hi < 0) {
      if (!p.note.empty()) p.note += "; ";
      p.note += "degraded: no certified neighbors on both sides to interpolate";
      continue;
    }
    const TradeoffPoint& a = points[static_cast<std::size_t>(lo)];
    const TradeoffPoint& b = points[static_cast<std::size_t>(hi)];
    // Time-share the two neighbor designs so the blend's H_avg (linear,
    // eq. 12) lands on this point's locality; its throughput is the
    // harmonic-mean bound of eq. 14.
    const double alpha = (b.locality - p.locality) / (b.locality - a.locality);
    p.capacity_fraction =
        interpolation_throughput_bound(a.capacity_fraction, b.capacity_fraction, alpha);
    if (!p.note.empty()) p.note += "; ";
    p.note += "capacity interpolated (eq. 14) from points " + std::to_string(lo) +
              " and " + std::to_string(hi);
  }
}

std::vector<TradeoffPoint> worst_case_tradeoff(const Torus& torus,
                                               const std::vector<double>& localities,
                                               const lp::SimplexOptions& opts,
                                               ThreadPool* pool, const SweepConfig& sweep_cfg) {
  return sweep(torus, DesignObjective::WorstCase, {}, localities, opts, pool, sweep_cfg);
}

std::vector<TradeoffPoint> average_case_tradeoff(const Torus& torus,
                                                 const std::vector<std::vector<int>>& samples,
                                                 const std::vector<double>& localities,
                                                 const lp::SimplexOptions& opts,
                                                 ThreadPool* pool,
                                                 const SweepConfig& sweep_cfg) {
  return sweep(torus, DesignObjective::AverageCase, samples, localities, opts, pool, sweep_cfg);
}

std::vector<double> locality_grid(double lo, double hi, int n) {
  TCR_REQUIRE(n >= 2 && lo <= hi, "grid needs n >= 2 and lo <= hi");
  std::vector<double> g(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) g[i] = lo + (hi - lo) * i / (n - 1);
  return g;
}

}  // namespace tcr
