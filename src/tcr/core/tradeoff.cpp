#include "tcr/core/tradeoff.hpp"

#include <algorithm>

#include "tcr/perf/perf.hpp"
#include "tcr/trace/tracer.hpp"
#include "tcr/util/check.hpp"

namespace tcr {

namespace {

std::vector<TradeoffPoint> sweep(const Torus& torus, DesignObjective objective,
                                 const std::vector<std::vector<int>>& samples,
                                 const std::vector<double>& localities,
                                 const lp::SimplexOptions& opts, ThreadPool* pool,
                                 const SweepConfig& sweep_cfg) {
  const double hmin = torus.mean_min_distance();
  const double ideal = torus.ideal_uniform_load();
  std::vector<TradeoffPoint> out(localities.size());
  const int n = static_cast<int>(localities.size());
  if (n == 0) return out;

  const bool on_pool = pool != nullptr && pool->size() > 1;
  int chains = sweep_cfg.chains;
  if (chains <= 0) chains = on_pool ? static_cast<int>(pool->size()) : 1;
  chains = std::min(chains, n);

  // The sweep span is created on the calling thread; chains run on pool
  // workers, so each chain span parents to it explicitly — the explicit link
  // covers the serial and pooled execution paths identically (ThreadPool::
  // submit also hands the ambient context over for everything else spawned
  // inside a chain).
  trace::Span sweep_span("sweep");
  sweep_span.attr("points", n);
  sweep_span.attr("chains", chains);
  sweep_span.attr("warm_start", sweep_cfg.warm_start);
  const trace::SpanContext sweep_ctx = sweep_span.context();

  // One chain = one contiguous block of points sharing a single design
  // model: the constraint matrix is built once, only the locality bound
  // moves between points, and each point's basis warm-starts the next.
  auto run_chain = [&](int begin, int end) {
    trace::Span chain_span("sweep.chain", sweep_ctx);
    chain_span.attr("begin", begin);
    chain_span.attr("end", end);
    SymmetricDesignConfig cfg;
    cfg.objective = objective;
    cfg.samples = samples;
    cfg.locality_equals = localities[begin] * hmin;
    cfg.locality_le = true;  // Pareto frontier: best throughput with at most L
    SymmetricArcDesign design(torus, cfg);
    lp::Basis warm;
    for (int i = begin; i < end; ++i) {
      trace::Span point_span("sweep.point");
      // Counter attrs (perf.cpu_ns, perf.cycles, ...) attach on scope exit;
      // inert — one relaxed load — unless perf::start() ran.
      perf::SpanSample point_perf(point_span);
      if (i > begin) design.set_locality_bound(localities[i] * hmin);
      DesignResult res = design.solve(
          opts, sweep_cfg.warm_start && !warm.empty() ? &warm : nullptr);
      out[i].locality = localities[i];
      out[i].status = res.status;
      out[i].note = res.note;
      out[i].certificate = res.certificate;
      out[i].warm_start = res.warm_start;
      if (res.status == lp::Status::Optimal && res.objective > 0.0) {
        out[i].capacity_fraction = ideal / res.objective;
      }
      point_span.attr("index", i);
      point_span.attr("locality", localities[i]);
      point_span.attr("status", lp::to_string(res.status));
      point_span.attr("warm_start", res.warm_start);
      point_span.attr("capacity_fraction", out[i].capacity_fraction);
      point_span.attr("iterations", static_cast<std::int64_t>(res.iterations));
      if (sweep_cfg.warm_start) warm = std::move(res.basis);
    }
  };

  // Parallel and serial execution walk the exact same (n, chains) partition,
  // so the resulting point series is identical either way.
  if (on_pool && chains > 1) {
    ThreadPool::parallel_for_blocks(*pool, n, chains, run_chain);
  } else {
    for (int b = 0; b < chains; ++b) {
      const auto [begin, end] = ThreadPool::block_range(n, chains, b);
      run_chain(begin, end);
    }
  }
  return out;
}

}  // namespace

std::vector<TradeoffPoint> worst_case_tradeoff(const Torus& torus,
                                               const std::vector<double>& localities,
                                               const lp::SimplexOptions& opts,
                                               ThreadPool* pool, const SweepConfig& sweep_cfg) {
  return sweep(torus, DesignObjective::WorstCase, {}, localities, opts, pool, sweep_cfg);
}

std::vector<TradeoffPoint> average_case_tradeoff(const Torus& torus,
                                                 const std::vector<std::vector<int>>& samples,
                                                 const std::vector<double>& localities,
                                                 const lp::SimplexOptions& opts,
                                                 ThreadPool* pool,
                                                 const SweepConfig& sweep_cfg) {
  return sweep(torus, DesignObjective::AverageCase, samples, localities, opts, pool, sweep_cfg);
}

std::vector<double> locality_grid(double lo, double hi, int n) {
  TCR_REQUIRE(n >= 2 && lo <= hi, "grid needs n >= 2 and lo <= hi");
  std::vector<double> g(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) g[i] = lo + (hi - lo) * i / (n - 1);
  return g;
}

}  // namespace tcr
