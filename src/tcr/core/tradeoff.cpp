#include "tcr/core/tradeoff.hpp"

#include "tcr/util/check.hpp"

namespace tcr {

namespace {

std::vector<TradeoffPoint> sweep(const Torus& torus, DesignObjective objective,
                                 const std::vector<std::vector<int>>& samples,
                                 const std::vector<double>& localities,
                                 const lp::SimplexOptions& opts, ThreadPool* pool) {
  const double hmin = torus.mean_min_distance();
  const double ideal = torus.ideal_uniform_load();
  std::vector<TradeoffPoint> out(localities.size());

  auto run_point = [&](int i) {
    SymmetricDesignConfig cfg;
    cfg.objective = objective;
    cfg.samples = samples;
    cfg.locality_equals = localities[i] * hmin;
    cfg.locality_le = true;  // Pareto frontier: best throughput with at most L
    SymmetricArcDesign design(torus, cfg);
    const DesignResult res = design.solve(opts);
    out[i].locality = localities[i];
    out[i].status = res.status;
    out[i].note = res.note;
    out[i].certificate = res.certificate;
    if (res.status == lp::Status::Optimal && res.objective > 0.0) {
      out[i].capacity_fraction = ideal / res.objective;
    }
  };

  const int n = static_cast<int>(localities.size());
  if (pool != nullptr && pool->size() > 1) {
    ThreadPool::parallel_for(*pool, n, run_point);
  } else {
    for (int i = 0; i < n; ++i) run_point(i);
  }
  return out;
}

}  // namespace

std::vector<TradeoffPoint> worst_case_tradeoff(const Torus& torus,
                                               const std::vector<double>& localities,
                                               const lp::SimplexOptions& opts,
                                               ThreadPool* pool) {
  return sweep(torus, DesignObjective::WorstCase, {}, localities, opts, pool);
}

std::vector<TradeoffPoint> average_case_tradeoff(const Torus& torus,
                                                 const std::vector<std::vector<int>>& samples,
                                                 const std::vector<double>& localities,
                                                 const lp::SimplexOptions& opts,
                                                 ThreadPool* pool) {
  return sweep(torus, DesignObjective::AverageCase, samples, localities, opts, pool);
}

std::vector<double> locality_grid(double lo, double hi, int n) {
  TCR_REQUIRE(n >= 2 && lo <= hi, "grid needs n >= 2 and lo <= hi");
  std::vector<double> g(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) g[i] = lo + (hi - lo) * i / (n - 1);
  return g;
}

}  // namespace tcr
