#include "tcr/telemetry/inspect.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tcr/util/table.hpp"

namespace tcr::telemetry {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

double num_or(const obs::Json* v, double fallback) {
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::int64_t int_or(const obs::Json* v, std::int64_t fallback) {
  return v != nullptr && v->is_number() ? v->as_int() : fallback;
}

std::string str_or(const obs::Json* v, const std::string& fallback) {
  return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

std::string fmt_seconds(double s) {
  if (!std::isfinite(s)) return "-";
  std::string sign;
  if (s < 0) {
    sign = "-";
    s = -s;
  }
  if (s < 120.0) return sign + TextTable::num(s, 1) + " s";
  if (s < 7200.0) return sign + TextTable::num(s / 60.0, 1) + " min";
  return sign + TextTable::num(s / 3600.0, 1) + " h";
}

std::string fmt_rate(double r) {
  if (!std::isfinite(r)) return "-";
  if (r >= 1e6) return TextTable::num(r / 1e6, 2) + "M/s";
  if (r >= 1e3) return TextTable::num(r / 1e3, 1) + "k/s";
  return TextTable::num(r, 1) + "/s";
}

std::string fmt_rss(std::int64_t kb) {
  if (kb <= 0) return "-";
  if (kb < 10 * 1024) return std::to_string(kb) + " kB";
  return TextTable::num(static_cast<double>(kb) / 1024.0, 1) + " MB";
}

}  // namespace

bool RunState::apply(const obs::Json& record, std::string* error) {
  if (!record.is_object()) {
    if (error != nullptr) *error = "stream record is not a JSON object";
    return false;
  }
  const std::string kind = str_or(record.find("kind"), "");
  if (kind == "meta") {
    has_meta = true;
    bench = str_or(record.find("bench"), "");
    schema = str_or(record.find("schema"), "");
    pid = static_cast<long>(int_or(record.find("pid"), 0));
    interval_seconds = num_or(record.find("interval_seconds"), 0.0);
    start_unix_ms = int_or(record.find("start_unix_ms"), 0);
    return true;
  }
  if (kind == "heartbeat") {
    HeartbeatSample b;
    b.seq = static_cast<long>(int_or(record.find("seq"), 0));
    b.uptime_s = 1e-3 * static_cast<double>(int_or(record.find("uptime_ms"), 0));
    b.phase = str_or(record.find("phase"), "");
    b.final_beat = record.find("final") != nullptr && record.find("final")->as_bool();
    if (const obs::Json* g = record.find("guard"); g != nullptr && g->is_object()) {
      b.cancelled = g->find("cancelled") != nullptr && g->find("cancelled")->as_bool();
      b.stop_reason = str_or(g->find("stop_reason"), "none");
      b.guard_iterations = static_cast<long>(int_or(g->find("iterations"), 0));
      b.deadline_remaining_s = num_or(g->find("deadline_remaining_s"), kNaN);
      b.rss_kb = int_or(g->find("rss_kb"), 0);
    }
    if (const obs::Json* p = record.find("progress"); p != nullptr && p->is_object()) {
      b.has_progress = true;
      b.done = static_cast<long>(int_or(p->find("done"), 0));
      b.total = static_cast<long>(int_or(p->find("total"), 0));
      b.warm_adopted = static_cast<long>(int_or(p->find("warm_adopted"), 0));
    }
    if (const obs::Json* s = record.find("sim"); s != nullptr && s->is_object()) {
      b.has_sim = true;
      b.epoch = static_cast<long>(int_or(s->find("epoch"), 0));
      b.cycle = static_cast<long>(int_or(s->find("cycle"), 0));
      b.injected = static_cast<long>(int_or(s->find("injected"), 0));
      b.ejected = static_cast<long>(int_or(s->find("ejected"), 0));
    }
    if (const obs::Json* s = record.find("solver"); s != nullptr && s->is_object()) {
      b.has_solver = true;
      b.solver_iterations = static_cast<long>(int_or(s->find("iterations"), 0));
      b.objective = num_or(s->find("objective"), kNaN);
    }
    if (const obs::Json* c = record.find("counters"); c != nullptr && c->is_object()) {
      b.simplex_iters_delta = int_or(c->find("lp.simplex.iterations"), 0);
    }
    if (b.final_beat) finished = true;
    beats.push_back(std::move(b));
    return true;
  }
  if (kind == "event") {
    EventSample e;
    e.seq = static_cast<long>(int_or(record.find("seq"), 0));
    e.uptime_s = 1e-3 * static_cast<double>(int_or(record.find("uptime_ms"), 0));
    e.severity = str_or(record.find("severity"), "info");
    e.message = str_or(record.find("message"), "");
    e.phase = str_or(record.find("phase"), "");
    events.push_back(std::move(e));
    return true;
  }
  // Unknown kinds are ignored: newer writers may add record types.
  return true;
}

std::int64_t RunState::cumulative_iterations(std::size_t i) const {
  if (i >= beats.size()) return 0;
  // Prefer the guard token's cumulative tally; without a token it stays 0
  // and the obs counter deltas carry the information instead.
  if (beats[i].guard_iterations > 0) return beats[i].guard_iterations;
  std::int64_t sum = 0;
  for (std::size_t k = 0; k <= i; ++k) sum += beats[k].simplex_iters_delta;
  return sum;
}

double RunState::iterations_per_sec(int window) const {
  if (beats.size() < 2) return kNaN;
  const std::size_t last = beats.size() - 1;
  const std::size_t first =
      window > 0 && last > static_cast<std::size_t>(window) ? last - window : 0;
  const double dt = beats[last].uptime_s - beats[first].uptime_s;
  if (dt <= 0.0) return kNaN;
  const double di =
      static_cast<double>(cumulative_iterations(last) - cumulative_iterations(first));
  return di / dt;
}

double RunState::eta_seconds() const {
  const HeartbeatSample* b = last_beat();
  if (b == nullptr || !b->has_progress || b->done <= 0 || b->uptime_s <= 0.0) return kNaN;
  if (b->done >= b->total) return 0.0;
  const double rate = static_cast<double>(b->done) / b->uptime_s;
  return static_cast<double>(b->total - b->done) / rate;
}

double RunState::rss_slope_kb_per_s(int window) const {
  if (beats.size() < 2) return kNaN;
  const std::size_t last = beats.size() - 1;
  const std::size_t first =
      window > 0 && last > static_cast<std::size_t>(window) ? last - window : 0;
  const double dt = beats[last].uptime_s - beats[first].uptime_s;
  if (dt <= 0.0) return kNaN;
  return static_cast<double>(beats[last].rss_kb - beats[first].rss_kb) / dt;
}

std::vector<Anomaly> detect_anomalies(const RunState& state, const AnomalyOptions& opts) {
  std::vector<Anomaly> out;
  const std::size_t n = state.beats.size();

  // Iteration-rate collapse: the most recent interval's rate against the
  // mean rate of the trailing window before it.
  if (n >= static_cast<std::size_t>(opts.trailing_window) + 2) {
    const std::size_t last = n - 1;
    const double dt_recent = state.beats[last].uptime_s - state.beats[last - 1].uptime_s;
    const double dt_trail =
        state.beats[last - 1].uptime_s -
        state.beats[last - 1 - static_cast<std::size_t>(opts.trailing_window)].uptime_s;
    if (dt_recent > 0.0 && dt_trail > 0.0) {
      const double recent =
          static_cast<double>(state.cumulative_iterations(last) -
                              state.cumulative_iterations(last - 1)) /
          dt_recent;
      const double trail =
          static_cast<double>(
              state.cumulative_iterations(last - 1) -
              state.cumulative_iterations(last - 1 -
                                          static_cast<std::size_t>(opts.trailing_window))) /
          dt_trail;
      if (trail > 0.0 && recent < opts.collapse_ratio * trail) {
        out.push_back({"iteration_rate_collapse",
                       "iteration rate fell to " + fmt_rate(recent) + " (trailing " +
                           fmt_rate(trail) + ")"});
      }
    }
  }

  // RSS growth slope over the trailing window.
  const double slope = state.rss_slope_kb_per_s(opts.trailing_window);
  if (std::isfinite(slope) && slope > opts.rss_slope_warn_kb_per_s) {
    out.push_back({"rss_growth", "peak RSS growing at " +
                                     TextTable::num(slope / 1024.0, 1) + " MB/s"});
  }

  // Convergence stall: tcr::trace's criterion (relative objective
  // improvement below stall_tol while iterations advance) applied across
  // consecutive heartbeats of one solve. A solver-iteration decrease means
  // a new solve started — the streak resets.
  int streak = 0;
  long streak_iters = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const HeartbeatSample& prev = state.beats[i - 1];
    const HeartbeatSample& cur = state.beats[i];
    if (!prev.has_solver || !cur.has_solver ||
        cur.solver_iterations <= prev.solver_iterations ||
        !std::isfinite(prev.objective) || !std::isfinite(cur.objective)) {
      streak = 0;
      continue;
    }
    const double improvement = std::abs(cur.objective - prev.objective) /
                               std::max(1.0, std::abs(prev.objective));
    if (improvement < opts.stall_tol) {
      if (streak == 0) streak_iters = prev.solver_iterations;
      ++streak;
    } else {
      streak = 0;
    }
  }
  if (streak >= opts.stall_beats) {
    const HeartbeatSample& lastb = state.beats.back();
    out.push_back({"convergence_stall",
                   "objective flat for " + std::to_string(streak) + " beats (" +
                       std::to_string(lastb.solver_iterations - streak_iters) +
                       " iterations since " + std::to_string(streak_iters) + ")"});
  }
  return out;
}

std::string render_table(const RunState& state, const std::vector<Anomaly>& anomalies,
                         bool truncated_tail) {
  std::ostringstream os;
  const HeartbeatSample* b = state.last_beat();

  os << (state.bench.empty() ? std::string("(unknown bench)") : state.bench);
  if (state.pid != 0) os << "  pid " << state.pid;
  if (b != nullptr) os << "  uptime " << fmt_seconds(b->uptime_s);
  os << "  beats " << state.beats.size();
  if (state.finished) {
    os << "  [finished]";
  } else if (truncated_tail) {
    os << "  [stream truncated (crash?)]";
  } else {
    os << "  [live]";
  }
  os << "\n";

  TextTable table({"field", "value"});
  if (b == nullptr) {
    table.add_row({"state", "waiting for first heartbeat"});
  } else {
    table.add_row({"phase", b->phase.empty() ? "-" : b->phase});
    if (b->has_progress) {
      std::string prog = std::to_string(b->done) + "/" + std::to_string(b->total);
      if (b->total > 0) {
        prog += " (" +
                TextTable::num(100.0 * static_cast<double>(b->done) /
                                   static_cast<double>(b->total), 0) +
                "%)";
      }
      table.add_row({"points", prog});
      table.add_row({"warm-adopted", std::to_string(b->warm_adopted)});
      table.add_row({"ETA", state.finished ? "done" : fmt_seconds(state.eta_seconds())});
    }
    table.add_row({"iterations", std::to_string(state.cumulative_iterations(
                                     state.beats.size() - 1))});
    table.add_row({"iterations/sec", fmt_rate(state.iterations_per_sec())});
    if (b->has_sim) {
      table.add_row({"sim", "epoch " + std::to_string(b->epoch) + ", cycle " +
                                std::to_string(b->cycle) + ", flits " +
                                std::to_string(b->injected) + " in / " +
                                std::to_string(b->ejected) + " out"});
    }
    table.add_row({"RSS", fmt_rss(b->rss_kb)});
    if (std::isfinite(b->deadline_remaining_s)) {
      table.add_row({"deadline in", fmt_seconds(b->deadline_remaining_s)});
    }
    table.add_row({"cancelled", b->cancelled ? "yes (" + b->stop_reason + ")" : "no"});
  }
  table.print(os);

  // Tail of the event log (most recent last), then anomalies.
  const std::size_t show = std::min<std::size_t>(state.events.size(), 5);
  for (std::size_t i = state.events.size() - show; i < state.events.size(); ++i) {
    const EventSample& e = state.events[i];
    os << "  [" << e.severity << "] " << fmt_seconds(e.uptime_s) << " " << e.message
       << "\n";
  }
  for (const Anomaly& a : anomalies) {
    os << "  [warn] " << a.kind << ": " << a.message << "\n";
  }
  return os.str();
}

obs::Json state_json(const RunState& state, const std::vector<Anomaly>& anomalies,
                     bool truncated_tail) {
  obs::Json out = obs::Json::object();
  out.set("bench", state.bench);
  out.set("pid", static_cast<long>(state.pid));
  out.set("beats", static_cast<long>(state.beats.size()));
  out.set("events", static_cast<long>(state.events.size()));
  out.set("finished", state.finished);
  out.set("truncated_tail", truncated_tail);

  const HeartbeatSample* b = state.last_beat();
  if (b != nullptr) {
    out.set("phase", b->phase);
    out.set("uptime_s", b->uptime_s);
    out.set("cancelled", b->cancelled);
    out.set("stop_reason", b->stop_reason);
    out.set("iterations", state.cumulative_iterations(state.beats.size() - 1));
    out.set("iterations_per_sec", state.iterations_per_sec());
    out.set("rss_kb", b->rss_kb);
    out.set("deadline_remaining_s", b->deadline_remaining_s);
    if (b->has_progress) {
      obs::Json p = obs::Json::object();
      p.set("done", b->done);
      p.set("total", b->total);
      p.set("warm_adopted", b->warm_adopted);
      p.set("eta_s", state.eta_seconds());
      out.set("progress", std::move(p));
    }
    if (b->has_sim) {
      obs::Json s = obs::Json::object();
      s.set("epoch", b->epoch);
      s.set("cycle", b->cycle);
      s.set("injected", b->injected);
      s.set("ejected", b->ejected);
      out.set("sim", std::move(s));
    }
  }

  obs::Json alist = obs::Json::array();
  for (const Anomaly& a : anomalies) {
    obs::Json one = obs::Json::object();
    one.set("kind", a.kind);
    one.set("message", a.message);
    alist.push_back(std::move(one));
  }
  out.set("anomalies", std::move(alist));
  return out;
}

}  // namespace tcr::telemetry
