// tcr::telemetry — cooperative in-flight heartbeats for long runs.
//
// Every post-hoc surface we have (obs snapshots, trace files, perf records,
// repro reports) answers "what happened" after a run exits. This layer
// answers "what is happening": while a bench, sweep, or simulation runs it
// periodically appends **heartbeat records** — obs registry deltas, guard
// budget state (deadline remaining, iterations charged, peak RSS), sweep
// progress (points done/total, warm-start adoption), simulator progress
// (epoch, cycle, flit counts) — plus severity-tagged log events into an
// append-only stream a separate process (`tcr-top`) can tail live.
//
// Stream format: the `tcr::guard` journal framing ([u32 len][u32 crc32]
// [payload], 8-byte "TCRJNL01" magic, fsync per append) so a kill at any
// point leaves a valid prefix plus at most one torn record; payloads are
// single-line JSON objects (obs::Json). telemetry/stream.hpp reads it back
// incrementally with the same torn-tail tolerance.
//
// Determinism contract: sampling is *cooperative* — instrumented code calls
// poll() at sites it already passes deterministically (the simplex
// iteration safepoint, sweep point boundaries, the simulator's epoch-bucket
// cancel cadence). A poll only *reads* run state and writes to the stream;
// nothing downstream of the numerics ever reads telemetry state, so
// --heartbeat cannot perturb bitwise results — it can only change wall
// time. Pinned by Telemetry.SweepHeartbeatBitwiseDeterministic and the
// heartbeat column of test_sim_parallel's determinism matrix.
//
// Disabled cost: every entry point is an inline relaxed atomic load of one
// flag (pinned by BM_TelemetryPollDisabled under the CI overhead-ratio
// guard). When enabled, at most one caller per interval takes the slow
// path (a CAS on the next-emit deadline elects the emitter).
//
// Thread-safety: all entry points may be called concurrently from sweep
// pool workers; emission serializes on an internal mutex and the journal
// writer's own lock. start()/stop() are not safe to race with each other.
#pragma once

#include <atomic>
#include <string>

namespace tcr::guard {
class CancelToken;
}

namespace tcr::telemetry {

/// Severity tag for structured log events.
enum class Severity : int { Info = 0, Warn = 1, Error = 2 };

const char* to_string(Severity s);

/// One heartbeat session per process (mirrors the obs::Registry and
/// SignalGuard singletons benches already rely on).
struct HeartbeatConfig {
  std::string path;               ///< stream file; recreated (not appended)
  /// Minimum seconds between heartbeat records; 0 emits at every
  /// cooperative poll site (maximal pressure — the determinism tests).
  double interval_seconds = 0.5;
  std::string bench;              ///< label stamped into the meta record
  /// Optional run token: heartbeats report its budget state, and a final
  /// heartbeat carries its stop reason. Must outlive the session.
  const guard::CancelToken* token = nullptr;
};

/// Open the stream, write the meta record, and enable the hot-path flag.
/// Fails (false + *error) when a session is already active or the file
/// cannot be created.
bool start(const HeartbeatConfig& cfg, std::string* error);

/// Emit a final heartbeat (marked "final": true), close the stream, and
/// disable the hot path. No-op when inactive.
void stop();

/// Is a session active? (Query form of the hot-path flag.)
bool active();

/// Force-emit a heartbeat now, ignoring the interval pacing. Used by stop()
/// and by tests that cannot wait out an interval. No-op when disabled.
void heartbeat_now();

namespace detail {
extern std::atomic<bool> g_enabled;
void poll_slow();
void log_slow(Severity s, const std::string& message);
void set_phase_slow(const char* phase);
void set_token_slow(const guard::CancelToken* token);
void sweep_begin_slow(long total_points);
void sweep_point_done_slow(bool warm_adopted);
void sim_progress_slow(long epoch, long cycle, long injected, long ejected);
void solver_progress_slow(long iterations, double objective);
}  // namespace detail

/// The one-relaxed-load disabled path every other entry point hides behind.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Cooperative sampling site: emits a heartbeat iff the interval has
/// elapsed since the last one (one thread wins the emission; the rest
/// return after a clock read and a failed CAS).
inline void poll() {
  if (!enabled()) return;
  detail::poll_slow();
}

/// Append a severity-tagged event record immediately (not interval-paced).
inline void log(Severity s, const std::string& message) {
  if (!enabled()) return;
  detail::log_slow(s, message);
}

/// Name the current run phase ("sweep", "sim.measure", ...). `phase` must
/// have static storage duration — only the pointer is stored.
inline void set_phase(const char* phase) {
  if (!enabled()) return;
  detail::set_phase_slow(phase);
}

/// (Re)point heartbeats at a run token (e.g. after RunControl arms one
/// later than telemetry started). Pass nullptr to detach.
inline void set_token(const guard::CancelToken* token) {
  if (!enabled()) return;
  detail::set_token_slow(token);
}

/// A sweep of `total_points` points is starting; resets done/warm counts.
inline void sweep_begin(long total_points) {
  if (!enabled()) return;
  detail::sweep_begin_slow(total_points);
}

/// One sweep point reached a terminal (non-cancelled) state — the same
/// condition under which the checkpoint journal gets its record, so a
/// reader can equate progress.done with the journal record count. Also
/// polls.
inline void sweep_point_done(bool warm_adopted) {
  if (!enabled()) return;
  detail::sweep_point_done_slow(warm_adopted);
}

/// Simulator progress at an epoch/cancel boundary. Also polls.
inline void sim_progress(long epoch, long cycle, long injected, long ejected) {
  if (!enabled()) return;
  detail::sim_progress_slow(epoch, cycle, injected, ejected);
}

/// Solver progress from inside a solve (per-solve iteration count and
/// current objective); feeds the inspector's convergence-stall detector.
/// Does not poll — the simplex safepoint polls separately.
inline void solver_progress(long iterations, double objective) {
  if (!enabled()) return;
  detail::solver_progress_slow(iterations, objective);
}

}  // namespace tcr::telemetry
