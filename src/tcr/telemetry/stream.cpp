#include "tcr/telemetry/stream.hpp"

#include <cstring>
#include <fstream>

#include "tcr/guard/journal.hpp"
#include "tcr/report/json_reader.hpp"

namespace tcr::telemetry {

namespace {

std::uint32_t load_u32le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

bool StreamReader::poll(std::vector<obs::Json>* out, std::string* error) {
  // Pull in whatever the writer appended since the last poll. A missing or
  // empty file is "nothing yet", not an error — follow mode may start the
  // reader before the writer.
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      in.seekg(static_cast<std::streamoff>(file_offset_));
      char chunk[1 << 16];
      while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
        buf_.append(chunk, static_cast<std::size_t>(in.gcount()));
        file_offset_ += static_cast<std::uint64_t>(in.gcount());
      }
      if (in.bad()) {
        if (error != nullptr) *error = "I/O error reading '" + path_ + "'";
        return false;
      }
    }
  }

  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };

  if (!opened_) {
    if (buf_.size() < guard::kJournalMagicSize) {
      pending_tail_ = !buf_.empty();
      return true;
    }
    if (std::memcmp(buf_.data(), guard::kJournalMagic, guard::kJournalMagicSize) != 0) {
      return fail("'" + path_ + "' is not a heartbeat stream (bad magic at offset 0)");
    }
    buf_.erase(0, guard::kJournalMagicSize);
    opened_ = true;
  }

  // Offset (in the file) of the first unconsumed byte, for diagnostics.
  const auto consumed_offset = [&] {
    return static_cast<std::size_t>(file_offset_) - buf_.size();
  };

  std::size_t pos = 0;
  while (buf_.size() - pos >= guard::kJournalHeaderSize) {
    const auto* bytes = reinterpret_cast<const unsigned char*>(buf_.data() + pos);
    const std::uint32_t len = load_u32le(bytes);
    const std::uint32_t crc = load_u32le(bytes + 4);
    if (len > guard::kJournalMaxRecordSize) {
      return fail("heartbeat stream '" + path_ + "': implausible record length " +
                  std::to_string(len) + " at offset " +
                  std::to_string(consumed_offset() + pos));
    }
    if (buf_.size() - pos - guard::kJournalHeaderSize < len) break;  // payload in flight
    const char* payload = buf_.data() + pos + guard::kJournalHeaderSize;
    if (guard::crc32(payload, len) != crc) {
      // A CRC mismatch on the final frame is a torn write (the run was
      // killed mid-append) — leave it as tail. With bytes after it, the
      // middle of the stream changed under us: hard error.
      if (pos + guard::kJournalHeaderSize + len == buf_.size()) break;
      return fail("heartbeat stream '" + path_ + "': CRC mismatch at offset " +
                  std::to_string(consumed_offset() + pos));
    }
    obs::Json rec;
    std::string parse_error;
    if (!report::parse_json(std::string_view(payload, len), &rec, &parse_error)) {
      return fail("heartbeat stream '" + path_ + "': record " +
                  std::to_string(records_read_) + " is not JSON: " + parse_error);
    }
    if (out != nullptr) out->push_back(std::move(rec));
    ++records_read_;
    pos += guard::kJournalHeaderSize + len;
  }
  buf_.erase(0, pos);
  pending_tail_ = !buf_.empty();
  return true;
}

}  // namespace tcr::telemetry
