// Incremental reader for heartbeat streams (journal-framed JSON records).
//
// `guard::read_journal` reads a whole file once; a live inspector needs to
// *tail* a file another process is still appending to. StreamReader keeps a
// byte offset and, on each poll(), consumes every complete record appended
// since the last poll, parsing payloads as JSON.
//
// Torn-tail semantics (the satellite fix — surfaced to callers instead of
// being swallowed): bytes after the last complete record are reported via
// truncated_tail(). While the writer is alive that is simply an append in
// flight and a later poll() completes it; on a crashed/killed run it is the
// torn final record the journal format guarantees, and `tcr-top` reports
// "stream truncated (crash?)". Hard errors (bad magic, implausible length,
// a CRC mismatch with more bytes after it, unparsable JSON payload) mirror
// guard::read_journal's position-bearing diagnostics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tcr/obs/json.hpp"

namespace tcr::telemetry {

class StreamReader {
 public:
  explicit StreamReader(std::string path) : path_(std::move(path)) {}

  /// Append any newly-completed records to *out (parsed payloads). Returns
  /// false on a hard error (*error set); a missing or still-empty file is
  /// not an error, it is "nothing yet". Safe to call repeatedly.
  bool poll(std::vector<obs::Json>* out, std::string* error);

  const std::string& path() const { return path_; }
  /// Magic validated — at least one poll saw a well-formed stream head.
  bool opened() const { return opened_; }
  /// The last poll() left bytes beyond the final complete record (an
  /// append in flight, or a torn tail from a killed writer).
  bool truncated_tail() const { return pending_tail_; }
  /// Complete records consumed so far.
  std::int64_t records_read() const { return records_read_; }

 private:
  std::string path_;
  std::string buf_;             // unconsumed bytes (tail of the file so far)
  std::uint64_t file_offset_ = 0;  // bytes of the file already read into buf_
  bool opened_ = false;
  bool pending_tail_ = false;
  std::int64_t records_read_ = 0;
};

}  // namespace tcr::telemetry
