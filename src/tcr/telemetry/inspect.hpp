// Heartbeat-stream interpretation for `tcr-top`: folds parsed records into
// a RunState, derives rates (iterations/sec, sweep-point throughput → ETA,
// RSS slope), and flags anomalies — an iteration-rate collapse vs. the
// trailing window, unbounded RSS growth, and convergence stalls (the same
// relative-improvement criterion as tcr::trace's stall windows, applied to
// the solver objective carried by heartbeats). Kept tool-independent so
// tests can drive it without a subprocess.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "tcr/obs/json.hpp"

namespace tcr::telemetry {

/// One decoded heartbeat record.
struct HeartbeatSample {
  long seq = 0;
  double uptime_s = 0.0;
  std::string phase;
  bool final_beat = false;

  bool cancelled = false;
  std::string stop_reason = "none";
  long guard_iterations = 0;
  double deadline_remaining_s = std::numeric_limits<double>::quiet_NaN();
  std::int64_t rss_kb = 0;

  bool has_progress = false;
  long done = 0, total = 0, warm_adopted = 0;

  bool has_sim = false;
  long epoch = 0, cycle = 0, injected = 0, ejected = 0;

  bool has_solver = false;
  long solver_iterations = 0;
  double objective = std::numeric_limits<double>::quiet_NaN();

  /// Delta of the lp.simplex.iterations obs counter this interval (0 when
  /// absent) — the iteration-rate source when no run token is armed.
  std::int64_t simplex_iters_delta = 0;
};

/// One decoded event record.
struct EventSample {
  long seq = 0;
  double uptime_s = 0.0;
  std::string severity;
  std::string message;
  std::string phase;
};

/// Everything known about a run from the records read so far.
struct RunState {
  bool has_meta = false;
  std::string bench;
  std::string schema;
  long pid = 0;
  double interval_seconds = 0.0;
  std::int64_t start_unix_ms = 0;

  std::vector<HeartbeatSample> beats;
  std::vector<EventSample> events;
  bool finished = false;  ///< saw a heartbeat marked "final"

  /// Fold one parsed stream record; unknown kinds are ignored (forward
  /// compatibility). Returns false on a structurally unusable record.
  bool apply(const obs::Json& record, std::string* error);

  const HeartbeatSample* last_beat() const {
    return beats.empty() ? nullptr : &beats.back();
  }

  /// Cumulative simplex iterations at beat `i`: the guard tally when a
  /// token is armed, else the running sum of obs counter deltas.
  std::int64_t cumulative_iterations(std::size_t i) const;

  /// Mean iterations/sec across the last `window` beat intervals
  /// (NaN with fewer than two beats or no elapsed time).
  double iterations_per_sec(int window = 5) const;

  /// Remaining-work estimate from sweep-point throughput: (total - done) /
  /// (done / uptime). NaN before the first completed point.
  double eta_seconds() const;

  /// Peak-RSS growth across the last `window` beat intervals, in kB/s.
  double rss_slope_kb_per_s(int window = 5) const;
};

struct AnomalyOptions {
  int trailing_window = 5;      ///< beats in the reference window
  double collapse_ratio = 0.25; ///< recent rate below this × trailing ⇒ warn
  double rss_slope_warn_kb_per_s = 65536.0;  ///< sustained growth ⇒ warn
  double stall_tol = 1e-9;  ///< relative objective improvement (trace default)
  int stall_beats = 3;      ///< consecutive stalled beats ⇒ warn
};

struct Anomaly {
  std::string kind;     ///< "iteration_rate_collapse" | "rss_growth" | "convergence_stall"
  std::string message;  ///< human-readable diagnosis
};

std::vector<Anomaly> detect_anomalies(const RunState& state,
                                      const AnomalyOptions& opts = {});

/// The live progress table `tcr-top` prints: run identity, phase, progress
/// done/total with ETA, iteration rate, guard budget state, sim state,
/// recent events and anomalies. `truncated_tail` appends the crash note.
std::string render_table(const RunState& state, const std::vector<Anomaly>& anomalies,
                         bool truncated_tail);

/// Machine-readable equivalent (--json): one object with the same facts.
obs::Json state_json(const RunState& state, const std::vector<Anomaly>& anomalies,
                     bool truncated_tail);

}  // namespace tcr::telemetry
