#include "tcr/telemetry/telemetry.hpp"

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <cstdio>
#include <map>
#include <mutex>

#include "tcr/guard/guard.hpp"
#include "tcr/guard/journal.hpp"
#include "tcr/obs/json.hpp"
#include "tcr/obs/registry.hpp"
#include "tcr/perf/perf.hpp"

namespace tcr::telemetry {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t wall_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// All session state. The atomics are the fields instrumented code updates
/// from hot paths; everything else is touched only under `mu` (emission,
/// start/stop) — see the thread-safety note in the header.
struct Session {
  std::mutex mu;
  guard::JournalWriter writer;
  std::string bench;
  double interval_seconds = 0.5;
  std::int64_t interval_ns = 0;
  std::int64_t start_steady_ns = 0;
  long seq = 0;
  std::map<std::string, std::int64_t> last_counters;
  std::map<std::string, double> last_gauges;

  std::atomic<const guard::CancelToken*> token{nullptr};
  std::atomic<std::int64_t> next_emit_ns{0};
  std::atomic<const char*> phase{""};
  std::atomic<bool> has_progress{false};
  std::atomic<long> done{0}, total{0}, warm{0};
  std::atomic<bool> has_sim{false};
  std::atomic<long> sim_epoch{0}, sim_cycle{0}, sim_injected{0}, sim_ejected{0};
  std::atomic<bool> has_solver{false};
  std::atomic<long> solver_iters{0};
  std::atomic<double> solver_obj{0.0};
};

Session& session() {
  static Session s;
  return s;
}

/// Counter delta since the previous heartbeat. The registry is reset
/// between sweep points (bench JsonOutput), so a current value below the
/// last one means "reset happened" — the post-reset value is the delta.
std::int64_t counter_delta(std::int64_t cur, std::int64_t last) {
  return cur >= last ? cur - last : cur;
}

/// Build one heartbeat payload. Caller holds s.mu.
obs::Json build_heartbeat(Session& s, bool final_beat) {
  obs::Json rec = obs::Json::object();
  rec.set("kind", "heartbeat");
  rec.set("seq", ++s.seq);
  rec.set("uptime_ms", (steady_now_ns() - s.start_steady_ns) / 1'000'000);
  rec.set("phase", std::string(s.phase.load(std::memory_order_relaxed)));
  if (final_beat) rec.set("final", true);

  obs::Json g = obs::Json::object();
  const guard::CancelToken* token = s.token.load(std::memory_order_acquire);
  g.set("cancelled", token != nullptr && token->cancelled());
  g.set("stop_reason",
        token != nullptr ? std::string(guard::to_string(token->reason())) : std::string("none"));
  g.set("iterations", token != nullptr ? token->iterations_used() : 0);
  // NaN serializes as null: "no deadline armed".
  g.set("deadline_remaining_s",
        token != nullptr ? token->deadline_remaining_seconds()
                         : std::numeric_limits<double>::quiet_NaN());
  g.set("rss_kb", perf::process_peak_rss_kb());
  rec.set("guard", std::move(g));

  if (s.has_progress.load(std::memory_order_acquire)) {
    obs::Json p = obs::Json::object();
    p.set("done", s.done.load(std::memory_order_relaxed));
    p.set("total", s.total.load(std::memory_order_relaxed));
    p.set("warm_adopted", s.warm.load(std::memory_order_relaxed));
    rec.set("progress", std::move(p));
  }
  if (s.has_sim.load(std::memory_order_acquire)) {
    obs::Json sim = obs::Json::object();
    sim.set("epoch", s.sim_epoch.load(std::memory_order_relaxed));
    sim.set("cycle", s.sim_cycle.load(std::memory_order_relaxed));
    sim.set("injected", s.sim_injected.load(std::memory_order_relaxed));
    sim.set("ejected", s.sim_ejected.load(std::memory_order_relaxed));
    rec.set("sim", std::move(sim));
  }
  if (s.has_solver.load(std::memory_order_acquire)) {
    obs::Json sol = obs::Json::object();
    sol.set("iterations", s.solver_iters.load(std::memory_order_relaxed));
    sol.set("objective", s.solver_obj.load(std::memory_order_relaxed));
    rec.set("solver", std::move(sol));
  }

  // Obs registry deltas: counters as per-interval deltas (reset-aware),
  // gauges as current values; both only when changed since the last beat,
  // to keep records small. Timers/histograms ride in the benches' post-hoc
  // --json snapshots instead.
  const obs::Snapshot snap = obs::Registry::instance().snapshot();
  obs::Json counters = obs::Json::object(), gauges = obs::Json::object();
  for (const auto& [name, cur] : snap.counters) {
    auto it = s.last_counters.find(name);
    const std::int64_t last = it == s.last_counters.end() ? 0 : it->second;
    const std::int64_t delta = counter_delta(cur, last);
    if (delta != 0) counters.set(name, delta);
    s.last_counters[name] = cur;
  }
  for (const auto& [name, cur] : snap.gauges) {
    auto it = s.last_gauges.find(name);
    const bool changed = it == s.last_gauges.end() ? cur != 0.0 : cur != it->second;
    if (changed) gauges.set(name, cur);
    s.last_gauges[name] = cur;
  }
  if (counters.size() > 0) rec.set("counters", std::move(counters));
  if (gauges.size() > 0) rec.set("gauges", std::move(gauges));
  return rec;
}

/// Serialize and append under the journal's crash-safe framing. Caller
/// holds s.mu.
void emit(Session& s, const obs::Json& rec) {
  if (!s.writer.is_open()) return;
  s.writer.append(rec.dump());
}

void emit_heartbeat_locked(Session& s, bool final_beat) {
  emit(s, build_heartbeat(s, final_beat));
}

}  // namespace

const char* to_string(Severity s) {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warn: return "warn";
    case Severity::Error: return "error";
  }
  return "?";
}

namespace detail {

std::atomic<bool> g_enabled{false};

void poll_slow() {
  Session& s = session();
  const std::int64_t now = steady_now_ns();
  std::int64_t next = s.next_emit_ns.load(std::memory_order_relaxed);
  if (now < next) return;
  // Elect one emitter: whoever advances the deadline writes the beat.
  if (!s.next_emit_ns.compare_exchange_strong(next, now + s.interval_ns,
                                              std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(s.mu);
  if (!g_enabled.load(std::memory_order_relaxed)) return;  // stop() raced us
  emit_heartbeat_locked(s, /*final_beat=*/false);
}

void log_slow(Severity sev, const std::string& message) {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  obs::Json rec = obs::Json::object();
  rec.set("kind", "event");
  rec.set("seq", ++s.seq);
  rec.set("uptime_ms", (steady_now_ns() - s.start_steady_ns) / 1'000'000);
  rec.set("severity", to_string(sev));
  rec.set("message", message);
  rec.set("phase", std::string(s.phase.load(std::memory_order_relaxed)));
  emit(s, rec);
}

void set_phase_slow(const char* phase) {
  session().phase.store(phase == nullptr ? "" : phase, std::memory_order_relaxed);
}

void set_token_slow(const guard::CancelToken* token) {
  session().token.store(token, std::memory_order_release);
}

void sweep_begin_slow(long total_points) {
  Session& s = session();
  s.done.store(0, std::memory_order_relaxed);
  s.warm.store(0, std::memory_order_relaxed);
  s.total.store(total_points, std::memory_order_relaxed);
  s.has_progress.store(true, std::memory_order_release);
}

void sweep_point_done_slow(bool warm_adopted) {
  Session& s = session();
  s.done.fetch_add(1, std::memory_order_relaxed);
  if (warm_adopted) s.warm.fetch_add(1, std::memory_order_relaxed);
  poll_slow();
}

void sim_progress_slow(long epoch, long cycle, long injected, long ejected) {
  Session& s = session();
  s.sim_epoch.store(epoch, std::memory_order_relaxed);
  s.sim_cycle.store(cycle, std::memory_order_relaxed);
  s.sim_injected.store(injected, std::memory_order_relaxed);
  s.sim_ejected.store(ejected, std::memory_order_relaxed);
  s.has_sim.store(true, std::memory_order_release);
  poll_slow();
}

void solver_progress_slow(long iterations, double objective) {
  Session& s = session();
  s.solver_iters.store(iterations, std::memory_order_relaxed);
  s.solver_obj.store(objective, std::memory_order_relaxed);
  s.has_solver.store(true, std::memory_order_release);
}

}  // namespace detail

bool start(const HeartbeatConfig& cfg, std::string* error) {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  if (detail::g_enabled.load(std::memory_order_relaxed)) {
    if (error != nullptr) *error = "telemetry session already active";
    return false;
  }
  if (cfg.path.empty()) {
    if (error != nullptr) *error = "heartbeat path is empty";
    return false;
  }
  // One stream per run: drop any stale file so the meta record is always
  // the first record (JournalWriter::open would otherwise append).
  std::remove(cfg.path.c_str());
  if (!s.writer.open(cfg.path, error)) return false;

  s.bench = cfg.bench;
  s.interval_seconds = cfg.interval_seconds < 0.0 ? 0.0 : cfg.interval_seconds;
  s.interval_ns = static_cast<std::int64_t>(s.interval_seconds * 1e9);
  s.start_steady_ns = steady_now_ns();
  s.seq = 0;
  s.last_counters.clear();
  s.last_gauges.clear();
  s.token.store(cfg.token, std::memory_order_release);
  s.next_emit_ns.store(s.start_steady_ns + s.interval_ns, std::memory_order_relaxed);
  s.phase.store("", std::memory_order_relaxed);
  s.has_progress.store(false, std::memory_order_relaxed);
  s.done.store(0, std::memory_order_relaxed);
  s.total.store(0, std::memory_order_relaxed);
  s.warm.store(0, std::memory_order_relaxed);
  s.has_sim.store(false, std::memory_order_relaxed);
  s.has_solver.store(false, std::memory_order_relaxed);

  obs::Json meta = obs::Json::object();
  meta.set("kind", "meta");
  meta.set("schema", "tcr-heartbeat-v1");
  meta.set("bench", s.bench);
  meta.set("pid", static_cast<std::int64_t>(::getpid()));
  meta.set("interval_seconds", s.interval_seconds);
  meta.set("start_unix_ms", wall_now_ms());
  emit(s, meta);
  if (!s.writer.ok()) {
    if (error != nullptr) *error = "failed to write heartbeat meta record";
    s.writer.close();
    return false;
  }

  detail::g_enabled.store(true, std::memory_order_release);
  return true;
}

void stop() {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
  emit_heartbeat_locked(s, /*final_beat=*/true);
  detail::g_enabled.store(false, std::memory_order_release);
  s.writer.close();
  s.token.store(nullptr, std::memory_order_release);
}

bool active() { return enabled(); }

void heartbeat_now() {
  Session& s = session();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
  emit_heartbeat_locked(s, /*final_beat=*/false);
}

}  // namespace tcr::telemetry
