#include "tcr/trace/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "tcr/report/json_reader.hpp"

namespace tcr::trace {

namespace {

std::int64_t us_to_ns(double us) {
  return static_cast<std::int64_t>(std::llround(us * 1000.0));
}

}  // namespace

bool load_trace(const obs::Json& doc, Trace* out, std::string* error) {
  *out = Trace{};
  if (!doc.is_object()) {
    if (error) *error = "trace document is not a JSON object";
    return false;
  }
  if (const obs::Json* other = doc.find("otherData")) {
    if (const obs::Json* dropped = other->find("dropped_events")) {
      out->dropped_events = dropped->as_int(0);
    }
  }
  const obs::Json* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    if (error) *error = "trace document has no traceEvents array";
    return false;
  }
  for (std::size_t idx = 0; idx < events->elements().size(); ++idx) {
    const obs::Json& e = events->elements()[idx];
    if (!e.is_object()) {
      if (error) *error = "traceEvents[" + std::to_string(idx) + "] is not an object";
      return false;
    }
    const obs::Json* ph = e.find("ph");
    const obs::Json* name = e.find("name");
    const obs::Json* ts = e.find("ts");
    if (ph == nullptr || name == nullptr || ts == nullptr) {
      if (error)
        *error = "traceEvents[" + std::to_string(idx) + "] lacks ph/name/ts";
      return false;
    }
    const obs::Json* args = e.find("args");
    const std::string& kind = ph->as_string();
    if (kind == "X") {
      SpanRec s;
      s.name = name->as_string();
      s.start_ns = us_to_ns(ts->as_number(0.0));
      if (const obs::Json* dur = e.find("dur")) s.dur_ns = us_to_ns(dur->as_number(0.0));
      if (const obs::Json* tid = e.find("tid"))
        s.tid = static_cast<std::uint32_t>(tid->as_int(0));
      if (args != nullptr && args->is_object()) {
        for (const auto& [key, value] : args->items()) {
          if (key == "span_id") {
            s.id = static_cast<std::uint64_t>(value.as_int(0));
          } else if (key == "parent") {
            s.parent = static_cast<std::uint64_t>(value.as_int(0));
          } else {
            s.args.set(key, value);
          }
        }
      }
      out->spans.push_back(std::move(s));
    } else if (kind == "C") {
      CounterRec c;
      c.name = name->as_string();
      c.t_ns = us_to_ns(ts->as_number(0.0));
      if (const obs::Json* tid = e.find("tid"))
        c.tid = static_cast<std::uint32_t>(tid->as_int(0));
      if (args != nullptr && args->is_object()) {
        if (const obs::Json* v = args->find("value")) c.value = v->as_number(0.0);
        if (const obs::Json* p = args->find("parent"))
          c.parent = static_cast<std::uint64_t>(p->as_int(0));
      }
      out->counters.push_back(std::move(c));
    }
    // Other phases (metadata, flow, ...) are tolerated and skipped.
  }
  return true;
}

bool load_trace_file(const std::string& path, Trace* out, std::string* error) {
  obs::Json doc;
  if (!report::parse_json_file(path, &doc, error)) return false;
  return load_trace(doc, out, error);
}

std::map<std::string, NameAgg> aggregate(const Trace& trace) {
  std::unordered_map<std::uint64_t, std::int64_t> child_time;
  for (const SpanRec& s : trace.spans) {
    if (s.parent != 0) child_time[s.parent] += s.dur_ns;
  }
  std::map<std::string, NameAgg> out;
  for (const SpanRec& s : trace.spans) {
    NameAgg& agg = out[s.name];
    ++agg.count;
    agg.total_ns += s.dur_ns;
    const auto it = child_time.find(s.id);
    const std::int64_t children = it != child_time.end() ? it->second : 0;
    // A child may outlive its parent (handed to another thread); clamp so
    // self time never goes negative for one span.
    agg.self_ns += std::max<std::int64_t>(0, s.dur_ns - children);
    agg.max_ns = std::max(agg.max_ns, s.dur_ns);
  }
  return out;
}

std::vector<SpanRec> slowest_spans(const Trace& trace, std::size_t k) {
  std::vector<SpanRec> spans = trace.spans;
  std::sort(spans.begin(), spans.end(), [](const SpanRec& a, const SpanRec& b) {
    if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
    return a.id < b.id;
  });
  if (spans.size() > k) spans.resize(k);
  return spans;
}

std::vector<SolveReport> convergence_reports(const Trace& trace, double stall_tol) {
  // Resolve every span's nearest enclosing lp.solve span via parent links.
  std::unordered_map<std::uint64_t, const SpanRec*> by_id;
  for (const SpanRec& s : trace.spans) by_id[s.id] = &s;
  auto solve_ancestor = [&](std::uint64_t id) -> std::uint64_t {
    // Trace files are finite but guard against parent cycles from corrupt
    // input with a depth cap.
    for (int depth = 0; id != 0 && depth < 64; ++depth) {
      const auto it = by_id.find(id);
      if (it == by_id.end()) return 0;
      if (it->second->name == "lp.solve") return id;
      id = it->second->parent;
    }
    return 0;
  };

  std::vector<SolveReport> reports;
  std::unordered_map<std::uint64_t, std::size_t> index_of;
  for (const SpanRec& s : trace.spans) {
    if (s.name != "lp.solve") continue;
    SolveReport r;
    r.span_id = s.id;
    r.dur_ns = s.dur_ns;
    if (const obs::Json* w = s.args.find("warm_start")) r.warm_start = w->as_string();
    if (const obs::Json* st = s.args.find("status")) r.status = st->as_string();
    if (const obs::Json* it = s.args.find("iterations")) r.iterations = it->as_int(0);
    index_of[s.id] = reports.size();
    reports.push_back(std::move(r));
  }
  if (reports.empty()) return reports;

  for (const SpanRec& s : trace.spans) {
    if (s.name != "lp.refactor") continue;
    const std::uint64_t owner = solve_ancestor(s.parent);
    const auto it = index_of.find(owner);
    if (it != index_of.end()) ++reports[it->second].refactors;
  }

  // Walk the telemetry streams per solve. Samples arrive in trace order
  // (the ring preserves emission order), so consecutive lp.objective
  // samples of one solve delimit the stall windows.
  struct Stream {
    bool any = false;
    double prev_obj = 0.0;
    long prev_iter = 0;
    long stall_run_start = -1;  // iteration where the current stall began
    long cur_iter = 0;
  };
  std::unordered_map<std::uint64_t, Stream> streams;
  for (const CounterRec& c : trace.counters) {
    const std::uint64_t owner = solve_ancestor(c.parent);
    const auto idx = index_of.find(owner);
    if (idx == index_of.end()) continue;
    SolveReport& r = reports[idx->second];
    Stream& st = streams[owner];
    if (c.name == "lp.iteration") {
      st.cur_iter = static_cast<long>(c.value);
      r.iterations = std::max(r.iterations, st.cur_iter);
    } else if (c.name == "lp.objective") {
      ++r.samples;
      r.last_objective = c.value;
      if (!st.any) {
        st.any = true;
        r.first_objective = c.value;
      } else if (st.cur_iter > st.prev_iter) {
        // Duplicate samples of one iteration (cur_iter == prev_iter, e.g.
        // from corrupt or hand-built traces) are not stall evidence.
        const double improvement =
            std::abs(c.value - st.prev_obj) / std::max(1.0, std::abs(st.prev_obj));
        if (improvement < stall_tol) {
          ++r.stall_windows;
          if (st.stall_run_start < 0) st.stall_run_start = st.prev_iter;
          r.longest_stall_iters =
              std::max(r.longest_stall_iters, st.cur_iter - st.stall_run_start);
        } else {
          st.stall_run_start = -1;
        }
      }
      st.prev_obj = c.value;
      st.prev_iter = st.cur_iter;
    } else if (c.name == "lp.primal_infeas") {
      r.final_primal_infeas = c.value;
    } else if (c.name == "lp.dual_infeas") {
      r.final_dual_infeas = c.value;
    }
  }
  return reports;
}

std::vector<SpanRec> sweep_points(const Trace& trace) {
  std::vector<SpanRec> out;
  for (const SpanRec& s : trace.spans) {
    if (s.name == "sweep.point") out.push_back(s);
  }
  return out;
}

std::vector<DiffRow> diff(const Trace& a, const Trace& b) {
  const std::map<std::string, NameAgg> agg_a = aggregate(a);
  const std::map<std::string, NameAgg> agg_b = aggregate(b);
  std::vector<DiffRow> rows;
  for (const auto& [name, agg] : agg_a) {
    DiffRow row;
    row.name = name;
    row.a = agg;
    const auto it = agg_b.find(name);
    if (it != agg_b.end()) row.b = it->second;
    rows.push_back(std::move(row));
  }
  for (const auto& [name, agg] : agg_b) {
    if (agg_a.find(name) != agg_a.end()) continue;
    DiffRow row;
    row.name = name;
    row.b = agg;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const DiffRow& x, const DiffRow& y) {
    const std::int64_t tx = std::max(x.a ? x.a->total_ns : 0, x.b ? x.b->total_ns : 0);
    const std::int64_t ty = std::max(y.a ? y.a->total_ns : 0, y.b ? y.b->total_ns : 0);
    if (tx != ty) return tx > ty;
    return x.name < y.name;
  });
  return rows;
}

obs::Json flame_json(const Trace& trace) {
  const std::map<std::string, NameAgg> agg = aggregate(trace);
  std::vector<std::pair<std::string, NameAgg>> rows(agg.begin(), agg.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.self_ns != b.second.self_ns ? a.second.self_ns > b.second.self_ns
                                                : a.first < b.first;
  });
  auto flame = obs::Json::array();
  for (const auto& [name, a] : rows) {
    auto row = obs::Json::object();
    row.set("span", name)
        .set("count", static_cast<std::int64_t>(a.count))
        .set("total_ns", a.total_ns)
        .set("self_ns", a.self_ns)
        .set("max_ns", a.max_ns)
        .set("avg_ns", a.count > 0 ? a.total_ns / a.count : 0);
    flame.push_back(std::move(row));
  }
  auto out = obs::Json::object();
  out.set("spans", static_cast<std::int64_t>(trace.spans.size()))
      .set("counters", static_cast<std::int64_t>(trace.counters.size()))
      .set("dropped", trace.dropped_events)
      .set("flame", std::move(flame));
  return out;
}

}  // namespace tcr::trace
