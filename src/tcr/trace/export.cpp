#include "tcr/trace/export.hpp"

#include <fstream>
#include <ostream>

#include "tcr/obs/json.hpp"

namespace tcr::trace {

namespace {

obs::Json attr_json(const Attr& a) {
  switch (a.kind) {
    case Attr::Kind::kInt: return obs::Json(static_cast<long long>(a.i));
    case Attr::Kind::kDouble: return obs::Json(a.d);
    case Attr::Kind::kBool: return obs::Json(a.b);
    case Attr::Kind::kString: return obs::Json(a.s);
  }
  return obs::Json();
}

obs::Json event_json(const Event& e) {
  auto j = obs::Json::object();
  j.set("ph", e.type == Event::Type::kSpan ? "X" : "C")
      .set("name", e.name)
      .set("cat", "tcr")
      .set("pid", 1)
      .set("tid", static_cast<long long>(e.tid))
      // The trace-event spec's ts/dur unit is microseconds; fractional
      // values keep the nanosecond resolution.
      .set("ts", static_cast<double>(e.start_ns) * 1e-3);
  auto args = obs::Json::object();
  if (e.type == Event::Type::kSpan) {
    j.set("dur", static_cast<double>(e.dur_ns) * 1e-3);
    args.set("span_id", static_cast<long long>(e.id))
        .set("parent", static_cast<long long>(e.parent));
    for (const Attr& a : e.attrs) args.set(a.key, attr_json(a));
  } else {
    args.set("value", e.value);
    if (e.parent != 0) args.set("parent", static_cast<long long>(e.parent));
  }
  j.set("args", std::move(args));
  return j;
}

}  // namespace

void write_chrome_trace(const std::vector<Event>& events, std::ostream& os,
                        std::int64_t dropped) {
  os << "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"producer\":\"tcr::trace\","
        "\"dropped_events\":"
     << dropped << "},\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events) {
    if (!first) os << ",\n";
    first = false;
    event_json(e).dump(os);
  }
  os << "]}\n";
}

bool export_chrome_trace(const std::string& path, std::string* error) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    if (error) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  auto& tracer = Tracer::instance();
  write_chrome_trace(tracer.events(), out, tracer.dropped());
  out.flush();
  if (!out.good()) {
    if (error) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

}  // namespace tcr::trace
