// tcr::trace — low-overhead hierarchical span tracing.
//
// Model, in order of importance:
//   * near-zero cost when nobody is looking: the enabled flag is a single
//     relaxed atomic load, so a Span on a disabled tracer costs one branch
//     at construction and one at destruction — no clock reads, no
//     allocation, no registry traffic (asserted by tests/test_trace.cpp and
//     the BM_TraceSpanDisabled micro-kernel);
//   * hierarchy without plumbing: each thread keeps a current-span cursor,
//     so nested spans link to their enclosing span automatically. Structure
//     survives a hop onto the ThreadPool because ThreadPool::submit()
//     captures the scheduling thread's SpanContext and installs it as the
//     worker's ambient parent (ScopedParent) for the duration of the task;
//   * one call site, two consumers: the Span(name, timer) form feeds the
//     existing obs::Registry Timer under the same condition obs::ScopedTimer
//     did (Registry::timing_enabled()), emits a trace event when tracing is
//     enabled, and reads clocks only when at least one of the two wants the
//     span. Call sites are never instrumented twice.
//
// Events land in a bounded in-memory ring buffer (oldest overwritten,
// drops counted). trace::write_chrome_trace() (export.hpp) serializes the
// buffer as Chrome trace-event JSON, which loads in Perfetto and
// chrome://tracing; tools/tcr_trace.cpp turns a trace file into flame
// summaries and simplex convergence reports.
//
// Counter events (trace::counter) form Perfetto counter tracks — the
// per-iteration simplex convergence telemetry (lp.objective,
// lp.primal_infeas, ...) and the simulator's flit counts. Each counter
// carries the current span as parent so tools can group telemetry per
// solve.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tcr/obs/registry.hpp"

namespace tcr::trace {

namespace detail {
// The global enabled flag lives outside the Tracer singleton so the
// disabled-span fast path is one relaxed load — no function-local-static
// guard check.
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// Is tracing currently collecting events? One relaxed atomic load.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// One key/value span attribute (small tagged union).
struct Attr {
  enum class Kind : std::uint8_t { kInt, kDouble, kBool, kString };
  std::string key;
  Kind kind = Kind::kInt;
  std::int64_t i = 0;
  double d = 0.0;
  bool b = false;
  std::string s;
};

/// One trace event: a completed span or a counter sample.
struct Event {
  enum class Type : std::uint8_t { kSpan, kCounter };
  Type type = Type::kSpan;
  std::string name;
  std::uint64_t id = 0;       // span id (unique per Tracer::start); 0 for counters
  std::uint64_t parent = 0;   // enclosing span id; 0 = root
  std::uint32_t tid = 0;      // dense per-thread index (0 = first thread seen)
  std::int64_t start_ns = 0;  // monotonic, relative to the Tracer::start() epoch
  std::int64_t dur_ns = 0;    // span duration; 0 for counters
  double value = 0.0;         // counter value; unused for spans
  std::vector<Attr> attrs;
};

struct TracerConfig {
  /// Ring-buffer capacity in events; the oldest events are overwritten once
  /// full (Tracer::dropped() counts the overwrites).
  std::size_t capacity = 1 << 18;
  /// The simplex convergence-telemetry stream samples every this many
  /// iterations (objective, infeasibilities, DEVEX norm, eta length,
  /// minimum pivot). Larger = cheaper and coarser.
  int simplex_sample_every = 32;
};

/// Handle to a live (or root) span, used for explicit cross-thread parent
/// links. id == 0 means "no parent" (a root span).
struct SpanContext {
  std::uint64_t id = 0;
};

/// Process-wide trace collector. All methods are thread-safe.
class Tracer {
 public:
  static Tracer& instance();

  /// Enable collection: clears the buffer, resets the clock epoch and span
  /// ids, and flips the global enabled flag.
  void start(const TracerConfig& config = {});
  /// Stop collecting. Buffered events survive for export.
  void stop();
  /// Drop all buffered events (does not change the enabled flag).
  void clear();

  bool is_enabled() const noexcept { return enabled(); }
  std::size_t capacity() const;
  int simplex_sample_every() const noexcept {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Events overwritten because the ring buffer was full.
  std::int64_t dropped() const;
  /// Copy of the buffered events, oldest first.
  std::vector<Event> events() const;

  // --- internal API used by Span / counter() -------------------------------
  std::int64_t now_ns() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }
  std::uint64_t next_span_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  void record(Event&& e);

 private:
  Tracer() = default;

  mutable std::mutex mu_;
  std::vector<Event> ring_;
  std::size_t capacity_ = 1 << 18;
  std::size_t head_ = 0;  // overwrite cursor once the ring is full
  std::int64_t dropped_ = 0;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<int> sample_every_{32};
  std::chrono::steady_clock::time_point epoch_{};
};

namespace detail {
// Per-thread cursor: the innermost live span plus the ambient parent a
// ThreadPool task adopted from its scheduler.
struct ThreadState {
  std::uint64_t current = 0;  // innermost live span on this thread
  std::uint64_t adopted = 0;  // ambient parent for root spans (pool handoff)
  std::uint32_t tid = 0;
  bool tid_assigned = false;
};
ThreadState& thread_state() noexcept;
std::uint32_t thread_id() noexcept;
}  // namespace detail

/// Context of the innermost live span on this thread (the ambient parent
/// when no span is live). Cheap enough to capture unconditionally.
inline SpanContext current_context() noexcept {
  const auto& ts = detail::thread_state();
  return {ts.current != 0 ? ts.current : ts.adopted};
}

/// Installs `ctx` as this thread's ambient parent: spans opened while it is
/// in scope (and not nested in another live span) parent to `ctx`.
/// ThreadPool::submit() wraps every task in one of these so work scheduled
/// from inside a span stays attached to it across threads.
class ScopedParent {
 public:
  explicit ScopedParent(SpanContext ctx) noexcept
      : saved_(detail::thread_state().adopted) {
    detail::thread_state().adopted = ctx.id;
  }
  ScopedParent(const ScopedParent&) = delete;
  ScopedParent& operator=(const ScopedParent&) = delete;
  ~ScopedParent() { detail::thread_state().adopted = saved_; }

 private:
  std::uint64_t saved_;
};

/// RAII hierarchical span. Construction captures the parent (innermost live
/// span on this thread, the adopted ambient parent, or an explicit
/// SpanContext) and the start time; destruction emits the completed event.
/// All methods are no-ops when the tracer was disabled at construction.
class Span {
 public:
  explicit Span(std::string_view name) : Span(name, nullptr, SpanContext{}, false) {}
  /// Explicit cross-thread parent (overrides the thread-local cursor).
  Span(std::string_view name, SpanContext parent)
      : Span(name, nullptr, parent, true) {}
  /// Span that also feeds an obs::Timer — the drop-in replacement for
  /// obs::ScopedTimer at sites that should appear in traces. The timer is
  /// fed exactly when obs::Registry::timing_enabled() (unchanged obs
  /// semantics); the trace event is emitted exactly when trace::enabled().
  Span(std::string_view name, obs::Timer& timer)
      : Span(name, &timer, SpanContext{}, false) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// Live-span context for handing to explicitly-parented child spans.
  SpanContext context() const noexcept { return {id_}; }

  /// Attach a key/value attribute (exported into the trace event's args).
  /// No-ops (and does not allocate) when the span is disabled.
  void attr(std::string_view key, std::int64_t v);
  void attr(std::string_view key, int v) { attr(key, static_cast<std::int64_t>(v)); }
  void attr(std::string_view key, double v);
  void attr(std::string_view key, bool v);
  void attr(std::string_view key, std::string_view v);
  void attr(std::string_view key, const char* v) { attr(key, std::string_view(v)); }

  /// End the span early (idempotent; the destructor is then a no-op).
  void end();

 private:
  Span(std::string_view name, obs::Timer* timer, SpanContext parent, bool explicit_parent);

  std::string_view name_;
  obs::Timer* timer_ = nullptr;
  bool traced_ = false;
  bool timed_ = false;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t saved_current_ = 0;
  std::int64_t start_ns_ = 0;
  double cpu_start_ = 0.0;
  std::vector<Attr> attrs_;
};

/// Emit one sample of the counter track `track` (a Perfetto counter track).
/// One branch when tracing is disabled.
inline void counter(std::string_view track, double value) {
  if (!enabled()) return;
  auto& tracer = Tracer::instance();
  Event e;
  e.type = Event::Type::kCounter;
  e.name.assign(track.data(), track.size());
  e.parent = current_context().id;
  e.tid = detail::thread_id();
  e.start_ns = tracer.now_ns();
  e.value = value;
  tracer.record(std::move(e));
}

}  // namespace tcr::trace
