// Chrome trace-event / Perfetto JSON export of a tcr::trace event buffer.
//
// The output is the JSON object format of the Chrome trace-event spec
// ({"traceEvents": [...]}) which loads directly in Perfetto
// (https://ui.perfetto.dev) and chrome://tracing:
//   * spans become complete events (ph "X") with microsecond ts/dur; span
//     ids and parent links travel in args.span_id / args.parent so
//     cross-thread hierarchy survives even where timestamp nesting cannot
//     express it, alongside every span attribute;
//   * counter samples become counter events (ph "C") whose args carry the
//     value — Perfetto renders each name as a counter track.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tcr/trace/tracer.hpp"

namespace tcr::trace {

/// Serialize `events` as Chrome trace-event JSON. `dropped` (> 0) is
/// recorded in the trace metadata so consumers know the ring overflowed.
void write_chrome_trace(const std::vector<Event>& events, std::ostream& os,
                        std::int64_t dropped = 0);

/// Export the process-wide tracer's buffer to `path`. Returns false (and
/// fills *error) when the file cannot be written.
bool export_chrome_trace(const std::string& path, std::string* error);

}  // namespace tcr::trace
