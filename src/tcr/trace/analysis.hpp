// Trace-file analysis: the library behind tools/tcr_trace.cpp, split out so
// the diagnosis logic is unit-testable (tests/test_trace.cpp) and reusable.
//
// Consumes the Chrome trace-event JSON written by trace/export.hpp (parsed
// back with report::json_reader) and produces:
//   * a self-time flame summary per span name (total, self = total minus
//     child span time, count, max);
//   * the top-k slowest individual spans;
//   * per-LP-solve convergence reports from the lp.* counter tracks
//     (iterations to optimal, stall windows where the sampled objective
//     improvement stays below a tolerance, refactorization cadence);
//   * the per-point sweep table (sweep.point spans with their warm-start
//     adoption attributes);
//   * span-by-span diffs of two traces (warm vs cold sweeps).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "tcr/obs/json.hpp"

namespace tcr::trace {

/// One span read back from a trace file.
struct SpanRec {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint32_t tid = 0;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  /// Attributes from args (everything except span_id/parent), insertion
  /// order preserved.
  obs::Json args = obs::Json::object();
};

/// One counter sample read back from a trace file.
struct CounterRec {
  std::string name;
  std::uint64_t parent = 0;  // span that was live when the sample was taken
  std::uint32_t tid = 0;
  std::int64_t t_ns = 0;
  double value = 0.0;
};

/// Parsed trace: spans and counter samples in file order.
struct Trace {
  std::vector<SpanRec> spans;
  std::vector<CounterRec> counters;
  std::int64_t dropped_events = 0;
};

/// Decode a parsed Chrome trace-event document. Returns false (with *error)
/// when `doc` is not an object with a traceEvents array of well-formed
/// events.
bool load_trace(const obs::Json& doc, Trace* out, std::string* error);

/// Read + parse + decode a trace file in one call.
bool load_trace_file(const std::string& path, Trace* out, std::string* error);

/// Per-name aggregate over all spans of that name.
struct NameAgg {
  long count = 0;
  std::int64_t total_ns = 0;  // sum of span durations
  std::int64_t self_ns = 0;   // total minus time spent in child spans
  std::int64_t max_ns = 0;    // slowest single span
};

/// Flame summary: per-name totals with self time computed from the parent
/// links (children subtract from their parent's self time regardless of
/// which thread they ran on).
std::map<std::string, NameAgg> aggregate(const Trace& trace);

/// The k slowest individual spans, longest first.
std::vector<SpanRec> slowest_spans(const Trace& trace, std::size_t k);

/// Convergence diagnosis of one lp.solve span, reconstructed from the
/// sampled lp.* counter tracks attached (via parent links) to it.
struct SolveReport {
  std::uint64_t span_id = 0;
  std::int64_t dur_ns = 0;
  std::string warm_start;  // adoption attr of the solve span, when present
  std::string status;      // final status attr, when present
  long iterations = 0;     // last sampled lp.iteration value
  int samples = 0;         // telemetry samples seen
  double first_objective = 0.0;
  double last_objective = 0.0;
  /// Sample intervals whose relative objective improvement stayed below the
  /// stall tolerance, and the longest consecutive run of them (in sampled
  /// iterations).
  int stall_windows = 0;
  long longest_stall_iters = 0;
  long refactors = 0;  // lp.refactor child spans of this solve
  double final_primal_infeas = 0.0;
  double final_dual_infeas = 0.0;
};

/// One report per lp.solve span, in trace order. `stall_tol` is the
/// relative objective-improvement threshold below which a sample interval
/// counts as stalled.
std::vector<SolveReport> convergence_reports(const Trace& trace, double stall_tol = 1e-9);

/// Sweep-point rows: every span named `sweep.point`, trace order.
std::vector<SpanRec> sweep_points(const Trace& trace);

/// Span-by-span comparison of two traces (e.g. a warm and a cold sweep).
struct DiffRow {
  std::string name;
  std::optional<NameAgg> a;  // absent when the name only appears in b
  std::optional<NameAgg> b;
};

/// Union of both traces' span names with each side's aggregate, sorted by
/// the larger total time, descending.
std::vector<DiffRow> diff(const Trace& a, const Trace& b);

/// Machine-readable flame/self-time summary (tcr-trace --json): an object
///   {"spans": N, "counters": N, "dropped": N,
///    "flame": [{"span","count","total_ns","self_ns","max_ns","avg_ns"},...]}
/// with flame rows sorted by self time descending (name ascending on ties),
/// matching the order of the human-readable table.
obs::Json flame_json(const Trace& trace);

}  // namespace tcr::trace
