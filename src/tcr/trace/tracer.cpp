#include "tcr/trace/tracer.hpp"

#include "tcr/util/stopwatch.hpp"

namespace tcr::trace {

namespace detail {

ThreadState& thread_state() noexcept {
  thread_local ThreadState state;
  return state;
}

std::uint32_t thread_id() noexcept {
  static std::atomic<std::uint32_t> next{0};
  ThreadState& ts = thread_state();
  if (!ts.tid_assigned) {
    ts.tid = next.fetch_add(1, std::memory_order_relaxed);
    ts.tid_assigned = true;
  }
  return ts.tid;
}

}  // namespace detail

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::start(const TracerConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  capacity_ = config.capacity > 0 ? config.capacity : 1;
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
  head_ = 0;
  dropped_ = 0;
  next_id_.store(1, std::memory_order_relaxed);
  sample_every_.store(config.simplex_sample_every > 0 ? config.simplex_sample_every : 0,
                      std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { detail::g_enabled.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

std::size_t Tracer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::int64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<Event> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  // The ring holds [head_, end) then [0, head_) in age order once it wrapped.
  for (std::size_t i = head_; i < ring_.size(); ++i) out.push_back(ring_[i]);
  for (std::size_t i = 0; i < head_; ++i) out.push_back(ring_[i]);
  return out;
}

void Tracer::record(Event&& e) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

Span::Span(std::string_view name, obs::Timer* timer, SpanContext parent,
           bool explicit_parent)
    : name_(name), timer_(timer) {
  traced_ = enabled();
  timed_ = timer_ != nullptr && obs::Registry::instance().timing_enabled();
  if (!traced_ && !timed_) return;
  auto& tracer = Tracer::instance();
  start_ns_ = tracer.now_ns();
  if (timed_) cpu_start_ = Stopwatch::cpu_now();
  if (traced_) {
    detail::ThreadState& ts = detail::thread_state();
    id_ = tracer.next_span_id();
    parent_ = explicit_parent ? parent.id
                              : (ts.current != 0 ? ts.current : ts.adopted);
    saved_current_ = ts.current;
    ts.current = id_;
  }
}

void Span::attr(std::string_view key, std::int64_t v) {
  if (!traced_) return;
  Attr a;
  a.key.assign(key.data(), key.size());
  a.kind = Attr::Kind::kInt;
  a.i = v;
  attrs_.push_back(std::move(a));
}

void Span::attr(std::string_view key, double v) {
  if (!traced_) return;
  Attr a;
  a.key.assign(key.data(), key.size());
  a.kind = Attr::Kind::kDouble;
  a.d = v;
  attrs_.push_back(std::move(a));
}

void Span::attr(std::string_view key, bool v) {
  if (!traced_) return;
  Attr a;
  a.key.assign(key.data(), key.size());
  a.kind = Attr::Kind::kBool;
  a.b = v;
  attrs_.push_back(std::move(a));
}

void Span::attr(std::string_view key, std::string_view v) {
  if (!traced_) return;
  Attr a;
  a.key.assign(key.data(), key.size());
  a.kind = Attr::Kind::kString;
  a.s.assign(v.data(), v.size());
  attrs_.push_back(std::move(a));
}

void Span::end() {
  if (!traced_ && !timed_) return;
  auto& tracer = Tracer::instance();
  const std::int64_t end_ns = tracer.now_ns();
  if (timed_) {
    const double cpu = Stopwatch::cpu_now() - cpu_start_;
    timer_->add(end_ns - start_ns_, static_cast<std::int64_t>(cpu * 1e9));
    timed_ = false;
  }
  if (traced_) {
    detail::thread_state().current = saved_current_;
    Event e;
    e.type = Event::Type::kSpan;
    e.name.assign(name_.data(), name_.size());
    e.id = id_;
    e.parent = parent_;
    e.tid = detail::thread_id();
    e.start_ns = start_ns_;
    e.dur_ns = end_ns - start_ns_;
    e.attrs = std::move(attrs_);
    tracer.record(std::move(e));
    traced_ = false;
  }
}

}  // namespace tcr::trace
