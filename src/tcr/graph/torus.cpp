#include "tcr/graph/torus.hpp"

#include "tcr/util/check.hpp"

namespace tcr {

// k = 2 is excluded: both ring directions would connect the same node pair,
// making node walks ambiguous as channel sequences.
Torus::Torus(int k) : k_(k) { TCR_REQUIRE(k >= 3, "torus radix must be at least 3"); }

int Torus::neighbor(int n, Dir d) const {
  const int x = x_of(n), y = y_of(n);
  switch (d) {
    case Dir::PX: return node(x + 1, y);
    case Dir::NX: return node(x - 1, y);
    case Dir::PY: return node(x, y + 1);
    case Dir::NY: return node(x, y - 1);
  }
  return -1;
}

int Torus::channel_dst(int c) const { return neighbor(channel_src(c), channel_dir(c)); }

int Torus::translate_node(int n, int t) const {
  return node(x_of(n) + x_of(t), y_of(n) + y_of(t));
}

int Torus::negate_node(int n) const { return node(-x_of(n), -y_of(n)); }

int Torus::min_dist(int a, int b) const {
  const int dx = mod(x_of(b) - x_of(a));
  const int dy = mod(y_of(b) - y_of(a));
  return ring_dist(dx) + ring_dist(dy);
}

double Torus::mean_min_distance() const {
  // By translation symmetry the mean over all pairs equals the mean over
  // destinations from one source.
  double sum = 0.0;
  for (int e = 0; e < num_nodes(); ++e) sum += min_dist(0, e);
  return sum / num_nodes();
}

Digraph Torus::graph() const {
  Digraph g(num_nodes());
  for (int n = 0; n < num_nodes(); ++n) {
    for (int d = 0; d < kNumDirs; ++d) {
      const int c = g.add_channel(n, neighbor(n, static_cast<Dir>(d)));
      TCR_ASSERT(c == channel(n, static_cast<Dir>(d)), "channel ids must align");
    }
  }
  return g;
}

double Torus::ideal_uniform_load() const {
  // Under uniform traffic each dimension carries, per node, the mean minimal
  // ring distance sum_{delta} min(delta, k - delta)/k hops, spread over the
  // 2 ring channels per node of that dimension.
  const double k = k_;
  if (k_ % 2 == 0) return k / 8.0;
  return (k * k - 1.0) / (8.0 * k);
}

}  // namespace tcr
