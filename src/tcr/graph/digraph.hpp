// Directed multigraph with per-channel bandwidths (paper §2.1): nodes have
// unit injection/ejection bandwidth, channels have bandwidth b_c.
#pragma once

#include <vector>

#include "tcr/lin/dense_matrix.hpp"

namespace tcr {

struct Channel {
  int src = -1;
  int dst = -1;
  double bandwidth = 1.0;
};

class Digraph {
 public:
  explicit Digraph(int num_nodes = 0);

  int add_node();
  int add_channel(int src, int dst, double bandwidth = 1.0);

  int num_nodes() const { return static_cast<int>(out_.size()); }
  int num_channels() const { return static_cast<int>(channels_.size()); }
  const Channel& channel(int c) const { return channels_[c]; }

  const std::vector<int>& out_channels(int node) const { return out_[node]; }
  const std::vector<int>& in_channels(int node) const { return in_[node]; }

  /// Hop distance from `src` to every node (BFS; unreachable = -1).
  std::vector<int> distances_from(int src) const;

  /// All-pairs hop distances.
  DenseMatrix all_pairs_distances() const;

  /// Mean of the all-pairs minimal hop distances (including s == d pairs,
  /// which contribute zero) — the normalizer for locality (paper §2.3).
  double mean_min_distance() const;

 private:
  std::vector<Channel> channels_;
  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
};

/// Unidirectional ring of n nodes (simple worked example in tests/examples).
Digraph make_ring(int n);

/// Bidirectional ring (1-ary torus slice): channels both ways.
Digraph make_bidirectional_ring(int n);

/// kx-by-ky mesh with bidirectional channels (no wraparound).
Digraph make_mesh(int kx, int ky);

}  // namespace tcr
