// The k-ary 2-cube (2-D torus) topology, paper §5 / Figure 2.
//
// Nodes are (x, y) with 0 <= x, y < k, indexed x + k*y. Every node owns four
// unit-bandwidth channels (+X, -X, +Y, -Y), indexed 4*node + dir, so
// N = k^2 and C = 4N. The class also exposes the translation automorphisms
// that make the torus vertex- and edge-symmetric — the symmetry the paper
// exploits (§4) to shrink its design LPs to O(CN).
#pragma once

#include <algorithm>

#include "tcr/graph/digraph.hpp"

namespace tcr {

enum class Dir : int { PX = 0, NX = 1, PY = 2, NY = 3 };

constexpr int kNumDirs = 4;

/// Is this direction in the X dimension?
constexpr bool is_x(Dir d) { return d == Dir::PX || d == Dir::NX; }
/// +1 for positive directions, -1 for negative ones.
constexpr int sign_of(Dir d) { return (d == Dir::PX || d == Dir::PY) ? 1 : -1; }

class Torus {
 public:
  explicit Torus(int k);

  int k() const { return k_; }
  int num_nodes() const { return k_ * k_; }
  int num_channels() const { return 4 * num_nodes(); }

  int node(int x, int y) const { return mod(x) + k_ * mod(y); }
  int x_of(int n) const { return n % k_; }
  int y_of(int n) const { return n / k_; }

  int channel(int n, Dir d) const { return 4 * n + static_cast<int>(d); }
  int channel_src(int c) const { return c / 4; }
  Dir channel_dir(int c) const { return static_cast<Dir>(c % 4); }
  int channel_dst(int c) const;

  /// Neighbor of n one hop in direction d.
  int neighbor(int n, Dir d) const;

  /// Component-wise node addition modulo k (translation automorphism).
  int translate_node(int n, int t) const;
  /// Node negation: -n (mod k in each coordinate).
  int negate_node(int n) const;
  /// Channel image under translation by t.
  int translate_channel(int c, int t) const { return channel(translate_node(channel_src(c), t), channel_dir(c)); }
  /// Relative offset d - s, as a node index.
  int offset(int s, int d) const { return translate_node(d, negate_node(s)); }

  /// Minimal hop distance between nodes.
  int min_dist(int a, int b) const;
  /// Mean minimal distance over all N^2 (s, d) pairs (including s == d).
  double mean_min_distance() const;

  /// Minimal ring distance for a 1-D offset delta in [0, k).
  int ring_dist(int delta) const { return std::min(delta, k_ - delta); }

  /// Materialize the topology as a Digraph; channel ids are preserved.
  Digraph graph() const;

  /// Exact maximum channel load of a capacity-optimal (minimal, tie-split)
  /// routing under uniform traffic: k/8 for even k, (k^2 - 1)/(8k) for odd k.
  /// The network capacity (paper §3.1) is its reciprocal.
  double ideal_uniform_load() const;

 private:
  int mod(int v) const {
    v %= k_;
    return v < 0 ? v + k_ : v;
  }
  int k_;
};

}  // namespace tcr
