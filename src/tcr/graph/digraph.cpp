#include "tcr/graph/digraph.hpp"

#include <queue>

#include "tcr/util/check.hpp"

namespace tcr {

Digraph::Digraph(int num_nodes) : out_(num_nodes), in_(num_nodes) {
  TCR_REQUIRE(num_nodes >= 0, "node count must be non-negative");
}

int Digraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return num_nodes() - 1;
}

int Digraph::add_channel(int src, int dst, double bandwidth) {
  TCR_REQUIRE(src >= 0 && src < num_nodes() && dst >= 0 && dst < num_nodes(),
              "channel endpoints out of range");
  TCR_REQUIRE(bandwidth > 0.0, "channel bandwidth must be positive");
  channels_.push_back({src, dst, bandwidth});
  const int c = num_channels() - 1;
  out_[src].push_back(c);
  in_[dst].push_back(c);
  return c;
}

std::vector<int> Digraph::distances_from(int src) const {
  TCR_REQUIRE(src >= 0 && src < num_nodes(), "source out of range");
  std::vector<int> dist(static_cast<std::size_t>(num_nodes()), -1);
  std::queue<int> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const int n = q.front();
    q.pop();
    for (int c : out_[n]) {
      const int d = channels_[c].dst;
      if (dist[d] < 0) {
        dist[d] = dist[n] + 1;
        q.push(d);
      }
    }
  }
  return dist;
}

DenseMatrix Digraph::all_pairs_distances() const {
  DenseMatrix d(num_nodes(), num_nodes());
  for (int s = 0; s < num_nodes(); ++s) {
    const auto row = distances_from(s);
    for (int t = 0; t < num_nodes(); ++t) d(s, t) = row[t];
  }
  return d;
}

double Digraph::mean_min_distance() const {
  const DenseMatrix d = all_pairs_distances();
  double sum = 0.0;
  for (int s = 0; s < num_nodes(); ++s)
    for (int t = 0; t < num_nodes(); ++t) {
      TCR_ASSERT(d(s, t) >= 0, "graph must be strongly connected");
      sum += d(s, t);
    }
  return sum / (static_cast<double>(num_nodes()) * num_nodes());
}

Digraph make_ring(int n) {
  TCR_REQUIRE(n >= 2, "ring needs at least 2 nodes");
  Digraph g(n);
  for (int i = 0; i < n; ++i) g.add_channel(i, (i + 1) % n);
  return g;
}

Digraph make_bidirectional_ring(int n) {
  TCR_REQUIRE(n >= 2, "ring needs at least 2 nodes");
  Digraph g(n);
  for (int i = 0; i < n; ++i) {
    g.add_channel(i, (i + 1) % n);
    g.add_channel(i, (i + n - 1) % n);
  }
  return g;
}

Digraph make_mesh(int kx, int ky) {
  TCR_REQUIRE(kx >= 1 && ky >= 1, "mesh dimensions must be positive");
  Digraph g(kx * ky);
  auto id = [kx](int x, int y) { return x + kx * y; };
  for (int y = 0; y < ky; ++y) {
    for (int x = 0; x < kx; ++x) {
      if (x + 1 < kx) {
        g.add_channel(id(x, y), id(x + 1, y));
        g.add_channel(id(x + 1, y), id(x, y));
      }
      if (y + 1 < ky) {
        g.add_channel(id(x, y), id(x, y + 1));
        g.add_channel(id(x, y + 1), id(x, y));
      }
    }
  }
  return g;
}

}  // namespace tcr
