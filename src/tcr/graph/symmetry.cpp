#include "tcr/graph/symmetry.hpp"

#include <algorithm>

#include "tcr/util/check.hpp"

namespace tcr {

int TorusSymmetry::map_node(int g, int n) const {
  const Torus& t = *torus_;
  int x = t.x_of(n), y = t.y_of(n);
  if (g & 1) x = -x;
  if (g & 2) y = -y;
  if (g & 4) std::swap(x, y);
  return t.node(x, y);
}

Dir TorusSymmetry::map_dir(int g, Dir d) const {
  bool x_dim = is_x(d);
  int sign = sign_of(d);
  if ((g & 1) && x_dim) sign = -sign;
  if ((g & 2) && !x_dim) sign = -sign;
  if (g & 4) x_dim = !x_dim;
  if (x_dim) return sign > 0 ? Dir::PX : Dir::NX;
  return sign > 0 ? Dir::PY : Dir::NY;
}

int TorusSymmetry::map_channel(int g, int c) const {
  const Torus& t = *torus_;
  return t.channel(map_node(g, t.channel_src(c)), map_dir(g, t.channel_dir(c)));
}

Path TorusSymmetry::map_path(int g, const Path& p) const {
  Path q;
  q.src = map_node(g, p.src);
  q.dst = map_node(g, p.dst);
  q.channels.reserve(p.channels.size());
  for (int c : p.channels) q.channels.push_back(map_channel(g, c));
  return q;
}

int TorusSymmetry::node_rep(int e) const {
  int best = e;
  for (int g = 1; g < kOrder; ++g) best = std::min(best, map_node(g, e));
  return best;
}

long long TorusSymmetry::pair_rep(int e, int c) const {
  const long long nc = torus_->num_channels();
  long long best = e * nc + c;
  for (int g = 1; g < kOrder; ++g) {
    best = std::min(best, map_node(g, e) * nc + map_channel(g, c));
  }
  return best;
}

}  // namespace tcr
