#include "tcr/matching/hungarian.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "tcr/util/check.hpp"

namespace tcr {

AssignmentResult solve_assignment_min(const DenseMatrix& w) {
  TCR_REQUIRE(w.rows() == w.cols(), "assignment requires a square matrix");
  const int n = w.rows();
  AssignmentResult res;
  if (n == 0) return res;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // 1-indexed arrays; p[j] = row matched to column j (0 = none).
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0), minv(n + 1);
  std::vector<int> p(n + 1, 0), way(n + 1, 0);
  std::vector<char> used(n + 1);

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::fill(minv.begin(), minv.end(), kInf);
    std::fill(used.begin(), used.end(), 0);
    do {
      used[j0] = 1;
      const int i0 = p[j0];
      double delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = w(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      TCR_ASSERT(j1 >= 0, "augmenting path search failed");
      for (int j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  res.assignment.assign(n, -1);
  for (int j = 1; j <= n; ++j) res.assignment[p[j] - 1] = j - 1;
  res.value = 0.0;
  for (int i = 0; i < n; ++i) res.value += w(i, res.assignment[i]);
  res.row_dual.assign(u.begin() + 1, u.end());
  res.col_dual.assign(v.begin() + 1, v.end());
  return res;
}

AssignmentResult solve_assignment_max(const DenseMatrix& w) {
  DenseMatrix neg(w.rows(), w.cols());
  for (int i = 0; i < w.rows(); ++i)
    for (int j = 0; j < w.cols(); ++j) neg(i, j) = -w(i, j);
  AssignmentResult res = solve_assignment_min(neg);
  res.value = -res.value;
  for (auto& d : res.row_dual) d = -d;
  for (auto& d : res.col_dual) d = -d;
  return res;
}

AssignmentResult assignment_max_bruteforce(const DenseMatrix& w) {
  TCR_REQUIRE(w.rows() == w.cols(), "assignment requires a square matrix");
  TCR_REQUIRE(w.rows() <= 10, "brute force limited to n <= 10");
  const int n = w.rows();
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  AssignmentResult best;
  best.value = -std::numeric_limits<double>::infinity();
  do {
    double v = 0.0;
    for (int i = 0; i < n; ++i) v += w(i, perm[i]);
    if (v > best.value) {
      best.value = v;
      best.assignment = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

}  // namespace tcr
