// Assignment problem solvers.
//
// The worst-case channel load of an oblivious routing function is the
// maximum, over permutation traffic patterns, of the load on a channel
// (paper §3.2 / reference [11]): a max-weight bipartite perfect matching
// whose weight matrix is the per-pair unit load on that channel. The O(n^3)
// Hungarian algorithm solves it exactly; a brute-force oracle over all n!
// permutations backs the unit tests.
#pragma once

#include <vector>

#include "tcr/lin/dense_matrix.hpp"

namespace tcr {

struct AssignmentResult {
  double value = 0.0;            // total weight of the optimal assignment
  std::vector<int> assignment;   // assignment[row] = column
  std::vector<double> row_dual;  // potentials u (value = sum u + sum v)
  std::vector<double> col_dual;  // potentials v
};

/// Minimum-weight perfect matching on a complete bipartite graph given a
/// square weight matrix. O(n^3).
AssignmentResult solve_assignment_min(const DenseMatrix& w);

/// Maximum-weight perfect matching. O(n^3).
AssignmentResult solve_assignment_max(const DenseMatrix& w);

/// Brute-force oracle (n <= 10): maximum-weight perfect matching.
AssignmentResult assignment_max_bruteforce(const DenseMatrix& w);

}  // namespace tcr
