// Exact worst-case throughput of a fixed oblivious routing algorithm
// (paper §3.2, following reference [11]): it suffices to search permutation
// traffic, and the worst permutation for one channel is a maximum-weight
// bipartite matching with weights W[s][d] = unit load of pair (s, d) on the
// channel. Translation symmetry reduces the channel scan to the four
// representative channels at node 0 (+X, -X, +Y, -Y).
#pragma once

#include <vector>

#include "tcr/matching/hungarian.hpp"
#include "tcr/routing/routing.hpp"

namespace tcr {

/// Exact worst-case load of a fixed routing algorithm with its adversarial
/// witness (eq. 7 / [11]).
struct WorstCaseResult {
  double gamma = 0.0;            ///< gamma_wc(R): worst-case gamma_max, bandwidth fraction
  int channel = -1;              ///< representative channel attaining it
  std::vector<int> permutation;  ///< an adversarial permutation achieving it
};

/// Per-pair load matrix W[s][d] for a specific channel: the bandwidth
/// fraction pair (s, d) places on it per unit of traffic (the matching
/// weights of eq. 7).
DenseMatrix pair_load_matrix(const TorusRouting& r, int channel);

/// Exact gamma_wc(R) with an adversarial witness permutation (eq. 7,
/// Hungarian matching per representative channel).
WorstCaseResult worst_case(const TorusRouting& r);

/// Theta_wc(R) = 1 / gamma_wc(R) (eq. 7 reciprocal). Unit: flits/node/cycle.
double worst_case_throughput(const TorusRouting& r);

/// Theta_wc(R) / capacity, in [0, 1] — the y-axis of Figure 1 (0.5 for
/// worst-case-optimal algorithms, §3.1).
double worst_case_capacity_fraction(const TorusRouting& r);

}  // namespace tcr
