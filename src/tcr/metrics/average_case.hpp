// Average-case throughput over sampled doubly-stochastic traffic (paper
// §3.3, eq. 9). Reports both the paper's linear approximation (reciprocal of
// the arithmetic-mean max channel load) and the true sampled mean throughput
// (mean of reciprocals), so the quality of the approximation can be measured
// (the paper claims ~5% at |X| = 100, N = 64).
#pragma once

#include <vector>

#include "tcr/routing/routing.hpp"
#include "tcr/traffic/traffic.hpp"
#include "tcr/util/thread_pool.hpp"

namespace tcr {

/// Sampled average-case throughput in both the paper's forms (eq. 9).
struct AverageCaseResult {
  double mean_max_load = 0.0;      ///< (1/|X|) sum gamma_max (eq. 9), bandwidth fraction
  double approx_throughput = 0.0;  ///< 1 / mean_max_load — the paper's linear form
  double true_throughput = 0.0;    ///< (1/|X|) sum 1/gamma_max, flits/node/cycle
};

/// Evaluate eq. 9 over the sample set X (per-sample gamma_max fanned out on
/// `pool` when given). Samples must be doubly-stochastic.
AverageCaseResult average_case(const TorusRouting& r,
                               const std::vector<TrafficMatrix>& samples,
                               ThreadPool* pool = nullptr);

/// Approximate average-case throughput as a fraction of capacity, in
/// [0, 1] — the x-axis of Figure 6 (paper max ≈ 0.628).
double average_capacity_fraction(const TorusRouting& r,
                                 const std::vector<TrafficMatrix>& samples,
                                 ThreadPool* pool = nullptr);

}  // namespace tcr
