// Average-case throughput over sampled doubly-stochastic traffic (paper
// §3.3, eq. 9). Reports both the paper's linear approximation (reciprocal of
// the arithmetic-mean max channel load) and the true sampled mean throughput
// (mean of reciprocals), so the quality of the approximation can be measured
// (the paper claims ~5% at |X| = 100, N = 64).
#pragma once

#include <vector>

#include "tcr/routing/routing.hpp"
#include "tcr/traffic/traffic.hpp"
#include "tcr/util/thread_pool.hpp"

namespace tcr {

struct AverageCaseResult {
  double mean_max_load = 0.0;    // (1/|X|) sum gamma_max  (eq. 9)
  double approx_throughput = 0.0;  // 1 / mean_max_load
  double true_throughput = 0.0;    // (1/|X|) sum 1/gamma_max
};

AverageCaseResult average_case(const TorusRouting& r,
                               const std::vector<TrafficMatrix>& samples,
                               ThreadPool* pool = nullptr);

/// Approximate average-case throughput as a fraction of capacity — the
/// x-axis of Figure 6.
double average_capacity_fraction(const TorusRouting& r,
                                 const std::vector<TrafficMatrix>& samples,
                                 ThreadPool* pool = nullptr);

}  // namespace tcr
