// Channel-load and throughput metrics (paper §2.3, §3.1).
//
// All quantities derive from the canonical load table of a TorusRouting:
// the load of pair (s, d) on channel c equals L0[d - s][c translated by -s].
#pragma once

#include <vector>

#include "tcr/routing/routing.hpp"
#include "tcr/traffic/traffic.hpp"

namespace tcr {

/// gamma_c for every channel under traffic pattern lambda (eq. 2), indexed
/// by channel id. Unit: fraction of channel bandwidth consumed per unit of
/// injection rate (lambda doubly-stochastic, b_c = 1 on the torus).
std::vector<double> channel_loads(const TorusRouting& r, const TrafficMatrix& lambda);

/// gamma_c for a permutation pattern perm[s] = d (cheaper than a dense
/// matrix). Same units as the TrafficMatrix overload.
std::vector<double> channel_loads(const TorusRouting& r, const std::vector<int>& perm);

/// gamma_max = max_c gamma_c / b_c (eq. 3; torus channels have b_c = 1).
/// Unit: bandwidth fraction of the most loaded channel; its reciprocal is
/// the saturation throughput (eq. 4).
double max_channel_load(const TorusRouting& r, const TrafficMatrix& lambda);
double max_channel_load(const TorusRouting& r, const std::vector<int>& perm);

/// Theta(R, lambda) = 1 / gamma_max (eq. 4). Unit: injection rate in
/// flits/node/cycle sustainable before the worst channel saturates.
double throughput(const TorusRouting& r, const TrafficMatrix& lambda);

/// gamma_max under uniform traffic, using translation symmetry (one pass
/// over the load table). Same unit as max_channel_load (eq. 3).
double uniform_max_load(const TorusRouting& r);

/// Theta(R, U) / capacity: how much of the network's ideal capacity the
/// algorithm realizes on uniform traffic (1.0 for capacity-optimal routing).
double uniform_capacity_fraction(const TorusRouting& r);

}  // namespace tcr
