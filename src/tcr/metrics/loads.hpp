// Channel-load and throughput metrics (paper §2.3, §3.1).
//
// All quantities derive from the canonical load table of a TorusRouting:
// the load of pair (s, d) on channel c equals L0[d - s][c translated by -s].
#pragma once

#include <vector>

#include "tcr/routing/routing.hpp"
#include "tcr/traffic/traffic.hpp"

namespace tcr {

/// gamma_c for every channel under traffic pattern lambda (eq. 2).
std::vector<double> channel_loads(const TorusRouting& r, const TrafficMatrix& lambda);

/// gamma_c for a permutation pattern perm[s] = d (cheaper than a dense
/// matrix).
std::vector<double> channel_loads(const TorusRouting& r, const std::vector<int>& perm);

/// gamma_max = max_c gamma_c / b_c (eq. 3; torus channels have b_c = 1).
double max_channel_load(const TorusRouting& r, const TrafficMatrix& lambda);
double max_channel_load(const TorusRouting& r, const std::vector<int>& perm);

/// Theta(R, lambda) = 1 / gamma_max (eq. 4).
double throughput(const TorusRouting& r, const TrafficMatrix& lambda);

/// gamma_max under uniform traffic, using translation symmetry (one pass
/// over the load table).
double uniform_max_load(const TorusRouting& r);

/// Theta(R, U) / capacity: how much of the network's ideal capacity the
/// algorithm realizes on uniform traffic (1.0 for capacity-optimal routing).
double uniform_capacity_fraction(const TorusRouting& r);

}  // namespace tcr
