#include "tcr/metrics/worst_case.hpp"

#include "tcr/util/check.hpp"

namespace tcr {

DenseMatrix pair_load_matrix(const TorusRouting& r, int channel) {
  const Torus& t = r.torus();
  const int n = t.num_nodes();
  const DenseMatrix& l0 = r.load_table();
  DenseMatrix w(n, n);
  for (int s = 0; s < n; ++s) {
    // Load of (s, d) on `channel` = canonical load of (0, d-s) on the
    // channel translated by -s.
    const int c = t.translate_channel(channel, t.negate_node(s));
    for (int d = 0; d < n; ++d) w(s, d) = l0(t.offset(s, d), c);
  }
  return w;
}

WorstCaseResult worst_case(const TorusRouting& r) {
  const Torus& t = r.torus();
  WorstCaseResult best;
  for (int dir = 0; dir < kNumDirs; ++dir) {
    const int c0 = t.channel(0, static_cast<Dir>(dir));
    const DenseMatrix w = pair_load_matrix(r, c0);
    const AssignmentResult a = solve_assignment_max(w);
    if (a.value > best.gamma) {
      best.gamma = a.value;
      best.channel = c0;
      best.permutation = a.assignment;
    }
  }
  return best;
}

double worst_case_throughput(const TorusRouting& r) {
  const auto wc = worst_case(r);
  TCR_ASSERT(wc.gamma > 0.0, "routing carries no load");
  return 1.0 / wc.gamma;
}

double worst_case_capacity_fraction(const TorusRouting& r) {
  return r.torus().ideal_uniform_load() * worst_case_throughput(r);
}

}  // namespace tcr
