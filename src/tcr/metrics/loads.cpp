#include "tcr/metrics/loads.hpp"

#include <algorithm>

#include "tcr/util/check.hpp"

namespace tcr {

namespace {

// Channel image table under translation by s: sigma_s[c] = c translated.
std::vector<int> channel_translation(const Torus& t, int s) {
  std::vector<int> sigma(static_cast<std::size_t>(t.num_channels()));
  for (int c = 0; c < t.num_channels(); ++c) sigma[c] = t.translate_channel(c, s);
  return sigma;
}

}  // namespace

std::vector<double> channel_loads(const TorusRouting& r, const TrafficMatrix& lambda) {
  const Torus& t = r.torus();
  const int n = t.num_nodes(), nc = t.num_channels();
  TCR_REQUIRE(lambda.rows() == n && lambda.cols() == n, "traffic matrix size mismatch");
  const DenseMatrix& l0 = r.load_table();
  std::vector<double> gamma(static_cast<std::size_t>(nc), 0.0);
  for (int s = 0; s < n; ++s) {
    const auto sigma = channel_translation(t, s);
    for (int e = 0; e < n; ++e) {
      const double w = lambda(s, t.translate_node(s, e));
      if (w == 0.0) continue;
      const double* row = l0.row(e);
      for (int c = 0; c < nc; ++c) {
        if (row[c] != 0.0) gamma[sigma[c]] += w * row[c];
      }
    }
  }
  return gamma;
}

std::vector<double> channel_loads(const TorusRouting& r, const std::vector<int>& perm) {
  const Torus& t = r.torus();
  const int n = t.num_nodes(), nc = t.num_channels();
  TCR_REQUIRE(static_cast<int>(perm.size()) == n, "permutation size mismatch");
  const DenseMatrix& l0 = r.load_table();
  std::vector<double> gamma(static_cast<std::size_t>(nc), 0.0);
  for (int s = 0; s < n; ++s) {
    const auto sigma = channel_translation(t, s);
    const int e = t.offset(s, perm[s]);
    const double* row = l0.row(e);
    for (int c = 0; c < nc; ++c) {
      if (row[c] != 0.0) gamma[sigma[c]] += row[c];
    }
  }
  return gamma;
}

double max_channel_load(const TorusRouting& r, const TrafficMatrix& lambda) {
  // Torus channels all have unit bandwidth, so gamma_max is a plain max.
  const auto gamma = channel_loads(r, lambda);
  return *std::max_element(gamma.begin(), gamma.end());
}

double max_channel_load(const TorusRouting& r, const std::vector<int>& perm) {
  const auto gamma = channel_loads(r, perm);
  return *std::max_element(gamma.begin(), gamma.end());
}

double throughput(const TorusRouting& r, const TrafficMatrix& lambda) {
  return 1.0 / max_channel_load(r, lambda);
}

double uniform_max_load(const TorusRouting& r) {
  // Under uniform traffic the load on a channel equals the class-average of
  // the canonical table: gamma = (1/N) sum_e sum_{c in class} L0[e][c].
  const Torus& t = r.torus();
  const DenseMatrix& l0 = r.load_table();
  double best = 0.0;
  for (int dir = 0; dir < kNumDirs; ++dir) {
    double sum = 0.0;
    for (int e = 0; e < t.num_nodes(); ++e) {
      for (int n = 0; n < t.num_nodes(); ++n) sum += l0(e, 4 * n + dir);
    }
    best = std::max(best, sum / t.num_nodes());
  }
  return best;
}

double uniform_capacity_fraction(const TorusRouting& r) {
  return r.torus().ideal_uniform_load() / uniform_max_load(r);
}

}  // namespace tcr
