#include "tcr/metrics/average_case.hpp"

#include "tcr/metrics/loads.hpp"
#include "tcr/util/check.hpp"

namespace tcr {

AverageCaseResult average_case(const TorusRouting& r,
                               const std::vector<TrafficMatrix>& samples, ThreadPool* pool) {
  TCR_REQUIRE(!samples.empty(), "need at least one traffic sample");
  r.load_table();  // force the cache before any parallel section
  const int count = static_cast<int>(samples.size());
  std::vector<double> gmax(samples.size());
  auto body = [&](int i) { gmax[i] = max_channel_load(r, samples[i]); };
  if (pool != nullptr) {
    ThreadPool::parallel_for(*pool, count, body);
  } else {
    for (int i = 0; i < count; ++i) body(i);
  }
  AverageCaseResult res;
  for (double g : gmax) {
    res.mean_max_load += g;
    res.true_throughput += 1.0 / g;
  }
  res.mean_max_load /= count;
  res.true_throughput /= count;
  res.approx_throughput = 1.0 / res.mean_max_load;
  return res;
}

double average_capacity_fraction(const TorusRouting& r,
                                 const std::vector<TrafficMatrix>& samples, ThreadPool* pool) {
  return r.torus().ideal_uniform_load() * average_case(r, samples, pool).approx_throughput;
}

}  // namespace tcr
