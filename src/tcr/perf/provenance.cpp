#include "tcr/perf/provenance.hpp"

#include <fstream>

// Injected per-file by src/CMakeLists.txt so editing them never rebuilds the
// whole library.
#ifndef TCR_GIT_SHA
#define TCR_GIT_SHA "unknown"
#endif
#ifndef TCR_BUILD_TYPE
#define TCR_BUILD_TYPE "unknown"
#endif
#ifndef TCR_CXX_FLAGS
#define TCR_CXX_FLAGS ""
#endif

namespace tcr::perf {

namespace {

std::string detect_compiler() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string detect_cpu_model() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) break;
      std::size_t begin = colon + 1;
      while (begin < line.size() && line[begin] == ' ') ++begin;
      return line.substr(begin);
    }
  }
  return "unknown";
}

}  // namespace

const std::string& cpu_model() {
  static const std::string model = detect_cpu_model();
  return model;
}

const std::string& build_git_sha() {
  static const std::string sha = TCR_GIT_SHA;
  return sha;
}

obs::Json provenance_json() {
  static const std::string compiler = detect_compiler();
  auto j = obs::Json::object();
  j.set("git_sha", build_git_sha())
      .set("compiler", compiler)
      .set("build_type", TCR_BUILD_TYPE)
      .set("cxx_flags", TCR_CXX_FLAGS)
      .set("cpu", cpu_model());
  return j;
}

}  // namespace tcr::perf
