// Link-optional allocation accounting: replaces the global operator
// new/delete family with malloc/free wrappers that bump the inline atomic
// counters in perf.hpp (two relaxed adds per allocation). Built as its own
// static library (`tcr_alloc_hook`) so binaries opt in at link time — the
// bench CLIs and tools link it, the unit tests (except test_perf) do not,
// which keeps test_trace's own zero-allocation operator-new override
// conflict-free.
//
// Every allocation is funneled through malloc/aligned_alloc + free, so the
// sanitizer jobs keep their malloc-level interception (ASan poisoning, leak
// detection) — only new/delete mismatch pairs collapse into malloc/free,
// which is the documented tradeoff of any counting replacement.
#include <cstdlib>
#include <new>

#include "tcr/perf/perf.hpp"

namespace {

// Pulled into the link iff some object references operator new (i.e. always
// in practice); flags the accounting as live for perf::alloc_hook_active().
const bool g_installed = [] {
  tcr::perf::detail::g_alloc_hook_active.store(true, std::memory_order_relaxed);
  return true;
}();

void* counted_alloc(std::size_t size) noexcept {
  tcr::perf::detail::note_alloc(size);
  // malloc(0) may return nullptr; operator new must return a unique pointer.
  return std::malloc(size != 0 ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  tcr::perf::detail::note_alloc(size);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size != 0 ? size : align) != 0) return nullptr;
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  tcr::perf::detail::note_free();
  std::free(p);
}

[[noreturn]] void throw_bad_alloc() { throw std::bad_alloc(); }

}  // namespace

void* operator new(std::size_t size) {
  (void)g_installed;
  void* p = counted_alloc(size);
  if (p == nullptr) throw_bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw_bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw_bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw_bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  counted_free(p);
}
