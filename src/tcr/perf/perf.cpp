#include "tcr/perf/perf.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include "tcr/trace/tracer.hpp"
#include "tcr/util/stopwatch.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif
#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace tcr::perf {

namespace {

// ---------------------------------------------------------------------------
// perf_event backend: four user-space counters opened individually (not as a
// PERF_FORMAT_GROUP) so each can fail independently — VMs without a vPMU
// reject PERF_TYPE_HARDWARE with ENOENT while others may only miss
// cache/branch counters — and so inherit=1 works on every kernel (inherited
// events historically refuse group reads). inherit covers threads spawned
// after start(), which is why benches start the sampler before building
// their ThreadPool.
// ---------------------------------------------------------------------------

constexpr int kNumHw = 4;  // cycles, instructions, cache-misses, branch-misses

struct Backend {
  bool perf_event = false;  // at least the cycles counter is live
  int fd[kNumHw] = {-1, -1, -1, -1};
  double inject_scale = 1.0;
};

// All mutable backend state behind one mutex; the hot path never takes it
// (collecting() is the lone relaxed atomic).
std::mutex g_mu;
Backend g_backend;

#if defined(__linux__)
int open_hw_counter(std::uint64_t config_id) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = config_id;
  attr.disabled = 0;
  attr.inherit = 1;  // count threads spawned after the open
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0));
}
#endif

void close_backend(Backend* b) {
#if defined(__linux__)
  for (int& fd : b->fd) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
#endif
  b->perf_event = false;
}

void open_backend(Backend* b, const PerfConfig& config) {
  close_backend(b);
  b->inject_scale = config.inject_scale > 0.0 ? config.inject_scale : 1.0;
  if (config.force_rusage) return;
#if defined(__linux__)
  static constexpr std::uint64_t kConfigs[kNumHw] = {
      PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS, PERF_COUNT_HW_CACHE_MISSES,
      PERF_COUNT_HW_BRANCH_MISSES};
  for (int i = 0; i < kNumHw; ++i) b->fd[i] = open_hw_counter(kConfigs[i]);
  // The backend counts as perf_event only when the cycles counter opened;
  // anything less and the rusage numbers are the trustworthy story.
  if (b->fd[0] < 0) {
    close_backend(b);
    return;
  }
  b->perf_event = true;
#endif
}

/// Current value of one hardware counter fd; 0 on any read failure (the
/// delta then stays non-negative garbage-free because both ends read 0).
std::int64_t read_hw(int fd) {
#if defined(__linux__)
  if (fd < 0) return 0;
  std::uint64_t v = 0;
  if (read(fd, &v, sizeof(v)) != static_cast<ssize_t>(sizeof(v))) return 0;
  return static_cast<std::int64_t>(v);
#else
  (void)fd;
  return 0;
#endif
}

struct RusageReading {
  double cpu_s = 0.0;
  std::int64_t minor_faults = 0;
  std::int64_t major_faults = 0;
  std::int64_t vol_ctx = 0;
  std::int64_t invol_ctx = 0;
  std::int64_t max_rss_kb = 0;
};

RusageReading read_rusage() {
  RusageReading r;
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    const auto tv_seconds = [](const timeval& tv) {
      return static_cast<double>(tv.tv_sec) + 1e-6 * static_cast<double>(tv.tv_usec);
    };
    r.cpu_s = tv_seconds(ru.ru_utime) + tv_seconds(ru.ru_stime);
    r.minor_faults = ru.ru_minflt;
    r.major_faults = ru.ru_majflt;
    r.vol_ctx = ru.ru_nvcsw;
    r.invol_ctx = ru.ru_nivcsw;
    r.max_rss_kb = ru.ru_maxrss;  // Linux reports KB
  }
#endif
  return r;
}

/// Peak RSS in KB from /proc/self/status (VmHWM), falling back to the
/// getrusage value when procfs is unavailable (non-Linux, hidepid mounts).
std::int64_t peak_rss_kb(std::int64_t rusage_fallback_kb) {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::int64_t kb = 0;
      if (fields >> kb) return kb;
    }
  }
  return rusage_fallback_kb;
}

std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::int64_t process_peak_rss_kb() {
  return peak_rss_kb(read_rusage().max_rss_kb);
}

Sample scale_sample(Sample s, double factor) {
  const auto scale = [factor](std::int64_t v) {
    return v < 0 ? v : static_cast<std::int64_t>(static_cast<double>(v) * factor);
  };
  s.wall_ns = scale(s.wall_ns);
  s.cpu_ns = scale(s.cpu_ns);
  s.cycles = scale(s.cycles);
  s.instructions = scale(s.instructions);
  s.cache_misses = scale(s.cache_misses);
  s.branch_misses = scale(s.branch_misses);
  return s;
}

void start(const PerfConfig& config) {
  PerfConfig cfg = config;
  if (const char* env = std::getenv("TCR_PERF_FORCE_RUSAGE");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    cfg.force_rusage = true;
  }
  if (const char* env = std::getenv("TCR_PERF_INJECT_SCALE"); env != nullptr) {
    const double scale = std::atof(env);
    if (scale > 0.0) cfg.inject_scale = scale;
  }
  std::lock_guard<std::mutex> lock(g_mu);
  open_backend(&g_backend, cfg);
  detail::g_collecting.store(true, std::memory_order_relaxed);
}

void stop() {
  std::lock_guard<std::mutex> lock(g_mu);
  detail::g_collecting.store(false, std::memory_order_relaxed);
  close_backend(&g_backend);
}

std::string source() {
  if (!collecting()) return "off";
  std::lock_guard<std::mutex> lock(g_mu);
  return g_backend.perf_event ? "perf_event" : "rusage";
}

PhaseSampler::PhaseSampler() { reset(); }

void PhaseSampler::reset() {
  active_ = collecting();
  if (!active_) return;
  const RusageReading ru = read_rusage();
  base_.wall_ns = wall_now_ns();
  base_.cpu_s = ru.cpu_s;
  base_.minor_faults = ru.minor_faults;
  base_.major_faults = ru.major_faults;
  base_.vol_ctx = ru.vol_ctx;
  base_.invol_ctx = ru.invol_ctx;
  base_.alloc_count = detail::g_alloc_count.load(std::memory_order_relaxed);
  base_.alloc_bytes = detail::g_alloc_bytes.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_mu);
  for (int i = 0; i < kNumHw; ++i) base_.hw[i] = read_hw(g_backend.fd[i]);
}

Sample PhaseSampler::sample() const {
  Sample s;
  if (!active_ || !collecting()) {
    s.source = "off";
    return s;
  }
  const RusageReading ru = read_rusage();
  s.wall_ns = wall_now_ns() - base_.wall_ns;
  s.cpu_ns = static_cast<std::int64_t>((ru.cpu_s - base_.cpu_s) * 1e9);
  s.minor_faults = ru.minor_faults - base_.minor_faults;
  s.major_faults = ru.major_faults - base_.major_faults;
  s.vol_ctx_switches = ru.vol_ctx - base_.vol_ctx;
  s.invol_ctx_switches = ru.invol_ctx - base_.invol_ctx;
  s.max_rss_kb = peak_rss_kb(ru.max_rss_kb);
  s.alloc_count = detail::g_alloc_count.load(std::memory_order_relaxed) - base_.alloc_count;
  s.alloc_bytes = detail::g_alloc_bytes.load(std::memory_order_relaxed) - base_.alloc_bytes;
  double inject = 1.0;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    s.source = g_backend.perf_event ? "perf_event" : "rusage";
    if (g_backend.perf_event) {
      const std::int64_t cyc = read_hw(g_backend.fd[0]) - base_.hw[0];
      s.cycles = cyc >= 0 ? cyc : 0;
      const auto optional_hw = [this](int i, int fd) {
        return fd >= 0 ? read_hw(fd) - base_.hw[i] : -1;
      };
      s.instructions = optional_hw(1, g_backend.fd[1]);
      s.cache_misses = optional_hw(2, g_backend.fd[2]);
      s.branch_misses = optional_hw(3, g_backend.fd[3]);
    }
    inject = g_backend.inject_scale;
  }
  if (inject != 1.0) return scale_sample(std::move(s), inject);
  return s;
}

obs::Json Sample::to_json() const {
  auto j = obs::Json::object();
  j.set("source", source).set("wall_ns", wall_ns).set("cpu_ns", cpu_ns);
  if (cycles >= 0) j.set("cycles", cycles);
  if (instructions >= 0) j.set("instructions", instructions);
  if (cache_misses >= 0) j.set("cache_misses", cache_misses);
  if (branch_misses >= 0) j.set("branch_misses", branch_misses);
  j.set("max_rss_kb", max_rss_kb)
      .set("minor_faults", minor_faults)
      .set("major_faults", major_faults)
      .set("vol_ctx_switches", vol_ctx_switches)
      .set("invol_ctx_switches", invol_ctx_switches)
      .set("alloc_count", alloc_count)
      .set("alloc_bytes", alloc_bytes);
  return j;
}

SpanSample::~SpanSample() {
  if (!sampler_.active()) return;
  const Sample s = sampler_.sample();
  span_->attr("perf.source", s.source);
  span_->attr("perf.cpu_ns", s.cpu_ns);
  if (s.cycles >= 0) span_->attr("perf.cycles", s.cycles);
  if (s.instructions >= 0) span_->attr("perf.instructions", s.instructions);
  if (s.cache_misses >= 0) span_->attr("perf.cache_misses", s.cache_misses);
  span_->attr("perf.alloc_count", s.alloc_count);
  span_->attr("perf.alloc_bytes", s.alloc_bytes);
}

}  // namespace tcr::perf
