// tcr::perf — hardware-counter phase sampling with graceful degradation.
//
// The measurement substrate for the repo's speed claims: every bench phase
// (and any trace span that opts in) can be annotated with microarchitectural
// counts, not just wall-clock. Model, in order of importance:
//
//   * near-zero cost when nobody is looking: collecting() is one relaxed
//     atomic load, so a SpanSample at a disabled call site costs one branch
//     (pinned by BM_PerfSpanSampleDisabled and CI's overhead-ratio guard);
//   * graceful degradation: start() tries a perf_event_open counter set
//     (cycles, instructions, cache-misses, branch-misses; user-space only,
//     inherited by threads spawned afterwards). Containers and CI runners
//     routinely refuse the syscall or lack a PMU (perf_event_paranoid,
//     seccomp, VMs without vPMU) — then the sampler degrades to the
//     getrusage / /proc/self/status backend (CPU time, peak RSS, page
//     faults, context switches) and Sample::source says which backend ran,
//     so downstream tooling never mistakes one machine's rusage numbers for
//     another's cycle counts;
//   * allocation accounting rides along: binaries that link the
//     `tcr_alloc_hook` library get process-wide operator new/delete
//     counting (two relaxed atomic adds per allocation); the counters are
//     inline atomics here so the hook stays link-optional.
//
// Consumers: bench::JsonOutput (--perf flag) attaches a per-point `perf`
// block to the schema-v1 records, SpanSample attaches counter attrs to
// sweep.point trace spans, and tools/tcr_perf.cpp turns the recorded blocks
// into an append-only BENCH_history store with regression gating
// (perf/history.hpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "tcr/obs/json.hpp"

namespace tcr::trace {
class Span;
}

namespace tcr::perf {

namespace detail {
// Global collection flag outside any singleton so the disabled fast path is
// one relaxed load (same idiom as trace::detail::g_enabled).
inline std::atomic<bool> g_collecting{false};

// Allocation accounting, fed by the link-optional tcr_alloc_hook library's
// operator new/delete replacements. Inline atomics: the hook references
// them without creating an archive-order dependency on libtcr.
inline std::atomic<std::int64_t> g_alloc_count{0};
inline std::atomic<std::int64_t> g_alloc_bytes{0};
inline std::atomic<std::int64_t> g_free_count{0};
inline std::atomic<bool> g_alloc_hook_active{false};

inline void note_alloc(std::size_t bytes) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(static_cast<std::int64_t>(bytes), std::memory_order_relaxed);
}
inline void note_free() noexcept { g_free_count.fetch_add(1, std::memory_order_relaxed); }
}  // namespace detail

/// Is the process-wide sampler collecting? One relaxed atomic load.
inline bool collecting() noexcept {
  return detail::g_collecting.load(std::memory_order_relaxed);
}

/// True when the program linked tcr_alloc_hook (operator new/delete are
/// counted). When false, the alloc_* fields of every Sample stay 0.
inline bool alloc_hook_active() noexcept {
  return detail::g_alloc_hook_active.load(std::memory_order_relaxed);
}

struct PerfConfig {
  /// Skip perf_event_open entirely and use the rusage backend — what a
  /// refused syscall degrades to anyway. Env override: TCR_PERF_FORCE_RUSAGE=1.
  bool force_rusage = false;
  /// Test hook: multiply the time/cycle-like quantities of every Sample by
  /// this factor, so the regression gate can be proven to fire on a
  /// synthetic 2x slowdown without actually slowing the binaries down
  /// (mirrors the tcr::fault injection idiom). Env override:
  /// TCR_PERF_INJECT_SCALE=<double>. Allocation, RSS and fault counts are
  /// never scaled.
  double inject_scale = 1.0;
};

/// One phase's measured quantities. All fields are deltas over the phase
/// except max_rss_kb, which is the process high-water mark (monotone).
/// Hardware fields are -1 when the active backend has no such counter.
struct Sample {
  std::string source;  ///< "perf_event", "rusage", or "off"
  std::int64_t wall_ns = 0;
  std::int64_t cpu_ns = 0;  ///< user + system, via getrusage (both backends)

  // perf_event backend only (-1 = counter unavailable):
  std::int64_t cycles = -1;
  std::int64_t instructions = -1;
  std::int64_t cache_misses = -1;
  std::int64_t branch_misses = -1;

  // getrusage / /proc/self/status (both backends):
  std::int64_t max_rss_kb = 0;  ///< peak RSS (VmHWM; ru_maxrss fallback)
  std::int64_t minor_faults = 0;
  std::int64_t major_faults = 0;
  std::int64_t vol_ctx_switches = 0;
  std::int64_t invol_ctx_switches = 0;

  // tcr_alloc_hook (zeros when the hook is not linked):
  std::int64_t alloc_count = 0;
  std::int64_t alloc_bytes = 0;

  /// The `perf` block of a bench record: every field above, hardware
  /// counters included only when available (>= 0).
  obs::Json to_json() const;
};

/// `s` with its time/cycle-like quantities (wall_ns, cpu_ns, cycles,
/// instructions, cache_misses, branch_misses) multiplied by `factor`;
/// allocation, RSS, fault and context-switch counts pass through untouched.
/// This is the whole of what PerfConfig::inject_scale does, exposed pure so
/// tests can pin it.
Sample scale_sample(Sample s, double factor);

/// Current peak RSS of the process in KB (VmHWM from /proc/self/status,
/// getrusage fallback). Independent of collecting() — guard::CancelToken
/// polls this for its memory budget.
std::int64_t process_peak_rss_kb();

/// Start process-wide collection: opens the counter backend (perf_event
/// first unless forced to rusage, which is also what any open failure
/// degrades to) and flips the collecting flag. Reads the TCR_PERF_* env
/// overrides documented on PerfConfig. Idempotent: a second start() reopens
/// with the new config.
void start(const PerfConfig& config = {});

/// Stop collecting and close any counter fds.
void stop();

/// Name of the active backend ("perf_event" | "rusage"), or "off".
std::string source();

/// Phase sampler: captures a baseline reading at construction (or reset())
/// and returns the delta on sample(). Constructing while !collecting()
/// yields an inert sampler whose sample() is all-zero with source "off".
/// Reading costs a getrusage call plus one read() per open counter fd —
/// meant for bench-phase granularity, not per-iteration hot loops.
class PhaseSampler {
 public:
  PhaseSampler();

  /// Quantities accumulated since construction / the last reset().
  Sample sample() const;

  /// Re-baseline, so the next sample() covers exactly the work since this
  /// call (bench::JsonOutput resets after every point record, mirroring the
  /// obs registry reset).
  void reset();

  /// False when the sampler was constructed while collecting() was off.
  bool active() const noexcept { return active_; }

 private:
  struct Baseline {
    std::int64_t wall_ns = 0;
    double cpu_s = 0.0;
    std::int64_t hw[4] = {0, 0, 0, 0};
    std::int64_t minor_faults = 0;
    std::int64_t major_faults = 0;
    std::int64_t vol_ctx = 0;
    std::int64_t invol_ctx = 0;
    std::int64_t alloc_count = 0;
    std::int64_t alloc_bytes = 0;
  };
  bool active_ = false;
  Baseline base_;
};

/// RAII adapter attaching one phase's counters to an existing trace::Span
/// as `perf.*` attributes (perf.cpu_ns, perf.cycles, ...). One relaxed load
/// and branch when collecting() is off; attrs are dropped silently when the
/// span itself is untraced (Span::attr no-ops). Used on the sweep.point
/// spans in core/tradeoff.cpp.
class SpanSample {
 public:
  explicit SpanSample(trace::Span& span) : span_(&span) {}
  SpanSample(const SpanSample&) = delete;
  SpanSample& operator=(const SpanSample&) = delete;
  ~SpanSample();

 private:
  trace::Span* span_;
  PhaseSampler sampler_;  // inert (one branch) unless collecting()
};

}  // namespace tcr::perf
