// Build/run provenance for perf records: which code, compiler, and machine
// produced a measurement. Written into every bench's --json meta header and
// copied into BENCH_history entries so the regression gate can refuse to
// compare cycle counts across different CPUs or compilers.
#pragma once

#include <string>

#include "tcr/obs/json.hpp"

namespace tcr::perf {

/// Provenance of this binary and host:
///   {"git_sha":    configure-time `git rev-parse` (stale between a commit
///                  and the next reconfigure; tcr-perf append --commit is
///                  the authoritative history key),
///    "compiler":   e.g. "gcc 12.2.0",
///    "build_type": CMAKE_BUILD_TYPE,
///    "cxx_flags":  CMAKE_CXX_FLAGS as configured,
///    "cpu":        /proc/cpuinfo model name ("unknown" off-Linux)}
obs::Json provenance_json();

/// The "cpu" field alone (cached after the first /proc/cpuinfo read).
const std::string& cpu_model();

/// The configure-time git SHA ("unknown" when the source tree was not a git
/// checkout at configure time).
const std::string& build_git_sha();

}  // namespace tcr::perf
