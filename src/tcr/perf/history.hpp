// The benchmark-history store and regression detector behind tools/
// tcr_perf.cpp, split out (like trace/analysis) so the logic is
// unit-testable.
//
// BENCH_history.json is an append-only JSON-lines store: one entry per
// ingested run, keyed by (bench, config, commit):
//
//   {"schema_version":1,"kind":"perf_entry","bench":"fig1_wc_tradeoff",
//    "config":"chains=0,k=4,points=5,...","commit":"a1b2c3d4e5f6",
//    "source":"rusage","recorded_unix":1754640000,
//    "provenance":{"git_sha":...,"compiler":...,"cpu":...},
//    "quantities":{"perf.cpu_ns":1.2e9,"perf.alloc_bytes":3.4e8,...}}
//
// Repeats are simply multiple entries under the same key; every consumer
// aggregates them with the median, so one descheduled run cannot fake a
// regression (noise model: median-of-N + per-quantity ratio thresholds +
// absolute floors + machine-sensitivity classes, all in GatePolicy).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tcr/obs/json.hpp"
#include "tcr/report/schema.hpp"

namespace tcr::perf {

inline constexpr int kHistorySchemaVersion = 1;

/// One history entry: the per-run totals of every perf quantity.
struct HistoryEntry {
  std::string bench;
  std::string config;  ///< canonical_config() of the run's resolved params
  std::string commit;
  std::string source;  ///< backend that measured ("perf_event"|"rusage"|"")
  std::int64_t recorded_unix = 0;  ///< seconds since epoch; 0 = unknown
  obs::Json provenance = obs::Json::object();
  std::map<std::string, double> quantities;  ///< name -> value ("perf.cpu_ns", ...)
};

/// Canonical config key of a run's resolved CLI params: "k=4,points=5,..."
/// with keys sorted, so the same parameters always map to the same history
/// key regardless of flag order.
std::string canonical_config(const obs::Json& params);

/// Distill one schema-v1 bench run (whose point records carry `perf`
/// blocks) into a history entry: delta quantities are summed across points,
/// max_rss_kb takes the max (it is a process high-water mark). Returns
/// false (with *error) when no record carries a perf block — the run was
/// made without --perf.
bool entry_from_run(const report::BenchRun& run, HistoryEntry* out, std::string* error);

/// Entries from a google-benchmark --benchmark_format=json document: one
/// entry per benchmark name (bench "micro_kernels", config = the benchmark
/// name), quantities perf.real_ns / perf.cpu_ns taken as the minimum across
/// `iteration` runs — the standard noise-robust statistic for
/// microbenchmarks.
bool entries_from_google_benchmark(const obs::Json& doc, std::vector<HistoryEntry>* out,
                                   std::string* error);

/// Load a history file (JSON-lines of perf_entry records, file order
/// preserved — append order is the trajectory). A missing file yields an
/// empty history and true when `allow_missing`.
bool load_history(const std::string& path, std::vector<HistoryEntry>* out, std::string* error,
                  bool allow_missing = false);

/// Append entries to the store (append-only: existing lines are never
/// rewritten).
bool append_history(const std::string& path, const std::vector<HistoryEntry>& entries,
                    std::string* error);

// ---------------------------------------------------------------------------
// Aggregation and gating
// ---------------------------------------------------------------------------

/// Median over repeats of one (bench, config, commit) key.
struct KeyStats {
  std::string bench, config, commit;
  int repeats = 0;
  obs::Json provenance = obs::Json::object();  ///< from the last repeat
  std::map<std::string, double> median;
};

/// Group entries by (bench, config, commit) and take per-quantity medians.
/// Keys come back in first-appearance order (history order = trajectory).
std::vector<KeyStats> median_by_key(const std::vector<HistoryEntry>& entries);

/// Noise model of the gate. A candidate median regresses a quantity when
///   candidate > threshold(quantity) * baseline  AND  baseline >= floor,
/// where the threshold comes from the quantity's class (time-like counters
/// are tighter than cache/fault counts, allocation counts are near-
/// deterministic) and the floor suppresses ratios of tiny, noise-dominated
/// baselines. Time-, cache- and RSS-like quantities are additionally
/// machine-sensitive: they are skipped (not gated) when the two sides'
/// provenance shows a different CPU model or compiler, because a cycle
/// count measured on another machine is not a baseline, it is a different
/// experiment. Allocation counts only require the same compiler.
struct GatePolicy {
  double time_ratio = 1.40;   ///< wall/cpu/cycles/instructions/real
  double noisy_ratio = 2.00;  ///< cache/branch misses, faults, ctx switches
  double alloc_ratio = 1.10;  ///< alloc_count / alloc_bytes
  double rss_ratio = 1.30;    ///< max_rss_kb
  double time_floor_ns = 1e6;  ///< ignore sub-millisecond time baselines
  double count_floor = 1000;   ///< ignore tiny count baselines
  std::map<std::string, double> per_quantity;  ///< name -> ratio overrides
};

/// Quantity classes for thresholds and machine-sensitivity.
enum class QuantityClass { Time, Noisy, Alloc, Rss };
QuantityClass classify_quantity(const std::string& name);
double threshold_for(const GatePolicy& policy, const std::string& name);

struct GateFinding {
  enum class Verdict {
    Pass,
    Regressed,
    SkippedMachine,  ///< provenance mismatch (cpu/compiler) for this class
    SkippedFloor,    ///< baseline below the noise floor
    Missing,         ///< quantity absent on one side
  };
  std::string bench, config, quantity;
  double baseline = 0.0;
  double candidate = 0.0;
  double ratio = 0.0;  ///< candidate / baseline (0 when not comparable)
  double threshold = 0.0;
  Verdict verdict = Verdict::Pass;
};

/// Compare candidate medians against baseline medians with matching
/// (bench, config) keys. Candidate keys with no baseline produce a single
/// Missing finding (new benches are not regressions). Findings are ordered
/// worst-first: regressions, then passes/skips.
std::vector<GateFinding> gate(const std::vector<KeyStats>& baseline,
                              const std::vector<KeyStats>& candidate,
                              const GatePolicy& policy = {});

/// True when any finding is a regression.
bool any_regression(const std::vector<GateFinding>& findings);

/// Markdown perf-trajectory report: one section per (bench, config), one
/// row per commit in history order with median quantities and the ratio to
/// the previous commit's median.
std::string markdown_report(const std::vector<HistoryEntry>& entries);

}  // namespace tcr::perf
