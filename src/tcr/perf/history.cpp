#include "tcr/perf/history.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tcr/report/json_reader.hpp"

namespace tcr::perf {

namespace {

/// Quantities that are process high-water marks rather than per-point
/// deltas: aggregated with max, not sum.
bool is_high_water(const std::string& name) {
  return name.find("rss") != std::string::npos;
}

std::string fmt_compact(double v) {
  std::ostringstream os;
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os.precision(6);
    os << v;
  }
  return os.str();
}

/// Humanized value for the markdown report.
std::string fmt_quantity(const std::string& name, double v) {
  const auto num = [](double x, int prec) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(prec);
    os << x;
    return os.str();
  };
  if (name.find("_ns") != std::string::npos) {
    if (v >= 1e9) return num(v / 1e9, 2) + " s";
    if (v >= 1e6) return num(v / 1e6, 1) + " ms";
    if (v >= 1e3) return num(v / 1e3, 1) + " us";
    return num(v, 0) + " ns";
  }
  if (name.find("bytes") != std::string::npos) {
    if (v >= 1 << 20) return num(v / (1 << 20), 1) + " MiB";
    if (v >= 1 << 10) return num(v / (1 << 10), 1) + " KiB";
    return num(v, 0) + " B";
  }
  if (name.find("rss_kb") != std::string::npos) return num(v / 1024.0, 1) + " MiB";
  if (v >= 1e9) return num(v / 1e9, 2) + "G";
  if (v >= 1e6) return num(v / 1e6, 2) + "M";
  if (v >= 1e3) return num(v / 1e3, 1) + "k";
  return fmt_compact(v);
}

/// NUL-joined grouping key. Appends are two-step (no `a + b + c` chains):
/// GCC 12's -Wrestrict misfires on appending concatenated temporaries
/// (PR105651), same workaround as tools/tcr_repro.cpp.
std::string join_key(const std::string& a, const std::string& b) {
  std::string key = a;
  key += '\0';
  key += b;
  return key;
}

std::string join_key(const std::string& a, const std::string& b, const std::string& c) {
  std::string key = join_key(a, b);
  key += '\0';
  key += c;
  return key;
}

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

std::string provenance_field(const obs::Json& prov, const std::string& key) {
  const obs::Json* v = prov.find(key);
  return v != nullptr ? v->as_string() : std::string();
}

/// Machine comparability for one quantity class. Empty fields (old entries,
/// unknown hosts) compare equal so hand-written fixtures stay gateable.
bool provenance_compatible(QuantityClass cls, const obs::Json& a, const obs::Json& b) {
  const std::string compiler_a = provenance_field(a, "compiler");
  const std::string compiler_b = provenance_field(b, "compiler");
  if (!compiler_a.empty() && !compiler_b.empty() && compiler_a != compiler_b) return false;
  if (cls == QuantityClass::Alloc) return true;  // counts survive a CPU swap
  const std::string cpu_a = provenance_field(a, "cpu");
  const std::string cpu_b = provenance_field(b, "cpu");
  return cpu_a.empty() || cpu_b.empty() || cpu_a == cpu_b;
}

obs::Json entry_to_json(const HistoryEntry& e) {
  auto q = obs::Json::object();
  for (const auto& [name, value] : e.quantities) q.set(name, value);
  auto j = obs::Json::object();
  j.set("schema_version", kHistorySchemaVersion)
      .set("kind", "perf_entry")
      .set("bench", e.bench)
      .set("config", e.config)
      .set("commit", e.commit)
      .set("source", e.source)
      .set("recorded_unix", e.recorded_unix)
      .set("provenance", e.provenance)
      .set("quantities", std::move(q));
  return j;
}

bool entry_from_json(const obs::Json& j, HistoryEntry* out, std::string* error) {
  const obs::Json* kind = j.find("kind");
  if (kind == nullptr || kind->as_string() != "perf_entry") {
    if (error != nullptr) *error = "record is not a kind:\"perf_entry\" object";
    return false;
  }
  const obs::Json* version = j.find("schema_version");
  if (version == nullptr || version->as_int() != kHistorySchemaVersion) {
    if (error != nullptr) *error = "unsupported history schema_version";
    return false;
  }
  const obs::Json* bench = j.find("bench");
  const obs::Json* quantities = j.find("quantities");
  if (bench == nullptr || !bench->is_string() || quantities == nullptr ||
      !quantities->is_object()) {
    if (error != nullptr) *error = "perf_entry lacks bench or quantities";
    return false;
  }
  out->bench = bench->as_string();
  if (const obs::Json* v = j.find("config")) out->config = v->as_string();
  if (const obs::Json* v = j.find("commit")) out->commit = v->as_string();
  if (const obs::Json* v = j.find("source")) out->source = v->as_string();
  if (const obs::Json* v = j.find("recorded_unix")) out->recorded_unix = v->as_int();
  if (const obs::Json* v = j.find("provenance")) out->provenance = *v;
  out->quantities.clear();
  for (const auto& [name, value] : quantities->items()) {
    if (value.is_number()) out->quantities[name] = value.as_number();
  }
  return true;
}

}  // namespace

std::string canonical_config(const obs::Json& params) {
  std::vector<std::pair<std::string, std::string>> kv;
  for (const auto& [key, value] : params.items()) {
    kv.emplace_back(key, value.is_string() ? value.as_string() : value.dump());
  }
  std::sort(kv.begin(), kv.end());
  std::string out;
  for (const auto& [key, value] : kv) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

bool entry_from_run(const report::BenchRun& run, HistoryEntry* out, std::string* error) {
  out->bench = run.bench;
  out->config = canonical_config(run.params);
  out->provenance = run.provenance;
  out->quantities.clear();
  out->source.clear();
  int blocks = 0;
  for (const report::BenchRecord& rec : run.records) {
    if (!rec.perf.is_object()) continue;
    ++blocks;
    for (const auto& [name, value] : rec.perf.items()) {
      if (name == "source") {
        const std::string& src = value.as_string();
        if (out->source.empty()) {
          out->source = src;
        } else if (out->source != src) {
          out->source = "mixed";
        }
        continue;
      }
      if (!value.is_number()) continue;
      const std::string key = "perf." + name;
      double& slot = out->quantities[key];
      slot = is_high_water(name) ? std::max(slot, value.as_number())
                                 : slot + value.as_number();
    }
  }
  if (blocks == 0) {
    if (error != nullptr) {
      *error = "run of bench '" + run.bench +
               "' carries no perf blocks (was it recorded with --perf?)";
    }
    return false;
  }
  return true;
}

bool entries_from_google_benchmark(const obs::Json& doc, std::vector<HistoryEntry>* out,
                                   std::string* error) {
  const obs::Json* benchmarks = doc.find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    if (error != nullptr) *error = "document has no benchmarks array (google-benchmark json?)";
    return false;
  }
  // name -> (real_ns minima, cpu_ns minima) across iteration runs.
  std::map<std::string, std::pair<double, double>> mins;
  std::vector<std::string> order;
  for (const obs::Json& b : benchmarks->elements()) {
    const obs::Json* run_type = b.find("run_type");
    if (run_type != nullptr && run_type->as_string() != "iteration") continue;
    const obs::Json* name = b.find("name");
    const obs::Json* real = b.find("real_time");
    const obs::Json* cpu = b.find("cpu_time");
    if (name == nullptr || real == nullptr) continue;
    double unit = 1.0;  // google-benchmark defaults to ns
    if (const obs::Json* u = b.find("time_unit")) {
      const std::string& s = u->as_string();
      unit = s == "s" ? 1e9 : s == "ms" ? 1e6 : s == "us" ? 1e3 : 1.0;
    }
    const double real_ns = real->as_number() * unit;
    const double cpu_ns = cpu != nullptr ? cpu->as_number() * unit : 0.0;
    auto [it, inserted] = mins.emplace(name->as_string(), std::make_pair(real_ns, cpu_ns));
    if (inserted) {
      order.push_back(it->first);
    } else {
      it->second.first = std::min(it->second.first, real_ns);
      it->second.second = std::min(it->second.second, cpu_ns);
    }
  }
  if (order.empty()) {
    if (error != nullptr) *error = "no iteration runs in the google-benchmark document";
    return false;
  }
  for (const std::string& name : order) {
    HistoryEntry e;
    e.bench = "micro_kernels";
    e.config = name;
    e.quantities["perf.real_ns"] = mins[name].first;
    if (mins[name].second > 0.0) e.quantities["perf.cpu_ns"] = mins[name].second;
    out->push_back(std::move(e));
  }
  return true;
}

bool load_history(const std::string& path, std::vector<HistoryEntry>* out, std::string* error,
                  bool allow_missing) {
  out->clear();
  std::ifstream in(path);
  if (!in) {
    if (allow_missing && !std::filesystem::exists(path)) return true;
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  std::vector<obs::Json> lines;
  std::string err;
  if (!report::parse_json_lines(in, &lines, &err)) {
    if (error != nullptr) *error = path + ": " + err;
    return false;
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    HistoryEntry e;
    if (!entry_from_json(lines[i], &e, &err)) {
      if (error != nullptr) *error = path + ": line " + std::to_string(i + 1) + ": " + err;
      return false;
    }
    out->push_back(std::move(e));
  }
  return true;
}

bool append_history(const std::string& path, const std::vector<HistoryEntry>& entries,
                    std::string* error) {
  std::ofstream out(path, std::ios::app);
  if (!out) {
    if (error != nullptr) *error = "cannot open '" + path + "' for append";
    return false;
  }
  for (const HistoryEntry& e : entries) {
    entry_to_json(e).dump(out);
    out << '\n';
  }
  out.flush();
  if (!out.good()) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

std::vector<KeyStats> median_by_key(const std::vector<HistoryEntry>& entries) {
  // key string -> index into out, preserving first-appearance order.
  std::map<std::string, std::size_t> index;
  std::vector<KeyStats> out;
  std::vector<std::map<std::string, std::vector<double>>> values;
  for (const HistoryEntry& e : entries) {
    const std::string key = join_key(e.bench, e.config, e.commit);
    auto [it, inserted] = index.emplace(key, out.size());
    if (inserted) {
      KeyStats ks;
      ks.bench = e.bench;
      ks.config = e.config;
      ks.commit = e.commit;
      out.push_back(std::move(ks));
      values.emplace_back();
    }
    KeyStats& ks = out[it->second];
    ++ks.repeats;
    ks.provenance = e.provenance;
    for (const auto& [name, value] : e.quantities) values[it->second][name].push_back(value);
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (auto& [name, vals] : values[i]) out[i].median[name] = median_of(std::move(vals));
  }
  return out;
}

QuantityClass classify_quantity(const std::string& name) {
  const auto contains = [&name](const char* needle) {
    return name.find(needle) != std::string::npos;
  };
  if (contains("alloc")) return QuantityClass::Alloc;
  if (contains("rss")) return QuantityClass::Rss;
  if (contains("wall") || contains("cpu") || contains("cycles") || contains("instructions") ||
      contains("real")) {
    return QuantityClass::Time;
  }
  return QuantityClass::Noisy;  // cache/branch misses, faults, ctx switches
}

double threshold_for(const GatePolicy& policy, const std::string& name) {
  const auto it = policy.per_quantity.find(name);
  if (it != policy.per_quantity.end()) return it->second;
  switch (classify_quantity(name)) {
    case QuantityClass::Time: return policy.time_ratio;
    case QuantityClass::Alloc: return policy.alloc_ratio;
    case QuantityClass::Rss: return policy.rss_ratio;
    case QuantityClass::Noisy: return policy.noisy_ratio;
  }
  return policy.noisy_ratio;
}

std::vector<GateFinding> gate(const std::vector<KeyStats>& baseline,
                              const std::vector<KeyStats>& candidate,
                              const GatePolicy& policy) {
  std::map<std::string, const KeyStats*> base_by_key;
  for (const KeyStats& b : baseline) base_by_key[join_key(b.bench, b.config)] = &b;

  std::vector<GateFinding> out;
  for (const KeyStats& cand : candidate) {
    const auto it = base_by_key.find(join_key(cand.bench, cand.config));
    if (it == base_by_key.end()) {
      GateFinding f;
      f.bench = cand.bench;
      f.config = cand.config;
      f.quantity = "*";
      f.verdict = GateFinding::Verdict::Missing;
      out.push_back(std::move(f));
      continue;
    }
    const KeyStats& base = *it->second;
    for (const auto& [name, cand_value] : cand.median) {
      GateFinding f;
      f.bench = cand.bench;
      f.config = cand.config;
      f.quantity = name;
      f.candidate = cand_value;
      f.threshold = threshold_for(policy, name);
      const auto base_it = base.median.find(name);
      if (base_it == base.median.end()) {
        f.verdict = GateFinding::Verdict::Missing;
        out.push_back(std::move(f));
        continue;
      }
      f.baseline = base_it->second;
      const QuantityClass cls = classify_quantity(name);
      if (!provenance_compatible(cls, base.provenance, cand.provenance)) {
        f.verdict = GateFinding::Verdict::SkippedMachine;
        out.push_back(std::move(f));
        continue;
      }
      const double floor =
          cls == QuantityClass::Time ? policy.time_floor_ns : policy.count_floor;
      if (f.baseline < floor) {
        f.verdict = GateFinding::Verdict::SkippedFloor;
        out.push_back(std::move(f));
        continue;
      }
      f.ratio = f.candidate / f.baseline;
      f.verdict = f.ratio > f.threshold ? GateFinding::Verdict::Regressed
                                        : GateFinding::Verdict::Pass;
      out.push_back(std::move(f));
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const GateFinding& a, const GateFinding& b) {
    const auto rank = [](const GateFinding& f) {
      return f.verdict == GateFinding::Verdict::Regressed ? 0 : 1;
    };
    return rank(a) < rank(b);
  });
  return out;
}

bool any_regression(const std::vector<GateFinding>& findings) {
  return std::any_of(findings.begin(), findings.end(), [](const GateFinding& f) {
    return f.verdict == GateFinding::Verdict::Regressed;
  });
}

std::string markdown_report(const std::vector<HistoryEntry>& entries) {
  const std::vector<KeyStats> keys = median_by_key(entries);

  // Group keys by (bench, config) preserving order; within a group the
  // commits are already in history (trajectory) order.
  std::map<std::string, std::vector<const KeyStats*>> groups;
  std::vector<std::string> group_order;
  for (const KeyStats& ks : keys) {
    const std::string key = join_key(ks.bench, ks.config);
    auto [it, inserted] = groups.emplace(key, std::vector<const KeyStats*>{});
    if (inserted) group_order.push_back(key);
    it->second.push_back(&ks);
  }

  // The quantities column set per group: union over commits, stable order.
  std::ostringstream md;
  md << "# Perf trajectory\n";
  for (const std::string& key : group_order) {
    const std::vector<const KeyStats*>& commits = groups[key];
    std::vector<std::string> columns;
    for (const KeyStats* ks : commits) {
      for (const auto& [name, value] : ks->median) {
        (void)value;
        if (std::find(columns.begin(), columns.end(), name) == columns.end()) {
          columns.push_back(name);
        }
      }
    }
    md << "\n## " << commits.front()->bench;
    if (!commits.front()->config.empty()) md << " (" << commits.front()->config << ")";
    md << "\n\n|commit|repeats";
    for (const std::string& c : columns) {
      // Strip the uniform "perf." prefix for readability.
      md << '|' << (c.rfind("perf.", 0) == 0 ? c.substr(5) : c);
    }
    md << "|vs prev|\n|---|---";
    for (std::size_t i = 0; i < columns.size(); ++i) md << "|---";
    md << "|---|\n";
    const KeyStats* prev = nullptr;
    for (const KeyStats* ks : commits) {
      md << '|' << (ks->commit.empty() ? "-" : ks->commit) << '|' << ks->repeats;
      for (const std::string& c : columns) {
        const auto it = ks->median.find(c);
        md << '|' << (it != ks->median.end() ? fmt_quantity(c, it->second) : "-");
      }
      // Headline delta: cpu time (fall back to wall/real) vs previous commit.
      std::string delta = "-";
      for (const char* headline : {"perf.cpu_ns", "perf.wall_ns", "perf.real_ns"}) {
        const auto cur = ks->median.find(headline);
        if (cur == ks->median.end()) continue;
        if (prev != nullptr) {
          const auto was = prev->median.find(headline);
          if (was != prev->median.end() && was->second > 0.0) {
            std::ostringstream ds;
            ds.setf(std::ios::fixed);
            ds.precision(2);
            ds << cur->second / was->second << "x";
            delta = ds.str();
          }
        }
        break;
      }
      md << '|' << delta << "|\n";
      prev = ks;
    }
  }
  return md.str();
}

}  // namespace tcr::perf
