#include "tcr/sim/sharding.hpp"

#include <bit>

#include "tcr/fault/fault.hpp"
#include "tcr/sim/network.hpp"
#include "tcr/obs/registry.hpp"
#include "tcr/util/check.hpp"
#include "tcr/util/thread_pool.hpp"

namespace tcr::sim_detail {

ShardLayout ShardLayout::make(int num_nodes, int num_shards) {
  TCR_REQUIRE(num_shards >= 1, "need at least one shard");
  ShardLayout l;
  l.num_shards = num_shards;
  l.node_begin.resize(num_shards + 1);
  l.shard_of_node.resize(num_nodes);
  for (int s = 0; s < num_shards; ++s) {
    const auto [b, e] = ThreadPool::block_range(num_nodes, num_shards, s);
    l.node_begin[s] = b;
    for (int n = b; n < e; ++n) l.shard_of_node[n] = s;
  }
  l.node_begin[num_shards] = num_nodes;
  return l;
}

void Engine::init(const Torus& t, const TrafficGen& g, const fault::SimFaultPlan* fault_plan,
                  int vcs_, int depth_, int shards_, std::uint64_t seed, int path_stride) {
  torus = &t;
  gen = &g;
  faults = fault_plan;
  vcs = vcs_;
  depth = depth_;
  num_shards = shards_;
  layout = ShardLayout::make(t.num_nodes(), shards_);

  in_channel.resize(static_cast<std::size_t>(t.num_nodes()) * kNumDirs);
  for (int n = 0; n < t.num_nodes(); ++n) {
    for (int d = 0; d < kNumDirs; ++d) {
      // In-channel of n in direction d: the same-direction channel leaving
      // the opposite neighbor.
      const Dir dir = static_cast<Dir>(d);
      const Dir opp = static_cast<Dir>(d ^ 1);
      in_channel[static_cast<std::size_t>(n) * kNumDirs + d] =
          t.channel(t.neighbor(n, opp), dir);
    }
  }
  in_buf.resize(static_cast<std::size_t>(t.num_nodes()) * kNumDirs * vcs_);
  for (int n = 0; n < t.num_nodes(); ++n) {
    for (int d = 0; d < kNumDirs; ++d) {
      const int c = in_channel[static_cast<std::size_t>(n) * kNumDirs + d];
      for (int vc = 0; vc < vcs_; ++vc) {
        in_buf[(static_cast<std::size_t>(n) * kNumDirs + d) * vcs_ + vc] = c * vcs_ + vc;
      }
    }
  }
  node_x.resize(t.num_nodes());
  node_y.resize(t.num_nodes());
  for (int n = 0; n < t.num_nodes(); ++n) {
    node_x[n] = t.x_of(n);
    node_y[n] = t.y_of(n);
  }
  dateline.resize(t.num_channels());
  chan_dst_shard.resize(t.num_channels());
  for (int c = 0; c < t.num_channels(); ++c) {
    dateline[c] = crosses_dateline(t, c) ? 1 : 0;
    chan_dst_shard[c] = layout.shard_of_node[t.channel_dst(c)];
  }

  shards.assign(shards_, ShardState{});
  mailboxes.assign(static_cast<std::size_t>(shards_) * shards_, Mailbox{});
  for (int s = 0; s < shards_; ++s) {
    const int nodes = layout.node_begin[s + 1] - layout.node_begin[s];
    // Steady-state flit population is bounded by the buffer space plus a
    // source-queue allowance; start with a modest reservation and grow.
    shards[s].pool.reset(path_stride, nodes * kNumDirs * depth_);
  }
  rings.reset(t.num_channels() * vcs_, depth_);
  src_queues.reset(t.num_nodes());
  occ.assign(static_cast<std::size_t>(t.num_channels()) * vcs_, 0);
  eject_rr.assign(t.num_nodes(), 0);
  out_rr.assign(t.num_channels(), 0);
  want.assign(static_cast<std::size_t>(t.num_channels()) * vcs_, kWantNone);
  want_src.assign(t.num_nodes(), kWantNone);
  node_rng.clear();
  node_rng.reserve(t.num_nodes());
  for (int n = 0; n < t.num_nodes(); ++n) {
    // One independent stream per node: splitmix64 seeding decorrelates
    // consecutive seeds, so (seed, node) -> stream is deterministic and
    // shard-agnostic.
    node_rng.emplace_back(seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(n + 1));
  }

  cycle = 0;
  injecting = true;
  measuring = false;
}

void Engine::materialize(FlitPool& pool, int n, const Path& path, std::int64_t when,
                         std::uint8_t measured_flag) {
  const Torus& t = *torus;
  const int k = t.k();
  const FlitId f = pool.alloc();
  const auto& canonical = path.channels;
  const int len = static_cast<int>(canonical.size());
  std::int32_t* ch = pool.channels(f);
  // Division-free translate_channel: translate the source node of each
  // canonical channel by n via the coordinate tables (wrap = one
  // conditional subtract; coordinates stay in [0, k)).
  const int tx = node_x[n], ty = node_y[n];
  for (int j = 0; j < len; ++j) {
    const int c = canonical[j];
    const int a = c >> 2;
    int xw = node_x[a] + tx;
    if (xw >= k) xw -= k;
    int yw = node_y[a] + ty;
    if (yw >= k) yw -= k;
    ch[j] = ((xw + k * yw) << 2) | (c & 3);
  }
  assign_vcs_into(t, ch, len, vcs, dateline.data(), pool.vcs(f));
  pool.hop[f] = 0;
  pool.len[f] = len;
  pool.injected_at[f] = when;
  pool.measured[f] = measured_flag;
  src_queues.head[n] = f;
  want_src[n] = ch[0];
}

void Engine::phase1(int s) {
  ShardState& sh = shards[s];
  FlitPool& pool = sh.pool;
  const int node_lo = layout.node_begin[s], node_hi = layout.node_begin[s + 1];

  sh.moved = false;

  // ---- apply staged arrivals from the previous cycle ----
  // Mailboxes in fixed source-shard order, then same-shard moves. Each
  // buffer receives at most one flit per cycle, so this order is fixed by
  // construction — it exists to make the determinism argument local.
  for (int a = 0; a < num_shards; ++a) {
    Mailbox& m = mailboxes[static_cast<std::size_t>(a) * num_shards + s];
    const int stride = pool.stride();
    for (std::size_t i = 0; i < m.items.size(); ++i) {
      const Handoff& h = m.items[i];
      const FlitId f = pool.alloc();
      pool.hop[f] = 0;
      pool.len[f] = h.rem;
      pool.injected_at[f] = h.injected_at;
      pool.measured[f] = h.measured;
      const std::int32_t* ch_src = m.channels.data() + i * static_cast<std::size_t>(stride);
      const std::int8_t* vc_src = m.vcs.data() + i * static_cast<std::size_t>(stride);
      std::int32_t* ch_dst = pool.channels(f);
      std::int8_t* vc_dst = pool.vcs(f);
      for (int j = 0; j < h.rem; ++j) {
        ch_dst[j] = ch_src[j];
        vc_dst[j] = vc_src[j];
      }
      rings.push(h.buf, f);
      if (rings.size(h.buf) == 1) want[h.buf] = next_want(pool, f);
    }
    m.clear();
  }
  for (const ShardState::LocalMove& lm : sh.local_moves) {
    rings.push(lm.buf, lm.flit);
    if (rings.size(lm.buf) == 1) want[lm.buf] = next_want(pool, lm.flit);
  }
  sh.local_moves.clear();

  // ---- injection (one Bernoulli draw per node per cycle) ----
  if (injecting) {
    for (int n = node_lo; n < node_hi; ++n) {
      const auto d = gen->draw(n, node_rng[n]);
      if (!d) continue;
      const std::uint8_t m = measuring ? 1 : 0;
      if (src_queues.empty(n)) {
        materialize(pool, n, *d->canonical, cycle, m);
      } else {
        src_queues.push_backlog(n, {d->canonical, cycle, m});
        ++sh.queued;
      }
      ++sh.injected;
      if (measuring) ++sh.window_injected;
    }
  }

  // ---- ejection: one flit per node per cycle ----
  // The round-robin wrap is a conditional subtract, not `%`: the probe loops
  // run every cycle for every node/channel and a runtime-divisor modulo is a
  // hardware divide — removing it roughly halves the idle per-cycle cost.
  const int eject_slots = kNumDirs * vcs;
  for (int n = node_lo; n < node_hi; ++n) {
    const std::int32_t* bufs = in_buf.data() + static_cast<std::size_t>(n) * eject_slots;
    for (int probe = 0; probe < eject_slots; ++probe) {
      int slot = eject_rr[n] + probe;
      if (slot >= eject_slots) slot -= eject_slots;
      const int buf = bufs[slot];
      if (want[buf] != kWantEject) continue;  // empty, or front still in transit
      const FlitId f = rings.front(buf);
      rings.pop(buf);
      want[buf] = rings.empty(buf) ? kWantNone : next_want(pool, rings.front(buf));
      ++sh.ejected;
      if (measuring) ++sh.window_ejected;
      if (pool.measured[f]) {
        const long lat = static_cast<long>(cycle - pool.injected_at[f]);
        sh.latency_sum += lat;
        ++sh.latency_count;
        run_latency->record(static_cast<double>(lat));
        global_latency->record(static_cast<double>(lat));
      }
      pool.release(f);
      eject_rr[n] = slot + 1 == eject_slots ? 0 : slot + 1;
      sh.moved = true;
      break;
    }
  }

  // ---- publish the post-ejection occupancy snapshot ----
  // Phase-2 capacity checks (any shard) read these as this cycle's credits.
  for (int n = node_lo; n < node_hi; ++n) {
    const std::int32_t* bufs = in_buf.data() + static_cast<std::size_t>(n) * eject_slots;
    for (int i = 0; i < eject_slots; ++i) {
      occ[bufs[i]] = static_cast<std::int16_t>(rings.size(bufs[i]));
    }
  }
}

void Engine::phase2(int s) {
  ShardState& sh = shards[s];
  FlitPool& pool = sh.pool;
  const Torus& t = *torus;
  const int slots = 1 + kNumDirs * vcs;

  // Candidate slot encoding per output channel c at node n = src(c):
  //   0                -> source queue of n
  //   1 + dir*vcs + vc -> input buffer (in-channel dir, vc)
  //
  // The round-robin wrap is a conditional subtract, not `%` — see phase 1.
  for (int n = layout.node_begin[s]; n < layout.node_begin[s + 1]; ++n) {
    // Fault accounting first: link_down_cycles counts faulted
    // (channel, cycle) pairs whether or not traffic is present, so it must
    // not sit behind the empty-node fast path below.
    if (faults != nullptr) {
      for (int d = 0; d < kNumDirs; ++d) {
        if (faults->link_down(t.channel(n, static_cast<Dir>(d)), cycle))
          ++sh.link_down_cycles;
      }
    }
    // One pass over the node's 17 arbitration slots builds a candidate
    // bitmask per output direction (a flit buffered at n can only want one
    // of n's four output channels — `want` IS that channel id). The four
    // channel arbiters below then scan only their own candidates by cyclic
    // bit-scan instead of re-probing all 17 slots each: at saturation this
    // replaces ~68 unpredictable-branch probes per node with 17 loads plus
    // a few bit operations. A node with nothing to send (or only flits
    // awaiting ejection) yields four empty masks and is skipped outright.
    const std::int32_t* bufs = in_buf.data() + static_cast<std::size_t>(n) * (slots - 1);
    std::uint32_t cand[kNumDirs] = {0, 0, 0, 0};
    if (const int w = want_src[n]; w >= 0) cand[w & 3] |= 1u;
    for (int i = 0; i < slots - 1; ++i) {
      if (const int w = want[bufs[i]]; w >= 0) cand[w & 3] |= 1u << (i + 1);
    }
    if ((cand[0] | cand[1] | cand[2] | cand[3]) == 0) continue;

    for (int c = n * kNumDirs; c < (n + 1) * kNumDirs; ++c) {
      std::uint32_t m = cand[c & 3];
      if (m == 0) continue;
      if (faults != nullptr && faults->link_down(c, cycle)) {
        continue;  // link transmits nothing this cycle (counted above)
      }
      const std::uint32_t rr = static_cast<std::uint32_t>(out_rr[c]);
      while (m != 0) {
        // First candidate in cyclic round-robin order from out_rr: the
        // lowest set bit at position >= rr, else the lowest set bit overall.
        const std::uint32_t ge = (m >> rr) << rr;
        const int slot = std::countr_zero(ge != 0 ? ge : m);
        FlitId f;
        int from_buf = -1;
        if (slot == 0) {
          f = src_queues.head[n];
        } else {
          from_buf = bufs[slot - 1];
          f = rings.front(from_buf);
        }
        const int hop = pool.hop[f];
        const int vc_next = pool.vcs(f)[hop];
        const int dbuf = buffer_index(c, vc_next);
        if (occ[dbuf] >= depth) {  // no credit this cycle
          m &= ~(1u << slot);      // try the next candidate in cyclic order
          continue;
        }
        if (faults != nullptr && faults->credit_stalled(c, vc_next, cycle)) {
          ++sh.credit_stalls;
          m &= ~(1u << slot);
          continue;  // downstream reports no credit despite free space
        }

        // Commit the move: pop, advance, stage the push for next phase 1.
        // The slot's successor (promoted queue head / new ring front) is
        // added to the candidate masks so this node's not-yet-arbitrated
        // output channels see it this same cycle, exactly as the probe
        // loops saw a fully re-read slot.
        if (slot == 0) {
          src_queues.head[n] = kNoFlit;
          if (src_queues.has_backlog(n)) {
            const SourceQueues::Pending p = src_queues.pop_backlog(n);
            --sh.queued;
            materialize(pool, n, *p.path, p.injected_at, p.measured);
            cand[want_src[n] & 3] |= 1u;
          } else {
            want_src[n] = kWantNone;
          }
        } else {
          rings.pop(from_buf);
          if (rings.empty(from_buf)) {
            want[from_buf] = kWantNone;
          } else {
            const int w = next_want(pool, rings.front(from_buf));
            want[from_buf] = w;
            if (w >= 0) cand[w & 3] |= 1u << slot;
          }
        }
        pool.hop[f] = hop + 1;
        const int dst_shard = chan_dst_shard[c];
        if (dst_shard == s) {
          sh.local_moves.push_back({dbuf, f});
        } else {
          Mailbox& mb = mailboxes[static_cast<std::size_t>(s) * num_shards + dst_shard];
          const int rem = pool.len[f] - pool.hop[f];
          Handoff h;
          h.buf = dbuf;
          h.rem = rem;
          h.injected_at = pool.injected_at[f];
          h.measured = pool.measured[f];
          mb.items.push_back(h);
          const int stride = pool.stride();
          const std::size_t base = mb.channels.size();
          mb.channels.resize(base + static_cast<std::size_t>(stride));
          mb.vcs.resize(base + static_cast<std::size_t>(stride));
          const std::int32_t* ch = pool.channels(f) + pool.hop[f];
          const std::int8_t* vc = pool.vcs(f) + pool.hop[f];
          for (int j = 0; j < rem; ++j) {
            mb.channels[base + j] = ch[j];
            mb.vcs[base + j] = vc[j];
          }
          pool.release(f);
          ++sh.handoffs;
        }
        out_rr[c] = slot + 1 == slots ? 0 : slot + 1;
        sh.moved = true;
        break;
      }
    }
  }
}

long Engine::live_flits() const {
  long live = 0;
  for (const ShardState& sh : shards) live += sh.pool.live() + sh.queued;
  for (const Mailbox& m : mailboxes) live += static_cast<long>(m.items.size());
  return live;
}

}  // namespace tcr::sim_detail
