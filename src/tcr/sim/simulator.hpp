// Cycle-based flit-level network simulator for k-ary 2-cubes.
//
// Deliberately close to the paper's idealization (§2.1): single-flit
// packets, per-VC input buffering with credit (space) checks, one flit per
// channel per cycle, one ejection per node per cycle, round-robin output
// arbitration. Packets are source-routed along paths sampled from an
// oblivious routing algorithm and carry the VC schedule computed by
// assign_vcs(). A watchdog flags deadlock (occupied network with no flit
// movement for a configurable number of cycles) — this is how the library
// *tests* the paper's virtual-channel claims instead of assuming them.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "tcr/guard/guard.hpp"
#include "tcr/obs/registry.hpp"
#include "tcr/sim/network.hpp"
#include "tcr/sim/traffic_gen.hpp"
#include "tcr/trace/tracer.hpp"

namespace tcr::fault {
struct SimFaultPlan;
}

namespace tcr {

struct SimConfig {
  int vcs = 4;               // virtual channels per physical channel
  int buffer_depth = 4;      // flits per VC buffer
  int warmup_cycles = 2000;
  int measure_cycles = 8000;
  int drain_cycles = 20000;       // post-measurement drain budget
  int deadlock_threshold = 2000;  // quiet cycles before declaring deadlock
  int stats_window = 500;         // cycles per injection/ejection-rate sample
  /// Emit one sim.epoch trace span (with that epoch's injected/ejected flit
  /// counts) plus sim.injected / sim.ejected counter samples every this many
  /// cycles while a tracer is collecting. 0 = off; the knob costs one
  /// comparison per cycle only when tracing is enabled at run() start.
  int trace_every_k_cycles = 0;
  std::uint64_t seed = 42;
  /// Optional fault-injection plan (tcr::fault): links down and credit
  /// stalls during cycle windows. Not owned; must outlive the run.
  const fault::SimFaultPlan* faults = nullptr;
  /// Optional run-control token (tcr::guard; not owned). Polled every 256
  /// cycles: when it fires, the run stops at the next poll and returns the
  /// statistics gathered so far with SimStats::cancelled set and the
  /// token's diagnosis in SimStats::note — partial numbers, clearly marked,
  /// never an abort.
  guard::CancelToken* cancel = nullptr;
};

struct SimStats {
  bool deadlocked = false;
  /// The run was stopped early by SimConfig::cancel; every rate/latency
  /// field covers only the cycles actually simulated (see note).
  bool cancelled = false;
  std::string note;  ///< stop diagnosis when cancelled; empty otherwise
  long injected = 0;
  long ejected = 0;
  double offered_rate = 0.0;   // injections per node per cycle (measurement window)
  double accepted_rate = 0.0;  // ejections per node per cycle (measurement window)
  double avg_latency = 0.0;    // cycles, injection to ejection
  double max_latency = 0.0;    // worst measured packet latency, cycles
  double p50_latency = 0.0;    // latency percentiles over measured packets
  double p95_latency = 0.0;
  double p99_latency = 0.0;
  long cycles_run = 0;
};

class Simulator {
 public:
  Simulator(const TorusRouting& routing, TrafficGen& gen, const SimConfig& config);

  /// Run warmup + measurement (+ drain); returns collected statistics.
  SimStats run();

 private:
  struct Packet {
    int dst = 0;
    std::vector<int> channels;
    std::vector<int> vcs;
    int hop = 0;  // index of the next channel to traverse
    long injected_at = 0;
    long moved_stamp = -1;  // cycle of the last traversal (one hop per cycle)
    bool measured = false;
  };

  int buffer_index(int channel, int vc) const { return channel * cfg_.vcs + vc; }
  void step();
  void sample_window();
  bool network_empty() const;
  // Per-epoch tracing (trace_every_k_cycles): epochs never straddle a phase
  // (warmup/measure/drain) boundary, so the span stack stays well-nested.
  void begin_epoch();
  void end_epoch();

  const Torus& torus_;
  TrafficGen& gen_;
  SimConfig cfg_;

  // buffers_[channel * vcs + vc]: packets waiting at the downstream node of
  // `channel`; source queues hold freshly injected packets at their source.
  std::vector<std::deque<Packet>> buffers_;
  std::vector<std::deque<Packet>> source_queue_;
  std::vector<int> eject_rr_;   // per-node round-robin pointer (ejection)
  std::vector<int> output_rr_;  // per-channel round-robin pointer

  long cycle_ = 0;
  long last_movement_ = 0;
  bool measuring_ = false;
  bool draining_ = false;
  SimStats stats_;
  double latency_sum_ = 0.0;
  long latency_count_ = 0;
  long measured_ejected_ = 0;
  long measured_injected_ = 0;

  // Per-run latency distribution (cycles); feeds the SimStats percentiles.
  obs::Histogram latency_hist_{1.0, 1.2};
  // Registry per-VC occupancy histograms, resolved once at construction.
  std::vector<obs::Histogram*> occupancy_;
  long window_start_ = 0;
  long window_injected_ = 0;
  long window_ejected_ = 0;

  // Epoch-tracing state; trace_k_ is resolved once per run() (0 when tracing
  // was disabled at run start, so step() pays a single integer compare).
  int trace_k_ = 0;
  std::unique_ptr<trace::Span> epoch_span_;
  long epoch_index_ = 0;
  long epoch_start_cycle_ = 0;
  long epoch_injected_ = 0;  // stats_.injected at epoch start
  long epoch_ejected_ = 0;   // stats_.ejected at epoch start
};

/// Convenience wrapper: simulate `routing` under uniform or permutation
/// traffic at the given injection rate.
SimStats simulate(const TorusRouting& routing, double injection_rate,
                  const std::vector<int>& perm /* empty = uniform */,
                  const SimConfig& config = {});

/// Estimate the saturation throughput (packets/node/cycle) by bisecting the
/// injection rate for the largest rate whose accepted throughput tracks the
/// offered load within `tol`.
double saturation_throughput(const TorusRouting& routing, const std::vector<int>& perm,
                             const SimConfig& config = {}, double tol = 0.05);

}  // namespace tcr
