// Cycle-based flit-level network simulator for k-ary 2-cubes.
//
// Deliberately close to the paper's idealization (§2.1): single-flit
// packets, per-VC input buffering with credit (space) checks, one flit per
// channel per cycle, one ejection per node per cycle, round-robin output
// arbitration. Packets are source-routed along paths sampled from an
// oblivious routing algorithm and carry the VC schedule computed by
// assign_vcs(). A watchdog flags deadlock (occupied network with no flit
// movement for a configurable number of cycles) — this is how the library
// *tests* the paper's virtual-channel claims instead of assuming them.
//
// The engine is struct-of-arrays and shardable: the torus is partitioned
// into contiguous node blocks simulated by `threads` workers in lock-step
// phases, with cross-shard flit handoffs staged through mailboxes (see
// sharding.hpp and docs/simulator.md). Results are a pure function of
// (routing, traffic, config, seed): `threads=N` is bitwise-identical to
// `threads=1` for every stat, latency and counter.
//
// Units, throughout: a *cycle* is the simulation timestep (one hop of
// motion per flit at most); a *window* is `stats_window` consecutive
// measurement cycles (the rate-sampling granule); an *epoch* is
// `trace_every_k_cycles` cycles (the tracing granule). Rates are flits per
// node per cycle; latencies are cycles from injection to ejection.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tcr/guard/guard.hpp"
#include "tcr/obs/registry.hpp"
#include "tcr/sim/network.hpp"
#include "tcr/sim/sharding.hpp"
#include "tcr/sim/soa_state.hpp"
#include "tcr/sim/traffic_gen.hpp"
#include "tcr/trace/tracer.hpp"

namespace tcr::fault {
struct SimFaultPlan;
}

namespace tcr {

struct SimConfig {
  int vcs = 4;               // virtual channels per physical channel
  int buffer_depth = 4;      // flits per VC buffer
  int warmup_cycles = 2000;
  int measure_cycles = 8000;
  int drain_cycles = 20000;       // post-measurement drain budget
  int deadlock_threshold = 2000;  // quiet cycles before declaring deadlock
  int stats_window = 500;         // cycles per injection/ejection-rate sample
  /// Worker threads simulating the torus (1 = serial). Purely a speed knob:
  /// every statistic is bitwise-identical for any thread count.
  int threads = 1;
  /// Shard (node-block) count; 0 = one shard per thread. Exposed separately
  /// so tests can pin shard counts that do not divide the thread count.
  /// Also does not affect results.
  int shards = 0;
  /// Emit one sim.epoch trace span (with that epoch's injected/ejected flit
  /// counts) plus sim.injected / sim.ejected counter samples every this many
  /// cycles while a tracer is collecting. 0 = off; the knob costs one
  /// comparison per cycle only when tracing is enabled at run() start.
  /// Under sharding each epoch also emits one sim.epoch.shard span per
  /// shard carrying shard_id / handoff_flits attributes.
  int trace_every_k_cycles = 0;
  std::uint64_t seed = 42;
  /// Optional fault-injection plan (tcr::fault): links down and credit
  /// stalls during cycle windows. Not owned; must outlive the run.
  const fault::SimFaultPlan* faults = nullptr;
  /// Optional run-control token (tcr::guard; not owned). Polled every 256
  /// cycles: when it fires, the run stops at the next poll and returns the
  /// statistics gathered so far with SimStats::cancelled set and the
  /// token's diagnosis in SimStats::note — partial numbers, clearly marked,
  /// never an abort.
  guard::CancelToken* cancel = nullptr;
};

/// One fully-measured rate-sampling window (stats_window cycles, except a
/// shorter final window when the measurement phase ends mid-window).
struct SimWindow {
  long cycles = 0;    // window length in cycles
  long injected = 0;  // flits injected network-wide during the window
  long ejected = 0;   // flits ejected network-wide during the window
};

struct SimStats {
  bool deadlocked = false;
  /// The run was stopped early by SimConfig::cancel; every rate/latency
  /// field covers only the cycles actually simulated (see note), and a
  /// partially-measured window is discarded rather than diluting the rates.
  bool cancelled = false;
  std::string note;  ///< stop diagnosis when cancelled; empty otherwise
  long injected = 0;
  long ejected = 0;
  double offered_rate = 0.0;   // injections per node per cycle, over `windows`
  double accepted_rate = 0.0;  // ejections per node per cycle, over `windows`
  double avg_latency = 0.0;    // cycles, injection to ejection
  double max_latency = 0.0;    // worst measured packet latency, cycles
  double p50_latency = 0.0;    // latency percentiles over measured packets
  double p95_latency = 0.0;
  double p99_latency = 0.0;
  long cycles_run = 0;
  /// The rate samples actually counted. On an uninterrupted run these cover
  /// exactly measure_cycles; when a deadline/cancel stops mid-window the
  /// partial window is dropped, so offered/accepted_rate equal the rates an
  /// uninterrupted run would report over the same full-window prefix.
  std::vector<SimWindow> windows;
  long measured_cycles = 0;  // sum of windows[i].cycles
  /// Σ (live flits) over every simulated cycle — the work metric behind the
  /// flit-cycles/sec throughput the saturation bench reports with --perf.
  long flit_cycles = 0;
};

class Simulator {
 public:
  Simulator(const TorusRouting& routing, TrafficGen& gen, const SimConfig& config);

  /// Run warmup + measurement (+ drain); returns collected statistics.
  SimStats run();

 private:
  enum class Phase { Warmup, Measure, Drain, Done };

  void serial_loop(int num_shards);
  void parallel_loop(int threads, int num_shards);
  /// Serial per-cycle bookkeeping (coordinator only): movement/watchdog,
  /// window folding, epoch tracing, cancellation, phase transitions.
  void tick();
  void start_phase(Phase p);
  void stop_early(bool discard_partial_window);
  void fold_window();
  void begin_epoch();
  void end_epoch();

  const Torus& torus_;
  TrafficGen& gen_;
  SimConfig cfg_;

  sim_detail::Engine eng_;
  bool stop_ = false;
  Phase phase_ = Phase::Warmup;
  long steps_in_phase_ = 0;
  long last_movement_ = 0;
  long near_misses_ = 0;
  SimStats stats_;
  long counted_injected_ = 0;  // injections inside folded windows
  long counted_ejected_ = 0;

  // Per-run latency distribution (cycles); feeds the SimStats percentiles.
  obs::Histogram latency_hist_{1.0, 1.2};
  // Registry per-VC occupancy histograms, resolved once at construction.
  std::vector<obs::Histogram*> occupancy_;
  long window_start_ = 0;

  // Epoch-tracing state; trace_k_ is resolved once per run() (0 when tracing
  // was disabled at run start, so tick() pays a single integer compare).
  int trace_k_ = 0;
  std::unique_ptr<trace::Span> phase_span_;
  std::unique_ptr<trace::Span> epoch_span_;
  long epoch_index_ = 0;
  long epoch_start_cycle_ = 0;
  long epoch_injected_ = 0;  // network totals at epoch start
  long epoch_ejected_ = 0;
  std::vector<long> epoch_handoffs_;  // per-shard handoff totals at epoch start
};

/// Convenience wrapper: simulate `routing` under uniform or permutation
/// traffic at the given injection rate.
SimStats simulate(const TorusRouting& routing, double injection_rate,
                  const std::vector<int>& perm /* empty = uniform */,
                  const SimConfig& config = {});

/// Estimate the saturation throughput (packets/node/cycle) by bisecting the
/// injection rate for the largest rate whose accepted throughput tracks the
/// offered load within `tol`.
double saturation_throughput(const TorusRouting& routing, const std::vector<int>& perm,
                             const SimConfig& config = {}, double tol = 0.05);

}  // namespace tcr
