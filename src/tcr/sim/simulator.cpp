#include "tcr/sim/simulator.hpp"

#include <algorithm>

#include "tcr/util/check.hpp"

namespace tcr {

Simulator::Simulator(const TorusRouting& routing, TrafficGen& gen, const SimConfig& config)
    : torus_(routing.torus()), gen_(gen), cfg_(config) {
  TCR_REQUIRE(cfg_.vcs >= 1 && cfg_.buffer_depth >= 1, "need at least one VC and one slot");
  buffers_.resize(static_cast<std::size_t>(torus_.num_channels()) * cfg_.vcs);
  source_queue_.resize(torus_.num_nodes());
  eject_rr_.assign(torus_.num_nodes(), 0);
  output_rr_.assign(torus_.num_channels(), 0);
}

bool Simulator::network_empty() const {
  for (const auto& b : buffers_)
    if (!b.empty()) return false;
  for (const auto& q : source_queue_)
    if (!q.empty()) return false;
  return true;
}

void Simulator::step() {
  bool moved = false;

  // ---- injection ----
  if (!draining_) {
    for (int n = 0; n < torus_.num_nodes(); ++n) {
      auto path = gen_.maybe_inject(n);
      if (!path) continue;
      Packet p;
      p.dst = path->dst;
      p.vcs = assign_vcs(torus_, *path, cfg_.vcs);
      p.channels = std::move(path->channels);
      p.injected_at = cycle_;
      p.measured = measuring_;
      ++stats_.injected;
      if (measuring_) ++measured_injected_;
      source_queue_[n].push_back(std::move(p));
    }
  }

  // ---- ejection: one packet per node per cycle ----
  for (int n = 0; n < torus_.num_nodes(); ++n) {
    const int slots = kNumDirs * cfg_.vcs;
    for (int probe = 0; probe < slots; ++probe) {
      const int slot = (eject_rr_[n] + probe) % slots;
      const int dir = slot / cfg_.vcs, vc = slot % cfg_.vcs;
      // In-channel of n in direction dir: same-direction channel leaving the
      // opposite neighbor.
      const Dir d = static_cast<Dir>(dir);
      const Dir opp = static_cast<Dir>(dir ^ 1);
      const int c = torus_.channel(torus_.neighbor(n, opp), d);
      auto& buf = buffers_[buffer_index(c, vc)];
      if (buf.empty() || buf.front().hop < static_cast<int>(buf.front().channels.size()))
        continue;
      Packet p = std::move(buf.front());
      buf.pop_front();
      ++stats_.ejected;
      if (measuring_) ++measured_ejected_;
      if (p.measured) {
        latency_sum_ += static_cast<double>(cycle_ - p.injected_at);
        ++latency_count_;
      }
      eject_rr_[n] = (slot + 1) % slots;
      moved = true;
      break;
    }
  }

  // ---- channel traversal: one flit per channel per cycle ----
  // Candidate slot encoding per output channel c at node n:
  //   0                    -> source queue of n
  //   1 + dir*vcs + vc     -> input buffer (in-channel dir, vc)
  for (int c = 0; c < torus_.num_channels(); ++c) {
    const int n = torus_.channel_src(c);
    const int slots = 1 + kNumDirs * cfg_.vcs;
    for (int probe = 0; probe < slots; ++probe) {
      const int slot = (output_rr_[c] + probe) % slots;
      std::deque<Packet>* queue = nullptr;
      if (slot == 0) {
        queue = &source_queue_[n];
      } else {
        const int dir = (slot - 1) / cfg_.vcs, vc = (slot - 1) % cfg_.vcs;
        const Dir d = static_cast<Dir>(dir);
        const Dir opp = static_cast<Dir>(dir ^ 1);
        queue = &buffers_[buffer_index(torus_.channel(torus_.neighbor(n, opp), d), vc)];
      }
      if (queue->empty()) continue;
      Packet& head = queue->front();
      if (head.hop >= static_cast<int>(head.channels.size())) continue;  // awaiting ejection
      if (head.channels[head.hop] != c) continue;
      if (head.moved_stamp == cycle_) continue;  // already advanced this cycle
      auto& dst_buf = buffers_[buffer_index(c, head.vcs[head.hop])];
      if (static_cast<int>(dst_buf.size()) >= cfg_.buffer_depth) continue;

      Packet p = std::move(head);
      queue->pop_front();
      p.moved_stamp = cycle_;
      ++p.hop;
      dst_buf.push_back(std::move(p));
      output_rr_[c] = (slot + 1) % slots;
      moved = true;
      break;
    }
  }

  if (moved) last_movement_ = cycle_;
  ++cycle_;
}

SimStats Simulator::run() {
  auto deadlock_check = [&] {
    if (!network_empty() && cycle_ - last_movement_ > cfg_.deadlock_threshold) {
      stats_.deadlocked = true;
      return true;
    }
    return false;
  };

  for (int i = 0; i < cfg_.warmup_cycles; ++i) {
    step();
    if (deadlock_check()) break;
  }
  if (!stats_.deadlocked) {
    measuring_ = true;
    for (int i = 0; i < cfg_.measure_cycles; ++i) {
      step();
      if (deadlock_check()) break;
    }
    measuring_ = false;
  }
  if (!stats_.deadlocked) {
    draining_ = true;
    for (int i = 0; i < cfg_.drain_cycles && !network_empty(); ++i) {
      step();
      if (deadlock_check()) break;
    }
  }

  stats_.cycles_run = cycle_;
  const double node_cycles = static_cast<double>(torus_.num_nodes()) * cfg_.measure_cycles;
  stats_.offered_rate = static_cast<double>(measured_injected_) / node_cycles;
  stats_.accepted_rate = static_cast<double>(measured_ejected_) / node_cycles;
  stats_.avg_latency = latency_count_ > 0 ? latency_sum_ / latency_count_ : 0.0;
  return stats_;
}

SimStats simulate(const TorusRouting& routing, double injection_rate,
                  const std::vector<int>& perm, const SimConfig& config) {
  if (perm.empty()) {
    TrafficGen gen(routing, injection_rate, config.seed);
    Simulator sim(routing, gen, config);
    return sim.run();
  }
  TrafficGen gen(routing, injection_rate, perm, config.seed);
  Simulator sim(routing, gen, config);
  return sim.run();
}

double saturation_throughput(const TorusRouting& routing, const std::vector<int>& perm,
                             const SimConfig& config, double tol) {
  double lo = 0.0, hi = 1.0;
  for (int iter = 0; iter < 7; ++iter) {
    const double rate = 0.5 * (lo + hi);
    const SimStats s = simulate(routing, rate, perm, config);
    // Compare against the *measured* offered rate: self-addressed uniform
    // picks never enter the network, so offered < rate under uniform.
    const bool ok = !s.deadlocked && s.accepted_rate >= s.offered_rate * (1.0 - tol);
    if (ok) {
      lo = rate;
    } else {
      hi = rate;
    }
  }
  return lo;
}

}  // namespace tcr
