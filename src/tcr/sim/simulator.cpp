#include "tcr/sim/simulator.hpp"

#include <algorithm>
#include <string>

#include "tcr/fault/fault.hpp"
#include "tcr/util/check.hpp"

namespace tcr {

namespace {

// Process-wide simulator metrics; resolved once, references live forever.
struct SimMetrics {
  obs::Counter& runs;
  obs::Counter& deadlocks;
  obs::Counter& near_misses;
  obs::Counter& link_fault_cycles;
  obs::Counter& credit_stall_skips;
  obs::Histogram& latency;
  obs::Histogram& injection_rate;
  obs::Histogram& accepted_rate;

  static SimMetrics& get() {
    static SimMetrics m;
    return m;
  }

 private:
  SimMetrics()
      : runs(obs::Registry::instance().counter("sim.runs")),
        deadlocks(obs::Registry::instance().counter("sim.deadlocks")),
        near_misses(obs::Registry::instance().counter("sim.deadlock_near_miss")),
        link_fault_cycles(obs::Registry::instance().counter("sim.fault.link_down_cycles")),
        credit_stall_skips(obs::Registry::instance().counter("sim.fault.credit_stalls")),
        latency(obs::Registry::instance().histogram("sim.packet_latency", 1.0, 1.2)),
        injection_rate(obs::Registry::instance().histogram("sim.injection_rate", 1e-3, 1.1)),
        accepted_rate(obs::Registry::instance().histogram("sim.accepted_rate", 1e-3, 1.1)) {}
};

}  // namespace

Simulator::Simulator(const TorusRouting& routing, TrafficGen& gen, const SimConfig& config)
    : torus_(routing.torus()), gen_(gen), cfg_(config) {
  TCR_REQUIRE(cfg_.vcs >= 1 && cfg_.buffer_depth >= 1, "need at least one VC and one slot");
  TCR_REQUIRE(cfg_.stats_window >= 1, "stats window must be positive");
  buffers_.resize(static_cast<std::size_t>(torus_.num_channels()) * cfg_.vcs);
  source_queue_.resize(torus_.num_nodes());
  eject_rr_.assign(torus_.num_nodes(), 0);
  output_rr_.assign(torus_.num_channels(), 0);
  occupancy_.reserve(cfg_.vcs);
  for (int vc = 0; vc < cfg_.vcs; ++vc) {
    occupancy_.push_back(&obs::Registry::instance().histogram(
        "sim.occupancy.vc" + std::to_string(vc), 1e-3, 1.3));
  }
}

// Record one measurement window: injection/ejection rates over the window
// and the instantaneous mean per-VC buffer occupancy (flits per channel).
void Simulator::sample_window() {
  auto& met = SimMetrics::get();
  const double node_cycles =
      static_cast<double>(torus_.num_nodes()) * static_cast<double>(cycle_ - window_start_);
  met.injection_rate.record(static_cast<double>(window_injected_) / node_cycles);
  met.accepted_rate.record(static_cast<double>(window_ejected_) / node_cycles);
  for (int vc = 0; vc < cfg_.vcs; ++vc) {
    long flits = 0;
    for (int c = 0; c < torus_.num_channels(); ++c) {
      flits += static_cast<long>(buffers_[buffer_index(c, vc)].size());
    }
    occupancy_[vc]->record(static_cast<double>(flits) / torus_.num_channels());
  }
  window_start_ = cycle_;
  window_injected_ = 0;
  window_ejected_ = 0;
}

bool Simulator::network_empty() const {
  for (const auto& b : buffers_)
    if (!b.empty()) return false;
  for (const auto& q : source_queue_)
    if (!q.empty()) return false;
  return true;
}

void Simulator::step() {
  bool moved = false;

  // ---- injection ----
  if (!draining_) {
    for (int n = 0; n < torus_.num_nodes(); ++n) {
      auto path = gen_.maybe_inject(n);
      if (!path) continue;
      Packet p;
      p.dst = path->dst;
      p.vcs = assign_vcs(torus_, *path, cfg_.vcs);
      p.channels = std::move(path->channels);
      p.injected_at = cycle_;
      p.measured = measuring_;
      ++stats_.injected;
      if (measuring_) {
        ++measured_injected_;
        ++window_injected_;
      }
      source_queue_[n].push_back(std::move(p));
    }
  }

  // ---- ejection: one packet per node per cycle ----
  for (int n = 0; n < torus_.num_nodes(); ++n) {
    const int slots = kNumDirs * cfg_.vcs;
    for (int probe = 0; probe < slots; ++probe) {
      const int slot = (eject_rr_[n] + probe) % slots;
      const int dir = slot / cfg_.vcs, vc = slot % cfg_.vcs;
      // In-channel of n in direction dir: same-direction channel leaving the
      // opposite neighbor.
      const Dir d = static_cast<Dir>(dir);
      const Dir opp = static_cast<Dir>(dir ^ 1);
      const int c = torus_.channel(torus_.neighbor(n, opp), d);
      auto& buf = buffers_[buffer_index(c, vc)];
      if (buf.empty() || buf.front().hop < static_cast<int>(buf.front().channels.size()))
        continue;
      Packet p = std::move(buf.front());
      buf.pop_front();
      ++stats_.ejected;
      if (measuring_) {
        ++measured_ejected_;
        ++window_ejected_;
      }
      if (p.measured) {
        const double lat = static_cast<double>(cycle_ - p.injected_at);
        latency_sum_ += lat;
        ++latency_count_;
        latency_hist_.record(lat);
        SimMetrics::get().latency.record(lat);
      }
      eject_rr_[n] = (slot + 1) % slots;
      moved = true;
      break;
    }
  }

  // ---- channel traversal: one flit per channel per cycle ----
  // Candidate slot encoding per output channel c at node n:
  //   0                    -> source queue of n
  //   1 + dir*vcs + vc     -> input buffer (in-channel dir, vc)
  for (int c = 0; c < torus_.num_channels(); ++c) {
    if (cfg_.faults && cfg_.faults->link_down(c, cycle_)) {
      SimMetrics::get().link_fault_cycles.add(1);
      continue;  // link transmits nothing this cycle
    }
    const int n = torus_.channel_src(c);
    const int slots = 1 + kNumDirs * cfg_.vcs;
    for (int probe = 0; probe < slots; ++probe) {
      const int slot = (output_rr_[c] + probe) % slots;
      std::deque<Packet>* queue = nullptr;
      if (slot == 0) {
        queue = &source_queue_[n];
      } else {
        const int dir = (slot - 1) / cfg_.vcs, vc = (slot - 1) % cfg_.vcs;
        const Dir d = static_cast<Dir>(dir);
        const Dir opp = static_cast<Dir>(dir ^ 1);
        queue = &buffers_[buffer_index(torus_.channel(torus_.neighbor(n, opp), d), vc)];
      }
      if (queue->empty()) continue;
      Packet& head = queue->front();
      if (head.hop >= static_cast<int>(head.channels.size())) continue;  // awaiting ejection
      if (head.channels[head.hop] != c) continue;
      if (head.moved_stamp == cycle_) continue;  // already advanced this cycle
      auto& dst_buf = buffers_[buffer_index(c, head.vcs[head.hop])];
      if (static_cast<int>(dst_buf.size()) >= cfg_.buffer_depth) continue;
      if (cfg_.faults && cfg_.faults->credit_stalled(c, head.vcs[head.hop], cycle_)) {
        SimMetrics::get().credit_stall_skips.add(1);
        continue;  // downstream reports no credit despite free space
      }

      Packet p = std::move(head);
      queue->pop_front();
      p.moved_stamp = cycle_;
      ++p.hop;
      dst_buf.push_back(std::move(p));
      output_rr_[c] = (slot + 1) % slots;
      moved = true;
      break;
    }
  }

  if (moved) {
    // Movement resuming after a long quiet streak is a deadlock near-miss:
    // the watchdog would have fired had the stall lasted twice as long.
    if (cycle_ - last_movement_ > cfg_.deadlock_threshold / 2) {
      SimMetrics::get().near_misses.add(1);
    }
    last_movement_ = cycle_;
  }
  ++cycle_;
  if (measuring_ && cycle_ - window_start_ >= cfg_.stats_window) sample_window();
  if (trace_k_ != 0 && cycle_ - epoch_start_cycle_ >= trace_k_) {
    end_epoch();
    begin_epoch();
  }
}

void Simulator::begin_epoch() {
  if (trace_k_ == 0) return;
  epoch_span_ = std::make_unique<trace::Span>("sim.epoch");
  epoch_span_->attr("epoch", epoch_index_);
  epoch_span_->attr("start_cycle", cycle_);
  epoch_start_cycle_ = cycle_;
  epoch_injected_ = stats_.injected;
  epoch_ejected_ = stats_.ejected;
}

void Simulator::end_epoch() {
  if (epoch_span_ == nullptr) return;
  const long injected = stats_.injected - epoch_injected_;
  const long ejected = stats_.ejected - epoch_ejected_;
  epoch_span_->attr("cycles", cycle_ - epoch_start_cycle_);
  epoch_span_->attr("injected", injected);
  epoch_span_->attr("ejected", ejected);
  // Counter tracks alongside the spans: cumulative flit totals, sampled once
  // per epoch, grouped under the epoch's parent (the phase span).
  epoch_span_.reset();
  trace::counter("sim.injected", static_cast<double>(stats_.injected));
  trace::counter("sim.ejected", static_cast<double>(stats_.ejected));
  ++epoch_index_;
}

SimStats Simulator::run() {
  SimMetrics::get().runs.add(1);
  trace::Span run_span("sim.run");
  trace_k_ = cfg_.trace_every_k_cycles > 0 && trace::enabled() ? cfg_.trace_every_k_cycles
                                                               : 0;
  auto deadlock_check = [&] {
    if (!network_empty() && cycle_ - last_movement_ > cfg_.deadlock_threshold) {
      stats_.deadlocked = true;
      return true;
    }
    return false;
  };
  // Run-control safepoint: one flag poll (plus deadline/RSS evaluation)
  // every 256 cycles — far below the cost of a single simulated cycle.
  auto cancelled = [&](int i) {
    if (cfg_.cancel == nullptr || (i & 255) != 0) return false;
    if (!cfg_.cancel->check()) return false;
    stats_.cancelled = true;
    return true;
  };

  {
    trace::Span phase("sim.warmup");
    begin_epoch();
    for (int i = 0; i < cfg_.warmup_cycles; ++i) {
      step();
      if (deadlock_check() || cancelled(i)) break;
    }
    end_epoch();
  }
  if (!stats_.deadlocked && !stats_.cancelled) {
    trace::Span phase("sim.measure");
    begin_epoch();
    measuring_ = true;
    window_start_ = cycle_;
    for (int i = 0; i < cfg_.measure_cycles; ++i) {
      step();
      if (deadlock_check() || cancelled(i)) break;
    }
    if (cycle_ > window_start_) sample_window();  // flush the partial window
    measuring_ = false;
    end_epoch();
  }
  if (!stats_.deadlocked && !stats_.cancelled) {
    trace::Span phase("sim.drain");
    begin_epoch();
    draining_ = true;
    for (int i = 0; i < cfg_.drain_cycles && !network_empty(); ++i) {
      step();
      if (deadlock_check() || cancelled(i)) break;
    }
    end_epoch();
  }
  if (stats_.cancelled) stats_.note = cfg_.cancel->note();

  stats_.cycles_run = cycle_;
  run_span.attr("cycles", stats_.cycles_run);
  run_span.attr("injected", stats_.injected);
  run_span.attr("ejected", stats_.ejected);
  run_span.attr("deadlocked", stats_.deadlocked);
  const double node_cycles = static_cast<double>(torus_.num_nodes()) * cfg_.measure_cycles;
  stats_.offered_rate = static_cast<double>(measured_injected_) / node_cycles;
  stats_.accepted_rate = static_cast<double>(measured_ejected_) / node_cycles;
  stats_.avg_latency = latency_count_ > 0 ? latency_sum_ / latency_count_ : 0.0;
  stats_.max_latency = latency_hist_.max();
  stats_.p50_latency = latency_hist_.percentile(0.50);
  stats_.p95_latency = latency_hist_.percentile(0.95);
  stats_.p99_latency = latency_hist_.percentile(0.99);
  if (stats_.deadlocked) SimMetrics::get().deadlocks.add(1);
  return stats_;
}

SimStats simulate(const TorusRouting& routing, double injection_rate,
                  const std::vector<int>& perm, const SimConfig& config) {
  if (perm.empty()) {
    TrafficGen gen(routing, injection_rate, config.seed);
    Simulator sim(routing, gen, config);
    return sim.run();
  }
  TrafficGen gen(routing, injection_rate, perm, config.seed);
  Simulator sim(routing, gen, config);
  return sim.run();
}

double saturation_throughput(const TorusRouting& routing, const std::vector<int>& perm,
                             const SimConfig& config, double tol) {
  double lo = 0.0, hi = 1.0;
  for (int iter = 0; iter < 7; ++iter) {
    const double rate = 0.5 * (lo + hi);
    const SimStats s = simulate(routing, rate, perm, config);
    // A cancelled probe decides nothing; keep the bisection's best-so-far
    // bracket as the (partial) estimate.
    if (s.cancelled) break;
    // Compare against the *measured* offered rate: self-addressed uniform
    // picks never enter the network, so offered < rate under uniform.
    const bool ok = !s.deadlocked && s.accepted_rate >= s.offered_rate * (1.0 - tol);
    if (ok) {
      lo = rate;
    } else {
      hi = rate;
    }
  }
  return lo;
}

}  // namespace tcr
