#include "tcr/sim/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <future>
#include <string>

#include "tcr/fault/fault.hpp"
#include "tcr/telemetry/telemetry.hpp"
#include "tcr/util/check.hpp"
#include "tcr/util/epoch_barrier.hpp"
#include "tcr/util/thread_pool.hpp"

namespace tcr {

namespace {

// Process-wide simulator metrics; resolved once, references live forever.
struct SimMetrics {
  obs::Counter& runs;
  obs::Counter& deadlocks;
  obs::Counter& near_misses;
  obs::Counter& link_fault_cycles;
  obs::Counter& credit_stall_skips;
  obs::Histogram& latency;
  obs::Histogram& injection_rate;
  obs::Histogram& accepted_rate;

  static SimMetrics& get() {
    static SimMetrics m;
    return m;
  }

 private:
  SimMetrics()
      : runs(obs::Registry::instance().counter("sim.runs")),
        deadlocks(obs::Registry::instance().counter("sim.deadlocks")),
        near_misses(obs::Registry::instance().counter("sim.deadlock_near_miss")),
        link_fault_cycles(obs::Registry::instance().counter("sim.fault.link_down_cycles")),
        credit_stall_skips(obs::Registry::instance().counter("sim.fault.credit_stalls")),
        latency(obs::Registry::instance().histogram("sim.packet_latency", 1.0, 1.2)),
        injection_rate(obs::Registry::instance().histogram("sim.injection_rate", 1e-3, 1.1)),
        accepted_rate(obs::Registry::instance().histogram("sim.accepted_rate", 1e-3, 1.1)) {}
};

}  // namespace

Simulator::Simulator(const TorusRouting& routing, TrafficGen& gen, const SimConfig& config)
    : torus_(routing.torus()), gen_(gen), cfg_(config) {
  TCR_REQUIRE(cfg_.vcs >= 1 && cfg_.buffer_depth >= 1, "need at least one VC and one slot");
  TCR_REQUIRE(cfg_.stats_window >= 1, "stats window must be positive");
  TCR_REQUIRE(cfg_.threads >= 1, "need at least one simulation thread");
  TCR_REQUIRE(cfg_.shards >= 0, "shard count must be non-negative");
  occupancy_.reserve(cfg_.vcs);
  for (int vc = 0; vc < cfg_.vcs; ++vc) {
    occupancy_.push_back(&obs::Registry::instance().histogram(
        "sim.occupancy.vc" + std::to_string(vc), 1e-3, 1.3));
  }
}

// Fold the current measurement window: record its injection/ejection rates
// and the instantaneous mean per-VC buffer occupancy (flits per channel),
// and add its counts to the totals the final rates are computed over.
void Simulator::fold_window() {
  auto& met = SimMetrics::get();
  long wi = 0, we = 0;
  for (auto& sh : eng_.shards) {
    wi += sh.window_injected;
    we += sh.window_ejected;
    sh.window_injected = 0;
    sh.window_ejected = 0;
  }
  const long wc = eng_.cycle - window_start_;
  stats_.windows.push_back({wc, wi, we});
  stats_.measured_cycles += wc;
  counted_injected_ += wi;
  counted_ejected_ += we;
  const double node_cycles =
      static_cast<double>(torus_.num_nodes()) * static_cast<double>(wc);
  met.injection_rate.record(static_cast<double>(wi) / node_cycles);
  met.accepted_rate.record(static_cast<double>(we) / node_cycles);
  for (int vc = 0; vc < cfg_.vcs; ++vc) {
    long flits = 0;
    for (int c = 0; c < torus_.num_channels(); ++c) {
      flits += eng_.rings.size(eng_.buffer_index(c, vc));
    }
    occupancy_[vc]->record(static_cast<double>(flits) / torus_.num_channels());
  }
  window_start_ = eng_.cycle;
}

void Simulator::begin_epoch() {
  if (trace_k_ == 0) return;
  epoch_span_ = std::make_unique<trace::Span>("sim.epoch");
  epoch_span_->attr("epoch", epoch_index_);
  epoch_span_->attr("start_cycle", eng_.cycle);
  epoch_start_cycle_ = eng_.cycle;
  epoch_injected_ = 0;
  epoch_ejected_ = 0;
  epoch_handoffs_.assign(eng_.shards.size(), 0);
  for (std::size_t s = 0; s < eng_.shards.size(); ++s) {
    epoch_injected_ += eng_.shards[s].injected;
    epoch_ejected_ += eng_.shards[s].ejected;
    epoch_handoffs_[s] = eng_.shards[s].handoffs;
  }
}

void Simulator::end_epoch() {
  if (epoch_span_ == nullptr) return;
  long injected = 0, ejected = 0;
  for (const auto& sh : eng_.shards) {
    injected += sh.injected;
    ejected += sh.ejected;
  }
  const long cycles = eng_.cycle - epoch_start_cycle_;
  epoch_span_->attr("cycles", cycles);
  epoch_span_->attr("injected", injected - epoch_injected_);
  epoch_span_->attr("ejected", ejected - epoch_ejected_);
  // One child span per shard with its share of the epoch's cross-shard
  // traffic — the flame summary aggregates these by name, so shard balance
  // and handoff volume are visible per run.
  for (std::size_t s = 0; s < eng_.shards.size(); ++s) {
    trace::Span shard_span("sim.epoch.shard");
    shard_span.attr("shard_id", static_cast<long>(s));
    shard_span.attr("handoff_flits", eng_.shards[s].handoffs - epoch_handoffs_[s]);
    shard_span.attr("cycles", cycles);
  }
  epoch_span_.reset();
  // Counter tracks alongside the spans: cumulative flit totals, sampled once
  // per epoch, grouped under the epoch's parent (the phase span).
  trace::counter("sim.injected", static_cast<double>(injected));
  trace::counter("sim.ejected", static_cast<double>(ejected));
  ++epoch_index_;
}

// Enter phase p, falling through zero-length phases immediately so a
// configuration like warmup_cycles=0 never simulates a stray cycle.
void Simulator::start_phase(Phase p) {
  while (true) {
    phase_ = p;
    steps_in_phase_ = 0;
    switch (p) {
      case Phase::Warmup:
        telemetry::set_phase("sim.warmup");
        phase_span_ = std::make_unique<trace::Span>("sim.warmup");
        begin_epoch();
        if (cfg_.warmup_cycles > 0) return;
        end_epoch();
        phase_span_.reset();
        p = Phase::Measure;
        break;
      case Phase::Measure:
        telemetry::set_phase("sim.measure");
        phase_span_ = std::make_unique<trace::Span>("sim.measure");
        begin_epoch();
        eng_.measuring = true;
        window_start_ = eng_.cycle;
        if (cfg_.measure_cycles > 0) return;
        eng_.measuring = false;
        end_epoch();
        phase_span_.reset();
        p = Phase::Drain;
        break;
      case Phase::Drain:
        eng_.injecting = false;
        telemetry::set_phase("sim.drain");
        phase_span_ = std::make_unique<trace::Span>("sim.drain");
        begin_epoch();
        if (cfg_.drain_cycles > 0 && eng_.live_flits() > 0) return;
        end_epoch();
        phase_span_.reset();
        p = Phase::Done;
        break;
      case Phase::Done:
        stop_ = true;
        return;
    }
  }
}

// Deadlock or cancellation: close out the current phase and stop. A partial
// measurement window is folded (its cycles really elapsed) unless the stop
// is a cancellation, where the window is discarded so the reported rates
// cover only fully-measured samples.
void Simulator::stop_early(bool discard_partial_window) {
  if (phase_ == Phase::Measure) {
    if (!discard_partial_window && eng_.cycle > window_start_) fold_window();
    eng_.measuring = false;
  }
  end_epoch();
  phase_span_.reset();
  phase_ = Phase::Done;
  stop_ = true;
}

void Simulator::tick() {
  const long executed = eng_.cycle;  // the cycle both phases just simulated

  bool moved = false;
  for (const auto& sh : eng_.shards) moved |= sh.moved;
  if (moved) {
    // Movement resuming after a long quiet streak is a deadlock near-miss:
    // the watchdog would have fired had the stall lasted twice as long.
    if (executed - last_movement_ > cfg_.deadlock_threshold / 2) ++near_misses_;
    last_movement_ = executed;
  }
  const long live = eng_.live_flits();
  stats_.flit_cycles += live;
  eng_.cycle = executed + 1;
  ++steps_in_phase_;

  if (phase_ == Phase::Measure && eng_.cycle - window_start_ >= cfg_.stats_window) {
    fold_window();
  }
  if (trace_k_ != 0 && eng_.cycle - epoch_start_cycle_ >= trace_k_) {
    end_epoch();
    begin_epoch();
  }

  if (live > 0 && eng_.cycle - last_movement_ > cfg_.deadlock_threshold) {
    stats_.deadlocked = true;
    stop_early(/*discard_partial_window=*/false);
    return;
  }
  // Run-control safepoint: one flag poll (plus deadline/RSS evaluation)
  // every 256 cycles — far below the cost of a single simulated cycle.
  // Heartbeats share the cadence: tick() runs on the coordinator (at epoch
  // barriers in the parallel loop), so the shard counters are quiescent
  // here, and the poll only reads them — simulated state is untouched.
  if (((steps_in_phase_ - 1) & 255) == 0 && telemetry::enabled()) {
    std::int64_t injected = 0, ejected = 0;
    for (const auto& sh : eng_.shards) {
      injected += sh.injected;
      ejected += sh.ejected;
    }
    telemetry::sim_progress(epoch_index_, eng_.cycle, injected, ejected);
  }
  if (cfg_.cancel != nullptr && ((steps_in_phase_ - 1) & 255) == 0 && cfg_.cancel->check()) {
    stats_.cancelled = true;
    stop_early(/*discard_partial_window=*/true);
    return;
  }

  switch (phase_) {
    case Phase::Warmup:
      if (steps_in_phase_ >= cfg_.warmup_cycles) {
        end_epoch();
        phase_span_.reset();
        start_phase(Phase::Measure);
      }
      break;
    case Phase::Measure:
      if (steps_in_phase_ >= cfg_.measure_cycles) {
        if (eng_.cycle > window_start_) fold_window();  // flush the partial window
        eng_.measuring = false;
        end_epoch();
        phase_span_.reset();
        start_phase(Phase::Drain);
      }
      break;
    case Phase::Drain:
      if (live == 0 || steps_in_phase_ >= cfg_.drain_cycles) {
        end_epoch();
        phase_span_.reset();
        start_phase(Phase::Done);
      }
      break;
    case Phase::Done:
      break;
  }
}

void Simulator::serial_loop(int num_shards) {
  while (!stop_) {
    for (int s = 0; s < num_shards; ++s) eng_.phase1(s);
    for (int s = 0; s < num_shards; ++s) eng_.phase2(s);
    tick();
  }
}

void Simulator::parallel_loop(int threads, int num_shards) {
  EpochBarrier barrier1(threads), barrier2(threads);
  // Kernel exceptions (configuration errors such as an undersized VC count)
  // are latched, not thrown: every participant must keep the barrier
  // cadence or the others spin forever. The first exception is rethrown on
  // the coordinator once all workers have exited.
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  auto guard_phase = [&](auto&& body) {
    if (failed.load(std::memory_order_relaxed)) return;
    try {
      body();
    } catch (...) {
      {
        std::lock_guard lock(error_mu);
        if (error == nullptr) error = std::current_exception();
      }
      failed.store(true, std::memory_order_relaxed);
    }
  };

  ThreadPool pool(static_cast<std::size_t>(threads - 1));
  std::vector<std::future<void>> workers;
  workers.reserve(threads - 1);
  for (int p = 1; p < threads; ++p) {
    workers.push_back(pool.submit([&, p] {
      const auto [lo, hi] = ThreadPool::block_range(num_shards, threads, p);
      while (true) {
        guard_phase([&] {
          for (int s = lo; s < hi; ++s) eng_.phase1(s);
        });
        barrier1.arrive_and_wait();
        guard_phase([&] {
          for (int s = lo; s < hi; ++s) eng_.phase2(s);
        });
        barrier2.arrive_and_wait();
        if (stop_) break;
      }
    }));
  }

  const auto [lo, hi] = ThreadPool::block_range(num_shards, threads, 0);
  while (true) {
    guard_phase([&] {
      for (int s = lo; s < hi; ++s) eng_.phase1(s);
    });
    barrier1.coordinate();
    guard_phase([&] {
      for (int s = lo; s < hi; ++s) eng_.phase2(s);
    });
    barrier2.coordinate([&] {
      if (failed.load(std::memory_order_relaxed)) {
        stop_ = true;
      } else {
        tick();
      }
    });
    if (stop_) break;
  }
  for (auto& w : workers) w.get();
  if (error != nullptr) std::rethrow_exception(error);
}

SimStats Simulator::run() {
  auto& met = SimMetrics::get();
  met.runs.add(1);
  trace::Span run_span("sim.run");
  trace_k_ = cfg_.trace_every_k_cycles > 0 && trace::enabled() ? cfg_.trace_every_k_cycles
                                                               : 0;

  gen_.prepare();
  const int threads = std::max(1, cfg_.threads);
  const int num_shards = cfg_.shards > 0 ? cfg_.shards : threads;
  eng_.init(torus_, gen_, cfg_.faults, cfg_.vcs, cfg_.buffer_depth, num_shards, cfg_.seed,
            std::max(1, gen_.max_path_len()));
  eng_.run_latency = &latency_hist_;
  eng_.global_latency = &met.latency;

  start_phase(Phase::Warmup);
  if (!stop_) {
    if (threads == 1) {
      serial_loop(num_shards);
    } else {
      parallel_loop(std::min(threads, num_shards), num_shards);
    }
  }

  if (stats_.cancelled && cfg_.cancel != nullptr) stats_.note = cfg_.cancel->note();

  // Fold shard totals and flush the run's metric deltas (deterministic
  // order, independent of thread/shard count).
  long latency_sum = 0, latency_count = 0, link_down = 0, stalls = 0;
  for (const auto& sh : eng_.shards) {
    stats_.injected += sh.injected;
    stats_.ejected += sh.ejected;
    latency_sum += sh.latency_sum;
    latency_count += sh.latency_count;
    link_down += sh.link_down_cycles;
    stalls += sh.credit_stalls;
  }
  if (near_misses_ > 0) met.near_misses.add(near_misses_);
  if (link_down > 0) met.link_fault_cycles.add(link_down);
  if (stalls > 0) met.credit_stall_skips.add(stalls);
  if (stats_.deadlocked) met.deadlocks.add(1);

  stats_.cycles_run = eng_.cycle;
  run_span.attr("cycles", stats_.cycles_run);
  run_span.attr("injected", stats_.injected);
  run_span.attr("ejected", stats_.ejected);
  run_span.attr("deadlocked", stats_.deadlocked);
  const double node_cycles =
      static_cast<double>(torus_.num_nodes()) * static_cast<double>(stats_.measured_cycles);
  stats_.offered_rate =
      node_cycles > 0 ? static_cast<double>(counted_injected_) / node_cycles : 0.0;
  stats_.accepted_rate =
      node_cycles > 0 ? static_cast<double>(counted_ejected_) / node_cycles : 0.0;
  stats_.avg_latency = latency_count > 0
                           ? static_cast<double>(latency_sum) / static_cast<double>(latency_count)
                           : 0.0;
  stats_.max_latency = latency_hist_.max();
  stats_.p50_latency = latency_hist_.percentile(0.50);
  stats_.p95_latency = latency_hist_.percentile(0.95);
  stats_.p99_latency = latency_hist_.percentile(0.99);
  return stats_;
}

SimStats simulate(const TorusRouting& routing, double injection_rate,
                  const std::vector<int>& perm, const SimConfig& config) {
  if (perm.empty()) {
    TrafficGen gen(routing, injection_rate, config.seed);
    Simulator sim(routing, gen, config);
    return sim.run();
  }
  TrafficGen gen(routing, injection_rate, perm, config.seed);
  Simulator sim(routing, gen, config);
  return sim.run();
}

double saturation_throughput(const TorusRouting& routing, const std::vector<int>& perm,
                             const SimConfig& config, double tol) {
  double lo = 0.0, hi = 1.0;
  for (int iter = 0; iter < 7; ++iter) {
    const double rate = 0.5 * (lo + hi);
    const SimStats s = simulate(routing, rate, perm, config);
    // A cancelled probe decides nothing; keep the bisection's best-so-far
    // bracket as the (partial) estimate.
    if (s.cancelled) break;
    // Compare against the *measured* offered rate: self-addressed uniform
    // picks never enter the network, so offered < rate under uniform.
    const bool ok = !s.deadlocked && s.accepted_rate >= s.offered_rate * (1.0 - tol);
    if (ok) {
      lo = rate;
    } else {
      hi = rate;
    }
  }
  return lo;
}

}  // namespace tcr
