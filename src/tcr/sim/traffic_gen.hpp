// Packet sources for the flit simulator: Bernoulli injection at a configured
// rate, destinations drawn from a traffic pattern (uniform or a fixed
// permutation), and paths sampled from an oblivious routing algorithm's
// canonical distribution (translated to the actual source).
#pragma once

#include <optional>
#include <vector>

#include "tcr/routing/routing.hpp"
#include "tcr/util/rng.hpp"

namespace tcr {

class TrafficGen {
 public:
  /// Uniform destinations.
  TrafficGen(const TorusRouting& routing, double injection_rate, std::uint64_t seed);
  /// Fixed permutation destinations (perm[s] = d).
  TrafficGen(const TorusRouting& routing, double injection_rate, std::vector<int> perm,
             std::uint64_t seed);

  /// Packet (destination + sampled path) injected at `node` this cycle, if
  /// the Bernoulli coin says so. Self-addressed uniform picks are dropped
  /// (they never enter the network).
  std::optional<Path> maybe_inject(int node);

  double injection_rate() const { return rate_; }

 private:
  Path sample_path(int src, int dst);

  const TorusRouting& routing_;
  double rate_;
  std::vector<int> perm_;  // empty = uniform
  Rng rng_;
  // Per-offset cumulative weights for fast path sampling.
  std::vector<std::vector<double>> cumulative_;
};

}  // namespace tcr
