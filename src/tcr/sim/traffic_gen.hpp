// Packet sources for the flit simulator: Bernoulli injection at a configured
// rate (flits per node per cycle — each node flips one coin per cycle),
// destinations drawn from a traffic pattern (uniform or a fixed
// permutation), and paths sampled from an oblivious routing algorithm's
// canonical distribution (translated to the actual source).
#pragma once

#include <optional>
#include <vector>

#include "tcr/routing/routing.hpp"
#include "tcr/util/rng.hpp"

namespace tcr {

class TrafficGen {
 public:
  /// Uniform destinations.
  TrafficGen(const TorusRouting& routing, double injection_rate, std::uint64_t seed);
  /// Fixed permutation destinations (perm[s] = d).
  TrafficGen(const TorusRouting& routing, double injection_rate, std::vector<int> perm,
             std::uint64_t seed);

  /// Packet (destination + sampled path) injected at `node` this cycle, if
  /// the Bernoulli coin says so. Self-addressed uniform picks are dropped
  /// (they never enter the network).
  std::optional<Path> maybe_inject(int node);

  /// A draw() result: the canonical (source-0) path sampled for the pair's
  /// offset — the caller translates it to the actual source — plus the
  /// destination it was drawn for.
  struct PathDraw {
    const Path* canonical = nullptr;
    int dst = 0;
  };

  /// Finalize the sampling tables (cumulative path weights for every offset
  /// and the longest path length on offer). Must be called before draw();
  /// afterwards the generator is immutable, so draw() is safe to call
  /// concurrently from many threads with per-caller Rng streams.
  void prepare();

  /// Stateless variant of maybe_inject for the parallel simulator: the same
  /// Bernoulli coin / destination / path draws, but consuming the caller's
  /// `rng` (one independent stream per node keeps injection identical
  /// regardless of how nodes are sharded across threads). Requires
  /// prepare(); const and thread-safe.
  std::optional<PathDraw> draw(int node, Rng& rng) const;

  /// Configured Bernoulli rate, flits per node per cycle.
  double injection_rate() const { return rate_; }
  const TorusRouting& routing() const { return routing_; }
  /// Longest path (in hops) the routing offers; valid after prepare().
  int max_path_len() const { return max_path_len_; }

 private:
  Path sample_path(int src, int dst);
  void build_cumulative(int e);

  const TorusRouting& routing_;
  double rate_;
  std::vector<int> perm_;  // empty = uniform
  Rng rng_;
  bool prepared_ = false;
  int max_path_len_ = 0;
  // Per-offset cumulative weights for fast path sampling.
  std::vector<std::vector<double>> cumulative_;
};

}  // namespace tcr
