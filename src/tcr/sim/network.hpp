// Virtual-channel assignment for source-routed packets on the torus.
//
// Paper §5.2: DOR needs two virtual channels (dateline rule of Dally-Seitz
// [20]); VAL/IVAL/2TURN need four — a packet switches to a second VC *set*
// after its (single possible) Y->X turn, and within a set the dateline bit
// breaks intra-ring cycles. assign_vcs() implements exactly that discipline:
// vc = 2 * (number of Y->X turns so far) + dateline bit.
#pragma once

#include <cstdint>
#include <vector>

#include "tcr/routing/path.hpp"

namespace tcr {

/// Number of VC sets a path requires under the turn discipline
/// (1 + number of Y->X turns). DOR paths need 1 set (2 VCs); any <=2-turn
/// path needs at most 2 sets (4 VCs).
int required_vc_sets(const Torus& t, const Path& p);

/// Per-hop virtual channel for a path. Throws if the needed VC exceeds
/// `vcs_available`.
std::vector<int> assign_vcs(const Torus& t, const Path& p, int vcs_available);

/// Allocation-free core of assign_vcs: writes the per-hop VC of the channel
/// sequence `channels[0..len)` into `out[0..len)`. The SoA simulator calls
/// this directly so injection never heap-allocates per flit.
void assign_vcs_into(const Torus& t, const int* channels, int len, int vcs_available,
                     std::int8_t* out);

/// Same, but reads the dateline predicate from a caller-precomputed
/// per-channel table (dateline[c] != 0 iff crosses_dateline(t, c)) instead
/// of recomputing the coordinate arithmetic per hop. The simulator builds
/// the table once per run and injects millions of flits through this.
void assign_vcs_into(const Torus& t, const int* channels, int len, int vcs_available,
                     const std::uint8_t* dateline, std::int8_t* out);

/// True if traversing channel c crosses its ring's dateline (the wrap edge).
bool crosses_dateline(const Torus& t, int c);

}  // namespace tcr
