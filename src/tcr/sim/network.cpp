#include "tcr/sim/network.hpp"

#include "tcr/util/check.hpp"

namespace tcr {

bool crosses_dateline(const Torus& t, int c) {
  const Dir d = t.channel_dir(c);
  const int src = t.channel_src(c);
  const int coord = is_x(d) ? t.x_of(src) : t.y_of(src);
  return sign_of(d) > 0 ? coord == t.k() - 1 : coord == 0;
}

int required_vc_sets(const Torus& t, const Path& p) {
  int sets = 1;
  bool have_prev = false, prev_x = false;
  int prev_sign = 0;
  for (int c : p.channels) {
    const bool cur_x = is_x(t.channel_dir(c));
    const int cur_sign = sign_of(t.channel_dir(c));
    if (have_prev) {
      // Y -> X turns and in-dimension u-turns (a two-phase algorithm
      // reversing direction, i.e. a phase boundary) both open a new set.
      if (cur_x && !prev_x) ++sets;
      if (cur_x == prev_x && cur_sign != prev_sign) ++sets;
    }
    prev_x = cur_x;
    prev_sign = cur_sign;
    have_prev = true;
  }
  return sets;
}

namespace {

// The one VC state machine, shared by both assign_vcs_into entry points;
// `crosses` maps a channel id to its dateline predicate.
template <typename CrossesFn>
void assign_vcs_impl(const Torus& t, const int* channels, int len, int vcs_available,
                     CrossesFn crosses, std::int8_t* out) {
  int set = 0;
  int bit = 0;
  bool have_prev = false, prev_x = false;
  int prev_sign = 0;
  for (int i = 0; i < len; ++i) {
    const int c = channels[i];
    const bool cur_x = is_x(t.channel_dir(c));
    const int cur_sign = sign_of(t.channel_dir(c));
    if (have_prev && cur_x != prev_x) {
      if (cur_x) ++set;  // Y -> X turn opens a new VC set
      bit = 0;           // a new ring starts at its low VC
    }
    if (have_prev && cur_x == prev_x && cur_sign != prev_sign) {
      ++set;  // in-dimension u-turn: phase boundary of a two-phase route
      bit = 0;
    }
    // The buffer downstream of a wrap channel (and every later hop in the
    // ring) lives on the high VC — this is what breaks the ring cycle.
    if (crosses(c)) bit = 1;
    const int vc = 2 * set + bit;
    TCR_REQUIRE(vc < vcs_available, "path needs more virtual channels than available");
    out[i] = static_cast<std::int8_t>(vc);
    prev_x = cur_x;
    prev_sign = cur_sign;
    have_prev = true;
  }
}

}  // namespace

void assign_vcs_into(const Torus& t, const int* channels, int len, int vcs_available,
                     std::int8_t* out) {
  assign_vcs_impl(t, channels, len, vcs_available,
                  [&](int c) { return crosses_dateline(t, c); }, out);
}

void assign_vcs_into(const Torus& t, const int* channels, int len, int vcs_available,
                     const std::uint8_t* dateline, std::int8_t* out) {
  assign_vcs_impl(t, channels, len, vcs_available, [&](int c) { return dateline[c] != 0; },
                  out);
}

std::vector<int> assign_vcs(const Torus& t, const Path& p, int vcs_available) {
  const int len = static_cast<int>(p.channels.size());
  std::vector<std::int8_t> tmp(static_cast<std::size_t>(len));
  assign_vcs_into(t, p.channels.data(), len, vcs_available, tmp.data());
  return std::vector<int>(tmp.begin(), tmp.end());
}

}  // namespace tcr
