#include "tcr/sim/soa_state.hpp"

#include "tcr/util/check.hpp"

namespace tcr::sim_detail {

void FlitPool::reset(int stride, int reserve_flits) {
  TCR_REQUIRE(stride >= 1, "flit path arena needs positive stride");
  stride_ = stride;
  live_ = 0;
  free_head_ = kNoFlit;
  hop.clear();
  len.clear();
  injected_at.clear();
  measured.clear();
  next.clear();
  channels_.clear();
  vcs_.clear();
  if (reserve_flits > 0) grow(reserve_flits);
}

void FlitPool::grow(int min_capacity) {
  const int old = capacity();
  int cap = old == 0 ? 64 : old;
  while (cap < min_capacity) cap *= 2;
  hop.resize(cap);
  len.resize(cap);
  injected_at.resize(cap);
  measured.resize(cap);
  next.resize(cap);
  channels_.resize(static_cast<std::size_t>(cap) * stride_);
  vcs_.resize(static_cast<std::size_t>(cap) * stride_);
  // Thread the new slots onto the free list, newest last so allocation
  // order stays low-to-high (friendlier reuse, deterministic either way).
  for (int f = cap - 1; f >= old; --f) {
    next[f] = free_head_;
    free_head_ = f;
  }
}

FlitId FlitPool::alloc() {
  if (free_head_ == kNoFlit) grow(capacity() + 1);
  const FlitId f = free_head_;
  free_head_ = next[f];
  ++live_;
  return f;
}

void FlitPool::release(FlitId f) {
  next[f] = free_head_;
  free_head_ = f;
  --live_;
}

void VcRings::reset(int num_buffers, int depth) {
  TCR_REQUIRE(depth >= 1, "VC buffers need at least one slot");
  TCR_REQUIRE(depth < (1 << 15), "buffer depth exceeds ring index width");
  depth_ = depth;
  slots_.assign(static_cast<std::size_t>(num_buffers) * depth, kNoFlit);
  head_.assign(num_buffers, 0);
  size_.assign(num_buffers, 0);
}

}  // namespace tcr::sim_detail
