// Struct-of-arrays flit state for the parallel simulator.
//
// The legacy simulator kept one heap-allocated Packet (two std::vectors plus
// bookkeeping) per in-flight flit inside per-VC std::deques — cache-hostile
// and allocation-heavy at exactly the rates ROADMAP item 3 cares about. This
// header replaces it with three flat structures:
//
//   * FlitPool   — per-flit fields as parallel arrays indexed by a 32-bit
//                  slot id (FlitId). Paths live in a fixed-stride arena so a
//                  flit's remaining route is one pointer add away and slot
//                  reuse never allocates. Free slots link through `next`.
//   * VcRings    — all (channel, vc) input buffers as one flat ring-buffer
//                  array of FlitIds with capacity = SimConfig::buffer_depth
//                  (the credit limit), so occupancy checks and head probes
//                  are single loads.
//   * SourceQueues — per-node injection FIFOs. Only the queue head is
//                  materialized in the pool; the backlog is kept as compact
//                  pending records so an over-saturated run's queue growth
//                  never bloats the pool the hot loops index into.
//
// Each shard of the parallel simulator owns one FlitPool: every flit
// buffered at a shard's nodes lives in that shard's pool, so the hot phase
// kernels never dereference another thread's arrays (cross-shard moves copy
// the flit payload through a mailbox — see sharding.hpp). Units: `hop` and
// `len` count channels (hops); `injected_at` is an absolute cycle number.
#pragma once

#include <cstdint>
#include <vector>

namespace tcr {
struct Path;
}

namespace tcr::sim_detail {

/// Index of a flit slot in its shard's FlitPool; kNoFlit = "no flit".
using FlitId = std::int32_t;
inline constexpr FlitId kNoFlit = -1;

class FlitPool {
 public:
  /// Drop all flits and reconfigure: `stride` is the per-flit path-arena
  /// capacity in hops (the longest path any routing offers), `reserve_flits`
  /// pre-sizes the arrays to avoid growth in steady state.
  void reset(int stride, int reserve_flits);

  /// Claim a slot (O(1); grows the arrays when the free list is empty).
  FlitId alloc();
  /// Return a slot to the free list.
  void release(FlitId f);

  /// Remaining route of flit f: channel ids, then per-hop VCs, each `len[f]`
  /// long, valid while the slot is live.
  std::int32_t* channels(FlitId f) { return channels_.data() + static_cast<std::size_t>(f) * stride_; }
  const std::int32_t* channels(FlitId f) const { return channels_.data() + static_cast<std::size_t>(f) * stride_; }
  std::int8_t* vcs(FlitId f) { return vcs_.data() + static_cast<std::size_t>(f) * stride_; }
  const std::int8_t* vcs(FlitId f) const { return vcs_.data() + static_cast<std::size_t>(f) * stride_; }

  int stride() const { return stride_; }
  /// Number of live (allocated) slots — the flits materialized in this
  /// pool's shard (VC buffers, source-queue heads, staged local moves).
  /// Backlogged source-queue records are counted separately
  /// (ShardState::queued).
  int live() const { return live_; }
  int capacity() const { return static_cast<int>(hop.size()); }

  // Per-flit SoA fields, indexed by FlitId. Public by design: the simulator
  // kernels index them directly in tight loops.
  std::vector<std::int32_t> hop;        // next channel index into channels(f)
  std::vector<std::int32_t> len;        // hops remaining in the arena (hop >= len: awaiting ejection)
  std::vector<std::int64_t> injected_at;  // absolute injection cycle
  std::vector<std::uint8_t> measured;   // injected during the measurement phase?
  std::vector<FlitId> next;             // intrusive free-list link

 private:
  void grow(int min_capacity);

  std::vector<std::int32_t> channels_;  // arena, stride_ per slot
  std::vector<std::int8_t> vcs_;        // arena, stride_ per slot
  int stride_ = 0;
  int live_ = 0;
  FlitId free_head_ = kNoFlit;
};

/// All (channel, vc) input buffers as fixed-capacity ring buffers over one
/// flat FlitId array. Buffer index = channel * vcs + vc; capacity = depth
/// (the per-VC credit count). Pushes beyond capacity are a logic error —
/// the simulator's credit check (occupancy snapshot) prevents them.
class VcRings {
 public:
  void reset(int num_buffers, int depth);

  int depth() const { return depth_; }
  int size(int buf) const { return size_[buf]; }
  bool empty(int buf) const { return size_[buf] == 0; }
  FlitId front(int buf) const {
    return slots_[static_cast<std::size_t>(buf) * depth_ + head_[buf]];
  }
  void push(int buf, FlitId f) {
    // head + size < 2 * depth, so the wrap is one conditional subtract (the
    // runtime-divisor `%` would be a hardware divide in a hot loop).
    int tail = head_[buf] + size_[buf];
    if (tail >= depth_) tail -= depth_;
    slots_[static_cast<std::size_t>(buf) * depth_ + tail] = f;
    ++size_[buf];
  }
  void pop(int buf) {
    const int h = head_[buf] + 1;
    head_[buf] = static_cast<std::int16_t>(h == depth_ ? 0 : h);
    --size_[buf];
  }

 private:
  std::vector<FlitId> slots_;        // buf * depth_ + i
  std::vector<std::int16_t> head_;   // per buffer
  std::vector<std::int16_t> size_;   // per buffer
  int depth_ = 0;
};

/// Per-node injection FIFOs. Channel arbitration only ever looks at the
/// queue *head*, so only the head flit is materialized in the FlitPool; the
/// backlog behind it is kept as compact records (canonical-path pointer +
/// timestamp). An over-saturated run queues flits far faster than the
/// network accepts them — hundreds of thousands at a 0.95 offered rate —
/// and keeping that backlog out of the pool keeps the pool small enough
/// that the random-indexed probe loops stay cache-resident at any load.
/// Invariant: head[n] == kNoFlit implies the backlog of n is empty (a
/// record is promoted to a materialized head the moment the head slot
/// frees up — see Engine::materialize).
struct SourceQueues {
  struct Pending {
    const Path* path;          // canonical path; translated at materialization
    std::int64_t injected_at;  // absolute queue-entry cycle (latency base)
    std::uint8_t measured;
  };

  std::vector<FlitId> head;  // materialized head flit, kNoFlit if queue empty
  std::vector<std::vector<Pending>> backlog;  // per node; FIFO from begin[n]
  std::vector<std::int32_t> begin;            // per node: first live record

  void reset(int num_nodes) {
    head.assign(num_nodes, kNoFlit);
    backlog.assign(num_nodes, {});
    begin.assign(num_nodes, 0);
  }
  bool empty(int node) const { return head[node] == kNoFlit; }
  bool has_backlog(int node) const {
    return begin[node] < static_cast<int>(backlog[node].size());
  }
  void push_backlog(int node, const Pending& p) { backlog[node].push_back(p); }
  /// Pop the oldest backlog record (must exist). The dead prefix is
  /// reclaimed when the queue drains or the prefix dominates the vector, so
  /// storage stays proportional to the live backlog.
  Pending pop_backlog(int node) {
    auto& q = backlog[node];
    const Pending p = q[begin[node]++];
    if (begin[node] == static_cast<int>(q.size())) {
      q.clear();
      begin[node] = 0;
    } else if (begin[node] >= 1024 && begin[node] * 2 >= static_cast<int>(q.size())) {
      q.erase(q.begin(), q.begin() + begin[node]);
      begin[node] = 0;
    }
    return p;
  }
};

}  // namespace tcr::sim_detail
