// Shard decomposition and deterministic cross-shard handoff for the
// parallel flit simulator.
//
// The torus is partitioned into contiguous node blocks (ThreadPool::
// block_range, so the partition depends only on (num_nodes, num_shards)).
// Ownership discipline — the invariant every kernel below preserves:
//
//   * shard(n) exclusively mutates node n's source queue, ejection
//     round-robin pointer, per-node Rng, and the buffers of n's *incoming*
//     channels (plus their occupancy snapshots);
//   * shard(src(c)) exclusively mutates channel c's traversal state (its
//     output round-robin pointer) and performs c's one move per cycle;
//   * every flit buffered at shard s's nodes lives in shard s's FlitPool.
//
// A simulated cycle runs as two parallel phases around two barriers
// (util::EpochBarrier), with all inter-shard communication staged:
//
//   phase 1 (per shard): apply last cycle's staged arrivals (mailboxes in
//     fixed source-shard order, then same-shard moves), inject, eject,
//     publish the post-ejection occupancy snapshot.
//   -- barrier --
//   phase 2 (per shard): for each owned channel, probe the (same-shard)
//     source queue and input buffers round-robin and stage at most one
//     move: same-shard moves keep the FlitId; cross-shard moves copy the
//     flit's remaining route into the (src-shard, dst-shard) mailbox and
//     free the origin slot.
//   -- barrier + serial tick (coordinator: stats, watchdog, windows,
//      phase machine, cancellation) --
//
// Determinism: traversal capacity checks read the frozen snapshot (not live
// buffer state), each (channel, vc) buffer receives at most one flit per
// cycle (only its channel feeds it), and per-node Rng streams make
// injection independent of the iteration order — so the state evolution is
// a pure function of (routing, traffic, config, seed), bitwise identical
// for every thread and shard count. The snapshot also gives the engine its
// one deliberate semantic difference from the legacy serial simulator: a
// buffer slot freed by a traversal becomes visible to upstream capacity
// checks on the *next* cycle (one-cycle credit latency), matching how real
// routers learn about credits and removing the legacy code's dependence on
// global channel iteration order.
#pragma once

#include <cstdint>
#include <vector>

#include "tcr/graph/torus.hpp"
#include "tcr/sim/soa_state.hpp"
#include "tcr/sim/traffic_gen.hpp"
#include "tcr/util/rng.hpp"

namespace tcr::fault {
struct SimFaultPlan;
}
namespace tcr::obs {
class Histogram;
}

namespace tcr::sim_detail {

/// Contiguous-block partition of nodes (and with them channels and buffers)
/// across shards.
struct ShardLayout {
  int num_shards = 1;
  std::vector<int> node_begin;      // size num_shards + 1
  std::vector<int> shard_of_node;   // size num_nodes

  static ShardLayout make(int num_nodes, int num_shards);
};

/// One staged cross-shard flit: destination buffer plus the copied payload.
/// The remaining route (`rem` hops of channels and VCs) lives in the
/// mailbox's side arenas at this item's index * stride.
struct Handoff {
  std::int32_t buf = 0;           // destination buffer index (channel * vcs + vc)
  std::int32_t rem = 0;           // hops remaining
  std::int64_t injected_at = 0;
  std::uint8_t measured = 0;
};

/// Single-producer (source shard, phase 2) / single-consumer (destination
/// shard, next phase 1) staging area. The barrier between the phases is the
/// only synchronization the mailbox needs.
struct Mailbox {
  std::vector<Handoff> items;
  std::vector<std::int32_t> channels;  // arena, stride per item
  std::vector<std::int8_t> vcs;        // arena, stride per item

  void clear() {
    items.clear();
    channels.clear();
    vcs.clear();
  }
};

/// Per-shard mutable state plus the cycle counters the coordinator folds at
/// the serial tick. Cache-line aligned so neighboring shards' hot counters
/// never share a line.
struct alignas(64) ShardState {
  FlitPool pool;

  // Same-shard staged moves (FlitId stays valid; applied next phase 1).
  struct LocalMove {
    std::int32_t buf;
    FlitId flit;
  };
  std::vector<LocalMove> local_moves;

  // Cumulative counters, written only by the owning worker during phases and
  // read/reset only by the coordinator inside the serial tick.
  long injected = 0, ejected = 0;
  long window_injected = 0, window_ejected = 0;  // coordinator resets per window
  long latency_sum = 0;                          // integer cycles, exact
  long latency_count = 0;
  long link_down_cycles = 0, credit_stalls = 0;
  long handoffs = 0;  // cumulative cross-shard flits sent
  long queued = 0;    // current backlogged (not yet materialized) source flits
  bool moved = false;  // any ejection/traversal this cycle (reset in phase 1)
};

/// The whole simulator state the phase kernels operate on. Owned by
/// sim::Simulator; the kernels are free functions so the worker loop in
/// simulator.cpp stays a thin shell.
struct Engine {
  // Immutable during a run.
  const Torus* torus = nullptr;
  const TrafficGen* gen = nullptr;
  const fault::SimFaultPlan* faults = nullptr;
  int vcs = 0;
  int depth = 0;
  int num_shards = 1;
  ShardLayout layout;
  std::vector<std::int32_t> in_channel;  // node * kNumDirs + dir -> incoming channel id
  // node * (kNumDirs * vcs) + dir * vcs + vc -> input-buffer index. Hoists
  // the dir/vc -> buffer arithmetic (two runtime-divisor divides) out of the
  // per-probe hot loops in both phases.
  std::vector<std::int32_t> in_buf;
  // More hoisted topology arithmetic: Torus coordinate math divides by the
  // runtime radix, which is a hardware divide per hop per injection. These
  // tables make path translation and VC assignment division-free.
  std::vector<std::int32_t> node_x, node_y;      // per node: torus coordinates
  std::vector<std::uint8_t> dateline;            // per channel: crosses the wrap edge
  std::vector<std::int32_t> chan_dst_shard;      // per channel: shard of channel_dst

  // Owner-partitioned state (element i written only by its owner shard).
  std::vector<ShardState> shards;
  std::vector<Mailbox> mailboxes;  // src * num_shards + dst
  VcRings rings;
  SourceQueues src_queues;
  std::vector<std::int16_t> occ;       // per-buffer occupancy snapshot (phase-1 published)
  std::vector<std::int32_t> eject_rr;  // per node
  std::vector<std::int32_t> out_rr;    // per channel
  std::vector<Rng> node_rng;           // per node, stream seeded from (seed, node)
  // Probe accelerators: the output channel the *front* flit of each input
  // buffer / source queue needs next (kWantEject once it is at its
  // destination, kWantNone when empty). A buffered flit's next hop never
  // changes while it sits in a ring, so these are maintained on push/pop
  // only — the probe loops then test one contiguous int32 instead of three
  // dependent random loads into a (possibly huge) flit pool. Same ownership
  // as the rings they shadow: pushed and popped only by the owning shard.
  std::vector<std::int32_t> want;      // per buffer
  std::vector<std::int32_t> want_src;  // per node (source-queue head)

  // Coordinator-written cycle state, read by all shards during phases (the
  // barrier release orders the writes before the reads).
  long cycle = 0;
  bool injecting = true;   // false while draining
  bool measuring = false;

  // Latency sinks (atomic histograms; concurrent record() is
  // order-independent for counts/min/max, which is all we report).
  obs::Histogram* run_latency = nullptr;     // per-run percentile histogram
  obs::Histogram* global_latency = nullptr;  // process-wide sim.packet_latency

  void init(const Torus& t, const TrafficGen& g, const fault::SimFaultPlan* fault_plan,
            int vcs_, int depth_, int shards_, std::uint64_t seed, int path_stride);

  /// Phase 1 for shard s: arrivals, injection, ejection, snapshot publish.
  void phase1(int s);
  /// Phase 2 for shard s: channel traversal with staged moves.
  void phase2(int s);

  /// Materialize a source flit as node n's queue head: allocate a pool
  /// slot, translate the canonical path by n, assign VCs, and publish
  /// want_src. Pure given its arguments, so deferring it from queue entry
  /// to head promotion cannot change simulation behavior.
  void materialize(FlitPool& pool, int n, const Path& path, std::int64_t when,
                   std::uint8_t measured_flag);

  int buffer_index(int channel, int vc) const { return channel * vcs + vc; }
  static constexpr std::int32_t kWantEject = -1;
  static constexpr std::int32_t kWantNone = -2;
  /// The output channel flit f needs next, or kWantEject at its destination.
  int next_want(const FlitPool& pool, FlitId f) const {
    return pool.hop[f] < pool.len[f] ? pool.channels(f)[pool.hop[f]] : kWantEject;
  }
  /// Live flits network-wide (pools + staged mailbox flits). Coordinator
  /// only (serial tick).
  long live_flits() const;
};

}  // namespace tcr::sim_detail
