#include "tcr/sim/traffic_gen.hpp"

#include "tcr/util/check.hpp"

namespace tcr {

TrafficGen::TrafficGen(const TorusRouting& routing, double injection_rate, std::uint64_t seed)
    : routing_(routing), rate_(injection_rate), rng_(seed) {
  TCR_REQUIRE(injection_rate >= 0.0 && injection_rate <= 1.0,
              "injection rate must lie in [0, 1]");
  cumulative_.resize(routing.torus().num_nodes());
}

TrafficGen::TrafficGen(const TorusRouting& routing, double injection_rate,
                       std::vector<int> perm, std::uint64_t seed)
    : TrafficGen(routing, injection_rate, seed) {
  TCR_REQUIRE(static_cast<int>(perm.size()) == routing.torus().num_nodes(),
              "permutation size mismatch");
  perm_ = std::move(perm);
}

std::optional<Path> TrafficGen::maybe_inject(int node) {
  if (rng_.uniform() >= rate_) return std::nullopt;
  const Torus& t = routing_.torus();
  int dst;
  if (perm_.empty()) {
    dst = static_cast<int>(rng_.below(t.num_nodes()));
  } else {
    dst = perm_[node];
  }
  if (dst == node) return std::nullopt;
  return sample_path(node, dst);
}

Path TrafficGen::sample_path(int src, int dst) {
  const Torus& t = routing_.torus();
  const int e = t.offset(src, dst);
  const auto& paths = routing_.paths(e);
  TCR_REQUIRE(!paths.empty(), "routing offers no path for requested pair");
  auto& cum = cumulative_[e];
  if (cum.empty()) {
    cum.reserve(paths.size());
    double acc = 0.0;
    for (const auto& wp : paths) {
      acc += wp.weight;
      cum.push_back(acc);
    }
  }
  const double u = rng_.uniform() * cum.back();
  std::size_t idx = std::lower_bound(cum.begin(), cum.end(), u) - cum.begin();
  if (idx >= paths.size()) idx = paths.size() - 1;
  return translate_path(t, paths[idx].path, src);
}

}  // namespace tcr
