#include "tcr/sim/traffic_gen.hpp"

#include <algorithm>

#include "tcr/util/check.hpp"

namespace tcr {

TrafficGen::TrafficGen(const TorusRouting& routing, double injection_rate, std::uint64_t seed)
    : routing_(routing), rate_(injection_rate), rng_(seed) {
  TCR_REQUIRE(injection_rate >= 0.0 && injection_rate <= 1.0,
              "injection rate must lie in [0, 1]");
  cumulative_.resize(routing.torus().num_nodes());
}

TrafficGen::TrafficGen(const TorusRouting& routing, double injection_rate,
                       std::vector<int> perm, std::uint64_t seed)
    : TrafficGen(routing, injection_rate, seed) {
  TCR_REQUIRE(static_cast<int>(perm.size()) == routing.torus().num_nodes(),
              "permutation size mismatch");
  perm_ = std::move(perm);
}

std::optional<Path> TrafficGen::maybe_inject(int node) {
  if (rng_.uniform() >= rate_) return std::nullopt;
  const Torus& t = routing_.torus();
  int dst;
  if (perm_.empty()) {
    dst = static_cast<int>(rng_.below(t.num_nodes()));
  } else {
    dst = perm_[node];
  }
  if (dst == node) return std::nullopt;
  return sample_path(node, dst);
}

void TrafficGen::build_cumulative(int e) {
  const auto& paths = routing_.paths(e);
  auto& cum = cumulative_[e];
  cum.reserve(paths.size());
  double acc = 0.0;
  for (const auto& wp : paths) {
    acc += wp.weight;
    cum.push_back(acc);
  }
}

void TrafficGen::prepare() {
  if (prepared_) return;
  const int n = routing_.torus().num_nodes();
  for (int e = 1; e < n; ++e) {
    const auto& paths = routing_.paths(e);
    for (const auto& wp : paths) {
      max_path_len_ = std::max(max_path_len_, static_cast<int>(wp.path.channels.size()));
    }
    if (cumulative_[e].empty() && !paths.empty()) build_cumulative(e);
  }
  prepared_ = true;
}

std::optional<TrafficGen::PathDraw> TrafficGen::draw(int node, Rng& rng) const {
  if (rng.uniform() >= rate_) return std::nullopt;
  const Torus& t = routing_.torus();
  int dst;
  if (perm_.empty()) {
    dst = static_cast<int>(rng.below(t.num_nodes()));
  } else {
    dst = perm_[node];
  }
  if (dst == node) return std::nullopt;
  const int e = t.offset(node, dst);
  const auto& paths = routing_.paths(e);
  const auto& cum = cumulative_[e];
  TCR_REQUIRE(!cum.empty(), "routing offers no path for requested pair");
  const double u = rng.uniform() * cum.back();
  std::size_t idx = std::lower_bound(cum.begin(), cum.end(), u) - cum.begin();
  if (idx >= paths.size()) idx = paths.size() - 1;
  return PathDraw{&paths[idx].path, dst};
}

Path TrafficGen::sample_path(int src, int dst) {
  const Torus& t = routing_.torus();
  const int e = t.offset(src, dst);
  const auto& paths = routing_.paths(e);
  TCR_REQUIRE(!paths.empty(), "routing offers no path for requested pair");
  auto& cum = cumulative_[e];
  if (cum.empty()) build_cumulative(e);
  const double u = rng_.uniform() * cum.back();
  std::size_t idx = std::lower_bound(cum.begin(), cum.end(), u) - cum.begin();
  if (idx >= paths.size()) idx = paths.size() - 1;
  return translate_path(t, paths[idx].path, src);
}

}  // namespace tcr
