// Oblivious routing algorithms on the torus, in the canonical (translation-
// invariant) representation the paper's symmetry reduction uses (§4):
// a probability distribution over paths from node 0 to every offset e.
// Paths for an arbitrary pair (s, d) are the canonical paths of offset
// e = d - s translated by s.
//
// The canonical *load table* L0[e][c] — the expected number of traversals of
// channel c by a unit flow from 0 to e — is the object every metric needs:
//   H_avg      = (1/N) sum_{e,c} L0[e][c]                        (eq. 5)
//   gamma_c    = sum_{s,d} lambda[s][d] * L0[d-s][c translated]  (eq. 2)
//   worst case = max-weight matching over W[s][d] (see metrics/)
#pragma once

#include <string>
#include <vector>

#include "tcr/lin/dense_matrix.hpp"
#include "tcr/routing/path.hpp"

namespace tcr {

class TorusRouting {
 public:
  TorusRouting(const Torus& torus, std::string name);

  const Torus& torus() const { return *torus_; }
  const std::string& name() const { return name_; }

  /// Add a canonical path for offset e (must run from node 0 to node e)
  /// with the given probability mass. Identical paths accumulate.
  void add_path(int e, Path p, double probability);

  /// Paths for offset e (e != 0; offset 0 has the empty path).
  const std::vector<WeightedPath>& paths(int e) const { return paths_[e]; }

  /// Paths for an arbitrary pair, translated from the canonical set.
  std::vector<WeightedPath> paths_for_pair(int s, int d) const;

  /// Total probability mass per offset (1.0 for a valid algorithm).
  double total_probability(int e) const;

  /// Throws if any offset's probabilities do not sum to 1, any path is
  /// malformed, or any probability is negative (constraint set of eq. 1).
  void validate(double tol = 1e-6) const;

  /// Rescale each offset's weights to sum exactly to 1.
  void normalize();

  /// N x C canonical load table (computed once, cached).
  const DenseMatrix& load_table() const;

  /// Mean path length over all pairs = mean over offsets (eq. 5).
  double avg_path_length() const;

  /// avg_path_length / mean minimal distance (the paper's normalized
  /// "average path length", >= 1).
  double normalized_locality() const;

 private:
  const Torus* torus_;  // non-owning; pointer keeps the type assignable
  std::string name_;
  std::vector<std::vector<WeightedPath>> paths_;
  mutable DenseMatrix load_table_;
  mutable bool table_valid_ = false;
};

}  // namespace tcr
