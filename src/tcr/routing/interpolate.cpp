#include "tcr/routing/interpolate.hpp"

#include "tcr/util/check.hpp"

namespace tcr {

TorusRouting interpolate(const TorusRouting& r1, const TorusRouting& r2, double alpha) {
  TCR_REQUIRE(r1.torus().k() == r2.torus().k(), "interpolation requires matching topologies");
  TCR_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "alpha must lie in [0, 1]");
  TorusRouting r(r1.torus(),
                 r1.name() + "*" + std::to_string(alpha) + "+" + r2.name());
  for (int e = 1; e < r1.torus().num_nodes(); ++e) {
    for (const auto& wp : r1.paths(e)) r.add_path(e, wp.path, alpha * wp.weight);
    for (const auto& wp : r2.paths(e)) r.add_path(e, wp.path, (1.0 - alpha) * wp.weight);
  }
  return r;
}

double interpolation_throughput_bound(double theta1, double theta2, double alpha) {
  TCR_REQUIRE(theta1 > 0.0 && theta2 > 0.0, "throughputs must be positive");
  return 1.0 / (alpha / theta1 + (1.0 - alpha) / theta2);
}

}  // namespace tcr
