// Paths and node walks.
//
// A Path is a channel sequence; routing algorithms build them from node
// walks. remove_loops() implements the loop-removal of paper §5.2 /
// Figure 3: cutting node-revisiting cycles out of a two-phase walk can only
// reduce channel loads, so worst-case throughput never drops while the path
// shortens — the observation behind IVAL.
#pragma once

#include <vector>

#include "tcr/graph/digraph.hpp"
#include "tcr/graph/torus.hpp"

namespace tcr {

struct Path {
  int src = 0;
  int dst = 0;
  std::vector<int> channels;

  int length() const { return static_cast<int>(channels.size()); }
  bool operator==(const Path& other) const = default;
};

struct WeightedPath {
  Path path;
  double weight = 0.0;
};

/// Node sequence visited by a path on the torus (src first, dst last).
std::vector<int> path_nodes(const Torus& t, const Path& p);

/// True if the path's channels match the graph (contiguous src->dst chain).
bool path_is_valid(const Digraph& g, const Path& p);

/// True if no channel appears twice.
bool path_channel_simple(const Path& p);

/// True if no node is visited twice (torus version).
bool path_node_simple(const Torus& t, const Path& p);

/// Number of dimension changes (X<->Y turns) along a torus path.
int count_turns(const Torus& t, const Path& p);

/// True if the path never immediately reverses direction within a dimension
/// ("u-turn", disallowed by 2TURN).
bool has_u_turn(const Torus& t, const Path& p);

/// Build a torus path from a node walk (consecutive nodes must be torus
/// neighbors).
Path path_from_walk(const Torus& t, const std::vector<int>& walk);

/// Remove all node-revisiting loops from a walk: scan forward keeping a
/// partial walk; when a node already on it reappears, truncate back to its
/// first occurrence. The result is a simple walk whose channel multiset is a
/// subset of the original's.
std::vector<int> remove_loops(const std::vector<int>& walk);

/// Translate a canonical torus path by t (translation automorphism).
Path translate_path(const Torus& t_topo, const Path& p, int t);

}  // namespace tcr
