// Valiant's randomized routing (VAL, Table 1) and the paper's improved
// variant (IVAL, §5.2).
//
// VAL:  route DOR(XY) from s to a uniformly random intermediate i, then
//       DOR(XY) from i to d. Perfectly load-balanced, path length exactly
//       twice minimal on average.
// IVAL: phase 1 uses XY order, phase 2 uses YX order, and node-revisiting
//       loops in the concatenated walk are removed (Figure 3). Loop removal
//       only sheds channel load, so IVAL keeps VAL's optimal worst-case
//       throughput (cap/2) while cutting the average path length to about
//       1.61x minimal on the 8-ary 2-cube.
#pragma once

#include "tcr/routing/routing.hpp"

namespace tcr {

TorusRouting make_valiant(const Torus& torus);

TorusRouting make_ival(const Torus& torus);

}  // namespace tcr
