#include "tcr/routing/romm.hpp"

#include "tcr/routing/dor.hpp"
#include "tcr/util/check.hpp"

namespace tcr {

TorusRouting make_romm(const Torus& torus) {
  TorusRouting r(torus, "ROMM");
  const int k = torus.k();
  for (int e = 1; e < torus.num_nodes(); ++e) {
    const int dx = torus.x_of(e), dy = torus.y_of(e);
    for (const auto& qx : detail::minimal_ring_choices(k, dx)) {
      for (const auto& qy : detail::minimal_ring_choices(k, dy)) {
        // Intermediate uniform over the (qx.len + 1) x (qy.len + 1) rectangle.
        const double pick = qx.prob * qy.prob / ((qx.len + 1) * (qy.len + 1));
        for (int a = 0; a <= qx.len; ++a) {
          for (int b = 0; b <= qy.len; ++b) {
            std::vector<int> walk{0};
            detail::append_ring_walk(torus, walk, true, qx.sign, a);
            detail::append_ring_walk(torus, walk, false, qy.sign, b);
            detail::append_ring_walk(torus, walk, true, qx.sign, qx.len - a);
            detail::append_ring_walk(torus, walk, false, qy.sign, qy.len - b);
            TCR_ASSERT(walk.back() == e, "ROMM walk must reach the destination");
            r.add_path(e, path_from_walk(torus, walk), pick);
          }
        }
      }
    }
  }
  return r;
}

}  // namespace tcr
