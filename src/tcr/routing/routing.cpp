#include "tcr/routing/routing.hpp"

#include <cmath>

#include "tcr/util/check.hpp"

namespace tcr {

TorusRouting::TorusRouting(const Torus& torus, std::string name)
    : torus_(&torus), name_(std::move(name)), paths_(torus.num_nodes()) {}

void TorusRouting::add_path(int e, Path p, double probability) {
  TCR_REQUIRE(e >= 0 && e < torus().num_nodes(), "offset out of range");
  TCR_REQUIRE(p.src == 0 && p.dst == e, "canonical path must run 0 -> e");
  TCR_REQUIRE(probability >= 0.0, "probability must be non-negative");
  if (probability == 0.0) return;
  table_valid_ = false;
  for (auto& wp : paths_[e]) {
    if (wp.path == p) {
      wp.weight += probability;
      return;
    }
  }
  paths_[e].push_back({std::move(p), probability});
}

std::vector<WeightedPath> TorusRouting::paths_for_pair(int s, int d) const {
  const int e = torus().offset(s, d);
  std::vector<WeightedPath> out;
  out.reserve(paths_[e].size());
  for (const auto& wp : paths_[e]) {
    out.push_back({translate_path(torus(), wp.path, s), wp.weight});
  }
  return out;
}

double TorusRouting::total_probability(int e) const {
  double sum = 0.0;
  for (const auto& wp : paths_[e]) sum += wp.weight;
  return sum;
}

void TorusRouting::validate(double tol) const {
  const Digraph g = torus().graph();
  for (int e = 0; e < torus().num_nodes(); ++e) {
    if (e == 0) continue;  // self traffic uses the empty path
    TCR_REQUIRE(std::abs(total_probability(e) - 1.0) <= tol,
                name_ + ": path probabilities for offset must sum to 1");
    for (const auto& wp : paths_[e]) {
      TCR_REQUIRE(wp.weight >= -tol, name_ + ": negative path probability");
      TCR_REQUIRE(path_is_valid(g, wp.path), name_ + ": malformed path");
      TCR_REQUIRE(path_channel_simple(wp.path), name_ + ": path revisits a channel");
    }
  }
}

void TorusRouting::normalize() {
  table_valid_ = false;
  for (int e = 1; e < torus().num_nodes(); ++e) {
    const double sum = total_probability(e);
    TCR_REQUIRE(sum > 0.0, "cannot normalize offset with zero mass");
    for (auto& wp : paths_[e]) wp.weight /= sum;
  }
}

const DenseMatrix& TorusRouting::load_table() const {
  if (!table_valid_) {
    load_table_ = DenseMatrix(torus().num_nodes(), torus().num_channels());
    for (int e = 0; e < torus().num_nodes(); ++e) {
      for (const auto& wp : paths_[e]) {
        for (int c : wp.path.channels) load_table_(e, c) += wp.weight;
      }
    }
    table_valid_ = true;
  }
  return load_table_;
}

double TorusRouting::avg_path_length() const {
  return load_table().sum() / torus().num_nodes();
}

double TorusRouting::normalized_locality() const {
  return avg_path_length() / torus().mean_min_distance();
}

}  // namespace tcr
