// ROMM (Table 1): two-phase randomized routing that stays minimal by always
// drawing the intermediate node from the minimal quadrant — the rectangle
// spanned by source and destination along the minimal direction in each
// dimension (both rectangles, split evenly, when a k/2 offset ties).
#pragma once

#include "tcr/routing/routing.hpp"

namespace tcr {

TorusRouting make_romm(const Torus& torus);

}  // namespace tcr
