#include "tcr/routing/valiant.hpp"

#include "tcr/routing/dor.hpp"
#include "tcr/util/check.hpp"

namespace tcr {

namespace {

TorusRouting make_two_phase(const Torus& torus, const std::string& name, bool reverse_phase2,
                            bool remove_path_loops) {
  TorusRouting r(torus, name);
  const int n = torus.num_nodes();
  const double pick = 1.0 / n;
  for (int e = 1; e < n; ++e) {
    for (int i = 0; i < n; ++i) {
      const auto phase1 = detail::dor_walks(torus, 0, i, /*x_first=*/true);
      const auto phase2 = detail::dor_walks(torus, i, e, /*x_first=*/!reverse_phase2);
      for (const auto& w1 : phase1) {
        for (const auto& w2 : phase2) {
          std::vector<int> walk = w1.walk;
          walk.insert(walk.end(), w2.walk.begin() + 1, w2.walk.end());
          if (remove_path_loops) walk = remove_loops(walk);
          r.add_path(e, path_from_walk(torus, walk), pick * w1.prob * w2.prob);
        }
      }
    }
  }
  return r;
}

}  // namespace

TorusRouting make_valiant(const Torus& torus) {
  return make_two_phase(torus, "VAL", /*reverse_phase2=*/false, /*remove_path_loops=*/false);
}

TorusRouting make_ival(const Torus& torus) {
  return make_two_phase(torus, "IVAL", /*reverse_phase2=*/true, /*remove_path_loops=*/true);
}

}  // namespace tcr
