// RLB and RLBth (Table 1), after Singh et al. [18].
//
// RLB picks, independently per dimension, the minimal direction with
// probability (k - delta)/k and the non-minimal one with probability
// delta/k (which exactly balances ring channel load), then routes two DOR
// phases through an intermediate drawn uniformly from the rectangle spanned
// in the chosen directions. RLBth forces the minimal direction whenever the
// dimension offset is below k/4.
#pragma once

#include "tcr/routing/routing.hpp"

namespace tcr {

TorusRouting make_rlb(const Torus& torus);

TorusRouting make_rlbth(const Torus& torus);

}  // namespace tcr
