#include "tcr/routing/general.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "tcr/util/check.hpp"

namespace tcr {

GeneralRouting::GeneralRouting(const Digraph& graph, std::string name)
    : graph_(&graph),
      name_(std::move(name)),
      paths_(static_cast<std::size_t>(graph.num_nodes()) * graph.num_nodes()) {}

void GeneralRouting::add_path(int s, int d, Path p, double probability) {
  const int n = graph_->num_nodes();
  TCR_REQUIRE(s >= 0 && s < n && d >= 0 && d < n, "pair out of range");
  TCR_REQUIRE(p.src == s && p.dst == d, "path endpoints must match the pair");
  TCR_REQUIRE(probability >= 0.0, "probability must be non-negative");
  if (probability == 0.0) return;
  auto& list = paths_[s * n + d];
  for (auto& wp : list) {
    if (wp.path == p) {
      wp.weight += probability;
      return;
    }
  }
  list.push_back({std::move(p), probability});
}

void GeneralRouting::validate(double tol) const {
  const int n = graph_->num_nodes();
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      double sum = 0.0;
      for (const auto& wp : paths(s, d)) {
        TCR_REQUIRE(wp.weight >= -tol, name_ + ": negative path probability");
        TCR_REQUIRE(path_is_valid(*graph_, wp.path), name_ + ": malformed path");
        TCR_REQUIRE(path_channel_simple(wp.path), name_ + ": path revisits a channel");
        sum += wp.weight;
      }
      TCR_REQUIRE(std::abs(sum - 1.0) <= tol,
                  name_ + ": pair probabilities must sum to 1");
    }
  }
}

void GeneralRouting::normalize() {
  const int n = graph_->num_nodes();
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      auto& list = paths_[s * n + d];
      double sum = 0.0;
      for (const auto& wp : list) sum += wp.weight;
      TCR_REQUIRE(sum > 0.0, "cannot normalize pair with zero mass");
      for (auto& wp : list) wp.weight /= sum;
    }
  }
}

DenseMatrix GeneralRouting::pair_load_matrix(int channel) const {
  const int n = graph_->num_nodes();
  DenseMatrix w(n, n);
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      double load = 0.0;
      for (const auto& wp : paths(s, d)) {
        for (int c : wp.path.channels) {
          if (c == channel) load += wp.weight;
        }
      }
      w(s, d) = load;
    }
  }
  return w;
}

std::vector<double> GeneralRouting::channel_loads(const TrafficMatrix& lambda) const {
  const int n = graph_->num_nodes();
  TCR_REQUIRE(lambda.rows() == n && lambda.cols() == n, "traffic matrix size mismatch");
  std::vector<double> gamma(static_cast<std::size_t>(graph_->num_channels()), 0.0);
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      const double w = lambda(s, d);
      if (w == 0.0) continue;
      for (const auto& wp : paths(s, d)) {
        for (int c : wp.path.channels) gamma[c] += w * wp.weight;
      }
    }
  }
  return gamma;
}

double GeneralRouting::max_channel_load(const TrafficMatrix& lambda) const {
  const auto gamma = channel_loads(lambda);
  double m = 0.0;
  for (int c = 0; c < graph_->num_channels(); ++c) {
    m = std::max(m, gamma[c] / graph_->channel(c).bandwidth);
  }
  return m;
}

double GeneralRouting::avg_path_length() const {
  const int n = graph_->num_nodes();
  double total = 0.0;
  for (const auto& list : paths_) {
    for (const auto& wp : list) total += wp.weight * wp.path.length();
  }
  return total / (static_cast<double>(n) * n);
}

double GeneralRouting::normalized_locality() const {
  return avg_path_length() / graph_->mean_min_distance();
}

GeneralWorstCase worst_case(const GeneralRouting& r) {
  GeneralWorstCase best;
  for (int c = 0; c < r.graph().num_channels(); ++c) {
    DenseMatrix w = r.pair_load_matrix(c);
    const double b = r.graph().channel(c).bandwidth;
    const AssignmentResult a = solve_assignment_max(w);
    if (a.value / b > best.gamma) {
      best.gamma = a.value / b;
      best.channel = c;
      best.permutation = a.assignment;
    }
  }
  return best;
}

std::vector<WeightedPath> decompose_flow(const Digraph& g, int s, int d,
                                         std::vector<double> flow, double eps) {
  TCR_REQUIRE(s != d, "source and destination must differ");
  std::vector<WeightedPath> out;
  const int n = g.num_nodes();
  std::vector<int> pred(static_cast<std::size_t>(n));
  for (;;) {
    std::fill(pred.begin(), pred.end(), -1);
    std::queue<int> q;
    q.push(s);
    pred[s] = -2;
    while (!q.empty() && pred[d] == -1) {
      const int nd = q.front();
      q.pop();
      for (int c : g.out_channels(nd)) {
        if (flow[c] <= eps) continue;
        const int to = g.channel(c).dst;
        if (pred[to] == -1) {
          pred[to] = c;
          q.push(to);
        }
      }
    }
    if (pred[d] == -1) break;
    std::vector<int> channels;
    double delta = std::numeric_limits<double>::infinity();
    for (int nd = d; nd != s;) {
      const int c = pred[nd];
      channels.push_back(c);
      delta = std::min(delta, flow[c]);
      nd = g.channel(c).src;
    }
    std::reverse(channels.begin(), channels.end());
    for (int c : channels) flow[c] -= delta;
    out.push_back({Path{s, d, std::move(channels)}, delta});
  }
  return out;
}

GeneralRouting routing_from_flows(const Digraph& g,
                                  const std::vector<std::vector<double>>& flows,
                                  std::string name) {
  const int n = g.num_nodes();
  TCR_REQUIRE(static_cast<int>(flows.size()) == n * n, "flows must cover all pairs");
  GeneralRouting r(g, std::move(name));
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      for (auto& wp : decompose_flow(g, s, d, flows[s * n + d])) {
        r.add_path(s, d, std::move(wp.path), wp.weight);
      }
    }
  }
  r.normalize();
  return r;
}

}  // namespace tcr
