#include "tcr/routing/dor.hpp"

#include "tcr/util/check.hpp"

namespace tcr {

namespace detail {

std::vector<RingChoice> minimal_ring_choices(int k, int delta) {
  TCR_REQUIRE(delta >= 0 && delta < k, "ring offset must be reduced mod k");
  if (delta == 0) return {{1, 0, 1.0}};
  if (2 * delta == k) return {{1, delta, 0.5}, {-1, delta, 0.5}};
  if (delta < k - delta) return {{1, delta, 1.0}};
  return {{-1, k - delta, 1.0}};
}

void append_ring_walk(const Torus& t, std::vector<int>& walk, bool x_dim, int sign, int len) {
  TCR_REQUIRE(!walk.empty(), "walk must start somewhere");
  const Dir d = x_dim ? (sign > 0 ? Dir::PX : Dir::NX) : (sign > 0 ? Dir::PY : Dir::NY);
  for (int i = 0; i < len; ++i) walk.push_back(t.neighbor(walk.back(), d));
}

std::vector<WeightedWalk> dor_walks(const Torus& t, int from, int to, bool x_first) {
  const int k = t.k();
  const int dx = (t.x_of(to) - t.x_of(from) + k) % k;
  const int dy = (t.y_of(to) - t.y_of(from) + k) % k;
  const auto xc = minimal_ring_choices(k, dx);
  const auto yc = minimal_ring_choices(k, dy);

  std::vector<WeightedWalk> out;
  out.reserve(xc.size() * yc.size());
  for (const auto& x : xc) {
    for (const auto& y : yc) {
      WeightedWalk w;
      w.walk.push_back(from);
      if (x_first) {
        append_ring_walk(t, w.walk, true, x.sign, x.len);
        append_ring_walk(t, w.walk, false, y.sign, y.len);
      } else {
        append_ring_walk(t, w.walk, false, y.sign, y.len);
        append_ring_walk(t, w.walk, true, x.sign, x.len);
      }
      w.prob = x.prob * y.prob;
      TCR_ASSERT(w.walk.back() == to, "dor walk must reach the destination");
      out.push_back(std::move(w));
    }
  }
  return out;
}

}  // namespace detail

TorusRouting make_dor(const Torus& torus) {
  TorusRouting r(torus, "DOR");
  for (int e = 1; e < torus.num_nodes(); ++e) {
    for (const auto& w : detail::dor_walks(torus, 0, e, /*x_first=*/true)) {
      r.add_path(e, path_from_walk(torus, w.walk), w.prob);
    }
  }
  return r;
}

}  // namespace tcr
