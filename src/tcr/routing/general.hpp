// Oblivious routing on arbitrary digraphs (paper §2 is topology-agnostic;
// only §5 specializes to tori). GeneralRouting stores an explicit path
// distribution per source-destination pair and supports the same metrics as
// the torus fast path — channel loads, locality, and exact worst-case
// throughput via per-channel Hungarian matchings. Intended for small or
// irregular networks; the torus-optimized TorusRouting remains the fast
// path.
#pragma once

#include <string>
#include <vector>

#include "tcr/graph/digraph.hpp"
#include "tcr/matching/hungarian.hpp"
#include "tcr/routing/path.hpp"
#include "tcr/traffic/traffic.hpp"

namespace tcr {

class GeneralRouting {
 public:
  GeneralRouting(const Digraph& graph, std::string name);

  const Digraph& graph() const { return *graph_; }
  const std::string& name() const { return name_; }

  /// Add a path for pair (s, d) with the given probability mass; identical
  /// paths accumulate.
  void add_path(int s, int d, Path p, double probability);

  const std::vector<WeightedPath>& paths(int s, int d) const {
    return paths_[s * graph_->num_nodes() + d];
  }

  /// Throws unless every s != d pair's probabilities sum to 1 and every
  /// path is well-formed and channel-simple (constraint set of eq. 1).
  void validate(double tol = 1e-6) const;
  void normalize();

  /// Per-pair unit load on one channel: W[s][d] (for worst-case matching).
  DenseMatrix pair_load_matrix(int channel) const;

  /// gamma_c for every channel under a traffic matrix (eq. 2),
  /// bandwidth-normalized (eq. 3 divides by b_c at the max).
  std::vector<double> channel_loads(const TrafficMatrix& lambda) const;

  double max_channel_load(const TrafficMatrix& lambda) const;

  /// Mean expected path length over all N^2 pairs (eq. 5).
  double avg_path_length() const;
  double normalized_locality() const;

 private:
  const Digraph* graph_;
  std::string name_;
  std::vector<std::vector<WeightedPath>> paths_;
};

struct GeneralWorstCase {
  double gamma = 0.0;
  int channel = -1;
  std::vector<int> permutation;
};

/// Exact worst-case (bandwidth-normalized) channel load: a max-weight
/// matching per channel — no symmetry assumed, so all C channels are
/// scanned.
GeneralWorstCase worst_case(const GeneralRouting& r);

/// Decompose per-channel flows of one commodity into weighted s->d paths
/// (cycle flow discarded; weights sum to the injected unit).
std::vector<WeightedPath> decompose_flow(const Digraph& g, int s, int d,
                                         std::vector<double> flow, double eps = 1e-9);

/// Build a GeneralRouting from the arc flows returned by the general design
/// LPs (tcr/core/arc_flow.hpp): flows[s * N + d][c].
GeneralRouting routing_from_flows(const Digraph& g,
                                  const std::vector<std::vector<double>>& flows,
                                  std::string name);

}  // namespace tcr
