// Dimension-order routing (DOR, Table 1) and the ring/walk helpers shared by
// the other two-phase algorithms: packets route minimally in X first, then in
// Y; when an offset is exactly k/2 in a dimension the two directions tie and
// the route splits evenly between them.
#pragma once

#include <vector>

#include "tcr/routing/routing.hpp"

namespace tcr {

TorusRouting make_dor(const Torus& torus);

namespace detail {

/// One way of traversing a ring offset: direction sign, hop count, and the
/// probability a minimal router picks it (1.0, or 0.5 on a k/2 tie).
struct RingChoice {
  int sign = 1;
  int len = 0;
  double prob = 1.0;
};

/// Minimal choices for a ring offset delta in [0, k).
std::vector<RingChoice> minimal_ring_choices(int k, int delta);

/// Append `len` steps in dimension X (x_dim) or Y with direction `sign` to a
/// node walk ending at walk.back().
void append_ring_walk(const Torus& t, std::vector<int>& walk, bool x_dim, int sign, int len);

struct WeightedWalk {
  std::vector<int> walk;
  double prob = 1.0;
};

/// All DOR walks from `from` to `to`; x_first = false gives YX order (the
/// reversal IVAL uses for its second phase).
std::vector<WeightedWalk> dor_walks(const Torus& t, int from, int to, bool x_first);

}  // namespace detail

}  // namespace tcr
