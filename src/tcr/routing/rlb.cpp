#include "tcr/routing/rlb.hpp"

#include "tcr/routing/dor.hpp"
#include "tcr/util/check.hpp"

namespace tcr {

namespace {

using detail::RingChoice;

// Direction choices for one dimension under RLB: minimal with probability
// (k - delta)/k, non-minimal with delta/k; RLBth pins short hops minimal.
std::vector<RingChoice> rlb_ring_choices(int k, int delta, bool threshold) {
  TCR_REQUIRE(delta >= 0 && delta < k, "ring offset must be reduced mod k");
  if (delta == 0) return {{1, 0, 1.0}};
  if (2 * delta == k) return {{1, delta, 0.5}, {-1, delta, 0.5}};
  const int min_sign = (delta < k - delta) ? 1 : -1;
  const int min_len = std::min(delta, k - delta);
  const int nonmin_len = k - min_len;
  if (threshold && 4 * min_len < k) return {{min_sign, min_len, 1.0}};
  const double p_min = static_cast<double>(k - min_len) / k;
  return {{min_sign, min_len, p_min}, {-min_sign, nonmin_len, 1.0 - p_min}};
}

TorusRouting make_rlb_impl(const Torus& torus, const std::string& name, bool threshold) {
  TorusRouting r(torus, name);
  const int k = torus.k();
  for (int e = 1; e < torus.num_nodes(); ++e) {
    const int dx = torus.x_of(e), dy = torus.y_of(e);
    for (const auto& qx : rlb_ring_choices(k, dx, threshold)) {
      for (const auto& qy : rlb_ring_choices(k, dy, threshold)) {
        const double pick = qx.prob * qy.prob / ((qx.len + 1) * (qy.len + 1));
        for (int a = 0; a <= qx.len; ++a) {
          for (int b = 0; b <= qy.len; ++b) {
            std::vector<int> walk{0};
            detail::append_ring_walk(torus, walk, true, qx.sign, a);
            detail::append_ring_walk(torus, walk, false, qy.sign, b);
            detail::append_ring_walk(torus, walk, true, qx.sign, qx.len - a);
            detail::append_ring_walk(torus, walk, false, qy.sign, qy.len - b);
            TCR_ASSERT(walk.back() == e, "RLB walk must reach the destination");
            r.add_path(e, path_from_walk(torus, walk), pick);
          }
        }
      }
    }
  }
  return r;
}

}  // namespace

TorusRouting make_rlb(const Torus& torus) { return make_rlb_impl(torus, "RLB", false); }

TorusRouting make_rlbth(const Torus& torus) { return make_rlb_impl(torus, "RLBth", true); }

}  // namespace tcr
