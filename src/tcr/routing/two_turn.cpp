#include "tcr/routing/two_turn.hpp"

#include "tcr/routing/dor.hpp"
#include "tcr/util/check.hpp"

namespace tcr {

namespace {

// Directed run lengths that realize ring offset delta: +delta or -(k-delta).
struct Run {
  int sign;
  int len;
};

std::vector<Run> runs_for(int k, int delta, bool allow_empty) {
  std::vector<Run> out;
  if (delta == 0) {
    if (allow_empty) out.push_back({1, 0});
    return out;
  }
  out.push_back({1, delta});
  out.push_back({-1, k - delta});
  return out;
}

void emit(const Torus& t, std::vector<Path>& out, int e,
          const std::vector<std::pair<bool, Run>>& segments) {
  std::vector<int> walk{0};
  for (const auto& [x_dim, run] : segments) {
    detail::append_ring_walk(t, walk, x_dim, run.sign, run.len);
  }
  TCR_ASSERT(walk.back() == e, "two-turn walk must reach e");
  out.push_back(path_from_walk(t, walk));
}

}  // namespace

std::vector<Path> enumerate_two_turn_paths(const Torus& torus, int e) {
  TCR_REQUIRE(e != 0, "offset 0 has only the empty path");
  const int k = torus.k();
  const int dx = torus.x_of(e), dy = torus.y_of(e);
  std::vector<Path> out;

  // 0 turns: a single straight run.
  if (dy == 0) {
    for (const Run& rx : runs_for(k, dx, false)) emit(torus, out, e, {{true, rx}});
  }
  if (dx == 0) {
    for (const Run& ry : runs_for(k, dy, false)) emit(torus, out, e, {{false, ry}});
  }

  // 1 turn: XY and YX.
  if (dx != 0 && dy != 0) {
    for (const Run& rx : runs_for(k, dx, false)) {
      for (const Run& ry : runs_for(k, dy, false)) {
        emit(torus, out, e, {{true, rx}, {false, ry}});
        emit(torus, out, e, {{false, ry}, {true, rx}});
      }
    }
  }

  // 2 turns, X-Y-X: split the X travel at an intermediate column a
  // (a != 0 and a != dx keep all three segments non-empty). The two X runs
  // sit in different rows (dy != 0), so the path is channel-simple.
  if (dy != 0) {
    for (int a = 1; a < k; ++a) {
      if (a == dx) continue;
      const int rest = (dx - a + k) % k;
      for (const Run& r1 : runs_for(k, a, false)) {
        for (const Run& ry : runs_for(k, dy, false)) {
          for (const Run& r2 : runs_for(k, rest, false)) {
            emit(torus, out, e, {{true, r1}, {false, ry}, {true, r2}});
          }
        }
      }
    }
  }

  // 2 turns, Y-X-Y.
  if (dx != 0) {
    for (int b = 1; b < k; ++b) {
      if (b == dy) continue;
      const int rest = (dy - b + k) % k;
      for (const Run& r1 : runs_for(k, b, false)) {
        for (const Run& rx : runs_for(k, dx, false)) {
          for (const Run& r2 : runs_for(k, rest, false)) {
            emit(torus, out, e, {{false, r1}, {true, rx}, {false, r2}});
          }
        }
      }
    }
  }
  return out;
}

namespace {

void extend_minimal(const Torus& t, int e, std::vector<int>& walk, int x_left, int x_sign,
                    int y_left, int y_sign, std::vector<Path>& out) {
  if (x_left == 0 && y_left == 0) {
    TCR_ASSERT(walk.back() == e, "minimal walk must reach e");
    out.push_back(path_from_walk(t, walk));
    return;
  }
  if (x_left > 0) {
    walk.push_back(t.neighbor(walk.back(), x_sign > 0 ? Dir::PX : Dir::NX));
    extend_minimal(t, e, walk, x_left - 1, x_sign, y_left, y_sign, out);
    walk.pop_back();
  }
  if (y_left > 0) {
    walk.push_back(t.neighbor(walk.back(), y_sign > 0 ? Dir::PY : Dir::NY));
    extend_minimal(t, e, walk, x_left, x_sign, y_left - 1, y_sign, out);
    walk.pop_back();
  }
}

}  // namespace

std::vector<Path> enumerate_minimal_paths(const Torus& torus, int e) {
  TCR_REQUIRE(e != 0, "offset 0 has only the empty path");
  const int k = torus.k();
  const int dx = torus.x_of(e), dy = torus.y_of(e);
  std::vector<Path> out;
  for (const auto& qx : detail::minimal_ring_choices(k, dx)) {
    for (const auto& qy : detail::minimal_ring_choices(k, dy)) {
      std::vector<int> walk{0};
      extend_minimal(torus, e, walk, qx.len, qx.sign, qy.len, qy.sign, out);
    }
  }
  return out;
}

}  // namespace tcr
