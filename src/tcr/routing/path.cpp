#include "tcr/routing/path.hpp"

#include <unordered_map>
#include <unordered_set>

#include "tcr/util/check.hpp"

namespace tcr {

std::vector<int> path_nodes(const Torus& t, const Path& p) {
  std::vector<int> nodes;
  nodes.reserve(p.channels.size() + 1);
  nodes.push_back(p.src);
  int cur = p.src;
  for (int c : p.channels) {
    TCR_ASSERT(t.channel_src(c) == cur, "path channels must chain");
    cur = t.channel_dst(c);
    nodes.push_back(cur);
  }
  TCR_ASSERT(cur == p.dst, "path must end at dst");
  return nodes;
}

bool path_is_valid(const Digraph& g, const Path& p) {
  int cur = p.src;
  for (int c : p.channels) {
    if (c < 0 || c >= g.num_channels()) return false;
    if (g.channel(c).src != cur) return false;
    cur = g.channel(c).dst;
  }
  return cur == p.dst;
}

bool path_channel_simple(const Path& p) {
  std::unordered_set<int> seen;
  for (int c : p.channels) {
    if (!seen.insert(c).second) return false;
  }
  return true;
}

bool path_node_simple(const Torus& t, const Path& p) {
  const auto nodes = path_nodes(t, p);
  std::unordered_set<int> seen;
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    if (!seen.insert(nodes[i]).second) return false;
  }
  // Closing back onto the source is a node revisit too (unless trivial path).
  if (nodes.size() > 1 && seen.count(nodes.back())) return false;
  return true;
}

int count_turns(const Torus& t, const Path& p) {
  int turns = 0;
  bool have_prev = false;
  bool prev_x = false;
  for (int c : p.channels) {
    const bool cur_x = is_x(t.channel_dir(c));
    if (have_prev && cur_x != prev_x) ++turns;
    prev_x = cur_x;
    have_prev = true;
  }
  return turns;
}

bool has_u_turn(const Torus& t, const Path& p) {
  for (std::size_t i = 0; i + 1 < p.channels.size(); ++i) {
    const Dir a = t.channel_dir(p.channels[i]);
    const Dir b = t.channel_dir(p.channels[i + 1]);
    if (is_x(a) == is_x(b) && sign_of(a) != sign_of(b)) return true;
  }
  return false;
}

Path path_from_walk(const Torus& t, const std::vector<int>& walk) {
  TCR_REQUIRE(!walk.empty(), "walk must contain at least the source");
  Path p;
  p.src = walk.front();
  p.dst = walk.back();
  p.channels.reserve(walk.size() - 1);
  for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
    const int from = walk[i], to = walk[i + 1];
    bool found = false;
    for (int d = 0; d < kNumDirs && !found; ++d) {
      if (t.neighbor(from, static_cast<Dir>(d)) == to) {
        p.channels.push_back(t.channel(from, static_cast<Dir>(d)));
        found = true;
      }
    }
    TCR_REQUIRE(found, "walk steps must be torus neighbors");
  }
  return p;
}

std::vector<int> remove_loops(const std::vector<int>& walk) {
  std::vector<int> out;
  out.reserve(walk.size());
  std::unordered_map<int, int> pos;  // node -> index in out
  for (int n : walk) {
    auto it = pos.find(n);
    if (it != pos.end()) {
      // Cut the cycle: drop everything after the first occurrence.
      for (std::size_t i = it->second + 1; i < out.size(); ++i) pos.erase(out[i]);
      out.resize(it->second + 1);
    } else {
      pos.emplace(n, static_cast<int>(out.size()));
      out.push_back(n);
    }
  }
  return out;
}

Path translate_path(const Torus& t_topo, const Path& p, int t) {
  Path q;
  q.src = t_topo.translate_node(p.src, t);
  q.dst = t_topo.translate_node(p.dst, t);
  q.channels.reserve(p.channels.size());
  for (int c : p.channels) q.channels.push_back(t_topo.translate_channel(c, t));
  return q;
}

}  // namespace tcr
