// Path-family enumeration for the paper's path-restricted designs (§5.2,
// §5.4):
//   * enumerate_two_turn_paths — every channel-simple, u-turn-free path with
//     at most two X<->Y turns (the 2TURN / 2TURNA family);
//   * enumerate_minimal_paths — every minimal path (the family whose
//     average-case optimum matches ROMM, §5.4).
//
// The LP weighting of these families lives in tcr/core/path_design.hpp;
// this header is pure combinatorics.
#pragma once

#include <vector>

#include "tcr/routing/routing.hpp"

namespace tcr {

/// All <= 2-turn paths from node 0 to offset e (e != 0).
std::vector<Path> enumerate_two_turn_paths(const Torus& torus, int e);

/// All minimal paths from node 0 to offset e (e != 0). On a k/2 tie both
/// minimal quadrants are included.
std::vector<Path> enumerate_minimal_paths(const Torus& torus, int e);

}  // namespace tcr
