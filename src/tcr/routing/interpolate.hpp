// Interpolated routing algorithms (paper §5.3, eq. 11):
// R'(p) = alpha R1(p) + (1 - alpha) R2(p) is again a valid oblivious
// algorithm. H_avg interpolates linearly (eq. 12) and the worst-case
// throughput obeys the weighted-harmonic-mean lower bound (eq. 14), tight
// whenever R1 and R2 share a worst-case permutation.
#pragma once

#include "tcr/routing/routing.hpp"

namespace tcr {

TorusRouting interpolate(const TorusRouting& r1, const TorusRouting& r2, double alpha);

/// Lower bound (eq. 14) on the worst-case throughput of the interpolation of
/// algorithms with worst-case throughputs theta1 and theta2.
double interpolation_throughput_bound(double theta1, double theta2, double alpha);

}  // namespace tcr
