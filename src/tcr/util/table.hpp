// Plain-text table and CSV emitters used by benchmarks and examples to print
// the rows/series of the paper's tables and figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tcr {

/// Accumulates rows of string cells and pretty-prints an aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision, keeps strings.
  void add_row_mixed(const std::vector<std::string>& strings,
                     const std::vector<double>& numbers, int precision = 4);

  void print(std::ostream& os) const;
  std::string to_string() const;
  std::string to_csv() const;

  /// Format a double with fixed precision (shared formatting helper).
  static std::string num(double v, int precision = 4);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tcr
