#include "tcr/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace tcr {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(ThreadPool& pool, int n, const std::function<void(int)>& body) {
  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto chunk = [&] {
    for (;;) {
      int i = next.fetch_add(1);
      if (i >= n || failed.load()) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!failed.exchange(true)) first_error = std::current_exception();
        return;
      }
    }
  };

  if (n <= 0) return;
  std::vector<std::future<void>> futures;
  const std::size_t workers = std::min<std::size_t>(pool.size(), static_cast<std::size_t>(n));
  // The calling thread runs one chunk itself, so only workers - 1 futures.
  futures.reserve(workers - 1);
  for (std::size_t w = 0; w + 1 < workers; ++w) futures.push_back(pool.submit(chunk));
  chunk();
  for (auto& f : futures) f.get();
  if (failed && first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for_blocks(ThreadPool& pool, int n, int blocks,
                                     const std::function<void(int, int)>& body) {
  if (n <= 0) return;
  if (blocks <= 0) blocks = static_cast<int>(pool.size());
  blocks = std::min(blocks, n);
  parallel_for(pool, blocks, [&](int b) {
    const auto [begin, end] = block_range(n, blocks, b);
    body(begin, end);
  });
}

}  // namespace tcr
