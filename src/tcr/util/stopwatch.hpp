// Wall-clock stopwatch for benchmark reporting.
#pragma once

#include <chrono>

namespace tcr {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace tcr
