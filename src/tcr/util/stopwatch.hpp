// Wall-clock + process-CPU stopwatch for benchmark reporting and the obs
// timer spans. CPU time (user + system, via getrusage where available) lets
// solver instrumentation distinguish compute from contention/blocking.
#pragma once

#include <chrono>
#include <ctime>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace tcr {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()), cpu_start_(cpu_now()) {}
  void reset() {
    start_ = clock::now();
    cpu_start_ = cpu_now();
  }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  /// Process CPU seconds (user + system) elapsed since construction/reset.
  double cpu_seconds() const { return cpu_now() - cpu_start_; }

  /// Current process CPU usage in seconds (user + system).
  static double cpu_now() {
#if defined(__unix__) || defined(__APPLE__)
    rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
      const auto tv_seconds = [](const timeval& tv) {
        return static_cast<double>(tv.tv_sec) + 1e-6 * static_cast<double>(tv.tv_usec);
      };
      return tv_seconds(ru.ru_utime) + tv_seconds(ru.ru_stime);
    }
#endif
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
  double cpu_start_;
};

}  // namespace tcr
