// Deterministic, fast pseudo-random number generation.
//
// xoshiro256** seeded via splitmix64. Deterministic across platforms so test
// and benchmark results are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace tcr {

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniformly random permutation of {0, ..., n-1} (Fisher-Yates).
  std::vector<int> permutation(int n);

  /// Shuffle a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace tcr
