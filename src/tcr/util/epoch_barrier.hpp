// Sense-reversing spin barrier with a designated coordinator.
//
// The sharded flit simulator (tcr::sim) advances all shards in lock-step
// cycles: every participant runs its shard's phase, everyone synchronizes,
// the coordinator applies the serial bookkeeping (mailbox-era stats, the
// deadlock watchdog, phase transitions), and the next phase begins. A
// std::barrier's completion function runs on an arbitrary thread; here the
// serial section must run on the *coordinator* (the thread that owns the
// trace spans and the SimStats), hence this dedicated primitive:
//
//   worker threads:   barrier.arrive_and_wait();
//   coordinator:      barrier.coordinate(serial_fn);   // or coordinate()
//
// coordinate() blocks until every other participant has arrived, runs the
// serial function while they spin, then releases all of them at once. The
// release publishes the coordinator's writes (generation bump with release
// semantics against the workers' acquire loads), and the workers' arrivals
// publish their writes to the coordinator (acq_rel fetch_add against an
// acquire load) — so data written in one phase is safely read in the next
// with no additional synchronization.
//
// Workers spin with a yield fallback: simulator cycles are microseconds, so
// parking on a condition variable per cycle would dominate the epoch cost.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "tcr/util/check.hpp"

namespace tcr {

class EpochBarrier {
 public:
  /// `participants` counts every thread, coordinator included.
  explicit EpochBarrier(int participants) : participants_(participants) {
    TCR_REQUIRE(participants >= 1, "barrier needs at least one participant");
  }

  EpochBarrier(const EpochBarrier&) = delete;
  EpochBarrier& operator=(const EpochBarrier&) = delete;

  int participants() const { return participants_; }

  /// Non-coordinator arrival: signal and spin until the coordinator releases
  /// this generation.
  void arrive_and_wait() {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    arrived_.fetch_add(1, std::memory_order_acq_rel);
    int spins = 0;
    while (generation_.load(std::memory_order_acquire) == gen) {
      if (++spins > kSpinsBeforeYield) std::this_thread::yield();
    }
  }

  /// Coordinator arrival: wait for everyone else, run `fn` alone, release.
  template <typename F>
  void coordinate(F&& fn) {
    int spins = 0;
    while (arrived_.load(std::memory_order_acquire) != participants_ - 1) {
      if (++spins > kSpinsBeforeYield) std::this_thread::yield();
    }
    fn();
    arrived_.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_release);
  }

  /// Coordinator arrival with no serial section.
  void coordinate() {
    coordinate([] {});
  }

 private:
  static constexpr int kSpinsBeforeYield = 4096;

  const int participants_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<int> arrived_{0};
};

}  // namespace tcr
