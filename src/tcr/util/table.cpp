#include "tcr/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "tcr/util/check.hpp"

namespace tcr {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  TCR_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  TCR_REQUIRE(cells.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(cells));
}

void TextTable::add_row_mixed(const std::vector<std::string>& strings,
                              const std::vector<double>& numbers, int precision) {
  std::vector<std::string> cells = strings;
  for (double v : numbers) cells.push_back(num(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_string(); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::setw(static_cast<int>(width[c])) << std::left << row[c] << ' ';
    }
    os << "|\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << '|' << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace tcr
