#include "tcr/util/rng.hpp"

#include "tcr/util/check.hpp"

namespace tcr {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  TCR_REQUIRE(n > 0, "Rng::below requires n > 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t r = next();
  while (r >= limit) r = next();
  return r % n;
}

std::vector<int> Rng::permutation(int n) {
  std::vector<int> p(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

}  // namespace tcr
