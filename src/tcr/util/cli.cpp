#include "tcr/util/cli.hpp"

#include <string_view>

#include "tcr/util/check.hpp"

namespace tcr {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) continue;
    arg.remove_prefix(2);
    auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "";  // boolean switch
    }
  }
}

int Cli::get_int(const std::string& name, int fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::stoi(it->second);
}

double Cli::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::stod(it->second);
}

std::string Cli::get_string(const std::string& name, const std::string& fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return it->second;
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

}  // namespace tcr
