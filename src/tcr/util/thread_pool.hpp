// Minimal fixed-size thread pool with a parallel_for helper.
//
// Benchmarks use it to run independent LP solves / matching evaluations of a
// parameter sweep concurrently. On a single-core host it degrades gracefully
// to (almost) sequential execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "tcr/trace/tracer.hpp"

namespace tcr {

class ThreadPool {
 public:
  /// Create a pool with `threads` workers (0 -> hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its result.
  ///
  /// The scheduling thread's trace::SpanContext travels with the task: the
  /// worker installs it as its ambient parent (trace::ScopedParent) for the
  /// duration of the call, so spans the task opens link to the span that was
  /// live at submit() time rather than floating as roots. Capturing the
  /// context is two thread-local reads — free enough to do unconditionally.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task, ctx = trace::current_context()] {
        trace::ScopedParent parent(ctx);
        (*task)();
      });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run body(i) for i in [0, n), distributing across the pool; blocks until
  /// all iterations finish. Fail-fast: after any body throws, iterations not
  /// yet started are abandoned (in-flight ones run to completion), and the
  /// first exception thrown is rethrown to the caller once every worker has
  /// stopped. Which iterations were abandoned is scheduling-dependent.
  static void parallel_for(ThreadPool& pool, int n, const std::function<void(int)>& body);

  /// Partition [0, n) into `blocks` contiguous ranges (sizes differing by at
  /// most one) and run body(begin, end) once per range, distributing ranges
  /// across the pool. The partition depends only on (n, blocks) — never on
  /// pool size or scheduling — so sequential work *within* a block (e.g.
  /// warm-start chaining across a sweep's points) is deterministic.
  /// blocks <= 0 defaults to the pool size. Same fail-fast semantics as
  /// parallel_for.
  static void parallel_for_blocks(ThreadPool& pool, int n, int blocks,
                                  const std::function<void(int begin, int end)>& body);

  /// The contiguous range block `b` of `blocks` covers in [0, n): the same
  /// partition parallel_for_blocks uses, exposed so serial code can iterate
  /// identically.
  static std::pair<int, int> block_range(int n, int blocks, int b) {
    return {static_cast<int>(static_cast<long>(n) * b / blocks),
            static_cast<int>(static_cast<long>(n) * (b + 1) / blocks)};
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace tcr
