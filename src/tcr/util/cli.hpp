// Tiny command-line flag parser shared by the benchmark binaries and
// examples: supports `--name value` and `--name=value` for int/double/string
// flags plus boolean switches.
#pragma once

#include <map>
#include <string>

namespace tcr {

class Cli {
 public:
  Cli(int argc, char** argv);

  int get_int(const std::string& name, int fallback) const;
  double get_double(const std::string& name, double fallback) const;
  std::string get_string(const std::string& name, const std::string& fallback) const;
  bool has(const std::string& name) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace tcr
