// Error handling primitives for the tcr library.
//
// TCR_REQUIRE is for validating API preconditions (throws tcr::Error so a
// caller can recover); TCR_ASSERT is for internal invariants (also throws,
// so unit tests can observe violations deterministically in all build types).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tcr {

/// Exception type thrown on precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* kind, const char* cond, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace tcr

#define TCR_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) ::tcr::detail::fail("precondition", #cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define TCR_ASSERT(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) ::tcr::detail::fail("invariant", #cond, __FILE__, __LINE__, (msg)); \
  } while (false)
