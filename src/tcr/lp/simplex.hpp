// Sparse revised simplex — the production LP solver of the library.
//
// Two-phase bounded-variable primal simplex:
//   * basis kept as a sparse Markowitz LU plus a product-form eta file,
//     refactorized periodically and on numerical alarm;
//   * Dantzig pricing over the CSC matrix with a Bland's-rule fallback after
//     a long run of degenerate pivots (anti-cycling);
//   * two-pass Harris-style ratio test with a feasibility tolerance;
//   * optional deterministic objective perturbation for heavily degenerate
//     multicommodity-flow models, removed by a final clean re-optimization.
//
// The paper solved its routing-design LPs with CPLEX; this solver is the
// from-scratch replacement (see DESIGN.md, substitutions).
#pragma once

#include <cstdint>

#include "tcr/lp/model.hpp"

namespace tcr::guard {
class CancelToken;
}

namespace tcr::lp {

struct SimplexOptions {
  double feas_tol = 1e-7;   // bound/row feasibility tolerance
  double opt_tol = 1e-7;    // reduced-cost (dual feasibility) tolerance
  long max_iterations = 0;  // 0 -> 200 * (m + n) + 10000
  int refactor_every = 50;
  bool perturb = true;          // phase-2 anti-degeneracy cost perturbation
  std::uint64_t seed = 0x5eedULL;
  int bland_after = 3000;  // consecutive degenerate pivots before Bland mode

  // ---- dual simplex ----
  /// Re-optimize a warm basis with the dual simplex when it comes back
  /// dual-feasible but primal-infeasible — the parametric-sweep case, where
  /// an rhs edit moves the basic values but leaves every reduced cost
  /// untouched. The dual phase shares the eta/refactorization machinery with
  /// the primal loop and falls back to the primal reentry-pivot + phase-1
  /// ladder when the basis is dual-infeasible or the dual iteration stalls
  /// (lp.dual.* obs counters). Off: every warm basis takes the primal path.
  bool dual = true;

  /// Adopt caller-supplied CrashHints (flow-based crash basis) on cold
  /// solves. Off: hints passed to solve() are ignored and the all-slack
  /// crash is used. Callers also gate hint *construction* on this flag.
  bool flow_crash = true;

  // ---- certification ----
  /// Run lp::certify() on every Optimal solve and store the result in
  /// Solution::certificate. A failing certificate is treated like a
  /// numerical breakdown: the recovery ladder below runs.
  bool certify = true;
  /// Certification tolerances are the solver tolerances times this factor
  /// (the checker measures a different norm than the solver controls, so it
  /// needs headroom; 10x is conservative but still catches real breakage).
  double certify_tol_factor = 10.0;

  // ---- staged recovery ladder ----
  /// How many ladder stages may run after the first attempt fails with
  /// Status::Numerical or a failed certificate (0 disables recovery).
  /// Stages run in order: reseed, equilibrate, careful, dense.
  int max_recovery_stages = 4;
  bool recover_reseed = true;       // new perturbation seed, flipped perturb
  bool recover_equilibrate = true;  // geometric-mean scaling, solve, unscale
  bool recover_careful = true;      // tight refactorization + Bland pricing
  bool recover_dense = true;        // dense reference simplex (small models)
  /// The dense fallback only runs when rows + cols <= this (it is O(m^2 n)
  /// per iteration; beyond this it would dominate the solve time).
  int dense_fallback_max_dim = 600;

  // ---- run control ----
  /// Optional cooperative cancellation/budget token (not owned; must
  /// outlive the solve). The solver polls it every 16 iterations and at
  /// solve entry, charging iterations against the token's cumulative
  /// budget; when it fires, the solve stops with Status::Cancelled, a
  /// best-so-far basis, and the token's diagnosis in the note. A cancelled
  /// attempt is final — the recovery ladder does not retry it.
  guard::CancelToken* cancel = nullptr;
};

/// Solve with the sparse revised simplex. On numerical breakdown — or, when
/// options.certify is set, on an optimal solution whose independent
/// certificate fails — a staged recovery ladder re-solves with progressively
/// more conservative settings (see SimplexOptions). The returned Solution
/// carries the certificate of the accepted attempt; if every stage fails the
/// first attempt's result is returned with a note recording the ladder.
///
/// `warm` optionally supplies a starting basis (typically the previous
/// Solution::basis of a near-identical model in a sweep). The basis is
/// validated against the model's standard form: a dimension-mismatched or
/// inconsistent basis is rejected (cold start), a singular one is repaired
/// by patching the unpivotable positions back to the crash basis, and a
/// basis whose point is primal-feasible skips phase 1 entirely, and a basis
/// that is dual-feasible but primal-infeasible is re-optimized by the dual
/// simplex when options.dual is set. Every adoption attempt increments
/// exactly one of the lp.warmstart.{accepted,repaired,rejected} obs counters
/// (lp.warmstart.attempts counts them all). The reseed/equilibrate/careful
/// recovery stages restart from the failed attempt's exported basis rather
/// than from scratch.
///
/// `crash` optionally supplies combinatorial crash-basis hints used when no
/// warm basis is adopted (cold start) and options.flow_crash is set; they go
/// through the same validation/repair machinery, counted under lp.crash.*.
Solution solve(const Model& model, const SimplexOptions& options = {},
               const Basis* warm = nullptr, const CrashHints* crash = nullptr);

}  // namespace tcr::lp
