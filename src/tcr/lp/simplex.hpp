// Sparse revised simplex — the production LP solver of the library.
//
// Two-phase bounded-variable primal simplex:
//   * basis kept as a sparse Markowitz LU plus a product-form eta file,
//     refactorized periodically and on numerical alarm;
//   * Dantzig pricing over the CSC matrix with a Bland's-rule fallback after
//     a long run of degenerate pivots (anti-cycling);
//   * two-pass Harris-style ratio test with a feasibility tolerance;
//   * optional deterministic objective perturbation for heavily degenerate
//     multicommodity-flow models, removed by a final clean re-optimization.
//
// The paper solved its routing-design LPs with CPLEX; this solver is the
// from-scratch replacement (see DESIGN.md, substitutions).
#pragma once

#include <cstdint>

#include "tcr/lp/model.hpp"

namespace tcr::lp {

struct SimplexOptions {
  double feas_tol = 1e-7;   // bound/row feasibility tolerance
  double opt_tol = 1e-7;    // reduced-cost (dual feasibility) tolerance
  long max_iterations = 0;  // 0 -> 200 * (m + n) + 10000
  int refactor_every = 50;
  bool perturb = true;          // phase-2 anti-degeneracy cost perturbation
  std::uint64_t seed = 0x5eedULL;
  int bland_after = 3000;  // consecutive degenerate pivots before Bland mode
};

/// Solve with the sparse revised simplex.
Solution solve(const Model& model, const SimplexOptions& options = {});

}  // namespace tcr::lp
