#include "tcr/lp/simplex.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "tcr/fault/fault.hpp"
#include "tcr/guard/guard.hpp"
#include "tcr/lin/sparse.hpp"
#include "tcr/lin/sparse_lu.hpp"
#include "tcr/lp/certify.hpp"
#include "tcr/lp/dense_simplex.hpp"
#include "tcr/lp/scaling.hpp"
#include "tcr/lp/standard_form.hpp"
#include "tcr/obs/registry.hpp"
#include "tcr/telemetry/telemetry.hpp"
#include "tcr/trace/tracer.hpp"
#include "tcr/util/check.hpp"
#include "tcr/util/rng.hpp"

namespace tcr::lp {

namespace {

// Registry metrics of the solver, resolved once per process; the returned
// references stay valid forever so the hot loop never touches the registry.
struct SimplexMetrics {
  obs::Counter& solves = obs::Registry::instance().counter("lp.simplex.solves");
  obs::Counter& iterations = obs::Registry::instance().counter("lp.simplex.iterations");
  obs::Counter& phase1_iterations =
      obs::Registry::instance().counter("lp.simplex.phase1_iterations");
  obs::Counter& refactorizations =
      obs::Registry::instance().counter("lp.simplex.refactorizations");
  obs::Counter& degenerate_pivots =
      obs::Registry::instance().counter("lp.simplex.degenerate_pivots");
  obs::Counter& bland_activations =
      obs::Registry::instance().counter("lp.simplex.bland_activations");
  obs::Counter& bound_flips = obs::Registry::instance().counter("lp.simplex.bound_flips");
  obs::Counter& retries = obs::Registry::instance().counter("lp.simplex.numerical_retries");
  // Warm-start outcomes: a supplied basis was adopted unchanged (accepted),
  // adopted after patching — status fixes, singular or out-of-bound
  // positions swapped back to crash columns — (repaired), or thrown away
  // for a cold start (rejected). phase1_skipped counts solves where the
  // adopted basis was primal-feasible on a model that would otherwise have
  // needed phase 1; a repaired basis whose leftover load sits on basic
  // artificials still runs phase 1, warm, and is not counted there.
  obs::Counter& warm_attempts = obs::Registry::instance().counter("lp.warmstart.attempts");
  obs::Counter& warm_accepted = obs::Registry::instance().counter("lp.warmstart.accepted");
  obs::Counter& warm_repaired = obs::Registry::instance().counter("lp.warmstart.repaired");
  obs::Counter& warm_rejected = obs::Registry::instance().counter("lp.warmstart.rejected");
  obs::Counter& warm_phase1_skipped =
      obs::Registry::instance().counter("lp.warmstart.phase1_skipped");
  // Crash-hint adoption (CrashHints on a cold solve) mirrors the warm-start
  // counters under a separate prefix so the two channels stay attributable:
  // attempts == accepted + repaired + rejected holds independently for each.
  obs::Counter& crash_attempts = obs::Registry::instance().counter("lp.crash.attempts");
  obs::Counter& crash_accepted = obs::Registry::instance().counter("lp.crash.accepted");
  obs::Counter& crash_repaired = obs::Registry::instance().counter("lp.crash.repaired");
  obs::Counter& crash_rejected = obs::Registry::instance().counter("lp.crash.rejected");
  obs::Counter& crash_phase1_skipped =
      obs::Registry::instance().counter("lp.crash.phase1_skipped");
  // Dual simplex phase. solves = bases routed into the dual phase;
  // reoptimized = dual iterations reached primal feasibility (the solve then
  // finishes with a clean primal confirmation); fallbacks = the dual phase
  // gave up (dual-unbounded => primal infeasible, stall, or numerical
  // trouble) and the solve restarted cold through the primal ladder;
  // infeasible_bases = candidate bases that failed the dual-feasibility
  // screen and took the primal path directly.
  obs::Counter& dual_solves = obs::Registry::instance().counter("lp.dual.solves");
  obs::Counter& dual_iterations = obs::Registry::instance().counter("lp.dual.iterations");
  obs::Counter& dual_reoptimized = obs::Registry::instance().counter("lp.dual.reoptimized");
  obs::Counter& dual_fallbacks = obs::Registry::instance().counter("lp.dual.fallbacks");
  obs::Counter& dual_bound_flips =
      obs::Registry::instance().counter("lp.dual.bound_flips");
  obs::Counter& dual_infeasible_bases =
      obs::Registry::instance().counter("lp.dual.infeasible_bases");
  // Eta-file length at each refactorization and LU factor fill-in (nonzeros).
  obs::Histogram& eta_length =
      obs::Registry::instance().histogram("lp.simplex.eta_length", 1.0, 2.0);
  obs::Histogram& lu_fill_nnz =
      obs::Registry::instance().histogram("lp.simplex.lu_fill_nnz", 1.0, 2.0);
  obs::Histogram& degenerate_runs =
      obs::Registry::instance().histogram("lp.simplex.degenerate_run", 1.0, 2.0);
  // Per-phase and per-kernel time. The kernel timers wrap inner-loop spans
  // and only read clocks when Registry::timing_enabled().
  obs::Timer& t_total = obs::Registry::instance().timer("lp.simplex.time.total");
  obs::Timer& t_phase1 = obs::Registry::instance().timer("lp.simplex.time.phase1");
  obs::Timer& t_phase2 = obs::Registry::instance().timer("lp.simplex.time.phase2");
  obs::Timer& t_dual = obs::Registry::instance().timer("lp.simplex.time.dual");
  obs::Timer& t_pricing = obs::Registry::instance().timer("lp.simplex.time.pricing");
  obs::Timer& t_ratio_test = obs::Registry::instance().timer("lp.simplex.time.ratio_test");
  obs::Timer& t_ftran = obs::Registry::instance().timer("lp.simplex.time.ftran");
  obs::Timer& t_btran = obs::Registry::instance().timer("lp.simplex.time.btran");
  obs::Timer& t_refactor = obs::Registry::instance().timer("lp.simplex.time.refactor");

  static SimplexMetrics& get() {
    static SimplexMetrics m;
    return m;
  }
};

// Which recovery-ladder stage rescued a breakdown (or that none did).
struct RecoveryMetrics {
  obs::Counter& attempts = obs::Registry::instance().counter("lp.recovery.attempts");
  obs::Counter& exhausted = obs::Registry::instance().counter("lp.recovery.exhausted");
  obs::Counter& rescued_reseed =
      obs::Registry::instance().counter("lp.recovery.rescued.reseed");
  obs::Counter& rescued_equilibrate =
      obs::Registry::instance().counter("lp.recovery.rescued.equilibrate");
  obs::Counter& rescued_careful =
      obs::Registry::instance().counter("lp.recovery.rescued.careful");
  obs::Counter& rescued_dense =
      obs::Registry::instance().counter("lp.recovery.rescued.dense");

  static RecoveryMetrics& get() {
    static RecoveryMetrics m;
    return m;
  }
};

using detail::kAtLower;
using detail::kAtUpper;
using detail::kBasic;
using detail::kFree;
using detail::StandardForm;
using detail::VarStatus;

// Product-form basis update: B_new = B_old * E with E's r-th column = w.
struct Eta {
  int pos;           // pivot position r
  double pivot;      // w[r]
  std::vector<std::pair<int, double>> entries;  // (position, w[i]) for i != r
};

class RevisedSimplex {
 public:
  RevisedSimplex(StandardForm sf, const SimplexOptions& opt, const Basis* warm = nullptr,
                 const CrashHints* crash = nullptr)
      : sf_(std::move(sf)),
        opt_(opt),
        warm_(warm),
        crash_(crash),
        m_(sf_.m),
        n_(sf_.ntotal),
        a_(sf_.m, sf_.ntotal, sf_.triplets),
        rng_(opt.seed) {
    stat_ = sf_.stat0;
    basic_ = sf_.basis0;
    pos_of_col_.assign(n_, -1);
    for (int i = 0; i < m_; ++i) pos_of_col_[basic_[i]] = i;
    max_iters_ = opt_.max_iterations > 0 ? opt_.max_iterations
                                         : 200L * (m_ + n_) + 10000L;
  }

  Solution run() {
    // One span per solve; the same object feeds the t_total registry timer
    // (Span's dual-consumer form), so the site is not instrumented twice.
    trace::Span span("lp.solve", met_.t_total);
    span.attr("m", m_);
    span.attr("n", n_);
    Solution sol = run_impl();
    span.attr("status", to_string(sol.status));
    span.attr("iterations", sol.iterations);
    span.attr("warm_start", sol.warm_start);
    span.attr("dual_iterations", sol.dual_iterations);
    return sol;
  }

 private:
  Solution run_impl() {
    met_.solves.add(1);
    Solution sol;
    if (opt_.cancel != nullptr && opt_.cancel->check()) {
      // A fired token means a whole-run stop: refuse the solve outright so
      // sweeps and the recovery ladder unwind without touching the basis.
      sol.status = Status::Cancelled;
      finish(sol);
      return sol;
    }
    WarmAdopt warm = WarmAdopt::kRejected;
    if (warm_ != nullptr && !warm_->empty()) warm = apply_warm(*warm_);
    if (warm == WarmAdopt::kRejected && opt_.flow_crash && crash_ != nullptr &&
        !crash_->empty()) {
      // Cold start with combinatorial crash hints: synthesize a basis from
      // them and push it through the same adoption machinery as a warm basis
      // (separate lp.crash.* accounting; never routed to the dual phase).
      const Basis cb = crash_basis_from_hints(*crash_);
      if (!cb.empty()) {
        adopting_crash_ = true;
        warm = apply_warm(cb);
        adopting_crash_ = false;
      }
    }
    if (warm == WarmAdopt::kRejected && !refactorize()) {
      sol.status = Status::Numerical;
      finish(sol);
      return sol;
    }

    // ---- dual simplex phase ----
    // A warm basis that survived adoption dual-feasible but whose point an
    // rhs edit left primal-infeasible (kDual) is driven back to optimality
    // by dual pivots: pin the artificials — the dual phase solves the true
    // phase-2 problem — and iterate. Success skips phase 1 and the perturbed
    // primal pass outright; failure (dual-unbounded, stall, or numerical
    // alarm) unwinds to the cold primal ladder below.
    bool dual_done = false;
    if (warm == WarmAdopt::kDual) {
      met_.dual_solves.add(1);
      for (int j = 0; j < n_; ++j)
        if (sf_.artificial[j]) sf_.up[j] = 0.0;
      // The MCF models are massively dual degenerate: swaths of nonbasic
      // columns sit at reduced cost zero, so unperturbed dual ratio tests
      // collapse into zero-length pivots and the phase stalls. Run the dual
      // pivots on the same deterministic tiny perturbation phase 2 uses —
      // the entering ratios become decisive — and let the clean true-cost
      // primal pass below absorb the O(1e-9) dual wobble it introduces.
      std::vector<double> dcost = sf_.cost;
      if (opt_.perturb) {
        for (int j = 0; j < n_; ++j) {
          if (!std::isfinite(sf_.lo[j]) && !std::isfinite(sf_.up[j])) continue;
          dcost[j] += 1e-9 * (1.0 + std::abs(dcost[j])) * (0.5 + rng_.uniform());
        }
      }
      Status sd;
      {
        trace::Span t("lp.dual", met_.t_dual);
        sd = optimize_dual(dcost);
        t.attr("status", to_string(sd));
        t.attr("iterations", dual_iters_);
      }
      sol.dual_iterations = dual_iters_;
      met_.dual_iterations.add(dual_iters_);
      if (sd == Status::Cancelled || sd == Status::IterationLimit) {
        // The whole-run budget fired mid-phase: the warm basis was genuinely
        // used, so its staged adoption outcome stands.
        commit_adoption(pending_patched_ ? kOutcomeRepaired : kOutcomeAccepted);
        sol.status = sd;
        sol.iterations = iters_;
        finish(sol);
        return sol;
      }
      if (sd == Status::Optimal) {
        met_.dual_reoptimized.add(1);
        commit_adoption(pending_patched_ ? kOutcomeRepaired : kOutcomeAccepted);
        if (sf_.need_phase1) met_.warm_phase1_skipped.add(1);
        dual_done = true;
      } else {
        // Fall back: abandon the basis (the attempt counts as rejected),
        // restore the crash start and unpin the artificials so phase 1 sees
        // its own framework again.
        met_.dual_fallbacks.add(1);
        commit_adoption(kOutcomeRejected);
        warm = WarmAdopt::kRejected;
        for (int j = 0; j < n_; ++j)
          if (sf_.artificial[j]) sf_.up[j] = kInf;
        restore_crash_basis();
        if (!refactorize()) {
          sol.status = Status::Numerical;
          sol.iterations = iters_;
          finish(sol);
          return sol;
        }
      }
    }

    if (!dual_done && sf_.need_phase1) {
      if (warm == WarmAdopt::kFeasible) {
        // The adopted basis represents a primal-feasible point, so phase 1
        // has nothing left to do: go straight to optimizing the true costs.
        (adopted_via_crash_ ? met_.crash_phase1_skipped : met_.warm_phase1_skipped)
            .add(1);
      } else {
        // Cold crash basis, or a repaired warm basis whose residual
        // infeasibility sits entirely on basic artificials (kPhase1): either
        // way phase 1 starts from the current basis and drives the
        // artificial load to zero.
        Status s1;
        {
          trace::Span t("lp.phase1", met_.t_phase1);
          s1 = optimize(sf_.cost1, /*phase1=*/true);
        }
        sol.phase1_iterations = iters_;
        met_.phase1_iterations.add(iters_);
        if (s1 != Status::Optimal) {
          sol.status = (s1 == Status::Unbounded) ? Status::Numerical : s1;
          sol.iterations = iters_;
          finish(sol);
          return sol;
        }
        phase1_residual_ = objective_of(sf_.cost1);
        if (phase1_residual_ > 10 * opt_.feas_tol * (1 + m_ * 0.01)) {
          sol.status = Status::Infeasible;
          sol.iterations = iters_;
          finish(sol);
          return sol;
        }
      }
    }

    // Phase 2: pin artificials at zero.
    for (int j = 0; j < n_; ++j)
      if (sf_.artificial[j]) sf_.up[j] = 0.0;

    Status s2;
    {
      trace::Span t("lp.phase2", met_.t_phase2);
      // After a successful dual phase the basis is already primal-feasible
      // and dual-feasible to tolerance; a single clean pass confirms
      // optimality. The anti-degeneracy perturbation would only pivot away
      // from the answer and back.
      if (opt_.perturb && !dual_done) {
        // Deterministic tiny perturbation breaks massive dual degeneracy in
        // the MCF models; a clean pass with the true costs follows.
        std::vector<double> pcost = sf_.cost;
        for (int j = 0; j < n_; ++j) {
          // Free variables stay unperturbed: their null directions (e.g. a
          // constant shift of dual potentials) would make the perturbed
          // problem unbounded.
          if (!std::isfinite(sf_.lo[j]) && !std::isfinite(sf_.up[j])) continue;
          pcost[j] += 1e-9 * (1.0 + std::abs(pcost[j])) * (0.5 + rng_.uniform());
        }
        s2 = optimize(pcost, /*phase1=*/false);
        if (s2 == Status::Optimal) s2 = optimize(sf_.cost, false);
      } else {
        s2 = optimize(sf_.cost, false);
      }
    }

    sol.iterations = iters_;
    sol.status = s2;
    if (s2 != Status::Optimal) {
      finish(sol);
      return sol;
    }
    extract(sol);
    finish(sol);
    return sol;
  }

 private:
  // ---- instrumentation -------------------------------------------------

  // Final per-solve bookkeeping: registry counters, the exported basis, and
  // the human-readable stop note for non-optimal outcomes.
  void finish(Solution& sol) {
    charge_pending_iterations();
    met_.iterations.add(iters_);
    sol.basis.stat.assign(stat_.begin(), stat_.end());
    sol.basis.basic = basic_;
    sol.warm_start = warm_outcome_;
    switch (sol.status) {
      case Status::Optimal:
        break;
      case Status::IterationLimit:
        sol.note = "iteration limit after " + std::to_string(iters_) + " iterations (" +
                   std::to_string(degenerate_total_) + " degenerate pivots, Bland mode x" +
                   std::to_string(bland_activations_) + ")";
        break;
      case Status::Infeasible:
        sol.note = "phase-1 optimum left residual infeasibility " +
                   std::to_string(phase1_residual_) + " after " +
                   std::to_string(sol.phase1_iterations) + " iterations";
        break;
      case Status::Unbounded:
        sol.note = "unbounded improving direction on column " +
                   std::to_string(unbounded_col_) + " at iteration " + std::to_string(iters_);
        break;
      case Status::Numerical:
        sol.note = "numerical breakdown after " + std::to_string(iters_) + " iterations, " +
                   std::to_string(refactor_count_) + " refactorizations";
        break;
      case Status::Cancelled:
        sol.note = "cancelled after " + std::to_string(iters_) + " iterations";
        if (opt_.cancel != nullptr) {
          const std::string why = opt_.cancel->note();
          if (!why.empty()) sol.note += ": " + why;
        }
        break;
    }
  }

  // ---- warm start ------------------------------------------------------

  // Nonbasic status a column falls back to when a warm basis cannot keep it
  // where it was: the crash rule (bound nearest zero; free only when both
  // bounds are infinite).
  VarStatus default_nonbasic(int j) const {
    const bool lo_fin = std::isfinite(sf_.lo[j]);
    const bool up_fin = std::isfinite(sf_.up[j]);
    if (lo_fin && up_fin)
      return std::abs(sf_.lo[j]) <= std::abs(sf_.up[j]) ? kAtLower : kAtUpper;
    if (lo_fin) return kAtLower;
    if (up_fin) return kAtUpper;
    return kFree;
  }

  void restore_crash_basis() {
    stat_ = sf_.stat0;
    basic_ = sf_.basis0;
    pos_of_col_.assign(n_, -1);
    for (int i = 0; i < m_; ++i) pos_of_col_[basic_[i]] = i;
  }

  // Outcome of adopting a warm basis. kFeasible: the basis is factorized and
  // represents a primal-feasible point, so phase 1 can be skipped. kPhase1:
  // the basis is factorized and every basic variable respects its phase-1
  // bounds, but some basic artificial carries load — phase 1 must run, from
  // this basis rather than the crash basis. kDual: the basis is factorized,
  // dual-feasible, and primal-infeasible — the rhs-edit sweep case — so the
  // dual simplex phase re-optimizes it (its adoption outcome stays staged
  // until the dual verdict is in). kRejected: the crash basis was restored
  // and the caller cold-starts.
  enum class WarmAdopt { kRejected, kFeasible, kPhase1, kDual };

  // Exactly-one-outcome bookkeeping for a basis adoption attempt, warm basis
  // or crash hints (lp.{warmstart,crash}.attempts == accepted + repaired +
  // rejected, asserted by the property tests). begin_adoption() opens an
  // attempt; every path out of adoption calls commit_adoption() exactly
  // once. The dual route defers: apply_warm() stages patched-or-not in
  // pending_patched_ and run_impl() commits after the dual phase decides
  // whether the basis was kept.
  enum Outcome { kOutcomeAccepted, kOutcomeRepaired, kOutcomeRejected };

  void begin_adoption() {
    (adopting_crash_ ? met_.crash_attempts : met_.warm_attempts).add(1);
  }

  void commit_adoption(Outcome o) {
    if (adopting_crash_) {
      (o == kOutcomeRejected   ? met_.crash_rejected
       : o == kOutcomeRepaired ? met_.crash_repaired
                               : met_.crash_accepted)
          .add(1);
      if (o != kOutcomeRejected) {
        adopted_via_crash_ = true;
        warm_outcome_ = o == kOutcomeRepaired ? "crash-repaired" : "crash-accepted";
      }
      // A rejected crash basis leaves warm_outcome_ alone: the solve either
      // stays "cold" or keeps the warm basis's earlier "rejected".
    } else {
      (o == kOutcomeRejected   ? met_.warm_rejected
       : o == kOutcomeRepaired ? met_.warm_repaired
                               : met_.warm_accepted)
          .add(1);
      warm_outcome_ = o == kOutcomeRejected   ? "rejected"
                      : o == kOutcomeRepaired ? "repaired"
                                              : "accepted";
    }
  }

  // Dual-feasibility screen for a freshly adopted basis: are the phase-2
  // reduced costs sign-feasible? Artificial columns are skipped — the dual
  // phase pins them to [0, 0], where any reduced cost is feasible — as are
  // fixed columns. The tolerance is loose (10x opt_tol): the dual ratio test
  // absorbs mildly wrong signs by taking their slightly negative ratio
  // first, and the final clean primal pass re-checks optimality exactly.
  bool dual_feasible() {
    std::vector<double> cb(static_cast<std::size_t>(m_)), y;
    for (int i = 0; i < m_; ++i) cb[i] = sf_.cost[basic_[i]];
    btran(std::move(cb), y);
    const double tol = 10.0 * opt_.opt_tol;
    for (int j = 0; j < n_; ++j) {
      if (stat_[j] == kBasic || sf_.artificial[j] || sf_.lo[j] == sf_.up[j]) continue;
      const double d = sf_.cost[j] - a_.column_dot(j, y);
      if (stat_[j] == kAtLower) {
        if (d < -tol) return false;
      } else if (stat_[j] == kAtUpper) {
        if (d > tol) return false;
      } else if (std::abs(d) > tol) {  // free: reduced cost must vanish
        return false;
      }
    }
    return true;
  }

  // Build a candidate basis from combinatorial crash hints: row r's basic
  // column becomes hints.basic_of_row[r] when that is a usable structural
  // column (in range, not fixed, not claimed by an earlier row), the row's
  // crash aux column otherwise. The result goes through apply_warm() like
  // any supplied basis, so inconsistent or singular hints degrade to the
  // all-slack crash instead of failing the solve.
  Basis crash_basis_from_hints(const CrashHints& hints) const {
    Basis b;
    if (static_cast<int>(hints.basic_of_row.size()) != m_) return b;
    b.stat.assign(sf_.stat0.begin(), sf_.stat0.end());
    b.basic = sf_.basis0;
    std::vector<char> used(static_cast<std::size_t>(n_), 0);
    for (int r = 0; r < m_; ++r) {
      const int c = hints.basic_of_row[r];
      if (c < 0 || c >= sf_.nstruct || used[c] || sf_.lo[c] == sf_.up[c]) continue;
      used[c] = 1;
      b.stat[b.basic[r]] = static_cast<std::uint8_t>(default_nonbasic(b.basic[r]));
      b.basic[r] = c;
      b.stat[c] = static_cast<std::uint8_t>(kBasic);
    }
    return b;
  }

  // Install a caller-supplied basis, repairing what can be repaired:
  // out-of-range statuses are re-derived, singular positions and
  // out-of-bound *basic* variables (which phase 1's artificial framework
  // cannot express) are patched back to their rows' crash columns. After a
  // sweep relaxes one rhs entry, a previously binding row's slack stays
  // nonbasic and the recomputed basics absorb the whole delta — the patch
  // hands that delta to the row's slack or artificial instead, which keeps
  // the rest of the basis and leaves at most a short phase 1.
  WarmAdopt apply_warm(const Basis& warm) {
    begin_adoption();
    if (static_cast<int>(warm.basic.size()) != m_ ||
        static_cast<int>(warm.stat.size()) != n_) {
      commit_adoption(kOutcomeRejected);
      return WarmAdopt::kRejected;
    }
    bool patched = false;

    // Sanitize statuses against this model's bounds: a stale basis may pin a
    // column to a bound that no longer exists (or encode an out-of-range
    // status byte). Nonbasic artificials always come back at zero — a prior
    // solve leaves them against a pinned upper bound of 0, which this fresh
    // standard form does not have yet, so kAtUpper would mean a nonzero
    // artificial.
    std::vector<VarStatus> stat(static_cast<std::size_t>(n_));
    for (int j = 0; j < n_; ++j) {
      VarStatus s;
      if (warm.stat[j] > static_cast<std::uint8_t>(kFree)) {
        s = default_nonbasic(j);
        patched = true;
      } else {
        s = static_cast<VarStatus>(warm.stat[j]);
      }
      if (s != kBasic) {
        if (sf_.artificial[j]) {
          s = kAtLower;
        } else if ((s == kAtLower && !std::isfinite(sf_.lo[j])) ||
                   (s == kAtUpper && !std::isfinite(sf_.up[j])) ||
                   (s == kFree &&
                    (std::isfinite(sf_.lo[j]) || std::isfinite(sf_.up[j])))) {
          s = default_nonbasic(j);
          patched = true;
        }
      }
      stat[j] = s;
    }

    // Validate the basic list: in range, duplicate-free, consistent with the
    // statuses (the basic list wins; stray kBasic statuses are demoted).
    std::vector<int> pos(static_cast<std::size_t>(n_), -1);
    for (int i = 0; i < m_; ++i) {
      const int b = warm.basic[i];
      if (b < 0 || b >= n_ || pos[b] != -1) {
        commit_adoption(kOutcomeRejected);
        return WarmAdopt::kRejected;
      }
      pos[b] = i;
      if (stat[b] != kBasic) {
        stat[b] = kBasic;
        patched = true;
      }
    }
    for (int j = 0; j < n_; ++j) {
      if (stat[j] == kBasic && pos[j] == -1) {
        stat[j] = default_nonbasic(j);
        patched = true;
      }
    }

    stat_ = std::move(stat);
    basic_ = warm.basic;
    pos_of_col_ = std::move(pos);

    // Patch position i back to its crash-basis column (the row's slack or
    // artificial), demoting the current occupant to its crash-rule bound.
    // Fails when the position already holds the crash column or the crash
    // column is basic elsewhere — then the basis is beyond cheap repair.
    auto patch_to_crash = [&](int i) {
      const int crash = sf_.basis0[i];
      if (basic_[i] == crash || pos_of_col_[crash] != -1) return false;
      const int out = basic_[i];
      stat_[out] = default_nonbasic(out);
      pos_of_col_[out] = -1;
      basic_[i] = crash;
      stat_[crash] = kBasic;
      pos_of_col_[crash] = i;
      return true;
    };

    if (!refactorize()) {
      // Singular: patch each unpivotable position and try once more.
      patched = true;
      bool repairable = true;
      for (int i : lu_.deficient_positions()) {
        if (!patch_to_crash(i)) {
          repairable = false;
          break;
        }
      }
      if (!repairable || !refactorize()) {
        restore_crash_basis();
        commit_adoption(kOutcomeRejected);
        return WarmAdopt::kRejected;
      }
    }

    // Caller hint: rows whose rhs changed since the basis was exported.
    // Their aux columns are the first reentry candidates. The list is
    // bounds-checked (a stale or hand-built basis can carry rows past m_)
    // and deduplicated in caller order: a sweep that edits the same row
    // twice must not make reentry_pivot try — and possibly commit — the
    // same aux column twice.
    std::vector<int> hint_rows;
    std::vector<char> hinted_row(static_cast<std::size_t>(m_), 0);
    for (const int r : warm.edited_rows) {
      if (r >= 0 && r < m_ && !hinted_row[r]) {
        hinted_row[r] = 1;
        hint_rows.push_back(r);
      }
    }

    // Primal-feasibility check with repair. Each round classifies the basic
    // values and, when some are out of bounds, tries two mechanisms in
    // order: a reentry pivot (the cure when a sweep edited one rhs entry —
    // see reentry_pivot()), then patching each offender back to its crash
    // column. Both strictly change the basis, so the round cap bounds the
    // cost of a hopeless basis. Load on basic artificials is left alone
    // when phase 1 will run — that is exactly what phase 1 minimizes.
    for (int round = 0; round < 8; ++round) {
      std::vector<int> bad;
      bool artificial_load = false;
      for (int i = 0; i < m_; ++i) {
        const int j = basic_[i];
        if (sf_.artificial[j]) {
          // Build-time artificial bounds are [0, inf); the sign of the
          // residual is folded into the column, so negative load is a bound
          // violation while positive load is phase-1 work (unless this model
          // never runs phase 1, in which case it must be patched out too).
          if (xb_[i] < -opt_.feas_tol || (xb_[i] > opt_.feas_tol && !sf_.need_phase1)) {
            bad.push_back(i);
          } else if (xb_[i] > opt_.feas_tol) {
            artificial_load = true;
          }
        } else if (xb_[i] < sf_.lo[j] - opt_.feas_tol ||
                   xb_[i] > sf_.up[j] + opt_.feas_tol) {
          bad.push_back(i);
        }
      }
      if (bad.empty() && !artificial_load) {
        commit_adoption(patched ? kOutcomeRepaired : kOutcomeAccepted);
        return WarmAdopt::kFeasible;
      }
      // Dual screen, once, before any primal repair: a basis the rhs edit
      // (flagged via edited_rows) left primal-infeasible — out-of-bound
      // basics or artificial load — but dual-feasible goes to the dual
      // phase instead of the reentry-pivot + phase-1 ladder. Its adoption
      // outcome stays staged until the dual verdict is in.
      if (round == 0 && opt_.dual && !adopting_crash_ && !hint_rows.empty()) {
        if (dual_feasible()) {
          pending_patched_ = patched;
          return WarmAdopt::kDual;
        }
        met_.dual_infeasible_bases.add(1);
      }
      if (bad.empty()) {
        commit_adoption(patched ? kOutcomeRepaired : kOutcomeAccepted);
        return WarmAdopt::kPhase1;
      }
      patched = true;
      if (reentry_pivot(bad, hint_rows)) continue;
      bool repairable = true;
      for (int i : bad) {
        if (!patch_to_crash(i)) {
          repairable = false;
          break;
        }
      }
      if (!repairable || !refactorize()) break;
    }
    restore_crash_basis();
    commit_adoption(kOutcomeRejected);
    return WarmAdopt::kRejected;
  }

  // A sweep that edits one rhs entry leaves the edited row's aux column
  // (slack or artificial) nonbasic whenever that row was binding, so the
  // recomputed basics absorb the whole rhs delta and some land outside
  // their bounds. The cure is a single pivot: re-enter the aux column at
  // the value that returns the most violated basic to its bound, restoring
  // the rest of the basis values in the same stroke. Candidates come from
  // two sources, tried in order:
  //   1. hint_rows — the caller said which rows it edited (Basis::
  //      edited_rows), so their aux columns are tried directly;
  //   2. a probe screen — without a hint, btran a few violated positions
  //      (rows of B^-1) and keep the nonbasic aux columns whose single
  //      coefficient moves every probe back toward its bound. |rho| alone
  //      is no signal (an unrelated row can couple strongly to one
  //      position while pushing another the wrong way), so the curing-sign
  //      test on all probes is what thins the field.
  // Returns true after committing a swap and refactorizing; the basis
  // arrays stay consistent on failure so the caller can fall back.
  bool reentry_pivot(const std::vector<int>& bad, const std::vector<int>& hint_rows) {
    std::vector<double> col(static_cast<std::size_t>(m_)), w;

    // Full test for entering column s: raising s from its bound by t moves
    // basic i to xb_[i] - t * w[i]. Every violated basic must cross back
    // inside (t_lo), no in-bounds basic may exit (t_hi), and the rhs delta
    // that caused the violations lies in [t_lo, t_hi] when s is the edited
    // row's aux column. Take t = t_lo: the position defining it lands
    // exactly on its bound and leaves the basis there. Returns 1 when the
    // pivot was committed and refactorized, 0 when committed but the new
    // basis failed to factor, -1 when s is not a consistent cure.
    auto attempt = [&](int s) -> int {
      col.assign(static_cast<std::size_t>(m_), 0.0);
      a_.add_column_to(s, 1.0, col);
      ftran(col, w);

      double t_lo = 0.0, t_hi = sf_.up[s] - nonbasic_value(s);
      int leave = -1;
      bool leave_below = true;
      bool viable = true;
      for (int i = 0; viable && i < m_; ++i) {
        const int j = basic_[i];
        const double lo = sf_.lo[j];
        const double up = sf_.artificial[j] && !sf_.need_phase1 ? 0.0
                          : sf_.artificial[j]                   ? kInf
                                                                : sf_.up[j];
        if (xb_[i] < lo - opt_.feas_tol) {
          if (w[i] >= -1e-12) {
            viable = false;  // this direction cannot lift i back to lo
          } else {
            const double need = (xb_[i] - lo) / w[i];
            if (need > t_lo) {
              t_lo = need;
              leave = i;
              leave_below = true;
            }
            if (std::isfinite(up)) t_hi = std::min(t_hi, (xb_[i] - up - opt_.feas_tol) / w[i]);
          }
        } else if (xb_[i] > up + opt_.feas_tol) {
          if (w[i] <= 1e-12) {
            viable = false;
          } else {
            const double need = (xb_[i] - up) / w[i];
            if (need > t_lo) {
              t_lo = need;
              leave = i;
              leave_below = false;
            }
            if (std::isfinite(lo)) t_hi = std::min(t_hi, (xb_[i] - lo + opt_.feas_tol) / w[i]);
          }
        } else if (w[i] > 1e-9) {
          // Exit through the lower bound; like the Harris ratio test, the
          // bound is expanded by feas_tol, so a degenerate basic sitting on
          // it with a tiny pivot does not spuriously block the step.
          if (std::isfinite(lo)) t_hi = std::min(t_hi, (xb_[i] - lo + opt_.feas_tol) / w[i]);
        } else if (w[i] < -1e-9) {
          if (std::isfinite(up)) t_hi = std::min(t_hi, (xb_[i] - up - opt_.feas_tol) / w[i]);
        }
      }
      if (!viable || leave < 0 || t_lo > t_hi + opt_.feas_tol) return -1;
      if (sf_.artificial[s] && !sf_.need_phase1 && t_lo > opt_.feas_tol) return -1;

      const int out = basic_[leave];
      stat_[out] = sf_.artificial[out] || leave_below ? kAtLower : kAtUpper;
      pos_of_col_[out] = -1;
      basic_[leave] = s;
      stat_[s] = kBasic;
      pos_of_col_[s] = leave;
      return refactorize() ? 1 : 0;
    };

    // Aux columns have exactly one matrix entry, so a triplet scan yields
    // each one once with its row. Hinted rows first (slack beats
    // artificial: entering the slack leaves no phase-1 load).
    struct Cand {
      int col, row;
      double coeff;
    };
    if (!hint_rows.empty()) {
      std::vector<Cand> hinted;
      for (const auto& t : sf_.triplets) {
        if (t.col < sf_.nstruct || stat_[t.col] == kBasic) continue;
        if (sf_.artificial[t.col] && !sf_.need_phase1) continue;
        for (const int r : hint_rows) {
          if (t.row == r) {
            hinted.push_back({t.col, t.row, t.value});
            break;
          }
        }
      }
      std::sort(hinted.begin(), hinted.end(), [&](const Cand& x, const Cand& y) {
        if (sf_.artificial[x.col] != sf_.artificial[y.col]) return !sf_.artificial[x.col];
        return x.col < y.col;
      });
      for (const Cand& c : hinted) {
        const int r = attempt(c.col);
        if (r >= 0) return r == 1;
      }
    }

    // No hint (or the hinted columns were not a consistent cure): probe a
    // handful of violated positions, spread across the list. Each btran
    // yields that row of B^-1, giving every candidate's influence
    // w[probe] = coeff * rho[row] without an ftran.
    const int nb = static_cast<int>(bad.size());
    const int np = std::min(nb, 8);
    std::vector<std::vector<double>> rhos(static_cast<std::size_t>(np));
    std::vector<char> probe_below(static_cast<std::size_t>(np));
    std::vector<double> er(static_cast<std::size_t>(m_), 0.0);
    for (int k = 0; k < np; ++k) {
      const int i = bad[static_cast<std::size_t>(k) * nb / np];
      probe_below[k] = xb_[i] < sf_.lo[basic_[i]] ? 1 : 0;
      er[i] = 1.0;
      btran(er, rhos[k]);
      er[i] = 0.0;
    }

    std::vector<Cand> cands;
    for (const auto& t : sf_.triplets) {
      if (t.col < sf_.nstruct || stat_[t.col] == kBasic) continue;
      if (sf_.artificial[t.col] && !sf_.need_phase1) continue;
      bool cures = true;
      for (int k = 0; cures && k < np; ++k) {
        const double wk = t.value * rhos[k][t.row];
        cures = probe_below[k] ? wk < -1e-9 : wk > 1e-9;
      }
      if (cures) cands.push_back({t.col, t.row, t.value});
    }
    std::sort(cands.begin(), cands.end(), [&](const Cand& x, const Cand& y) {
      if (sf_.artificial[x.col] != sf_.artificial[y.col]) return !sf_.artificial[x.col];
      const double rx = std::abs(rhos[0][x.row]), ry = std::abs(rhos[0][y.row]);
      if (rx != ry) return rx > ry;
      return x.col < y.col;
    });

    const int tries = std::min(static_cast<int>(cands.size()), 8);
    for (int c = 0; c < tries; ++c) {
      const int r = attempt(cands[c].col);
      if (r >= 0) return r == 1;
    }
    return false;
  }

  // ---- run-control accounting -----------------------------------------

  // Safepoint: every 16 iterations, charge the iterations run since the
  // last charge against the token's cumulative budget and poll
  // deadline/RSS/signal (one predicted branch per iteration when no token
  // is armed). Charging the delta instead of a fixed window keeps the
  // account exact across phase boundaries and iteration-count rewinds.
  // Also the telemetry sampling site: heartbeats piggyback on the same
  // cadence (a relaxed flag load when --heartbeat is off), and the poll
  // only reads solver state, so it cannot perturb the pivot sequence.
  bool cancel_safepoint() {
    if ((iters_ & 15) != 0) return false;
    telemetry::poll();
    if (opt_.cancel == nullptr) return false;
    charge_pending_iterations();
    return opt_.cancel->check();
  }

  // Flush the partial charge window. Called from every solve exit path (via
  // finish()) so a solve that stops mid-window — Cancelled, IterationLimit,
  // Numerical, even Optimal — still charges the remainder; without this,
  // budgeted sweeps could overrun their iteration cap by up to 15 x points.
  void charge_pending_iterations() {
    if (opt_.cancel == nullptr || iters_ <= charged_iters_) return;
    opt_.cancel->charge_iterations(iters_ - charged_iters_);
    charged_iters_ = iters_;
  }

  // ---- basis linear algebra -------------------------------------------

  bool refactorize() {
    trace::Span t("lp.refactor", met_.t_refactor);
    met_.refactorizations.add(1);
    ++refactor_count_;
    met_.eta_length.record(static_cast<double>(etas_.size()));
    etas_.clear();
    if (auto* h = fault::simplex_hooks()) {
      // Injected slowdown (deadline/budget e2e): burn stall_ms here, at the
      // same boundary the run-control token is polled near, once the
      // stall_after skip budget is spent.
      if (h->stall_refactors.load(std::memory_order_relaxed) > 0 &&
          !fault::SimplexHooks::consume(h->stall_after) &&
          fault::SimplexHooks::consume(h->stall_refactors)) {
        h->stalls_injected.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(h->stall_ms));
      }
      if (fault::SimplexHooks::consume(h->fail_refactors)) {
        h->refactor_failures_injected.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    if (!lu_.factor(a_, basic_)) return false;
    met_.lu_fill_nnz.record(static_cast<double>(lu_.factor_nnz()));
    compute_basic_values();
    return true;
  }

  void compute_basic_values() {
    std::vector<double> rhs = sf_.b;
    for (int j = 0; j < n_; ++j) {
      if (stat_[j] == kBasic) continue;
      const double v = nonbasic_value(j);
      if (v != 0.0) a_.add_column_to(j, -v, rhs);
    }
    ftran(rhs, xb_);
  }

  // w = B^-1 v; v is in row space, w in basis-position space.
  void ftran(const std::vector<double>& v, std::vector<double>& w) const {
    lu_.solve(v, w);
    for (const Eta& e : etas_) {
      double& wr = w[e.pos];
      wr /= e.pivot;
      if (wr != 0.0) {
        for (const auto& [i, val] : e.entries) w[i] -= val * wr;
      }
    }
  }

  // y = B^-T c; c in basis-position space, y in row space.
  void btran(std::vector<double> c, std::vector<double>& y) const {
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      double acc = c[it->pos];
      for (const auto& [i, val] : it->entries) acc -= val * c[i];
      c[it->pos] = acc / it->pivot;
    }
    lu_.solve_transpose(c, y);
  }

  double nonbasic_value(int j) const {
    switch (stat_[j]) {
      case kAtLower: return sf_.lo[j];
      case kAtUpper: return sf_.up[j];
      default: return 0.0;
    }
  }

  double objective_of(const std::vector<double>& cost) const {
    double obj = 0.0;
    for (int i = 0; i < m_; ++i) obj += cost[basic_[i]] * xb_[i];
    for (int j = 0; j < n_; ++j)
      if (stat_[j] != kBasic) obj += cost[j] * nonbasic_value(j);
    return obj;
  }

  // Worst basic bound violation (0 when primal-feasible). Telemetry only —
  // runs on sampled iterations, never in the pivot path.
  double primal_infeasibility() const {
    double worst = 0.0;
    for (int i = 0; i < m_; ++i) {
      const int j = basic_[i];
      if (std::isfinite(sf_.lo[j])) worst = std::max(worst, sf_.lo[j] - xb_[i]);
      if (std::isfinite(sf_.up[j])) worst = std::max(worst, xb_[i] - sf_.up[j]);
    }
    return worst;
  }

  // L2 norm of the DEVEX reference weights: grows as the reference framework
  // goes stale; drops back to sqrt(n) at each reset.
  double devex_norm() const {
    double sq = 0.0;
    for (const double d : devex_) sq += d * d;
    return std::sqrt(sq);
  }

  // ---- main loop -------------------------------------------------------

  Status optimize(const std::vector<double>& cost, bool phase1) {
    std::vector<double> cb(static_cast<std::size_t>(m_));
    std::vector<double> y, w, rho;
    std::vector<double> er(static_cast<std::size_t>(m_), 0.0);
    int degenerate_streak = 0;
    int since_refactor = 0;
    bool fresh_basis = true;  // no pivots since the last refactorization
    bool bland_active = false;
    // Kernel timing is hoisted: checked once per optimize() call, not per
    // iteration, so an un-instrumented solve pays nothing for the spans.
    const bool timed = obs::Registry::instance().timing_enabled();
    // Convergence telemetry cadence, hoisted the same way: 0 (one compare
    // per iteration) unless a tracer is collecting.
    const long sample_every =
        trace::enabled() ? trace::Tracer::instance().simplex_sample_every() : 0;
    double min_pivot_sampled = kInf;  // min |pivot| since the last sample
    long last_sampled_iter = -1;      // dedup: re-runs of an iteration
                                      // (optimality re-confirmation after a
                                      // refactorize does --iters_) must not
                                      // emit a second sample
    // DEVEX reference weights (reset per optimize call).
    devex_.assign(n_, 1.0);

    // Record the final degenerate run when leaving the loop.
    const auto flush_degenerate_run = [&] {
      if (degenerate_streak > 0)
        met_.degenerate_runs.record(static_cast<double>(degenerate_streak));
    };

    for (;;) {
      if (++iters_ > max_iters_) {
        flush_degenerate_run();
        return Status::IterationLimit;
      }

      // Run-control safepoint (see cancel_safepoint()).
      if (cancel_safepoint()) {
        flush_degenerate_run();
        return Status::Cancelled;
      }

      // Solver progress for heartbeats, at a coarser cadence than the
      // safepoint: the objective costs a pass over the basics, so only
      // compute it when a heartbeat session is live.
      if (telemetry::enabled() && (iters_ & 255) == 0)
        telemetry::solver_progress(iters_, objective_of(cost));

      {
        obs::ScopedTimer t(met_.t_btran, timed);
        for (int i = 0; i < m_; ++i) cb[i] = cost[basic_[i]];
        btran(cb, y);
      }

      // ---- pricing (DEVEX: maximize d^2 / reference weight) ----
      const bool bland = degenerate_streak >= opt_.bland_after;
      if (bland && !bland_active) {
        bland_active = true;
        ++bland_activations_;
        met_.bland_activations.add(1);
      }
      if (!bland) bland_active = false;
      obs::ScopedTimer pricing_timer(met_.t_pricing, timed);
      int q = -1, dir = 0;
      double best = 0.0;
      for (int j = 0; j < n_; ++j) {
        if (stat_[j] == kBasic || sf_.lo[j] == sf_.up[j]) continue;
        const double d = cost[j] - a_.column_dot(j, y);
        double viol = 0.0;
        int jdir = 0;
        if (stat_[j] == kAtLower) {
          if (d < -opt_.opt_tol) { viol = -d; jdir = 1; }
        } else if (stat_[j] == kAtUpper) {
          if (d > opt_.opt_tol) { viol = d; jdir = -1; }
        } else {  // free
          if (d < -opt_.opt_tol) { viol = -d; jdir = 1; }
          else if (d > opt_.opt_tol) { viol = d; jdir = -1; }
        }
        if (jdir == 0) continue;
        if (bland) { q = j; dir = jdir; break; }
        const double score = viol * viol / devex_[j];
        if (score > best) {
          best = score;
          q = j;
          dir = jdir;
        }
      }
      pricing_timer.stop();

      // ---- convergence telemetry (sampled every N iterations) ----
      if (sample_every > 0 && iters_ % sample_every == 0 && iters_ != last_sampled_iter) {
        last_sampled_iter = iters_;
        trace::counter("lp.iteration", static_cast<double>(iters_));
        trace::counter("lp.objective", objective_of(cost));
        trace::counter("lp.primal_infeas", primal_infeasibility());
        // Dual infeasibility proxy: the DEVEX winner's reduced-cost
        // violation (score = viol^2 / weight); 0 at optimality or in Bland
        // mode, where no scores are computed.
        trace::counter("lp.dual_infeas",
                       q >= 0 && !bland ? std::sqrt(best * devex_[q]) : 0.0);
        trace::counter("lp.devex_norm", devex_norm());
        trace::counter("lp.eta_len", static_cast<double>(etas_.size()));
        trace::counter("lp.min_pivot",
                       std::isfinite(min_pivot_sampled) ? min_pivot_sampled : 0.0);
        min_pivot_sampled = kInf;
      }

      if (q < 0) {
        // Confirm optimality against a freshly factorized basis.
        if (!fresh_basis) {
          if (!refactorize()) return Status::Numerical;
          since_refactor = 0;
          fresh_basis = true;
          --iters_;
          continue;
        }
        flush_degenerate_run();
        return Status::Optimal;
      }

      // ---- FTRAN ----
      {
        obs::ScopedTimer t(met_.t_ftran, timed);
        col_buf_.assign(m_, 0.0);
        a_.add_column_to(q, 1.0, col_buf_);
        ftran(col_buf_, w);
      }

      // ---- ratio test (two-pass Harris) ----
      obs::ScopedTimer ratio_timer(met_.t_ratio_test, timed);
      const double own_range = sf_.up[q] - sf_.lo[q];
      double t_limit = std::isfinite(own_range) ? own_range : kInf;

      // Pass 1: maximum step allowed with bounds relaxed by feas_tol.
      for (int i = 0; i < m_; ++i) {
        const double delta = dir * w[i];
        if (std::abs(delta) <= 1e-9) continue;
        const int bj = basic_[i];
        double t;
        if (delta > 0) {
          if (!std::isfinite(sf_.lo[bj])) continue;
          t = (xb_[i] - (sf_.lo[bj] - opt_.feas_tol)) / delta;
        } else {
          if (!std::isfinite(sf_.up[bj])) continue;
          t = ((sf_.up[bj] + opt_.feas_tol) - xb_[i]) / (-delta);
        }
        t_limit = std::min(t_limit, std::max(t, 0.0));
      }
      if (!std::isfinite(t_limit)) {
        // Never trust an unbounded verdict from a stale basis: refactorize
        // and re-derive the direction once before reporting.
        if (!fresh_basis) {
          if (!refactorize()) return Status::Numerical;
          since_refactor = 0;
          fresh_basis = true;
          --iters_;
          continue;
        }
        flush_degenerate_run();
        unbounded_col_ = q;
        return phase1 ? Status::Numerical : Status::Unbounded;
      }

      // Pass 2: among blockers within t_limit, pick the largest pivot.
      int leave = -1;
      double t_step = std::isfinite(own_range) ? own_range : kInf;
      double best_pivot = 0.0;
      for (int i = 0; i < m_; ++i) {
        const double delta = dir * w[i];
        if (std::abs(delta) <= 1e-9) continue;
        const int bj = basic_[i];
        double t;
        if (delta > 0) {
          if (!std::isfinite(sf_.lo[bj])) continue;
          t = (xb_[i] - sf_.lo[bj]) / delta;
        } else {
          if (!std::isfinite(sf_.up[bj])) continue;
          t = (sf_.up[bj] - xb_[i]) / (-delta);
        }
        t = std::max(t, 0.0);
        if (t <= t_limit + 1e-12) {
          const double piv = std::abs(w[i]);
          if (bland) {
            // Bland: smallest column index among eligible blockers.
            if (leave < 0 || bj < basic_[leave]) { leave = i; t_step = t; }
          } else if (piv > best_pivot) {
            best_pivot = piv;
            leave = i;
            t_step = t;
          }
        }
      }

      ratio_timer.stop();

      if (leave < 0) {
        // Bound flip (t_step = own_range is the binding limit).
        TCR_ASSERT(std::isfinite(t_step), "flip without finite range");
        for (int i = 0; i < m_; ++i) xb_[i] -= t_step * dir * w[i];
        stat_[q] = (stat_[q] == kAtLower) ? kAtUpper : kAtLower;
        flush_degenerate_run();
        degenerate_streak = 0;
        met_.bound_flips.add(1);
        continue;
      }
      // A basic blocker leaves; if the own-bound range is smaller, flip
      // instead.
      if (std::isfinite(own_range) && own_range < t_step) {
        for (int i = 0; i < m_; ++i) xb_[i] -= own_range * dir * w[i];
        stat_[q] = (stat_[q] == kAtLower) ? kAtUpper : kAtLower;
        flush_degenerate_run();
        degenerate_streak = 0;
        met_.bound_flips.add(1);
        continue;
      }

      if (t_step <= 1e-10) {
        ++degenerate_streak;
        ++degenerate_total_;
        met_.degenerate_pivots.add(1);
      } else {
        flush_degenerate_run();
        degenerate_streak = 0;
      }

      // ---- DEVEX weight update (Forrest-Goldfarb) ----
      // Needs the pivot row alpha = e_r' B^-1 N; one extra BTRAN plus a pass
      // over the matrix, which DEVEX repays many times over in iterations.
      if (!bland) {
        const double alpha_q = w[leave];
        const double devex_q = std::max(devex_[q], 1.0);
        std::fill(er.begin(), er.end(), 0.0);
        er[leave] = 1.0;
        {
          obs::ScopedTimer t(met_.t_btran, timed);
          btran(er, rho);
        }
        obs::ScopedTimer devex_timer(met_.t_pricing, timed);
        const double scale = devex_q / (alpha_q * alpha_q);
        for (int j = 0; j < n_; ++j) {
          if (stat_[j] == kBasic || j == q || sf_.lo[j] == sf_.up[j]) continue;
          const double alpha_j = a_.column_dot(j, rho);
          if (alpha_j == 0.0) continue;
          const double cand = alpha_j * alpha_j * scale;
          if (cand > devex_[j]) devex_[j] = cand;
        }
        devex_[basic_[leave]] = std::max(scale, 1.0);
        if (devex_q > 1e7) devex_.assign(n_, 1.0);  // reset a stale framework
      }

      // ---- update ----
      const double enter_val = nonbasic_value(q) + dir * t_step;
      for (int i = 0; i < m_; ++i) xb_[i] -= t_step * dir * w[i];
      const int out = basic_[leave];
      const double delta_out = dir * w[leave];
      stat_[out] = (delta_out > 0) ? kAtLower : kAtUpper;
      basic_[leave] = q;
      pos_of_col_[out] = -1;
      pos_of_col_[q] = leave;
      stat_[q] = kBasic;
      xb_[leave] = enter_val;

      if (sample_every > 0)
        min_pivot_sampled = std::min(min_pivot_sampled, std::abs(w[leave]));

      // Numerical alarm: tiny pivot in the transformed column.
      if (std::abs(w[leave]) < 1e-7) {
        if (!refactorize()) return Status::Numerical;
        since_refactor = 0;
        fresh_basis = true;
        continue;
      }
      fresh_basis = false;

      Eta eta;
      eta.pos = leave;
      eta.pivot = w[leave];
      if (auto* h = fault::simplex_hooks()) {
        if (h->eta_drift != 0.0 && fault::SimplexHooks::consume(h->drift_etas)) {
          h->eta_drifts_injected.fetch_add(1, std::memory_order_relaxed);
          eta.pivot *= 1.0 + h->eta_drift;
        }
      }
      for (int i = 0; i < m_; ++i) {
        if (i != leave && w[i] != 0.0) eta.entries.emplace_back(i, w[i]);
      }
      etas_.push_back(std::move(eta));

      if (++since_refactor >= opt_.refactor_every) {
        if (!refactorize()) return Status::Numerical;
        since_refactor = 0;
        fresh_basis = true;
      }
    }
  }

  // ---- dual simplex phase ---------------------------------------------
  //
  // Re-optimizes a dual-feasible basis whose point is primal-infeasible —
  // the parametric-sweep case, where one rhs edit moved the basic values but
  // left every reduced cost intact. Per iteration: price the most violated
  // basic out (DEVEX-style weights per row), btran its unit vector for the
  // pivot row, run the bound-flipping dual ratio test over the nonbasic
  // columns, flip the boxed columns the dual step walks through (batched
  // into one ftran), and pivot the blocking column in, sharing the eta file
  // and refactorization cadence with the primal loop. Returns:
  //   Optimal        — no basic violates its bound (primal feasible, so the
  //                    still-dual-feasible basis is optimal to tolerance);
  //   Unbounded      — some violated row admits no entering column even
  //                    after flipping everything: the dual is unbounded,
  //                    i.e. the primal is infeasible (caller falls back to
  //                    the primal ladder for the authoritative verdict);
  //   Numerical      — factorization alarm or pivot stall (caller falls
  //                    back);
  //   IterationLimit / Cancelled — shared run-control limits (final).
  Status optimize_dual(const std::vector<double>& cost) {
    std::vector<double> cb(static_cast<std::size_t>(m_));
    std::vector<double> y, w, rho, flip_sum;
    std::vector<double> er(static_cast<std::size_t>(m_), 0.0);
    int since_refactor = 0;
    bool fresh_basis = true;  // no pivots since the last refactorization
    int degenerate_streak = 0;
    const bool timed = obs::Registry::instance().timing_enabled();
    // Dual DEVEX row weights (reference framework = the rows at entry).
    dw_.assign(static_cast<std::size_t>(m_), 1.0);
    // Stall guard: a dual phase that has not reached primal feasibility
    // after this many pivots is not the cheap sweep repair it exists for;
    // hand the basis back to the primal ladder instead of grinding on.
    const long stall_cap = 4L * m_ + 1000;

    // Dual ratio-test candidate: signed pivot-row coefficient abar =
    // s * (a_j . rho) and ratio d_j / abar (>= 0 up to tolerance when the
    // basis is dual-feasible).
    struct Cand {
      int col;
      double ratio;
      double abar;
      double range;  // up - lo (inf when unboxed)
    };
    std::vector<Cand> cands;

    for (;;) {
      if (++iters_ > max_iters_) return Status::IterationLimit;
      ++dual_iters_;
      if (cancel_safepoint()) return Status::Cancelled;
      if (dual_iters_ > stall_cap) return Status::Numerical;
      if (telemetry::enabled() && (iters_ & 255) == 0)
        telemetry::solver_progress(iters_, objective_of(cost));

      {
        obs::ScopedTimer t(met_.t_btran, timed);
        for (int i = 0; i < m_; ++i) cb[i] = cost[basic_[i]];
        btran(cb, y);
      }

      // ---- leaving-row pricing (largest weighted bound violation) ----
      const bool bland = degenerate_streak >= opt_.bland_after;
      obs::ScopedTimer pricing_timer(met_.t_pricing, timed);
      int leave = -1;
      bool below = false;  // which bound the leaving basic violates
      double best_score = 0.0;
      for (int i = 0; i < m_; ++i) {
        const int j = basic_[i];
        double viol;
        bool b;
        if (std::isfinite(sf_.lo[j]) && xb_[i] < sf_.lo[j] - opt_.feas_tol) {
          viol = sf_.lo[j] - xb_[i];
          b = true;
        } else if (std::isfinite(sf_.up[j]) && xb_[i] > sf_.up[j] + opt_.feas_tol) {
          viol = xb_[i] - sf_.up[j];
          b = false;
        } else {
          continue;
        }
        if (bland) {  // anti-cycling: smallest violated position
          leave = i;
          below = b;
          break;
        }
        const double score = viol * viol / dw_[i];
        if (score > best_score) {
          best_score = score;
          leave = i;
          below = b;
        }
      }
      pricing_timer.stop();

      if (leave < 0) {
        // Primal feasible. Confirm against a freshly factorized basis, as
        // the primal loop does before declaring optimality.
        if (!fresh_basis) {
          if (!refactorize()) return Status::Numerical;
          since_refactor = 0;
          fresh_basis = true;
          --iters_;
          --dual_iters_;
          continue;
        }
        return Status::Optimal;
      }

      // ---- pivot row: rho = B^-T e_leave ----
      {
        obs::ScopedTimer t(met_.t_btran, timed);
        std::fill(er.begin(), er.end(), 0.0);
        er[leave] = 1.0;
        btran(er, rho);
      }

      // ---- bound-flipping dual ratio test ----
      // s = +1 when the leaving basic sits above its upper bound, -1 when
      // below its lower bound. Candidates keep dual feasibility along the
      // step: at-lower columns with abar > 0, at-upper with abar < 0, free
      // columns with either sign. Walking candidates by increasing ratio, a
      // boxed candidate whose full range absorbs less than the remaining
      // primal violation is bound-flipped and the step pushes past it; the
      // first candidate that covers the rest enters the basis.
      obs::ScopedTimer ratio_timer(met_.t_ratio_test, timed);
      const int lj = basic_[leave];
      const double s = below ? -1.0 : 1.0;
      double remain = below ? sf_.lo[lj] - xb_[leave] : xb_[leave] - sf_.up[lj];
      cands.clear();
      for (int j = 0; j < n_; ++j) {
        if (stat_[j] == kBasic || sf_.lo[j] == sf_.up[j]) continue;
        // One pass over the column yields both the pivot-row coefficient
        // and the reduced cost.
        double alpha = 0.0, d = cost[j];
        for (std::size_t k = a_.col_begin(j); k < a_.col_end(j); ++k) {
          alpha += a_.value(k) * rho[a_.row_index(k)];
          d -= a_.value(k) * y[a_.row_index(k)];
        }
        const double abar = s * alpha;
        if (std::abs(abar) <= 1e-9) continue;
        if (stat_[j] == kAtLower ? abar <= 0.0
            : stat_[j] == kAtUpper ? abar >= 0.0
                                   : false) {
          continue;
        }
        cands.push_back({j, d / abar, abar, sf_.up[j] - sf_.lo[j]});
      }
      std::sort(cands.begin(), cands.end(), [](const Cand& x, const Cand& z) {
        if (x.ratio != z.ratio) return x.ratio < z.ratio;
        return x.col < z.col;  // deterministic (and Bland-style) tie-break
      });

      int enter_idx = -1;
      double absorb = 0.0;  // violation absorbed by flips so far
      for (int c = 0; c < static_cast<int>(cands.size()); ++c) {
        const Cand& cd = cands[c];
        if (!std::isfinite(cd.range) ||
            remain - absorb - std::abs(cd.abar) * cd.range <= opt_.feas_tol) {
          enter_idx = c;
          break;
        }
        absorb += std::abs(cd.abar) * cd.range;
      }
      ratio_timer.stop();

      if (enter_idx < 0) {
        // No entering column covers the violation (possibly after flipping
        // every boxed candidate): the dual is unbounded, the primal
        // infeasible. Trust the verdict only from a fresh factorization.
        if (!fresh_basis) {
          if (!refactorize()) return Status::Numerical;
          since_refactor = 0;
          fresh_basis = true;
          --iters_;
          --dual_iters_;
          continue;
        }
        return Status::Unbounded;
      }

      // ---- apply the bound flips (batched into one ftran) ----
      if (enter_idx > 0) {
        flip_sum.assign(static_cast<std::size_t>(m_), 0.0);
        for (int c = 0; c < enter_idx; ++c) {
          const int fj = cands[c].col;
          const double delta = stat_[fj] == kAtLower ? cands[c].range : -cands[c].range;
          stat_[fj] = stat_[fj] == kAtLower ? kAtUpper : kAtLower;
          a_.add_column_to(fj, delta, flip_sum);
        }
        met_.dual_bound_flips.add(enter_idx);
        {
          obs::ScopedTimer t(met_.t_ftran, timed);
          ftran(flip_sum, w);
        }
        for (int i = 0; i < m_; ++i) xb_[i] -= w[i];
      }

      const Cand& ec = cands[enter_idx];
      const int q = ec.col;

      // ---- FTRAN of the entering column ----
      {
        obs::ScopedTimer t(met_.t_ftran, timed);
        col_buf_.assign(m_, 0.0);
        a_.add_column_to(q, 1.0, col_buf_);
        ftran(col_buf_, w);
      }
      const double piv = w[leave];
      if (std::abs(piv) < 1e-9 ||
          std::abs(piv - ec.abar * s) > 1e-6 * (1.0 + std::abs(piv))) {
        // The btran row and ftran column disagree on the pivot: the eta
        // file has drifted. Refactorize and redo the iteration (committed
        // bound flips stand; the next round reprices from fresh values).
        if (!refactorize()) return Status::Numerical;
        since_refactor = 0;
        fresh_basis = true;
        --iters_;
        --dual_iters_;
        continue;
      }

      if (std::abs(ec.ratio) <= 1e-10) {
        ++degenerate_streak;
        ++degenerate_total_;
        met_.degenerate_pivots.add(1);
      } else {
        degenerate_streak = 0;
      }

      // ---- primal update: leaving basic lands on its violated bound ----
      const double target = below ? sf_.lo[lj] : sf_.up[lj];
      const double t_p = (xb_[leave] - target) / piv;
      const double enter_val = nonbasic_value(q) + t_p;
      for (int i = 0; i < m_; ++i) xb_[i] -= t_p * w[i];

      // ---- dual DEVEX row-weight update (reuses the ftran column) ----
      const double piv2 = piv * piv;
      const double dw_r = dw_[leave];
      for (int i = 0; i < m_; ++i) {
        if (i == leave || w[i] == 0.0) continue;
        const double cand_w = (w[i] * w[i] / piv2) * dw_r;
        if (cand_w > dw_[i]) dw_[i] = cand_w;
      }
      dw_[leave] = std::max(dw_r / piv2, 1.0);
      if (dw_r > 1e7) dw_.assign(static_cast<std::size_t>(m_), 1.0);

      stat_[lj] = below ? kAtLower : kAtUpper;
      pos_of_col_[lj] = -1;
      basic_[leave] = q;
      pos_of_col_[q] = leave;
      stat_[q] = kBasic;
      xb_[leave] = enter_val;

      // Numerical alarm: tiny pivot in the transformed column.
      if (std::abs(piv) < 1e-7) {
        if (!refactorize()) return Status::Numerical;
        since_refactor = 0;
        fresh_basis = true;
        continue;
      }
      fresh_basis = false;

      Eta eta;
      eta.pos = leave;
      eta.pivot = piv;
      for (int i = 0; i < m_; ++i) {
        if (i != leave && w[i] != 0.0) eta.entries.emplace_back(i, w[i]);
      }
      etas_.push_back(std::move(eta));

      if (++since_refactor >= opt_.refactor_every) {
        if (!refactorize()) return Status::Numerical;
        since_refactor = 0;
        fresh_basis = true;
      }
    }
  }

  void extract(Solution& sol) {
    // One clean refactorization for final values.
    refactorize();
    std::vector<double> x(static_cast<std::size_t>(n_), 0.0);
    for (int j = 0; j < n_; ++j)
      if (stat_[j] != kBasic) x[j] = nonbasic_value(j);
    for (int i = 0; i < m_; ++i) x[basic_[i]] = xb_[i];

    const double sign = sf_.maximize ? -1.0 : 1.0;
    sol.x.assign(x.begin(), x.begin() + sf_.nstruct);
    double obj = 0.0;
    for (int j = 0; j < n_; ++j) obj += sf_.cost[j] * x[j];
    sol.objective = sign * obj;

    std::vector<double> cb(static_cast<std::size_t>(m_));
    for (int i = 0; i < m_; ++i) cb[i] = sf_.cost[basic_[i]];
    std::vector<double> y;
    btran(cb, y);
    sol.duals.resize(static_cast<std::size_t>(m_));
    for (int i = 0; i < m_; ++i) sol.duals[i] = sign * y[i];
    sol.reduced.resize(static_cast<std::size_t>(sf_.nstruct));
    for (int j = 0; j < sf_.nstruct; ++j) {
      sol.reduced[j] = sign * (sf_.cost[j] - a_.column_dot(j, y));
    }

    if (auto* h = fault::simplex_hooks()) {
      if (h->solution_corruption != 0.0 && !sol.x.empty() &&
          fault::SimplexHooks::consume(h->corrupt_solutions)) {
        h->corruptions_injected.fetch_add(1, std::memory_order_relaxed);
        sol.x[0] += h->solution_corruption;
      }
    }
  }

  StandardForm sf_;
  SimplexOptions opt_;
  const Basis* warm_ = nullptr;
  const CrashHints* crash_ = nullptr;
  int m_, n_;
  SparseMatrix a_;
  Rng rng_;
  long max_iters_ = 0;
  long iters_ = 0;
  long dual_iters_ = 0;     // iterations inside optimize_dual()
  long charged_iters_ = 0;  // iterations already charged to the cancel token
  bool adopting_crash_ = false;    // apply_warm() is consuming crash hints
  bool adopted_via_crash_ = false; // a crash-hint basis was adopted
  bool pending_patched_ = false;   // staged outcome for the deferred dual commit

  SimplexMetrics& met_ = SimplexMetrics::get();
  long degenerate_total_ = 0;
  int bland_activations_ = 0;
  int refactor_count_ = 0;
  int unbounded_col_ = -1;
  double phase1_residual_ = 0.0;
  const char* warm_outcome_ = "cold";

  std::vector<VarStatus> stat_;
  std::vector<int> basic_;
  std::vector<int> pos_of_col_;
  std::vector<double> xb_;
  std::vector<double> devex_;
  std::vector<double> dw_;  // dual DEVEX row weights (optimize_dual)
  SparseLU lu_;
  std::vector<Eta> etas_;
  std::vector<double> col_buf_;
};

}  // namespace

Solution solve(const Model& model, const SimplexOptions& options, const Basis* warm,
               const CrashHints* crash) {
  TCR_REQUIRE(model.num_cols() > 0, "model has no variables");

  const CertifyOptions cert_opts = CertifyOptions::from_solver_tols(
      options.feas_tol, options.opt_tol, options.certify_tol_factor);

  // Crash hints ride along to every sparse attempt (they only kick in when
  // no warm basis is adopted); the dense fallback stays hint-free — its
  // value is independence from the revised solver's machinery.
  auto run_attempt = [crash](const Model& mdl, const SimplexOptions& o, const Basis* w) {
    auto sf = detail::build_standard_form(mdl);
    RevisedSimplex simplex(std::move(sf), o, w, crash);
    return simplex.run();
  };

  // An attempt is accepted unless it broke down numerically or produced an
  // "optimal" point whose independent certificate fails. Infeasible,
  // Unbounded and IterationLimit verdicts stand: re-solving cannot change
  // what the model is, only how it was pivoted.
  auto accept = [&](Solution& sol) {
    if (sol.status == Status::Numerical) return false;
    if (sol.status != Status::Optimal) return true;
    if (!options.certify) return true;
    sol.certificate = certify(model, sol, cert_opts);
    return sol.certificate.pass;
  };

  auto describe = [](const Solution& sol) {
    if (sol.status == Status::Optimal) {
      return sol.certificate.checked ? sol.certificate.summary()
                                     : std::string("optimal (uncertified)");
    }
    std::string d = to_string(sol.status);
    if (!sol.note.empty()) d += " (" + sol.note + ")";
    return d;
  };

  Solution best = run_attempt(model, options, warm);
  if (accept(best)) return best;

  // ---- staged recovery ladder ----
  auto& met = SimplexMetrics::get();
  auto& rec = RecoveryMetrics::get();
  std::string history = "first attempt: " + describe(best);

  // Each sparse retry restarts from the previous attempt's exported basis:
  // even a failed attempt usually leaves the basis far closer to optimal
  // than the crash start, and apply_warm() repairs or rejects anything
  // unusable. The dense stage stays cold — its value is independence.
  Basis chain = best.basis;

  // Keep the most defensible attempt for the exhausted case: an optimal
  // point with a failing certificate beats a breakdown, and among failed
  // certificates the smaller worst-residual wins.
  auto keep_better = [&](Solution& cand) {
    const bool cand_opt = cand.status == Status::Optimal;
    const bool best_opt = best.status == Status::Optimal;
    bool take = false;
    if (cand_opt != best_opt) {
      take = cand_opt;
    } else if (cand_opt) {
      take = &worse_certificate(cand.certificate, best.certificate) == &best.certificate;
    }
    if (take) std::swap(best, cand);
  };

  enum StageId { kReseed = 0, kEquilibrate, kCareful, kDense, kNumStages };
  obs::Counter* rescued[kNumStages] = {&rec.rescued_reseed, &rec.rescued_equilibrate,
                                       &rec.rescued_careful, &rec.rescued_dense};
  const char* names[kNumStages] = {"reseed", "equilibrate", "careful", "dense"};

  const bool stage_enabled[kNumStages] = {options.recover_reseed,
                                          options.recover_equilibrate,
                                          options.recover_careful, options.recover_dense};

  int stages_run = 0;
  for (int stage = 0; stage < kNumStages && stages_run < options.max_recovery_stages;
       ++stage) {
    if (!stage_enabled[stage]) continue;
    const std::string stage_span_name = std::string("lp.recovery.") + names[stage];
    trace::Span stage_span(stage_span_name);
    Solution cand;
    switch (stage) {
      case kReseed: {
        // Different perturbation seed and the opposite perturbation setting
        // shift the pivot sequence enough to escape most bad bases.
        SimplexOptions o = options;
        o.seed = options.seed * 2654435761ULL + 17;
        o.perturb = !options.perturb;
        cand = run_attempt(model, o, &chain);
        break;
      }
      case kEquilibrate: {
        // Solve the geometric-mean-equilibrated model and map the solution
        // back; the power-of-two factors make the transform exact.
        // The basis transfers: power-of-two scaling keeps the standard-form
        // shape, bound finiteness and basis nonsingularity intact.
        const Scaling s = geometric_mean_scaling(model);
        const Model scaled = apply_scaling(model, s);
        SimplexOptions o = options;
        o.seed = options.seed ^ 0x9e3779b97f4a7c15ULL;
        cand = run_attempt(scaled, o, &chain);
        unscale_solution(model, s, cand);
        break;
      }
      case kCareful: {
        // Slow but stable: refactorize constantly, drop the perturbation,
        // and fall into Bland pricing almost immediately.
        SimplexOptions o = options;
        o.refactor_every = std::min(options.refactor_every, 8);
        o.bland_after = 1;
        o.perturb = false;
        o.seed = options.seed * 6364136223846793005ULL + 1442695040888963407ULL;
        cand = run_attempt(model, o, &chain);
        break;
      }
      case kDense: {
        // Last resort for small models: the dense reference simplex shares
        // no code with the revised solver (explicit inverse, Bland's rule).
        if (model.num_rows() + model.num_cols() > options.dense_fallback_max_dim) {
          history += "; dense: skipped (model too large)";
          continue;
        }
        cand = solve_dense(model);
        break;
      }
    }
    ++stages_run;
    rec.attempts.add(1);
    met.retries.add(1);
    const bool rescued_here = accept(cand);
    stage_span.attr("status", to_string(cand.status));
    stage_span.attr("rescued", rescued_here);
    stage_span.end();
    if (rescued_here) {
      rescued[stage]->add(1);
      return cand;
    }
    history += std::string("; ") + names[stage] + ": " + describe(cand);
    chain = cand.basis;
    keep_better(cand);
  }

  rec.exhausted.add(1);
  best.note = "recovery ladder exhausted: " + history;
  return best;
}

}  // namespace tcr::lp
