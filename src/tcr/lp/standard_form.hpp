// Conversion of a Model to computational standard form, shared by the dense
// (oracle) and sparse (production) simplex implementations:
//
//   minimize c'x  s.t.  A x = b,  lo <= x <= up
//
// Columns are [structural | slack/surplus | artificial]. Slacks are added for
// LE/GE rows; artificial columns only for rows whose slack cannot start
// basic-feasible given the deterministic initial nonbasic point (structurals
// at the bound nearest zero, free variables at zero). The initial basis is
// recorded so both solvers start identically.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "tcr/lp/model.hpp"

namespace tcr::lp::detail {

enum VarStatus : std::uint8_t { kBasic = 0, kAtLower = 1, kAtUpper = 2, kFree = 3 };

struct StandardForm {
  int m = 0;        // rows
  int nstruct = 0;  // structural columns
  int ntotal = 0;   // structural + slack + artificial
  std::vector<Triplet> triplets;
  std::vector<double> lo, up;
  std::vector<double> cost;    // phase-2 costs (negated when maximizing)
  std::vector<double> cost1;   // phase-1 costs (1 on artificials)
  std::vector<double> b;
  std::vector<int> basis0;     // initial basic column per row
  std::vector<VarStatus> stat0;
  std::vector<char> artificial;  // per column
  bool maximize = false;
  bool need_phase1 = false;
};

inline StandardForm build_standard_form(const Model& model) {
  StandardForm sf;
  sf.m = model.num_rows();
  sf.nstruct = model.num_cols();
  sf.maximize = model.sense() == Sense::Maximize;

  const double sign = sf.maximize ? -1.0 : 1.0;
  for (int j = 0; j < sf.nstruct; ++j) {
    sf.lo.push_back(model.lower(j));
    sf.up.push_back(model.upper(j));
    sf.cost.push_back(sign * model.cost(j));
  }
  sf.triplets = model.triplets();
  sf.b.resize(static_cast<std::size_t>(sf.m));
  for (int i = 0; i < sf.m; ++i) sf.b[i] = model.rhs(i);

  // Initial nonbasic point: bound nearest zero, or zero for free columns.
  std::vector<double> x0(static_cast<std::size_t>(sf.nstruct), 0.0);
  sf.stat0.assign(static_cast<std::size_t>(sf.nstruct), kFree);
  for (int j = 0; j < sf.nstruct; ++j) {
    const double lo = sf.lo[j], up = sf.up[j];
    if (std::isfinite(lo) && std::isfinite(up)) {
      if (std::abs(lo) <= std::abs(up)) {
        x0[j] = lo;
        sf.stat0[j] = kAtLower;
      } else {
        x0[j] = up;
        sf.stat0[j] = kAtUpper;
      }
    } else if (std::isfinite(lo)) {
      x0[j] = lo;
      sf.stat0[j] = kAtLower;
    } else if (std::isfinite(up)) {
      x0[j] = up;
      sf.stat0[j] = kAtUpper;
    }
  }

  // Row activity at the initial point.
  std::vector<double> r = sf.b;
  for (const auto& t : sf.triplets) r[t.row] -= t.value * x0[t.col];

  sf.basis0.assign(static_cast<std::size_t>(sf.m), -1);
  std::vector<int> art_cols;
  auto add_aux_col = [&](int row, double coeff, double lo, double up, bool art) {
    sf.lo.push_back(lo);
    sf.up.push_back(up);
    sf.cost.push_back(0.0);
    const int col = static_cast<int>(sf.lo.size()) - 1;
    sf.triplets.push_back({row, col, coeff});
    if (art) art_cols.push_back(col);
    return col;
  };

  for (int i = 0; i < sf.m; ++i) {
    const RowType type = model.row_type(i);
    int slack = -1;
    if (type == RowType::LE) slack = add_aux_col(i, 1.0, 0.0, kInf, false);
    if (type == RowType::GE) slack = add_aux_col(i, -1.0, 0.0, kInf, false);

    const bool slack_feasible =
        (type == RowType::LE && r[i] >= 0.0) || (type == RowType::GE && r[i] <= 0.0);
    if (slack_feasible) {
      sf.basis0[i] = slack;
      sf.stat0.push_back(kBasic);
    } else {
      if (slack >= 0) sf.stat0.push_back(kAtLower);
      const double s = (r[i] >= 0.0) ? 1.0 : -1.0;
      const int art = add_aux_col(i, s, 0.0, kInf, true);
      sf.basis0[i] = art;
      sf.stat0.push_back(kBasic);
      if (std::abs(r[i]) > 0.0) sf.need_phase1 = true;
    }
  }

  sf.ntotal = static_cast<int>(sf.lo.size());
  sf.artificial.assign(static_cast<std::size_t>(sf.ntotal), 0);
  sf.cost1.assign(static_cast<std::size_t>(sf.ntotal), 0.0);
  for (int j : art_cols) {
    sf.artificial[j] = 1;
    sf.cost1[j] = 1.0;
  }
  return sf;
}

}  // namespace tcr::lp::detail
