#include "tcr/lp/model.hpp"

#include <algorithm>
#include <cmath>

#include "tcr/util/check.hpp"

namespace tcr::lp {

const char* to_string(Status s) {
  switch (s) {
    case Status::Optimal: return "optimal";
    case Status::Infeasible: return "infeasible";
    case Status::Unbounded: return "unbounded";
    case Status::IterationLimit: return "iteration-limit";
    case Status::Numerical: return "numerical";
    case Status::Cancelled: return "cancelled";
  }
  return "?";
}

int Model::add_col(double lo, double up, double cost) {
  TCR_REQUIRE(!std::isnan(lo) && lo < kInf, "lower bound must not be NaN or +inf");
  TCR_REQUIRE(!std::isnan(up) && up > -kInf, "upper bound must not be NaN or -inf");
  TCR_REQUIRE(lo <= up, "variable bounds must satisfy lo <= up");
  TCR_REQUIRE(std::isfinite(cost), "objective coefficient must be finite");
  lo_.push_back(lo);
  up_.push_back(up);
  cost_.push_back(cost);
  return num_cols() - 1;
}

int Model::add_row(RowType type, double rhs) {
  TCR_REQUIRE(std::isfinite(rhs), "row rhs must be finite");
  type_.push_back(type);
  rhs_.push_back(rhs);
  return num_rows() - 1;
}

void Model::add_term(int row, int col, double coeff) {
  TCR_REQUIRE(row >= 0 && row < num_rows(), "row index out of range");
  TCR_REQUIRE(col >= 0 && col < num_cols(), "col index out of range");
  TCR_REQUIRE(std::isfinite(coeff), "constraint coefficient must be finite");
  if (coeff == 0.0) return;
  triplets_.push_back({row, col, coeff});
}

int Model::add_row(RowType type, double rhs, const std::vector<std::pair<int, double>>& terms) {
  const int r = add_row(type, rhs);
  for (const auto& [col, coeff] : terms) add_term(r, col, coeff);
  return r;
}

void Model::set_cost(int col, double cost) {
  TCR_REQUIRE(col >= 0 && col < num_cols(), "col index out of range");
  TCR_REQUIRE(std::isfinite(cost), "objective coefficient must be finite");
  cost_[col] = cost;
}

void Model::set_rhs(int row, double rhs) {
  TCR_REQUIRE(row >= 0 && row < num_rows(), "row index out of range");
  TCR_REQUIRE(std::isfinite(rhs), "row rhs must be finite");
  rhs_[row] = rhs;
}

double Model::objective_value(const std::vector<double>& x) const {
  TCR_REQUIRE(static_cast<int>(x.size()) == num_cols(), "assignment size mismatch");
  double obj = 0.0;
  for (int j = 0; j < num_cols(); ++j) obj += cost_[j] * x[j];
  return obj;
}

double Model::max_violation(const std::vector<double>& x) const {
  TCR_REQUIRE(static_cast<int>(x.size()) == num_cols(), "assignment size mismatch");
  std::vector<double> activity(static_cast<std::size_t>(num_rows()), 0.0);
  for (const auto& t : triplets_) activity[t.row] += t.value * x[t.col];
  double viol = 0.0;
  for (int i = 0; i < num_rows(); ++i) {
    const double a = activity[i];
    switch (type_[i]) {
      case RowType::LE: viol = std::max(viol, a - rhs_[i]); break;
      case RowType::GE: viol = std::max(viol, rhs_[i] - a); break;
      case RowType::EQ: viol = std::max(viol, std::abs(a - rhs_[i])); break;
    }
  }
  for (int j = 0; j < num_cols(); ++j) {
    viol = std::max(viol, lo_[j] - x[j]);
    viol = std::max(viol, x[j] - up_[j]);
  }
  return viol;
}

}  // namespace tcr::lp
