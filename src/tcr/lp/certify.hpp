// Independent certification of LP solutions.
//
// certify() re-derives every KKT condition of a claimed optimum from the
// Model and the returned (x, y, reduced) values alone — it never looks at the
// solver's basis or factorization, so a passing Certificate is an
// end-to-end proof that the reported optimum is genuine:
//
//   * primal feasibility: row activities vs the rhs, variable bounds;
//   * objective consistency: the reported objective equals c'x;
//   * dual consistency: the reported reduced costs equal c - A'y;
//   * dual feasibility: sign conditions on reduced costs given each
//     variable's position against its bounds, and on LE/GE row duals;
//   * complementary slackness: row duals vanish on slack rows, reduced
//     costs vanish off the binding bound;
//   * duality gap: c'x equals the dual objective b'y + bound terms.
//
// All residuals are relative (scaled by the magnitude of the participating
// data), so tolerances are meaningful for badly scaled models too. The cost
// is one pass over the nonzeros — O(nnz + n + m) — cheap enough that
// lp::solve() certifies every optimal solve by default (see SimplexOptions).
#pragma once

#include "tcr/lp/model.hpp"

namespace tcr::lp {

/// Certification tolerances. The defaults are 10x the solver's default
/// feas_tol/opt_tol (1e-7): the simplex enforces its conditions basis-wise,
/// and the independent re-derivation adds roundoff of its own, so the
/// certificate must allow the solver slack it legitimately used. See
/// DESIGN.md ("Certified solves").
struct CertifyOptions {
  double feas_tol = 1e-6;      // primal rows and bounds
  double opt_tol = 1e-6;       // dual sign conditions (columns and rows)
  double res_tol = 1e-6;       // objective / reduced-cost consistency
  double comp_tol = 1e-5;      // complementary-slackness products
  double gap_tol = 1e-6;       // relative duality gap

  /// Tolerances derived from a solver's, keeping the 10x headroom ratio.
  static CertifyOptions from_solver_tols(double feas_tol, double opt_tol, double factor = 10.0);
};

/// Check a claimed optimal solution against `model`. Solutions whose status
/// is not Optimal (nothing to certify) and solutions with missing or
/// non-finite values fail with an explanatory reason.
Certificate certify(const Model& model, const Solution& sol, const CertifyOptions& opts = {});

/// The less trustworthy of two certificates: an unchecked or failing one
/// wins over a passing one; among equals, the larger worst() residual.
/// Used when a result aggregates several solves (lexicographic designs,
/// cutting-plane rounds) and must report a single proof.
const Certificate& worse_certificate(const Certificate& a, const Certificate& b);

}  // namespace tcr::lp
