// Dinic max-flow on a directed graph with real-valued capacities.
//
// The combinatorial companion of the LP layer: a cheap flow pass over the
// routing arc graph brackets what the LP will decide and seeds its crash
// basis (see CrashHints in lp/model.hpp and the flow crash construction in
// core/arc_flow.cpp). Classic Dinic — BFS level graph, then DFS blocking
// flow with per-node arc cursors — which is exact for the small, shallow
// graphs the designs build (a few thousand nodes, unit-ish capacities) and
// deterministic: arcs are explored in insertion order, so the same graph
// always yields the same flow and the same path decomposition.
#pragma once

#include <vector>

namespace tcr::lp {

class MaxFlow {
 public:
  explicit MaxFlow(int num_nodes);

  /// Add a directed arc `from -> to` with capacity `cap` (>= 0). Returns an
  /// arc id usable with flow_on() after solve(). Parallel arcs and self
  /// loops are allowed (a self loop never carries flow).
  int add_arc(int from, int to, double cap);

  /// Run Dinic from `s` to `t`, stopping once `limit` units are routed
  /// (pass 1.0 to extract a single shortest augmenting path on a unit-ish
  /// graph). Returns the total flow routed, <= limit. Callable repeatedly:
  /// flow accumulates on the residual graph, so solve(s, t, 1) twice routes
  /// two units along successively longer paths.
  double solve(int s, int t, double limit);
  double solve(int s, int t);

  /// Flow currently carried by an arc (0 before solve()).
  double flow_on(int arc) const;

  int num_nodes() const { return static_cast<int>(head_.size()); }
  int num_arcs() const { return static_cast<int>(arcs_.size()) / 2; }

  /// Decompose the current flow into s -> t paths (each a list of arc ids in
  /// order), greedily peeling the bottleneck path until less than `eps` flow
  /// leaves s. Flow cycles (possible after residual cancellation) are
  /// detected and cancelled, not returned. The decomposition consumes a
  /// scratch copy; the arcs' flow_on() values are unchanged.
  std::vector<std::vector<int>> decompose_paths(int s, int t, double eps = 1e-12) const;

 private:
  struct Arc {
    int to;
    double residual;  // remaining capacity; the paired arc holds the flow
  };

  bool bfs_levels(int s, int t);
  double dfs_augment(int u, int t, double limit);

  std::vector<Arc> arcs_;               // paired: arc k's reverse is k ^ 1
  std::vector<std::vector<int>> head_;  // per node, arc ids out of it
  std::vector<int> level_;
  std::vector<int> cursor_;  // per-node DFS arc cursor (blocking flow)
};

}  // namespace tcr::lp
