#include "tcr/lp/scaling.hpp"

#include <cmath>

#include "tcr/util/check.hpp"

namespace tcr::lp {

namespace {

// Nearest power of two to 1/sqrt(min * max): exact to apply and to undo.
double pow2_factor(double min_mag, double max_mag) {
  if (min_mag <= 0.0 || !std::isfinite(max_mag) || max_mag <= 0.0) return 1.0;
  const double target = 1.0 / std::sqrt(min_mag * max_mag);
  const int e = static_cast<int>(std::lround(std::log2(target)));
  return std::ldexp(1.0, e);
}

}  // namespace

Scaling geometric_mean_scaling(const Model& model, int passes) {
  const int m = model.num_rows(), n = model.num_cols();
  Scaling s;
  s.row.assign(static_cast<std::size_t>(m), 1.0);
  s.col.assign(static_cast<std::size_t>(n), 1.0);

  std::vector<double> mn, mx;
  for (int pass = 0; pass < passes; ++pass) {
    // Row factors from the currently scaled magnitudes.
    mn.assign(static_cast<std::size_t>(m), kInf);
    mx.assign(static_cast<std::size_t>(m), 0.0);
    for (const auto& t : model.triplets()) {
      const double v = std::abs(t.value) * s.row[t.row] * s.col[t.col];
      if (v == 0.0) continue;
      mn[t.row] = std::min(mn[t.row], v);
      mx[t.row] = std::max(mx[t.row], v);
    }
    for (int i = 0; i < m; ++i) s.row[i] *= pow2_factor(mn[i], mx[i]);

    // Column factors likewise. x_j scales by col[j]; to keep A'x' bounded
    // the matrix column is *multiplied* by col[j], so equilibrate the
    // product |a_ij| * row_i * col_j the same way.
    mn.assign(static_cast<std::size_t>(n), kInf);
    mx.assign(static_cast<std::size_t>(n), 0.0);
    for (const auto& t : model.triplets()) {
      const double v = std::abs(t.value) * s.row[t.row] * s.col[t.col];
      if (v == 0.0) continue;
      mn[t.col] = std::min(mn[t.col], v);
      mx[t.col] = std::max(mx[t.col], v);
    }
    for (int j = 0; j < n; ++j) s.col[j] *= pow2_factor(mn[j], mx[j]);
  }
  return s;
}

Model apply_scaling(const Model& model, const Scaling& s) {
  const int m = model.num_rows(), n = model.num_cols();
  TCR_REQUIRE(static_cast<int>(s.row.size()) == m && static_cast<int>(s.col.size()) == n,
              "scaling dimensions must match the model");
  Model out;
  out.set_sense(model.sense());
  for (int j = 0; j < n; ++j) {
    // x'_j = x_j / col[j]; dividing by a power of two keeps lo == up exact
    // for fixed columns and preserves infinities.
    out.add_col(model.lower(j) / s.col[j], model.upper(j) / s.col[j],
                model.cost(j) * s.col[j]);
  }
  for (int i = 0; i < m; ++i) out.add_row(model.row_type(i), model.rhs(i) * s.row[i]);
  for (const auto& t : model.triplets()) {
    out.add_term(t.row, t.col, t.value * s.row[t.row] * s.col[t.col]);
  }
  return out;
}

void unscale_solution(const Model& model, const Scaling& s, Solution& sol) {
  for (std::size_t j = 0; j < sol.x.size(); ++j) sol.x[j] *= s.col[j];
  for (std::size_t i = 0; i < sol.duals.size(); ++i) sol.duals[i] *= s.row[i];
  for (std::size_t j = 0; j < sol.reduced.size(); ++j) sol.reduced[j] /= s.col[j];
  if (sol.status == Status::Optimal &&
      static_cast<int>(sol.x.size()) == model.num_cols()) {
    sol.objective = model.objective_value(sol.x);
  }
}

}  // namespace tcr::lp
