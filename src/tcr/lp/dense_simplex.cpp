#include "tcr/lp/dense_simplex.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "tcr/lin/dense_matrix.hpp"
#include "tcr/lp/standard_form.hpp"
#include "tcr/util/check.hpp"

namespace tcr::lp {

namespace {

using detail::kAtLower;
using detail::kAtUpper;
using detail::kBasic;
using detail::kFree;
using detail::StandardForm;
using detail::VarStatus;

class DenseSimplex {
 public:
  DenseSimplex(const StandardForm& sf, const DenseSimplexOptions& opt)
      : sf_(sf), opt_(opt), m_(sf.m), n_(sf.ntotal), a_(sf.m, sf.ntotal), binv_(sf.m, sf.m) {
    for (const auto& t : sf_.triplets) a_(t.row, t.col) += t.value;
    stat_ = sf_.stat0;
    basic_ = sf_.basis0;
    for (int i = 0; i < m_; ++i) binv_(i, i) = 0.0;
    // The initial basis consists of slack/artificial columns: each has a
    // single +/-1 coefficient, so B^-1 is diagonal with the same signs.
    for (int i = 0; i < m_; ++i) binv_(i, i) = 1.0 / a_(i, basic_[i]);
    compute_basic_values();
  }

  Solution run() {
    Solution sol;
    long iters = 0;

    if (sf_.need_phase1) {
      const Status s1 = optimize(sf_.cost1, iters);
      sol.phase1_iterations = iters;
      if (s1 != Status::Optimal) {
        sol.status = s1;
        sol.iterations = iters;
        export_basis(sol);
        return sol;
      }
      if (phase_objective(sf_.cost1) > 1e-7) {
        sol.status = Status::Infeasible;
        sol.iterations = iters;
        export_basis(sol);
        return sol;
      }
    }
    // Phase 2: artificials are pinned to zero.
    lock_artificials();
    const Status s2 = optimize(sf_.cost, iters);
    sol.iterations = iters;
    sol.status = s2;
    if (s2 == Status::Optimal) extract(sol);
    export_basis(sol);
    return sol;
  }

 private:
  void compute_basic_values() {
    std::vector<double> rhs = sf_.b;
    for (int j = 0; j < n_; ++j) {
      if (stat_[j] == kBasic) continue;
      const double v = nonbasic_value(j);
      if (v == 0.0) continue;
      for (int i = 0; i < m_; ++i) rhs[i] -= a_(i, j) * v;
    }
    xb_.assign(m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      double acc = 0.0;
      for (int r = 0; r < m_; ++r) acc += binv_(i, r) * rhs[r];
      xb_[i] = acc;
    }
  }

  double nonbasic_value(int j) const {
    switch (stat_[j]) {
      case kAtLower: return sf_.lo[j];
      case kAtUpper: return sf_.up[j];
      default: return 0.0;
    }
  }

  double phase_objective(const std::vector<double>& cost) const {
    double obj = 0.0;
    for (int i = 0; i < m_; ++i) obj += cost[basic_[i]] * xb_[i];
    for (int j = 0; j < n_; ++j)
      if (stat_[j] != kBasic) obj += cost[j] * nonbasic_value(j);
    return obj;
  }

  void lock_artificials() {
    // Fix artificials to [0, 0]; a basic artificial stuck at zero is harmless.
    for (int j = 0; j < n_; ++j) {
      if (sf_.artificial[j]) sf_.up[j] = 0.0;
    }
  }

  Status optimize(const std::vector<double>& cost, long& iters) {
    std::vector<double> y(static_cast<std::size_t>(m_));
    std::vector<double> w(static_cast<std::size_t>(m_));
    const double tol = opt_.tol;

    for (;;) {
      if (++iters > opt_.max_iterations) return Status::IterationLimit;

      // y = B^-T c_B.
      for (int i = 0; i < m_; ++i) {
        double acc = 0.0;
        for (int r = 0; r < m_; ++r) acc += cost[basic_[r]] * binv_(r, i);
        y[i] = acc;
      }

      // Bland's rule: first eligible column.
      int q = -1, dir = 0;
      for (int j = 0; j < n_ && q < 0; ++j) {
        if (stat_[j] == kBasic) continue;
        if (sf_.lo[j] == sf_.up[j]) continue;  // fixed
        double d = cost[j];
        for (int i = 0; i < m_; ++i) d -= y[i] * a_(i, j);
        switch (stat_[j]) {
          case kAtLower:
            if (d < -tol) { q = j; dir = 1; }
            break;
          case kAtUpper:
            if (d > tol) { q = j; dir = -1; }
            break;
          case kFree:
            if (d < -tol) { q = j; dir = 1; }
            else if (d > tol) { q = j; dir = -1; }
            break;
          default: break;
        }
      }
      if (q < 0) return Status::Optimal;

      // w = B^-1 a_q.
      for (int i = 0; i < m_; ++i) {
        double acc = 0.0;
        for (int r = 0; r < m_; ++r) acc += binv_(i, r) * a_(r, q);
        w[i] = acc;
      }

      // Ratio test (Bland tie-breaking: smallest basic column index).
      double t_max = sf_.up[q] - sf_.lo[q];  // own-bound flip distance
      if (!std::isfinite(t_max)) t_max = kInf;
      int leave = -1;  // -1: bound flip
      for (int i = 0; i < m_; ++i) {
        const double delta = dir * w[i];
        if (std::abs(delta) <= 1e-11) continue;
        const int bj = basic_[i];
        double t;
        if (delta > 0) {
          if (!std::isfinite(sf_.lo[bj])) continue;
          t = (xb_[i] - sf_.lo[bj]) / delta;
        } else {
          if (!std::isfinite(sf_.up[bj])) continue;
          t = (sf_.up[bj] - xb_[i]) / (-delta);
        }
        t = std::max(t, 0.0);
        if (t < t_max - 1e-12 ||
            (t < t_max + 1e-12 && leave >= 0 && bj < basic_[leave])) {
          t_max = t;
          leave = i;
        }
      }

      if (!std::isfinite(t_max)) return Status::Unbounded;

      if (leave < 0) {
        // Bound flip: no basis change.
        for (int i = 0; i < m_; ++i) xb_[i] -= t_max * dir * w[i];
        stat_[q] = (stat_[q] == kAtLower) ? kAtUpper : kAtLower;
        continue;
      }

      // Pivot.
      const double enter_val = nonbasic_value(q) + dir * t_max;
      for (int i = 0; i < m_; ++i) xb_[i] -= t_max * dir * w[i];
      const int out = basic_[leave];
      const double delta_out = dir * w[leave];
      stat_[out] = (delta_out > 0) ? kAtLower : kAtUpper;
      if (!std::isfinite(sf_.up[out]) && stat_[out] == kAtUpper) stat_[out] = kFree;
      if (!std::isfinite(sf_.lo[out]) && stat_[out] == kAtLower) stat_[out] = kFree;
      basic_[leave] = q;
      stat_[q] = kBasic;
      xb_[leave] = enter_val;

      // Explicit inverse update.
      const double pivot = w[leave];
      for (int c = 0; c < m_; ++c) binv_(leave, c) /= pivot;
      for (int i = 0; i < m_; ++i) {
        if (i == leave) continue;
        const double f = w[i];
        if (f == 0.0) continue;
        for (int c = 0; c < m_; ++c) binv_(i, c) -= f * binv_(leave, c);
      }
    }
  }

  void export_basis(Solution& sol) const {
    sol.basis.stat.assign(stat_.begin(), stat_.end());
    sol.basis.basic = basic_;
  }

  void extract(Solution& sol) const {
    std::vector<double> x(static_cast<std::size_t>(n_), 0.0);
    for (int j = 0; j < n_; ++j)
      if (stat_[j] != kBasic) x[j] = nonbasic_value(j);
    for (int i = 0; i < m_; ++i) x[basic_[i]] = xb_[i];

    const double sign = sf_.maximize ? -1.0 : 1.0;
    sol.x.assign(x.begin(), x.begin() + sf_.nstruct);
    double obj = 0.0;
    for (int j = 0; j < n_; ++j) obj += sf_.cost[j] * x[j];
    sol.objective = sign * obj;

    sol.duals.assign(static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i) {
      double acc = 0.0;
      for (int r = 0; r < m_; ++r) acc += sf_.cost[basic_[r]] * binv_(r, i);
      sol.duals[i] = sign * acc;
    }
    sol.reduced.assign(static_cast<std::size_t>(sf_.nstruct), 0.0);
    for (int j = 0; j < sf_.nstruct; ++j) {
      double d = sign * sf_.cost[j];
      for (int i = 0; i < m_; ++i) d -= sol.duals[i] * a_(i, j);
      sol.reduced[j] = d;
    }
  }

  StandardForm sf_;
  DenseSimplexOptions opt_;
  int m_, n_;
  DenseMatrix a_;
  DenseMatrix binv_;
  std::vector<VarStatus> stat_;
  std::vector<int> basic_;
  std::vector<double> xb_;
};

}  // namespace

Solution solve_dense(const Model& model, const DenseSimplexOptions& options,
                     const Basis* warm) {
  TCR_REQUIRE(model.num_rows() > 0 || model.num_cols() > 0, "empty model");
  (void)warm;  // the oracle always cold-starts; see the header
  auto sf = detail::build_standard_form(model);
  DenseSimplex simplex(sf, options);
  return simplex.run();
}

}  // namespace tcr::lp
