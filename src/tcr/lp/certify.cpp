#include "tcr/lp/certify.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tcr/obs/registry.hpp"

namespace tcr::lp {

namespace {

struct CertifyMetrics {
  obs::Counter& checks = obs::Registry::instance().counter("lp.certify.checks");
  obs::Counter& failures = obs::Registry::instance().counter("lp.certify.failures");

  static CertifyMetrics& get() {
    static CertifyMetrics m;
    return m;
  }
};

}  // namespace

double Certificate::worst() const {
  double w = primal_residual;
  w = std::max(w, bound_violation);
  w = std::max(w, objective_residual);
  w = std::max(w, dual_residual);
  w = std::max(w, dual_violation);
  w = std::max(w, row_dual_violation);
  w = std::max(w, complementarity);
  w = std::max(w, duality_gap);
  return w;
}

std::string Certificate::summary() const {
  if (!checked) return "not certified";
  std::ostringstream os;
  os << (pass ? "certified" : "certificate FAILED");
  os.precision(3);
  os << " (primal " << std::scientific << primal_residual << ", dual " << dual_violation
     << ", comp " << complementarity << ", gap " << duality_gap << ")";
  if (!pass && !reason.empty()) os << ": " << reason;
  return os.str();
}

CertifyOptions CertifyOptions::from_solver_tols(double feas_tol, double opt_tol, double factor) {
  CertifyOptions o;
  o.feas_tol = std::max(o.feas_tol, factor * feas_tol);
  o.opt_tol = std::max(o.opt_tol, factor * opt_tol);
  o.res_tol = std::max(o.res_tol, factor * std::max(feas_tol, opt_tol));
  o.comp_tol = std::max(o.comp_tol, 10.0 * factor * opt_tol);
  o.gap_tol = std::max(o.gap_tol, factor * std::max(feas_tol, opt_tol));
  return o;
}

const Certificate& worse_certificate(const Certificate& a, const Certificate& b) {
  if (a.checked != b.checked) return a.checked ? b : a;  // unchecked is worse
  if (a.pass != b.pass) return a.pass ? b : a;
  return a.worst() >= b.worst() ? a : b;
}

Certificate certify(const Model& model, const Solution& sol, const CertifyOptions& opts) {
  auto& met = CertifyMetrics::get();
  met.checks.add(1);
  Certificate cert;
  cert.checked = true;
  cert.pass = false;

  const int m = model.num_rows();
  const int n = model.num_cols();

  if (sol.status != Status::Optimal) {
    cert.reason = std::string("status is ") + to_string(sol.status) + ", nothing to certify";
    met.failures.add(1);
    return cert;
  }
  if (static_cast<int>(sol.x.size()) != n || static_cast<int>(sol.duals.size()) != m ||
      static_cast<int>(sol.reduced.size()) != n) {
    cert.reason = "solution vectors have the wrong dimensions";
    met.failures.add(1);
    return cert;
  }
  for (double v : sol.x) {
    if (!std::isfinite(v)) {
      cert.reason = "non-finite primal value";
      met.failures.add(1);
      return cert;
    }
  }
  for (double v : sol.duals) {
    if (!std::isfinite(v)) {
      cert.reason = "non-finite dual value";
      met.failures.add(1);
      return cert;
    }
  }
  for (double v : sol.reduced) {
    if (!std::isfinite(v)) {
      cert.reason = "non-finite reduced cost";
      met.failures.add(1);
      return cert;
    }
  }

  // Work in minimize convention: the solver reports duals/reduced costs in
  // the model's sense, so for a maximization both flip sign along with the
  // costs and the KKT conditions below apply unchanged.
  const double sign = model.sense() == Sense::Maximize ? -1.0 : 1.0;

  // One pass over the nonzeros: row activity, row scale (sum |a_ij x_j|,
  // for a relative residual) and the independent reduced costs c - A'y.
  std::vector<double> activity(static_cast<std::size_t>(m), 0.0);
  std::vector<double> row_scale(static_cast<std::size_t>(m), 0.0);
  std::vector<double> dhat(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) dhat[j] = sign * model.cost(j);
  for (const auto& t : model.triplets()) {
    activity[t.row] += t.value * sol.x[t.col];
    row_scale[t.row] += std::abs(t.value * sol.x[t.col]);
    dhat[t.col] -= t.value * sign * sol.duals[t.row];
  }

  // ---- primal feasibility + row complementarity + row dual signs ----
  double dual_obj = 0.0;  // b'y part, min convention
  for (int i = 0; i < m; ++i) {
    const double b = model.rhs(i);
    const double y = sign * sol.duals[i];
    const double scale = 1.0 + std::abs(b) + row_scale[i];
    double viol = 0.0;   // infeasibility, absolute
    double slack = 0.0;  // distance from the binding side, absolute
    switch (model.row_type(i)) {
      case RowType::LE:
        viol = activity[i] - b;
        slack = std::max(b - activity[i], 0.0);
        // Min convention: an LE row can only push the objective down, y <= 0.
        cert.row_dual_violation =
            std::max(cert.row_dual_violation, y / (1.0 + std::abs(y)));
        break;
      case RowType::GE:
        viol = b - activity[i];
        slack = std::max(activity[i] - b, 0.0);
        cert.row_dual_violation =
            std::max(cert.row_dual_violation, -y / (1.0 + std::abs(y)));
        break;
      case RowType::EQ:
        viol = std::abs(activity[i] - b);
        break;
    }
    cert.primal_residual = std::max(cert.primal_residual, viol / scale);
    cert.complementarity =
        std::max(cert.complementarity, std::abs(y) * slack / (scale * (1.0 + std::abs(y))));
    dual_obj += b * y;
  }

  // ---- bounds, column dual feasibility and complementarity, gap terms ----
  double primal_obj = 0.0;  // c'x, min convention
  for (int j = 0; j < n; ++j) {
    const double x = sol.x[j];
    const double lo = model.lower(j), up = model.upper(j);
    const double c = sign * model.cost(j);
    const double d = dhat[j];
    primal_obj += c * x;

    const double xscale = 1.0 + std::abs(x);
    if (std::isfinite(lo))
      cert.bound_violation = std::max(cert.bound_violation, (lo - x) / xscale);
    if (std::isfinite(up))
      cert.bound_violation = std::max(cert.bound_violation, (x - up) / xscale);

    // Reported reduced cost must match the independent one.
    cert.dual_residual = std::max(
        cert.dual_residual, std::abs(d - sign * sol.reduced[j]) / (1.0 + std::abs(c)));

    // Sign conditions judged by where x actually sits (not the solver's
    // basis flags): interior => d ~ 0; at lower => d >= 0; at upper => d <= 0.
    // Fixed columns (lo == up) admit any reduced cost.
    if (lo < up) {
      const double atol = opts.feas_tol * xscale;
      const bool at_lower = std::isfinite(lo) && x <= lo + atol;
      const bool at_upper = std::isfinite(up) && x >= up - atol;
      const double dscale = 1.0 + std::abs(c) + std::abs(d);
      if (!at_lower && !at_upper) {
        cert.dual_violation = std::max(cert.dual_violation, std::abs(d) / dscale);
      } else if (at_lower && !at_upper) {
        cert.dual_violation = std::max(cert.dual_violation, -d / dscale);
      } else if (at_upper && !at_lower) {
        cert.dual_violation = std::max(cert.dual_violation, d / dscale);
      }
      // Complementarity on the finite non-binding side.
      if (std::isfinite(lo) && d > 0.0) {
        cert.complementarity =
            std::max(cert.complementarity, d * (x - lo) / (dscale * xscale));
      }
      if (std::isfinite(up) && d < 0.0) {
        cert.complementarity =
            std::max(cert.complementarity, -d * (up - x) / (dscale * xscale));
      }
    }

    // Dual objective bound terms: multiplier d+ sits on the lower bound,
    // d- on the upper. An infinite bound with the matching multiplier
    // active is a dual-feasibility failure recorded above; skip the term
    // rather than produce inf * 0.
    if (d > 0.0 && std::isfinite(lo)) dual_obj += d * lo;
    if (d < 0.0 && std::isfinite(up)) dual_obj += d * up;
  }

  cert.objective_residual =
      std::abs(sign * sol.objective - primal_obj) / (1.0 + std::abs(primal_obj));
  cert.duality_gap =
      std::abs(primal_obj - dual_obj) / (1.0 + std::abs(primal_obj) + std::abs(dual_obj));

  // ---- verdict ----
  struct Check {
    const char* what;
    double value;
    double tol;
  };
  const Check checks[] = {
      {"primal row residual", cert.primal_residual, opts.feas_tol},
      {"bound violation", cert.bound_violation, opts.feas_tol},
      {"objective mismatch", cert.objective_residual, opts.res_tol},
      {"reduced-cost mismatch", cert.dual_residual, opts.res_tol},
      {"dual sign violation", cert.dual_violation, opts.opt_tol},
      {"row-dual sign violation", cert.row_dual_violation, opts.opt_tol},
      {"complementary slackness", cert.complementarity, opts.comp_tol},
      {"duality gap", cert.duality_gap, opts.gap_tol},
  };
  cert.pass = true;
  double worst_excess = 0.0;
  for (const Check& c : checks) {
    if (c.value > c.tol && c.value / c.tol > worst_excess) {
      cert.pass = false;
      worst_excess = c.value / c.tol;
      std::ostringstream os;
      os.precision(3);
      os << c.what << " " << std::scientific << c.value << " exceeds " << c.tol;
      cert.reason = os.str();
    }
  }
  if (!cert.pass) met.failures.add(1);
  return cert;
}

}  // namespace tcr::lp
