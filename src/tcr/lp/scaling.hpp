// Geometric-mean row/column equilibration for LP models.
//
// Recovery-ladder stage for numerically hostile solves (lp/simplex.cpp):
// scale each row and column by the reciprocal of the geometric mean of its
// extreme nonzero magnitudes, iterated a few passes, with every factor
// rounded to a power of two so the scaling itself is exact in floating
// point. The scaled model has the same objective value; primal and dual
// solutions map back through the factors (unscale_solution).
#pragma once

#include <vector>

#include "tcr/lp/model.hpp"

namespace tcr::lp {

struct Scaling {
  std::vector<double> row;  // row i of A is multiplied by row[i]
  std::vector<double> col;  // x_j = col[j] * x'_j (column j multiplied by col[j])
};

/// Geometric-mean scaling factors, rounded to powers of two. `passes`
/// alternations of row and column equilibration (2 is the classic choice).
Scaling geometric_mean_scaling(const Model& model, int passes = 2);

/// The scaled model: A' = R A C, b' = R b, c' = C c, bounds / col factors.
/// Its optimal objective equals the original's.
Model apply_scaling(const Model& model, const Scaling& s);

/// Map a solution of apply_scaling(model, s) back to the original model:
/// x = C x', y = R y', d = d' / C. The objective is recomputed from the
/// unscaled x so it is exactly consistent with the returned point.
void unscale_solution(const Model& model, const Scaling& s, Solution& sol);

}  // namespace tcr::lp
