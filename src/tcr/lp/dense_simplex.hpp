// Dense bounded-variable two-phase simplex with Bland's rule.
//
// Deliberately simple reference implementation (explicit basis inverse,
// anti-cycling by Bland's rule throughout). It is slow but hard to get
// wrong, and serves as the oracle against which the sparse revised simplex
// is property-tested. Use tcr::lp::solve() for real problems.
#pragma once

#include "tcr/lp/model.hpp"

namespace tcr::lp {

struct DenseSimplexOptions {
  double tol = 1e-9;
  long max_iterations = 200000;
};

/// `warm` is accepted for signature parity with lp::solve() but ignored:
/// the oracle always cold-starts so its pivot path stays independent of the
/// production solver it is checking. The final basis is still exported on
/// Solution::basis, so a dense solve can seed later sparse solves.
Solution solve_dense(const Model& model, const DenseSimplexOptions& options = {},
                     const Basis* warm = nullptr);

}  // namespace tcr::lp
