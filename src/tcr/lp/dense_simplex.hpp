// Dense bounded-variable two-phase simplex with Bland's rule.
//
// Deliberately simple reference implementation (explicit basis inverse,
// anti-cycling by Bland's rule throughout). It is slow but hard to get
// wrong, and serves as the oracle against which the sparse revised simplex
// is property-tested. Use tcr::lp::solve() for real problems.
#pragma once

#include "tcr/lp/model.hpp"

namespace tcr::lp {

struct DenseSimplexOptions {
  double tol = 1e-9;
  long max_iterations = 200000;
};

Solution solve_dense(const Model& model, const DenseSimplexOptions& options = {});

}  // namespace tcr::lp
