// Linear-program model builder and solution types.
//
// A Model holds columns (variables with bounds and objective coefficients)
// and rows (linear constraints with a sense and right-hand side), accumulated
// as triplets. Solvers convert it to their internal standard form.
//
// This is the interface on which all of the paper's routing-design problems
// (capacity (6), worst-case (8)/(10), average-case (15), path-restricted
// variants) are expressed; see tcr/core/.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "tcr/lin/sparse.hpp"

namespace tcr::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense { Minimize, Maximize };
enum class RowType { LE, GE, EQ };

enum class Status {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  Numerical,
  /// Stopped cooperatively by a guard::CancelToken (deadline, budget or
  /// signal; SimplexOptions::cancel). The solution is partial: the exported
  /// basis is the best-so-far point and can warm-start a continuation, and
  /// the note carries the token's stop diagnosis. Unlike Numerical, the
  /// recovery ladder never re-solves a cancelled attempt.
  Cancelled,
};

const char* to_string(Status s);

/// Independent optimality certificate for a Solution, produced by
/// lp::certify() (lp/certify.hpp) from the Model and the solution values
/// alone — never from the solver's factorization. All residuals are
/// *relative* (scaled by the magnitude of the data they involve), so a
/// passing certificate means the KKT conditions hold to the stated
/// tolerances regardless of problem scaling. A default-constructed
/// Certificate reports checked == false (nothing was verified).
struct Certificate {
  bool checked = false;  // certify() ran on this solution
  bool pass = false;     // every residual below its tolerance
  double primal_residual = 0.0;     // max relative row violation
  double bound_violation = 0.0;     // max relative variable-bound violation
  double objective_residual = 0.0;  // reported objective vs c'x
  double dual_residual = 0.0;       // reported reduced costs vs c - A'y
  double dual_violation = 0.0;      // reduced-cost sign violations at x
  double row_dual_violation = 0.0;  // row-dual sign violations (LE/GE rows)
  double complementarity = 0.0;     // max relative slackness product
  double duality_gap = 0.0;         // relative primal-dual objective gap
  std::string reason;  // first/worst failed check; empty when pass

  bool ok() const { return checked && pass; }
  /// Largest residual measure (the number a failing solve is judged by).
  double worst() const;
  /// One-line human-readable summary for notes and logs.
  std::string summary() const;
};

/// Simplex basis snapshot in *standard-form* column space (structural
/// columns first, then the slack/artificial columns the solver appends).
/// Exported on every Solution and accepted back by lp::solve() as a warm
/// start. A basis is only meaningful for a model whose standard form has the
/// same dimensions as the one that produced it; lp::solve() validates the
/// supplied basis, repairs singular ones against the crash basis, and falls
/// back to a cold start when the basis cannot be salvaged (see
/// lp.warmstart.* obs counters).
struct Basis {
  /// Per standard-form column: 0 = basic, 1 = at lower bound, 2 = at upper
  /// bound, 3 = free at zero (matches lp::detail::VarStatus).
  std::vector<std::uint8_t> stat;
  /// Basic column per row (size = number of rows).
  std::vector<int> basic;
  /// Optional caller hint: rows whose rhs/bounds were edited after this
  /// basis was exported (a parametric sweep knows exactly which constraint
  /// it moved). The warm-start repair tries these rows' slack/artificial
  /// columns first when the basis comes back primal-infeasible, which turns
  /// the repair into a single targeted pivot instead of a search. Solvers
  /// export this empty; out-of-range entries are ignored.
  std::vector<int> edited_rows;

  bool empty() const { return basic.empty(); }
};

/// Combinatorial crash-basis hints for a *cold* solve: per model row, the
/// index of a structural column to seed basic in that row's position instead
/// of the row's slack/artificial crash column (-1 keeps the crash column).
/// Callers that understand the model's combinatorial structure (e.g. a
/// max-flow pass over the arc graph, core/arc_flow.cpp) build these once per
/// model; lp::solve() turns them into a candidate basis and routes it through
/// the same validation/repair machinery as a warm basis, counted separately
/// under the lp.crash.* obs counters. Hints are advisory: an inconsistent or
/// singular hint set degrades to the all-slack crash, never to a failure.
struct CrashHints {
  /// Size num_rows; basic_of_row[r] = structural column to make basic at row
  /// r's position, or -1. Out-of-range and duplicate columns are ignored.
  std::vector<int> basic_of_row;

  bool empty() const { return basic_of_row.empty(); }
};

struct Solution {
  Status status = Status::Numerical;
  double objective = 0.0;
  std::vector<double> x;        // structural variable values
  std::vector<double> duals;    // one per row (simplex multipliers y)
  std::vector<double> reduced;  // reduced costs of structural variables
  long iterations = 0;          // simplex iterations of the returned attempt
  long phase1_iterations = 0;
  /// Iterations spent in the dual simplex phase (SimplexOptions::dual): a
  /// warm basis left dual-feasible but primal-infeasible by an rhs edit is
  /// driven back to optimality by dual pivots instead of reentry + phase 1.
  /// 0 when the dual phase did not run. Included in `iterations`.
  long dual_iterations = 0;
  /// Human-readable diagnosis of why a non-optimal solve stopped (e.g.
  /// "iteration limit after 312 degenerate pivots"). Empty when Optimal,
  /// unless the recovery ladder ran out with a failing certificate — then it
  /// records every stage's outcome.
  std::string note;
  /// Filled by lp::solve() when SimplexOptions::certify is on and the solve
  /// reached Status::Optimal; default (checked == false) otherwise.
  Certificate certificate;
  /// Final simplex basis, exported on every outcome (including failures, so
  /// the recovery ladder and sweep chaining can restart from it).
  Basis basis;
  /// How the supplied warm basis fared: "cold" (none supplied), "accepted"
  /// (adopted unchanged), "repaired" (adopted after patching) or "rejected"
  /// (unusable; the solve cold-started). Mirrors the lp.warmstart.* obs
  /// counters, per solve instead of in aggregate.
  std::string warm_start = "cold";

  bool optimal() const { return status == Status::Optimal; }
};

class Model {
 public:
  /// Add a variable with bounds [lo, up] and objective coefficient `cost`.
  int add_col(double lo, double up, double cost);

  /// Add an empty constraint row; populate with add_term().
  int add_row(RowType type, double rhs);

  /// Add (or accumulate) a coefficient. Duplicate (row, col) terms sum.
  void add_term(int row, int col, double coeff);

  /// Convenience: add a fully-formed row in one call.
  int add_row(RowType type, double rhs, const std::vector<std::pair<int, double>>& terms);

  void set_sense(Sense s) { sense_ = s; }
  Sense sense() const { return sense_; }

  void set_cost(int col, double cost);

  /// Rewrite a row's right-hand side in place. The row keeps its type and
  /// coefficients; incremental sweeps use this to move one bound between
  /// otherwise identical solves (see SymmetricArcDesign::set_locality_bound).
  void set_rhs(int row, double rhs);

  int num_cols() const { return static_cast<int>(lo_.size()); }
  int num_rows() const { return static_cast<int>(rhs_.size()); }
  std::size_t num_terms() const { return triplets_.size(); }

  double lower(int col) const { return lo_[col]; }
  double upper(int col) const { return up_[col]; }
  double cost(int col) const { return cost_[col]; }
  RowType row_type(int row) const { return type_[row]; }
  double rhs(int row) const { return rhs_[row]; }
  const std::vector<Triplet>& triplets() const { return triplets_; }

  /// Objective value of a given structural assignment (ignores feasibility).
  double objective_value(const std::vector<double>& x) const;

  /// Maximum constraint violation of an assignment (for verification).
  double max_violation(const std::vector<double>& x) const;

 private:
  Sense sense_ = Sense::Minimize;
  std::vector<double> lo_, up_, cost_;
  std::vector<RowType> type_;
  std::vector<double> rhs_;
  std::vector<Triplet> triplets_;
};

}  // namespace tcr::lp
