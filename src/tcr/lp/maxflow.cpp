#include "tcr/lp/maxflow.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "tcr/util/check.hpp"

namespace tcr::lp {

namespace {
constexpr double kInfFlow = std::numeric_limits<double>::infinity();
}  // namespace

MaxFlow::MaxFlow(int num_nodes) : head_(static_cast<std::size_t>(num_nodes)) {
  TCR_REQUIRE(num_nodes > 0, "max-flow graph needs at least one node");
}

int MaxFlow::add_arc(int from, int to, double cap) {
  TCR_REQUIRE(from >= 0 && from < num_nodes() && to >= 0 && to < num_nodes(),
              "max-flow arc endpoint out of range");
  TCR_REQUIRE(cap >= 0.0, "max-flow arc capacity must be nonnegative");
  const int id = static_cast<int>(arcs_.size());
  arcs_.push_back({to, cap});
  arcs_.push_back({from, 0.0});
  head_[static_cast<std::size_t>(from)].push_back(id);
  head_[static_cast<std::size_t>(to)].push_back(id + 1);
  return id;
}

bool MaxFlow::bfs_levels(int s, int t) {
  level_.assign(head_.size(), -1);
  std::deque<int> queue;
  level_[static_cast<std::size_t>(s)] = 0;
  queue.push_back(s);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (const int k : head_[static_cast<std::size_t>(u)]) {
      const Arc& a = arcs_[static_cast<std::size_t>(k)];
      if (a.residual <= 0.0 || level_[static_cast<std::size_t>(a.to)] >= 0) continue;
      level_[static_cast<std::size_t>(a.to)] = level_[static_cast<std::size_t>(u)] + 1;
      queue.push_back(a.to);
    }
  }
  return level_[static_cast<std::size_t>(t)] >= 0;
}

double MaxFlow::dfs_augment(int u, int t, double limit) {
  if (u == t || limit <= 0.0) return limit;
  for (int& c = cursor_[static_cast<std::size_t>(u)];
       c < static_cast<int>(head_[static_cast<std::size_t>(u)].size()); ++c) {
    const int k = head_[static_cast<std::size_t>(u)][static_cast<std::size_t>(c)];
    Arc& a = arcs_[static_cast<std::size_t>(k)];
    if (a.residual <= 0.0 ||
        level_[static_cast<std::size_t>(a.to)] != level_[static_cast<std::size_t>(u)] + 1) {
      continue;
    }
    const double pushed = dfs_augment(a.to, t, std::min(limit, a.residual));
    if (pushed > 0.0) {
      a.residual -= pushed;
      arcs_[static_cast<std::size_t>(k ^ 1)].residual += pushed;
      return pushed;
    }
  }
  return 0.0;
}

double MaxFlow::solve(int s, int t, double limit) {
  TCR_REQUIRE(s >= 0 && s < num_nodes() && t >= 0 && t < num_nodes(),
              "max-flow terminal out of range");
  if (s == t || limit <= 0.0) return 0.0;
  double total = 0.0;
  while (total < limit && bfs_levels(s, t)) {
    cursor_.assign(head_.size(), 0);
    for (;;) {
      const double pushed = dfs_augment(s, t, limit - total);
      if (pushed <= 0.0) break;
      total += pushed;
      if (total >= limit) break;
    }
  }
  return total;
}

double MaxFlow::solve(int s, int t) { return solve(s, t, kInfFlow); }

double MaxFlow::flow_on(int arc) const {
  TCR_REQUIRE(arc >= 0 && arc + 1 < static_cast<int>(arcs_.size()) && (arc & 1) == 0,
              "flow_on wants a forward arc id from add_arc");
  // The paired reverse arc accumulates exactly the flow pushed forward.
  return arcs_[static_cast<std::size_t>(arc + 1)].residual;
}

std::vector<std::vector<int>> MaxFlow::decompose_paths(int s, int t, double eps) const {
  // Scratch flow per forward arc.
  std::vector<double> flow(static_cast<std::size_t>(num_arcs()));
  for (int a = 0; a < num_arcs(); ++a) flow[static_cast<std::size_t>(a)] = flow_on(2 * a);

  std::vector<std::vector<int>> paths;
  std::vector<int> mark(head_.size(), -1);  // walk id a node was last seen in
  for (int walk = 0;; ++walk) {
    // Follow positive-flow arcs from s, peeling the bottleneck. A node seen
    // twice in one walk closes a flow cycle: cancel the cycle's flow and
    // retry (cycles carry no s->t value).
    std::vector<int> path;  // forward arc ids
    int u = s;
    mark[static_cast<std::size_t>(u)] = walk;
    bool cycle = false;
    while (u != t) {
      int next_arc = -1;
      for (const int k : head_[static_cast<std::size_t>(u)]) {
        if ((k & 1) != 0) continue;  // reverse arcs never carry flow here
        if (flow[static_cast<std::size_t>(k / 2)] > eps) {
          next_arc = k;
          break;
        }
      }
      if (next_arc < 0) break;  // flow conservation ran dry (u == s: done)
      path.push_back(next_arc);
      u = arcs_[static_cast<std::size_t>(next_arc)].to;
      if (mark[static_cast<std::size_t>(u)] == walk) {
        cycle = true;
        break;
      }
      mark[static_cast<std::size_t>(u)] = walk;
    }
    if (cycle) {
      // Trim the tail that closes at u, zero the cycle's bottleneck.
      std::size_t start = 0;
      while (start < path.size() &&
             arcs_[static_cast<std::size_t>(path[start] ^ 1)].to != u) {
        ++start;
      }
      double bottleneck = kInfFlow;
      for (std::size_t i = start; i < path.size(); ++i) {
        bottleneck = std::min(bottleneck, flow[static_cast<std::size_t>(path[i] / 2)]);
      }
      for (std::size_t i = start; i < path.size(); ++i) {
        flow[static_cast<std::size_t>(path[i] / 2)] -= bottleneck;
      }
      continue;  // same walk budget: cycle flow strictly decreased
    }
    if (u != t || path.empty()) break;  // no s->t flow left
    double bottleneck = kInfFlow;
    for (const int k : path) {
      bottleneck = std::min(bottleneck, flow[static_cast<std::size_t>(k / 2)]);
    }
    for (const int k : path) flow[static_cast<std::size_t>(k / 2)] -= bottleneck;
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace tcr::lp
