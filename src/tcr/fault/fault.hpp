// tcr::fault — deterministic, seeded fault injection.
//
// Robustness claims are only worth something when they are exercised; this
// module supplies the three fault families the test suite and the CI stress
// job use to prove the solver's recovery ladder and the simulator's deadlock
// handling actually work:
//
//   * ULP-level model perturbation: every coefficient nudged a few units in
//     the last place, deterministically from a seed — the numerical
//     sensitivity probe for the design LPs;
//   * simplex test hooks: force refactorization failures, inject drift into
//     product-form eta pivots, or corrupt the extracted solution, to seed the
//     breakdowns each recovery-ladder stage must rescue (lp/simplex.cpp
//     consults the installed hooks; production pays one atomic pointer load);
//   * simulator fault plans: take links down or stall credits for cycle
//     windows, to drive tcr::sim through deadlock and deadlock-near-miss
//     paths on demand.
//
// Everything here is deterministic given the seed; nothing is installed by
// default.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "tcr/lp/model.hpp"

namespace tcr::fault {

// ---- ULP-level model perturbation --------------------------------------

/// A copy of `model` with every objective coefficient, rhs and constraint
/// coefficient moved up to `max_ulps` floating-point steps (uniformly in
/// [-max_ulps, +max_ulps], per value, from the seed). Bounds are preserved
/// exactly so fixed variables stay fixed and lo <= up cannot invert.
lp::Model perturb_model_ulp(const lp::Model& model, std::uint64_t seed, int max_ulps = 4);

// ---- simplex test hooks ------------------------------------------------

/// Test-only failure injection for the sparse revised simplex. Counters are
/// armed budgets: each injection consumes one unit until the budget is
/// exhausted, so a test can break exactly the first attempt(s) of a solve
/// and watch a specific recovery-ladder stage rescue it.
struct SimplexHooks {
  /// While > 0, every refactorization fails (as if the basis were singular),
  /// consuming one unit per failure.
  std::atomic<long> fail_refactors{0};
  /// While > 0, each stored eta pivot is multiplied by (1 + eta_drift),
  /// consuming one unit per eta — simulates product-form accumulation error.
  std::atomic<long> drift_etas{0};
  double eta_drift = 0.0;
  /// While > 0, the first structural value of an extracted optimal solution
  /// is offset by solution_corruption — simulates a silently wrong optimum
  /// that only an independent certificate can catch.
  std::atomic<long> corrupt_solutions{0};
  double solution_corruption = 0.0;
  /// While > 0, each refactorization first burns stall_ms of wall clock,
  /// consuming one unit per stall — the slowdown injector that lets
  /// deadline/budget paths (tcr::guard) be exercised on small models. The
  /// first stall_after refactorizations pass untouched (also a consumed
  /// budget), so a run can complete its early work at full speed and then
  /// crawl into its deadline with certified neighbors already banked.
  std::atomic<long> stall_refactors{0};
  double stall_ms = 0.0;
  std::atomic<long> stall_after{0};

  // Injection counts observed (for test assertions).
  std::atomic<long> refactor_failures_injected{0};
  std::atomic<long> eta_drifts_injected{0};
  std::atomic<long> corruptions_injected{0};
  std::atomic<long> stalls_injected{0};

  /// Consume one unit of an armed budget; returns true when the fault fires.
  static bool consume(std::atomic<long>& budget) {
    long v = budget.load(std::memory_order_relaxed);
    while (v > 0) {
      if (budget.compare_exchange_weak(v, v - 1, std::memory_order_relaxed)) return true;
    }
    return false;
  }
};

/// Currently installed hooks, or nullptr (the default). The solver checks
/// this at refactorization, eta creation and solution extraction.
SimplexHooks* simplex_hooks() noexcept;

/// Install (or, with nullptr, clear) the process-wide hooks. Tests should
/// prefer ScopedSimplexFaults.
void install_simplex_hooks(SimplexHooks* hooks) noexcept;

/// Install stall hooks from the environment, for subprocess e2e tests that
/// cannot reach into the binary (same idiom as TCR_PERF_INJECT_SCALE):
/// when TCR_FAULT_STALL_MS is set and positive, installs a process-lifetime
/// SimplexHooks with that stall_ms, stall_refactors from
/// TCR_FAULT_STALL_REFACTORS (default: effectively unlimited) and
/// stall_after from TCR_FAULT_STALL_AFTER (default 0). Returns true when
/// hooks were installed. Benches call this once at startup; production
/// binaries never do.
bool install_env_simplex_faults();

/// RAII installer: owns a SimplexHooks, installs it on construction and
/// clears the registration on destruction.
class ScopedSimplexFaults {
 public:
  ScopedSimplexFaults() { install_simplex_hooks(&hooks_); }
  ~ScopedSimplexFaults() { install_simplex_hooks(nullptr); }
  ScopedSimplexFaults(const ScopedSimplexFaults&) = delete;
  ScopedSimplexFaults& operator=(const ScopedSimplexFaults&) = delete;

  SimplexHooks& hooks() { return hooks_; }

 private:
  SimplexHooks hooks_;
};

// ---- simulator fault plans ---------------------------------------------

/// Channel `channel` transmits no flits during cycles [from_cycle, until_cycle).
struct LinkFault {
  int channel = 0;
  long from_cycle = 0;
  long until_cycle = 0;
};

/// Downstream buffers of `channel` report no credits (full) during
/// [from_cycle, until_cycle); vc < 0 stalls every virtual channel.
struct CreditStall {
  int channel = 0;
  int vc = -1;
  long from_cycle = 0;
  long until_cycle = 0;
};

struct SimFaultPlan {
  std::vector<LinkFault> links;
  std::vector<CreditStall> stalls;

  bool empty() const { return links.empty() && stalls.empty(); }

  bool link_down(int channel, long cycle) const {
    for (const LinkFault& f : links) {
      if (f.channel == channel && cycle >= f.from_cycle && cycle < f.until_cycle) return true;
    }
    return false;
  }

  bool credit_stalled(int channel, int vc, long cycle) const {
    for (const CreditStall& f : stalls) {
      if (f.channel == channel && (f.vc < 0 || f.vc == vc) && cycle >= f.from_cycle &&
          cycle < f.until_cycle)
        return true;
    }
    return false;
  }
};

/// Deterministic plan: `link_faults` links down and `credit_stalls` VC
/// stalls, each starting uniformly in [start, start + spread) and lasting
/// `duration` cycles, drawn from the seed.
SimFaultPlan random_sim_faults(int num_channels, int vcs, std::uint64_t seed, int link_faults,
                               int credit_stalls, long start, long spread, long duration);

}  // namespace tcr::fault
