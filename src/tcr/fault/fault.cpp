#include "tcr/fault/fault.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>

#include "tcr/util/check.hpp"
#include "tcr/util/rng.hpp"

namespace tcr::fault {

namespace {

// Step a finite value n ULPs (n may be negative). Zero stays zero so the
// sparsity pattern of the model is preserved.
double step_ulps(double v, long n) {
  if (v == 0.0 || !std::isfinite(v)) return v;
  const double dir = n >= 0 ? lp::kInf : -lp::kInf;
  for (long k = std::labs(n); k > 0; --k) v = std::nextafter(v, dir);
  return v;
}

std::atomic<SimplexHooks*> g_simplex_hooks{nullptr};

}  // namespace

lp::Model perturb_model_ulp(const lp::Model& model, std::uint64_t seed, int max_ulps) {
  TCR_REQUIRE(max_ulps >= 0, "max_ulps must be non-negative");
  Rng rng(seed);
  auto jitter = [&](double v) {
    if (max_ulps == 0) return v;
    const long n =
        static_cast<long>(rng.below(static_cast<std::uint64_t>(2 * max_ulps + 1))) - max_ulps;
    return step_ulps(v, n);
  };

  lp::Model out;
  out.set_sense(model.sense());
  for (int j = 0; j < model.num_cols(); ++j) {
    // Bounds are copied exactly: perturbing them could invert lo <= up or
    // unfix a fixed column, which changes the model structurally.
    out.add_col(model.lower(j), model.upper(j), jitter(model.cost(j)));
  }
  for (int i = 0; i < model.num_rows(); ++i) {
    out.add_row(model.row_type(i), jitter(model.rhs(i)));
  }
  for (const auto& t : model.triplets()) {
    out.add_term(t.row, t.col, jitter(t.value));
  }
  return out;
}

SimplexHooks* simplex_hooks() noexcept {
  return g_simplex_hooks.load(std::memory_order_acquire);
}

bool install_env_simplex_faults() {
  const char* ms_env = std::getenv("TCR_FAULT_STALL_MS");
  if (ms_env == nullptr) return false;
  const double ms = std::strtod(ms_env, nullptr);
  if (!(ms > 0.0)) return false;
  // Process-lifetime hooks: the env contract is "this whole run is slow",
  // so the object is intentionally never uninstalled.
  static SimplexHooks hooks;
  hooks.stall_ms = ms;
  long budget = std::numeric_limits<long>::max();
  if (const char* n = std::getenv("TCR_FAULT_STALL_REFACTORS")) {
    budget = std::strtol(n, nullptr, 10);
  }
  hooks.stall_refactors.store(budget, std::memory_order_relaxed);
  long after = 0;
  if (const char* n = std::getenv("TCR_FAULT_STALL_AFTER")) {
    after = std::strtol(n, nullptr, 10);
  }
  hooks.stall_after.store(after, std::memory_order_relaxed);
  install_simplex_hooks(&hooks);
  return true;
}

void install_simplex_hooks(SimplexHooks* hooks) noexcept {
  g_simplex_hooks.store(hooks, std::memory_order_release);
}

SimFaultPlan random_sim_faults(int num_channels, int vcs, std::uint64_t seed, int link_faults,
                               int credit_stalls, long start, long spread, long duration) {
  TCR_REQUIRE(num_channels > 0, "need at least one channel");
  TCR_REQUIRE(spread > 0 && duration > 0, "fault windows must be non-empty");
  Rng rng(seed);
  SimFaultPlan plan;
  plan.links.reserve(static_cast<std::size_t>(link_faults));
  for (int k = 0; k < link_faults; ++k) {
    LinkFault f;
    f.channel = static_cast<int>(rng.below(static_cast<std::uint64_t>(num_channels)));
    f.from_cycle = start + static_cast<long>(rng.below(static_cast<std::uint64_t>(spread)));
    f.until_cycle = f.from_cycle + duration;
    plan.links.push_back(f);
  }
  plan.stalls.reserve(static_cast<std::size_t>(credit_stalls));
  for (int k = 0; k < credit_stalls; ++k) {
    CreditStall f;
    f.channel = static_cast<int>(rng.below(static_cast<std::uint64_t>(num_channels)));
    f.vc = vcs > 0 ? static_cast<int>(rng.below(static_cast<std::uint64_t>(vcs))) : -1;
    f.from_cycle = start + static_cast<long>(rng.below(static_cast<std::uint64_t>(spread)));
    f.until_cycle = f.from_cycle + duration;
    plan.stalls.push_back(f);
  }
  return plan;
}

}  // namespace tcr::fault
