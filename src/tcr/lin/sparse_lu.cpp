#include "tcr/lin/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tcr/util/check.hpp"

namespace tcr {

namespace {
// Number of candidate columns examined per pivot step. Small values keep the
// search cheap; Markowitz quality degrades only marginally.
constexpr int kMaxCandidates = 6;
}  // namespace

bool SparseLU::factor(const SparseMatrix& a, const std::vector<int>& basis) {
  m_ = static_cast<int>(basis.size());
  TCR_REQUIRE(a.rows() == m_, "basis must be square: one column per row");
  steps_.clear();
  steps_.reserve(m_);
  deficient_.clear();

  // Live rows of the active submatrix. Entry columns are basis *positions*.
  std::vector<std::vector<Entry>> rows(m_);
  // Rows that may contain a given column (lazy; may hold stale row ids).
  std::vector<std::vector<int>> colrows(m_);
  std::vector<int> ccount(m_, 0), rcount(m_, 0);
  std::vector<char> row_done(m_, 0), col_done(m_, 0);

  std::size_t nnz_guess = 0;
  for (int j = 0; j < m_; ++j) nnz_guess += a.col_end(basis[j]) - a.col_begin(basis[j]);
  for (int i = 0; i < m_; ++i) rows[i].reserve(4 + nnz_guess / static_cast<std::size_t>(m_));

  for (int j = 0; j < m_; ++j) {
    for (std::size_t k = a.col_begin(basis[j]); k < a.col_end(basis[j]); ++k) {
      const int r = a.row_index(k);
      rows[r].push_back({j, a.value(k)});
      colrows[j].push_back(r);
      ++ccount[j];
      ++rcount[r];
    }
  }

  // Lazy bucket queue over column counts.
  std::vector<std::vector<int>> buckets(m_ + 1);
  std::vector<char> queued(m_, 0);
  auto enqueue = [&](int j) {
    if (col_done[j] || queued[j]) return;
    const int b = std::clamp(ccount[j], 0, m_);
    buckets[b].push_back(j);
    queued[j] = 1;
  };
  for (int j = 0; j < m_; ++j) enqueue(j);

  // Dense scratch for the scattered pivot row.
  std::vector<double> work(m_, 0.0);
  std::vector<int> stamp(m_, -1), consumed(m_, -1);
  int scan_id = 0;

  // Live entries of one column, gathered on demand. A row can appear in
  // colrows[j] more than once (an entry cancelled and later re-created by
  // fill-in re-appends it), so deduplicate with a stamp.
  std::vector<std::pair<int, double>> col_entries;  // (row, value)
  std::vector<int> gather_stamp(m_, -1);
  int gather_id = 0;

  auto gather_column = [&](int j) {
    col_entries.clear();
    ++gather_id;
    auto& cr = colrows[j];
    std::size_t w = 0;
    for (std::size_t r = 0; r < cr.size(); ++r) {
      const int i = cr[r];
      if (row_done[i] || gather_stamp[i] == gather_id) continue;
      gather_stamp[i] = gather_id;
      double v = 0.0;
      bool found = false;
      for (const Entry& e : rows[i]) {
        if (e.col == j) {
          v = e.val;
          found = true;
          break;
        }
      }
      if (!found) continue;  // stale
      cr[w++] = i;
      col_entries.emplace_back(i, v);
    }
    cr.resize(w);
    ccount[j] = static_cast<int>(col_entries.size());
  };

  for (int t = 0; t < m_; ++t) {
    // ---- Pivot selection (partial Markowitz with threshold pivoting) ----
    int best_row = -1, best_col = -1;
    double best_val = 0.0;
    long long best_cost = std::numeric_limits<long long>::max();
    int candidates = 0;
    std::vector<int> examined;  // requeued after the search to avoid re-popping

    for (int b = 0; b <= m_ && candidates < kMaxCandidates; ++b) {
      while (!buckets[b].empty() && candidates < kMaxCandidates) {
        const int j = buckets[b].back();
        buckets[b].pop_back();
        queued[j] = 0;
        if (col_done[j]) continue;
        gather_column(j);
        if (ccount[j] == 0) {
          continue;  // structurally empty now; fill-in re-enqueues if it returns
        }
        if (ccount[j] > b) {
          enqueue(j);  // stale count grew: requeue in the right (later) bucket
          continue;
        }
        ++candidates;
        examined.push_back(j);
        double cmax = 0.0;
        for (const auto& [i, v] : col_entries) cmax = std::max(cmax, std::abs(v));
        for (const auto& [i, v] : col_entries) {
          if (std::abs(v) < tau_ * cmax || std::abs(v) < drop_tol_) continue;
          const long long cost =
              static_cast<long long>(rcount[i] - 1) * static_cast<long long>(ccount[j] - 1);
          if (cost < best_cost || (cost == best_cost && std::abs(v) > std::abs(best_val))) {
            best_cost = cost;
            best_row = i;
            best_col = j;
            best_val = v;
          }
        }
        if (best_cost == 0) break;
      }
      if (best_cost == 0) break;
    }
    for (int j : examined) enqueue(j);

    if (best_col < 0) {
      // No pivotable entry left: matrix is singular. Record which positions
      // never received a pivot.
      for (int j = 0; j < m_; ++j)
        if (!col_done[j]) deficient_.push_back(j);
      return false;
    }

    const int pi = best_row, pj = best_col;
    const double pval = best_val;

    // ---- Build the U row and scatter the pivot row ----
    Step step;
    step.pivot_row = pi;
    step.pivot_col = pj;
    step.pivot_val = pval;
    const int pivot_scan = ++scan_id;
    for (const Entry& e : rows[pi]) {
      if (e.col == pj) continue;
      step.u_row.push_back(e);
      work[e.col] = e.val;
      stamp[e.col] = pivot_scan;
    }

    // ---- Eliminate the pivot column from all other live rows ----
    gather_column(pj);
    std::vector<Entry> newrow;
    for (const auto& [i, v] : col_entries) {
      if (i == pi) continue;
      const double mult = v / pval;
      step.l_ops.emplace_back(i, mult);

      newrow.clear();
      newrow.reserve(rows[i].size() + step.u_row.size());
      const int row_scan = ++scan_id;
      for (const Entry& e : rows[i]) {
        if (e.col == pj) continue;  // eliminated by the pivot
        double nv = e.val;
        if (stamp[e.col] == pivot_scan) {
          // The pivot row also carries this column: combine.
          nv -= mult * work[e.col];
          consumed[e.col] = row_scan;
        }
        if (std::abs(nv) > drop_tol_) {
          newrow.push_back({e.col, nv});
        } else {
          --ccount[e.col];  // numerical cancellation removed a live entry
        }
      }
      // Fill-in from unconsumed pivot-row columns.
      for (const Entry& u : step.u_row) {
        if (consumed[u.col] == row_scan) continue;
        const double nv = -mult * u.val;
        if (std::abs(nv) > drop_tol_) {
          newrow.push_back({u.col, nv});
          ++ccount[u.col];
          colrows[u.col].push_back(i);
          enqueue(u.col);
        }
      }
      rows[i].assign(newrow.begin(), newrow.end());
      rcount[i] = static_cast<int>(rows[i].size());
    }

    // ---- Retire the pivot row/column ----
    row_done[pi] = 1;
    col_done[pj] = 1;
    for (const Entry& e : step.u_row) {
      --ccount[e.col];
      enqueue(e.col);
    }
    rows[pi].clear();
    rows[pi].shrink_to_fit();
    colrows[pj].clear();
    colrows[pj].shrink_to_fit();
    // Clear the scatter stamps for safety (stamps are scan-id based already).
    for (const Entry& e : step.u_row) {
      work[e.col] = 0.0;
      stamp[e.col] = -1;
    }

    steps_.push_back(std::move(step));
  }
  return true;
}

std::size_t SparseLU::factor_nnz() const {
  std::size_t n = 0;
  for (const auto& s : steps_) n += 1 + s.l_ops.size() + s.u_row.size();
  return n;
}

void SparseLU::solve(const std::vector<double>& b, std::vector<double>& x) const {
  TCR_REQUIRE(static_cast<int>(b.size()) == m_, "rhs size mismatch");
  std::vector<double> v = b;
  for (const Step& s : steps_) {
    const double pivot = v[s.pivot_row];
    if (pivot != 0.0) {
      for (const auto& [r, mult] : s.l_ops) v[r] -= mult * pivot;
    }
  }
  x.assign(m_, 0.0);
  for (auto it = steps_.rbegin(); it != steps_.rend(); ++it) {
    double acc = v[it->pivot_row];
    for (const Entry& e : it->u_row) acc -= e.val * x[e.col];
    x[it->pivot_col] = acc / it->pivot_val;
  }
}

void SparseLU::solve_transpose(const std::vector<double>& c, std::vector<double>& y) const {
  TCR_REQUIRE(static_cast<int>(c.size()) == m_, "rhs size mismatch");
  std::vector<double> acc = c;  // position space
  y.assign(m_, 0.0);            // row space
  for (const Step& s : steps_) {
    const double z = acc[s.pivot_col] / s.pivot_val;
    y[s.pivot_row] = z;
    if (z != 0.0) {
      for (const Entry& e : s.u_row) acc[e.col] -= e.val * z;
    }
  }
  for (auto it = steps_.rbegin(); it != steps_.rend(); ++it) {
    double& yp = y[it->pivot_row];
    for (const auto& [r, mult] : it->l_ops) yp -= mult * y[r];
  }
}

}  // namespace tcr
