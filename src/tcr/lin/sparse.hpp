// Compressed sparse column (CSC) matrix with a triplet-based builder.
//
// This is the storage format consumed by the revised simplex: constraint
// matrices are built once (duplicate triplets are summed) and then accessed
// column-by-column during pricing / FTRAN.
#pragma once

#include <cstddef>
#include <vector>

namespace tcr {

struct Triplet {
  int row;
  int col;
  double value;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Build from triplets; duplicate (row, col) entries are summed, and
  /// entries with magnitude below `drop_tol` after summing are dropped.
  SparseMatrix(int rows, int cols, const std::vector<Triplet>& triplets,
               double drop_tol = 0.0);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// Column j occupies [col_begin(j), col_end(j)) in row_index()/values().
  std::size_t col_begin(int j) const { return col_ptr_[j]; }
  std::size_t col_end(int j) const { return col_ptr_[j + 1]; }
  int row_index(std::size_t k) const { return row_idx_[k]; }
  double value(std::size_t k) const { return values_[k]; }

  /// y += alpha * A(:, j)
  void add_column_to(int j, double alpha, std::vector<double>& y) const;

  /// Dot product of column j with a dense vector.
  double column_dot(int j, const std::vector<double>& x) const;

  /// y = A x (dense result).
  std::vector<double> multiply(const std::vector<double>& x) const;

  /// y = A' x (dense result).
  std::vector<double> multiply_transpose(const std::vector<double>& x) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<std::size_t> col_ptr_;
  std::vector<int> row_idx_;
  std::vector<double> values_;
};

}  // namespace tcr
