#include "tcr/lin/dense_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "tcr/util/check.hpp"

namespace tcr {

DenseMatrix::DenseMatrix(int rows, int cols, double f)
    : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * cols, f) {
  TCR_REQUIRE(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
}

void DenseMatrix::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

std::vector<double> DenseMatrix::multiply(const std::vector<double>& x) const {
  TCR_REQUIRE(static_cast<int>(x.size()) == cols_, "dimension mismatch in multiply");
  std::vector<double> y(static_cast<std::size_t>(rows_), 0.0);
  for (int i = 0; i < rows_; ++i) {
    const double* r = row(i);
    double acc = 0.0;
    for (int j = 0; j < cols_; ++j) acc += r[j] * x[j];
    y[i] = acc;
  }
  return y;
}

std::vector<double> DenseMatrix::multiply_transpose(const std::vector<double>& x) const {
  TCR_REQUIRE(static_cast<int>(x.size()) == rows_, "dimension mismatch in multiply_transpose");
  std::vector<double> y(static_cast<std::size_t>(cols_), 0.0);
  for (int i = 0; i < rows_; ++i) {
    const double* r = row(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (int j = 0; j < cols_; ++j) y[j] += r[j] * xi;
  }
  return y;
}

double DenseMatrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double DenseMatrix::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

std::vector<double> DenseMatrix::row_sums() const {
  std::vector<double> s(static_cast<std::size_t>(rows_), 0.0);
  for (int i = 0; i < rows_; ++i) {
    const double* r = row(i);
    for (int j = 0; j < cols_; ++j) s[i] += r[j];
  }
  return s;
}

std::vector<double> DenseMatrix::col_sums() const {
  std::vector<double> s(static_cast<std::size_t>(cols_), 0.0);
  for (int i = 0; i < rows_; ++i) {
    const double* r = row(i);
    for (int j = 0; j < cols_; ++j) s[j] += r[j];
  }
  return s;
}

}  // namespace tcr
