// Sparse LU factorization for revised-simplex basis matrices.
//
// Right-looking Gaussian elimination with (partial) Markowitz pivot selection
// and threshold pivoting for stability. The factorization is stored as a
// sequence of elimination steps: for step t, a pivot (row, column, value),
// the eliminated multipliers (the L column) and the surviving pivot row (the
// U row). Solves with B and B' are then simple forward/backward passes.
//
// Basis columns are taken from a shared CSC constraint matrix, which is how
// the simplex refactorizes without copying the problem data.
#pragma once

#include <vector>

#include "tcr/lin/sparse.hpp"

namespace tcr {

class SparseLU {
 public:
  /// Factor the square matrix whose j-th column is A(:, basis[j]).
  /// Returns false if the matrix is singular to working precision; in that
  /// case `deficient_positions()` lists basis positions that could not be
  /// pivoted (useful for basis repair).
  bool factor(const SparseMatrix& a, const std::vector<int>& basis);

  int m() const { return m_; }
  std::size_t factor_nnz() const;

  /// Solve B x = b. `b` is indexed by constraint row, the result by basis
  /// position (the coefficient of basis column j).
  void solve(const std::vector<double>& b, std::vector<double>& x) const;

  /// Solve B' y = c. `c` is indexed by basis position, the result by row.
  void solve_transpose(const std::vector<double>& c, std::vector<double>& y) const;

  const std::vector<int>& deficient_positions() const { return deficient_; }

  /// Stability threshold: pivots must satisfy |a| >= tau * max|column|.
  void set_threshold(double tau) { tau_ = tau; }

 private:
  struct Entry {
    int col;  // basis position
    double val;
  };
  struct Step {
    int pivot_row;
    int pivot_col;  // basis position
    double pivot_val;
    std::vector<std::pair<int, double>> l_ops;  // (row, multiplier)
    std::vector<Entry> u_row;                   // pivot row minus the pivot entry
  };

  int m_ = 0;
  double tau_ = 0.01;
  double drop_tol_ = 1e-12;
  std::vector<Step> steps_;
  std::vector<int> deficient_;
};

}  // namespace tcr
