// Dense LU factorization with partial pivoting.
//
// Reference/oracle implementation: unit tests validate the sparse LU and the
// revised simplex against it on randomly generated systems.
#pragma once

#include <vector>

#include "tcr/lin/dense_matrix.hpp"

namespace tcr {

class DenseLU {
 public:
  /// Factor A (square). Returns false if A is singular to working precision.
  bool factor(const DenseMatrix& a);

  /// Solve A x = b. Requires a successful factor().
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solve A' y = c.
  std::vector<double> solve_transpose(const std::vector<double>& c) const;

  int n() const { return n_; }

 private:
  int n_ = 0;
  DenseMatrix lu_;
  std::vector<int> perm_;  // row permutation: factored row i came from perm_[i]
};

}  // namespace tcr
