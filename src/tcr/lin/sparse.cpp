#include "tcr/lin/sparse.hpp"

#include <algorithm>
#include <cmath>

#include "tcr/util/check.hpp"

namespace tcr {

SparseMatrix::SparseMatrix(int rows, int cols, const std::vector<Triplet>& triplets,
                           double drop_tol)
    : rows_(rows), cols_(cols) {
  TCR_REQUIRE(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
  // Count entries per column, bucket, then sort rows and merge duplicates.
  std::vector<std::size_t> count(static_cast<std::size_t>(cols) + 1, 0);
  for (const auto& t : triplets) {
    TCR_REQUIRE(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols,
                "triplet index out of range");
    ++count[t.col + 1];
  }
  std::vector<std::size_t> pos(static_cast<std::size_t>(cols) + 1, 0);
  for (int j = 0; j < cols; ++j) pos[j + 1] = pos[j] + count[j + 1];

  std::vector<int> rix(triplets.size());
  std::vector<double> val(triplets.size());
  {
    std::vector<std::size_t> cursor(pos.begin(), pos.end() - 1);
    for (const auto& t : triplets) {
      const std::size_t k = cursor[t.col]++;
      rix[k] = t.row;
      val[k] = t.value;
    }
  }

  col_ptr_.assign(static_cast<std::size_t>(cols) + 1, 0);
  row_idx_.reserve(triplets.size());
  values_.reserve(triplets.size());
  std::vector<std::size_t> order;
  for (int j = 0; j < cols; ++j) {
    const std::size_t lo = pos[j], hi = (j + 1 <= cols) ? pos[j + 1] : triplets.size();
    order.clear();
    for (std::size_t k = lo; k < hi; ++k) order.push_back(k);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return rix[a] < rix[b]; });
    for (std::size_t idx = 0; idx < order.size();) {
      const int r = rix[order[idx]];
      double sum = 0.0;
      while (idx < order.size() && rix[order[idx]] == r) sum += val[order[idx++]];
      if (std::abs(sum) > drop_tol) {
        row_idx_.push_back(r);
        values_.push_back(sum);
      }
    }
    col_ptr_[j + 1] = row_idx_.size();
  }
}

void SparseMatrix::add_column_to(int j, double alpha, std::vector<double>& y) const {
  for (std::size_t k = col_begin(j); k < col_end(j); ++k) y[row_idx_[k]] += alpha * values_[k];
}

double SparseMatrix::column_dot(int j, const std::vector<double>& x) const {
  double acc = 0.0;
  for (std::size_t k = col_begin(j); k < col_end(j); ++k) acc += values_[k] * x[row_idx_[k]];
  return acc;
}

std::vector<double> SparseMatrix::multiply(const std::vector<double>& x) const {
  TCR_REQUIRE(static_cast<int>(x.size()) == cols_, "dimension mismatch");
  std::vector<double> y(static_cast<std::size_t>(rows_), 0.0);
  for (int j = 0; j < cols_; ++j) {
    if (x[j] != 0.0) add_column_to(j, x[j], y);
  }
  return y;
}

std::vector<double> SparseMatrix::multiply_transpose(const std::vector<double>& x) const {
  TCR_REQUIRE(static_cast<int>(x.size()) == rows_, "dimension mismatch");
  std::vector<double> y(static_cast<std::size_t>(cols_), 0.0);
  for (int j = 0; j < cols_; ++j) y[j] = column_dot(j, x);
  return y;
}

}  // namespace tcr
