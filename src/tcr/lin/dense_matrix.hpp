// Small dense row-major matrix used by metrics (channel-load tables, traffic
// matrices) and by the dense reference LU / simplex implementations.
#pragma once

#include <cstddef>
#include <vector>

namespace tcr {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(int rows, int cols, double fill = 0.0);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int i, int j) { return data_[static_cast<std::size_t>(i) * cols_ + j]; }
  double operator()(int i, int j) const { return data_[static_cast<std::size_t>(i) * cols_ + j]; }

  double* row(int i) { return data_.data() + static_cast<std::size_t>(i) * cols_; }
  const double* row(int i) const { return data_.data() + static_cast<std::size_t>(i) * cols_; }

  void fill(double v);

  /// y = A x
  std::vector<double> multiply(const std::vector<double>& x) const;
  /// y = A' x
  std::vector<double> multiply_transpose(const std::vector<double>& x) const;

  double max_abs() const;
  double sum() const;

  /// Row i sums / column j sums (used for doubly-stochastic checks).
  std::vector<double> row_sums() const;
  std::vector<double> col_sums() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

}  // namespace tcr
