#include "tcr/lin/dense_lu.hpp"

#include <cmath>

#include "tcr/util/check.hpp"

namespace tcr {

bool DenseLU::factor(const DenseMatrix& a) {
  TCR_REQUIRE(a.rows() == a.cols(), "DenseLU requires a square matrix");
  n_ = a.rows();
  lu_ = a;
  perm_.resize(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) perm_[i] = i;

  for (int k = 0; k < n_; ++k) {
    // Partial pivoting: pick the largest magnitude entry in column k.
    int piv = k;
    double best = std::abs(lu_(k, k));
    for (int i = k + 1; i < n_; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best < 1e-12) return false;
    if (piv != k) {
      for (int j = 0; j < n_; ++j) std::swap(lu_(k, j), lu_(piv, j));
      std::swap(perm_[k], perm_[piv]);
    }
    const double d = lu_(k, k);
    for (int i = k + 1; i < n_; ++i) {
      const double m = lu_(i, k) / d;
      lu_(i, k) = m;
      if (m == 0.0) continue;
      for (int j = k + 1; j < n_; ++j) lu_(i, j) -= m * lu_(k, j);
    }
  }
  return true;
}

std::vector<double> DenseLU::solve(const std::vector<double>& b) const {
  TCR_REQUIRE(static_cast<int>(b.size()) == n_, "rhs size mismatch");
  std::vector<double> x(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) x[i] = b[perm_[i]];
  // Forward: L y = P b (unit lower triangle).
  for (int i = 1; i < n_; ++i) {
    double acc = x[i];
    for (int j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Backward: U x = y.
  for (int i = n_ - 1; i >= 0; --i) {
    double acc = x[i];
    for (int j = i + 1; j < n_; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc / lu_(i, i);
  }
  return x;
}

std::vector<double> DenseLU::solve_transpose(const std::vector<double>& c) const {
  TCR_REQUIRE(static_cast<int>(c.size()) == n_, "rhs size mismatch");
  // A' = (P' L U)' = U' L' P, so solve U' z = c, then L' w = z, then y = P' w.
  std::vector<double> z = c;
  for (int i = 0; i < n_; ++i) {
    double acc = z[i];
    for (int j = 0; j < i; ++j) acc -= lu_(j, i) * z[j];
    z[i] = acc / lu_(i, i);
  }
  for (int i = n_ - 1; i >= 0; --i) {
    double acc = z[i];
    for (int j = i + 1; j < n_; ++j) acc -= lu_(j, i) * z[j];
    z[i] = acc;
  }
  std::vector<double> y(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) y[perm_[i]] = z[i];
  return y;
}

}  // namespace tcr
