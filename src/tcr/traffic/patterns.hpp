// Canonical traffic patterns for k-ary 2-cubes: uniform plus the adversarial
// permutations customary in the oblivious-routing literature (used as named
// workloads in examples, tests and the simulator).
#pragma once

#include <string>
#include <vector>

#include "tcr/graph/torus.hpp"
#include "tcr/traffic/traffic.hpp"

namespace tcr {

/// Uniform traffic U: every source sends to every destination with
/// probability 1/N (paper §3.1, including d == s).
TrafficMatrix uniform_traffic(int num_nodes);

/// Transpose: (x, y) -> (y, x).
std::vector<int> transpose_permutation(const Torus& t);

/// Tornado: (x, y) -> (x + ceil(k/2) - 1, y), the classic torus adversary.
std::vector<int> tornado_permutation(const Torus& t);

/// Bit complement on the node index interpreted per dimension:
/// (x, y) -> (k-1-x, k-1-y).
std::vector<int> complement_permutation(const Torus& t);

/// Neighbor shift: (x, y) -> (x + 1, y).
std::vector<int> shift_permutation(const Torus& t);

/// Bit reverse of the node index within ceil(log2(N)) bits, folded back into
/// range by swapping only indices whose image is also in range (stays a
/// permutation for any N).
std::vector<int> bit_reverse_permutation(int num_nodes);

/// Quadrant rotation: (x, y) -> (y, k - 1 - x) (90-degree rotation).
std::vector<int> rotation_permutation(const Torus& t);

/// Look up a pattern by name ("uniform" handled by callers; this covers the
/// permutations: "transpose", "tornado", "complement", "shift",
/// "bitrev", "rotate").
std::vector<int> named_permutation(const Torus& t, const std::string& name);

}  // namespace tcr
