#include "tcr/traffic/traffic.hpp"

#include <cmath>

#include "tcr/util/check.hpp"

namespace tcr {

double doubly_stochastic_error(const TrafficMatrix& t) {
  TCR_REQUIRE(t.rows() == t.cols(), "traffic matrix must be square");
  double err = 0.0;
  for (double s : t.row_sums()) err = std::max(err, std::abs(s - 1.0));
  for (double s : t.col_sums()) err = std::max(err, std::abs(s - 1.0));
  for (int i = 0; i < t.rows(); ++i)
    for (int j = 0; j < t.cols(); ++j) err = std::max(err, -t(i, j));
  return err;
}

bool is_doubly_stochastic(const TrafficMatrix& t, double tol) {
  return doubly_stochastic_error(t) <= tol;
}

TrafficMatrix permutation_matrix(const std::vector<int>& perm) {
  const int n = static_cast<int>(perm.size());
  TrafficMatrix t(n, n);
  std::vector<char> seen(n, 0);
  for (int s = 0; s < n; ++s) {
    TCR_REQUIRE(perm[s] >= 0 && perm[s] < n && !seen[perm[s]], "not a permutation");
    seen[perm[s]] = 1;
    t(s, perm[s]) = 1.0;
  }
  return t;
}

bool is_permutation(const TrafficMatrix& t, double tol) {
  if (t.rows() != t.cols()) return false;
  if (!is_doubly_stochastic(t, tol)) return false;
  for (int i = 0; i < t.rows(); ++i)
    for (int j = 0; j < t.cols(); ++j) {
      const double v = t(i, j);
      if (v > tol && std::abs(v - 1.0) > tol) return false;
    }
  return true;
}

}  // namespace tcr
