// Random sampling of the Birkhoff polytope (doubly-stochastic matrices).
//
// The paper's average-case cost (eq. 9) averages the maximum channel load
// over a random finite subset X of traffic matrices. The sampling method is
// unspecified there; we provide two (documented in DESIGN.md):
//   * birkhoff_sample — convex combination of J uniformly-random permutation
//     matrices with Dirichlet(1) weights (J = 1 gives a permutation; larger
//     J moves toward the polytope's interior). Design LPs use J = 1 so each
//     generated constraint row has only N nonzeros.
//   * sinkhorn_sample — i.i.d. Exp(1) entries normalized to doubly
//     stochastic by Sinkhorn-Knopp iteration (dense interior samples).
#pragma once

#include <string>
#include <vector>

#include "tcr/traffic/traffic.hpp"
#include "tcr/util/rng.hpp"

namespace tcr {

TrafficMatrix birkhoff_sample(Rng& rng, int n, int num_permutations);

/// Iterates row/column normalization until the worst row/column-sum error
/// drops below `tol` (or `max_iterations` passes, whichever first), then
/// exactly normalizes each row so row sums are 1 to rounding and column sums
/// are off by at most the achieved tolerance.
TrafficMatrix sinkhorn_sample(Rng& rng, int n, int max_iterations = 500, double tol = 1e-11);

/// A batch of samples; kind = "perm" (J=1), "birkhoff4" (J=4) or "sinkhorn".
std::vector<TrafficMatrix> sample_traffic_set(Rng& rng, int n, int count,
                                              const std::string& kind = "sinkhorn");

}  // namespace tcr
