#include "tcr/traffic/patterns.hpp"

#include <algorithm>

#include "tcr/util/check.hpp"

namespace tcr {

TrafficMatrix uniform_traffic(int num_nodes) {
  TCR_REQUIRE(num_nodes > 0, "need at least one node");
  TrafficMatrix t(num_nodes, num_nodes, 1.0 / num_nodes);
  return t;
}

std::vector<int> transpose_permutation(const Torus& t) {
  std::vector<int> p(static_cast<std::size_t>(t.num_nodes()));
  for (int n = 0; n < t.num_nodes(); ++n) p[n] = t.node(t.y_of(n), t.x_of(n));
  return p;
}

std::vector<int> tornado_permutation(const Torus& t) {
  const int half = (t.k() + 1) / 2 - 1;  // ceil(k/2) - 1 hops in +X
  std::vector<int> p(static_cast<std::size_t>(t.num_nodes()));
  for (int n = 0; n < t.num_nodes(); ++n) p[n] = t.node(t.x_of(n) + half, t.y_of(n));
  return p;
}

std::vector<int> complement_permutation(const Torus& t) {
  std::vector<int> p(static_cast<std::size_t>(t.num_nodes()));
  for (int n = 0; n < t.num_nodes(); ++n)
    p[n] = t.node(t.k() - 1 - t.x_of(n), t.k() - 1 - t.y_of(n));
  return p;
}

std::vector<int> shift_permutation(const Torus& t) {
  std::vector<int> p(static_cast<std::size_t>(t.num_nodes()));
  for (int n = 0; n < t.num_nodes(); ++n) p[n] = t.node(t.x_of(n) + 1, t.y_of(n));
  return p;
}

std::vector<int> bit_reverse_permutation(int num_nodes) {
  TCR_REQUIRE(num_nodes > 0, "need at least one node");
  int bits = 0;
  while ((1 << bits) < num_nodes) ++bits;
  auto reverse = [bits](int v) {
    int r = 0;
    for (int b = 0; b < bits; ++b) {
      if (v & (1 << b)) r |= 1 << (bits - 1 - b);
    }
    return r;
  };
  std::vector<int> p(static_cast<std::size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) p[n] = n;
  // Swap-based fold keeps the map a permutation even when N is not a power
  // of two: apply the involution only where both endpoints are in range.
  for (int n = 0; n < num_nodes; ++n) {
    const int r = reverse(n);
    if (r < num_nodes && r > n) std::swap(p[n], p[r]);
  }
  return p;
}

std::vector<int> rotation_permutation(const Torus& t) {
  std::vector<int> p(static_cast<std::size_t>(t.num_nodes()));
  for (int n = 0; n < t.num_nodes(); ++n)
    p[n] = t.node(t.y_of(n), t.k() - 1 - t.x_of(n));
  return p;
}

std::vector<int> named_permutation(const Torus& t, const std::string& name) {
  if (name == "transpose") return transpose_permutation(t);
  if (name == "tornado") return tornado_permutation(t);
  if (name == "complement") return complement_permutation(t);
  if (name == "shift") return shift_permutation(t);
  if (name == "bitrev") return bit_reverse_permutation(t.num_nodes());
  if (name == "rotate") return rotation_permutation(t);
  TCR_REQUIRE(false, "unknown pattern name: " + name);
  return {};
}

}  // namespace tcr
