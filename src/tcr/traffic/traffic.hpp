// Traffic matrices (paper §2.3): lambda[s][d] is the fraction of source s's
// injection bandwidth destined to d. Admissible matrices are doubly
// stochastic (rows and columns sum to one).
#pragma once

#include <vector>

#include "tcr/lin/dense_matrix.hpp"

namespace tcr {

using TrafficMatrix = DenseMatrix;

/// Max deviation of any row/column sum from 1 (0 for exactly admissible).
double doubly_stochastic_error(const TrafficMatrix& t);

bool is_doubly_stochastic(const TrafficMatrix& t, double tol = 1e-9);

/// Build a permutation traffic matrix from perm[s] = d.
TrafficMatrix permutation_matrix(const std::vector<int>& perm);

/// Is the matrix a 0/1 permutation matrix?
bool is_permutation(const TrafficMatrix& t, double tol = 1e-12);

}  // namespace tcr
