#include "tcr/traffic/sampler.hpp"

#include <cmath>

#include "tcr/util/check.hpp"

namespace tcr {

TrafficMatrix birkhoff_sample(Rng& rng, int n, int num_permutations) {
  TCR_REQUIRE(num_permutations >= 1, "need at least one permutation");
  // Dirichlet(1, ..., 1) weights via normalized exponentials.
  std::vector<double> w(static_cast<std::size_t>(num_permutations));
  double total = 0.0;
  for (auto& v : w) {
    v = -std::log(1.0 - rng.uniform());
    total += v;
  }
  TrafficMatrix t(n, n);
  for (int j = 0; j < num_permutations; ++j) {
    const auto perm = rng.permutation(n);
    const double weight = w[j] / total;
    for (int s = 0; s < n; ++s) t(s, perm[s]) += weight;
  }
  return t;
}

TrafficMatrix sinkhorn_sample(Rng& rng, int n, int max_iterations, double tol) {
  TCR_REQUIRE(max_iterations >= 1, "need at least one Sinkhorn iteration");
  TCR_REQUIRE(tol > 0.0, "Sinkhorn tolerance must be positive");
  TrafficMatrix t(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) t(i, j) = -std::log(1.0 - rng.uniform());
  for (int it = 0; it < max_iterations; ++it) {
    auto rs = t.row_sums();
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) t(i, j) /= rs[i];
    auto cs = t.col_sums();
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) t(i, j) /= cs[j];
    if (doubly_stochastic_error(t) <= tol) break;
  }
  // After a column normalization the column sums are exactly 1; a final
  // exact row normalization makes the row sums 1 to rounding while moving
  // each column sum by no more than the converged error.
  auto rs = t.row_sums();
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) t(i, j) /= rs[i];
  return t;
}

std::vector<TrafficMatrix> sample_traffic_set(Rng& rng, int n, int count,
                                              const std::string& kind) {
  std::vector<TrafficMatrix> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    if (kind == "perm") {
      out.push_back(birkhoff_sample(rng, n, 1));
    } else if (kind == "birkhoff4") {
      out.push_back(birkhoff_sample(rng, n, 4));
    } else if (kind == "sinkhorn") {
      out.push_back(sinkhorn_sample(rng, n));
    } else {
      TCR_REQUIRE(false, "unknown sample kind: " + kind);
    }
  }
  return out;
}

}  // namespace tcr
