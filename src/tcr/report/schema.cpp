#include "tcr/report/schema.hpp"

#include <cmath>
#include <fstream>

#include "tcr/report/json_reader.hpp"

namespace tcr::report {

bool parse_run_file(const std::string& path, BenchRun* out, std::string* error,
                    const RunFileOptions& options) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  std::vector<obs::Json> lines;
  std::string err;
  out->truncation_note.clear();
  const bool parsed =
      options.tolerate_truncated_tail
          ? parse_json_lines_tolerant(in, &lines, &out->truncation_note, &err)
          : parse_json_lines(in, &lines, &err);
  if (!parsed) {
    if (error != nullptr) *error = path + ": " + err;
    return false;
  }
  if (lines.empty()) {
    if (error != nullptr) *error = path + ": empty run file";
    return false;
  }

  const obs::Json& head = lines.front();
  const obs::Json* kind = head.find("kind");
  if (kind == nullptr || kind->as_string() != "meta") {
    if (error != nullptr) *error = path + ": first record is not a kind:\"meta\" header";
    return false;
  }
  const obs::Json* version = head.find("schema_version");
  if (version == nullptr || !version->is_number()) {
    if (error != nullptr) *error = path + ": meta record lacks schema_version";
    return false;
  }
  out->schema_version = static_cast<int>(version->as_int());
  if (out->schema_version != kSchemaVersion) {
    if (error != nullptr) {
      *error = path + ": unsupported schema_version " + std::to_string(out->schema_version) +
               " (this reader supports " + std::to_string(kSchemaVersion) + ")";
    }
    return false;
  }
  const obs::Json* bench = head.find("bench");
  if (bench == nullptr || !bench->is_string()) {
    if (error != nullptr) *error = path + ": meta record lacks a bench id";
    return false;
  }
  out->bench = bench->as_string();
  const obs::Json* params = head.find("params");
  out->params = params != nullptr ? *params : obs::Json::object();
  const obs::Json* provenance = head.find("provenance");
  out->provenance = provenance != nullptr ? *provenance : obs::Json();

  out->records.clear();
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const obs::Json& rec = lines[i];
    const obs::Json* rec_kind = rec.find("kind");
    if (rec_kind != nullptr && rec_kind->as_string() == "meta") {
      if (error != nullptr) {
        *error = path + ": record " + std::to_string(i + 1) + ": duplicate meta header";
      }
      return false;
    }
    const obs::Json* point = rec.find("point");
    if (point == nullptr || !point->is_object()) {
      if (error != nullptr) {
        *error = path + ": record " + std::to_string(i + 1) + ": missing point object";
      }
      return false;
    }
    const obs::Json* rec_bench = rec.find("bench");
    if (rec_bench != nullptr && rec_bench->as_string() != out->bench) {
      if (error != nullptr) {
        *error = path + ": record " + std::to_string(i + 1) + ": bench id '" +
                 rec_bench->as_string() + "' does not match header '" + out->bench + "'";
      }
      return false;
    }
    BenchRecord parsed;
    parsed.point = *point;
    const obs::Json* snapshot = rec.find("obs");
    if (snapshot != nullptr) parsed.obs = *snapshot;
    const obs::Json* perf = rec.find("perf");
    if (perf != nullptr) parsed.perf = *perf;
    out->records.push_back(std::move(parsed));
  }
  return true;
}

double point_number(const BenchRecord& rec, const std::string& field) {
  const obs::Json* v = rec.point.find(field);
  if (v == nullptr) return std::numeric_limits<double>::quiet_NaN();
  return v->as_number();
}

bool point_matches(const BenchRecord& rec, const obs::Json& match) {
  for (const auto& [key, want] : match.items()) {
    const obs::Json* have = rec.point.find(key);
    if (have == nullptr) return false;
    if (want.is_number() && have->is_number()) {
      if (want.as_number() != have->as_number()) return false;
    } else if (!have->equals(want)) {
      return false;
    }
  }
  return true;
}

CertificateTally tally_certificates(const std::vector<BenchRun>& runs) {
  CertificateTally tally;
  for (const BenchRun& run : runs) {
    for (const BenchRecord& rec : run.records) {
      for (const auto& [key, value] : rec.point.items()) {
        // Covers "certificate" and the multi-certificate benches'
        // "two_turn_certificate" / "optimal_certificate" fields.
        if (key.size() < 11 || key.substr(key.size() - 11) != "certificate") continue;
        if (!value.is_object()) continue;
        const obs::Json* checked = value.find("checked");
        if (checked == nullptr || !checked->as_bool()) continue;
        ++tally.checked;
        const obs::Json* pass = value.find("pass");
        if (pass == nullptr || !pass->as_bool()) ++tally.failed;
      }
    }
  }
  return tally;
}

}  // namespace tcr::report
