// The versioned uniform schema every bench's `--json` output follows, and
// its parser. A run file is JSON-lines:
//
//   {"schema_version":1,"kind":"meta","bench":"<id>","params":{...},
//    "provenance":{...}}
//   {"kind":"point","bench":"<id>","point":{...},"obs":{...},"perf":{...}}
//   ...
//
// The first line is the run header (`kind: "meta"`): schema version, bench
// id, the resolved CLI parameters of the run, and the build/host provenance
// (git SHA, compiler, build type, CPU model — perf::provenance_json).
// Every following line is one series point; `point` holds the paper-series
// values (capacity fractions, normalized localities, certificates), `obs`
// the instrumentation snapshot covering that point's work, and `perf` (only
// under --perf) the hardware-counter/rusage sample of the same work
// (perf::Sample::to_json). tcr-repro consumes these records to gate golden
// values and count certificate failures; tcr-perf consumes the perf blocks
// and provenance to build the BENCH_history regression store. `provenance`
// and `perf` are additive within schema v1 — absent in older records, both
// parse as null.
#pragma once

#include <string>
#include <vector>

#include "tcr/obs/json.hpp"

namespace tcr::report {

/// Version of the record schema written by bench::JsonOutput and accepted
/// by this parser. Bump on any incompatible record-shape change.
inline constexpr int kSchemaVersion = 1;

/// One series point of a bench run: the paper-series values plus the
/// (optional) obs snapshot of the work behind them.
struct BenchRecord {
  obs::Json point;  ///< series values (object)
  obs::Json obs;    ///< instrumentation snapshot; null when absent
  obs::Json perf;   ///< perf::Sample block (--perf runs); null when absent
};

/// A parsed `--json` run: header plus all of its points.
struct BenchRun {
  int schema_version = 0;
  std::string bench;     ///< bench id, e.g. "fig1_wc_tradeoff"
  obs::Json params;      ///< resolved CLI parameters of the run (object)
  obs::Json provenance;  ///< build/host provenance; null in older records
  std::vector<BenchRecord> records;
  /// Non-empty when the reader ran tail-tolerant and dropped a torn final
  /// record (position-bearing description). Consumers gating golden values
  /// must treat such a run as partial, never as a clean measurement set.
  std::string truncation_note;
};

struct RunFileOptions {
  /// Tolerate a torn final record (writer killed mid-line): drop it, note
  /// it in BenchRun::truncation_note, and parse the rest. Mid-file
  /// corruption stays a hard, position-bearing error either way.
  bool tolerate_truncated_tail = false;
};

/// Parse one bench run file (JSON-lines, first line `kind:"meta"`).
/// Returns false and fills *error on malformed input, a missing/foreign
/// header, or an unsupported schema_version.
bool parse_run_file(const std::string& path, BenchRun* out, std::string* error,
                    const RunFileOptions& options = {});

/// Numeric series value of a point, by field name. Missing fields and JSON
/// null (the writer's encoding of NaN — unsolved points) both return NaN.
double point_number(const BenchRecord& rec, const std::string& field);

/// True when every key/value pair of `match` (an object of scalars) equals
/// the corresponding field of the record's point. Numbers compare by value,
/// strings and bools exactly.
bool point_matches(const BenchRecord& rec, const obs::Json& match);

/// Certificate tally across a set of runs. Every point field named
/// "certificate" (at top level of the point) with `checked:true` counts;
/// `pass:false` among those is a published-number bug.
struct CertificateTally {
  long long checked = 0;
  long long failed = 0;
};
CertificateTally tally_certificates(const std::vector<BenchRun>& runs);

}  // namespace tcr::report
