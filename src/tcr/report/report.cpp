#include "tcr/report/report.hpp"

namespace tcr::report {

namespace {

const char* outcome_name(Comparison::Outcome outcome) {
  switch (outcome) {
    case Comparison::Outcome::Pass: return "pass";
    case Comparison::Outcome::Breach: return "breach";
    case Comparison::Outcome::Missing: return "missing";
  }
  return "unknown";
}

}  // namespace

Summary summarize(const std::vector<Comparison>& comparisons) {
  Summary s;
  s.total = static_cast<int>(comparisons.size());
  for (const Comparison& cmp : comparisons) {
    switch (cmp.outcome) {
      case Comparison::Outcome::Pass: ++s.passed; break;
      case Comparison::Outcome::Breach: ++s.breached; break;
      case Comparison::Outcome::Missing: ++s.missing; break;
    }
  }
  return s;
}

obs::Json build_report(const std::string& preset, bool gating_enabled,
                       const std::vector<BenchOutcome>& benches,
                       const std::vector<Comparison>& comparisons,
                       const CertificateTally& certs) {
  auto bench_list = obs::Json::array();
  for (const BenchOutcome& b : benches) {
    bench_list.push_back(obs::Json::object()
                             .set("bench", b.bench)
                             .set("records_path", b.records_path)
                             .set("exit_code", b.exit_code)
                             .set("records", static_cast<long long>(b.records))
                             .set("partial", b.partial));
  }

  auto comparison_list = obs::Json::array();
  for (const Comparison& cmp : comparisons) {
    comparison_list.push_back(obs::Json::object()
                                  .set("id", cmp.id)
                                  .set("bench", cmp.bench)
                                  .set("paper", cmp.paper)     // NaN -> null
                                  .set("golden", cmp.golden)   // NaN -> null (unsolved)
                                  .set("actual", cmp.actual)
                                  .set("delta", cmp.delta)
                                  .set("tolerance", cmp.tolerance)
                                  .set("outcome", outcome_name(cmp.outcome))
                                  .set("reason", cmp.reason));
  }

  const Summary summary = summarize(comparisons);
  return obs::Json::object()
      .set("schema_version", kSchemaVersion)
      .set("preset", preset)
      .set("gating_enabled", gating_enabled)
      .set("benches", std::move(bench_list))
      .set("comparisons", std::move(comparison_list))
      .set("certificates", obs::Json::object()
                               .set("checked", certs.checked)
                               .set("failed", certs.failed))
      .set("summary", obs::Json::object()
                          .set("total", summary.total)
                          .set("passed", summary.passed)
                          .set("breached", summary.breached)
                          .set("missing", summary.missing)
                          .set("pass", summary.pass(certs)));
}

}  // namespace tcr::report
