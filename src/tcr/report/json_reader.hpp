// JSON parser for the report layer: reads back what obs::Json wrote — the
// benches' `--json` JSON-lines records and the checked-in golden-value file
// (bench/golden.json). Strict JSON (RFC 8259) with one reproduction-specific
// convention: `null` in a numeric position round-trips to NaN, matching the
// writer, which renders NaN/Inf as null (unsolved sweep points).
#pragma once

#include <istream>
#include <string>
#include <string_view>
#include <vector>

#include "tcr/obs/json.hpp"

namespace tcr::report {

/// Parse one JSON document. Returns false (and fills *error with a
/// position-annotated message) on malformed input; *out is then unspecified.
bool parse_json(std::string_view text, obs::Json* out, std::string* error);

/// Parse a whole JSON-lines stream (one document per line, blank lines
/// skipped). On error, *error names the failing line number and offset.
bool parse_json_lines(std::istream& in, std::vector<obs::Json>* out, std::string* error);

/// Like parse_json_lines, but tolerates a torn *final* line — the signature
/// of a writer killed mid-record (crash, SIGKILL, full disk). The torn line
/// is dropped and described in *truncated (line number + parse position);
/// *truncated stays empty for a clean stream. Malformed records anywhere
/// before the final line are still hard errors: mid-file corruption is not
/// truncation and must not be silently skipped.
bool parse_json_lines_tolerant(std::istream& in, std::vector<obs::Json>* out,
                               std::string* truncated, std::string* error);

/// Read and parse a file holding a single JSON document.
bool parse_json_file(const std::string& path, obs::Json* out, std::string* error);

}  // namespace tcr::report
