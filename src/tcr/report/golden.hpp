// Golden-value gate for the reproduction harness: the checked-in
// bench/golden.json names every headline quantity the repo publishes — the
// paper's value, the value the recorded reference run measured, and a
// per-quantity tolerance — and the comparator re-extracts each quantity
// from a fresh run's records and fails on any breach. The paper's numbers
// are analytic/LP-derived, so they reproduce to tight tolerances every run;
// a breach means a solver or routing change silently moved a published
// figure/table value.
//
// Golden file shape (schema_version 1):
//   {"schema_version":1,
//    "tables":[{"name":...,"kind":"list"|"grid",...}, ...],
//    "quantities":[{"id":...,"presets":[...],"bench":...,"match":{...},
//                   "field":...,"paper":...,"measured":...,
//                   "abs_tol":...,"rel_tol":..., <presentation keys>}, ...]}
//
// A quantity with a "field" is *gated*: tcr-repro selects the first record
// of the named bench whose point matches every key of "match", reads the
// field, and requires |actual - measured| <= abs_tol + rel_tol*|measured|.
// "measured": null records an unsolved point (NaN); the fresh value must
// then be unsolved too. Quantities without a "field" are presentation-only
// rows for the generated EXPERIMENTS.md tables.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "tcr/obs/json.hpp"
#include "tcr/report/schema.hpp"

namespace tcr::report {

/// Layout of one generated EXPERIMENTS.md table (see markdown.hpp).
struct TableSpec {
  std::string name;                  ///< referenced by `<!-- tcr:table name -->`
  std::string kind;                  ///< "list" (Quantity|Paper|Measured|Binary) or "grid"
  std::string row_header;            ///< grid only: header of the row-key column
  std::vector<std::string> columns;  ///< grid only: column order
};

/// One published quantity: where it comes from, what the paper says, what
/// the recorded reference run measured, and how tightly it must reproduce.
struct Quantity {
  std::string id;                     ///< unique, e.g. "table1.val.wc"
  std::vector<std::string> presets;   ///< presets that gate it (empty = never gated)
  std::string bench;                  ///< bench id whose records hold it
  obs::Json match;                    ///< point-field selectors (object of scalars)
  std::string field;                  ///< numeric point field; empty = presentation-only
  double paper = std::numeric_limits<double>::quiet_NaN();  ///< paper value (if numeric)
  double measured = std::numeric_limits<double>::quiet_NaN();  ///< recorded golden value
  bool has_measured = false;          ///< "measured" key present (null => NaN, unsolved)
  double abs_tol = 0.0;               ///< absolute tolerance
  double rel_tol = 0.0;               ///< relative tolerance (vs |measured|)

  // Presentation (generated EXPERIMENTS.md tables; all optional).
  std::string table;          ///< TableSpec name this quantity renders into
  std::string row;            ///< row label (list) or row key (grid)
  std::string col;            ///< grid column name
  std::string binary;         ///< list tables: producing binary
  std::string measured_note;  ///< appended after the measured value
  std::string measured_str;   ///< verbatim measured cell (presentation-only rows)
  std::string paper_str;      ///< verbatim paper cell; falls back to `paper`
  int fmt = 4;                ///< decimals when formatting `measured`
  bool bold = false;          ///< grid tables: render the cell bold

  /// Gated quantities are compared against fresh runs; the rest only render.
  bool gated() const { return !field.empty(); }
  bool applies_to(const std::string& preset) const;
};

/// Parsed golden file.
struct GoldenFile {
  int schema_version = 0;
  std::vector<TableSpec> tables;
  std::vector<Quantity> quantities;

  const TableSpec* find_table(const std::string& name) const;
};

/// Load and validate bench/golden.json. Fails on parse errors, unsupported
/// schema_version, duplicate ids, or gated quantities missing tolerances.
bool load_golden(const std::string& path, GoldenFile* out, std::string* error);

/// Result of checking one gated quantity against fresh records.
struct Comparison {
  enum class Outcome {
    Pass,     ///< within tolerance (or both recorded & fresh unsolved)
    Breach,   ///< outside tolerance, solved/unsolved state changed, or the
              ///< matched record is degraded/skipped (an interpolation or a
              ///< hole under run control — never accepted as a measurement)
    Missing,  ///< no record matched (bench not run or series absent)
  };
  std::string id;      ///< Quantity::id
  std::string bench;   ///< Quantity::bench
  double paper = std::numeric_limits<double>::quiet_NaN();
  double golden = std::numeric_limits<double>::quiet_NaN();  ///< recorded measured value
  double actual = std::numeric_limits<double>::quiet_NaN();  ///< fresh run value
  double delta = std::numeric_limits<double>::quiet_NaN();   ///< |actual - golden|
  double tolerance = 0.0;  ///< abs_tol + rel_tol*|golden|
  Outcome outcome = Outcome::Missing;
  std::string reason;  ///< names the quantity and delta on breach
};

/// Check one gated quantity against a set of parsed runs.
Comparison compare_quantity(const Quantity& q, const std::vector<BenchRun>& runs);

/// Check every quantity gated by `preset` against the runs, in file order.
std::vector<Comparison> compare_preset(const GoldenFile& golden, const std::string& preset,
                                       const std::vector<BenchRun>& runs);

}  // namespace tcr::report
