#include "tcr/report/json_reader.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace tcr::report {

namespace {

// Recursive-descent parser over a string_view. Depth is bounded to keep
// malicious/corrupt inputs from overflowing the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(obs::Json* out, std::string* error) {
    skip_ws();
    if (!parse_value(out, 0)) {
      if (error != nullptr) *error = error_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) *error = fail("trailing characters after JSON value");
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  std::string fail(const std::string& msg) {
    if (error_.empty()) {
      std::ostringstream os;
      os << msg << " at offset " << pos_;
      error_ = os.str();
    }
    return error_;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(obs::Json* out, int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return false;
    }
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    switch (text_[pos_]) {
      case 'n':
        if (!literal("null")) { fail("invalid literal"); return false; }
        *out = obs::Json();
        return true;
      case 't':
        if (!literal("true")) { fail("invalid literal"); return false; }
        *out = obs::Json(true);
        return true;
      case 'f':
        if (!literal("false")) { fail("invalid literal"); return false; }
        *out = obs::Json(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = obs::Json(std::move(s));
        return true;
      }
      case '[': return parse_array(out, depth);
      case '{': return parse_object(out, depth);
      default: return parse_number(out);
    }
  }

  bool parse_string(std::string* out) {
    out->clear();
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) { fail("truncated \\u escape"); return false; }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else { fail("invalid \\u escape"); return false; }
            }
            append_utf8(out, code);
            break;
          }
          default: fail("invalid escape"); return false;
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return false;
      }
      out->push_back(c);
      ++pos_;
    }
    fail("unterminated string");
    return false;
  }

  // Surrogate pairs are not reassembled — the writer never emits them (it
  // escapes only control characters); lone code points cover our inputs.
  static void append_utf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool parse_number(obs::Json* out) {
    const std::size_t start = pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid number");
      return false;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (is_double) {
      *out = obs::Json(std::strtod(token.c_str(), nullptr));
      return true;
    }
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(token.c_str(), &end, 10);
    if (errno == ERANGE) {
      // Out-of-int64 integers degrade to double rather than failing.
      *out = obs::Json(std::strtod(token.c_str(), nullptr));
    } else {
      *out = obs::Json(v);
    }
    return true;
  }

  bool parse_array(obs::Json* out, int depth) {
    ++pos_;  // '['
    *out = obs::Json::array();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      obs::Json elem;
      skip_ws();
      if (!parse_value(&elem, depth + 1)) return false;
      out->push_back(std::move(elem));
      skip_ws();
      if (pos_ >= text_.size()) { fail("unterminated array"); return false; }
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == ']') { ++pos_; return true; }
      fail("expected ',' or ']' in array");
      return false;
    }
  }

  bool parse_object(obs::Json* out, int depth) {
    ++pos_;  // '{'
    *out = obs::Json::object();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected string key in object");
        return false;
      }
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        fail("expected ':' after object key");
        return false;
      }
      ++pos_;
      skip_ws();
      obs::Json value;
      if (!parse_value(&value, depth + 1)) return false;
      out->set(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) { fail("unterminated object"); return false; }
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == '}') { ++pos_; return true; }
      fail("expected ',' or '}' in object");
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool parse_json(std::string_view text, obs::Json* out, std::string* error) {
  return Parser(text).parse(out, error);
}

namespace {

// Shared body of the strict and tail-tolerant JSON-lines readers. In
// tolerant mode a parse failure is deferred one iteration: it only becomes
// a hard error once a later non-blank line proves the bad record was not
// the file's torn tail.
bool parse_lines_impl(std::istream& in, std::vector<obs::Json>* out, std::string* truncated,
                      std::string* error) {
  out->clear();
  if (truncated != nullptr) truncated->clear();
  std::string line;
  int lineno = 0;
  std::string pending_error;  // tolerant mode: failure awaiting a successor
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (!pending_error.empty()) {
      if (error != nullptr) *error = pending_error;
      return false;
    }
    obs::Json record;
    std::string err;
    if (!parse_json(line, &record, &err)) {
      const std::string described = "line " + std::to_string(lineno) + ": " + err;
      if (truncated == nullptr) {
        if (error != nullptr) *error = described;
        return false;
      }
      pending_error = described;
      continue;
    }
    out->push_back(std::move(record));
  }
  if (!pending_error.empty() && truncated != nullptr) {
    *truncated = "dropped torn final record (" + pending_error + ")";
  }
  return true;
}

}  // namespace

bool parse_json_lines(std::istream& in, std::vector<obs::Json>* out, std::string* error) {
  return parse_lines_impl(in, out, nullptr, error);
}

bool parse_json_lines_tolerant(std::istream& in, std::vector<obs::Json>* out,
                               std::string* truncated, std::string* error) {
  return parse_lines_impl(in, out, truncated, error);
}

bool parse_json_file(const std::string& path, obs::Json* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string err;
  if (!parse_json(buf.str(), out, &err)) {
    if (error != nullptr) *error = path + ": " + err;
    return false;
  }
  return true;
}

}  // namespace tcr::report
