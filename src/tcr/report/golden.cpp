#include "tcr/report/golden.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "tcr/report/json_reader.hpp"

namespace tcr::report {

namespace {

std::string get_string(const obs::Json& obj, const std::string& key) {
  const obs::Json* v = obj.find(key);
  return v != nullptr ? v->as_string() : std::string();
}

double get_number(const obs::Json& obj, const std::string& key, double fallback) {
  const obs::Json* v = obj.find(key);
  return v != nullptr ? v->as_number(fallback) : fallback;
}

std::string format_value(double v) {
  if (std::isnan(v)) return "unsolved (NaN)";
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

}  // namespace

bool Quantity::applies_to(const std::string& preset) const {
  return std::find(presets.begin(), presets.end(), preset) != presets.end();
}

const TableSpec* GoldenFile::find_table(const std::string& name) const {
  for (const TableSpec& t : tables) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

bool load_golden(const std::string& path, GoldenFile* out, std::string* error) {
  obs::Json root;
  if (!parse_json_file(path, &root, error)) return false;
  if (!root.is_object()) {
    if (error != nullptr) *error = path + ": golden file is not a JSON object";
    return false;
  }
  out->schema_version = static_cast<int>(get_number(root, "schema_version", 0));
  if (out->schema_version != kSchemaVersion) {
    if (error != nullptr) {
      *error = path + ": unsupported golden schema_version " +
               std::to_string(out->schema_version);
    }
    return false;
  }

  out->tables.clear();
  if (const obs::Json* tables = root.find("tables"); tables != nullptr) {
    for (const obs::Json& t : tables->elements()) {
      TableSpec spec;
      spec.name = get_string(t, "name");
      spec.kind = get_string(t, "kind");
      spec.row_header = get_string(t, "row_header");
      if (const obs::Json* cols = t.find("columns"); cols != nullptr) {
        for (const obs::Json& c : cols->elements()) spec.columns.push_back(c.as_string());
      }
      if (spec.name.empty() || (spec.kind != "list" && spec.kind != "grid")) {
        if (error != nullptr) {
          *error = path + ": table '" + spec.name + "' needs a name and kind list|grid";
        }
        return false;
      }
      out->tables.push_back(std::move(spec));
    }
  }

  out->quantities.clear();
  const obs::Json* quantities = root.find("quantities");
  if (quantities == nullptr || !quantities->is_array()) {
    if (error != nullptr) *error = path + ": missing quantities array";
    return false;
  }
  std::set<std::string> seen_ids;
  for (const obs::Json& q : quantities->elements()) {
    Quantity quantity;
    quantity.id = get_string(q, "id");
    if (quantity.id.empty()) {
      if (error != nullptr) *error = path + ": quantity without an id";
      return false;
    }
    if (!seen_ids.insert(quantity.id).second) {
      if (error != nullptr) *error = path + ": duplicate quantity id '" + quantity.id + "'";
      return false;
    }
    if (const obs::Json* presets = q.find("presets"); presets != nullptr) {
      for (const obs::Json& p : presets->elements()) quantity.presets.push_back(p.as_string());
    }
    quantity.bench = get_string(q, "bench");
    if (const obs::Json* match = q.find("match"); match != nullptr) quantity.match = *match;
    quantity.field = get_string(q, "field");
    quantity.paper = get_number(q, "paper", quantity.paper);
    if (const obs::Json* measured = q.find("measured"); measured != nullptr) {
      quantity.has_measured = true;
      quantity.measured = measured->as_number();  // null -> NaN (recorded unsolved)
    }
    quantity.abs_tol = get_number(q, "abs_tol", 0.0);
    quantity.rel_tol = get_number(q, "rel_tol", 0.0);
    quantity.table = get_string(q, "table");
    quantity.row = get_string(q, "row");
    quantity.col = get_string(q, "col");
    quantity.binary = get_string(q, "binary");
    quantity.measured_note = get_string(q, "measured_note");
    quantity.measured_str = get_string(q, "measured_str");
    quantity.paper_str = get_string(q, "paper_str");
    quantity.fmt = static_cast<int>(get_number(q, "fmt", 4));
    if (const obs::Json* bold = q.find("bold"); bold != nullptr) quantity.bold = bold->as_bool();

    if (quantity.gated()) {
      if (quantity.bench.empty()) {
        if (error != nullptr) *error = path + ": gated quantity '" + quantity.id + "' lacks a bench";
        return false;
      }
      if (!quantity.has_measured) {
        if (error != nullptr) {
          *error = path + ": gated quantity '" + quantity.id + "' lacks a measured value";
        }
        return false;
      }
      if (quantity.abs_tol <= 0.0 && quantity.rel_tol <= 0.0 &&
          !std::isnan(quantity.measured)) {
        if (error != nullptr) {
          *error = path + ": gated quantity '" + quantity.id + "' has no tolerance";
        }
        return false;
      }
    }
    if (!quantity.table.empty() && out->find_table(quantity.table) == nullptr) {
      if (error != nullptr) {
        *error = path + ": quantity '" + quantity.id + "' references unknown table '" +
                 quantity.table + "'";
      }
      return false;
    }
    out->quantities.push_back(std::move(quantity));
  }
  return true;
}

Comparison compare_quantity(const Quantity& q, const std::vector<BenchRun>& runs) {
  Comparison cmp;
  cmp.id = q.id;
  cmp.bench = q.bench;
  cmp.paper = q.paper;
  cmp.golden = q.measured;
  cmp.tolerance = q.abs_tol + q.rel_tol * std::abs(q.measured);

  const BenchRun* run = nullptr;
  for (const BenchRun& r : runs) {
    if (r.bench == q.bench) {
      run = &r;
      break;
    }
  }
  if (run == nullptr) {
    cmp.outcome = Comparison::Outcome::Missing;
    cmp.reason = q.id + ": bench '" + q.bench + "' was not run";
    return cmp;
  }
  const BenchRecord* record = nullptr;
  for (const BenchRecord& rec : run->records) {
    if (point_matches(rec, q.match)) {
      record = &rec;
      break;
    }
  }
  if (record == nullptr) {
    cmp.outcome = Comparison::Outcome::Missing;
    cmp.reason = q.id + ": no record of bench '" + q.bench + "' matches " + q.match.dump();
    return cmp;
  }

  // A degraded point is a §5.3 interpolation and a skipped point was never
  // attempted (run control, tcr::guard) — neither is a measurement, so
  // neither may satisfy a gate even when its value lands inside tolerance.
  // Benches stamp `provenance` only on such points ("resumed" is normalized
  // away before records are written).
  if (const obs::Json* provenance = record->point.find("provenance");
      provenance != nullptr && provenance->is_string() &&
      provenance->as_string() != "measured") {
    cmp.actual = point_number(*record, q.field);
    cmp.outcome = Comparison::Outcome::Breach;
    cmp.reason = "GOLDEN BREACH " + q.id + ": matched record is " + provenance->as_string() +
                 ", not measured — interpolated (eq. 14) or unattempted under run control";
    return cmp;
  }

  cmp.actual = point_number(*record, q.field);
  const bool golden_solved = !std::isnan(q.measured);
  const bool actual_solved = !std::isnan(cmp.actual);
  if (!golden_solved && !actual_solved) {
    cmp.outcome = Comparison::Outcome::Pass;
    cmp.reason = q.id + ": unsolved, as recorded";
    return cmp;
  }
  if (golden_solved != actual_solved) {
    cmp.outcome = Comparison::Outcome::Breach;
    cmp.reason = "GOLDEN BREACH " + q.id + ": recorded " + format_value(q.measured) +
                 " but fresh run measured " + format_value(cmp.actual);
    return cmp;
  }
  cmp.delta = std::abs(cmp.actual - q.measured);
  if (cmp.delta <= cmp.tolerance) {
    cmp.outcome = Comparison::Outcome::Pass;
    std::ostringstream os;
    os.precision(3);
    os << q.id << ": delta " << cmp.delta << " within tolerance " << cmp.tolerance;
    cmp.reason = os.str();
  } else {
    cmp.outcome = Comparison::Outcome::Breach;
    std::ostringstream os;
    os.precision(10);
    os << "GOLDEN BREACH " << q.id << ": measured " << cmp.actual << ", recorded "
       << q.measured << ", delta " << cmp.delta << " > tolerance " << cmp.tolerance
       << " (paper: " << (q.paper_str.empty() ? format_value(q.paper) : q.paper_str) << ")";
    cmp.reason = os.str();
  }
  return cmp;
}

std::vector<Comparison> compare_preset(const GoldenFile& golden, const std::string& preset,
                                       const std::vector<BenchRun>& runs) {
  std::vector<Comparison> out;
  for (const Quantity& q : golden.quantities) {
    if (!q.gated() || !q.applies_to(preset)) continue;
    out.push_back(compare_quantity(q, runs));
  }
  return out;
}

}  // namespace tcr::report
