// EXPERIMENTS.md renderer: expands the hand-maintained prose template
// (docs/experiments.tmpl.md) with tables generated from the golden file, so
// the measured numbers in the committed EXPERIMENTS.md are exactly the
// recorded reference-run values that tcr-repro gates — the document can
// never drift from what the binaries actually print.
//
// Template directives, each alone on its own line:
//   <!-- tcr:generated -->      expands to the "generated file" banner
//   <!-- tcr:table NAME -->     expands to the table NAME from golden.json
//
// Rendering depends only on (template, golden file) — never on a live run —
// so every tcr-repro invocation regenerates the document byte-identically
// and `--check-experiments` can diff it against the committed copy.
#pragma once

#include <string>

#include "tcr/report/golden.hpp"

namespace tcr::report {

/// Format a measured value with `decimals` fixed digits ("unsolved" for NaN).
std::string format_measured(double value, int decimals);

/// Render one table from the golden file as GitHub-flavored markdown.
/// Returns false (with *error set) on an unknown table or a list/grid
/// quantity missing its row/col labels.
bool render_table(const GoldenFile& golden, const std::string& name, std::string* out,
                  std::string* error);

/// Expand every directive of `template_text`. Unknown `tcr:` directives are
/// an error (they are always typos).
bool render_experiments(const std::string& template_text, const GoldenFile& golden,
                        std::string* out, std::string* error);

}  // namespace tcr::report
