// Machine-readable run report (report.json) for the reproduction harness:
// one document per tcr-repro invocation recording which benches ran, every
// golden comparison with its delta, the certificate tally, and the overall
// verdict. This file is the repo's bench trajectory — CI uploads it as an
// artifact, and downstream tooling trends the deltas over time.
#pragma once

#include <string>
#include <vector>

#include "tcr/obs/json.hpp"
#include "tcr/report/golden.hpp"
#include "tcr/report/schema.hpp"

namespace tcr::report {

/// Aggregate verdict over a set of comparisons.
struct Summary {
  int total = 0;    ///< gated quantities checked
  int passed = 0;
  int breached = 0;
  int missing = 0;  ///< gated quantity had no matching record
  /// Overall gate: no breaches, no missing quantities, no failed
  /// certificates anywhere in the run records.
  bool pass(const CertificateTally& certs) const {
    return breached == 0 && missing == 0 && certs.failed == 0;
  }
};
Summary summarize(const std::vector<Comparison>& comparisons);

/// One bench execution as seen by the driver.
struct BenchOutcome {
  std::string bench;        ///< bench id
  std::string records_path; ///< the .jsonl this run was parsed from
  int exit_code = 0;
  std::size_t records = 0;  ///< series points parsed
  /// Run control cut the run short (bench exit 7) or the record file ends
  /// in a torn line: every parsed record is valid but the set is
  /// incomplete, so golden gating must not treat it as a measurement run.
  bool partial = false;
};

/// Build the report.json document (schema_version, preset, benches,
/// comparisons, certificates, summary).
obs::Json build_report(const std::string& preset, bool gating_enabled,
                       const std::vector<BenchOutcome>& benches,
                       const std::vector<Comparison>& comparisons,
                       const CertificateTally& certs);

}  // namespace tcr::report
