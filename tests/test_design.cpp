// The core LP design machinery (§3-§5): capacity LPs against the analytic
// value, the symmetry reduction against the general formulation, worst-case
// optimal designs against the known cap/2 bound, and flow decomposition.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "tcr/core/design.hpp"
#include "tcr/core/tradeoff.hpp"
#include "tcr/obs/registry.hpp"
#include "tcr/metrics/loads.hpp"
#include "tcr/metrics/worst_case.hpp"
#include "tcr/routing/dor.hpp"
#include "tcr/traffic/sampler.hpp"

namespace tcr {
namespace {

TEST(CapacityLP, MatchesAnalyticIdealLoad) {
  for (int k : {3, 4, 5}) {
    const Torus t(k);
    EXPECT_NEAR(capacity_design_load(t), t.ideal_uniform_load(), 1e-6) << "k=" << k;
  }
}

TEST(CapacityLP, GeneralFormulationAgreesOnTinyTorus) {
  // The O(CN^2) general LP and the O(CN) symmetric LP must find the same
  // optimum — this validates the §4 symmetry reduction end to end.
  for (int k : {3}) {
    const Torus t(k);
    const auto general = general_capacity_design(t.graph());
    ASSERT_EQ(general.status, lp::Status::Optimal) << "k=" << k;
    EXPECT_NEAR(general.objective, t.ideal_uniform_load(), 1e-6) << "k=" << k;
  }
}

TEST(CapacityLP, UnidirectionalRing) {
  // Uniform traffic on a one-way ring of n nodes: every pair has exactly one
  // path; channel load = (1/n) * sum over pairs through a channel =
  // (n-1)/2... mean distance sum: each channel carries sum_{d=1}^{n-1} d/n
  // = (n-1)/2.
  for (int n : {3, 4, 6}) {
    const auto res = general_capacity_design(make_ring(n));
    ASSERT_EQ(res.status, lp::Status::Optimal);
    EXPECT_NEAR(res.objective, (n - 1) / 2.0, 1e-6) << "n=" << n;
  }
}

TEST(WorstCaseDesign, GeneralMatchesSymmetricOnTinyTorus) {
  const Torus t(3);
  const auto general = general_worst_case_design(t.graph());
  ASSERT_EQ(general.status, lp::Status::Optimal);

  SymmetricDesignConfig cfg;
  cfg.objective = DesignObjective::WorstCase;
  SymmetricArcDesign sym(t, cfg);
  const auto res = sym.solve();
  ASSERT_EQ(res.status, lp::Status::Optimal);
  EXPECT_NEAR(res.objective, general.objective, 1e-5);
}

class WorstCaseOptimal : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Radices, WorstCaseOptimal, ::testing::Values(3, 4, 5));

TEST_P(WorstCaseOptimal, AchievesHalfCapacityAndVerifiesExactly) {
  const Torus t(GetParam());
  const auto opt = design_worst_case_optimal(t);
  ASSERT_EQ(opt.status, lp::Status::Optimal);
  // Known result: optimal worst-case load is twice the uniform-optimal load
  // (VAL achieves it; nothing oblivious beats it).
  EXPECT_NEAR(opt.objective, 2.0 * t.ideal_uniform_load(), 1e-5);
  // The decomposed routing must be valid and its *exact* (Hungarian-based)
  // worst case must equal the LP's claim — LP and matching machinery agree.
  EXPECT_NO_THROW(opt.routing.validate(1e-5));
  EXPECT_NEAR(worst_case(opt.routing).gamma, opt.objective, 1e-4);
  // Locality can't beat minimal routing.
  EXPECT_GE(opt.locality_norm, 1.0 - 1e-6);
  EXPECT_NEAR(opt.routing.normalized_locality(), opt.locality_norm, 1e-5);
}

TEST(WorstCaseDesign, LocalityConstraintOneIsDorLike) {
  // Forcing minimal locality (L = 1) must give DOR's worst case — the paper
  // says DOR is worst-case optimal among minimal algorithms.
  const Torus t(4);
  SymmetricDesignConfig cfg;
  cfg.objective = DesignObjective::WorstCase;
  cfg.locality_equals = t.mean_min_distance();
  SymmetricArcDesign design(t, cfg);
  const auto res = design.solve();
  ASSERT_EQ(res.status, lp::Status::Optimal);
  const double dor_gamma = worst_case(make_dor(t)).gamma;
  EXPECT_LE(res.objective, dor_gamma + 1e-6);
  EXPECT_GT(res.objective, 2.0 * t.ideal_uniform_load() - 1e-6);  // worse than cap/2
}

TEST(CuttingPlane, ConvergesToExactOptimum) {
  // The Appendix-inspired permutation-generation method (with the Hungarian
  // separation oracle and orbit-expanded cuts) must reach the same optimum
  // as the embedded matching-dual block. Practical only at small radices —
  // the cut set grows quickly (see EXPERIMENTS.md) — but exact when it
  // converges.
  for (int k : {3, 4}) {
    const Torus t(k);
    const auto res = design_worst_case_cutting_plane(t);
    ASSERT_EQ(res.status, lp::Status::Optimal) << "k=" << k;
    EXPECT_NEAR(res.objective, 2.0 * t.ideal_uniform_load(), 1e-5) << "k=" << k;
    EXPECT_LE(res.rounds, 40) << "k=" << k;
  }
}

TEST(WorstCaseDesign, FoldedAndUnfoldedAgree) {
  // The dihedral variable folding must be lossless for the worst-case
  // objective (group-averaging/convexity argument, DESIGN.md).
  const Torus t(4);
  double objectives[2];
  for (bool fold : {true, false}) {
    SymmetricDesignConfig cfg;
    cfg.objective = DesignObjective::WorstCase;
    cfg.fold_dihedral = fold;
    SymmetricArcDesign design(t, cfg);
    const auto res = design.solve();
    ASSERT_EQ(res.status, lp::Status::Optimal) << "fold=" << fold;
    objectives[fold ? 0 : 1] = res.objective;
  }
  EXPECT_NEAR(objectives[0], objectives[1], 1e-6);
}

TEST(TradeoffCurve, MonotoneAndBracketedByEndpoints) {
  const Torus t(4);
  const auto curve = worst_case_tradeoff(t, locality_grid(1.0, 2.0, 5));
  ASSERT_EQ(curve.size(), 5u);
  double prev = 0.0;
  for (const auto& pt : curve) {
    ASSERT_EQ(pt.status, lp::Status::Optimal) << "L=" << pt.locality;
    EXPECT_GE(pt.capacity_fraction, prev - 1e-6) << "L=" << pt.locality;
    prev = std::max(prev, pt.capacity_fraction);
    EXPECT_LE(pt.capacity_fraction, 0.5 + 1e-6);
  }
  // At L = 2 the optimum must reach the global worst-case optimum (cap/2).
  EXPECT_NEAR(curve.back().capacity_fraction, 0.5, 1e-4);
}

TEST(AverageCaseDesign, OptimumBeatsDorOnItsOwnSamples) {
  const Torus t(4);
  Rng rng(3);
  std::vector<std::vector<int>> samples;
  for (int i = 0; i < 12; ++i) samples.push_back(rng.permutation(t.num_nodes()));
  const auto opt = design_average_case_optimal(t, samples);
  ASSERT_EQ(opt.status, lp::Status::Optimal);
  EXPECT_NO_THROW(opt.routing.validate(1e-5));

  // Evaluate DOR's mean max load on the same samples; the design optimum
  // cannot be worse.
  const TorusRouting dor = make_dor(t);
  double dor_mean = 0.0;
  for (const auto& perm : samples) dor_mean += max_channel_load(dor, perm);
  dor_mean /= samples.size();
  EXPECT_LE(opt.objective, dor_mean + 1e-6);

  // And the designed routing's sampled mean load must equal the LP value.
  double mean = 0.0;
  for (const auto& perm : samples) mean += max_channel_load(opt.routing, perm);
  mean /= samples.size();
  EXPECT_NEAR(mean, opt.objective, 1e-4);
}

TEST(FlowDecomposition, RecoversPathsAndDiscardsCycles) {
  const Torus t(4);
  const int e = t.node(2, 1);
  std::vector<double> flow(t.num_channels(), 0.0);
  // A legit path 0 -> (1,0) -> (2,0) -> (2,1) with flow 1...
  flow[t.channel(t.node(0, 0), Dir::PX)] += 1.0;
  flow[t.channel(t.node(1, 0), Dir::PX)] += 1.0;
  flow[t.channel(t.node(2, 0), Dir::PY)] += 1.0;
  // ...plus a spurious cycle around row 3.
  for (int x = 0; x < 4; ++x) flow[t.channel(t.node(x, 3), Dir::PX)] += 0.25;
  const auto paths = decompose_flow(t, e, flow);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_NEAR(paths[0].weight, 1.0, 1e-12);
  EXPECT_EQ(paths[0].path.length(), 3);
}

// The Dinic-based crash hints must be well-formed (right size, in-range
// columns, no duplicates), substantial (the flow pass covers at least the
// conservation rows of one shortest path per commodity), rhs-independent,
// and cached across calls.
TEST(FlowCrash, HintsAreWellFormedAndCached) {
  const Torus t(4);
  SymmetricDesignConfig cfg;
  cfg.objective = DesignObjective::WorstCase;
  SymmetricArcDesign design(t, cfg);
  const lp::CrashHints& hints = design.flow_crash_hints();
  const lp::Model& m = design.model();
  ASSERT_EQ(static_cast<int>(hints.basic_of_row.size()), m.num_rows());

  std::vector<char> seen(static_cast<std::size_t>(m.num_cols()), 0);
  int covered = 0;
  for (const int col : hints.basic_of_row) {
    if (col < 0) continue;
    ASSERT_LT(col, m.num_cols());
    EXPECT_FALSE(seen[static_cast<std::size_t>(col)]) << "duplicate column " << col;
    seen[static_cast<std::size_t>(col)] = 1;
    ++covered;
  }
  // Each representative commodity contributes min_dist(0, e) conservation
  // nominations; the side blocks add more. A loose floor guards against the
  // pass silently nominating nothing.
  int floor = 0;
  for (int e = 1; e < t.num_nodes(); ++e) floor += t.min_dist(0, e);
  EXPECT_GE(covered, floor / 2);

  // Cached: the second call must hand back the same object and data.
  const lp::CrashHints& again = design.flow_crash_hints();
  EXPECT_EQ(&again, &hints);
  EXPECT_EQ(again.basic_of_row, hints.basic_of_row);
}

// Crash hints are an iteration optimization, never a semantic switch: the
// optimum with flow_crash on and off must match, and the lp.crash.* channel
// must balance (attempts == accepted + repaired + rejected) while leaving
// lp.warmstart.* untouched on cold solves.
TEST(FlowCrash, ColdSolveMatchesWithAndWithoutHints) {
  auto counter = [](const char* name) {
    return obs::Registry::instance().counter(name).value();
  };
  const Torus t(4);
  SymmetricDesignConfig cfg;
  cfg.objective = DesignObjective::WorstCase;
  cfg.locality_equals = 1.4 * t.mean_min_distance();
  cfg.locality_le = true;

  const std::int64_t warm_before = counter("lp.warmstart.attempts");
  const std::int64_t attempts_before = counter("lp.crash.attempts");
  SymmetricArcDesign with(t, cfg);
  lp::SimplexOptions opts;
  opts.flow_crash = true;
  const DesignResult on = with.solve(opts);
  ASSERT_EQ(on.status, lp::Status::Optimal);
  EXPECT_EQ(counter("lp.crash.attempts") - attempts_before, 1);
  EXPECT_EQ(counter("lp.crash.attempts"),
            counter("lp.crash.accepted") + counter("lp.crash.repaired") +
                counter("lp.crash.rejected"));
  EXPECT_EQ(counter("lp.warmstart.attempts"), warm_before)
      << "crash adoption must not leak into the warm-start channel";

  SymmetricArcDesign without(t, cfg);
  opts.flow_crash = false;
  const DesignResult off = without.solve(opts);
  ASSERT_EQ(off.status, lp::Status::Optimal);
  EXPECT_NEAR(on.objective, off.objective, 1e-9 * (1 + std::abs(off.objective)));
}

// Garbage hints handed straight to lp::solve must degrade through the
// repair/reject ladder and still land on the certified cold optimum.
TEST(FlowCrash, GarbageHintsNeverChangeTheAnswer) {
  const Torus t(3);
  SymmetricDesignConfig cfg;
  cfg.objective = DesignObjective::WorstCase;
  SymmetricArcDesign design(t, cfg);
  const lp::Model& m = design.model();
  lp::SimplexOptions opts;
  const lp::Solution cold = lp::solve(m, opts);
  ASSERT_EQ(cold.status, lp::Status::Optimal);

  lp::CrashHints junk;
  // Wrong size, out-of-range and duplicate columns all at once.
  junk.basic_of_row.assign(static_cast<std::size_t>(m.num_rows()), 0);
  junk.basic_of_row[0] = m.num_cols() + 17;
  if (m.num_rows() > 2) junk.basic_of_row[2] = -9;
  const lp::Solution sol = lp::solve(m, opts, nullptr, &junk);
  ASSERT_EQ(sol.status, lp::Status::Optimal);
  EXPECT_NEAR(sol.objective, cold.objective, 1e-9 * (1 + std::abs(cold.objective)));
  EXPECT_TRUE(sol.certificate.ok()) << sol.certificate.summary();

  lp::CrashHints short_hints;  // wrong length: must be ignored or rejected
  short_hints.basic_of_row = {0, 1};
  const lp::Solution sol2 = lp::solve(m, opts, nullptr, &short_hints);
  ASSERT_EQ(sol2.status, lp::Status::Optimal);
  EXPECT_NEAR(sol2.objective, cold.objective, 1e-9 * (1 + std::abs(cold.objective)));
}

TEST(FlowDecomposition, SplitsParallelFlows) {
  const Torus t(4);
  const int e = t.node(1, 1);
  std::vector<double> flow(t.num_channels(), 0.0);
  // Half via (1,0), half via (0,1).
  flow[t.channel(t.node(0, 0), Dir::PX)] = 0.5;
  flow[t.channel(t.node(1, 0), Dir::PY)] = 0.5;
  flow[t.channel(t.node(0, 0), Dir::PY)] = 0.5;
  flow[t.channel(t.node(0, 1), Dir::PX)] = 0.5;
  const auto paths = decompose_flow(t, e, flow);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_NEAR(paths[0].weight + paths[1].weight, 1.0, 1e-12);
}

}  // namespace
}  // namespace tcr
