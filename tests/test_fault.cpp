// Fault injection (tcr::fault) proving the robustness machinery:
//  * ULP model perturbation is deterministic and keeps problems solvable;
//  * each recovery-ladder stage demonstrably rescues a seeded breakdown;
//  * corrupted "optimal" extractions are caught by the certificate and
//    re-solved;
//  * simulator link-down faults deadlock the drain, transient global credit
//    stalls register as deadlock near-misses yet deliver every packet.
// The env-gated stress case at the bottom backs the CI fault-injection job.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "tcr/core/tradeoff.hpp"
#include "tcr/fault/fault.hpp"
#include "tcr/graph/torus.hpp"
#include "tcr/lp/certify.hpp"
#include "tcr/lp/simplex.hpp"
#include "tcr/obs/registry.hpp"
#include "tcr/routing/dor.hpp"
#include "tcr/sim/simulator.hpp"
#include "tcr/util/rng.hpp"

namespace tcr {
namespace {

using lp::kInf;
using lp::Model;
using lp::RowType;
using lp::Sense;
using lp::Status;

// A small LP with a unique, easily-checked optimum: max 3x + 5y, opt 36.
Model textbook() {
  Model m;
  m.set_sense(Sense::Maximize);
  const int x = m.add_col(0, kInf, 3);
  const int y = m.add_col(0, kInf, 5);
  m.add_row(RowType::LE, 4, {{x, 1.0}});
  m.add_row(RowType::LE, 12, {{y, 2.0}});
  m.add_row(RowType::LE, 18, {{x, 3.0}, {y, 2.0}});
  return m;
}

// A model big enough to pivot for a while (so eta faults have etas to hit).
Model chain_model(int n) {
  Model m;
  Rng rng(55);
  std::vector<int> x(n);
  for (int i = 0; i < n; ++i) x[i] = m.add_col(0, 2.0, rng.uniform(0.1, 2.0));
  for (int i = 0; i + 1 < n; ++i) {
    m.add_row(RowType::GE, 0.5, {{x[i], 1.0}, {x[i + 1], 1.0}});
  }
  return m;
}

long counter_value(const char* name) {
  return obs::Registry::instance().counter(name).value();
}

// ---- ULP perturbation --------------------------------------------------

TEST(FaultUlp, DeterministicAndSolvable) {
  const Model m = textbook();
  const Model a = fault::perturb_model_ulp(m, 123, 4);
  const Model b = fault::perturb_model_ulp(m, 123, 4);
  const Model c = fault::perturb_model_ulp(m, 124, 4);
  bool identical_ab = true, identical_ac = true;
  for (int j = 0; j < m.num_cols(); ++j) {
    identical_ab &= a.cost(j) == b.cost(j);
    identical_ac &= a.cost(j) == c.cost(j);
    // Bounds must be byte-identical to the original.
    EXPECT_EQ(a.lower(j), m.lower(j));
    EXPECT_EQ(a.upper(j), m.upper(j));
  }
  for (std::size_t t = 0; t < m.num_terms(); ++t) {
    identical_ab &= a.triplets()[t].value == b.triplets()[t].value;
    identical_ac &= a.triplets()[t].value == c.triplets()[t].value;
  }
  EXPECT_TRUE(identical_ab);
  EXPECT_FALSE(identical_ac);  // different seed, different jitter

  const auto sol = lp::solve(a);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_TRUE(sol.certificate.ok()) << sol.certificate.summary();
  EXPECT_NEAR(sol.objective, 36.0, 1e-9);  // ULP jitter is invisible at 1e-9
}

TEST(FaultUlp, ZeroUlpsIsIdentity) {
  const Model m = textbook();
  const Model a = fault::perturb_model_ulp(m, 7, 0);
  for (int j = 0; j < m.num_cols(); ++j) EXPECT_EQ(a.cost(j), m.cost(j));
  for (int i = 0; i < m.num_rows(); ++i) EXPECT_EQ(a.rhs(i), m.rhs(i));
}

// ---- recovery-ladder rescues ------------------------------------------

TEST(FaultLadder, ReseedRescuesRefactorFailure) {
  fault::ScopedSimplexFaults faults;
  faults.hooks().fail_refactors = 1;  // break the first attempt's first factor
  const long rescued0 = counter_value("lp.recovery.rescued.reseed");

  const auto sol = lp::solve(textbook());
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_TRUE(sol.certificate.ok());
  EXPECT_NEAR(sol.objective, 36.0, 1e-9);
  EXPECT_EQ(faults.hooks().refactor_failures_injected.load(), 1);
  EXPECT_EQ(counter_value("lp.recovery.rescued.reseed"), rescued0 + 1);
}

TEST(FaultLadder, EquilibrateRescuesWhenReseedDisabled) {
  fault::ScopedSimplexFaults faults;
  faults.hooks().fail_refactors = 1;
  const long rescued0 = counter_value("lp.recovery.rescued.equilibrate");

  lp::SimplexOptions opts;
  opts.recover_reseed = false;
  const auto sol = lp::solve(textbook(), opts);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_TRUE(sol.certificate.ok());
  EXPECT_NEAR(sol.objective, 36.0, 1e-9);
  EXPECT_EQ(counter_value("lp.recovery.rescued.equilibrate"), rescued0 + 1);
}

TEST(FaultLadder, CarefulRescuesWhenEarlierStagesDisabled) {
  fault::ScopedSimplexFaults faults;
  faults.hooks().fail_refactors = 1;
  const long rescued0 = counter_value("lp.recovery.rescued.careful");

  lp::SimplexOptions opts;
  opts.recover_reseed = false;
  opts.recover_equilibrate = false;
  const auto sol = lp::solve(textbook(), opts);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_TRUE(sol.certificate.ok());
  EXPECT_EQ(counter_value("lp.recovery.rescued.careful"), rescued0 + 1);
}

TEST(FaultLadder, DenseRescuesPersistentSparseFailure) {
  fault::ScopedSimplexFaults faults;
  faults.hooks().fail_refactors = 1'000'000;  // every sparse attempt breaks
  const long rescued0 = counter_value("lp.recovery.rescued.dense");

  const auto sol = lp::solve(textbook());
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_TRUE(sol.certificate.ok());
  EXPECT_NEAR(sol.objective, 36.0, 1e-9);
  EXPECT_EQ(counter_value("lp.recovery.rescued.dense"), rescued0 + 1);
  // The three sparse stages each consumed at least one injected failure.
  EXPECT_GE(faults.hooks().refactor_failures_injected.load(), 4);
}

TEST(FaultLadder, ExhaustionKeepsFirstAttemptDiagnosis) {
  fault::ScopedSimplexFaults faults;
  faults.hooks().fail_refactors = 1'000'000;
  const long exhausted0 = counter_value("lp.recovery.exhausted");

  lp::SimplexOptions opts;
  opts.recover_dense = false;  // nothing can succeed now
  const auto sol = lp::solve(textbook(), opts);
  EXPECT_EQ(sol.status, Status::Numerical);
  EXPECT_NE(sol.note.find("recovery ladder exhausted"), std::string::npos) << sol.note;
  EXPECT_NE(sol.note.find("first attempt"), std::string::npos) << sol.note;
  EXPECT_EQ(counter_value("lp.recovery.exhausted"), exhausted0 + 1);
}

TEST(FaultLadder, DisabledLadderReturnsBreakdown) {
  fault::ScopedSimplexFaults faults;
  faults.hooks().fail_refactors = 1;

  lp::SimplexOptions opts;
  opts.max_recovery_stages = 0;
  const auto sol = lp::solve(textbook(), opts);
  EXPECT_EQ(sol.status, Status::Numerical);
}

TEST(FaultLadder, CorruptedExtractionCaughtAndResolved) {
  fault::ScopedSimplexFaults faults;
  faults.hooks().solution_corruption = 0.75;
  faults.hooks().corrupt_solutions = 1;  // silently wrong "optimum" once
  const long attempts0 = counter_value("lp.recovery.attempts");

  const auto sol = lp::solve(textbook());
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_TRUE(sol.certificate.ok()) << sol.certificate.summary();
  EXPECT_NEAR(sol.objective, 36.0, 1e-9);
  EXPECT_EQ(faults.hooks().corruptions_injected.load(), 1);
  EXPECT_GT(counter_value("lp.recovery.attempts"), attempts0);
}

TEST(FaultLadder, CorruptionUndetectedWithoutCertification) {
  fault::ScopedSimplexFaults faults;
  faults.hooks().solution_corruption = 0.75;
  faults.hooks().corrupt_solutions = 1;

  lp::SimplexOptions opts;
  opts.certify = false;  // the control: no checker, the bad point sails through
  const auto sol = lp::solve(textbook(), opts);
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_NEAR(sol.x[0], 2.75, 1e-9);  // corrupted value survives
}

TEST(FaultLadder, EtaDriftEndsCertified) {
  fault::ScopedSimplexFaults faults;
  faults.hooks().eta_drift = 1e-4;
  faults.hooks().drift_etas = 25;

  const auto sol = lp::solve(chain_model(120));
  ASSERT_EQ(sol.status, Status::Optimal);
  EXPECT_TRUE(sol.certificate.ok()) << sol.certificate.summary();
  EXPECT_GT(faults.hooks().eta_drifts_injected.load(), 0);
}

// ---- simulator faults --------------------------------------------------

TEST(FaultSim, PermanentLinkDownDeadlocksTheDrain) {
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  fault::SimFaultPlan plan;
  plan.links.push_back({.channel = 0, .from_cycle = 0, .until_cycle = 1L << 30});

  SimConfig cfg;
  cfg.warmup_cycles = 300;
  cfg.measure_cycles = 600;
  cfg.drain_cycles = 4000;
  cfg.deadlock_threshold = 400;
  cfg.faults = &plan;
  const long deadlocks0 = counter_value("sim.deadlocks");
  const SimStats s = simulate(dor, 0.2, {}, cfg);
  // Packets routed over channel 0 can never advance; once injection stops
  // the stuck flits trip the watchdog.
  EXPECT_TRUE(s.deadlocked);
  EXPECT_LT(s.ejected, s.injected);
  EXPECT_EQ(counter_value("sim.deadlocks"), deadlocks0 + 1);
  EXPECT_GT(counter_value("sim.fault.link_down_cycles"), 0);
}

TEST(FaultSim, TransientGlobalStallIsNearMissNotDeadlock) {
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  fault::SimFaultPlan plan;
  // Stall every channel/VC for 250 cycles mid-warmup: longer than half the
  // watchdog threshold (near-miss) but shorter than the threshold (no
  // deadlock verdict).
  for (int c = 0; c < t.num_channels(); ++c) {
    plan.stalls.push_back({.channel = c, .vc = -1, .from_cycle = 200, .until_cycle = 450});
  }

  SimConfig cfg;
  cfg.warmup_cycles = 1000;
  cfg.measure_cycles = 800;
  cfg.drain_cycles = 8000;
  cfg.deadlock_threshold = 400;
  cfg.faults = &plan;
  const long near0 = counter_value("sim.deadlock_near_miss");
  const SimStats s = simulate(dor, 0.05, {}, cfg);
  EXPECT_FALSE(s.deadlocked);
  EXPECT_EQ(s.ejected, s.injected);  // every packet still delivered
  EXPECT_GT(counter_value("sim.deadlock_near_miss"), near0);
  EXPECT_GT(counter_value("sim.fault.credit_stalls"), 0);
}

TEST(FaultSim, RandomPlansAreDeterministicAndInRange) {
  const auto a = fault::random_sim_faults(32, 4, 9001, 5, 7, 100, 400, 50);
  const auto b = fault::random_sim_faults(32, 4, 9001, 5, 7, 100, 400, 50);
  ASSERT_EQ(a.links.size(), 5u);
  ASSERT_EQ(a.stalls.size(), 7u);
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_EQ(a.links[i].channel, b.links[i].channel);
    EXPECT_EQ(a.links[i].from_cycle, b.links[i].from_cycle);
    EXPECT_GE(a.links[i].channel, 0);
    EXPECT_LT(a.links[i].channel, 32);
    EXPECT_GE(a.links[i].from_cycle, 100);
    EXPECT_LT(a.links[i].from_cycle, 500);
    EXPECT_EQ(a.links[i].until_cycle, a.links[i].from_cycle + 50);
  }
  for (std::size_t i = 0; i < a.stalls.size(); ++i) {
    EXPECT_EQ(a.stalls[i].channel, b.stalls[i].channel);
    EXPECT_GE(a.stalls[i].vc, 0);
    EXPECT_LT(a.stalls[i].vc, 4);
  }
  EXPECT_TRUE(a.link_down(a.links[0].channel, a.links[0].from_cycle));
  EXPECT_FALSE(a.link_down(a.links[0].channel, a.links[0].until_cycle));
}

// ---- CI stress case ----------------------------------------------------

// Enabled by TCR_FAULT_STRESS=1: a seed matrix of perturbed models solved
// under injected refactorization failures and extraction corruptions; every
// accepted solve must carry a passing certificate. Failing certificates are
// written (one JSON line each) to $TCR_CERT_ARTIFACT_DIR for CI upload.
TEST(FaultStress, SeedMatrixSurvivesInjection) {
  const char* enabled = std::getenv("TCR_FAULT_STRESS");
  if (enabled == nullptr || std::string(enabled) == "0") {
    GTEST_SKIP() << "set TCR_FAULT_STRESS=1 to run the fault stress matrix";
  }
  const char* artifact_dir = std::getenv("TCR_CERT_ARTIFACT_DIR");
  int failures = 0;

  Rng gen(0xfa11);
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    // A random bounded LP, ULP-perturbed so no two seeds see identical data.
    Model base;
    const int cols = 4 + static_cast<int>(gen.below(10));
    for (int j = 0; j < cols; ++j) base.add_col(0, gen.uniform(0.5, 4.0), gen.uniform(-3, 3));
    for (int i = 0; i < 3 + static_cast<int>(gen.below(8)); ++i) {
      const int row = base.add_row(gen.uniform() < 0.5 ? RowType::LE : RowType::GE,
                                   gen.uniform(-1, 3));
      for (int j = 0; j < cols; ++j) {
        if (gen.uniform() < 0.5) base.add_term(row, j, gen.uniform(-2, 2));
      }
    }
    const Model m = fault::perturb_model_ulp(base, seed, 8);

    fault::ScopedSimplexFaults faults;
    faults.hooks().fail_refactors = static_cast<long>(seed % 3);
    faults.hooks().solution_corruption = 0.5;
    faults.hooks().corrupt_solutions = static_cast<long>(seed % 2);

    const auto sol = lp::solve(m);
    if (sol.status != Status::Optimal) continue;  // infeasible draws are fine
    if (sol.certificate.ok()) continue;
    ++failures;
    ADD_FAILURE() << "seed " << seed
                  << ": accepted solve without passing certificate: "
                  << sol.certificate.summary();
    if (artifact_dir != nullptr) {
      std::ofstream out(std::string(artifact_dir) + "/failed_certificate_seed" +
                        std::to_string(seed) + ".json");
      out << "{\"seed\": " << seed << ", \"pass\": false, \"worst\": "
          << sol.certificate.worst() << ", \"reason\": \"" << sol.certificate.reason
          << "\", \"note\": \"" << sol.note << "\"}\n";
    }
  }
  EXPECT_EQ(failures, 0);
}

// Enabled by TCR_FAULT_STRESS=1: a warm-started tradeoff sweep under
// injected refactorization failures. The warm chain hands each point a basis
// the previous (possibly recovery-laddered) solve produced, so this
// exercises warm adoption on top of the fault machinery; every point must
// still come back with a certified optimum matching a fault-free cold sweep.
TEST(FaultStress, WarmSweepSurvivesInjection) {
  const char* enabled = std::getenv("TCR_FAULT_STRESS");
  if (enabled == nullptr || std::string(enabled) == "0") {
    GTEST_SKIP() << "set TCR_FAULT_STRESS=1 to run the fault stress matrix";
  }
  const Torus torus(4);
  const std::vector<double> grid = locality_grid(1.0, 2.0, 5);
  SweepConfig cfg;
  cfg.warm_start = true;
  cfg.chains = 1;

  const auto clean = worst_case_tradeoff(torus, grid, {}, nullptr, cfg);

  fault::ScopedSimplexFaults faults;
  faults.hooks().fail_refactors = 2;
  const auto faulted = worst_case_tradeoff(torus, grid, {}, nullptr, cfg);

  ASSERT_EQ(faulted.size(), clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    ASSERT_TRUE(clean[i].solved()) << "clean point " << i << ": " << clean[i].note;
    ASSERT_TRUE(faulted[i].solved()) << "faulted point " << i << ": " << faulted[i].note;
    EXPECT_TRUE(faulted[i].certificate.pass) << faulted[i].certificate.summary();
    EXPECT_NEAR(faulted[i].capacity_fraction, clean[i].capacity_fraction, 1e-8)
        << "point " << i;
  }
}

}  // namespace
}  // namespace tcr
