// The Appendix dual (19): strong duality against the primal path designs,
// and validity of the Birkhoff adversary certificate.
#include <gtest/gtest.h>

#include "tcr/core/dual.hpp"
#include "tcr/core/path_design.hpp"
#include "tcr/metrics/worst_case.hpp"
#include "tcr/routing/two_turn.hpp"
#include "tcr/routing/dor.hpp"

namespace tcr {
namespace {

PathFamily two_turn_family() {
  return [](const Torus& t, int e) { return enumerate_two_turn_paths(t, e); };
}

PathFamily minimal_family() {
  return [](const Torus& t, int e) { return enumerate_minimal_paths(t, e); };
}

TEST(DualDesign, StrongDualityMinimalK3) {
  const Torus t(3);
  PathDesignConfig cfg;
  cfg.objective = DesignObjective::WorstCase;
  cfg.lexicographic_locality = false;
  const auto primal = design_over_paths(t, "MIN-WC", minimal_family(), cfg);
  ASSERT_EQ(primal.status, lp::Status::Optimal);

  const auto dual = dual_worst_case_design(t, minimal_family());
  ASSERT_EQ(dual.status, lp::Status::Optimal);
  EXPECT_NEAR(dual.objective, primal.objective, 1e-5);
}

TEST(DualDesign, CertificateIsBirkhoffBlend) {
  const Torus t(3);
  const auto dual = dual_worst_case_design(t, minimal_family());
  ASSERT_EQ(dual.status, lp::Status::Optimal);

  // sum_c phi_c = 1 and each A^c has row/column sums phi_c with a >= 0 —
  // i.e. A^c / phi_c is doubly stochastic: a blend of permutations
  // (Birkhoff), exactly the paper's interpretation of the dual.
  double total = 0.0;
  for (double p : dual.phi) {
    EXPECT_GE(p, -1e-9);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);

  for (int c = 0; c < t.num_channels(); ++c) {
    const auto& a = dual.adversary[c];
    for (double rs : a.row_sums()) EXPECT_NEAR(rs, dual.phi[c], 1e-6);
    for (double cs : a.col_sums()) EXPECT_NEAR(cs, dual.phi[c], 1e-6);
    for (int i = 0; i < a.rows(); ++i)
      for (int j = 0; j < a.cols(); ++j) EXPECT_GE(a(i, j), -1e-9);
  }
}

TEST(DualDesign, ObjectiveBoundsAnyFamilyAlgorithm) {
  // Weak duality: the dual optimum is a lower bound on gamma_wc of *every*
  // routing over the family — in particular DOR's and ROMM's, whose paths
  // are subsets of the minimal family.
  const Torus t(3);
  const auto dual = dual_worst_case_design(t, minimal_family());
  ASSERT_EQ(dual.status, lp::Status::Optimal);
  EXPECT_LE(dual.objective, worst_case(make_dor(t)).gamma + 1e-6);
}

// The dual over the full 2-turn family is exponentially more degenerate and
// left out of the default suite; it is exercised (and strong duality holds)
// at higher iteration budgets.

}  // namespace
}  // namespace tcr
