// TorusSymmetry: the dihedral point group used to fold the design LPs.
// These properties are exactly what the folding in tcr/core relies on.
#include <gtest/gtest.h>

#include <set>

#include "tcr/graph/symmetry.hpp"
#include "tcr/routing/dor.hpp"

namespace tcr {
namespace {

class Symmetry : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Radices, Symmetry, ::testing::Values(3, 4, 5, 8));

TEST_P(Symmetry, EveryElementFixesNodeZero) {
  const Torus t(GetParam());
  const TorusSymmetry sym(t);
  for (int g = 0; g < TorusSymmetry::kOrder; ++g) EXPECT_EQ(sym.map_node(g, 0), 0);
}

TEST_P(Symmetry, NodeMapsAreBijections) {
  const Torus t(GetParam());
  const TorusSymmetry sym(t);
  for (int g = 0; g < TorusSymmetry::kOrder; ++g) {
    std::set<int> image;
    for (int n = 0; n < t.num_nodes(); ++n) image.insert(sym.map_node(g, n));
    EXPECT_EQ(static_cast<int>(image.size()), t.num_nodes()) << "g=" << g;
  }
}

TEST_P(Symmetry, ChannelMapsAreGraphAutomorphisms) {
  // g must map the channel (m -> m') to a channel (g(m) -> g(m')).
  const Torus t(GetParam());
  const TorusSymmetry sym(t);
  for (int g = 0; g < TorusSymmetry::kOrder; ++g) {
    std::set<int> image;
    for (int c = 0; c < t.num_channels(); ++c) {
      const int cg = sym.map_channel(g, c);
      image.insert(cg);
      EXPECT_EQ(t.channel_src(cg), sym.map_node(g, t.channel_src(c)));
      EXPECT_EQ(t.channel_dst(cg), sym.map_node(g, t.channel_dst(c)));
    }
    EXPECT_EQ(static_cast<int>(image.size()), t.num_channels()) << "g=" << g;
  }
}

TEST_P(Symmetry, MapsPreserveDistances) {
  const Torus t(GetParam());
  const TorusSymmetry sym(t);
  for (int g = 0; g < TorusSymmetry::kOrder; ++g) {
    for (int a = 0; a < t.num_nodes(); a += 3) {
      for (int b = 0; b < t.num_nodes(); b += 2) {
        EXPECT_EQ(t.min_dist(sym.map_node(g, a), sym.map_node(g, b)), t.min_dist(a, b));
      }
    }
  }
}

TEST_P(Symmetry, PathImagesAreValidPaths) {
  const Torus t(GetParam());
  const TorusSymmetry sym(t);
  const Digraph graph = t.graph();
  const TorusRouting dor = make_dor(t);
  for (int e = 1; e < t.num_nodes(); e += 5) {
    for (const auto& wp : dor.paths(e)) {
      for (int g = 0; g < TorusSymmetry::kOrder; ++g) {
        const Path q = sym.map_path(g, wp.path);
        EXPECT_EQ(q.src, 0);
        EXPECT_EQ(q.dst, sym.map_node(g, e));
        EXPECT_TRUE(path_is_valid(graph, q));
        EXPECT_EQ(q.length(), wp.path.length());
      }
    }
  }
}

TEST_P(Symmetry, OrbitRepsArePartitionInvariants) {
  // node_rep / pair_rep must be constant on orbits (the property the LP
  // variable-folding uses).
  const Torus t(GetParam());
  const TorusSymmetry sym(t);
  for (int e = 1; e < t.num_nodes(); ++e) {
    for (int g = 0; g < TorusSymmetry::kOrder; ++g) {
      EXPECT_EQ(sym.node_rep(sym.map_node(g, e)), sym.node_rep(e));
    }
  }
  for (int e = 1; e < t.num_nodes(); e += 7) {
    for (int c = 0; c < t.num_channels(); c += 11) {
      const long long rep = sym.pair_rep(e, c);
      for (int g = 0; g < TorusSymmetry::kOrder; ++g) {
        EXPECT_EQ(sym.pair_rep(sym.map_node(g, e), sym.map_channel(g, c)), rep);
      }
    }
  }
}

TEST_P(Symmetry, GroupClosure) {
  // Composing any two elements acts like some element of the group
  // (verified pointwise on nodes).
  const Torus t(GetParam());
  const TorusSymmetry sym(t);
  const int n = t.num_nodes();
  for (int g1 = 0; g1 < TorusSymmetry::kOrder; ++g1) {
    for (int g2 = 0; g2 < TorusSymmetry::kOrder; ++g2) {
      int found = -1;
      for (int g3 = 0; g3 < TorusSymmetry::kOrder && found < 0; ++g3) {
        bool match = true;
        for (int nd = 0; nd < n && match; ++nd) {
          match = sym.map_node(g3, nd) == sym.map_node(g2, sym.map_node(g1, nd));
        }
        if (match) found = g3;
      }
      EXPECT_GE(found, 0) << "g1=" << g1 << " g2=" << g2;
    }
  }
}

TEST(Symmetry, OrbitSizesDivideGroupOrder) {
  const Torus t(4);
  const TorusSymmetry sym(t);
  for (int e = 1; e < t.num_nodes(); ++e) {
    std::set<int> orbit;
    for (int g = 0; g < TorusSymmetry::kOrder; ++g) orbit.insert(sym.map_node(g, e));
    EXPECT_EQ(TorusSymmetry::kOrder % orbit.size(), 0u) << "e=" << e;
  }
}

}  // namespace
}  // namespace tcr
