// Property tests: the sparse Markowitz LU must agree with the dense oracle
// on random sparse invertible systems of varying size and density, detect
// singularity, and survive permutation-like (network-basis-shaped) matrices.
#include <gtest/gtest.h>

#include <cmath>

#include "tcr/lin/dense_lu.hpp"
#include "tcr/lin/sparse_lu.hpp"
#include "tcr/util/rng.hpp"

namespace tcr {
namespace {

struct RandomSystem {
  SparseMatrix a;
  DenseMatrix dense;
  std::vector<int> basis;
};

RandomSystem random_system(Rng& rng, int m, double density) {
  DenseMatrix dense(m, m);
  std::vector<Triplet> trips;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      if (i == j || rng.uniform() < density) {
        double v = rng.uniform(-2, 2);
        if (i == j) v += (v >= 0 ? 3.0 : -3.0);  // keep it comfortably nonsingular
        trips.push_back({i, j, v});
        dense(i, j) += v;
      }
    }
  }
  RandomSystem sys{SparseMatrix(m, m, trips), std::move(dense), {}};
  sys.basis.resize(m);
  for (int j = 0; j < m; ++j) sys.basis[j] = j;
  return sys;
}

TEST(SparseLU, MatchesDenseOracleAcrossSizes) {
  Rng rng(2024);
  for (int m : {1, 2, 3, 8, 25, 60, 150}) {
    for (double density : {0.05, 0.2, 0.6}) {
      auto sys = random_system(rng, m, density);
      DenseLU oracle;
      ASSERT_TRUE(oracle.factor(sys.dense));
      SparseLU lu;
      ASSERT_TRUE(lu.factor(sys.a, sys.basis)) << "m=" << m << " density=" << density;

      std::vector<double> b(m);
      for (auto& v : b) v = rng.uniform(-1, 1);
      std::vector<double> x;
      lu.solve(b, x);
      const auto x_ref = oracle.solve(b);
      for (int i = 0; i < m; ++i)
        ASSERT_NEAR(x[i], x_ref[i], 1e-7) << "m=" << m << " density=" << density;

      std::vector<double> c(m);
      for (auto& v : c) v = rng.uniform(-1, 1);
      std::vector<double> y;
      lu.solve_transpose(c, y);
      const auto y_ref = oracle.solve_transpose(c);
      for (int i = 0; i < m; ++i)
        ASSERT_NEAR(y[i], y_ref[i], 1e-7) << "m=" << m << " density=" << density;
    }
  }
}

TEST(SparseLU, ColumnSubsetBasis) {
  // Factor a basis that picks a subset of a wider matrix's columns.
  Rng rng(5);
  const int m = 20, n = 45;
  std::vector<Triplet> trips;
  for (int j = 0; j < n; ++j) {
    // Slack-like columns for j < m guarantee an invertible subset exists.
    if (j < m) trips.push_back({j, j, (j % 2) ? 1.0 : -1.0});
    for (int k = 0; k < 3; ++k) {
      trips.push_back({static_cast<int>(rng.below(m)), j, rng.uniform(-1, 1)});
    }
  }
  SparseMatrix a(m, n, trips);
  std::vector<int> basis(m);
  for (int j = 0; j < m; ++j) basis[j] = j;

  DenseMatrix dense(m, m);
  for (int j = 0; j < m; ++j)
    for (auto k = a.col_begin(j); k < a.col_end(j); ++k) dense(a.row_index(k), j) += a.value(k);
  DenseLU oracle;
  ASSERT_TRUE(oracle.factor(dense));

  SparseLU lu;
  ASSERT_TRUE(lu.factor(a, basis));
  std::vector<double> b(m);
  for (auto& v : b) v = rng.uniform(-3, 3);
  std::vector<double> x;
  lu.solve(b, x);
  const auto x_ref = oracle.solve(b);
  for (int i = 0; i < m; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-8);
}

TEST(SparseLU, PermutationMatrix) {
  Rng rng(13);
  const int m = 30;
  const auto perm = rng.permutation(m);
  std::vector<Triplet> trips;
  for (int j = 0; j < m; ++j) trips.push_back({perm[j], j, 1.0});
  SparseMatrix a(m, m, trips);
  std::vector<int> basis(m);
  for (int j = 0; j < m; ++j) basis[j] = j;
  SparseLU lu;
  ASSERT_TRUE(lu.factor(a, basis));
  std::vector<double> b(m);
  for (int i = 0; i < m; ++i) b[i] = i;
  std::vector<double> x;
  lu.solve(b, x);
  for (int j = 0; j < m; ++j) EXPECT_NEAR(x[j], b[perm[j]], 1e-12);
}

TEST(SparseLU, DetectsSingular) {
  // Two identical columns.
  std::vector<Triplet> trips = {{0, 0, 1.0}, {1, 0, 2.0}, {0, 1, 1.0}, {1, 1, 2.0}};
  SparseMatrix a(2, 2, trips);
  SparseLU lu;
  EXPECT_FALSE(lu.factor(a, {0, 1}));
  EXPECT_FALSE(lu.deficient_positions().empty());
}

TEST(SparseLU, EmptyColumnIsSingular) {
  std::vector<Triplet> trips = {{0, 0, 1.0}, {1, 1, 1.0}};
  SparseMatrix a(3, 3, trips);
  SparseLU lu;
  EXPECT_FALSE(lu.factor(a, {0, 1, 2}));
}

TEST(SparseLU, DuplicatedRowsAreSingular) {
  // Row 2 duplicates row 0, so the matrix has rank 2 < 3. The factorization
  // must report failure instead of dividing by a vanishing pivot.
  std::vector<Triplet> trips = {{0, 0, 1.0}, {0, 1, 2.0}, {0, 2, -1.0},
                                {1, 0, 3.0}, {1, 1, 1.0}, {1, 2, 4.0},
                                {2, 0, 1.0}, {2, 1, 2.0}, {2, 2, -1.0}};
  SparseMatrix a(3, 3, trips);
  SparseLU lu;
  EXPECT_FALSE(lu.factor(a, {0, 1, 2}));
  EXPECT_FALSE(lu.deficient_positions().empty());
}

TEST(SparseLU, ZeroMatrixIsSingular) {
  SparseMatrix a(4, 4, {});
  SparseLU lu;
  EXPECT_FALSE(lu.factor(a, {0, 1, 2, 3}));
  EXPECT_EQ(lu.deficient_positions().size(), 4u);
}

TEST(SparseLU, NearSingularSolvesStayFinite) {
  // Columns differ by ~1e-11: numerically awful but not rank-deficient to
  // working precision. Whatever factor() decides, a success must never leak
  // NaN/Inf out of solve().
  std::vector<Triplet> trips = {{0, 0, 1.0}, {1, 0, 1.0},
                                {0, 1, 1.0}, {1, 1, 1.0 + 1e-11}};
  SparseMatrix a(2, 2, trips);
  SparseLU lu;
  if (lu.factor(a, {0, 1})) {
    std::vector<double> x;
    lu.solve({1.0, 2.0}, x);
    for (double v : x) EXPECT_TRUE(std::isfinite(v)) << v;
    std::vector<double> y;
    lu.solve_transpose({1.0, -1.0}, y);
    for (double v : y) EXPECT_TRUE(std::isfinite(v)) << v;
  } else {
    EXPECT_FALSE(lu.deficient_positions().empty());
  }
}

TEST(SparseLU, RecoversAfterSingularFactor) {
  // A failed factorization must not poison the object: factoring a good
  // matrix afterwards works and solves correctly.
  std::vector<Triplet> bad = {{0, 0, 1.0}, {1, 0, 2.0}, {0, 1, 2.0}, {1, 1, 4.0}};
  SparseMatrix singular(2, 2, bad);
  SparseLU lu;
  ASSERT_FALSE(lu.factor(singular, {0, 1}));

  std::vector<Triplet> good = {{0, 0, 2.0}, {1, 1, 5.0}};
  SparseMatrix diag(2, 2, good);
  ASSERT_TRUE(lu.factor(diag, {0, 1}));
  EXPECT_TRUE(lu.deficient_positions().empty());
  std::vector<double> x;
  lu.solve({4.0, 10.0}, x);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SparseLU, RankOneUpdateShapedColumnsDetected) {
  // a_ij = u_i * v_j is rank one for any size; every factorization attempt
  // past the first pivot must flag the remaining positions as deficient.
  const int m = 6;
  std::vector<double> u{1, -2, 3, 0.5, -1.5, 2.5};
  std::vector<double> v{2, 1, -1, 3, 0.25, -0.75};
  std::vector<Triplet> trips;
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < m; ++j) trips.push_back({i, j, u[i] * v[j]});
  SparseMatrix a(m, m, trips);
  std::vector<int> basis(m);
  for (int j = 0; j < m; ++j) basis[j] = j;
  SparseLU lu;
  EXPECT_FALSE(lu.factor(a, basis));
  EXPECT_GE(lu.deficient_positions().size(), static_cast<std::size_t>(m - 1));
}

TEST(SparseLU, IdentityRoundTrip) {
  std::vector<Triplet> trips;
  const int m = 10;
  for (int j = 0; j < m; ++j) trips.push_back({j, j, 1.0});
  SparseMatrix a(m, m, trips);
  std::vector<int> basis(m);
  for (int j = 0; j < m; ++j) basis[j] = j;
  SparseLU lu;
  ASSERT_TRUE(lu.factor(a, basis));
  EXPECT_EQ(lu.factor_nnz(), static_cast<std::size_t>(m));
  std::vector<double> b{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<double> x;
  lu.solve(b, x);
  for (int i = 0; i < m; ++i) EXPECT_DOUBLE_EQ(x[i], b[i]);
  std::vector<double> y;
  lu.solve_transpose(b, y);
  for (int i = 0; i < m; ++i) EXPECT_DOUBLE_EQ(y[i], b[i]);
}

}  // namespace
}  // namespace tcr
