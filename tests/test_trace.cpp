// tcr::trace unit tests: span nesting and parent capture, cross-thread
// linkage through the ThreadPool, the disabled-tracer zero-cost path
// (asserted down to zero heap allocations), ring-buffer overflow
// accounting, the dual Span+Timer consumer, the Chrome trace-event
// exporter (validated by parsing its output back), and the trace-analysis
// library behind tools/tcr_trace.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "tcr/obs/registry.hpp"
#include "tcr/report/json_reader.hpp"
#include "tcr/trace/analysis.hpp"
#include "tcr/trace/export.hpp"
#include "tcr/trace/tracer.hpp"
#include "tcr/util/thread_pool.hpp"

// ---- global allocation counter ------------------------------------------
// Counts every heap allocation in the binary so the disabled-tracer test can
// assert the zero-allocation guarantee. All deallocation variants are
// defined to keep the overrides consistent.

namespace {
std::atomic<long> g_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n > 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n > 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
// GCC's -Wmismatched-new-delete doesn't model that the overridden operator
// new above is malloc-backed, so free() here is the matching deallocator.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace tcr::trace {
namespace {

// The tracer is process-wide; every test starts/stops it explicitly and the
// fixture guarantees a stopped, clean tracer on entry and exit.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().stop();
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().stop();
    Tracer::instance().clear();
    obs::Registry::instance().set_timing_enabled(false);
  }

  static const Event* find_span(const std::vector<Event>& events, std::string_view name) {
    for (const Event& e : events) {
      if (e.type == Event::Type::kSpan && e.name == name) return &e;
    }
    return nullptr;
  }
};

TEST_F(TraceTest, NestedSpansLinkToEnclosingSpan) {
  Tracer::instance().start();
  {
    Span outer("outer");
    outer.attr("k", 4);
    {
      Span inner("inner");
      inner.attr("deep", true);
      Span innermost("innermost");
    }
    Span sibling("sibling");
  }
  Tracer::instance().stop();

  const auto events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 4u);  // completion order: innermost first
  const Event* outer = find_span(events, "outer");
  const Event* inner = find_span(events, "inner");
  const Event* innermost = find_span(events, "innermost");
  const Event* sibling = find_span(events, "sibling");
  ASSERT_TRUE(outer && inner && innermost && sibling);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(innermost->parent, inner->id);
  EXPECT_EQ(sibling->parent, outer->id);  // cursor restored after inner ended
  EXPECT_GE(outer->dur_ns, inner->dur_ns);
  ASSERT_EQ(outer->attrs.size(), 1u);
  EXPECT_EQ(outer->attrs[0].key, "k");
  EXPECT_EQ(outer->attrs[0].i, 4);
}

TEST_F(TraceTest, ExplicitParentOverridesThreadCursor) {
  Tracer::instance().start();
  std::uint64_t parent_id = 0;
  {
    Span parent("parent");
    parent_id = parent.context().id;
    Span unrelated("unrelated");
    // Explicit parent wins over the live `unrelated` cursor.
    Span child("child", parent.context());
  }
  Tracer::instance().stop();
  const auto events = Tracer::instance().events();
  const Event* child = find_span(events, "child");
  ASSERT_TRUE(child != nullptr);
  EXPECT_EQ(child->parent, parent_id);
}

TEST_F(TraceTest, ThreadPoolTasksInheritSchedulersSpan) {
  Tracer::instance().start();
  std::uint64_t scheduler_span = 0;
  {
    ThreadPool pool(2);
    Span span("scheduler");
    scheduler_span = span.context().id;
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 8; ++i) {
      futs.push_back(pool.submit([] { Span worker("pool.task"); }));
    }
    for (auto& f : futs) f.get();
  }
  Tracer::instance().stop();

  const auto events = Tracer::instance().events();
  int tasks = 0;
  for (const Event& e : events) {
    if (e.name != "pool.task") continue;
    ++tasks;
    // The ambient-parent handoff installed by ThreadPool::submit() links the
    // worker-side span to the span live on the scheduling thread.
    EXPECT_EQ(e.parent, scheduler_span);
  }
  EXPECT_EQ(tasks, 8);
}

TEST_F(TraceTest, AdoptedParentIsRestoredAfterScope) {
  Tracer::instance().start();
  {
    ScopedParent adopt(SpanContext{77});
    EXPECT_EQ(current_context().id, 77u);
    {
      ScopedParent inner_adopt(SpanContext{99});
      EXPECT_EQ(current_context().id, 99u);
    }
    EXPECT_EQ(current_context().id, 77u);
  }
  EXPECT_EQ(current_context().id, 0u);
  Tracer::instance().stop();
}

TEST_F(TraceTest, DisabledTracerAllocatesNothing) {
  ASSERT_FALSE(enabled());
  // Warm up lazies (thread-local state, timer registration) outside the
  // measured window.
  auto& timer = obs::Registry::instance().timer("test.trace.disabled.timer");
  { Span warmup("warmup", timer); }
  counter("warmup.counter", 1.0);

  const long before = g_allocations.load();
  for (int i = 0; i < 100; ++i) {
    Span span("bench.disabled");
    span.attr("i", i);
    span.attr("x", 0.5);
    span.attr("s", "text");
    counter("disabled.counter", 1.0);
    Span timed("bench.disabled.timed", timer);
  }
  const long after = g_allocations.load();
  EXPECT_EQ(after - before, 0) << "disabled tracing must not allocate";
  EXPECT_EQ(timer.count(), 0);  // timing disabled too: no clock feeds
  EXPECT_TRUE(Tracer::instance().events().empty());
}

TEST_F(TraceTest, RingBufferOverwritesOldestAndCountsDrops) {
  TracerConfig cfg;
  cfg.capacity = 8;
  Tracer::instance().start(cfg);
  for (int i = 0; i < 20; ++i) {
    Span span("span." + std::to_string(i));
  }
  Tracer::instance().stop();

  EXPECT_EQ(Tracer::instance().dropped(), 12);
  const auto events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first: the 12 oldest were overwritten, spans 12..19 survive.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(events[i].name, "span." + std::to_string(12 + i));
  }
}

TEST_F(TraceTest, CountersCarryTheLiveSpanAsParent) {
  Tracer::instance().start();
  {
    Span span("solve");
    counter("objective", 2.5);
  }
  counter("rootless", 1.0);
  Tracer::instance().stop();

  const auto events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 3u);
  const Event* span = find_span(events, "solve");
  ASSERT_TRUE(span != nullptr);
  int counters = 0;
  for (const Event& e : events) {
    if (e.type != Event::Type::kCounter) continue;
    ++counters;
    if (e.name == "objective") {
      EXPECT_EQ(e.parent, span->id);
      EXPECT_DOUBLE_EQ(e.value, 2.5);
    } else {
      EXPECT_EQ(e.name, "rootless");
      EXPECT_EQ(e.parent, 0u);
    }
  }
  EXPECT_EQ(counters, 2);
}

TEST_F(TraceTest, SpanFeedsTimerAndTraceIndependently) {
  auto& timer = obs::Registry::instance().timer("test.trace.dual.timer");

  // Tracing on, timing off: event recorded, timer untouched.
  Tracer::instance().start();
  { Span span("dual", timer); }
  Tracer::instance().stop();
  EXPECT_EQ(timer.count(), 0);
  EXPECT_EQ(Tracer::instance().events().size(), 1u);

  // Timing on, tracing off: timer fed, no event recorded.
  Tracer::instance().clear();
  obs::Registry::instance().set_timing_enabled(true);
  { Span span("dual", timer); }
  obs::Registry::instance().set_timing_enabled(false);
  EXPECT_EQ(timer.count(), 1);
  EXPECT_GE(timer.wall_seconds(), 0.0);
  EXPECT_TRUE(Tracer::instance().events().empty());

  // end() is idempotent.
  Tracer::instance().start();
  {
    Span span("dual.end", timer);
    span.end();
    span.end();
  }
  Tracer::instance().stop();
  EXPECT_EQ(Tracer::instance().events().size(), 1u);
}

// ---- exporter -----------------------------------------------------------

TEST_F(TraceTest, ExporterEmitsValidChromeTraceJson) {
  Tracer::instance().start();
  {
    Span span("work");
    span.attr("k", 8);
    span.attr("ratio", 0.75);
    span.attr("warm", true);
    span.attr("mode", "chained");
    counter("track", 3.5);
  }
  Tracer::instance().stop();

  std::ostringstream os;
  write_chrome_trace(Tracer::instance().events(), os, /*dropped=*/5);

  obs::Json doc;
  std::string error;
  ASSERT_TRUE(report::parse_json(os.str(), &doc, &error)) << error;
  // Top-level schema: displayTimeUnit + traceEvents (array) + otherData.
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.find("displayTimeUnit") != nullptr);
  const obs::Json* other = doc.find("otherData");
  ASSERT_TRUE(other != nullptr);
  EXPECT_EQ(other->find("dropped_events")->as_int(), 5);
  const obs::Json* events = doc.find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->is_array());
  ASSERT_EQ(events->size(), 2u);

  int spans = 0, counters = 0;
  for (const obs::Json& e : events->elements()) {
    // Every event carries the required Chrome trace-event keys.
    ASSERT_TRUE(e.is_object());
    const std::string ph = e.find("ph")->as_string();
    EXPECT_TRUE(e.find("name") != nullptr);
    EXPECT_TRUE(e.find("pid") != nullptr);
    EXPECT_TRUE(e.find("tid") != nullptr);
    EXPECT_TRUE(e.find("ts") != nullptr);
    EXPECT_TRUE(e.find("cat") != nullptr);
    if (ph == "X") {
      ++spans;
      EXPECT_TRUE(e.find("dur") != nullptr);
      const obs::Json* args = e.find("args");
      ASSERT_TRUE(args != nullptr);
      EXPECT_GT(args->find("span_id")->as_int(), 0);
      EXPECT_EQ(args->find("k")->as_int(), 8);
      EXPECT_DOUBLE_EQ(args->find("ratio")->as_number(), 0.75);
      EXPECT_TRUE(args->find("warm")->as_bool());
      EXPECT_EQ(args->find("mode")->as_string(), "chained");
    } else {
      ASSERT_EQ(ph, "C");
      ++counters;
      EXPECT_DOUBLE_EQ(e.find("args")->find("value")->as_number(), 3.5);
    }
  }
  EXPECT_EQ(spans, 1);
  EXPECT_EQ(counters, 1);
}

// ---- analysis -----------------------------------------------------------

// Build a Trace by round-tripping live spans through the exporter + loader,
// which keeps the analysis tests honest about the real file format.
class AnalysisTest : public TraceTest {
 protected:
  static Trace exported(std::int64_t dropped = 0) {
    std::ostringstream os;
    write_chrome_trace(Tracer::instance().events(), os, dropped);
    Trace out;
    std::string error;
    EXPECT_TRUE(load_trace_string(os.str(), &out, &error)) << error;
    return out;
  }

  static bool load_trace_string(const std::string& text, Trace* out, std::string* error) {
    obs::Json doc;
    if (!report::parse_json(text, &doc, error)) return false;
    return load_trace(doc, out, error);
  }
};

TEST_F(AnalysisTest, LoadTraceRecoversSpansCountersAndDrops) {
  Tracer::instance().start();
  {
    Span outer("outer");
    counter("track", 1.0);
    Span inner("inner");
  }
  Tracer::instance().stop();
  const Trace trace = exported(/*dropped=*/3);
  EXPECT_EQ(trace.dropped_events, 3);
  ASSERT_EQ(trace.spans.size(), 2u);
  ASSERT_EQ(trace.counters.size(), 1u);
  const SpanRec& inner = trace.spans[0];  // completion order
  const SpanRec& outer = trace.spans[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(trace.counters[0].parent, outer.id);
}

TEST_F(AnalysisTest, AggregateComputesSelfTimeAcrossParents) {
  Tracer::instance().start();
  {
    Span outer("outer");
    { Span inner("inner"); }
    { Span inner("inner"); }
  }
  Tracer::instance().stop();
  const Trace trace = exported();
  const auto agg = aggregate(trace);
  ASSERT_TRUE(agg.count("outer"));
  ASSERT_TRUE(agg.count("inner"));
  EXPECT_EQ(agg.at("outer").count, 1);
  EXPECT_EQ(agg.at("inner").count, 2);
  // outer self = outer total - both inner children.
  EXPECT_EQ(agg.at("outer").self_ns,
            agg.at("outer").total_ns - agg.at("inner").total_ns);
  EXPECT_GE(agg.at("outer").self_ns, 0);
  EXPECT_GE(agg.at("inner").max_ns, agg.at("inner").total_ns / 2);
}

TEST_F(AnalysisTest, FlameJsonMirrorsAggregateInSelfTimeOrder) {
  Tracer::instance().start();
  {
    Span outer("outer");
    { Span inner("inner"); }
    { Span inner("inner"); }
  }
  Tracer::instance().stop();
  const Trace trace = exported(/*dropped=*/1);
  const obs::Json doc = flame_json(trace);
  EXPECT_EQ(doc.find("spans")->as_int(), 3);
  EXPECT_EQ(doc.find("counters")->as_int(), 0);
  EXPECT_EQ(doc.find("dropped")->as_int(), 1);
  const obs::Json* flame = doc.find("flame");
  ASSERT_NE(flame, nullptr);
  ASSERT_EQ(flame->elements().size(), 2u);
  const auto agg = aggregate(trace);
  std::int64_t prev_self = std::numeric_limits<std::int64_t>::max();
  for (const obs::Json& row : flame->elements()) {
    const std::string name = row.find("span")->as_string();
    ASSERT_TRUE(agg.count(name));
    const NameAgg& a = agg.at(name);
    EXPECT_EQ(row.find("count")->as_int(), a.count);
    EXPECT_EQ(row.find("total_ns")->as_int(), a.total_ns);
    EXPECT_EQ(row.find("self_ns")->as_int(), a.self_ns);
    EXPECT_EQ(row.find("max_ns")->as_int(), a.max_ns);
    EXPECT_EQ(row.find("avg_ns")->as_int(), a.count > 0 ? a.total_ns / a.count : 0);
    EXPECT_LE(row.find("self_ns")->as_int(), prev_self);  // sorted descending
    prev_self = row.find("self_ns")->as_int();
  }
}

TEST_F(AnalysisTest, SlowestSpansSortsByDuration) {
  Tracer::instance().start();
  for (int i = 0; i < 5; ++i) {
    Span span("s" + std::to_string(i));
  }
  Tracer::instance().stop();
  const Trace trace = exported();
  const auto slow = slowest_spans(trace, 3);
  ASSERT_EQ(slow.size(), 3u);
  EXPECT_GE(slow[0].dur_ns, slow[1].dur_ns);
  EXPECT_GE(slow[1].dur_ns, slow[2].dur_ns);
}

// Synthetic convergence stream: one lp.solve with a phase child, sampled
// counters showing progress / stall / progress, and refactor spans.
TEST_F(AnalysisTest, ConvergenceReportFindsStallsAndRefactors) {
  Tracer::instance().start();
  {
    Span solve("lp.solve");
    solve.attr("warm_start", "accepted");
    solve.attr("status", "optimal");
    {
      Span phase("lp.phase2");
      { Span refactor("lp.refactor"); }
      { Span refactor("lp.refactor"); }
      const double objectives[] = {10.0, 5.0, 5.0, 5.0, 1.0};
      for (int s = 0; s < 5; ++s) {
        counter("lp.iteration", 32.0 * (s + 1));
        counter("lp.objective", objectives[s]);
        counter("lp.primal_infeas", 0.5 / (s + 1));
        counter("lp.dual_infeas", 0.25 / (s + 1));
      }
    }
  }
  Tracer::instance().stop();
  const Trace trace = exported();
  const auto reports = convergence_reports(trace, /*stall_tol=*/1e-9);
  ASSERT_EQ(reports.size(), 1u);
  const SolveReport& r = reports[0];
  EXPECT_EQ(r.warm_start, "accepted");
  EXPECT_EQ(r.status, "optimal");
  EXPECT_EQ(r.iterations, 160);
  EXPECT_EQ(r.samples, 5);
  EXPECT_EQ(r.refactors, 2);
  EXPECT_DOUBLE_EQ(r.first_objective, 10.0);
  EXPECT_DOUBLE_EQ(r.last_objective, 1.0);
  // Samples 2->3 and 3->4 are flat: two stall windows, one 64-iteration run.
  EXPECT_EQ(r.stall_windows, 2);
  EXPECT_EQ(r.longest_stall_iters, 64);
  EXPECT_DOUBLE_EQ(r.final_primal_infeas, 0.1);
  EXPECT_DOUBLE_EQ(r.final_dual_infeas, 0.05);
}

TEST_F(AnalysisTest, DuplicateIterationSamplesAreNotStalls) {
  Tracer::instance().start();
  {
    Span solve("lp.solve");
    for (int s = 0; s < 2; ++s) {  // same iteration sampled twice
      counter("lp.iteration", 32.0);
      counter("lp.objective", 7.0);
    }
  }
  Tracer::instance().stop();
  const auto reports = convergence_reports(exported());
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].stall_windows, 0);
  EXPECT_EQ(reports[0].longest_stall_iters, 0);
}

TEST_F(AnalysisTest, SweepPointsAndDiff) {
  Tracer::instance().start();
  {
    Span sweep("sweep");
    for (int i = 0; i < 3; ++i) {
      Span point("sweep.point");
      point.attr("index", i);
      point.attr("warm_start", i == 0 ? "cold" : "accepted");
    }
  }
  Tracer::instance().stop();
  const Trace a = exported();
  const auto points = sweep_points(a);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].args.find("warm_start")->as_string(), "cold");
  EXPECT_EQ(points[2].args.find("index")->as_int(), 2);

  // Diff against a trace with a missing name and an extra name.
  Tracer::instance().start();
  {
    Span sweep("sweep");
    Span extra("cold.only");
  }
  Tracer::instance().stop();
  const Trace b = exported();
  const auto rows = diff(a, b);
  ASSERT_EQ(rows.size(), 3u);  // union: sweep, sweep.point, cold.only
  bool saw_point = false, saw_extra = false, saw_both = false;
  for (const DiffRow& row : rows) {
    if (row.name == "sweep.point") {
      saw_point = true;
      EXPECT_TRUE(row.a.has_value());
      EXPECT_FALSE(row.b.has_value());
    } else if (row.name == "cold.only") {
      saw_extra = true;
      EXPECT_FALSE(row.a.has_value());
      EXPECT_TRUE(row.b.has_value());
    } else if (row.name == "sweep") {
      saw_both = true;
      EXPECT_TRUE(row.a.has_value() && row.b.has_value());
    }
  }
  EXPECT_TRUE(saw_point && saw_extra && saw_both);
}

TEST_F(AnalysisTest, LoadTraceRejectsMalformedDocuments) {
  Trace out;
  std::string error;
  EXPECT_FALSE(load_trace(obs::Json(1), &out, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(load_trace(obs::Json::object(), &out, &error));
}

}  // namespace
}  // namespace tcr::trace
