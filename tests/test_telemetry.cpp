// tcr::telemetry: heartbeat stream round-trips (schema, sequencing, final
// beat), the incremental StreamReader (tailing across appends, torn-tail
// fuzz over every truncation length, hard corruption diagnostics), the
// tcr-top RunState/anomaly layer, and the determinism contract — a sweep
// with --heartbeat on must produce bitwise-identical points to one without.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "tcr/core/tradeoff.hpp"
#include "tcr/graph/torus.hpp"
#include "tcr/guard/guard.hpp"
#include "tcr/guard/journal.hpp"
#include "tcr/obs/json.hpp"
#include "tcr/report/json_reader.hpp"
#include "tcr/telemetry/inspect.hpp"
#include "tcr/telemetry/stream.hpp"
#include "tcr/telemetry/telemetry.hpp"

namespace tcr {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "telemetry_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamoff>(bytes.size()));
}

/// Every telemetry test stops any session it started; a stray active
/// session would leak into later tests (one session per process).
struct SessionCleanup {
  ~SessionCleanup() { telemetry::stop(); }
};

// ---- session round-trip --------------------------------------------------

TEST(Telemetry, StartStopRoundTripWritesMetaBeatsAndFinal) {
  SessionCleanup cleanup;
  const std::string path = temp_path("roundtrip.hb");
  std::remove(path.c_str());

  telemetry::HeartbeatConfig cfg;
  cfg.path = path;
  cfg.interval_seconds = 0.0;  // every poll emits
  cfg.bench = "unit_bench";
  std::string error;
  ASSERT_TRUE(telemetry::start(cfg, &error)) << error;
  EXPECT_TRUE(telemetry::active());

  // A second session must be refused while one is active.
  EXPECT_FALSE(telemetry::start(cfg, &error));

  telemetry::set_phase("unit");
  telemetry::heartbeat_now();
  telemetry::log(telemetry::Severity::Warn, "something odd");
  telemetry::heartbeat_now();
  telemetry::stop();
  EXPECT_FALSE(telemetry::active());

  const guard::JournalContents contents = guard::read_journal(path);
  ASSERT_TRUE(contents.ok) << contents.error;
  EXPECT_FALSE(contents.truncated_tail);
  // meta + 2 explicit beats + 1 event + the final beat from stop().
  ASSERT_EQ(contents.records.size(), 5u);

  obs::Json meta;
  ASSERT_TRUE(report::parse_json(contents.records[0], &meta, &error)) << error;
  EXPECT_EQ(meta.find("kind")->as_string(), "meta");
  EXPECT_EQ(meta.find("schema")->as_string(), "tcr-heartbeat-v1");
  EXPECT_EQ(meta.find("bench")->as_string(), "unit_bench");
  EXPECT_GT(meta.find("pid")->as_int(), 0);

  obs::Json event;
  ASSERT_TRUE(report::parse_json(contents.records[2], &event, &error)) << error;
  EXPECT_EQ(event.find("kind")->as_string(), "event");
  EXPECT_EQ(event.find("severity")->as_string(), "warn");
  EXPECT_EQ(event.find("message")->as_string(), "something odd");
  EXPECT_EQ(event.find("phase")->as_string(), "unit");

  obs::Json last;
  ASSERT_TRUE(report::parse_json(contents.records.back(), &last, &error)) << error;
  EXPECT_EQ(last.find("kind")->as_string(), "heartbeat");
  ASSERT_NE(last.find("final"), nullptr);
  EXPECT_TRUE(last.find("final")->as_bool());

  // Sequence numbers increase monotonically across beats and events.
  std::int64_t prev_seq = -1;
  for (std::size_t r = 1; r < contents.records.size(); ++r) {
    obs::Json rec;
    ASSERT_TRUE(report::parse_json(contents.records[r], &rec, &error)) << error;
    EXPECT_GT(rec.find("seq")->as_int(), prev_seq) << "record " << r;
    prev_seq = rec.find("seq")->as_int();
  }
}

TEST(Telemetry, DisabledEntryPointsAreNoOps) {
  ASSERT_FALSE(telemetry::active());
  // None of these may crash or create files while disabled.
  telemetry::poll();
  telemetry::log(telemetry::Severity::Info, "ignored");
  telemetry::set_phase("ignored");
  telemetry::sweep_begin(10);
  telemetry::sweep_point_done(true);
  telemetry::sim_progress(1, 2, 3, 4);
  telemetry::solver_progress(5, 6.0);
  telemetry::heartbeat_now();
  telemetry::stop();
}

TEST(Telemetry, StartRequiresAPath) {
  telemetry::HeartbeatConfig cfg;
  std::string error;
  EXPECT_FALSE(telemetry::start(cfg, &error));
  EXPECT_FALSE(error.empty());
}

// ---- incremental stream reader ------------------------------------------

TEST(TelemetryStream, TailsRecordsAcrossAppends) {
  const std::string path = temp_path("tail.hb");
  std::remove(path.c_str());

  telemetry::StreamReader reader(path);
  std::vector<obs::Json> out;
  std::string error;

  // Nothing yet: not an error, not opened.
  ASSERT_TRUE(reader.poll(&out, &error)) << error;
  EXPECT_FALSE(reader.opened());
  EXPECT_TRUE(out.empty());

  guard::JournalWriter writer;
  ASSERT_TRUE(writer.open(path, &error)) << error;
  ASSERT_TRUE(writer.append("{\"kind\":\"meta\",\"bench\":\"t\"}"));

  ASSERT_TRUE(reader.poll(&out, &error)) << error;
  EXPECT_TRUE(reader.opened());
  EXPECT_FALSE(reader.truncated_tail());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].find("kind")->as_string(), "meta");

  ASSERT_TRUE(writer.append("{\"kind\":\"heartbeat\",\"seq\":1}"));
  ASSERT_TRUE(writer.append("{\"kind\":\"heartbeat\",\"seq\":2}"));

  // Only the newly-appended records come back on the next poll.
  out.clear();
  ASSERT_TRUE(reader.poll(&out, &error)) << error;
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].find("seq")->as_int(), 1);
  EXPECT_EQ(out[1].find("seq")->as_int(), 2);
  EXPECT_EQ(reader.records_read(), 3);
}

// The torn-tail fuzz (satellite): for EVERY truncation length of a valid
// stream, the reader must either report the exact record prefix with the
// tail flagged, or (shorter than the magic) report nothing — never a hard
// error, never a wrong record. This is the journal corruption matrix
// applied to the telemetry reader.
TEST(TelemetryStream, TornTailFuzzEveryTruncationLength) {
  const std::string path = temp_path("fuzz_src.hb");
  std::remove(path.c_str());
  std::string error;
  std::vector<std::string> payloads = {
      "{\"kind\":\"meta\",\"bench\":\"fuzz\",\"pid\":42}",
      "{\"kind\":\"heartbeat\",\"seq\":0,\"uptime_ms\":10}",
      "{\"kind\":\"event\",\"seq\":1,\"severity\":\"info\",\"message\":\"hi\"}",
      "{\"kind\":\"heartbeat\",\"seq\":2,\"uptime_ms\":30,\"final\":true}",
  };
  {
    guard::JournalWriter writer;
    ASSERT_TRUE(writer.open(path, &error)) << error;
    for (const std::string& p : payloads) ASSERT_TRUE(writer.append(p));
  }
  const std::string full = slurp(path);
  ASSERT_GT(full.size(), guard::kJournalMagicSize);

  // Complete-record boundaries (file offsets) for the prefix expectation.
  std::vector<std::size_t> boundaries = {guard::kJournalMagicSize};
  for (const std::string& p : payloads) {
    boundaries.push_back(boundaries.back() + guard::kJournalHeaderSize + p.size());
  }

  const std::string cut_path = temp_path("fuzz_cut.hb");
  for (std::size_t len = 0; len <= full.size(); ++len) {
    spit(cut_path, full.substr(0, len));
    telemetry::StreamReader reader(cut_path);
    std::vector<obs::Json> out;
    ASSERT_TRUE(reader.poll(&out, &error)) << "len=" << len << ": " << error;

    // How many records are complete within `len` bytes?
    std::size_t want = 0;
    while (want + 1 < boundaries.size() && boundaries[want + 1] <= len) ++want;
    if (len < guard::kJournalMagicSize) {
      EXPECT_FALSE(reader.opened()) << "len=" << len;
      EXPECT_TRUE(out.empty()) << "len=" << len;
    } else {
      ASSERT_EQ(out.size(), want) << "len=" << len;
      for (std::size_t r = 0; r < want; ++r) {
        obs::Json ref;
        ASSERT_TRUE(report::parse_json(payloads[r], &ref, &error)) << error;
        EXPECT_EQ(out[r].dump(), ref.dump()) << "len=" << len << " record " << r;
      }
    }
    // The tail is flagged exactly when bytes extend past the last boundary.
    const bool at_boundary = len == 0 || len == boundaries[want];
    EXPECT_EQ(reader.truncated_tail(), !at_boundary) << "len=" << len;
  }
}

TEST(TelemetryStream, MidStreamCorruptionIsAHardError) {
  const std::string path = temp_path("corrupt.hb");
  std::remove(path.c_str());
  std::string error;
  {
    guard::JournalWriter writer;
    ASSERT_TRUE(writer.open(path, &error)) << error;
    ASSERT_TRUE(writer.append("{\"kind\":\"meta\"}"));
    ASSERT_TRUE(writer.append("{\"kind\":\"heartbeat\",\"seq\":0}"));
  }
  std::string bytes = slurp(path);
  // Flip one payload byte of the FIRST record: CRC mismatch with bytes
  // after it — the middle of the stream is corrupt, not a torn tail.
  bytes[guard::kJournalMagicSize + guard::kJournalHeaderSize + 2] ^= 0x20;
  spit(path, bytes);

  telemetry::StreamReader reader(path);
  std::vector<obs::Json> out;
  EXPECT_FALSE(reader.poll(&out, &error));
  EXPECT_NE(error.find("CRC mismatch"), std::string::npos) << error;
}

TEST(TelemetryStream, BadMagicIsAHardError) {
  const std::string path = temp_path("badmagic.hb");
  spit(path, "NOTAJRNLxxxxxxxxxxxxxxxx");
  telemetry::StreamReader reader(path);
  std::vector<obs::Json> out;
  std::string error;
  EXPECT_FALSE(reader.poll(&out, &error));
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
}

TEST(TelemetryStream, UnparsablePayloadIsAHardError) {
  const std::string path = temp_path("notjson.hb");
  std::remove(path.c_str());
  std::string error;
  {
    guard::JournalWriter writer;
    ASSERT_TRUE(writer.open(path, &error)) << error;
    ASSERT_TRUE(writer.append("this is not json"));
    ASSERT_TRUE(writer.append("{\"kind\":\"heartbeat\"}"));
  }
  telemetry::StreamReader reader(path);
  std::vector<obs::Json> out;
  EXPECT_FALSE(reader.poll(&out, &error));
  EXPECT_NE(error.find("not JSON"), std::string::npos) << error;
}

// ---- determinism: heartbeat on vs off ------------------------------------

void expect_same_points(const std::vector<TradeoffPoint>& a,
                        const std::vector<TradeoffPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bitwise comparison: NaN-safe via memcmp on the doubles.
    EXPECT_EQ(std::memcmp(&a[i].capacity_fraction, &b[i].capacity_fraction,
                          sizeof(double)),
              0)
        << "point " << i;
    EXPECT_EQ(a[i].locality, b[i].locality) << "point " << i;
    EXPECT_EQ(a[i].status, b[i].status) << "point " << i;
    EXPECT_EQ(a[i].warm_start, b[i].warm_start) << "point " << i;
    EXPECT_EQ(a[i].iterations, b[i].iterations) << "point " << i;
    EXPECT_EQ(a[i].provenance, b[i].provenance) << "point " << i;
  }
}

// The tentpole's determinism contract: a sweep run under an active
// heartbeat session (interval 0, so every cooperative site emits — maximal
// perturbation pressure) must produce bitwise-identical points to the same
// sweep with telemetry disabled. Referenced from telemetry.hpp.
TEST(Telemetry, SweepHeartbeatBitwiseDeterministic) {
  SessionCleanup cleanup;
  const Torus t(4);
  const std::vector<double> grid = locality_grid(1.0, 2.0, 4);

  const std::vector<TradeoffPoint> off = worst_case_tradeoff(t, grid);

  const std::string path = temp_path("sweep.hb");
  std::remove(path.c_str());
  telemetry::HeartbeatConfig cfg;
  cfg.path = path;
  cfg.interval_seconds = 0.0;
  cfg.bench = "determinism";
  std::string error;
  ASSERT_TRUE(telemetry::start(cfg, &error)) << error;
  const std::vector<TradeoffPoint> on = worst_case_tradeoff(t, grid);
  telemetry::stop();

  expect_same_points(off, on);

  // And the stream it wrote is a readable run: progress reaches 4/4 with
  // solver samples along the way.
  telemetry::StreamReader reader(path);
  std::vector<obs::Json> records;
  ASSERT_TRUE(reader.poll(&records, &error)) << error;
  EXPECT_FALSE(reader.truncated_tail());
  telemetry::RunState state;
  for (const obs::Json& rec : records) ASSERT_TRUE(state.apply(rec, &error)) << error;
  ASSERT_TRUE(state.finished);
  ASSERT_NE(state.last_beat(), nullptr);
  EXPECT_TRUE(state.last_beat()->has_progress);
  EXPECT_EQ(state.last_beat()->done, 4);
  EXPECT_EQ(state.last_beat()->total, 4);
  EXPECT_GT(state.cumulative_iterations(state.beats.size() - 1), 0);
}

// ---- RunState / anomaly layer -------------------------------------------

obs::Json parse(const std::string& text) {
  obs::Json v;
  std::string error;
  EXPECT_TRUE(report::parse_json(text, &v, &error)) << error;
  return v;
}

obs::Json make_beat(long seq, double uptime_s, std::int64_t iters, std::int64_t rss_kb) {
  obs::Json b = obs::Json::object();
  b.set("kind", "heartbeat");
  b.set("seq", seq);
  b.set("uptime_ms", static_cast<std::int64_t>(uptime_s * 1000));
  b.set("phase", "unit");
  obs::Json g = obs::Json::object();
  g.set("cancelled", false);
  g.set("iterations", iters);
  g.set("rss_kb", rss_kb);
  b.set("guard", std::move(g));
  return b;
}

TEST(TelemetryInspect, RunStateFoldsMetaBeatsAndEvents) {
  telemetry::RunState state;
  std::string error;
  ASSERT_TRUE(state.apply(
      parse("{\"kind\":\"meta\",\"schema\":\"tcr-heartbeat-v1\",\"bench\":\"b\","
            "\"pid\":7,\"interval_seconds\":0.5}"),
      &error))
      << error;
  ASSERT_TRUE(state.apply(
      parse("{\"kind\":\"heartbeat\",\"seq\":0,\"uptime_ms\":1000,\"phase\":\"sweep\","
            "\"progress\":{\"done\":2,\"total\":8,\"warm_adopted\":1}}"),
      &error))
      << error;
  ASSERT_TRUE(state.apply(
      parse("{\"kind\":\"event\",\"seq\":1,\"uptime_ms\":1500,\"severity\":\"warn\","
            "\"message\":\"m\"}"),
      &error))
      << error;
  // Unknown kinds are ignored (forward compatibility), not errors.
  ASSERT_TRUE(state.apply(parse("{\"kind\":\"novel\",\"x\":1}"), &error)) << error;

  EXPECT_TRUE(state.has_meta);
  EXPECT_EQ(state.bench, "b");
  EXPECT_EQ(state.pid, 7);
  ASSERT_EQ(state.beats.size(), 1u);
  ASSERT_EQ(state.events.size(), 1u);
  EXPECT_FALSE(state.finished);
  EXPECT_TRUE(state.beats[0].has_progress);
  EXPECT_EQ(state.beats[0].done, 2);
  // ETA from point throughput: 2 points in 1 s -> 6 remaining at 2/s = 3 s.
  EXPECT_NEAR(state.eta_seconds(), 3.0, 1e-12);

  EXPECT_FALSE(state.apply(parse("[1,2,3]"), &error));
}

TEST(TelemetryInspect, IterationRateUsesGuardTallyOrCounterDeltas) {
  telemetry::RunState with_token;
  std::string error;
  ASSERT_TRUE(with_token.apply(make_beat(0, 1.0, 1000, 100), &error)) << error;
  ASSERT_TRUE(with_token.apply(make_beat(1, 2.0, 3000, 100), &error)) << error;
  EXPECT_NEAR(with_token.iterations_per_sec(), 2000.0, 1e-9);

  // Without a token the obs counter deltas carry the rate instead.
  telemetry::RunState with_deltas;
  ASSERT_TRUE(with_deltas.apply(
      parse("{\"kind\":\"heartbeat\",\"seq\":0,\"uptime_ms\":1000,"
            "\"counters\":{\"lp.simplex.iterations\":500}}"),
      &error))
      << error;
  ASSERT_TRUE(with_deltas.apply(
      parse("{\"kind\":\"heartbeat\",\"seq\":1,\"uptime_ms\":3000,"
            "\"counters\":{\"lp.simplex.iterations\":700}}"),
      &error))
      << error;
  EXPECT_EQ(with_deltas.cumulative_iterations(1), 1200);
  EXPECT_NEAR(with_deltas.iterations_per_sec(), 350.0, 1e-9);
}

TEST(TelemetryInspect, DetectsIterationRateCollapse) {
  telemetry::RunState state;
  std::string error;
  // Steady 1000 iters/s for 7 beats, then one near-dead interval.
  for (long i = 0; i < 7; ++i) {
    ASSERT_TRUE(state.apply(make_beat(i, 1.0 * static_cast<double>(i),
                                      1000 * i, 1000),
                            &error))
        << error;
  }
  ASSERT_TRUE(state.apply(make_beat(7, 7.0, 6010, 1000), &error)) << error;

  const std::vector<telemetry::Anomaly> anomalies = telemetry::detect_anomalies(state);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, "iteration_rate_collapse");
}

TEST(TelemetryInspect, DetectsRssGrowth) {
  telemetry::RunState state;
  std::string error;
  // 100 MB/s growth, far past the 64 MB/s default warning slope.
  for (long i = 0; i < 6; ++i) {
    ASSERT_TRUE(state.apply(make_beat(i, 1.0 * static_cast<double>(i), 1000 * i,
                                      102400 * i),
                            &error))
        << error;
  }
  const std::vector<telemetry::Anomaly> anomalies = telemetry::detect_anomalies(state);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, "rss_growth");
}

obs::Json make_solver_beat(long seq, double uptime_s, long iters, double objective) {
  obs::Json b = make_beat(seq, uptime_s, 0, 1000);
  obs::Json s = obs::Json::object();
  s.set("iterations", static_cast<std::int64_t>(iters));
  s.set("objective", objective);
  b.set("solver", std::move(s));
  return b;
}

TEST(TelemetryInspect, DetectsConvergenceStallAndResetsOnNewSolve) {
  std::string error;
  // Iterations advance but the objective is flat: trace's stall criterion.
  telemetry::RunState stalled;
  ASSERT_TRUE(stalled.apply(make_solver_beat(0, 0.0, 100, 5.0), &error)) << error;
  for (long i = 1; i <= 4; ++i) {
    ASSERT_TRUE(stalled.apply(
        make_solver_beat(i, 0.5 * static_cast<double>(i), 100 + 50 * i, 5.0), &error))
        << error;
  }
  std::vector<telemetry::Anomaly> anomalies = telemetry::detect_anomalies(stalled);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].kind, "convergence_stall");

  // An iteration-count drop means a new solve started: the streak resets,
  // so three flat beats spread across two solves do not fire.
  telemetry::RunState reset;
  ASSERT_TRUE(reset.apply(make_solver_beat(0, 0.0, 100, 5.0), &error)) << error;
  ASSERT_TRUE(reset.apply(make_solver_beat(1, 0.5, 150, 5.0), &error)) << error;
  ASSERT_TRUE(reset.apply(make_solver_beat(2, 1.0, 200, 5.0), &error)) << error;
  ASSERT_TRUE(reset.apply(make_solver_beat(3, 1.5, 50, 5.0), &error)) << error;
  ASSERT_TRUE(reset.apply(make_solver_beat(4, 2.0, 90, 5.0), &error)) << error;
  EXPECT_TRUE(telemetry::detect_anomalies(reset).empty());

  // A genuinely improving objective never fires.
  telemetry::RunState improving;
  for (long i = 0; i <= 4; ++i) {
    ASSERT_TRUE(improving.apply(make_solver_beat(i, 0.5 * static_cast<double>(i),
                                                 100 + 50 * i,
                                                 5.0 + static_cast<double>(i)),
                                &error))
        << error;
  }
  EXPECT_TRUE(telemetry::detect_anomalies(improving).empty());
}

TEST(TelemetryInspect, RenderReportsTruncationAndFinish) {
  telemetry::RunState state;
  std::string error;
  ASSERT_TRUE(state.apply(parse("{\"kind\":\"meta\",\"bench\":\"b\",\"pid\":7}"),
                          &error))
      << error;
  ASSERT_TRUE(state.apply(make_beat(0, 1.0, 10, 500), &error)) << error;

  // The satellite surface: a crashed run's torn stream is called out.
  const std::string torn = telemetry::render_table(state, {}, /*truncated_tail=*/true);
  EXPECT_NE(torn.find("stream truncated (crash?)"), std::string::npos) << torn;
  const std::string live = telemetry::render_table(state, {}, /*truncated_tail=*/false);
  EXPECT_NE(live.find("[live]"), std::string::npos) << live;

  const obs::Json js = telemetry::state_json(state, {}, /*truncated_tail=*/true);
  EXPECT_TRUE(js.find("truncated_tail")->as_bool());
  EXPECT_EQ(js.find("bench")->as_string(), "b");
  EXPECT_EQ(js.find("beats")->as_int(), 1);
}

}  // namespace
}  // namespace tcr
