// tcr::guard — run control and crash-safe checkpointing:
//  * CancelToken budget semantics (deadline, iterations, RSS, signal), the
//    first-reason-wins latch, and its thread-safety (these tests run under
//    TSan in CI),
//  * SignalGuard turning a real SIGTERM into a cooperative cancel,
//  * the append-only journal: round-trip, torn-tail tolerance (every crash
//    shape a kill can leave), hard errors on real corruption,
//  * the sweep checkpoint codec and its refusal to parse any truncation,
//  * the §5.3 degradation post-pass (eq. 14 interpolation arithmetic),
//  * a budget-cut sweep journaled and resumed, reproducing the
//    uninterrupted point series bit-for-bit.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "tcr/core/tradeoff.hpp"
#include "tcr/graph/torus.hpp"
#include "tcr/guard/guard.hpp"
#include "tcr/guard/journal.hpp"
#include "tcr/lp/simplex.hpp"

namespace tcr::guard {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "guard_" + name;
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// ---- CancelToken ---------------------------------------------------------

TEST(CancelToken, DefaultTokenNeverFires) {
  CancelToken token;
  for (int i = 0; i < 200; ++i) EXPECT_FALSE(token.check());
  token.charge_iterations(1 << 20);
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), StopReason::None);
  EXPECT_TRUE(token.note().empty());
}

TEST(CancelToken, ExplicitCancelLatchesFirstReason) {
  CancelToken token;
  token.cancel(StopReason::Signal);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), StopReason::Signal);
  // Later reasons must not overwrite the first.
  token.cancel(StopReason::Deadline);
  EXPECT_EQ(token.reason(), StopReason::Signal);
  EXPECT_TRUE(token.check());
}

TEST(CancelToken, DeadlineFires) {
  RunBudget budget;
  budget.deadline_seconds = 1e-4;
  CancelToken token(budget);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(token.check());
  EXPECT_EQ(token.reason(), StopReason::Deadline);
  EXPECT_NE(token.note().find("deadline"), std::string::npos) << token.note();
}

TEST(CancelToken, IterationBudgetFires) {
  RunBudget budget;
  budget.max_iterations = 100;
  CancelToken token(budget);
  token.charge_iterations(96);
  EXPECT_FALSE(token.cancelled());
  token.charge_iterations(16);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), StopReason::Iterations);
  EXPECT_EQ(token.iterations_used(), 112);
  EXPECT_NE(token.note().find("iteration budget"), std::string::npos) << token.note();
}

TEST(CancelToken, PartialIterationWindowIsFlushedOnOptimalExit) {
  // The simplex charges the token at 16-iteration safepoints; a solve that
  // exits Optimal mid-window must flush the remainder in finish(). With a
  // cap of 1 the flush itself latches the token, so (a) iterations_used()
  // equals the solve's exact pivot count, not a multiple of 16, and (b) the
  // next solve against the same token is refused up front.
  lp::Model m;
  m.add_col(0.0, lp::kInf, -1.0);
  m.add_col(0.0, lp::kInf, -2.0);
  const int r0 = m.add_row(lp::RowType::LE, 4.0);
  m.add_term(r0, 0, 1.0);
  m.add_term(r0, 1, 1.0);
  const int r1 = m.add_row(lp::RowType::LE, 3.0);
  m.add_term(r1, 1, 1.0);

  RunBudget budget;
  budget.max_iterations = 1;
  CancelToken token(budget);
  lp::SimplexOptions opts;
  opts.cancel = &token;
  const lp::Solution sol = lp::solve(m, opts);
  ASSERT_EQ(sol.status, lp::Status::Optimal);
  ASSERT_GT(sol.iterations, 0);
  ASSERT_LT(sol.iterations, 16) << "model too big to exit inside one charge window";
  EXPECT_EQ(token.iterations_used(), sol.iterations);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), StopReason::Iterations);

  const lp::Solution refused = lp::solve(m, opts);
  EXPECT_EQ(refused.status, lp::Status::Cancelled);
  EXPECT_EQ(token.iterations_used(), sol.iterations)
      << "a refused solve must not charge iterations";
}

TEST(CancelToken, MemoryCapFires) {
  RunBudget budget;
  budget.max_rss_kb = 1;  // any live process exceeds 1 KB peak RSS
  CancelToken token(budget);
  bool fired = false;
  // The RSS poll runs every 64th check; well within 200 checks it must see
  // the process over the 1 KB cap.
  for (int i = 0; i < 200 && !fired; ++i) fired = token.check();
  EXPECT_TRUE(fired);
  EXPECT_EQ(token.reason(), StopReason::Memory);
  EXPECT_NE(token.note().find("RSS"), std::string::npos) << token.note();
}

TEST(CancelToken, UnlimitedBudgetReportsUnlimited) {
  EXPECT_TRUE(RunBudget{}.unlimited());
  RunBudget b;
  b.max_iterations = 5;
  EXPECT_FALSE(b.unlimited());
}

// ---- CancelToken concurrency (exercised under TSan in CI) ----------------

TEST(CancelTokenConcurrency, ManyCheckersOneCanceller) {
  CancelToken token;
  std::atomic<int> stopped{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&token, &stopped] {
      while (!token.check()) token.charge_iterations(1);
      stopped.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  token.cancel(StopReason::Signal);
  for (auto& w : workers) w.join();
  EXPECT_EQ(stopped.load(), 4);
  EXPECT_EQ(token.reason(), StopReason::Signal);
}

TEST(CancelTokenConcurrency, RacingCancelsKeepExactlyOneReason) {
  const StopReason reasons[] = {StopReason::Deadline, StopReason::Iterations,
                                StopReason::Memory, StopReason::Signal};
  for (int round = 0; round < 20; ++round) {
    CancelToken token;
    std::vector<std::thread> cancellers;
    for (const StopReason r : reasons) {
      cancellers.emplace_back([&token, r] { token.cancel(r); });
    }
    for (auto& c : cancellers) c.join();
    EXPECT_TRUE(token.cancelled());
    const StopReason won = token.reason();
    EXPECT_TRUE(won == StopReason::Deadline || won == StopReason::Iterations ||
                won == StopReason::Memory || won == StopReason::Signal);
    EXPECT_FALSE(token.note().empty());
  }
}

TEST(CancelTokenConcurrency, ConcurrentChargesSumExactly) {
  CancelToken token;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&token] {
      for (int i = 0; i < 1000; ++i) token.charge_iterations(3);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(token.iterations_used(), 4 * 1000 * 3);
}

// ---- SignalGuard ---------------------------------------------------------

TEST(SignalGuard, TermSignalLatchesTokenCooperatively) {
  CancelToken token;
  {
    SignalGuard hook(token);
    ASSERT_EQ(std::raise(SIGTERM), 0);
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), StopReason::Signal);
    EXPECT_TRUE(SignalGuard::signalled());
    EXPECT_EQ(SignalGuard::signal_number(), SIGTERM);
  }
  // Guard destroyed: a fresh one can be installed again.
  CancelToken token2;
  SignalGuard hook2(token2);
  EXPECT_FALSE(token2.cancelled());
}

// ---- journal -------------------------------------------------------------

TEST(Journal, RoundTripsBinaryRecords) {
  const std::string path = temp_path("roundtrip.jnl");
  std::remove(path.c_str());
  std::vector<std::string> payloads = {"alpha", std::string("\0\x01\xff zero", 8), ""};
  {
    JournalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path, &error)) << error;
    for (const auto& p : payloads) ASSERT_TRUE(writer.append(p));
    EXPECT_TRUE(writer.ok());
  }
  const JournalContents contents = read_journal(path);
  ASSERT_TRUE(contents.ok) << contents.error;
  EXPECT_FALSE(contents.truncated_tail);
  EXPECT_EQ(contents.records, payloads);
}

TEST(Journal, EmptyJournalIsValid) {
  const std::string path = temp_path("empty.jnl");
  std::remove(path.c_str());
  JournalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.open(path, &error)) << error;
  writer.close();
  const JournalContents contents = read_journal(path);
  EXPECT_TRUE(contents.ok) << contents.error;
  EXPECT_TRUE(contents.records.empty());
}

TEST(Journal, MissingFileIsHardError) {
  const JournalContents contents = read_journal(temp_path("does_not_exist.jnl"));
  EXPECT_FALSE(contents.ok);
  EXPECT_FALSE(contents.error.empty());
}

TEST(Journal, BadMagicIsHardError) {
  const std::string path = temp_path("badmagic.jnl");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "NOTAJNL0somethingelse";
  }
  const JournalContents contents = read_journal(path);
  EXPECT_FALSE(contents.ok);
  EXPECT_NE(contents.error.find("magic"), std::string::npos) << contents.error;
}

TEST(Journal, TornHeaderTailIsToleratedAndRepairedOnReopen) {
  const std::string path = temp_path("tornheader.jnl");
  std::remove(path.c_str());
  {
    JournalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path, &error)) << error;
    ASSERT_TRUE(writer.append("first"));
    ASSERT_TRUE(writer.append("second"));
  }
  {
    // Kill mid-header: three stray bytes after the last good record.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("xyz", 3);
  }
  JournalContents contents = read_journal(path);
  ASSERT_TRUE(contents.ok) << contents.error;
  EXPECT_TRUE(contents.truncated_tail);
  EXPECT_EQ(contents.records, (std::vector<std::string>{"first", "second"}));

  // Reopen truncates the torn tail; appends continue after the good prefix.
  {
    JournalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path, &error)) << error;
    ASSERT_TRUE(writer.append("third"));
  }
  contents = read_journal(path);
  ASSERT_TRUE(contents.ok) << contents.error;
  EXPECT_FALSE(contents.truncated_tail);
  EXPECT_EQ(contents.records, (std::vector<std::string>{"first", "second", "third"}));
}

TEST(Journal, TornPayloadTailIsTolerated) {
  const std::string path = temp_path("tornpayload.jnl");
  std::remove(path.c_str());
  {
    JournalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path, &error)) << error;
    ASSERT_TRUE(writer.append("kept"));
  }
  {
    // A full header promising 100 payload bytes, then only 10: the append
    // raced the kill.
    const std::string payload100(100, 'p');
    const std::uint32_t len = 100;
    const std::uint32_t crc = crc32(payload100.data(), payload100.size());
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(reinterpret_cast<const char*>(&len), 4);
    out.write(reinterpret_cast<const char*>(&crc), 4);
    out.write(payload100.data(), 10);
  }
  const JournalContents contents = read_journal(path);
  ASSERT_TRUE(contents.ok) << contents.error;
  EXPECT_TRUE(contents.truncated_tail);
  EXPECT_EQ(contents.records, (std::vector<std::string>{"kept"}));
}

TEST(Journal, CrcMismatchOnFinalRecordIsTolerated) {
  const std::string path = temp_path("tailcrc.jnl");
  std::remove(path.c_str());
  {
    JournalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path, &error)) << error;
    ASSERT_TRUE(writer.append("kept"));
    ASSERT_TRUE(writer.append("mangled"));
  }
  {
    // Flip the last payload byte of the final record.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    const auto size = f.tellg();
    f.seekg(static_cast<std::streamoff>(size) - 1);
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(size) - 1);
    f.put(static_cast<char>(c ^ 0x40));
  }
  const JournalContents contents = read_journal(path);
  ASSERT_TRUE(contents.ok) << contents.error;
  EXPECT_TRUE(contents.truncated_tail);
  EXPECT_EQ(contents.records, (std::vector<std::string>{"kept"}));
}

TEST(Journal, MidFileCorruptionIsHardPositionBearingError) {
  const std::string path = temp_path("midfile.jnl");
  std::remove(path.c_str());
  {
    JournalWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path, &error)) << error;
    ASSERT_TRUE(writer.append("first-record-payload"));
    ASSERT_TRUE(writer.append("second"));
  }
  {
    // Flip a byte inside the *first* record's payload (offset 16: 8 magic +
    // 8 header): not a torn tail, lost bytes in the middle.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(16);
    f.put('X');
  }
  const JournalContents contents = read_journal(path);
  EXPECT_FALSE(contents.ok);
  EXPECT_NE(contents.error.find("offset"), std::string::npos) << contents.error;
}

// ---- sweep checkpoint codec ----------------------------------------------

TradeoffPoint sample_point() {
  TradeoffPoint pt;
  pt.locality = 1.375;
  pt.capacity_fraction = 0.53125;
  pt.status = lp::Status::Optimal;
  pt.note = "note text";
  pt.warm_start = "accepted";
  pt.provenance = "measured";
  pt.iterations = 4242;
  pt.certificate.checked = true;
  pt.certificate.pass = true;
  pt.certificate.primal_residual = 1e-12;
  pt.certificate.duality_gap = 3e-11;
  pt.certificate.reason = "";
  return pt;
}

lp::Basis sample_basis() {
  lp::Basis basis;
  basis.stat = {0, 1, 2, 3, 0, 1};
  basis.basic = {5, 9, 11};
  return basis;
}

TEST(SweepCheckpoint, RoundTripsBitExact) {
  const TradeoffPoint pt = sample_point();
  const lp::Basis basis = sample_basis();
  const std::string payload = SweepCheckpoint::encode(7, pt, basis);

  int index = -1;
  TradeoffPoint got;
  lp::Basis got_basis;
  ASSERT_TRUE(SweepCheckpoint::decode(payload, &index, &got, &got_basis));
  EXPECT_EQ(index, 7);
  EXPECT_TRUE(bits_equal(got.locality, pt.locality));
  EXPECT_TRUE(bits_equal(got.capacity_fraction, pt.capacity_fraction));
  EXPECT_EQ(got.status, pt.status);
  EXPECT_EQ(got.note, pt.note);
  EXPECT_EQ(got.warm_start, pt.warm_start);
  EXPECT_EQ(got.provenance, pt.provenance);
  EXPECT_EQ(got.iterations, pt.iterations);
  EXPECT_EQ(got.certificate.checked, pt.certificate.checked);
  EXPECT_EQ(got.certificate.pass, pt.certificate.pass);
  EXPECT_TRUE(bits_equal(got.certificate.primal_residual, pt.certificate.primal_residual));
  EXPECT_TRUE(bits_equal(got.certificate.duality_gap, pt.certificate.duality_gap));
  EXPECT_EQ(got_basis.stat, basis.stat);
  EXPECT_EQ(got_basis.basic, basis.basic);
}

TEST(SweepCheckpoint, UnsolvedNaNRoundTrips) {
  TradeoffPoint pt = sample_point();
  pt.capacity_fraction = std::numeric_limits<double>::quiet_NaN();
  pt.status = lp::Status::IterationLimit;
  const std::string payload = SweepCheckpoint::encode(0, pt, {});
  int index = -1;
  TradeoffPoint got;
  lp::Basis got_basis;
  ASSERT_TRUE(SweepCheckpoint::decode(payload, &index, &got, &got_basis));
  EXPECT_TRUE(std::isnan(got.capacity_fraction));
  EXPECT_EQ(got.status, lp::Status::IterationLimit);
  EXPECT_TRUE(got_basis.stat.empty());
}

TEST(SweepCheckpoint, EveryTruncationIsRejected) {
  const std::string payload = SweepCheckpoint::encode(3, sample_point(), sample_basis());
  int index;
  TradeoffPoint pt;
  lp::Basis basis;
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(SweepCheckpoint::decode(payload.substr(0, len), &index, &pt, &basis))
        << "truncation to " << len << " of " << payload.size() << " bytes parsed";
  }
}

TEST(SweepCheckpoint, TrailingBytesAndBadVersionRejected) {
  std::string payload = SweepCheckpoint::encode(3, sample_point(), sample_basis());
  int index;
  TradeoffPoint pt;
  lp::Basis basis;
  EXPECT_FALSE(SweepCheckpoint::decode(payload + "x", &index, &pt, &basis));
  payload[0] = static_cast<char>(payload[0] + 1);
  EXPECT_FALSE(SweepCheckpoint::decode(payload, &index, &pt, &basis));
}

// ---- §5.3 degradation post-pass ------------------------------------------

std::vector<TradeoffPoint> five_point_series() {
  std::vector<TradeoffPoint> pts(5);
  const double locs[] = {1.0, 1.25, 1.5, 1.75, 2.0};
  const double caps[] = {0.25, 0.35, 0.40, 0.45, 0.50};
  for (int i = 0; i < 5; ++i) {
    pts[i].locality = locs[i];
    pts[i].capacity_fraction = caps[i];
    pts[i].status = lp::Status::Optimal;
    pts[i].certificate.checked = true;
    pts[i].certificate.pass = true;
  }
  return pts;
}

TEST(FillDegradedPoints, BudgetStoppedPointInterpolatesEq14) {
  auto pts = five_point_series();
  pts[2].status = lp::Status::Cancelled;
  pts[2].capacity_fraction = std::numeric_limits<double>::quiet_NaN();
  fill_degraded_points(pts, StopReason::Deadline);

  EXPECT_EQ(pts[2].provenance, "degraded");
  EXPECT_TRUE(pts[2].degraded());
  // Anchors are points 1 and 3; alpha = (1.75 - 1.5) / (1.75 - 1.25) = 0.5,
  // eq. 14: 1 / (0.5/0.35 + 0.5/0.45) — the harmonic mean of the anchors.
  const double expect = 1.0 / (0.5 / 0.35 + 0.5 / 0.45);
  EXPECT_NEAR(pts[2].capacity_fraction, expect, 1e-12);
  EXPECT_NE(pts[2].note.find("interpolated (eq. 14)"), std::string::npos) << pts[2].note;
  EXPECT_NE(pts[2].note.find("1 and 3"), std::string::npos) << pts[2].note;
  // Untouched neighbors stay measured.
  EXPECT_EQ(pts[1].provenance, "measured");
}

TEST(FillDegradedPoints, LadderExhaustionDegradesRegardlessOfReason) {
  auto pts = five_point_series();
  pts[1].status = lp::Status::Numerical;
  pts[1].capacity_fraction = std::numeric_limits<double>::quiet_NaN();
  fill_degraded_points(pts, StopReason::None);
  EXPECT_EQ(pts[1].provenance, "degraded");
  EXPECT_TRUE(std::isfinite(pts[1].capacity_fraction));
}

TEST(FillDegradedPoints, SignalCancelledPointsAreSkippedNotInterpolated) {
  auto pts = five_point_series();
  pts[3].status = lp::Status::Cancelled;
  pts[3].capacity_fraction = std::numeric_limits<double>::quiet_NaN();
  fill_degraded_points(pts, StopReason::Signal);
  EXPECT_EQ(pts[3].provenance, "skipped");
  // A skipped point keeps no interpolated value: a resumed run computes it.
  EXPECT_TRUE(std::isnan(pts[3].capacity_fraction));
}

TEST(FillDegradedPoints, OneSidedPointStaysNaNButFlagged) {
  auto pts = five_point_series();
  pts[3].status = lp::Status::Cancelled;
  pts[4].status = lp::Status::Cancelled;
  pts[3].capacity_fraction = std::numeric_limits<double>::quiet_NaN();
  pts[4].capacity_fraction = std::numeric_limits<double>::quiet_NaN();
  fill_degraded_points(pts, StopReason::Iterations);
  // Point 3 has anchors 2 and... none to the right — 4 is degraded too.
  EXPECT_EQ(pts[4].provenance, "degraded");
  EXPECT_TRUE(std::isnan(pts[4].capacity_fraction));
  EXPECT_NE(pts[4].note.find("no certified neighbors"), std::string::npos) << pts[4].note;
}

TEST(FillDegradedPoints, UncertifiedNeighborsAreNotAnchors) {
  auto pts = five_point_series();
  pts[1].certificate.pass = false;  // failed certificate: not a measurement
  pts[2].status = lp::Status::Cancelled;
  pts[2].capacity_fraction = std::numeric_limits<double>::quiet_NaN();
  fill_degraded_points(pts, StopReason::Deadline);
  // The left anchor must skip point 1 and use point 0.
  const double alpha = (1.75 - 1.5) / (1.75 - 1.0);
  const double expect = 1.0 / (alpha / 0.25 + (1.0 - alpha) / 0.45);
  EXPECT_NEAR(pts[2].capacity_fraction, expect, 1e-12);
  EXPECT_NE(pts[2].note.find("0 and 3"), std::string::npos) << pts[2].note;
}

// ---- budget-cut sweep: journal + resume == uninterrupted run -------------

TEST(SweepResumeTest, BudgetCutJournalThenResumeReproducesBitwise) {
  const Torus torus(4);
  const auto grid = locality_grid(1.0, 2.0, 5);
  const std::string path = temp_path("sweep.jnl");
  std::remove(path.c_str());

  // Reference: the uninterrupted warm sweep.
  const auto ref = worst_case_tradeoff(torus, grid);
  ASSERT_EQ(ref.size(), 5u);
  long total_iterations = 0;
  for (const auto& pt : ref) {
    ASSERT_EQ(pt.status, lp::Status::Optimal);
    total_iterations += pt.iterations;
  }

  // Budgeted run, cut deterministically inside point 1: the solver charges
  // the token at every 16-iteration safepoint and flushes the partial
  // window on solve exit, so point 0 charges exactly `it0` and fits the
  // budget, while point 1 reaches its first safepoint with the budget
  // already down to 16 and must blow it mid-solve — provided it runs past
  // one full window (the ASSERT below; warm-started tail points can be
  // near-free and finish before any safepoint). Completed points are
  // journaled, the rest labeled degraded.
  ASSERT_GE(ref[1].iterations, 17) << "point 1 too cheap to guarantee an in-solve cut";
  CancelToken token;
  RunBudget budget;
  budget.max_iterations = ref[0].iterations + 16;
  ASSERT_LT(budget.max_iterations, total_iterations);
  token.arm(budget);
  JournalWriter journal;
  std::string error;
  ASSERT_TRUE(journal.open(path, &error)) << error;
  lp::SimplexOptions opts;
  opts.cancel = &token;
  SweepConfig cut_cfg;
  cut_cfg.cancel = &token;
  cut_cfg.journal = &journal;
  const auto cut = worst_case_tradeoff(torus, grid, opts, nullptr, cut_cfg);
  journal.close();
  ASSERT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), StopReason::Iterations);

  std::size_t measured = 0, degraded = 0;
  for (const auto& pt : cut) {
    if (pt.provenance == "measured" && pt.status == lp::Status::Optimal) {
      ++measured;
    } else {
      // Iteration budget is a degrade-class stop: nothing may be "skipped".
      EXPECT_EQ(pt.provenance, "degraded");
      EXPECT_EQ(pt.status, lp::Status::Cancelled);
      EXPECT_FALSE(pt.note.empty());
      ++degraded;
    }
  }
  EXPECT_GE(measured, 1u);
  EXPECT_GE(degraded, 1u);
  EXPECT_EQ(measured + degraded, cut.size());

  // Resume: replay the journal, re-chain warm starts, finish the grid.
  SweepResume resume;
  bool torn = false;
  ASSERT_TRUE(load_sweep_resume(path, &resume, &torn, &error)) << error;
  EXPECT_FALSE(torn);
  EXPECT_EQ(resume.points.size(), measured);

  SweepConfig resume_cfg;
  resume_cfg.resume = &resume;
  const auto resumed = worst_case_tradeoff(torus, grid, {}, nullptr, resume_cfg);
  ASSERT_EQ(resumed.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(resumed[i].status, lp::Status::Optimal) << "point " << i;
    EXPECT_TRUE(bits_equal(resumed[i].capacity_fraction, ref[i].capacity_fraction))
        << "point " << i << ": " << resumed[i].capacity_fraction << " vs "
        << ref[i].capacity_fraction;
    EXPECT_EQ(resumed[i].iterations, ref[i].iterations) << "point " << i;
    EXPECT_EQ(resumed[i].provenance, resume.has(static_cast<int>(i)) ? "resumed" : "measured")
        << "point " << i;
  }
}

}  // namespace
}  // namespace tcr::guard
