// Warm-start contract of lp::solve (ISSUE: warm-started LP sweeps): a
// supplied basis may cut work but must never change the answer. Every test
// here compares a warm solve against a cold solve of the same model and
// demands identical status, matching certified objectives, and sane
// lp.warmstart.* accounting — including for deliberately stale, singular,
// and garbage bases. The sweep-level tests pin the chain semantics of
// SweepConfig: warm and cold sweeps agree to 1e-8 and parallel sweeps are
// bitwise-identical to serial ones.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "tcr/core/tradeoff.hpp"
#include "tcr/graph/torus.hpp"
#include "tcr/lp/certify.hpp"
#include "tcr/lp/simplex.hpp"
#include "tcr/obs/registry.hpp"
#include "tcr/util/rng.hpp"
#include "tcr/util/thread_pool.hpp"

namespace tcr::lp {
namespace {

Model random_model(Rng& rng, int rows, int cols) {
  Model m;
  m.set_sense(rng.uniform() < 0.5 ? Sense::Minimize : Sense::Maximize);
  for (int j = 0; j < cols; ++j) {
    const double r = rng.uniform();
    double lo = 0.0, up = kInf;
    if (r < 0.2) {
      lo = -kInf;  // free
    } else if (r < 0.4) {
      up = rng.uniform(0.5, 4.0);  // boxed
    } else if (r < 0.5) {
      lo = rng.uniform(-2.0, 0.0);
      up = lo + rng.uniform(0.0, 3.0);
    }
    m.add_col(lo, up, rng.uniform(-3, 3));
  }
  for (int i = 0; i < rows; ++i) {
    const double r = rng.uniform();
    const RowType type = r < 0.4 ? RowType::LE : (r < 0.7 ? RowType::GE : RowType::EQ);
    const int row = m.add_row(type, rng.uniform(-4, 4));
    int terms = 0;
    for (int j = 0; j < cols; ++j) {
      if (rng.uniform() < 0.45) {
        m.add_term(row, j, rng.uniform(-2, 2));
        ++terms;
      }
    }
    if (terms == 0) m.add_term(row, static_cast<int>(rng.below(cols)), 1.0);
  }
  // Keep the feasible set bounded so optima dominate the sweep.
  const int row = m.add_row(RowType::LE, rng.uniform(10, 30));
  for (int j = 0; j < cols; ++j) m.add_term(row, j, 1.0);
  const int row2 = m.add_row(RowType::GE, rng.uniform(-30, -10));
  for (int j = 0; j < cols; ++j) m.add_term(row2, j, 1.0);
  return m;
}

struct WarmCounters {
  std::int64_t attempts, accepted, repaired, rejected, phase1_skipped;
  static WarmCounters snap() {
    auto& reg = obs::Registry::instance();
    return {reg.counter("lp.warmstart.attempts").value(),
            reg.counter("lp.warmstart.accepted").value(),
            reg.counter("lp.warmstart.repaired").value(),
            reg.counter("lp.warmstart.rejected").value(),
            reg.counter("lp.warmstart.phase1_skipped").value()};
  }
  WarmCounters delta_since(const WarmCounters& base) const {
    return {attempts - base.attempts, accepted - base.accepted, repaired - base.repaired,
            rejected - base.rejected, phase1_skipped - base.phase1_skipped};
  }
  std::int64_t adopted() const { return accepted + repaired; }
  /// The accounting invariant: every adoption attempt commits exactly one
  /// outcome, so over any window attempts == accepted + repaired + rejected.
  void expect_balanced(const char* what) const {
    EXPECT_EQ(attempts, accepted + repaired + rejected) << what;
  }
};

struct DualCounters {
  std::int64_t solves, iterations, reoptimized, fallbacks, infeasible_bases;
  static DualCounters snap() {
    auto& reg = obs::Registry::instance();
    return {reg.counter("lp.dual.solves").value(), reg.counter("lp.dual.iterations").value(),
            reg.counter("lp.dual.reoptimized").value(),
            reg.counter("lp.dual.fallbacks").value(),
            reg.counter("lp.dual.infeasible_bases").value()};
  }
  DualCounters delta_since(const DualCounters& base) const {
    return {solves - base.solves, iterations - base.iterations,
            reoptimized - base.reoptimized, fallbacks - base.fallbacks,
            infeasible_bases - base.infeasible_bases};
  }
};

// Warm and cold must agree on status; on Optimal, objectives must match and
// both must carry passing certificates. Returns the warm solution.
Solution expect_warm_matches_cold(const Model& m, const Basis& warm, const SimplexOptions& opt,
                                  const char* what) {
  const Solution cold = solve(m, opt);
  const Solution ws = solve(m, opt, &warm);
  EXPECT_EQ(ws.status, cold.status) << what;
  if (cold.status == Status::Optimal) {
    EXPECT_NEAR(ws.objective, cold.objective, 1e-7 * (1 + std::abs(cold.objective))) << what;
    EXPECT_TRUE(ws.certificate.ok()) << what << ": " << ws.certificate.summary();
    const Certificate check = certify(m, ws);
    EXPECT_TRUE(check.pass) << what << ": " << check.summary();
  }
  return ws;
}

TEST(WarmStart, OwnOptimumIsAdoptedAndMatches) {
  Rng rng(4242);
  SimplexOptions opt;
  int optimal = 0;
  std::int64_t adopted = 0;
  for (int trial = 0; trial < 150; ++trial) {
    opt.seed = 9000 + trial;
    const Model m = random_model(rng, 2 + static_cast<int>(rng.below(10)),
                                 2 + static_cast<int>(rng.below(12)));
    const Solution cold = solve(m, opt);
    if (cold.status != Status::Optimal) continue;
    ++optimal;
    ASSERT_FALSE(cold.basis.empty());
    const WarmCounters before = WarmCounters::snap();
    const Solution ws = solve(m, opt, &cold.basis);
    const WarmCounters d = WarmCounters::snap().delta_since(before);
    ASSERT_EQ(ws.status, Status::Optimal) << "trial " << trial;
    EXPECT_NEAR(ws.objective, cold.objective, 1e-7 * (1 + std::abs(cold.objective)))
        << "trial " << trial;
    EXPECT_TRUE(ws.certificate.ok()) << "trial " << trial << ": " << ws.certificate.summary();
    EXPECT_EQ(d.adopted() + d.rejected, 1) << "trial " << trial;
    adopted += d.adopted();
  }
  ASSERT_GT(optimal, 20);
  // A solver's own optimal basis must essentially always be adoptable.
  EXPECT_GE(adopted, optimal - 2);
}

TEST(WarmStart, StaleBasisAfterRhsEditMatchesCold) {
  Rng rng(1717);
  SimplexOptions opt;
  int compared = 0;
  for (int trial = 0; trial < 150; ++trial) {
    opt.seed = 5000 + trial;
    Model m = random_model(rng, 3 + static_cast<int>(rng.below(9)),
                           3 + static_cast<int>(rng.below(10)));
    const Solution base = solve(m, opt);
    if (base.status != Status::Optimal) continue;

    // Move one rhs entry, annotate the hint the way a sweep would, and
    // check the stale basis still yields the cold answer.
    const int row = static_cast<int>(rng.below(m.num_rows()));
    m.set_rhs(row, m.rhs(row) + rng.uniform(-1.5, 1.5));
    Basis warm = base.basis;
    warm.edited_rows.assign(1, row);
    expect_warm_matches_cold(m, warm, opt, "hinted stale basis");
    // The hint is optional: the probe screen must cope without it.
    warm.edited_rows.clear();
    expect_warm_matches_cold(m, warm, opt, "unhinted stale basis");
    ++compared;
  }
  ASSERT_GT(compared, 20);
}

TEST(WarmStart, GarbageBasesNeverChangeTheAnswer) {
  Rng rng(99);
  SimplexOptions opt;
  opt.seed = 31;
  // Draw until a model with a certified optimum shows up (most draws do).
  Model m;
  Solution cold;
  for (int attempt = 0; attempt < 50; ++attempt) {
    m = random_model(rng, 8, 10);
    cold = solve(m, opt);
    if (cold.status == Status::Optimal) break;
  }
  ASSERT_EQ(cold.status, Status::Optimal);
  const int n = static_cast<int>(cold.basis.stat.size());
  const int rows = static_cast<int>(cold.basis.basic.size());

  {  // Wrong dimensions: must be rejected outright, then solve cold.
    Basis b;
    b.stat.assign(3, 0);
    b.basic.assign(2, 0);
    const WarmCounters before = WarmCounters::snap();
    expect_warm_matches_cold(m, b, opt, "wrong dimensions");
    EXPECT_EQ(WarmCounters::snap().delta_since(before).rejected, 1);
  }
  {  // Junk status bytes are re-derived, not trusted.
    Basis b = cold.basis;
    for (std::size_t j = 0; j < b.stat.size(); j += 2) b.stat[j] = 207;
    expect_warm_matches_cold(m, b, opt, "junk status bytes");
  }
  {  // Duplicate basic entries: unrecoverable, must fall back cold.
    Basis b = cold.basis;
    ASSERT_GE(rows, 2);
    b.basic[1] = b.basic[0];
    const WarmCounters before = WarmCounters::snap();
    expect_warm_matches_cold(m, b, opt, "duplicate basic list");
    EXPECT_EQ(WarmCounters::snap().delta_since(before).rejected, 1);
  }
  {  // Out-of-range basic entries: likewise.
    Basis b = cold.basis;
    b.basic[0] = n + 100;
    const WarmCounters before = WarmCounters::snap();
    expect_warm_matches_cold(m, b, opt, "out-of-range basic entry");
    EXPECT_EQ(WarmCounters::snap().delta_since(before).rejected, 1);
  }
  {  // Out-of-range edited_rows hints are ignored, not trusted.
    Basis b = cold.basis;
    b.edited_rows = {-5, 10000};
    expect_warm_matches_cold(m, b, opt, "garbage edited_rows hint");
  }
}

TEST(WarmStart, SingularBasisIsRepairedOrRejected) {
  // A structural column with no constraint entries makes any basis that
  // includes it singular; the repair must patch it out (or reject) and
  // still reproduce the cold answer.
  Model m;
  m.add_col(0.0, kInf, 1.0);
  m.add_col(0.0, kInf, 2.0);
  const int zero_col = m.add_col(0.0, 5.0, 0.0);  // never touches a row
  const int r0 = m.add_row(RowType::GE, 2.0);
  m.add_term(r0, 0, 1.0);
  m.add_term(r0, 1, 1.0);
  const int r1 = m.add_row(RowType::LE, 10.0);
  m.add_term(r1, 0, 1.0);
  m.add_term(r1, 1, 3.0);
  SimplexOptions opt;
  const Solution cold = solve(m, opt);
  ASSERT_EQ(cold.status, Status::Optimal);

  Basis b = cold.basis;
  // Force the zero column basic in place of whatever row-0's basic was.
  b.stat[static_cast<std::size_t>(b.basic[0])] = 1;  // kAtLower
  b.basic[0] = zero_col;
  b.stat[static_cast<std::size_t>(zero_col)] = 0;  // kBasic
  const WarmCounters before = WarmCounters::snap();
  expect_warm_matches_cold(m, b, opt, "singular basis");
  const WarmCounters d = WarmCounters::snap().delta_since(before);
  EXPECT_EQ(d.repaired + d.rejected, 1);
}

TEST(WarmStart, SweepChainMatchesColdAndAdoptsBases) {
  const Torus torus(4);
  const std::vector<double> grid = locality_grid(1.0, 2.0, 6);
  SweepConfig warm_cfg;
  warm_cfg.warm_start = true;
  warm_cfg.chains = 1;
  SweepConfig cold_cfg = warm_cfg;
  cold_cfg.warm_start = false;

  const WarmCounters before = WarmCounters::snap();
  const auto warm = worst_case_tradeoff(torus, grid, {}, nullptr, warm_cfg);
  const WarmCounters d = WarmCounters::snap().delta_since(before);
  const auto cold = worst_case_tradeoff(torus, grid, {}, nullptr, cold_cfg);

  ASSERT_EQ(warm.size(), grid.size());
  ASSERT_EQ(cold.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_TRUE(warm[i].solved()) << "point " << i << ": " << warm[i].note;
    ASSERT_TRUE(cold[i].solved()) << "point " << i << ": " << cold[i].note;
    EXPECT_TRUE(warm[i].certificate.pass) << warm[i].certificate.summary();
    EXPECT_NEAR(warm[i].capacity_fraction, cold[i].capacity_fraction, 1e-8) << "point " << i;
  }
  // Every point after the chain head gets a warm basis, and the sweep is
  // only worth shipping if those bases are actually adopted.
  EXPECT_EQ(d.adopted() + d.rejected, static_cast<std::int64_t>(grid.size()) - 1);
  EXPECT_GT(d.adopted(), 0);
  EXPECT_GT(d.phase1_skipped, 0);
}

TEST(WarmStart, ParallelSweepBitwiseMatchesSerial) {
  const Torus torus(4);
  const std::vector<double> grid = locality_grid(1.0, 2.0, 7);
  SweepConfig cfg;
  cfg.warm_start = true;
  cfg.chains = 2;  // fixed partition -> identical warm seeds either way

  const auto serial = worst_case_tradeoff(torus, grid, {}, nullptr, cfg);
  ThreadPool pool(3);
  const auto parallel = worst_case_tradeoff(torus, grid, {}, &pool, cfg);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].status, parallel[i].status) << "point " << i;
    // Bitwise: the same chain partition must run the same pivot sequence.
    EXPECT_EQ(std::memcmp(&serial[i].capacity_fraction, &parallel[i].capacity_fraction,
                          sizeof(double)),
              0)
        << "point " << i << ": " << serial[i].capacity_fraction << " vs "
        << parallel[i].capacity_fraction;
    EXPECT_EQ(serial[i].locality, parallel[i].locality) << "point " << i;
  }
}

TEST(WarmStart, UnsolvablePointIsNaNAndChainSurvives) {
  const Torus torus(4);
  // 0.5 is below the minimal normalized locality of 1.0 -> infeasible; the
  // rest of the chain must still reach certified optima off a cold restart.
  const std::vector<double> grid = {0.5, 1.0, 1.5, 2.0};
  SweepConfig cfg;
  cfg.warm_start = true;
  cfg.chains = 1;
  const auto pts = worst_case_tradeoff(torus, grid, {}, nullptr, cfg);
  ASSERT_EQ(pts.size(), grid.size());
  EXPECT_FALSE(pts[0].solved());
  EXPECT_TRUE(std::isnan(pts[0].capacity_fraction));
  for (std::size_t i = 1; i < pts.size(); ++i) {
    ASSERT_TRUE(pts[i].solved()) << "point " << i << ": " << pts[i].note;
    EXPECT_TRUE(pts[i].certificate.pass) << pts[i].certificate.summary();
    EXPECT_FALSE(std::isnan(pts[i].capacity_fraction));
  }
}

// The accounting invariant across a mixed population of adoption paths:
// pristine optimal bases (accepted), rhs-edited bases (dual reoptimization
// or repair), and assorted garbage (rejected). Every lp::solve with a warm
// basis must bump attempts exactly once and commit exactly one outcome.
TEST(WarmStart, AttemptsAlwaysEqualCommittedOutcomes) {
  Rng rng(2024);
  SimplexOptions opt;
  const WarmCounters start = WarmCounters::snap();
  int solves = 0;
  for (int trial = 0; trial < 300; ++trial) {
    opt.seed = 700 + trial;
    Model m = random_model(rng, 3 + static_cast<int>(rng.below(8)),
                           3 + static_cast<int>(rng.below(10)));
    const Solution cold = solve(m, opt);
    if (cold.status != Status::Optimal) continue;

    Basis warm = cold.basis;
    const double r = rng.uniform();
    const char* what = "pristine";
    if (r < 0.35) {
      // rhs edit + hint: the dual-reoptimization path.
      const int row = static_cast<int>(rng.below(m.num_rows()));
      m.set_rhs(row, m.rhs(row) + rng.uniform(-1.0, 1.0));
      warm.edited_rows.assign(1, row);
      what = "rhs edit";
    } else if (r < 0.55) {
      // cost flip on top of an rhs edit: the dual screen must bounce it.
      const int row = static_cast<int>(rng.below(m.num_rows()));
      m.set_rhs(row, m.rhs(row) + rng.uniform(-1.0, 1.0));
      for (int j = 0; j < m.num_cols(); ++j) m.set_cost(j, -m.cost(j));
      warm.edited_rows.assign(1, row);
      what = "rhs + cost flip";
    } else if (r < 0.7) {
      // Garbage status bytes.
      for (std::size_t j = 0; j < warm.stat.size(); j += 2) warm.stat[j] = 31;
      what = "junk stat";
    } else if (r < 0.8) {
      warm.basic.assign(warm.basic.size(), 0);  // duplicate basic entries
      what = "duplicate basics";
    }
    const WarmCounters before = WarmCounters::snap();
    expect_warm_matches_cold(m, warm, opt, what);
    const WarmCounters d = WarmCounters::snap().delta_since(before);
    // One lp::solve = one adoption attempt (the recovery ladder may retry
    // on numerical failure, but these well-scaled models never need it).
    EXPECT_EQ(d.attempts, 1) << what << " trial " << trial;
    d.expect_balanced(what);
    ++solves;
  }
  ASSERT_GT(solves, 40);
  WarmCounters::snap().delta_since(start).expect_balanced("whole population");
}

// Regression for the edited_rows hygiene pass: repeated hints must collapse
// to one probe row, out-of-range hints must be dropped, and an all-garbage
// hint list must not derail adoption.
TEST(WarmStart, RepeatedAndOutOfRangeEditedRowHints) {
  Rng rng(515);
  SimplexOptions opt;
  int compared = 0;
  for (int trial = 0; trial < 200; ++trial) {
    opt.seed = 1300 + trial;
    Model m = random_model(rng, 4 + static_cast<int>(rng.below(7)),
                           4 + static_cast<int>(rng.below(8)));
    const Solution base = solve(m, opt);
    if (base.status != Status::Optimal) continue;
    const int row = static_cast<int>(rng.below(m.num_rows()));
    m.set_rhs(row, m.rhs(row) + rng.uniform(-1.5, 1.5));

    Basis warm = base.basis;
    // The same row five times plus junk on both sides of the valid range.
    warm.edited_rows = {row, row, -7, row, m.num_rows() + 42, row, row};
    const WarmCounters before = WarmCounters::snap();
    expect_warm_matches_cold(m, warm, opt, "repeated + out-of-range hints");
    const WarmCounters d = WarmCounters::snap().delta_since(before);
    EXPECT_EQ(d.attempts, 1) << "trial " << trial;
    d.expect_balanced("repeated hints");

    // Nothing valid left after filtering: behaves like an unhinted basis.
    warm.edited_rows = {-1, -1, m.num_rows(), m.num_rows()};
    expect_warm_matches_cold(m, warm, opt, "all hints out of range");
    ++compared;
  }
  ASSERT_GT(compared, 20);
}

// The tentpole path: after a pure rhs edit the old optimal basis stays dual
// feasible, so the hinted warm solve must route through the dual simplex
// (lp.dual.solves) and usually reoptimize without phase 1 — and the answer
// must match a cold solve and a --no-dual warm solve exactly as the
// certificate demands.
TEST(DualRestart, RhsEditReoptimizesThroughDualPhase) {
  Rng rng(8888);
  SimplexOptions opt;
  int compared = 0;
  const DualCounters start = DualCounters::snap();
  for (int trial = 0; trial < 300; ++trial) {
    opt.seed = 2600 + trial;
    Model m = random_model(rng, 4 + static_cast<int>(rng.below(8)),
                           4 + static_cast<int>(rng.below(10)));
    const Solution base = solve(m, opt);
    if (base.status != Status::Optimal) continue;
    // Large edits so the old basic point usually leaves its bounds: a
    // gentle nudge is often still primal feasible and adopts without any
    // reoptimization, which would leave the dual phase untested.
    const int row = static_cast<int>(rng.below(m.num_rows()));
    m.set_rhs(row, m.rhs(row) + rng.uniform(2.0, 6.0) * (rng.uniform() < 0.5 ? -1.0 : 1.0));
    Basis warm = base.basis;
    warm.edited_rows.assign(1, row);

    const WarmCounters before = WarmCounters::snap();
    const Solution ws = expect_warm_matches_cold(m, warm, opt, "dual rhs-edit restart");
    WarmCounters::snap().delta_since(before).expect_balanced("dual restart");

    // The dual phase is an optimization, never a semantic switch: --no-dual
    // must land on the same certified objective.
    SimplexOptions no_dual = opt;
    no_dual.dual = false;
    const Solution wsnd = solve(m, no_dual, &warm);
    EXPECT_EQ(wsnd.status, ws.status) << "trial " << trial;
    if (ws.status == Status::Optimal) {
      EXPECT_NEAR(wsnd.objective, ws.objective, 1e-9 * (1 + std::abs(ws.objective)))
          << "trial " << trial;
    }
    ++compared;
  }
  ASSERT_GT(compared, 40);
  const DualCounters d = DualCounters::snap().delta_since(start);
  // The screen must route a healthy share of these restarts into the dual
  // phase, and most dual runs must finish there (reoptimized), not fall back.
  EXPECT_GT(d.solves, compared / 8) << "dual phase barely engaged";
  EXPECT_GT(d.reoptimized, 0);
  EXPECT_GE(d.solves, d.reoptimized + d.fallbacks);
}

// A dual-infeasible warm basis (rhs edit plus a cost flip) must be caught by
// the dual-feasibility screen — counted in lp.dual.infeasible_bases, not
// launched into the dual phase — and still reproduce the cold answer through
// the ordinary adoption ladder.
TEST(DualRestart, DualInfeasibleBasisIsScreenedOut) {
  Rng rng(31337);
  SimplexOptions opt;
  int compared = 0;
  const DualCounters start = DualCounters::snap();
  for (int trial = 0; trial < 250; ++trial) {
    opt.seed = 4100 + trial;
    Model m = random_model(rng, 4 + static_cast<int>(rng.below(7)),
                           4 + static_cast<int>(rng.below(9)));
    const Solution base = solve(m, opt);
    if (base.status != Status::Optimal) continue;
    const int row = static_cast<int>(rng.below(m.num_rows()));
    m.set_rhs(row, m.rhs(row) + rng.uniform(-2.0, 2.0));
    // Invert the objective: the old reduced costs change sign, so the basis
    // is (near-)certainly dual infeasible while structurally fine.
    for (int j = 0; j < m.num_cols(); ++j) m.set_cost(j, -m.cost(j));
    Basis warm = base.basis;
    warm.edited_rows.assign(1, row);

    const WarmCounters before = WarmCounters::snap();
    expect_warm_matches_cold(m, warm, opt, "dual-infeasible basis");
    const WarmCounters d = WarmCounters::snap().delta_since(before);
    EXPECT_EQ(d.attempts, 1) << "trial " << trial;
    d.expect_balanced("dual-infeasible basis");
    ++compared;
  }
  ASSERT_GT(compared, 25);
  const DualCounters d = DualCounters::snap().delta_since(start);
  EXPECT_GT(d.infeasible_bases, 0) << "screen never fired";
  // Screened bases never launch the dual phase, so dual activity in this
  // window is bounded by the (rare) flips that happen to stay dual feasible.
  EXPECT_LT(d.solves, compared / 4) << "screen let too many flipped bases through";
}

// Sweep-level contract of the dual restarts: the warm chain (dual on, the
// default) must agree with the cold chain to near machine precision, engage
// the dual phase on the post-head points, and an explicitly --no-dual warm
// sweep must land on the same optima.
TEST(DualRestart, SweepDualRestartsMatchColdTightly) {
  const Torus torus(4);
  const std::vector<double> grid = locality_grid(1.0, 2.0, 6);
  SweepConfig warm_cfg;
  warm_cfg.warm_start = true;
  warm_cfg.chains = 1;
  SweepConfig cold_cfg = warm_cfg;
  cold_cfg.warm_start = false;

  const DualCounters before = DualCounters::snap();
  const auto warm = worst_case_tradeoff(torus, grid, {}, nullptr, warm_cfg);
  const DualCounters d = DualCounters::snap().delta_since(before);
  const auto cold = worst_case_tradeoff(torus, grid, {}, nullptr, cold_cfg);

  SimplexOptions no_dual;
  no_dual.dual = false;
  const auto warm_nd = worst_case_tradeoff(torus, grid, no_dual, nullptr, warm_cfg);

  ASSERT_EQ(warm.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_TRUE(warm[i].solved()) << "point " << i << ": " << warm[i].note;
    ASSERT_TRUE(cold[i].solved()) << "point " << i;
    ASSERT_TRUE(warm_nd[i].solved()) << "point " << i;
    EXPECT_TRUE(warm[i].certificate.pass) << warm[i].certificate.summary();
    // ISSUE tolerance: dual-restarted sweep objectives equal cold to 5e-15.
    EXPECT_NEAR(warm[i].capacity_fraction, cold[i].capacity_fraction,
                5e-15 * (1 + std::abs(cold[i].capacity_fraction)))
        << "point " << i;
    EXPECT_NEAR(warm_nd[i].capacity_fraction, cold[i].capacity_fraction,
                5e-15 * (1 + std::abs(cold[i].capacity_fraction)))
        << "point " << i;
  }
  // Post-head points carry a dual-feasible rhs-edited basis; the phase must
  // actually engage and carry most of them to optimality.
  EXPECT_GT(d.solves, 0);
  EXPECT_GT(d.reoptimized, 0);
}

// Parallel chains with the dual phase active must stay bitwise-deterministic
// (same partition -> same pivot sequence on every worker).
TEST(DualRestart, ParallelDualSweepBitwiseMatchesSerial) {
  const Torus torus(4);
  const std::vector<double> grid = locality_grid(1.0, 2.0, 7);
  SweepConfig cfg;
  cfg.warm_start = true;
  cfg.chains = 2;

  const auto serial = worst_case_tradeoff(torus, grid, {}, nullptr, cfg);
  ThreadPool pool(3);
  const auto parallel = worst_case_tradeoff(torus, grid, {}, &pool, cfg);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].status, parallel[i].status) << "point " << i;
    EXPECT_EQ(std::memcmp(&serial[i].capacity_fraction, &parallel[i].capacity_fraction,
                          sizeof(double)),
              0)
        << "point " << i;
  }
}

}  // namespace
}  // namespace tcr::lp
