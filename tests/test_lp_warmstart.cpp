// Warm-start contract of lp::solve (ISSUE: warm-started LP sweeps): a
// supplied basis may cut work but must never change the answer. Every test
// here compares a warm solve against a cold solve of the same model and
// demands identical status, matching certified objectives, and sane
// lp.warmstart.* accounting — including for deliberately stale, singular,
// and garbage bases. The sweep-level tests pin the chain semantics of
// SweepConfig: warm and cold sweeps agree to 1e-8 and parallel sweeps are
// bitwise-identical to serial ones.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "tcr/core/tradeoff.hpp"
#include "tcr/graph/torus.hpp"
#include "tcr/lp/certify.hpp"
#include "tcr/lp/simplex.hpp"
#include "tcr/obs/registry.hpp"
#include "tcr/util/rng.hpp"
#include "tcr/util/thread_pool.hpp"

namespace tcr::lp {
namespace {

Model random_model(Rng& rng, int rows, int cols) {
  Model m;
  m.set_sense(rng.uniform() < 0.5 ? Sense::Minimize : Sense::Maximize);
  for (int j = 0; j < cols; ++j) {
    const double r = rng.uniform();
    double lo = 0.0, up = kInf;
    if (r < 0.2) {
      lo = -kInf;  // free
    } else if (r < 0.4) {
      up = rng.uniform(0.5, 4.0);  // boxed
    } else if (r < 0.5) {
      lo = rng.uniform(-2.0, 0.0);
      up = lo + rng.uniform(0.0, 3.0);
    }
    m.add_col(lo, up, rng.uniform(-3, 3));
  }
  for (int i = 0; i < rows; ++i) {
    const double r = rng.uniform();
    const RowType type = r < 0.4 ? RowType::LE : (r < 0.7 ? RowType::GE : RowType::EQ);
    const int row = m.add_row(type, rng.uniform(-4, 4));
    int terms = 0;
    for (int j = 0; j < cols; ++j) {
      if (rng.uniform() < 0.45) {
        m.add_term(row, j, rng.uniform(-2, 2));
        ++terms;
      }
    }
    if (terms == 0) m.add_term(row, static_cast<int>(rng.below(cols)), 1.0);
  }
  // Keep the feasible set bounded so optima dominate the sweep.
  const int row = m.add_row(RowType::LE, rng.uniform(10, 30));
  for (int j = 0; j < cols; ++j) m.add_term(row, j, 1.0);
  const int row2 = m.add_row(RowType::GE, rng.uniform(-30, -10));
  for (int j = 0; j < cols; ++j) m.add_term(row2, j, 1.0);
  return m;
}

struct WarmCounters {
  std::int64_t accepted, repaired, rejected, phase1_skipped;
  static WarmCounters snap() {
    auto& reg = obs::Registry::instance();
    return {reg.counter("lp.warmstart.accepted").value(),
            reg.counter("lp.warmstart.repaired").value(),
            reg.counter("lp.warmstart.rejected").value(),
            reg.counter("lp.warmstart.phase1_skipped").value()};
  }
  WarmCounters delta_since(const WarmCounters& base) const {
    return {accepted - base.accepted, repaired - base.repaired, rejected - base.rejected,
            phase1_skipped - base.phase1_skipped};
  }
  std::int64_t adopted() const { return accepted + repaired; }
};

// Warm and cold must agree on status; on Optimal, objectives must match and
// both must carry passing certificates. Returns the warm solution.
Solution expect_warm_matches_cold(const Model& m, const Basis& warm, const SimplexOptions& opt,
                                  const char* what) {
  const Solution cold = solve(m, opt);
  const Solution ws = solve(m, opt, &warm);
  EXPECT_EQ(ws.status, cold.status) << what;
  if (cold.status == Status::Optimal) {
    EXPECT_NEAR(ws.objective, cold.objective, 1e-7 * (1 + std::abs(cold.objective))) << what;
    EXPECT_TRUE(ws.certificate.ok()) << what << ": " << ws.certificate.summary();
    const Certificate check = certify(m, ws);
    EXPECT_TRUE(check.pass) << what << ": " << check.summary();
  }
  return ws;
}

TEST(WarmStart, OwnOptimumIsAdoptedAndMatches) {
  Rng rng(4242);
  SimplexOptions opt;
  int optimal = 0;
  std::int64_t adopted = 0;
  for (int trial = 0; trial < 150; ++trial) {
    opt.seed = 9000 + trial;
    const Model m = random_model(rng, 2 + static_cast<int>(rng.below(10)),
                                 2 + static_cast<int>(rng.below(12)));
    const Solution cold = solve(m, opt);
    if (cold.status != Status::Optimal) continue;
    ++optimal;
    ASSERT_FALSE(cold.basis.empty());
    const WarmCounters before = WarmCounters::snap();
    const Solution ws = solve(m, opt, &cold.basis);
    const WarmCounters d = WarmCounters::snap().delta_since(before);
    ASSERT_EQ(ws.status, Status::Optimal) << "trial " << trial;
    EXPECT_NEAR(ws.objective, cold.objective, 1e-7 * (1 + std::abs(cold.objective)))
        << "trial " << trial;
    EXPECT_TRUE(ws.certificate.ok()) << "trial " << trial << ": " << ws.certificate.summary();
    EXPECT_EQ(d.adopted() + d.rejected, 1) << "trial " << trial;
    adopted += d.adopted();
  }
  ASSERT_GT(optimal, 20);
  // A solver's own optimal basis must essentially always be adoptable.
  EXPECT_GE(adopted, optimal - 2);
}

TEST(WarmStart, StaleBasisAfterRhsEditMatchesCold) {
  Rng rng(1717);
  SimplexOptions opt;
  int compared = 0;
  for (int trial = 0; trial < 150; ++trial) {
    opt.seed = 5000 + trial;
    Model m = random_model(rng, 3 + static_cast<int>(rng.below(9)),
                           3 + static_cast<int>(rng.below(10)));
    const Solution base = solve(m, opt);
    if (base.status != Status::Optimal) continue;

    // Move one rhs entry, annotate the hint the way a sweep would, and
    // check the stale basis still yields the cold answer.
    const int row = static_cast<int>(rng.below(m.num_rows()));
    m.set_rhs(row, m.rhs(row) + rng.uniform(-1.5, 1.5));
    Basis warm = base.basis;
    warm.edited_rows.assign(1, row);
    expect_warm_matches_cold(m, warm, opt, "hinted stale basis");
    // The hint is optional: the probe screen must cope without it.
    warm.edited_rows.clear();
    expect_warm_matches_cold(m, warm, opt, "unhinted stale basis");
    ++compared;
  }
  ASSERT_GT(compared, 20);
}

TEST(WarmStart, GarbageBasesNeverChangeTheAnswer) {
  Rng rng(99);
  SimplexOptions opt;
  opt.seed = 31;
  // Draw until a model with a certified optimum shows up (most draws do).
  Model m;
  Solution cold;
  for (int attempt = 0; attempt < 50; ++attempt) {
    m = random_model(rng, 8, 10);
    cold = solve(m, opt);
    if (cold.status == Status::Optimal) break;
  }
  ASSERT_EQ(cold.status, Status::Optimal);
  const int n = static_cast<int>(cold.basis.stat.size());
  const int rows = static_cast<int>(cold.basis.basic.size());

  {  // Wrong dimensions: must be rejected outright, then solve cold.
    Basis b;
    b.stat.assign(3, 0);
    b.basic.assign(2, 0);
    const WarmCounters before = WarmCounters::snap();
    expect_warm_matches_cold(m, b, opt, "wrong dimensions");
    EXPECT_EQ(WarmCounters::snap().delta_since(before).rejected, 1);
  }
  {  // Junk status bytes are re-derived, not trusted.
    Basis b = cold.basis;
    for (std::size_t j = 0; j < b.stat.size(); j += 2) b.stat[j] = 207;
    expect_warm_matches_cold(m, b, opt, "junk status bytes");
  }
  {  // Duplicate basic entries: unrecoverable, must fall back cold.
    Basis b = cold.basis;
    ASSERT_GE(rows, 2);
    b.basic[1] = b.basic[0];
    const WarmCounters before = WarmCounters::snap();
    expect_warm_matches_cold(m, b, opt, "duplicate basic list");
    EXPECT_EQ(WarmCounters::snap().delta_since(before).rejected, 1);
  }
  {  // Out-of-range basic entries: likewise.
    Basis b = cold.basis;
    b.basic[0] = n + 100;
    const WarmCounters before = WarmCounters::snap();
    expect_warm_matches_cold(m, b, opt, "out-of-range basic entry");
    EXPECT_EQ(WarmCounters::snap().delta_since(before).rejected, 1);
  }
  {  // Out-of-range edited_rows hints are ignored, not trusted.
    Basis b = cold.basis;
    b.edited_rows = {-5, 10000};
    expect_warm_matches_cold(m, b, opt, "garbage edited_rows hint");
  }
}

TEST(WarmStart, SingularBasisIsRepairedOrRejected) {
  // A structural column with no constraint entries makes any basis that
  // includes it singular; the repair must patch it out (or reject) and
  // still reproduce the cold answer.
  Model m;
  m.add_col(0.0, kInf, 1.0);
  m.add_col(0.0, kInf, 2.0);
  const int zero_col = m.add_col(0.0, 5.0, 0.0);  // never touches a row
  const int r0 = m.add_row(RowType::GE, 2.0);
  m.add_term(r0, 0, 1.0);
  m.add_term(r0, 1, 1.0);
  const int r1 = m.add_row(RowType::LE, 10.0);
  m.add_term(r1, 0, 1.0);
  m.add_term(r1, 1, 3.0);
  SimplexOptions opt;
  const Solution cold = solve(m, opt);
  ASSERT_EQ(cold.status, Status::Optimal);

  Basis b = cold.basis;
  // Force the zero column basic in place of whatever row-0's basic was.
  b.stat[static_cast<std::size_t>(b.basic[0])] = 1;  // kAtLower
  b.basic[0] = zero_col;
  b.stat[static_cast<std::size_t>(zero_col)] = 0;  // kBasic
  const WarmCounters before = WarmCounters::snap();
  expect_warm_matches_cold(m, b, opt, "singular basis");
  const WarmCounters d = WarmCounters::snap().delta_since(before);
  EXPECT_EQ(d.repaired + d.rejected, 1);
}

TEST(WarmStart, SweepChainMatchesColdAndAdoptsBases) {
  const Torus torus(4);
  const std::vector<double> grid = locality_grid(1.0, 2.0, 6);
  SweepConfig warm_cfg;
  warm_cfg.warm_start = true;
  warm_cfg.chains = 1;
  SweepConfig cold_cfg = warm_cfg;
  cold_cfg.warm_start = false;

  const WarmCounters before = WarmCounters::snap();
  const auto warm = worst_case_tradeoff(torus, grid, {}, nullptr, warm_cfg);
  const WarmCounters d = WarmCounters::snap().delta_since(before);
  const auto cold = worst_case_tradeoff(torus, grid, {}, nullptr, cold_cfg);

  ASSERT_EQ(warm.size(), grid.size());
  ASSERT_EQ(cold.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_TRUE(warm[i].solved()) << "point " << i << ": " << warm[i].note;
    ASSERT_TRUE(cold[i].solved()) << "point " << i << ": " << cold[i].note;
    EXPECT_TRUE(warm[i].certificate.pass) << warm[i].certificate.summary();
    EXPECT_NEAR(warm[i].capacity_fraction, cold[i].capacity_fraction, 1e-8) << "point " << i;
  }
  // Every point after the chain head gets a warm basis, and the sweep is
  // only worth shipping if those bases are actually adopted.
  EXPECT_EQ(d.adopted() + d.rejected, static_cast<std::int64_t>(grid.size()) - 1);
  EXPECT_GT(d.adopted(), 0);
  EXPECT_GT(d.phase1_skipped, 0);
}

TEST(WarmStart, ParallelSweepBitwiseMatchesSerial) {
  const Torus torus(4);
  const std::vector<double> grid = locality_grid(1.0, 2.0, 7);
  SweepConfig cfg;
  cfg.warm_start = true;
  cfg.chains = 2;  // fixed partition -> identical warm seeds either way

  const auto serial = worst_case_tradeoff(torus, grid, {}, nullptr, cfg);
  ThreadPool pool(3);
  const auto parallel = worst_case_tradeoff(torus, grid, {}, &pool, cfg);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].status, parallel[i].status) << "point " << i;
    // Bitwise: the same chain partition must run the same pivot sequence.
    EXPECT_EQ(std::memcmp(&serial[i].capacity_fraction, &parallel[i].capacity_fraction,
                          sizeof(double)),
              0)
        << "point " << i << ": " << serial[i].capacity_fraction << " vs "
        << parallel[i].capacity_fraction;
    EXPECT_EQ(serial[i].locality, parallel[i].locality) << "point " << i;
  }
}

TEST(WarmStart, UnsolvablePointIsNaNAndChainSurvives) {
  const Torus torus(4);
  // 0.5 is below the minimal normalized locality of 1.0 -> infeasible; the
  // rest of the chain must still reach certified optima off a cold restart.
  const std::vector<double> grid = {0.5, 1.0, 1.5, 2.0};
  SweepConfig cfg;
  cfg.warm_start = true;
  cfg.chains = 1;
  const auto pts = worst_case_tradeoff(torus, grid, {}, nullptr, cfg);
  ASSERT_EQ(pts.size(), grid.size());
  EXPECT_FALSE(pts[0].solved());
  EXPECT_TRUE(std::isnan(pts[0].capacity_fraction));
  for (std::size_t i = 1; i < pts.size(); ++i) {
    ASSERT_TRUE(pts[i].solved()) << "point " << i << ": " << pts[i].note;
    EXPECT_TRUE(pts[i].certificate.pass) << pts[i].certificate.summary();
    EXPECT_FALSE(std::isnan(pts[i].capacity_fraction));
  }
}

}  // namespace
}  // namespace tcr::lp
