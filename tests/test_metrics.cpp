// Channel loads (eq. 2/3), throughput (eq. 4), worst-case via matching
// (eq. 7 / [11]) and the sampled average case (eq. 9).
#include <gtest/gtest.h>

#include "tcr/metrics/average_case.hpp"
#include "tcr/metrics/loads.hpp"
#include "tcr/metrics/worst_case.hpp"
#include "tcr/routing/dor.hpp"
#include "tcr/routing/valiant.hpp"
#include "tcr/traffic/patterns.hpp"
#include "tcr/traffic/sampler.hpp"
#include "tcr/util/rng.hpp"

namespace tcr {
namespace {

TEST(Loads, UniformMatchesDirectComputation) {
  for (int k : {3, 4, 5}) {
    const Torus t(k);
    const TorusRouting dor = make_dor(t);
    const auto gamma = channel_loads(dor, uniform_traffic(t.num_nodes()));
    double gmax = 0.0;
    for (double g : gamma) gmax = std::max(gmax, g);
    EXPECT_NEAR(gmax, uniform_max_load(dor), 1e-9) << "k=" << k;
    EXPECT_NEAR(gmax, t.ideal_uniform_load(), 1e-9) << "k=" << k;
  }
}

TEST(Loads, PermutationOverloadAgreesWithMatrix) {
  const Torus t(5);
  const TorusRouting dor = make_dor(t);
  const auto perm = tornado_permutation(t);
  const auto g1 = channel_loads(dor, perm);
  const auto g2 = channel_loads(dor, permutation_matrix(perm));
  ASSERT_EQ(g1.size(), g2.size());
  for (std::size_t i = 0; i < g1.size(); ++i) EXPECT_NEAR(g1[i], g2[i], 1e-9);
}

TEST(Loads, TotalLoadEqualsTotalHops) {
  // Conservation: sum of channel loads = sum over pairs of expected hops.
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  const auto gamma = channel_loads(dor, uniform_traffic(t.num_nodes()));
  double total = 0.0;
  for (double g : gamma) total += g;
  EXPECT_NEAR(total, dor.avg_path_length() * t.num_nodes(), 1e-9);  // N * H_avg
}

TEST(Loads, ThroughputIsReciprocal) {
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  const auto u = uniform_traffic(t.num_nodes());
  EXPECT_NEAR(throughput(dor, u) * max_channel_load(dor, u), 1.0, 1e-12);
}

TEST(WorstCase, DominatesRandomPermutationSampling) {
  // gamma_wc from the Hungarian matching must upper-bound the load of every
  // sampled permutation, and the witness permutation must attain it.
  const Torus t(3);
  const TorusRouting dor = make_dor(t);
  const auto wc = worst_case(dor);
  Rng rng(77);
  double best_sampled = 0.0;
  for (int trial = 0; trial < 3000; ++trial) {
    const auto perm = rng.permutation(t.num_nodes());
    const double g = max_channel_load(dor, perm);
    ASSERT_LE(g, wc.gamma + 1e-9);
    best_sampled = std::max(best_sampled, g);
  }
  EXPECT_NEAR(max_channel_load(dor, wc.permutation), wc.gamma, 1e-9);
  // Random search should get reasonably close on a 9-node torus.
  EXPECT_GT(best_sampled, 0.8 * wc.gamma);
}

TEST(WorstCase, WitnessPermutationAchievesGamma) {
  for (int k : {3, 4, 6}) {
    const Torus t(k);
    for (auto make : {make_dor, make_valiant}) {
      const TorusRouting r = make(t);
      const auto wc = worst_case(r);
      // Achievability: applying the witness reproduces gamma_wc (it may hit
      // it on a different channel of the same class).
      EXPECT_NEAR(max_channel_load(r, wc.permutation), wc.gamma, 1e-9)
          << r.name() << " k=" << k;
    }
  }
}

TEST(WorstCase, DominatesEveryNamedPattern) {
  const Torus t(6);
  const TorusRouting dor = make_dor(t);
  const double gamma_wc = worst_case(dor).gamma;
  for (const char* name : {"transpose", "tornado", "complement", "shift"}) {
    EXPECT_GE(gamma_wc + 1e-9, max_channel_load(dor, named_permutation(t, name))) << name;
  }
  EXPECT_GE(gamma_wc + 1e-9, uniform_max_load(dor));  // permutations dominate U
}

TEST(WorstCase, PairLoadMatrixRowsAreTranslations) {
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  const int c0 = t.channel(0, Dir::PX);
  const DenseMatrix w = pair_load_matrix(dor, c0);
  const DenseMatrix& l0 = dor.load_table();
  for (int s = 0; s < t.num_nodes(); ++s) {
    for (int d = 0; d < t.num_nodes(); ++d) {
      const int e = t.offset(s, d);
      const int ct = t.translate_channel(c0, t.negate_node(s));
      EXPECT_DOUBLE_EQ(w(s, d), l0(e, ct));
    }
  }
}

TEST(AverageCase, ApproximationCloseToTrueMean) {
  // Paper §3.3: the arithmetic-mean approximation is within a few percent of
  // the true mean throughput.
  const Torus t(4);
  Rng rng(5);
  const auto samples = sample_traffic_set(rng, t.num_nodes(), 60, "sinkhorn");
  for (auto make : {make_dor, make_valiant, make_ival}) {
    const TorusRouting r = make(t);
    const auto res = average_case(r, samples);
    EXPECT_GT(res.approx_throughput, 0.0);
    EXPECT_NEAR(res.approx_throughput / res.true_throughput, 1.0, 0.10) << r.name();
    // Jensen: mean of reciprocals >= reciprocal of mean.
    EXPECT_GE(res.true_throughput + 1e-12, res.approx_throughput) << r.name();
  }
}

TEST(AverageCase, ParallelMatchesSequential) {
  const Torus t(4);
  Rng rng(6);
  const auto samples = sample_traffic_set(rng, t.num_nodes(), 16, "perm");
  const TorusRouting dor = make_dor(t);
  const auto seq = average_case(dor, samples);
  ThreadPool pool(4);
  const auto par = average_case(dor, samples, &pool);
  EXPECT_NEAR(seq.mean_max_load, par.mean_max_load, 1e-12);
  EXPECT_NEAR(seq.true_throughput, par.true_throughput, 1e-12);
}

TEST(AverageCase, UniformSamplesGiveUniformLoad) {
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  const std::vector<TrafficMatrix> samples{uniform_traffic(t.num_nodes())};
  const auto res = average_case(dor, samples);
  EXPECT_NEAR(res.mean_max_load, t.ideal_uniform_load(), 1e-9);
}

}  // namespace
}  // namespace tcr
