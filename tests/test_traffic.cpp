#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "tcr/traffic/patterns.hpp"
#include "tcr/traffic/sampler.hpp"
#include "tcr/traffic/traffic.hpp"
#include "tcr/util/check.hpp"

namespace tcr {
namespace {

TEST(Traffic, UniformIsDoublyStochastic) {
  const auto u = uniform_traffic(16);
  EXPECT_TRUE(is_doubly_stochastic(u));
  EXPECT_FALSE(is_permutation(u));
}

TEST(Traffic, PermutationMatrixChecks) {
  const auto p = permutation_matrix({2, 0, 1});
  EXPECT_TRUE(is_doubly_stochastic(p));
  EXPECT_TRUE(is_permutation(p));
  EXPECT_DOUBLE_EQ(p(0, 2), 1.0);
  EXPECT_THROW(permutation_matrix({0, 0, 1}), Error);
}

TEST(Patterns, NamedPermutationsAreBijective) {
  const Torus t(6);
  for (const char* name : {"transpose", "tornado", "complement", "shift", "bitrev", "rotate"}) {
    const auto perm = named_permutation(t, name);
    EXPECT_TRUE(is_permutation(permutation_matrix(perm))) << name;
  }
  EXPECT_THROW(named_permutation(t, "nope"), Error);
}

TEST(Patterns, TornadoShiftsHalfRing) {
  const Torus t(8);
  const auto perm = tornado_permutation(t);
  // ceil(8/2) - 1 = 3 hops in +X.
  EXPECT_EQ(perm[t.node(1, 2)], t.node(4, 2));
  EXPECT_EQ(perm[t.node(6, 0)], t.node(1, 0));
}

TEST(Patterns, TransposeFixesDiagonal) {
  const Torus t(5);
  const auto perm = transpose_permutation(t);
  EXPECT_EQ(perm[t.node(3, 3)], t.node(3, 3));
  EXPECT_EQ(perm[t.node(1, 4)], t.node(4, 1));
}

TEST(Patterns, BitReverseIsPermutationForAnyN) {
  for (int n : {1, 2, 7, 9, 16, 36, 64, 100}) {
    EXPECT_TRUE(is_permutation(permutation_matrix(bit_reverse_permutation(n)))) << n;
  }
  // Power-of-two case reduces to the classic bit reversal.
  const auto p8 = bit_reverse_permutation(8);
  EXPECT_EQ(p8[1], 4);
  EXPECT_EQ(p8[3], 6);
  EXPECT_EQ(p8[7], 7);
}

TEST(Patterns, RotationHasOrderFour) {
  const Torus t(5);
  const auto p = rotation_permutation(t);
  for (int n = 0; n < t.num_nodes(); ++n) {
    EXPECT_EQ(p[p[p[p[n]]]], n);
  }
}

TEST(Sampler, BirkhoffSamplesAreDoublyStochastic) {
  Rng rng(42);
  for (int j : {1, 2, 4, 8}) {
    const auto m = birkhoff_sample(rng, 12, j);
    EXPECT_LT(doubly_stochastic_error(m), 1e-9) << "J=" << j;
    if (j == 1) EXPECT_TRUE(is_permutation(m));
  }
}

TEST(Sampler, SinkhornConverges) {
  Rng rng(43);
  const auto m = sinkhorn_sample(rng, 20);
  EXPECT_LT(doubly_stochastic_error(m), 1e-6);
  // Dense interior point: no entry should be exactly zero or one.
  for (int i = 0; i < m.rows(); ++i)
    for (int j = 0; j < m.cols(); ++j) {
      EXPECT_GT(m(i, j), 0.0);
      EXPECT_LT(m(i, j), 0.9);
    }
}

TEST(Sampler, SinkhornRowColSumsWithinTightTolerance) {
  // Regression: the old fixed-iteration Sinkhorn left residuals around 1e-5
  // on larger matrices. The sampler now iterates to tolerance and finishes
  // with an exact row normalization, so both sum families must sit at
  // rounding level for every size and seed.
  for (const int n : {8, 20, 64, 100}) {
    for (const std::uint64_t seed : {1ULL, 43ULL, 20260806ULL}) {
      Rng rng(seed);
      const auto m = sinkhorn_sample(rng, n);
      double err = 0.0;
      for (const double s : m.row_sums()) err = std::max(err, std::abs(s - 1.0));
      for (const double s : m.col_sums()) err = std::max(err, std::abs(s - 1.0));
      EXPECT_LE(err, 1e-10) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(Sampler, SampleSetKindsAndDeterminism) {
  Rng a(7), b(7);
  const auto sa = sample_traffic_set(a, 9, 5, "perm");
  const auto sb = sample_traffic_set(b, 9, 5, "perm");
  ASSERT_EQ(sa.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    for (int r = 0; r < 9; ++r)
      for (int c = 0; c < 9; ++c) EXPECT_DOUBLE_EQ(sa[i](r, c), sb[i](r, c));
  }
  Rng c(8);
  EXPECT_EQ(sample_traffic_set(c, 9, 3, "birkhoff4").size(), 3u);
  EXPECT_EQ(sample_traffic_set(c, 9, 3, "sinkhorn").size(), 3u);
  EXPECT_THROW(sample_traffic_set(c, 9, 1, "bogus"), Error);
}

}  // namespace
}  // namespace tcr
