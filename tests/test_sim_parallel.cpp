// Parallel (sharded) simulator: bitwise equality of every statistic across
// shard and thread counts, watchdog and fault-window behavior under
// sharding, mailbox handoffs under real threads (the TSan job runs the
// ShardedSimTsan suite), and the measurement-window accounting contract —
// partial windows are flushed on a natural phase end but discarded on
// cancellation, so cancelled runs report the same rates an uninterrupted
// run would over the same full-window prefix.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "tcr/fault/fault.hpp"
#include "tcr/guard/guard.hpp"
#include "tcr/guard/journal.hpp"
#include "tcr/telemetry/telemetry.hpp"
#include "tcr/metrics/worst_case.hpp"
#include "tcr/routing/dor.hpp"
#include "tcr/sim/simulator.hpp"
#include "tcr/traffic/patterns.hpp"

namespace tcr {
namespace {

// Bitwise comparison of two runs. Integer fields are exact by construction;
// the doubles are exact too because every input to them (window counts,
// latency sums, histogram bucket counts) is integral and accumulated in a
// shard-count-independent order — that is the determinism claim under test.
void expect_same_stats(const SimStats& a, const SimStats& b, const std::string& what) {
  EXPECT_EQ(a.deadlocked, b.deadlocked) << what;
  EXPECT_EQ(a.cancelled, b.cancelled) << what;
  EXPECT_EQ(a.injected, b.injected) << what;
  EXPECT_EQ(a.ejected, b.ejected) << what;
  EXPECT_EQ(a.cycles_run, b.cycles_run) << what;
  EXPECT_EQ(a.measured_cycles, b.measured_cycles) << what;
  EXPECT_EQ(a.flit_cycles, b.flit_cycles) << what;
  EXPECT_EQ(a.offered_rate, b.offered_rate) << what;
  EXPECT_EQ(a.accepted_rate, b.accepted_rate) << what;
  EXPECT_EQ(a.avg_latency, b.avg_latency) << what;
  EXPECT_EQ(a.max_latency, b.max_latency) << what;
  EXPECT_EQ(a.p50_latency, b.p50_latency) << what;
  EXPECT_EQ(a.p95_latency, b.p95_latency) << what;
  EXPECT_EQ(a.p99_latency, b.p99_latency) << what;
  ASSERT_EQ(a.windows.size(), b.windows.size()) << what;
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].cycles, b.windows[i].cycles) << what << " window " << i;
    EXPECT_EQ(a.windows[i].injected, b.windows[i].injected) << what << " window " << i;
    EXPECT_EQ(a.windows[i].ejected, b.windows[i].ejected) << what << " window " << i;
  }
}

SimConfig matrix_config() {
  SimConfig cfg;
  cfg.vcs = 4;
  cfg.warmup_cycles = 150;
  cfg.measure_cycles = 900;
  cfg.drain_cycles = 1500;
  cfg.stats_window = 200;
  cfg.deadlock_threshold = 600;
  return cfg;
}

// The headline determinism property: for k in {4, 8} and uniform / tornado /
// adversarial worst-case traffic, every shard count produces statistics
// bitwise identical to the unsharded run — windows included, so even the
// per-window injection/ejection sampling is invariant.
TEST(ShardMatrix, ShardCountNeverChangesAnyStatistic) {
  for (const int k : {4, 8}) {
    const Torus t(k);
    const TorusRouting dor = make_dor(t);
    dor.load_table();
    const std::vector<std::pair<std::string, std::vector<int>>> patterns = {
        {"uniform", {}},
        {"tornado", tornado_permutation(t)},
        {"worst-case", worst_case(dor).permutation},
    };
    for (const auto& [name, perm] : patterns) {
      SimConfig cfg = matrix_config();
      const SimStats base = simulate(dor, 0.45, perm, cfg);
      EXPECT_GT(base.ejected, 0) << "k=" << k << " " << name;
      for (const int shards : {2, 4, 7}) {
        cfg.shards = shards;
        const SimStats sharded = simulate(dor, 0.45, perm, cfg);
        expect_same_stats(base, sharded,
                          "k=" + std::to_string(k) + " " + name + " shards=" +
                              std::to_string(shards));
      }
    }
  }
}

// The deadlock watchdog must honor its threshold under sharding exactly as
// it does serially: with every link down nothing ever moves, and the
// coordinator's serial tick fires the watchdog right after the configured
// number of quiet cycles regardless of thread/shard decomposition.
TEST(ShardedSim, WatchdogFiresAtThresholdUnderSharding) {
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  fault::SimFaultPlan all_down;
  for (int c = 0; c < t.num_channels(); ++c) {
    fault::LinkFault f;
    f.channel = c;
    f.from_cycle = 0;
    f.until_cycle = 1L << 30;
    all_down.links.push_back(f);
  }
  SimConfig cfg;
  cfg.vcs = 2;
  cfg.warmup_cycles = 700;
  cfg.measure_cycles = 100;
  cfg.drain_cycles = 100;
  cfg.deadlock_threshold = 120;
  cfg.faults = &all_down;
  cfg.threads = 2;
  cfg.shards = 5;
  const auto stats = simulate(dor, 1.0, {}, cfg);
  EXPECT_TRUE(stats.deadlocked);
  EXPECT_GE(stats.cycles_run, 120);
  EXPECT_LE(stats.cycles_run, 122);
}

// A fault plan whose link-down window covers part of the run must leave
// identical fingerprints (counts, rates, latencies) for serial and sharded
// execution — the per-cycle fault lookups happen inside the phase kernels,
// so this pins that they are applied on the same cycles in both modes.
TEST(ShardedSim, FaultWindowsMatchSerialBitwise) {
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  fault::SimFaultPlan plan;
  for (const int c : {3, 17, 40, 41, 55}) {
    fault::LinkFault f;
    f.channel = c;
    f.from_cycle = 200;
    f.until_cycle = 600;
    plan.links.push_back(f);
  }
  SimConfig cfg = matrix_config();
  cfg.faults = &plan;
  const SimStats base = simulate(dor, 0.4, {}, cfg);
  EXPECT_GT(base.ejected, 0);
  cfg.shards = 4;
  const SimStats sharded = simulate(dor, 0.4, {}, cfg);
  expect_same_stats(base, sharded, "faulted shards=4");
}

// Real worker threads exchanging flits through the (src, dst)-shard
// mailboxes around the epoch barriers. The CI thread-sanitizer job runs
// this suite (--gtest_filter='ShardedSimTsan.*') to certify the handoff
// protocol data-race-free; the equality check doubles as a correctness
// pin under genuine concurrency.
TEST(ShardedSimTsan, MailboxHandoffsAreRaceFreeAndDeterministic) {
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  SimConfig cfg;
  cfg.vcs = 4;
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 400;
  cfg.drain_cycles = 800;
  cfg.stats_window = 100;
  cfg.deadlock_threshold = 500;
  const SimStats base = simulate(dor, 0.6, tornado_permutation(t), cfg);
  EXPECT_GT(base.ejected, 0);
  cfg.threads = 4;
  cfg.shards = 4;
  const SimStats threaded = simulate(dor, 0.6, tornado_permutation(t), cfg);
  expect_same_stats(base, threaded, "threads=4 shards=4");
}

// Natural end of the measurement phase mid-window: the short final window
// is flushed (its cycles really were measured), so the rate denominator is
// exactly measure_cycles.
TEST(WindowAccounting, NaturalEndFlushesShortFinalWindow) {
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  SimConfig cfg;
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 300;
  cfg.drain_cycles = 500;
  cfg.stats_window = 250;
  const SimStats s = simulate(dor, 0.3, {}, cfg);
  ASSERT_EQ(s.windows.size(), 2u);
  EXPECT_EQ(s.windows[0].cycles, 250);
  EXPECT_EQ(s.windows[1].cycles, 50);
  EXPECT_EQ(s.measured_cycles, 300);
  long injected = 0;
  for (const auto& w : s.windows) injected += w.injected;
  EXPECT_EQ(s.offered_rate,
            static_cast<double>(injected) / (static_cast<double>(t.num_nodes()) * 300.0));
}

// Zero-length phases fall through without simulating a stray cycle, at any
// shard count.
TEST(WindowAccounting, ZeroLengthPhasesAreExactNoOps) {
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  for (const int shards : {0, 3}) {
    SimConfig cfg;
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 0;
    cfg.drain_cycles = 0;
    cfg.shards = shards;
    const SimStats s = simulate(dor, 0.3, {}, cfg);
    EXPECT_EQ(s.cycles_run, 0);
    EXPECT_EQ(s.injected, 0);
    EXPECT_TRUE(s.windows.empty());
    EXPECT_EQ(s.offered_rate, 0.0);

    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 120;
    cfg.stats_window = 250;
    const SimStats m = simulate(dor, 0.3, {}, cfg);
    ASSERT_EQ(m.windows.size(), 1u);
    EXPECT_EQ(m.windows[0].cycles, 120);
    EXPECT_EQ(m.measured_cycles, 120);
  }
}

// The regression this file exists to pin: a deadline/cancel stopping the
// run mid-window must not dilute the rates with a partially-measured
// window. The cancelled run's windows must be exactly the prefix an
// uninterrupted run (same seed, same schedule) reports, every kept window
// full-length, and the offered/accepted rates recomputable from those
// windows alone.
TEST(WindowAccounting, CancelMidWindowMatchesUninterruptedPrefix) {
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  SimConfig cfg;
  cfg.vcs = 4;
  cfg.warmup_cycles = 64;
  cfg.measure_cycles = 40000;
  cfg.drain_cycles = 0;
  cfg.stats_window = 128;
  const SimStats full = simulate(dor, 0.3, {}, cfg);

  guard::RunBudget budget;
  budget.deadline_seconds = 0.015;
  guard::CancelToken token(budget);
  cfg.cancel = &token;
  const SimStats cut = simulate(dor, 0.3, {}, cfg);
  ASSERT_TRUE(cut.cancelled);
  EXPECT_FALSE(cut.note.empty());
  if (cut.windows.empty()) {
    GTEST_SKIP() << "deadline fired before the first full window on this machine";
  }

  // Every kept window is full-length: the partial one was discarded.
  for (const auto& w : cut.windows) EXPECT_EQ(w.cycles, 128);
  EXPECT_EQ(cut.measured_cycles, static_cast<long>(cut.windows.size()) * 128);

  // Identical evolution until the stop: the kept windows are a prefix of
  // the uninterrupted run's.
  ASSERT_LE(cut.windows.size(), full.windows.size());
  long injected = 0, ejected = 0;
  for (std::size_t i = 0; i < cut.windows.size(); ++i) {
    EXPECT_EQ(cut.windows[i].cycles, full.windows[i].cycles) << "window " << i;
    EXPECT_EQ(cut.windows[i].injected, full.windows[i].injected) << "window " << i;
    EXPECT_EQ(cut.windows[i].ejected, full.windows[i].ejected) << "window " << i;
    injected += cut.windows[i].injected;
    ejected += cut.windows[i].ejected;
  }
  const double node_cycles =
      static_cast<double>(t.num_nodes()) * static_cast<double>(cut.measured_cycles);
  EXPECT_EQ(cut.offered_rate, static_cast<double>(injected) / node_cycles);
  EXPECT_EQ(cut.accepted_rate, static_cast<double>(ejected) / node_cycles);
}

// Heartbeat column of the determinism matrix: simulating under an active
// telemetry session — at interval 0, so every epoch-cadence site actually
// emits — must leave every statistic bitwise identical, serial and sharded.
// A heartbeat only *reads* simulator state; nothing downstream of the
// numerics reads telemetry state (the tcr::telemetry determinism contract).
TEST(ShardMatrix, HeartbeatOnNeverChangesAnyStatistic) {
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  dor.load_table();
  const std::vector<std::pair<std::string, std::vector<int>>> patterns = {
      {"uniform", {}},
      {"worst-case", worst_case(dor).permutation},
  };
  for (const auto& [name, perm] : patterns) {
    SimConfig cfg = matrix_config();
    const SimStats base = simulate(dor, 0.45, perm, cfg);
    ASSERT_GT(base.ejected, 0) << name;

    const std::string hb = ::testing::TempDir() + "sim_parallel_" + name + ".hb";
    std::remove(hb.c_str());
    telemetry::HeartbeatConfig tcfg;
    tcfg.path = hb;
    tcfg.interval_seconds = 0.0;
    tcfg.bench = "sim_matrix";
    std::string error;
    ASSERT_TRUE(telemetry::start(tcfg, &error)) << error;
    const SimStats serial_hb = simulate(dor, 0.45, perm, cfg);
    cfg.shards = 4;
    const SimStats sharded_hb = simulate(dor, 0.45, perm, cfg);
    telemetry::stop();

    expect_same_stats(base, serial_hb, name + " heartbeat-on serial");
    expect_same_stats(base, sharded_hb, name + " heartbeat-on shards=4");

    // The session really sampled the runs: the stream must carry sim
    // progress records for the measure phase.
    const guard::JournalContents contents = guard::read_journal(hb);
    ASSERT_TRUE(contents.ok) << contents.error;
    EXPECT_GT(contents.records.size(), 2u) << name;
  }
}

}  // namespace
}  // namespace tcr
