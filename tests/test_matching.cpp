#include <gtest/gtest.h>

#include "tcr/matching/hungarian.hpp"
#include "tcr/util/rng.hpp"

namespace tcr {
namespace {

TEST(Hungarian, HandChecked3x3) {
  DenseMatrix w(3, 3);
  // max weight: (0,1)=8, (1,2)=9, (2,0)=7 -> 24.
  const double vals[3][3] = {{1, 8, 2}, {3, 4, 9}, {7, 5, 6}};
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) w(i, j) = vals[i][j];
  const auto res = solve_assignment_max(w);
  EXPECT_NEAR(res.value, 24.0, 1e-12);
  EXPECT_EQ(res.assignment[0], 1);
  EXPECT_EQ(res.assignment[1], 2);
  EXPECT_EQ(res.assignment[2], 0);
}

TEST(Hungarian, MinEqualsNegatedMax) {
  Rng rng(4);
  DenseMatrix w(5, 5);
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 5; ++j) w(i, j) = rng.uniform(0, 10);
  DenseMatrix neg(5, 5);
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 5; ++j) neg(i, j) = -w(i, j);
  EXPECT_NEAR(solve_assignment_max(w).value, -solve_assignment_min(neg).value, 1e-10);
}

TEST(Hungarian, MatchesBruteForceOnRandom) {
  Rng rng(21);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 1 + static_cast<int>(rng.below(7));
    DenseMatrix w(n, n);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) w(i, j) = rng.uniform(0, 5);
    const auto fast = solve_assignment_max(w);
    const auto ref = assignment_max_bruteforce(w);
    ASSERT_NEAR(fast.value, ref.value, 1e-9) << "trial " << trial << " n=" << n;
    // The assignment must actually achieve the reported value.
    double check = 0.0;
    for (int i = 0; i < n; ++i) check += w(i, fast.assignment[i]);
    ASSERT_NEAR(check, fast.value, 1e-9);
  }
}

TEST(Hungarian, SparseZeroHeavyMatrices) {
  // Matrices like channel-load tables: mostly zeros.
  Rng rng(33);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + static_cast<int>(rng.below(6));
    DenseMatrix w(n, n);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        if (rng.uniform() < 0.25) w(i, j) = rng.uniform(0, 3);
    const auto fast = solve_assignment_max(w);
    const auto ref = assignment_max_bruteforce(w);
    ASSERT_NEAR(fast.value, ref.value, 1e-9);
  }
}

TEST(Hungarian, DualCertificate) {
  // Duality: value = sum of potentials and u_i + v_j >= ... (for max form,
  // u_i + v_j >= w_ij after negation bookkeeping). We verify value equality.
  Rng rng(8);
  const int n = 8;
  DenseMatrix w(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) w(i, j) = rng.uniform(0, 4);
  const auto res = solve_assignment_max(w);
  double dual = 0.0;
  for (double u : res.row_dual) dual += u;
  for (double v : res.col_dual) dual += v;
  EXPECT_NEAR(dual, res.value, 1e-9);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      EXPECT_GE(res.row_dual[i] + res.col_dual[j], w(i, j) - 1e-9);
}

TEST(Hungarian, IdentityAndPermutationMatrices) {
  const int n = 6;
  DenseMatrix w(n, n);
  for (int i = 0; i < n; ++i) w(i, (i + 2) % n) = 1.0;
  const auto res = solve_assignment_max(w);
  EXPECT_NEAR(res.value, n, 1e-12);
  for (int i = 0; i < n; ++i) EXPECT_EQ(res.assignment[i], (i + 2) % n);
}

TEST(Hungarian, ZeroMatrix) {
  DenseMatrix w(4, 4);
  const auto res = solve_assignment_max(w);
  EXPECT_NEAR(res.value, 0.0, 1e-12);
}

}  // namespace
}  // namespace tcr
