// 2TURN / 2TURNA / minimal-optimal designs (paper §5.2, §5.4).
#include <gtest/gtest.h>

#include "tcr/core/design.hpp"
#include "tcr/core/path_design.hpp"
#include "tcr/routing/two_turn.hpp"
#include "tcr/metrics/loads.hpp"
#include "tcr/metrics/worst_case.hpp"
#include "tcr/routing/romm.hpp"
#include "tcr/routing/valiant.hpp"
#include "tcr/util/rng.hpp"

namespace tcr {
namespace {

TEST(TwoTurnDesign, MatchesUnrestrictedOptimumAtK4) {
  // Paper Figure 4: "for the k = 4 and k = 6 cases, 2TURN exactly matches
  // the optimal" — both in worst-case throughput and locality.
  const Torus t(4);
  const auto two_turn = design_two_turn(t);
  ASSERT_EQ(two_turn.status, lp::Status::Optimal);
  EXPECT_NEAR(two_turn.objective, 2.0 * t.ideal_uniform_load(), 1e-5);

  const auto opt = design_worst_case_optimal(t);
  ASSERT_EQ(opt.status, lp::Status::Optimal);
  EXPECT_NEAR(two_turn.routing.normalized_locality(), opt.locality_norm, 1e-4);
}

TEST(TwoTurnDesign, ValidWithHalfCapacityWorstCase) {
  for (int k : {3, 4, 5}) {
    const Torus t(k);
    const auto res = design_two_turn(t);
    ASSERT_EQ(res.status, lp::Status::Optimal) << "k=" << k;
    EXPECT_NO_THROW(res.routing.validate(1e-5));
    // Exact worst case of the produced routing equals the LP optimum.
    EXPECT_NEAR(worst_case(res.routing).gamma, res.objective, 1e-4) << "k=" << k;
    // Better locality than IVAL at the same worst case.
    const TorusRouting ival = make_ival(t);
    EXPECT_LE(res.routing.normalized_locality(), ival.normalized_locality() + 1e-6)
        << "k=" << k;
    // All paths in the produced routing respect the 2TURN structure.
    for (int e = 1; e < t.num_nodes(); ++e) {
      for (const auto& wp : res.routing.paths(e)) {
        EXPECT_LE(count_turns(t, wp.path), 2);
        EXPECT_FALSE(has_u_turn(t, wp.path));
      }
    }
  }
}

TEST(TwoTurnADesign, BeatsOrMatches2TurnOnAverageObjective) {
  const Torus t(4);
  Rng rng(11);
  std::vector<std::vector<int>> samples;
  for (int i = 0; i < 10; ++i) samples.push_back(rng.permutation(t.num_nodes()));

  const auto avg_design = design_two_turn_avg(t, samples);
  ASSERT_EQ(avg_design.status, lp::Status::Optimal);
  EXPECT_NO_THROW(avg_design.routing.validate(1e-5));

  const auto wc_design = design_two_turn(t);
  ASSERT_EQ(wc_design.status, lp::Status::Optimal);
  double wc_mean = 0.0;
  for (const auto& perm : samples) wc_mean += max_channel_load(wc_design.routing, perm);
  wc_mean /= samples.size();
  EXPECT_LE(avg_design.objective, wc_mean + 1e-6);

  // The reported objective matches a direct evaluation on the samples.
  double mean = 0.0;
  for (const auto& perm : samples) mean += max_channel_load(avg_design.routing, perm);
  mean /= samples.size();
  EXPECT_NEAR(mean, avg_design.objective, 1e-4);
}

TEST(MinimalAvgDesign, StaysMinimalAndBeatsRommSamples) {
  // Paper §5.4: optimizing the average case over minimal paths "produces a
  // routing algorithm that matches the performance of ROMM".
  const Torus t(4);
  Rng rng(12);
  std::vector<std::vector<int>> samples;
  for (int i = 0; i < 10; ++i) samples.push_back(rng.permutation(t.num_nodes()));

  const auto res = design_minimal_avg(t, samples);
  ASSERT_EQ(res.status, lp::Status::Optimal);
  EXPECT_NEAR(res.routing.normalized_locality(), 1.0, 1e-6);

  const TorusRouting romm = make_romm(t);
  double romm_mean = 0.0;
  for (const auto& perm : samples) romm_mean += max_channel_load(romm, perm);
  romm_mean /= samples.size();
  // The LP optimum over minimal paths can only be as good or better on its
  // own samples; "matches ROMM" means the gap is small.
  EXPECT_LE(res.objective, romm_mean + 1e-6);
  EXPECT_GT(res.objective, 0.5 * romm_mean);
}

TEST(PathDesign, LexicographicSecondStagePreservesObjective) {
  const Torus t(4);
  PathDesignConfig cfg;
  cfg.objective = DesignObjective::WorstCase;
  cfg.lexicographic_locality = false;
  const auto stage1_only = design_over_paths(
      t, "2TURN-s1", [](const Torus& tt, int e) { return enumerate_two_turn_paths(tt, e); },
      cfg);
  ASSERT_EQ(stage1_only.status, lp::Status::Optimal);

  const auto full = design_two_turn(t);
  ASSERT_EQ(full.status, lp::Status::Optimal);
  EXPECT_NEAR(stage1_only.objective, full.objective, 1e-6);
  // Stage 2 can only improve locality.
  EXPECT_LE(full.routing.avg_path_length(), stage1_only.routing.avg_path_length() + 1e-6);
  // And the exact worst case of the final routing stays at the optimum.
  EXPECT_NEAR(worst_case(full.routing).gamma, full.objective, 1e-4);
}

}  // namespace
}  // namespace tcr
