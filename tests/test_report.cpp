// Tests of tcr::report — the layer behind tcr-repro: the JSON reader that
// parses back what obs::Json writes, the versioned bench-record schema, the
// golden-value comparator, and the EXPERIMENTS.md renderer. Fixture files
// live in tests/data/report/ (TCR_TEST_DATA_DIR); sample_run.jsonl is real
// bench_fig4 output, experiments_fixture.md the renderer's golden output.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "tcr/obs/json.hpp"
#include "tcr/report/golden.hpp"
#include "tcr/report/json_reader.hpp"
#include "tcr/report/markdown.hpp"
#include "tcr/report/schema.hpp"

namespace {

using namespace tcr;
using report::BenchRecord;
using report::BenchRun;
using report::Comparison;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::string data_path(const std::string& name) {
  return std::string(TCR_TEST_DATA_DIR) + "/report/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

obs::Json parse_ok(const std::string& text) {
  obs::Json doc;
  std::string err;
  EXPECT_TRUE(report::parse_json(text, &doc, &err)) << err;
  return doc;
}

// ---------------------------------------------------------------- reader

TEST(JsonReader, ParsesScalarsAndNesting) {
  const obs::Json doc =
      parse_ok(R"({"a":1,"b":-2.5e-1,"c":"s\"t","d":[true,false,null],"e":{"f":[]}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("a")->as_int(), 1);
  EXPECT_DOUBLE_EQ(doc.find("b")->as_number(), -0.25);
  EXPECT_EQ(doc.find("c")->as_string(), "s\"t");
  ASSERT_EQ(doc.find("d")->size(), 3u);
  EXPECT_TRUE(doc.find("d")->elements()[0].as_bool());
  EXPECT_TRUE(doc.find("d")->elements()[2].is_null());
  EXPECT_EQ(doc.find("e")->find("f")->size(), 0u);
}

TEST(JsonReader, UnicodeEscapesDecodeToUtf8) {
  const obs::Json doc = parse_ok(R"({"s":"éA"})");
  EXPECT_EQ(doc.find("s")->as_string(), "\xc3\xa9"  "A");
}

TEST(JsonReader, RoundTripsWhatObsJsonWrites) {
  auto original = obs::Json::object();
  original.set("name", "fig1").set("k", 8).set("frac", 0.28571428571428603);
  auto flags = obs::Json::array();
  flags.push_back(true).push_back(obs::Json());
  original.set("flags", std::move(flags));
  const obs::Json reparsed = parse_ok(original.dump());
  EXPECT_TRUE(reparsed.equals(original)) << reparsed.dump();
}

TEST(JsonReader, NanWritesAsNullAndReadsBackAsNan) {
  auto original = obs::Json::object();
  original.set("value", kNaN);
  const std::string text = original.dump();
  EXPECT_NE(text.find("null"), std::string::npos) << text;
  const obs::Json reparsed = parse_ok(text);
  EXPECT_TRUE(reparsed.find("value")->is_null());
  EXPECT_TRUE(std::isnan(reparsed.find("value")->as_number()));
  // equals() is kind-exact (Null != Double); the numeric round trip happens
  // at the as_number()/point_number() layer, which is what the gate reads.
  EXPECT_FALSE(reparsed.equals(original));
}

TEST(JsonReader, RejectsMalformedInput) {
  obs::Json doc;
  std::string err;
  EXPECT_FALSE(report::parse_json("{\"a\":1", &doc, &err));
  EXPECT_FALSE(report::parse_json("{\"a\":1} trailing", &doc, &err));
  EXPECT_NE(err.find("trailing"), std::string::npos) << err;
  EXPECT_FALSE(report::parse_json("{'a':1}", &doc, &err));
  EXPECT_FALSE(report::parse_json("", &doc, &err));
  std::string deep;
  for (int i = 0; i < 80; ++i) deep += "[";
  EXPECT_FALSE(report::parse_json(deep, &doc, &err));
  EXPECT_NE(err.find("too deep"), std::string::npos) << err;
}

TEST(JsonReader, ParsesJsonLinesWithLineNumbersInErrors) {
  std::istringstream good("{\"a\":1}\n\n{\"b\":2}\n");
  std::vector<obs::Json> docs;
  std::string err;
  ASSERT_TRUE(report::parse_json_lines(good, &docs, &err)) << err;
  EXPECT_EQ(docs.size(), 2u);

  std::istringstream bad("{\"a\":1}\n{oops}\n");
  EXPECT_FALSE(report::parse_json_lines(bad, &docs, &err));
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

// ---------------------------------------------------------------- schema

TEST(Schema, ParsesRealBenchOutput) {
  BenchRun run;
  std::string err;
  ASSERT_TRUE(report::parse_run_file(data_path("sample_run.jsonl"), &run, &err)) << err;
  EXPECT_EQ(run.schema_version, report::kSchemaVersion);
  EXPECT_EQ(run.bench, "fig4_locality_vs_radix");
  EXPECT_EQ(run.params.find("kmin")->as_int(), 3);
  ASSERT_EQ(run.records.size(), 2u);
  EXPECT_NEAR(report::point_number(run.records[0], "ival_locality"), 1.5555555555555538,
              1e-12);
  EXPECT_TRUE(std::isnan(report::point_number(run.records[0], "no_such_field")));

  auto match = obs::Json::object();
  match.set("k", 4);
  EXPECT_FALSE(report::point_matches(run.records[0], match));
  EXPECT_TRUE(report::point_matches(run.records[1], match));

  // Two records, each carrying two_turn_certificate + optimal_certificate.
  const report::CertificateTally tally = report::tally_certificates({run});
  EXPECT_EQ(tally.checked, 4);
  EXPECT_EQ(tally.failed, 0);
}

TEST(Schema, RejectsMissingOrForeignHeader) {
  const std::string path = testing::TempDir() + "/bad_run.jsonl";
  BenchRun run;
  std::string err;

  std::ofstream(path) << R"({"kind":"point","bench":"x","point":{}})" << "\n";
  EXPECT_FALSE(report::parse_run_file(path, &run, &err));
  EXPECT_NE(err.find("meta"), std::string::npos) << err;

  std::ofstream(path) << R"({"schema_version":99,"kind":"meta","bench":"x","params":{}})"
                      << "\n";
  EXPECT_FALSE(report::parse_run_file(path, &run, &err));
  EXPECT_NE(err.find("schema_version"), std::string::npos) << err;

  std::ofstream(path) << R"({"schema_version":1,"kind":"meta","bench":"x","params":{}})"
                      << "\n"
                      << R"({"kind":"point","bench":"y","point":{"v":1}})" << "\n";
  EXPECT_FALSE(report::parse_run_file(path, &run, &err));
  EXPECT_NE(err.find("does not match"), std::string::npos) << err;
}

TEST(Schema, TruncationFuzzTornTailToleratedOnlyOnRequest) {
  // A records file killed mid-write ends in a torn final line. Cut the file
  // at *every* byte inside the last record: the strict reader must fail with
  // the line number, and the tolerant reader (what tcr-repro uses) must drop
  // exactly the torn record, keep the intact prefix, and say what it did.
  const std::string meta =
      R"({"schema_version":1,"kind":"meta","bench":"x","params":{}})" "\n";
  const std::string point1 = R"({"kind":"point","bench":"x","point":{"v":1}})" "\n";
  const std::string point2 = R"({"kind":"point","bench":"x","point":{"v":2}})" "\n";
  const std::string full = meta + point1 + point2;
  const std::size_t tail_start = meta.size() + point1.size();
  const std::string path = testing::TempDir() + "/torn_run.jsonl";

  report::RunFileOptions tolerant;
  tolerant.tolerate_truncated_tail = true;
  // Stop before full.size()-1: dropping only the trailing newline leaves a
  // complete (parseable) final record, which is not a truncation at all.
  for (std::size_t cut = tail_start + 1; cut + 1 < full.size(); ++cut) {
    std::ofstream(path, std::ios::trunc) << full.substr(0, cut);

    BenchRun run;
    std::string err;
    EXPECT_FALSE(report::parse_run_file(path, &run, &err)) << "cut at " << cut;
    EXPECT_NE(err.find("line 3"), std::string::npos) << "cut at " << cut << ": " << err;

    ASSERT_TRUE(report::parse_run_file(path, &run, &err, tolerant))
        << "cut at " << cut << ": " << err;
    ASSERT_EQ(run.records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(run.records[0].point.find("v")->as_int(), 1);
    EXPECT_NE(run.truncation_note.find("dropped torn final record"), std::string::npos)
        << run.truncation_note;
    EXPECT_NE(run.truncation_note.find("line 3"), std::string::npos) << run.truncation_note;
  }

  // An intact file parses clean under both readers, with no truncation note.
  std::ofstream(path, std::ios::trunc) << full;
  BenchRun run;
  std::string err;
  ASSERT_TRUE(report::parse_run_file(path, &run, &err, tolerant)) << err;
  EXPECT_EQ(run.records.size(), 2u);
  EXPECT_TRUE(run.truncation_note.empty()) << run.truncation_note;
}

TEST(Schema, MidFileCorruptionIsHardErrorEvenWhenTolerant) {
  // Tolerance covers exactly one torn *final* record. A mangled line with
  // intact lines after it means lost data in the middle; parsing on would
  // silently drop a record, so both readers must refuse, naming the line.
  const std::string path = testing::TempDir() + "/midfile_run.jsonl";
  std::ofstream(path, std::ios::trunc)
      << R"({"schema_version":1,"kind":"meta","bench":"x","params":{}})" << "\n"
      << R"({"kind":"point","bench":"x","point":{"v)" << "\n"
      << R"({"kind":"point","bench":"x","point":{"v":2}})" << "\n";

  report::RunFileOptions tolerant;
  tolerant.tolerate_truncated_tail = true;
  BenchRun run;
  std::string err;
  EXPECT_FALSE(report::parse_run_file(path, &run, &err, tolerant));
  EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(Schema, CountsFailedCertificatesAndSkipsUnchecked) {
  BenchRun run;
  run.bench = "demo";
  BenchRecord rec;
  rec.point = parse_ok(
      R"({"certificate":{"checked":true,"pass":false},)"
      R"("optimal_certificate":{"checked":false,"pass":false},)"
      R"("two_turn_certificate":{"checked":true,"pass":true}})");
  run.records.push_back(rec);
  const report::CertificateTally tally = report::tally_certificates({run});
  EXPECT_EQ(tally.checked, 2);  // the unchecked (unsolved) one is skipped
  EXPECT_EQ(tally.failed, 1);
}

// ------------------------------------------------------------ comparator

BenchRun demo_run(const std::string& point_json) {
  BenchRun run;
  run.bench = "demo";
  run.schema_version = report::kSchemaVersion;
  BenchRecord rec;
  rec.point = parse_ok(point_json);
  run.records.push_back(rec);
  return run;
}

report::Quantity demo_quantity(double measured, double abs_tol, double rel_tol) {
  report::Quantity q;
  q.id = "demo.wc";
  q.presets = {"smoke"};
  q.bench = "demo";
  q.match = parse_ok(R"({"algorithm":"ALPHA"})");
  q.field = "wc";
  q.measured = measured;
  q.has_measured = true;
  q.abs_tol = abs_tol;
  q.rel_tol = rel_tol;
  return q;
}

TEST(Comparator, PassesWithinTolerance) {
  const auto q = demo_quantity(0.5, 1e-6, 0.0);
  const auto cmp =
      report::compare_quantity(q, {demo_run(R"({"algorithm":"ALPHA","wc":0.5000004})")});
  EXPECT_EQ(cmp.outcome, Comparison::Outcome::Pass);
  EXPECT_NEAR(cmp.delta, 4e-7, 1e-12);
}

TEST(Comparator, BreachesOnAbsoluteTolerance) {
  const auto q = demo_quantity(0.5, 1e-6, 0.0);
  const auto cmp =
      report::compare_quantity(q, {demo_run(R"({"algorithm":"ALPHA","wc":0.51})")});
  EXPECT_EQ(cmp.outcome, Comparison::Outcome::Breach);
  EXPECT_NE(cmp.reason.find("GOLDEN BREACH demo.wc"), std::string::npos) << cmp.reason;
  EXPECT_NE(cmp.reason.find("delta"), std::string::npos) << cmp.reason;
}

TEST(Comparator, RelativeToleranceScalesWithMeasured) {
  const auto q = demo_quantity(2.0, 0.0, 1e-3);  // tolerance = 0.002
  EXPECT_EQ(report::compare_quantity(q, {demo_run(R"({"algorithm":"ALPHA","wc":2.0015})")})
                .outcome,
            Comparison::Outcome::Pass);
  EXPECT_EQ(report::compare_quantity(q, {demo_run(R"({"algorithm":"ALPHA","wc":2.0030})")})
                .outcome,
            Comparison::Outcome::Breach);
}

TEST(Comparator, UnsolvedStateMustMatchRecording) {
  auto q = demo_quantity(kNaN, 0.0, 0.0);  // recorded as unsolved (null)
  EXPECT_EQ(report::compare_quantity(q, {demo_run(R"({"algorithm":"ALPHA","wc":null})")})
                .outcome,
            Comparison::Outcome::Pass);
  EXPECT_EQ(report::compare_quantity(q, {demo_run(R"({"algorithm":"ALPHA","wc":0.5})")})
                .outcome,
            Comparison::Outcome::Breach);

  q = demo_quantity(0.5, 1e-6, 0.0);  // recorded solved, fresh run unsolved
  const auto cmp =
      report::compare_quantity(q, {demo_run(R"({"algorithm":"ALPHA","wc":null})")});
  EXPECT_EQ(cmp.outcome, Comparison::Outcome::Breach);
  EXPECT_NE(cmp.reason.find("unsolved"), std::string::npos) << cmp.reason;
}

TEST(Comparator, ReportsMissingBenchAndMissingRecord) {
  const auto q = demo_quantity(0.5, 1e-6, 0.0);
  EXPECT_EQ(report::compare_quantity(q, {}).outcome, Comparison::Outcome::Missing);
  EXPECT_EQ(report::compare_quantity(q, {demo_run(R"({"algorithm":"BETA","wc":0.5})")})
                .outcome,
            Comparison::Outcome::Missing);
}

// ---------------------------------------------------------------- golden

TEST(Golden, LoadsFixtureAndFiltersByPreset) {
  report::GoldenFile golden;
  std::string err;
  ASSERT_TRUE(report::load_golden(data_path("golden_fixture.json"), &golden, &err)) << err;
  EXPECT_EQ(golden.schema_version, report::kSchemaVersion);
  ASSERT_NE(golden.find_table("claims"), nullptr);
  EXPECT_EQ(golden.find_table("sweep")->columns.size(), 2u);
  EXPECT_EQ(golden.quantities.size(), 7u);

  int smoke_gated = 0;
  for (const auto& q : golden.quantities) {
    if (q.gated() && q.applies_to("smoke")) ++smoke_gated;
  }
  EXPECT_EQ(smoke_gated, 2);
  // fix.gamma is presentation-only: never gated, still rendered.
  for (const auto& q : golden.quantities) {
    if (q.id == "fix.gamma") {
      EXPECT_FALSE(q.gated());
    }
    if (q.id == "fix.unsolved") {
      EXPECT_TRUE(q.gated() && std::isnan(q.measured));
    }
  }
}

TEST(Golden, RejectsInvalidFiles) {
  const std::string path = testing::TempDir() + "/bad_golden.json";
  report::GoldenFile golden;
  std::string err;

  std::ofstream(path) << R"({"schema_version":1,"quantities":[{"id":"a"},{"id":"a"}]})";
  EXPECT_FALSE(report::load_golden(path, &golden, &err));
  EXPECT_NE(err.find("duplicate"), std::string::npos) << err;

  std::ofstream(path)
      << R"({"schema_version":1,"quantities":[{"id":"a","bench":"b","field":"f"}]})";
  EXPECT_FALSE(report::load_golden(path, &golden, &err));
  EXPECT_NE(err.find("measured"), std::string::npos) << err;

  std::ofstream(path) << R"({"schema_version":1,"quantities":[{"id":"a","table":"t"}]})";
  EXPECT_FALSE(report::load_golden(path, &golden, &err));
  EXPECT_NE(err.find("unknown table"), std::string::npos) << err;

  std::ofstream(path) << R"({"schema_version":7,"quantities":[]})";
  EXPECT_FALSE(report::load_golden(path, &golden, &err));
  EXPECT_NE(err.find("schema_version"), std::string::npos) << err;
}

// -------------------------------------------------------------- markdown

TEST(Markdown, FormatsMeasuredValues) {
  EXPECT_EQ(report::format_measured(0.5, 4), "0.5000");
  EXPECT_EQ(report::format_measured(1.4843714374999508, 4), "1.4844");
  EXPECT_EQ(report::format_measured(1.53125, 2), "1.53");
  EXPECT_EQ(report::format_measured(kNaN, 4), "unsolved");
}

TEST(Markdown, RendersFixtureTemplateByteIdentically) {
  report::GoldenFile golden;
  std::string err;
  ASSERT_TRUE(report::load_golden(data_path("golden_fixture.json"), &golden, &err)) << err;

  const std::string tmpl =
      "<!-- tcr:generated -->\n"
      "# Fixture\n"
      "\n"
      "Prose stays.\n"
      "\n"
      "<!-- tcr:table claims -->\n"
      "\n"
      "## Sweep\n"
      "\n"
      "<!-- tcr:table sweep -->\n"
      "Tail line.\n";
  std::string rendered;
  ASSERT_TRUE(report::render_experiments(tmpl, golden, &rendered, &err)) << err;
  EXPECT_EQ(rendered, read_file(data_path("experiments_fixture.md")));
}

TEST(Markdown, RejectsUnknownDirectivesAndTables) {
  report::GoldenFile golden;
  std::string err;
  ASSERT_TRUE(report::load_golden(data_path("golden_fixture.json"), &golden, &err)) << err;

  std::string rendered;
  EXPECT_FALSE(report::render_experiments("<!-- tcr:tabel claims -->\n", golden, &rendered,
                                          &err));
  EXPECT_NE(err.find("unknown tcr directive"), std::string::npos) << err;
  EXPECT_FALSE(
      report::render_experiments("<!-- tcr:table nope -->\n", golden, &rendered, &err));
  EXPECT_NE(err.find("no table named"), std::string::npos) << err;
}

TEST(Markdown, RepoGoldenFileLoadsAndRendersRepoTemplate) {
  report::GoldenFile golden;
  std::string err;
  ASSERT_TRUE(report::load_golden(std::string(TCR_SOURCE_DIR) + "/bench/golden.json",
                                  &golden, &err))
      << err;
  std::string rendered;
  ASSERT_TRUE(report::render_experiments(
      read_file(std::string(TCR_SOURCE_DIR) + "/docs/experiments.tmpl.md"), golden,
      &rendered, &err))
      << err;
  EXPECT_NE(rendered.find("| 8 | 1.6133 | 1.4844 | 1.4790 |"), std::string::npos);
}

}  // namespace
