#include <gtest/gtest.h>

#include <set>

#include "tcr/routing/path.hpp"
#include "tcr/util/check.hpp"

namespace tcr {
namespace {

TEST(Path, FromWalkAndNodes) {
  const Torus t(4);
  const std::vector<int> walk = {t.node(0, 0), t.node(1, 0), t.node(1, 1), t.node(1, 2)};
  const Path p = path_from_walk(t, walk);
  EXPECT_EQ(p.src, 0);
  EXPECT_EQ(p.dst, t.node(1, 2));
  EXPECT_EQ(p.length(), 3);
  EXPECT_EQ(path_nodes(t, p), walk);
  EXPECT_TRUE(path_is_valid(t.graph(), p));
  EXPECT_TRUE(path_channel_simple(p));
  EXPECT_TRUE(path_node_simple(t, p));
  EXPECT_EQ(count_turns(t, p), 1);
  EXPECT_FALSE(has_u_turn(t, p));
}

TEST(Path, InvalidWalkThrows) {
  const Torus t(4);
  EXPECT_THROW(path_from_walk(t, {0, t.node(2, 2)}), Error);
  EXPECT_THROW(path_from_walk(t, {}), Error);
}

TEST(Path, UTurnDetection) {
  const Torus t(5);
  const std::vector<int> walk = {t.node(0, 0), t.node(1, 0), t.node(0, 0)};
  const Path p = path_from_walk(t, walk);
  EXPECT_TRUE(has_u_turn(t, p));
  EXPECT_FALSE(path_node_simple(t, p));
  EXPECT_TRUE(path_channel_simple(p));  // +X then -X are different channels
}

TEST(Path, TurnCounting) {
  const Torus t(6);
  // X X Y Y X -> 2 turns.
  const std::vector<int> walk = {t.node(0, 0), t.node(1, 0), t.node(2, 0),
                                 t.node(2, 1), t.node(2, 2), t.node(3, 2)};
  EXPECT_EQ(count_turns(t, path_from_walk(t, walk)), 2);
}

TEST(LoopRemoval, FigureThreeScenario) {
  // Paper Figure 3: phase 1 DOR(XY) 0->i, phase 2 DOR(XY) i->d forming a
  // loop; removal shortens the walk without changing endpoints.
  const Torus t(8);
  const int s = t.node(0, 0), i = t.node(2, 1), d = t.node(1, 1);
  std::vector<int> walk = {s,
                           t.node(1, 0),
                           t.node(2, 0),
                           t.node(2, 1),  // i
                           t.node(1, 1)};  // phase 2: -X one hop
  // Construct a looping variant: phase1 x+2,y+1 then phase2 going -X.
  const auto cleaned = remove_loops(walk);
  EXPECT_EQ(cleaned.front(), s);
  EXPECT_EQ(cleaned.back(), d);
  EXPECT_LE(cleaned.size(), walk.size());
  (void)i;
}

TEST(LoopRemoval, CutsSimpleCycle) {
  // 0 -> 1 -> 2 -> 1 -> 3 becomes 0 -> 1 -> 3.
  const std::vector<int> walk = {0, 1, 2, 1, 3};
  EXPECT_EQ(remove_loops(walk), (std::vector<int>{0, 1, 3}));
}

TEST(LoopRemoval, CutsNestedCycles) {
  const std::vector<int> walk = {0, 1, 2, 3, 2, 4, 1, 5};
  // 2..3..2 removed -> 0 1 2 4 1 5; then 1..4..1 removed -> 0 1 5.
  EXPECT_EQ(remove_loops(walk), (std::vector<int>{0, 1, 5}));
}

TEST(LoopRemoval, FullCircleCollapses) {
  const std::vector<int> walk = {0, 1, 2, 3, 0};
  EXPECT_EQ(remove_loops(walk), (std::vector<int>{0}));
}

TEST(LoopRemoval, NoOpOnSimpleWalk) {
  const std::vector<int> walk = {5, 6, 7, 8};
  EXPECT_EQ(remove_loops(walk), walk);
}

TEST(LoopRemoval, ResultIsAlwaysSimple) {
  // Property: output never revisits a node.
  const std::vector<int> walk = {0, 1, 2, 0, 3, 4, 3, 2, 5, 2, 6};
  const auto out = remove_loops(walk);
  std::set<int> seen(out.begin(), out.end());
  EXPECT_EQ(seen.size(), out.size());
  EXPECT_EQ(out.front(), walk.front());
  EXPECT_EQ(out.back(), walk.back());
}

TEST(Path, TranslationPreservesShape) {
  const Torus t(5);
  const Path p = path_from_walk(
      t, {t.node(0, 0), t.node(1, 0), t.node(1, 1), t.node(1, 2)});
  const int s = t.node(3, 4);
  const Path q = translate_path(t, p, s);
  EXPECT_EQ(q.src, s);
  EXPECT_EQ(q.dst, t.translate_node(p.dst, s));
  EXPECT_EQ(q.length(), p.length());
  EXPECT_TRUE(path_is_valid(t.graph(), q));
  for (std::size_t i = 0; i < p.channels.size(); ++i) {
    EXPECT_EQ(t.channel_dir(q.channels[i]), t.channel_dir(p.channels[i]));
  }
}

}  // namespace
}  // namespace tcr
