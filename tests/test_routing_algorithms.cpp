// Table 1 algorithms: validity (eq. 1), minimality/locality facts, and the
// worst-case / uniform throughput relations the paper states.
#include <gtest/gtest.h>

#include "tcr/metrics/loads.hpp"
#include "tcr/util/check.hpp"
#include "tcr/metrics/worst_case.hpp"
#include "tcr/routing/dor.hpp"
#include "tcr/routing/rlb.hpp"
#include "tcr/routing/romm.hpp"
#include "tcr/routing/valiant.hpp"
#include "tcr/traffic/patterns.hpp"

namespace tcr {
namespace {

class AllAlgorithms : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Radices, AllAlgorithms, ::testing::Values(3, 4, 5, 6, 8));

TEST_P(AllAlgorithms, AreValidObliviousRoutings) {
  const Torus t(GetParam());
  for (auto make : {make_dor, make_valiant, make_ival, make_romm, make_rlb, make_rlbth}) {
    const TorusRouting r = make(t);
    EXPECT_NO_THROW(r.validate()) << r.name() << " k=" << GetParam();
  }
}

TEST_P(AllAlgorithms, MinimalAlgorithmsHaveUnitLocality) {
  const Torus t(GetParam());
  EXPECT_NEAR(make_dor(t).normalized_locality(), 1.0, 1e-9);
  EXPECT_NEAR(make_romm(t).normalized_locality(), 1.0, 1e-9);
}

TEST_P(AllAlgorithms, DorAndRommRealizeCapacityOnUniform) {
  const Torus t(GetParam());
  EXPECT_NEAR(uniform_capacity_fraction(make_dor(t)), 1.0, 1e-9);
  EXPECT_NEAR(uniform_capacity_fraction(make_romm(t)), 1.0, 1e-9);
  // VAL halves uniform throughput (two uniform phases); self pairs use the
  // empty path, hence the (N-1)/N correction.
  const double n = t.num_nodes();
  EXPECT_NEAR(uniform_capacity_fraction(make_valiant(t)), n / (2.0 * (n - 1.0)), 1e-9);
}

TEST(Valiant, LocalityIsTwiceMinimalOverNonSelfPairs) {
  const Torus t(8);
  const TorusRouting val = make_valiant(t);
  // Every pair routes through a uniformly random intermediate: expected
  // length = 2 * mean_min_distance for each (s, d), so the overall average
  // over all N^2 pairs is 2 * Hmin * (N-1)/N (self pairs use the empty path).
  const int n = t.num_nodes();
  const double expect = 2.0 * (n - 1.0) / n;
  EXPECT_NEAR(val.normalized_locality(), expect, 1e-9);
}

TEST(Valiant, WorstCaseIsHalfCapacityEvenRadix) {
  for (int k : {4, 6, 8}) {
    const Torus t(k);
    EXPECT_NEAR(worst_case_capacity_fraction(make_valiant(t)), 0.5, 1e-6) << "k=" << k;
  }
}

TEST(Ival, KeepsValiantWorstCaseWithBetterLocality) {
  const Torus t(8);
  const TorusRouting ival = make_ival(t);
  const TorusRouting val = make_valiant(t);
  EXPECT_NEAR(worst_case_capacity_fraction(ival), 0.5, 1e-6);
  EXPECT_LT(ival.normalized_locality(), val.normalized_locality());
  // Paper §5.2: about 1.61x minimal on the 8-ary 2-cube (~19-20% under VAL).
  EXPECT_NEAR(ival.normalized_locality(), 1.61, 0.06);
}

TEST(Ival, PathsHaveAtMostTwoTurnsAndNoChannelRevisit) {
  const Torus t(6);
  const TorusRouting ival = make_ival(t);
  for (int e = 1; e < t.num_nodes(); ++e) {
    for (const auto& wp : ival.paths(e)) {
      EXPECT_LE(count_turns(t, wp.path), 2);
      EXPECT_TRUE(path_channel_simple(wp.path));
      EXPECT_TRUE(path_node_simple(t, wp.path));
    }
  }
}

TEST(Dor, WorstCaseBeatsOtherMinimalAlgorithms) {
  // Paper Figure 1: DOR attains the best worst-case of any minimal algorithm.
  const Torus t(8);
  const double dor = worst_case_capacity_fraction(make_dor(t));
  const double romm = worst_case_capacity_fraction(make_romm(t));
  EXPECT_GT(dor, romm - 1e-9);
  EXPECT_LT(dor, 0.5);
  EXPECT_GT(dor, 0.2);
}

TEST(Dor, TornadoLoadIsExact) {
  // Tornado on even k sends every node ceil(k/2)-1 = k/2-1 hops in +X; DOR
  // keeps it single-path, loading each +X channel with (k/2 - 1) flows.
  const Torus t(8);
  const auto gamma = channel_loads(make_dor(t), tornado_permutation(t));
  double gmax = 0.0;
  for (double g : gamma) gmax = std::max(gmax, g);
  EXPECT_NEAR(gmax, 3.0, 1e-9);
}

TEST(Rlb, TradesLocalityForWorstCase) {
  const Torus t(8);
  const TorusRouting rlb = make_rlb(t);
  const TorusRouting rlbth = make_rlbth(t);
  const TorusRouting dor = make_dor(t);
  // Non-minimal on purpose...
  EXPECT_GT(rlb.normalized_locality(), 1.05);
  EXPECT_LT(rlb.normalized_locality(), 2.0);
  // ...to beat DOR's worst case (paper Figure 1 places RLB right of DOR).
  EXPECT_GT(worst_case_capacity_fraction(rlb), worst_case_capacity_fraction(dor));
  // The threshold variant gives back some worst-case for locality.
  EXPECT_LT(rlbth.normalized_locality(), rlb.normalized_locality());
  EXPECT_LE(worst_case_capacity_fraction(rlbth), worst_case_capacity_fraction(rlb) + 1e-9);
}

TEST(Rlb, BalancesRingLoadUnderUniform) {
  // The (k-d)/k rule equalizes channel load ring-wide: uniform traffic loads
  // every X channel equally.
  const Torus t(8);
  const auto gamma = channel_loads(make_rlb(t), uniform_traffic(t.num_nodes()));
  double lo = 1e9, hi = 0.0;
  for (int c = 0; c < t.num_channels(); ++c) {
    lo = std::min(lo, gamma[c]);
    hi = std::max(hi, gamma[c]);
  }
  EXPECT_NEAR(lo, hi, 1e-9);
}

TEST(Routing, PairPathsAreTranslatedCanonicalPaths) {
  const Torus t(5);
  const TorusRouting dor = make_dor(t);
  const int s = t.node(2, 3), d = t.node(4, 1);
  const auto pair_paths = dor.paths_for_pair(s, d);
  const auto& canon = dor.paths(t.offset(s, d));
  ASSERT_EQ(pair_paths.size(), canon.size());
  for (std::size_t i = 0; i < canon.size(); ++i) {
    EXPECT_EQ(pair_paths[i].path.src, s);
    EXPECT_EQ(pair_paths[i].path.dst, d);
    EXPECT_EQ(pair_paths[i].path.length(), canon[i].path.length());
    EXPECT_DOUBLE_EQ(pair_paths[i].weight, canon[i].weight);
  }
}

TEST(Routing, AddPathValidatesAndMerges) {
  const Torus t(4);
  TorusRouting r(t, "test");
  const int e = t.node(1, 0);
  Path p = path_from_walk(t, {0, e});
  r.add_path(e, p, 0.5);
  r.add_path(e, p, 0.5);
  EXPECT_EQ(r.paths(e).size(), 1u);  // merged
  EXPECT_DOUBLE_EQ(r.total_probability(e), 1.0);
  EXPECT_THROW(r.add_path(e, p, -0.1), Error);
  Path wrong = path_from_walk(t, {0, t.node(0, 1)});
  EXPECT_THROW(r.add_path(e, wrong, 0.1), Error);
}

TEST(Routing, NormalizeRescales) {
  const Torus t(4);
  TorusRouting r(t, "test");
  for (int e = 1; e < t.num_nodes(); ++e) {
    const auto walks = detail::dor_walks(t, 0, e, true);
    for (const auto& w : walks) r.add_path(e, path_from_walk(t, w.walk), 2.0 * w.prob);
  }
  r.normalize();
  EXPECT_NO_THROW(r.validate());
}

}  // namespace
}  // namespace tcr
