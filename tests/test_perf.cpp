// tcr::perf unit tests: the sampler's graceful-degradation contract (forced
// rusage, auto backend, inert-when-off), the pure injected-slowdown scaling,
// allocation accounting through the linked tcr_alloc_hook, provenance
// fields, and the whole history store + regression gate behind tcr-perf
// (round-trip, run distillation, google-benchmark ingest, median-of-repeats
// noise robustness, machine-sensitivity skips, floors, threshold overrides).
//
// This binary links tcr_alloc_hook on purpose (tests/CMakeLists.txt), so
// operator new/delete feed the perf counters here — the fallback-path
// coverage ISSUE.md asks for runs in every environment because
// TCR_PERF_FORCE_RUSAGE's config equivalent is exercised directly.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "tcr/obs/json.hpp"
#include "tcr/perf/history.hpp"
#include "tcr/perf/perf.hpp"
#include "tcr/perf/provenance.hpp"
#include "tcr/report/json_reader.hpp"
#include "tcr/report/schema.hpp"

namespace tcr::perf {
namespace {

namespace fs = std::filesystem;

/// Every test leaves the process-wide sampler off.
class PerfTest : public ::testing::Test {
 protected:
  void TearDown() override { stop(); }
};

/// Burn a little cpu so time deltas are observably positive.
double busy_work() {
  volatile double acc = 0.0;
  for (int i = 1; i < 200000; ++i) acc = acc + 1.0 / static_cast<double>(i);
  return acc;
}

TEST_F(PerfTest, SamplerInertWhenCollectionOff) {
  ASSERT_FALSE(collecting());
  PhaseSampler sampler;
  EXPECT_FALSE(sampler.active());
  busy_work();
  const Sample s = sampler.sample();
  EXPECT_EQ(s.source, "off");
  EXPECT_EQ(s.cpu_ns, 0);
  EXPECT_EQ(s.wall_ns, 0);
  EXPECT_EQ(s.alloc_count, 0);
}

TEST_F(PerfTest, ForcedRusageBackendProducesRusageRecords) {
  PerfConfig cfg;
  cfg.force_rusage = true;
  start(cfg);
  EXPECT_EQ(source(), "rusage");
  PhaseSampler sampler;
  busy_work();
  const Sample s = sampler.sample();
  EXPECT_EQ(s.source, "rusage");
  EXPECT_GT(s.wall_ns, 0);
  EXPECT_GE(s.cpu_ns, 0);
  EXPECT_GT(s.max_rss_kb, 0);
  // The rusage backend has no hardware counters, and says so.
  EXPECT_EQ(s.cycles, -1);
  EXPECT_EQ(s.instructions, -1);
  EXPECT_EQ(s.cache_misses, -1);
  EXPECT_EQ(s.branch_misses, -1);
}

// The auto backend must work wherever it runs: perf_event where the kernel
// grants counters, rusage where it refuses (containers, VMs without a vPMU)
// — never a crash, and Sample.source always names the backend that measured.
TEST_F(PerfTest, AutoBackendDegradesGracefully) {
  start();
  const std::string active = source();
  EXPECT_TRUE(active == "perf_event" || active == "rusage") << active;
  PhaseSampler sampler;
  busy_work();
  const Sample s = sampler.sample();
  EXPECT_EQ(s.source, active);
  EXPECT_GT(s.wall_ns, 0);
  if (active == "perf_event") {
    EXPECT_GE(s.cycles, 0);  // the cycles counter is what qualifies the backend
  } else {
    EXPECT_EQ(s.cycles, -1);
  }
}

TEST_F(PerfTest, StopTurnsSamplingOff) {
  start();
  stop();
  EXPECT_EQ(source(), "off");
  PhaseSampler sampler;
  EXPECT_FALSE(sampler.active());
}

TEST_F(PerfTest, AllocHookCountsThroughSampler) {
  ASSERT_TRUE(alloc_hook_active());  // this binary links tcr_alloc_hook
  PerfConfig cfg;
  cfg.force_rusage = true;
  start(cfg);
  PhaseSampler sampler;
  {
    std::vector<double> v(4096, 1.0);
    EXPECT_GT(v[0], 0.0);
  }
  const Sample s = sampler.sample();
  EXPECT_GE(s.alloc_count, 1);
  EXPECT_GE(s.alloc_bytes, static_cast<std::int64_t>(4096 * sizeof(double)));
}

TEST_F(PerfTest, ResetRebaselines) {
  PerfConfig cfg;
  cfg.force_rusage = true;
  start(cfg);
  PhaseSampler sampler;
  busy_work();
  const Sample before = sampler.sample();
  sampler.reset();
  const Sample after = sampler.sample();
  EXPECT_LT(after.wall_ns, before.wall_ns);
}

TEST(PerfScale, ScaleSampleScalesTimeLikeQuantitiesOnly) {
  Sample s;
  s.source = "rusage";
  s.wall_ns = 100;
  s.cpu_ns = 50;
  s.cycles = 10;
  s.instructions = -1;  // unavailable counters stay unavailable
  s.max_rss_kb = 7;
  s.minor_faults = 3;
  s.alloc_count = 9;
  s.alloc_bytes = 11;
  const Sample scaled = scale_sample(s, 2.0);
  EXPECT_EQ(scaled.wall_ns, 200);
  EXPECT_EQ(scaled.cpu_ns, 100);
  EXPECT_EQ(scaled.cycles, 20);
  EXPECT_EQ(scaled.instructions, -1);
  EXPECT_EQ(scaled.max_rss_kb, 7);
  EXPECT_EQ(scaled.minor_faults, 3);
  EXPECT_EQ(scaled.alloc_count, 9);
  EXPECT_EQ(scaled.alloc_bytes, 11);
}

TEST(PerfSample, ToJsonOmitsUnavailableHardwareCounters) {
  Sample s;
  s.source = "rusage";
  const obs::Json j = s.to_json();
  EXPECT_EQ(j.find("source")->as_string(), "rusage");
  EXPECT_EQ(j.find("cycles"), nullptr);
  EXPECT_EQ(j.find("branch_misses"), nullptr);
  s.cycles = 42;
  EXPECT_EQ(s.to_json().find("cycles")->as_int(), 42);
}

TEST(PerfProvenance, ReportsBuildAndHostIdentity) {
  const obs::Json p = provenance_json();
  for (const char* field : {"git_sha", "compiler", "build_type", "cxx_flags", "cpu"}) {
    ASSERT_NE(p.find(field), nullptr) << field;
    EXPECT_TRUE(p.find(field)->is_string()) << field;
  }
  EXPECT_FALSE(p.find("compiler")->as_string().empty());
}

// ---- history store -------------------------------------------------------

TEST(PerfHistory, CanonicalConfigSortsKeys) {
  auto params = obs::Json::object();
  params.set("points", 5).set("k", 4).set("warm", true);
  EXPECT_EQ(canonical_config(params), "k=4,points=5,warm=true");
}

report::BenchRun run_with_perf_blocks() {
  report::BenchRun run;
  run.bench = "fig1_wc_tradeoff";
  run.params = obs::Json::object();
  run.params.set("k", 4);
  run.provenance = obs::Json::object();
  run.provenance.set("cpu", "test-cpu").set("compiler", "test-cc");
  for (int i = 0; i < 2; ++i) {
    report::BenchRecord rec;
    rec.point = obs::Json::object();
    rec.perf = obs::Json::object();
    rec.perf.set("source", "rusage")
        .set("cpu_ns", 10 + 10 * i)     // 10, 20 -> sum 30
        .set("max_rss_kb", 100 - 20 * i)  // 100, 80 -> max 100
        .set("alloc_count", 5);
    run.records.push_back(std::move(rec));
  }
  return run;
}

TEST(PerfHistory, EntryFromRunSumsDeltasAndMaxesHighWaterMarks) {
  const report::BenchRun run = run_with_perf_blocks();
  HistoryEntry e;
  std::string error;
  ASSERT_TRUE(entry_from_run(run, &e, &error)) << error;
  EXPECT_EQ(e.bench, "fig1_wc_tradeoff");
  EXPECT_EQ(e.config, "k=4");
  EXPECT_EQ(e.source, "rusage");
  EXPECT_DOUBLE_EQ(e.quantities.at("perf.cpu_ns"), 30.0);
  EXPECT_DOUBLE_EQ(e.quantities.at("perf.max_rss_kb"), 100.0);
  EXPECT_DOUBLE_EQ(e.quantities.at("perf.alloc_count"), 10.0);
}

TEST(PerfHistory, EntryFromRunRejectsRunsWithoutPerfBlocks) {
  report::BenchRun run;
  run.bench = "fig1_wc_tradeoff";
  run.records.emplace_back();
  HistoryEntry e;
  std::string error;
  EXPECT_FALSE(entry_from_run(run, &e, &error));
  EXPECT_NE(error.find("--perf"), std::string::npos);
}

TEST(PerfHistory, AppendAndLoadRoundTripPreservesOrder) {
  const std::string path =
      (fs::temp_directory_path() / "tcr_perf_history_test.jsonl").string();
  std::remove(path.c_str());
  std::vector<HistoryEntry> first(1), second(1);
  first[0].bench = "a";
  first[0].commit = "c1";
  first[0].source = "rusage";
  first[0].quantities["perf.cpu_ns"] = 1.5e9;
  second[0].bench = "a";
  second[0].commit = "c2";
  second[0].quantities["perf.cpu_ns"] = 2.0e9;
  std::string error;
  ASSERT_TRUE(append_history(path, first, &error)) << error;
  ASSERT_TRUE(append_history(path, second, &error)) << error;  // append-only
  std::vector<HistoryEntry> loaded;
  ASSERT_TRUE(load_history(path, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].commit, "c1");
  EXPECT_EQ(loaded[0].source, "rusage");
  EXPECT_DOUBLE_EQ(loaded[0].quantities.at("perf.cpu_ns"), 1.5e9);
  EXPECT_EQ(loaded[1].commit, "c2");
  std::remove(path.c_str());
}

TEST(PerfHistory, LoadMissingFileIsEmptyOnlyWhenAllowed) {
  const std::string path = (fs::temp_directory_path() / "tcr_perf_absent.jsonl").string();
  std::remove(path.c_str());
  std::vector<HistoryEntry> loaded;
  std::string error;
  EXPECT_FALSE(load_history(path, &loaded, &error));
  EXPECT_TRUE(load_history(path, &loaded, &error, /*allow_missing=*/true));
  EXPECT_TRUE(loaded.empty());
}

TEST(PerfHistory, GoogleBenchmarkIngestTakesMinAcrossRepetitions) {
  obs::Json doc;
  std::string error;
  ASSERT_TRUE(report::parse_json(R"({"benchmarks":[
    {"name":"BM_X/4","run_type":"iteration","real_time":120.0,"cpu_time":110.0,
     "time_unit":"ns"},
    {"name":"BM_X/4","run_type":"iteration","real_time":0.1,"cpu_time":0.09,
     "time_unit":"ms"},
    {"name":"BM_X/4_mean","run_type":"aggregate","real_time":1.0,"cpu_time":1.0}
  ]})",
                                 &doc, &error))
      << error;
  std::vector<HistoryEntry> entries;
  ASSERT_TRUE(entries_from_google_benchmark(doc, &entries, &error)) << error;
  ASSERT_EQ(entries.size(), 1u);  // aggregates are skipped
  EXPECT_EQ(entries[0].bench, "micro_kernels");
  EXPECT_EQ(entries[0].config, "BM_X/4");
  EXPECT_DOUBLE_EQ(entries[0].quantities.at("perf.real_ns"), 120.0);   // min(120, 1e5)
  EXPECT_DOUBLE_EQ(entries[0].quantities.at("perf.cpu_ns"), 110.0);
}

TEST(PerfHistory, MedianOfRepeatsShrugsOffOneOutlier) {
  std::vector<HistoryEntry> entries(3);
  const double values[] = {10.0, 1000.0, 11.0};  // one descheduled repeat
  for (int i = 0; i < 3; ++i) {
    entries[i].bench = "b";
    entries[i].commit = "c";
    entries[i].quantities["perf.cpu_ns"] = values[i];
  }
  const std::vector<KeyStats> stats = median_by_key(entries);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].repeats, 3);
  EXPECT_DOUBLE_EQ(stats[0].median.at("perf.cpu_ns"), 11.0);
}

// ---- gate ----------------------------------------------------------------

KeyStats stats(const std::string& bench, const std::string& commit, double cpu_ns,
               const std::string& cpu_model = "m1") {
  KeyStats ks;
  ks.bench = bench;
  ks.config = "k=4";
  ks.commit = commit;
  ks.repeats = 1;
  ks.provenance = obs::Json::object();
  ks.provenance.set("cpu", cpu_model).set("compiler", "cc-1");
  ks.median["perf.cpu_ns"] = cpu_ns;
  return ks;
}

TEST(PerfGate, NamesRegressedQuantityWithRatioAndThreshold) {
  const std::vector<KeyStats> base = {stats("fig1", "old", 1e9)};
  const std::vector<KeyStats> cand = {stats("fig1", "new", 2e9)};
  const std::vector<GateFinding> findings = gate(base, cand);
  ASSERT_FALSE(findings.empty());
  const GateFinding& f = findings.front();  // regressions sort first
  EXPECT_EQ(f.verdict, GateFinding::Verdict::Regressed);
  EXPECT_EQ(f.bench, "fig1");
  EXPECT_EQ(f.quantity, "perf.cpu_ns");
  EXPECT_DOUBLE_EQ(f.baseline, 1e9);
  EXPECT_DOUBLE_EQ(f.candidate, 2e9);
  EXPECT_DOUBLE_EQ(f.ratio, 2.0);
  EXPECT_DOUBLE_EQ(f.threshold, 1.40);
  EXPECT_TRUE(any_regression(findings));
}

TEST(PerfGate, IdenticalMediansPass) {
  const std::vector<KeyStats> base = {stats("fig1", "old", 1e9)};
  const std::vector<KeyStats> cand = {stats("fig1", "new", 1e9)};
  const std::vector<GateFinding> findings = gate(base, cand);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].verdict, GateFinding::Verdict::Pass);
  EXPECT_FALSE(any_regression(findings));
}

TEST(PerfGate, MachineMismatchSkipsTimeButStillGatesAllocCounts) {
  KeyStats base = stats("fig1", "old", 1e9, "xeon");
  KeyStats cand = stats("fig1", "new", 5e9, "epyc");  // 5x, but other machine
  base.median["perf.alloc_bytes"] = 1e6;
  cand.median["perf.alloc_bytes"] = 2e6;  // 2x > alloc_ratio 1.10: real leak
  const std::vector<GateFinding> findings = gate({base}, {cand});
  ASSERT_EQ(findings.size(), 2u);
  // Regressions first: the alloc count fires, the cpu time is skipped.
  EXPECT_EQ(findings[0].quantity, "perf.alloc_bytes");
  EXPECT_EQ(findings[0].verdict, GateFinding::Verdict::Regressed);
  EXPECT_EQ(findings[1].quantity, "perf.cpu_ns");
  EXPECT_EQ(findings[1].verdict, GateFinding::Verdict::SkippedMachine);
  EXPECT_TRUE(any_regression(findings));
}

TEST(PerfGate, NoiseFloorSuppressesTinyBaselines) {
  // 5x on a 1000ns baseline: far under time_floor_ns, not a regression.
  const std::vector<KeyStats> base = {stats("fig1", "old", 1e3)};
  const std::vector<KeyStats> cand = {stats("fig1", "new", 5e3)};
  const std::vector<GateFinding> findings = gate(base, cand);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].verdict, GateFinding::Verdict::SkippedFloor);
}

TEST(PerfGate, PerQuantityThresholdOverrides) {
  GatePolicy policy;
  policy.per_quantity["perf.cpu_ns"] = 3.0;
  const std::vector<KeyStats> base = {stats("fig1", "old", 1e9)};
  const std::vector<KeyStats> cand = {stats("fig1", "new", 2e9)};
  EXPECT_FALSE(any_regression(gate(base, cand, policy)));  // 2.0x < 3.0x
  policy.per_quantity["perf.cpu_ns"] = 1.5;
  EXPECT_TRUE(any_regression(gate(base, cand, policy)));
}

TEST(PerfGate, NewBenchesAreMissingNotRegressed) {
  const std::vector<KeyStats> cand = {stats("brand_new", "new", 1e9)};
  const std::vector<GateFinding> findings = gate({}, cand);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].verdict, GateFinding::Verdict::Missing);
  EXPECT_FALSE(any_regression(findings));
}

TEST(PerfGate, QuantityClassesAndThresholds) {
  EXPECT_EQ(classify_quantity("perf.cpu_ns"), QuantityClass::Time);
  EXPECT_EQ(classify_quantity("perf.cycles"), QuantityClass::Time);
  EXPECT_EQ(classify_quantity("perf.real_ns"), QuantityClass::Time);
  EXPECT_EQ(classify_quantity("perf.alloc_bytes"), QuantityClass::Alloc);
  EXPECT_EQ(classify_quantity("perf.max_rss_kb"), QuantityClass::Rss);
  EXPECT_EQ(classify_quantity("perf.cache_misses"), QuantityClass::Noisy);
  EXPECT_EQ(classify_quantity("perf.minor_faults"), QuantityClass::Noisy);
  const GatePolicy policy;
  EXPECT_DOUBLE_EQ(threshold_for(policy, "perf.cpu_ns"), policy.time_ratio);
  EXPECT_DOUBLE_EQ(threshold_for(policy, "perf.alloc_count"), policy.alloc_ratio);
  EXPECT_DOUBLE_EQ(threshold_for(policy, "perf.max_rss_kb"), policy.rss_ratio);
  EXPECT_DOUBLE_EQ(threshold_for(policy, "perf.major_faults"), policy.noisy_ratio);
}

TEST(PerfReport, MarkdownTrajectoryListsCommitsInOrder) {
  std::vector<HistoryEntry> entries(2);
  entries[0].bench = "fig1";
  entries[0].config = "k=4";
  entries[0].commit = "first";
  entries[0].quantities["perf.cpu_ns"] = 1e9;
  entries[1] = entries[0];
  entries[1].commit = "second";
  entries[1].quantities["perf.cpu_ns"] = 1.2e9;
  const std::string md = markdown_report(entries);
  EXPECT_NE(md.find("# Perf trajectory"), std::string::npos);
  EXPECT_NE(md.find("## fig1 (k=4)"), std::string::npos);
  const std::size_t first = md.find("|first|");
  const std::size_t second = md.find("|second|");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_NE(md.find("1.20x"), std::string::npos);  // vs-prev headline delta
}

}  // namespace
}  // namespace tcr::perf
