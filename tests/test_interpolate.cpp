// Interpolated routing (paper §5.3): validity, exact linear locality
// (eq. 12), and the harmonic-mean worst-case bound (eq. 14) including its
// tightness when the two algorithms share a worst-case permutation.
#include <gtest/gtest.h>

#include <cmath>

#include "tcr/metrics/loads.hpp"
#include "tcr/metrics/worst_case.hpp"
#include "tcr/routing/dor.hpp"
#include "tcr/routing/interpolate.hpp"
#include "tcr/routing/valiant.hpp"
#include "tcr/util/check.hpp"

namespace tcr {
namespace {

TEST(Interpolate, EndpointsReproduceInputs) {
  const Torus t(4);
  const TorusRouting dor = make_dor(t), ival = make_ival(t);
  const TorusRouting at0 = interpolate(dor, ival, 0.0);
  const TorusRouting at1 = interpolate(dor, ival, 1.0);
  EXPECT_NEAR(at1.normalized_locality(), dor.normalized_locality(), 1e-12);
  EXPECT_NEAR(at0.normalized_locality(), ival.normalized_locality(), 1e-12);
  EXPECT_NEAR(worst_case(at1).gamma, worst_case(dor).gamma, 1e-9);
  EXPECT_NEAR(worst_case(at0).gamma, worst_case(ival).gamma, 1e-9);
}

TEST(Interpolate, ProducesValidAlgorithms) {
  const Torus t(5);
  const TorusRouting dor = make_dor(t), val = make_valiant(t);
  for (double alpha : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_NO_THROW(interpolate(dor, val, alpha).validate());
  }
  EXPECT_THROW(interpolate(dor, val, 1.5), Error);
}

TEST(Interpolate, LocalityIsExactlyLinear) {
  // Eq. 12.
  const Torus t(6);
  const TorusRouting dor = make_dor(t), ival = make_ival(t);
  for (double alpha : {0.2, 0.5, 0.8}) {
    const TorusRouting mix = interpolate(dor, ival, alpha);
    EXPECT_NEAR(mix.avg_path_length(),
                alpha * dor.avg_path_length() + (1 - alpha) * ival.avg_path_length(), 1e-10);
  }
}

TEST(Interpolate, WorstCaseRespectsHarmonicBound) {
  // Eq. 13/14: gamma_wc(R') <= alpha gamma1 + (1-alpha) gamma2.
  const Torus t(6);
  const TorusRouting dor = make_dor(t), ival = make_ival(t);
  const double g1 = worst_case(dor).gamma, g2 = worst_case(ival).gamma;
  for (double alpha : {0.25, 0.5, 0.75}) {
    const double g = worst_case(interpolate(dor, ival, alpha)).gamma;
    EXPECT_LE(g, alpha * g1 + (1 - alpha) * g2 + 1e-9);
    const double theta_bound =
        interpolation_throughput_bound(1.0 / g1, 1.0 / g2, alpha);
    EXPECT_GE(1.0 / g + 1e-9, theta_bound);
  }
}

TEST(Interpolate, BoundTightWhenWorstCaseShared) {
  // Paper footnote 5: DOR and IVAL share a worst-case permutation on the
  // 8-ary 2-cube, making the bound exact. Verify on k=6 by checking whether
  // a shared adversary exists; if it does, equality must hold.
  const Torus t(6);
  const TorusRouting dor = make_dor(t), ival = make_ival(t);
  const auto wc_dor = worst_case(dor);
  const double g_ival_at_dor_adversary = max_channel_load(ival, wc_dor.permutation);
  const auto wc_ival = worst_case(ival);
  if (std::abs(g_ival_at_dor_adversary - wc_ival.gamma) < 1e-9) {
    for (double alpha : {0.3, 0.7}) {
      const double g = worst_case(interpolate(dor, ival, alpha)).gamma;
      EXPECT_NEAR(g, alpha * wc_dor.gamma + (1 - alpha) * wc_ival.gamma, 1e-8);
    }
  } else {
    GTEST_SKIP() << "no shared worst-case permutation at this radix";
  }
}

TEST(Interpolate, BoundFunctionSanity) {
  EXPECT_NEAR(interpolation_throughput_bound(0.5, 0.5, 0.3), 0.5, 1e-12);
  EXPECT_NEAR(interpolation_throughput_bound(0.25, 0.5, 1.0), 0.25, 1e-12);
  EXPECT_NEAR(interpolation_throughput_bound(0.25, 0.5, 0.0), 0.5, 1e-12);
  EXPECT_THROW(interpolation_throughput_bound(0.0, 0.5, 0.5), Error);
}

TEST(Interpolate, SweepIsMonotoneInLocality) {
  const Torus t(6);
  const TorusRouting dor = make_dor(t), ival = make_ival(t);
  double prev = -1.0;
  for (double alpha : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    const double h = interpolate(dor, ival, alpha).avg_path_length();
    EXPECT_GT(h, prev);
    prev = h;
  }
}

}  // namespace
}  // namespace tcr
