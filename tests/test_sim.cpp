// Flit-level simulator: VC discipline properties, delivery correctness,
// deadlock freedom of the paper's VC assignments (§5.2), low-load latency,
// and throughput tracking below saturation.
#include <gtest/gtest.h>

#include "tcr/fault/fault.hpp"
#include "tcr/metrics/loads.hpp"
#include "tcr/metrics/worst_case.hpp"
#include "tcr/routing/dor.hpp"
#include "tcr/routing/two_turn.hpp"
#include "tcr/routing/valiant.hpp"
#include "tcr/sim/simulator.hpp"
#include "tcr/traffic/patterns.hpp"

namespace tcr {
namespace {

TEST(VcAssignment, DorPathsNeedOneSet) {
  const Torus t(6);
  const TorusRouting dor = make_dor(t);
  for (int e = 1; e < t.num_nodes(); ++e) {
    for (const auto& wp : dor.paths(e)) {
      EXPECT_EQ(required_vc_sets(t, wp.path), 1);
      const auto vcs = assign_vcs(t, wp.path, 2);
      for (int vc : vcs) EXPECT_LT(vc, 2);
    }
  }
}

TEST(VcAssignment, TwoTurnPathsNeedAtMostTwoSets) {
  const Torus t(6);
  for (int e = 1; e < t.num_nodes(); ++e) {
    for (const Path& p : enumerate_two_turn_paths(t, e)) {
      EXPECT_LE(required_vc_sets(t, p), 2);
      EXPECT_NO_THROW(assign_vcs(t, p, 4));
    }
  }
}

TEST(VcAssignment, ValiantUTurnsOpenSecondSet) {
  // VAL paths can reverse direction within a dimension when the other
  // phase leg is empty; that phase boundary must move to the second VC set
  // (the fix that makes VAL deadlock-free in the simulator).
  const Torus t(4);
  const TorusRouting val = make_valiant(t);
  for (int e = 1; e < t.num_nodes(); ++e) {
    for (const auto& wp : val.paths(e)) {
      EXPECT_LE(required_vc_sets(t, wp.path), 2) << "e=" << e;
      EXPECT_NO_THROW(assign_vcs(t, wp.path, 4));
    }
  }
  // Explicit u-turn walk: +X then -X.
  const Path p = path_from_walk(t, {t.node(0, 0), t.node(1, 0), t.node(2, 0),
                                    t.node(1, 0)});
  EXPECT_EQ(required_vc_sets(t, p), 2);
  const auto vcs = assign_vcs(t, p, 4);
  EXPECT_LT(vcs[1], 2);   // still in set 0 before the turn
  EXPECT_GE(vcs[2], 2);   // set 1 after reversing
}

TEST(VcAssignment, IvalPathsFitInFourVcs) {
  const Torus t(6);
  const TorusRouting ival = make_ival(t);
  for (int e = 1; e < t.num_nodes(); ++e) {
    for (const auto& wp : ival.paths(e)) EXPECT_NO_THROW(assign_vcs(t, wp.path, 4));
  }
}

TEST(VcAssignment, DatelineSwitchesWithinRing) {
  const Torus t(4);
  // Straight +X path that wraps: 2 -> 3 -> 0 -> 1.
  const Path p = path_from_walk(
      t, {t.node(2, 0), t.node(3, 0), t.node(0, 0), t.node(1, 0)});
  const auto vcs = assign_vcs(t, p, 2);
  EXPECT_EQ(vcs[0], 0);
  EXPECT_EQ(vcs[1], 1);  // the wrapping hop lands on the high VC
  EXPECT_EQ(vcs[2], 1);
}

TEST(Simulator, DeliversEverythingAtLowLoad) {
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  SimConfig cfg;
  cfg.vcs = 2;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 2000;
  const auto stats = simulate(dor, 0.05, {}, cfg);
  EXPECT_FALSE(stats.deadlocked);
  EXPECT_GT(stats.injected, 0);
  EXPECT_EQ(stats.injected, stats.ejected);  // drained completely
  EXPECT_NEAR(stats.accepted_rate, 0.05 * (t.num_nodes() - 1.0) / t.num_nodes(), 0.01);
}

TEST(Simulator, LowLoadLatencyNearHopCount) {
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  SimConfig cfg;
  cfg.vcs = 2;
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 3000;
  const auto stats = simulate(dor, 0.02, {}, cfg);
  ASSERT_FALSE(stats.deadlocked);
  // Mean minimal distance is 2 at k=4 (excluding self pairs it's 32/15).
  EXPECT_GT(stats.avg_latency, 1.9);
  EXPECT_LT(stats.avg_latency, 4.5);
}

TEST(Simulator, LatencyPercentilesAreOrderedAndBracketMean) {
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  SimConfig cfg;
  cfg.vcs = 2;
  cfg.warmup_cycles = 200;
  cfg.measure_cycles = 3000;
  const auto stats = simulate(dor, 0.1, {}, cfg);
  ASSERT_FALSE(stats.deadlocked);
  EXPECT_GE(stats.p50_latency, 1.0);  // a hop takes at least one cycle
  EXPECT_LE(stats.p50_latency, stats.p95_latency);
  EXPECT_LE(stats.p95_latency, stats.p99_latency);
  EXPECT_LE(stats.p99_latency, stats.max_latency);
  EXPECT_LE(stats.avg_latency, stats.max_latency);
}

class DeadlockFreedom : public ::testing::TestWithParam<double> {};
INSTANTIATE_TEST_SUITE_P(Loads, DeadlockFreedom, ::testing::Values(0.3, 0.6, 0.95));

TEST_P(DeadlockFreedom, DorIvalTwoTurnSurviveSaturatingUniform) {
  const Torus t(4);
  SimConfig cfg;
  cfg.warmup_cycles = 1500;
  cfg.measure_cycles = 1500;
  cfg.drain_cycles = 0;
  cfg.deadlock_threshold = 800;
  for (auto make : {make_dor, make_ival}) {
    const TorusRouting r = make(t);
    const auto stats = simulate(r, GetParam(), {}, cfg);
    EXPECT_FALSE(stats.deadlocked) << r.name() << " rate=" << GetParam();
    EXPECT_GT(stats.accepted_rate, 0.0) << r.name();
  }
}

TEST(DeadlockFreedomTornado, HighTornadoLoadSurvives) {
  const Torus t(4);
  SimConfig cfg;
  cfg.warmup_cycles = 1500;
  cfg.measure_cycles = 1500;
  cfg.drain_cycles = 0;
  cfg.deadlock_threshold = 800;
  const auto perm = tornado_permutation(t);
  for (auto make : {make_dor, make_ival, make_valiant}) {
    const TorusRouting r = make(t);
    const auto stats = simulate(r, 0.95, perm, cfg);
    EXPECT_FALSE(stats.deadlocked) << r.name();
  }
}

TEST(Simulator, DeadlockWatchdogFiresAtConfiguredThreshold) {
  // Deterministic firing test for the configurable watchdog: with every
  // channel down from cycle 0, injected traffic fills the source queues but
  // nothing ever moves (injection does not count as movement), so the
  // network is non-empty and quiet from cycle 0 and the watchdog must
  // declare deadlock right after `deadlock_threshold` quiet cycles — for
  // any threshold, which pins that the knob is actually honored.
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  fault::SimFaultPlan all_down;
  for (int c = 0; c < t.num_channels(); ++c) {
    fault::LinkFault f;
    f.channel = c;
    f.from_cycle = 0;
    f.until_cycle = 1L << 30;
    all_down.links.push_back(f);
  }
  for (const int threshold : {50, 137}) {
    SimConfig cfg;
    cfg.vcs = 2;
    cfg.warmup_cycles = threshold + 500;
    cfg.measure_cycles = 100;
    cfg.drain_cycles = 100;
    cfg.deadlock_threshold = threshold;
    cfg.faults = &all_down;
    const auto stats = simulate(dor, 1.0, {}, cfg);
    EXPECT_TRUE(stats.deadlocked) << "threshold " << threshold;
    EXPECT_GE(stats.cycles_run, threshold) << "threshold " << threshold;
    EXPECT_LE(stats.cycles_run, threshold + 2) << "threshold " << threshold;
  }
}

TEST(Simulator, ThroughputTracksOfferedBelowSaturation) {
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  // Analytic uniform capacity at k=4: gamma_ideal = 0.5 -> Theta = 2 > 1,
  // capped by injection bandwidth 1; at rate 0.3 the network is far from
  // saturated and accepted ~= offered * (N-1)/N.
  SimConfig cfg;
  cfg.vcs = 2;
  cfg.warmup_cycles = 1000;
  cfg.measure_cycles = 4000;
  const auto stats = simulate(dor, 0.3, {}, cfg);
  ASSERT_FALSE(stats.deadlocked);
  EXPECT_NEAR(stats.accepted_rate, 0.3 * 15.0 / 16.0, 0.03);
}

TEST(Simulator, SaturationOrderingMatchesAnalyticWorstCase) {
  // Under tornado, DOR saturates at Theta = 1/3 of injection; VAL-style
  // algorithms do better on tornado... at k=4 tornado is only 1 hop; use
  // shift of k/2 instead: complement sends everyone k/2 + k/2 hops.
  const Torus t(4);
  const auto perm = complement_permutation(t);
  const TorusRouting dor = make_dor(t);
  const double analytic = 1.0 / max_channel_load(dor, perm);
  SimConfig cfg;
  cfg.vcs = 2;
  cfg.warmup_cycles = 1000;
  cfg.measure_cycles = 3000;
  cfg.drain_cycles = 0;
  // Slightly below the analytic bound: accepted should track offered.
  const auto below = simulate(dor, 0.85 * analytic, perm, cfg);
  ASSERT_FALSE(below.deadlocked);
  EXPECT_GT(below.accepted_rate, 0.85 * analytic * 0.85);
  // Well above: accepted must cap out below offered.
  const auto above = simulate(dor, std::min(1.0, 1.5 * analytic), perm, cfg);
  ASSERT_FALSE(above.deadlocked);
  EXPECT_LT(above.accepted_rate, 1.15 * analytic);
}

TEST(Simulator, SaturationSearchReturnsReasonableRate) {
  const Torus t(4);
  const TorusRouting dor = make_dor(t);
  SimConfig cfg;
  cfg.vcs = 2;
  cfg.warmup_cycles = 400;
  cfg.measure_cycles = 1200;
  cfg.drain_cycles = 0;
  const double sat = saturation_throughput(dor, complement_permutation(t), cfg, 0.08);
  const double analytic = 1.0 / max_channel_load(make_dor(t), complement_permutation(t));
  EXPECT_GT(sat, 0.4 * analytic);
  EXPECT_LT(sat, 1.3 * analytic);
}

}  // namespace
}  // namespace tcr
